// Reproduces the paper's illustrative example (§4.7 / Figure 2): six nodes
// in two super-leaves, a height-2 LOT, one consensus cycle — asserting the
// protocol-level behaviours the figure narrates.
#include <gtest/gtest.h>

#include "../testutil/canopus_harness.h"

namespace canopus::core {
namespace {

using testutil::CanopusCluster;

class IllustrativeExample : public ::testing::Test {
 protected:
  // Sx = {A, B, C} = nodes 0,1,2; Sy = {D, E, F} = nodes 3,4,5.
  IllustrativeExample() : c(2, 3) {}
  CanopusCluster c;
};

TEST_F(IllustrativeExample, TwoRoundsForHeightTwo) {
  ASSERT_EQ(c.lot()->height(), 2);
  std::vector<RoundId> rounds;
  c.node(2).on_round_done = [&](CycleId cy, RoundId r) {
    if (cy == 1) rounds.push_back(r);
  };
  c.write_at(kMillisecond, 0, 1, 1);  // A has pending request RA
  c.write_at(kMillisecond, 1, 2, 2);  // B has pending request RB
  c.sim().run_until(kSecond);
  // Node C participates in exactly rounds 1 and 2, in order (events 4, 7).
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0], 1u);
  EXPECT_EQ(rounds[1], 2u);
}

TEST_F(IllustrativeExample, NodeCStartsWithEmptyProposal) {
  // Event 1-2: C receives A's proposal and starts its cycle with an empty
  // request list (φ); the consensus still completes and C commits both
  // requests.
  c.write_at(kMillisecond, 0, 1, 10);
  c.write_at(kMillisecond, 1, 2, 20);
  c.sim().run_until(kSecond);
  EXPECT_EQ(c.node(2).committed_writes(), 2u);
  EXPECT_EQ(c.node(2).store().read(1), 10u);
  EXPECT_EQ(c.node(2).store().read(2), 20u);
}

TEST_F(IllustrativeExample, RemoteRequestsBufferedUntilRoundFinishes) {
  // Event 3/5: a proposal-request for an unfinished round is buffered and
  // answered only after the local round completes. We assert the visible
  // consequence: Sy commits the identical order even though its
  // proposal-requests race ahead of Sx's round 1.
  c.write_at(kMillisecond, 3, 7, 70);  // D starts Sy's cycle first
  c.write_at(3 * kMillisecond, 0, 8, 80);
  c.sim().run_until(kSecond);
  ASSERT_TRUE(c.all_agree());
  EXPECT_EQ(c.node(5).store().read(7), 70u);
  EXPECT_EQ(c.node(5).store().read(8), 80u);
}

TEST_F(IllustrativeExample, ConsensusOrderGroupsRequestSets) {
  // Event 7: the final order is a concatenation of per-node request sets
  // ({RD,RE,RF,RA,RC,RB} in the paper's example — set membership keeps
  // same-origin requests adjacent and in arrival order).
  for (std::uint64_t i = 0; i < 3; ++i) {
    c.write_at(kMillisecond, 0, 100 + i, i);  // A's set: 3 requests
    c.write_at(kMillisecond, 4, 200 + i, i);  // E's set: 3 requests
  }
  // Within each committed cycle, same-origin requests must be adjacent (a
  // request set is never split; sets may span several cycles because the
  // first submission immediately starts a cycle).
  std::size_t total = 0;
  bool contiguous = true;
  c.node(1).on_commit = [&](CycleId, const std::vector<kv::Request>& ws) {
    std::set<NodeId> closed;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (i > 0 && ws[i].origin != ws[i - 1].origin) {
        if (!closed.insert(ws[i - 1].origin).second) contiguous = false;
      }
      if (closed.contains(ws[i].origin)) contiguous = false;
    }
    total += ws.size();
  };
  c.sim().run_until(kSecond);
  EXPECT_EQ(total, 6u);
  EXPECT_TRUE(contiguous);
}

TEST_F(IllustrativeExample, ProposalNumbersOrderTheSets) {
  // The order of the two request sets is decided by the random proposal
  // numbers — deterministic under a fixed seed, and identical on all six
  // nodes.
  c.write_at(kMillisecond, 0, 1, 111);
  c.write_at(kMillisecond, 4, 1, 444);  // same key, different set
  c.sim().run_until(kSecond);
  ASSERT_TRUE(c.all_agree());
  const std::uint64_t final_value = c.node(0).store().read(1);
  EXPECT_TRUE(final_value == 111 || final_value == 444);
  for (std::size_t i = 1; i < 6; ++i)
    EXPECT_EQ(c.node(i).store().read(1), final_value);
}

}  // namespace
}  // namespace canopus::core
