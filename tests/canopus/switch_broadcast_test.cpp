// The hardware-assisted broadcast substrate (§4.3 option 1): Canopus runs
// identically on SwitchBroadcast, and the substrate itself provides total
// order and consistent failure exclusion.
#include <gtest/gtest.h>

#include "../testutil/canopus_harness.h"

namespace canopus::core {
namespace {

using testutil::CanopusCluster;

core::Config switch_cfg() {
  core::Config cfg;
  cfg.broadcast = BroadcastKind::kSwitch;
  return cfg;
}

TEST(SwitchBroadcastCanopus, TwoSuperLeavesAgree) {
  CanopusCluster c(2, 3, switch_cfg());
  c.write_at(kMillisecond, 0, 1, 100);
  c.write_at(kMillisecond, 4, 2, 200);
  c.sim().run_until(2 * kSecond);
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(c.node(i).store().read(1), 100u) << i;
    EXPECT_EQ(c.node(i).store().read(2), 200u) << i;
  }
}

TEST(SwitchBroadcastCanopus, HeavierLoadStaysConsistent) {
  CanopusCluster c(3, 3, switch_cfg());
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 4; ++burst)
    for (std::size_t i = 0; i < 9; ++i) {
      c.write_at((1 + 30 * burst) * kMillisecond + static_cast<Time>(i), i,
                 expected, expected + 1);
      ++expected;
    }
  c.sim().run_until(4 * kSecond);
  ASSERT_TRUE(c.all_agree());
  EXPECT_EQ(c.node(0).committed_writes(), expected);
}

TEST(SwitchBroadcastCanopus, CrashedMemberExcluded) {
  CanopusCluster c(2, 3, switch_cfg());
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);
  c.crash(2);
  c.sim().run_until(2 * kSecond);  // switch-sequenced heartbeat detection
  EXPECT_EQ(c.node(0).live_peers().size(), 2u);

  c.write_at(c.sim().now(), 0, 2, 22);
  c.sim().run_until(c.sim().now() + 2 * kSecond);
  EXPECT_EQ(c.node(5).store().read(2), 22u);
  EXPECT_TRUE(c.all_agree());
}

TEST(SwitchBroadcastCanopus, FasterIntraRackCommitThanRaft) {
  // The hardware substrate removes the Raft acks/commit notifications, so
  // a single-super-leaf commit completes in fewer network steps.
  auto run = [](BroadcastKind kind) {
    core::Config cfg;
    cfg.broadcast = kind;
    CanopusCluster c(1, 3, cfg);
    Time committed_at = 0;
    c.node(0).on_commit = [&](CycleId, const std::vector<kv::Request>&) {
      if (committed_at == 0) committed_at = c.sim().now();
    };
    c.write_at(kMillisecond, 0, 1, 1);
    c.sim().run_until(kSecond);
    return committed_at;
  };
  const Time sw = run(BroadcastKind::kSwitch);
  const Time raft = run(BroadcastKind::kRaft);
  ASSERT_GT(sw, 0);
  ASSERT_GT(raft, 0);
  EXPECT_LT(sw, raft);
}

TEST(SwitchBroadcastCanopus, PipelinedWanWorks) {
  core::Config cfg = switch_cfg();
  cfg.pipelining = true;
  auto c = CanopusCluster::multi_dc(3, 3, cfg);
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 3; ++burst)
    for (std::size_t i = 0; i < 9; ++i) {
      c.write_at((1 + 20 * burst) * kMillisecond + static_cast<Time>(i), i,
                 expected, expected + 1);
      ++expected;
    }
  c.sim().run_until(5 * kSecond);
  ASSERT_TRUE(c.all_agree());
  EXPECT_EQ(c.node(8).committed_writes(), expected);
}

}  // namespace
}  // namespace canopus::core
