#include "canopus/lot.h"

#include <gtest/gtest.h>

namespace canopus::lot {
namespace {

LotConfig paper_figure1() {
  // 27 pnodes, 3 per super-leaf, 9 super-leaves, arity 3 -> height 3
  // (the shape of the paper's Figure 1).
  LotConfig cfg;
  for (NodeId p = 0; p < 27; p += 3)
    cfg.super_leaves.push_back({p, p + 1, p + 2});
  cfg.arity = 3;
  return cfg;
}

TEST(Lot, SingleSuperLeafHeightOne) {
  Lot t = Lot::build({{{0, 1, 2}}, 0});
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.num_pnodes(), 3u);
  EXPECT_EQ(t.num_vnodes(), 4u);  // 3 leaves + root
  EXPECT_EQ(t.root(), t.super_leaf_vnode(0));
}

TEST(Lot, TwoSuperLeavesHeightTwo) {
  Lot t = Lot::build({{{0, 1, 2}, {3, 4, 5}}, 0});
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.num_vnodes(), 9u);  // 6 leaves + 2 SL vnodes + root
  EXPECT_EQ(t.children(t.root()).size(), 2u);
}

TEST(Lot, Figure1ShapeIsHeightThree) {
  Lot t = Lot::build(paper_figure1());
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.num_pnodes(), 27u);
  // 27 leaves + 9 SL vnodes + 3 mid vnodes + root.
  EXPECT_EQ(t.num_vnodes(), 40u);
  EXPECT_EQ(t.children(t.root()).size(), 3u);
  EXPECT_EQ(t.descendants(t.root()).size(), 27u);
}

TEST(Lot, AncestorChainReachesRoot) {
  Lot t = Lot::build(paper_figure1());
  const NodeId p = 13;
  EXPECT_EQ(t.ancestor(p, 0), t.leaf_of(p));
  EXPECT_EQ(t.level(t.ancestor(p, 1)), 1);
  EXPECT_EQ(t.level(t.ancestor(p, 2)), 2);
  EXPECT_EQ(t.ancestor(p, 3), t.root());
}

TEST(Lot, DescendantsOfHeight1AreSuperLeafMembers) {
  Lot t = Lot::build({{{10, 11, 12}, {20, 21, 22}}, 0});
  const VnodeId u0 = t.super_leaf_vnode(0);
  EXPECT_EQ(t.descendants(u0), (std::vector<NodeId>{10, 11, 12}));
  EXPECT_EQ(t.super_leaf_of(21), 1);
  EXPECT_EQ(t.super_leaf_of(10), 0);
}

TEST(Lot, NamesAreDottedPaths) {
  Lot t = Lot::build(paper_figure1());
  EXPECT_EQ(t.name(t.root()), "1");
  EXPECT_EQ(t.name(t.children(t.root())[0]), "1.1");
  EXPECT_EQ(t.name(t.children(t.children(t.root())[0])[1]), "1.1.2");
  // Leaf N in Figure 1 is the first pnode of the first super-leaf.
  EXPECT_EQ(t.name(t.leaf_of(0)), "1.1.1.1");
}

TEST(Lot, PnodeIdsNeedNotBeDense) {
  Lot t = Lot::build({{{100, 7}, {42, 3}}, 0});
  EXPECT_EQ(t.num_pnodes(), 4u);
  EXPECT_EQ(t.super_leaf_of(42), 1);
  EXPECT_EQ(t.pnode_of(t.leaf_of(100)), 100u);
}

TEST(Lot, RejectsInvalidConfigs) {
  EXPECT_THROW(Lot::build({{}, 0}), std::invalid_argument);
  EXPECT_THROW(Lot::build({{{1, 2}, {}}, 0}), std::invalid_argument);
  EXPECT_THROW(Lot::build({{{1}, {2}}, 1}), std::invalid_argument);
  EXPECT_THROW(Lot::build({{{1, 2}, {2, 3}}, 0}), std::invalid_argument);
}

TEST(Lot, UnknownPnodeThrows) {
  Lot t = Lot::build({{{0, 1}}, 0});
  EXPECT_THROW(t.leaf_of(99), std::out_of_range);
}

TEST(EmulationTable, StartsAllLive) {
  Lot t = Lot::build({{{0, 1, 2}, {3, 4, 5}}, 0});
  EmulationTable e(t);
  EXPECT_EQ(e.live_count(), 6u);
  EXPECT_EQ(e.emulators(t.root()).size(), 6u);
  EXPECT_TRUE(e.is_live(4));
}

TEST(EmulationTable, RemoveDropsFromAllAncestors) {
  Lot t = Lot::build({{{0, 1, 2}, {3, 4, 5}}, 0});
  EmulationTable e(t);
  e.remove(4);
  EXPECT_FALSE(e.is_live(4));
  EXPECT_EQ(e.emulators(t.root()).size(), 5u);
  EXPECT_EQ(e.emulators(t.super_leaf_vnode(1)),
            (std::vector<NodeId>{3, 5}));
  EXPECT_EQ(e.live_members(1), (std::vector<NodeId>{3, 5}));
  // Super-leaf 0 unaffected.
  EXPECT_EQ(e.emulators(t.super_leaf_vnode(0)).size(), 3u);
}

TEST(EmulationTable, RemoveIsIdempotentAndReversible) {
  Lot t = Lot::build({{{0, 1, 2}}, 0});
  EmulationTable e(t);
  e.remove(1);
  e.remove(1);
  EXPECT_EQ(e.live_count(), 2u);
  e.add(1);
  e.add(1);
  EXPECT_EQ(e.live_count(), 3u);
  EXPECT_TRUE(e.is_live(1));
}

TEST(Lot, TallTreeWithArity2) {
  LotConfig cfg;
  for (NodeId p = 0; p < 16; p += 2) cfg.super_leaves.push_back({p, p + 1});
  cfg.arity = 2;
  Lot t = Lot::build(cfg);
  // 8 super-leaves, arity 2: heights 1(SL), 2, 3, 4(root).
  EXPECT_EQ(t.height(), 4);
  EXPECT_EQ(t.children(t.root()).size(), 2u);
  EXPECT_EQ(t.descendants(t.root()).size(), 16u);
}

TEST(Lot, UnevenLastGroup) {
  LotConfig cfg;
  for (NodeId p = 0; p < 6; p += 2) cfg.super_leaves.push_back({p, p + 1});
  cfg.arity = 2;  // 3 SL vnodes group into 2 + 1
  Lot t = Lot::build(cfg);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.descendants(t.root()).size(), 6u);
}

}  // namespace
}  // namespace canopus::lot
