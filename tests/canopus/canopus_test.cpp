// End-to-end protocol tests for Canopus over the simulated network.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "../testutil/canopus_harness.h"

namespace canopus::core {
namespace {

using testutil::CanopusCluster;

TEST(Canopus, SingleSuperLeafCommits) {
  CanopusCluster c(1, 3);
  c.write_at(kMillisecond, 0, /*key=*/7, /*val=*/42);
  c.sim().run_until(2 * kSecond);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.node(i).last_committed_cycle(), 1u) << i;
    EXPECT_EQ(c.node(i).store().read(7), 42u) << i;
  }
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, TwoSuperLeavesAgree) {
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 1, 100);
  c.write_at(kMillisecond, 4, 2, 200);
  c.sim().run_until(2 * kSecond);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_GE(c.node(i).last_committed_cycle(), 1u) << i;
    EXPECT_EQ(c.node(i).store().read(1), 100u) << i;
    EXPECT_EQ(c.node(i).store().read(2), 200u) << i;
  }
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, EmptySuperLeafStillParticipates) {
  // Only super-leaf 0 has clients; super-leaf 1 must be prompted into the
  // cycle via proposal-requests (§4.4) and commit the same order.
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 5, 55);
  c.sim().run_until(2 * kSecond);
  EXPECT_GE(c.node(3).last_committed_cycle(), 1u);
  EXPECT_EQ(c.node(5).store().read(5), 55u);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, AgreementUnderConcurrentLoad) {
  CanopusCluster c(3, 3);
  // Every node takes writes to overlapping keys across several cycles.
  for (int burst = 0; burst < 5; ++burst) {
    for (std::size_t i = 0; i < 9; ++i) {
      c.write_at((1 + burst * 40) * kMillisecond + static_cast<Time>(i),
                 i, /*key=*/i % 4, /*val=*/100 * static_cast<std::uint64_t>(burst) + i);
    }
  }
  c.sim().run_until(5 * kSecond);
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(c.node(i).committed_writes(), 45u) << i;
    EXPECT_GE(c.node(i).last_committed_cycle(), 5u);
  }
  // Same final KV state everywhere.
  for (std::uint64_t k = 0; k < 4; ++k) {
    const auto v = c.node(0).store().read(k);
    for (std::size_t i = 1; i < 9; ++i)
      EXPECT_EQ(c.node(i).store().read(k), v) << "key " << k;
  }
}

TEST(Canopus, HeightThreeTreeAgrees) {
  // 4 super-leaves of 2, arity 2 -> height 3: exercises multi-round fetch.
  CanopusCluster c(4, 2, {}, 42, /*arity=*/2);
  ASSERT_EQ(c.lot()->height(), 3);
  for (std::size_t i = 0; i < 8; ++i)
    c.write_at(kMillisecond, i, i, i * 10);
  c.sim().run_until(3 * kSecond);
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(c.node(i).committed_writes(), 8u) << i;
    for (std::uint64_t k = 0; k < 8; ++k)
      EXPECT_EQ(c.node(i).store().read(k), k * 10) << i;
  }
}

TEST(Canopus, FifoOrderPerClient) {
  // One client pushes sequential writes to the same node; the committed
  // order must respect submission order (same-node requests keep arrival
  // order, §4).
  CanopusCluster c(2, 3);
  std::vector<std::uint64_t> committed_vals;
  c.node(0).on_commit = [&](CycleId, const std::vector<kv::Request>& ws) {
    for (const auto& w : ws)
      if (w.key == 9) committed_vals.push_back(w.value);
  };
  for (std::uint64_t i = 0; i < 10; ++i)
    c.write_at(kMillisecond + static_cast<Time>(i * 10), 0, 9, i,
               /*client=*/kInvalidNode, /*seq=*/i);
  c.sim().run_until(3 * kSecond);
  ASSERT_EQ(committed_vals.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(committed_vals[i], i);
  // Final value is the last write.
  EXPECT_EQ(c.node(4).store().read(9), 9u);
}

TEST(Canopus, ReadsObserveOwnPrecedingWrite) {
  // Read submitted after a write to the same node must see that write
  // (program order within the request set, §5).
  CanopusCluster c(2, 3);
  std::uint64_t read_value = 1234567;
  // Intercept the read completion via the commit hook being too coarse; use
  // served reads counter + store state instead: submit write then read
  // back-to-back before any cycle ends.
  c.write_at(kMillisecond, 2, 77, 777);
  c.read_at(kMillisecond + 1, 2, 77);
  c.sim().run_until(3 * kSecond);
  EXPECT_EQ(c.node(2).served_reads(), 1u);
  read_value = c.node(2).store().read(77);
  EXPECT_EQ(read_value, 777u);
}

TEST(Canopus, ReadOnlyNodeStillGetsLinearized) {
  // A node with only reads produces an empty proposal; its reads execute at
  // the empty set's position in the total order (§5).
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 3, 33);
  c.read_at(2 * kMillisecond, 5, 3);
  c.sim().run_until(3 * kSecond);
  EXPECT_EQ(c.node(5).served_reads(), 1u);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, CommitsAreCycleOrdered) {
  CanopusCluster c(2, 3);
  std::vector<CycleId> order;
  c.node(1).on_commit = [&](CycleId cy, const std::vector<kv::Request>&) {
    order.push_back(cy);
  };
  for (int b = 0; b < 6; ++b)
    c.write_at((1 + 30 * b) * kMillisecond, 1, static_cast<std::uint64_t>(b),
               1);
  c.sim().run_until(3 * kSecond);
  ASSERT_GE(order.size(), 2u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_EQ(order[i], order[i - 1] + 1);
}

TEST(Canopus, NodeFailureExcludedAndProtocolContinues) {
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);
  ASSERT_TRUE(c.all_agree());

  // Crash a non-representative member of super-leaf 0 (k=2 reps: nodes
  // 0 and 1 by default ordering, so node 2 is safe to kill).
  c.crash(2);
  c.sim().run_until(3 * kSecond);  // allow detection

  // The protocol keeps committing.
  c.write_at(c.sim().now(), 0, 2, 22);
  c.write_at(c.sim().now(), 3, 3, 33);
  c.sim().run_until(c.sim().now() + 2 * kSecond);
  EXPECT_EQ(c.node(0).store().read(2), 22u);
  EXPECT_EQ(c.node(0).store().read(3), 33u);
  EXPECT_EQ(c.node(5).store().read(2), 22u);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, FailedNodeRemovedFromRemoteEmulationTables) {
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);

  c.crash(2);
  c.sim().run_until(4 * kSecond);
  // Drive another cycle so the membership update disseminates.
  c.write_at(c.sim().now(), 0, 2, 22);
  c.sim().run_until(c.sim().now() + 2 * kSecond);

  // A node in the *other* super-leaf no longer lists the dead node as an
  // emulator (§4.6).
  const auto& emu = c.node(4).emulation_table();
  EXPECT_FALSE(emu.is_live(c.server(2)));
}

TEST(Canopus, RepresentativeFailurePromotesReplacement) {
  CanopusCluster c(2, 4);
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);
  ASSERT_TRUE(c.node(0).is_representative());

  c.crash(0);  // kill representative-0 of super-leaf 0
  c.sim().run_until(4 * kSecond);
  c.write_at(c.sim().now(), 1, 2, 22);
  c.sim().run_until(c.sim().now() + 4 * kSecond);

  EXPECT_EQ(c.node(1).store().read(2), 22u);
  EXPECT_EQ(c.node(5).store().read(2), 22u);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, SuperLeafMajorityFailureStallsEveryone) {
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);
  const CycleId committed_before = c.node(3).last_committed_cycle();

  // Kill 2 of 3 members of super-leaf 0: the super-leaf fails (2F+1 with
  // F=1). Canopus must stall — and never return a wrong result (§6).
  c.crash(0);
  c.crash(1);
  c.write_at(c.sim().now() + kMillisecond, 3, 2, 22);
  c.sim().run_until(c.sim().now() + 8 * kSecond);

  // Super-leaf 1 cannot finish any cycle that requires super-leaf 0's
  // state: at most one more cycle may have been in flight.
  EXPECT_LE(c.node(3).last_committed_cycle(), committed_before + 1);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, StalledNodesResumeNothingButStayConsistent) {
  CanopusCluster c(2, 3);
  c.write_at(kMillisecond, 0, 1, 11);
  c.sim().run_until(kSecond);
  c.crash(0);
  c.crash(1);
  c.crash(2);  // whole super-leaf 0 gone
  c.write_at(c.sim().now() + kMillisecond, 4, 9, 99);
  c.sim().run_until(c.sim().now() + 8 * kSecond);
  // The write is buffered or in a stalled cycle, never half-committed on
  // some nodes only.
  const auto c3 = c.node(3).committed_writes();
  const auto c4 = c.node(4).committed_writes();
  const auto c5 = c.node(5).committed_writes();
  EXPECT_EQ(c3, c4);
  EXPECT_EQ(c4, c5);
  EXPECT_TRUE(c.all_agree());
}

TEST(Canopus, PipelinedMultiDcCommitsInOrder) {
  core::Config cfg;
  cfg.pipelining = true;
  cfg.cycle_interval = 5 * kMillisecond;
  auto c = CanopusCluster::multi_dc(3, 3, cfg);
  std::vector<CycleId> order;
  c.node(0).on_commit = [&](CycleId cy, const std::vector<kv::Request>&) {
    order.push_back(cy);
  };
  // Continuous writes for 400 ms: with ~133-226 ms inter-DC RTTs and 5 ms
  // cycles, many cycles must be in flight concurrently.
  for (Time t = kMillisecond; t < 400 * kMillisecond; t += kMillisecond)
    c.write_at(t, static_cast<std::size_t>(t / kMillisecond) % 9,
               static_cast<std::uint64_t>(t), 1);
  c.sim().run_until(3 * kSecond);

  ASSERT_GE(order.size(), 10u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_EQ(order[i], order[i - 1] + 1);
  EXPECT_TRUE(c.all_agree());
  // Pipelining actually overlapped cycles: total cycles committed in ~400ms
  // of traffic far exceeds what sequential ~200ms cycles would allow (~3).
  EXPECT_GE(order.size(), 20u);
}

TEST(Canopus, PipeliningRaisesThroughputOverSequential) {
  // Same WAN workload with and without pipelining; pipelining must commit
  // substantially more cycles (the motivation for §7.1).
  auto run = [](bool pipe) {
    core::Config cfg;
    cfg.pipelining = pipe;
    auto c = CanopusCluster::multi_dc(3, 3, cfg);
    std::uint64_t commits = 0;
    c.node(0).on_commit = [&](CycleId, const std::vector<kv::Request>&) {
      ++commits;
    };
    for (Time t = kMillisecond; t < 500 * kMillisecond; t += kMillisecond)
      c.write_at(t, static_cast<std::size_t>(t / kMillisecond) % 9,
                 static_cast<std::uint64_t>(t), 1);
    c.sim().run_until(3 * kSecond);
    return commits;
  };
  const auto sequential = run(false);
  const auto pipelined = run(true);
  EXPECT_GT(pipelined, 3 * sequential);
}

TEST(Canopus, WriteLeaseServesUncontendedReadImmediately) {
  core::Config cfg;
  cfg.write_leases = true;
  CanopusCluster c(2, 3, cfg);
  // Key 50 has never been written: read must be served without consensus.
  c.read_at(kMillisecond, 0, 50);
  c.sim().run_until(10 * kMillisecond);  // far less than a cycle
  EXPECT_EQ(c.node(0).served_reads(), 1u);
}

TEST(Canopus, WriteLeaseDelaysContendedRead) {
  core::Config cfg;
  cfg.write_leases = true;
  cfg.lease_cycles = 100;  // keep the lease active for the whole test
  CanopusCluster c(2, 3, cfg);
  c.write_at(kMillisecond, 0, 60, 600);
  c.sim().run_until(kSecond);
  ASSERT_GE(c.node(0).last_committed_cycle(), 1u);

  // Lease for key 60 is now active: a read must go through the delay path
  // (it completes only after another consensus cycle).
  c.read_at(c.sim().now(), 1, 60);
  c.sim().run_until(c.sim().now() + kSecond);
  EXPECT_EQ(c.node(1).served_reads(), 1u);
  EXPECT_EQ(c.node(1).store().read(60), 600u);
  // And an uncontended key is still instant.
  const auto before = c.node(1).served_reads();
  c.read_at(c.sim().now(), 1, 61);
  c.sim().run_until(c.sim().now() + 5 * kMillisecond);
  EXPECT_EQ(c.node(1).served_reads(), before + 1);
}

TEST(Canopus, DeterministicAcrossSeeds) {
  auto run = [](std::uint64_t seed) {
    CanopusCluster c(2, 3, {}, seed);
    for (std::size_t i = 0; i < 6; ++i) c.write_at(kMillisecond, i, i, i);
    c.sim().run_until(2 * kSecond);
    return c.node(0).digest().value();
  };
  EXPECT_EQ(run(7), run(7));
  // Different seed likely produces a different proposal order.
  EXPECT_TRUE(run(7) != run(8) || true);  // ordering may coincide; no assert
}

TEST(Canopus, LargeClusterTwentySevenNodes) {
  // The paper's largest single-DC config: 3 super-leaves x 9 nodes.
  CanopusCluster c(3, 9);
  for (std::size_t i = 0; i < 27; ++i)
    c.write_at(kMillisecond + static_cast<Time>(i), i, i, i + 1000);
  c.sim().run_until(5 * kSecond);
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < 27; ++i)
    EXPECT_EQ(c.node(i).committed_writes(), 27u) << i;
}

}  // namespace
}  // namespace canopus::core
