// Property-style parameterized sweeps over LOT shapes, seeds and loads:
// the Agreement, completeness, FIFO and linearizability invariants must
// hold for every configuration.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "../testutil/canopus_harness.h"

namespace canopus::core {
namespace {

using testutil::CanopusCluster;

struct ShapeParam {
  int sls;
  int per_sl;
  int arity;
  std::uint64_t seed;
};

void PrintTo(const ShapeParam& p, std::ostream* os) {
  *os << p.sls << "sl_x" << p.per_sl << "_arity" << p.arity << "_seed"
      << p.seed;
}

class CanopusShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(CanopusShapeTest, AgreementAndCompleteness) {
  const ShapeParam p = GetParam();
  CanopusCluster c(p.sls, p.per_sl, {}, p.seed, p.arity);
  const std::size_t n = c.size();

  // Several bursts of writes, unique (key, value) per write so completeness
  // is checkable.
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 4; ++burst) {
    for (std::size_t i = 0; i < n; ++i) {
      c.write_at((1 + 25 * burst) * kMillisecond + static_cast<Time>(i), i,
                 /*key=*/expected, /*val=*/expected * 7 + 1);
      ++expected;
    }
  }
  c.sim().run_until(4 * kSecond);

  // Agreement: identical digests (same writes, same order) on every node.
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < n; ++i) {
    // Completeness: nothing lost, nothing duplicated.
    EXPECT_EQ(c.node(i).committed_writes(), expected) << "node " << i;
  }
  // State convergence: every key holds its unique value.
  for (std::uint64_t k = 0; k < expected; ++k)
    EXPECT_EQ(c.node(0).store().read(k), k * 7 + 1) << "key " << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CanopusShapeTest,
    ::testing::Values(ShapeParam{1, 3, 0, 1}, ShapeParam{1, 5, 0, 2},
                      ShapeParam{2, 2, 0, 3}, ShapeParam{2, 4, 0, 4},
                      ShapeParam{3, 3, 0, 5}, ShapeParam{3, 5, 0, 6},
                      ShapeParam{4, 2, 2, 7}, ShapeParam{4, 3, 2, 8},
                      ShapeParam{5, 2, 0, 9}, ShapeParam{6, 2, 3, 10},
                      ShapeParam{3, 3, 0, 11}, ShapeParam{3, 3, 0, 12}),
    ::testing::PrintToStringParamName());

class CanopusSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanopusSeedSweep, FifoPerOriginUnderRandomLoad) {
  CanopusCluster c(2, 3, {}, GetParam());
  // Each node issues an increasing sequence on its own key; the committed
  // order per key must be strictly increasing (FIFO at the origin implies
  // monotone values).
  std::map<std::uint64_t, std::uint64_t> last_seen;
  bool monotone = true;
  c.node(0).on_commit = [&](CycleId, const std::vector<kv::Request>& ws) {
    for (const auto& w : ws) {
      auto [it, fresh] = last_seen.emplace(w.key, w.value);
      if (!fresh) {
        if (w.value <= it->second) monotone = false;
        it->second = w.value;
      }
    }
  };
  Rng rng(GetParam() * 77 + 1);
  std::vector<std::uint64_t> next(6, 1);
  for (int i = 0; i < 60; ++i) {
    const auto node = static_cast<std::size_t>(rng.below(6));
    c.write_at(kMillisecond + static_cast<Time>(i) * 2 * kMillisecond, node,
               /*key=*/node, /*val=*/next[node]++);
  }
  c.sim().run_until(4 * kSecond);
  EXPECT_TRUE(monotone);
  EXPECT_TRUE(c.all_agree());
  std::uint64_t total = 0;
  for (auto v : next) total += v - 1;
  EXPECT_EQ(c.node(3).committed_writes(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanopusSeedSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

TEST(CanopusLinearizability, ReadsNeverTravelBackwards) {
  // Single register written with increasing values; every read served
  // anywhere must observe a monotonically consistent history in real time:
  // once SOME node has served value v, no later-submitted read may return
  // a value older than the newest committed value at its submit time.
  CanopusCluster c(2, 3);
  std::vector<std::uint64_t> observed;
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.node(i).on_read = [&](const kv::Request& r, std::uint64_t v) {
      if (r.key == 0) observed.push_back(v);
    };
  }
  // Interleave writes (value = 1..8) at node 0 and reads at other nodes.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    const Time t = static_cast<Time>(i) * 120 * kMillisecond;
    c.write_at(t, 0, 0, i);
    c.read_at(t + 40 * kMillisecond, (i % 5) + 1, 0);
  }
  c.sim().run_until(5 * kSecond);
  ASSERT_GE(observed.size(), 4u);
  // Values never decrease in service order (single writer, FIFO commits,
  // reads linearized with writes).
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GE(observed[i], observed[i - 1]) << i;
}

TEST(CanopusLinearizability, ReadAfterRemoteCommitSeesWrite) {
  // Real-time constraint: a read submitted AFTER a write has committed
  // everywhere must return that write (or newer).
  CanopusCluster c(3, 3);
  c.write_at(kMillisecond, 0, 42, 4242);
  c.sim().run_until(kSecond);
  for (std::size_t i = 0; i < 9; ++i)
    ASSERT_EQ(c.node(i).store().read(42), 4242u);

  std::uint64_t read_value = 0;
  c.node(7).on_read = [&](const kv::Request&, std::uint64_t v) {
    read_value = v;
  };
  c.read_at(c.sim().now(), 7, 42);
  c.sim().run_until(c.sim().now() + kSecond);
  EXPECT_EQ(read_value, 4242u);
}

class PipelinedWanTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelinedWanTest, AgreementAcrossDatacenters) {
  core::Config cfg;
  cfg.pipelining = true;
  auto c = CanopusCluster::multi_dc(GetParam(), 3, cfg);
  const std::size_t n = c.size();
  std::uint64_t expected = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (std::size_t i = 0; i < n; ++i) {
      c.write_at((1 + 20 * burst) * kMillisecond + static_cast<Time>(i), i,
                 expected, expected + 1);
      ++expected;
    }
  }
  c.sim().run_until(6 * kSecond);
  ASSERT_TRUE(c.all_agree());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(c.node(i).committed_writes(), expected) << i;
}

INSTANTIATE_TEST_SUITE_P(DcCounts, PipelinedWanTest,
                         ::testing::Values(2, 3, 5, 7));

TEST(CanopusProperty, BatchCapNeverDropsRequests) {
  // Drive far more writes than one batch; the 1000-request cap may split
  // them across cycles but every single one must commit exactly once.
  core::Config cfg;
  cfg.max_batch = 50;
  CanopusCluster c(2, 3, cfg);
  for (std::uint64_t i = 0; i < 400; ++i)
    c.write_at(kMillisecond + static_cast<Time>(i % 7), i % 6, i, i + 1);
  c.sim().run_until(5 * kSecond);
  ASSERT_TRUE(c.all_agree());
  EXPECT_EQ(c.node(0).committed_writes(), 400u);
  // Cap forced multiple cycles.
  EXPECT_GT(c.node(0).last_committed_cycle(), 1u);
}

TEST(CanopusProperty, LeaseReadsStillSeeCommittedWrites) {
  core::Config cfg;
  cfg.write_leases = true;
  cfg.lease_cycles = 2;
  CanopusCluster c(2, 3, cfg);
  std::vector<std::uint64_t> seen;
  c.node(4).on_read = [&](const kv::Request&, std::uint64_t v) {
    seen.push_back(v);
  };
  c.write_at(kMillisecond, 0, 5, 55);
  c.sim().run_until(kSecond);
  // Lease long expired: read is served immediately but must still see the
  // committed value.
  c.read_at(c.sim().now(), 4, 5);
  c.sim().run_until(c.sim().now() + 50 * kMillisecond);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 55u);
}

}  // namespace
}  // namespace canopus::core
