// ThreadedRuntime smoke tests: message delivery between real node threads,
// timer-wheel firing against the wall clock, driver-side fault injection
// (crash/recover, sever/heal) and closure injection via Host::post.
#include "runtime/threaded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "simnet/payload_testing.h"

namespace canopus::runtime {
namespace {

using simnet::Message;

// Polls `done` for up to `ms` wall milliseconds.
bool wait_for(const std::function<bool()>& done, int ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// Echoes every int payload back to its sender until `limit` hops ran.
class Echo : public simnet::Process {
 public:
  explicit Echo(int limit = 0, NodeId first_dst = kInvalidNode)
      : limit_(limit), first_dst_(first_dst) {}

  void on_start() override {
    if (first_dst_ != kInvalidNode) send(first_dst_, 16, int{0});
  }
  void on_message(const Message& m) override {
    received.fetch_add(1, std::memory_order_relaxed);
    const int v = *m.as<int>();
    if (v < limit_) send(m.src(), 16, int{v + 1});
  }

  // Exposed for Host::post-driven sends from the test driver.
  void do_send(NodeId dst, int v) { send(dst, 16, int{v}); }

  std::atomic<int> received{0};

 private:
  int limit_;
  NodeId first_dst_;
};

// Re-arms itself `rounds` times with a short delay.
class Beeper : public simnet::Process {
 public:
  explicit Beeper(int rounds) : rounds_(rounds) {}
  void on_start() override { arm(); }
  void on_message(const Message&) override {}

  std::atomic<int> fired{0};

 private:
  void arm() {
    after(200 * kMicrosecond, [this] {
      if (fired.fetch_add(1, std::memory_order_relaxed) + 1 < rounds_) arm();
    });
  }
  int rounds_;
};

TEST(ThreadedRuntime, StartStopIdle) {
  ThreadedRuntime rt(2, /*seed=*/1);
  Echo a, b;
  rt.attach(0, a);
  rt.attach(1, b);
  rt.start();
  EXPECT_TRUE(rt.running());
  rt.stop();
  EXPECT_FALSE(rt.running());
  rt.stop();  // idempotent
}

TEST(ThreadedRuntime, PingPongAcrossThreads) {
  constexpr int kHops = 2000;
  ThreadedRuntime rt(2, 1);
  Echo a(kHops, /*first_dst=*/1);  // kicks off the rally
  Echo b(kHops);
  rt.attach(0, a);
  rt.attach(1, b);
  rt.start();
  ASSERT_TRUE(wait_for([&] {
    return a.received.load() + b.received.load() >= kHops;
  }));
  rt.stop();
  const auto total = rt.total_stats();
  EXPECT_EQ(total.delivered,
            static_cast<std::uint64_t>(a.received.load() + b.received.load()));
  EXPECT_EQ(total.dropped, 0u);
}

TEST(ThreadedRuntime, TimerWheelFiresOnWallClock) {
  ThreadedRuntime rt(1, 1);
  Beeper p(10);
  rt.attach(0, p);
  rt.start();
  ASSERT_TRUE(wait_for([&] { return p.fired.load() >= 10; }));
  rt.stop();
  EXPECT_GE(rt.stats(0).timers, 10u);
}

TEST(ThreadedRuntime, PostRunsInNodeContext) {
  ThreadedRuntime rt(2, 1);
  Echo a, b;
  rt.attach(0, a);
  rt.attach(1, b);
  rt.start();
  // Sends must originate from a node's execution context; post() provides
  // the driver with exactly that.
  Echo* pa = &a;
  rt.post(0, [pa] { pa->do_send(1, 100); });
  ASSERT_TRUE(wait_for([&] { return b.received.load() >= 1; }));
  rt.stop();
  EXPECT_GE(rt.stats(0).posts, 1u);
}

TEST(ThreadedRuntime, CrashDropsRecoverResumes) {
  ThreadedRuntime rt(2, 1);
  Echo a, b;
  rt.attach(0, a);
  rt.attach(1, b);
  rt.start();

  rt.crash(1);
  EXPECT_FALSE(rt.is_up(1));
  Echo* pa = &a;
  rt.post(0, [pa] { pa->do_send(1, 100); });
  // The send is dropped (sender-side: dst is down).
  ASSERT_TRUE(wait_for([&] { return rt.stats(0).dropped >= 1; }));
  EXPECT_EQ(b.received.load(), 0);

  rt.recover(1);
  EXPECT_TRUE(rt.is_up(1));
  rt.post(0, [pa] { pa->do_send(1, 100); });
  ASSERT_TRUE(wait_for([&] { return b.received.load() >= 1; }));
  rt.stop();
}

TEST(ThreadedRuntime, SeverIsDirectedHealRestores) {
  ThreadedRuntime rt(2, 1);
  Echo a, b;
  rt.attach(0, a);
  rt.attach(1, b);
  rt.start();

  rt.sever(0, 1);
  Echo* pa = &a;
  Echo* pb = &b;
  rt.post(0, [pa] { pa->do_send(1, 100); });  // dropped: 0 -> 1 severed
  rt.post(1, [pb] { pb->do_send(0, 100); });  // delivered: 1 -> 0 intact
  ASSERT_TRUE(wait_for([&] { return a.received.load() >= 1; }));
  EXPECT_EQ(b.received.load(), 0);
  ASSERT_TRUE(wait_for([&] { return rt.stats(0).dropped >= 1; }));

  rt.heal(0, 1);
  rt.post(0, [pa] { pa->do_send(1, 100); });
  ASSERT_TRUE(wait_for([&] { return b.received.load() >= 1; }));
  rt.stop();
}

// Arms one nominal-delay timer on start and records when it ran.
class OneShot : public simnet::Process {
 public:
  OneShot(Time delay, std::atomic<int>& seq) : delay_(delay), seq_(seq) {}
  void on_start() override {
    after(delay_, [this] {
      order.store(seq_.fetch_add(1), std::memory_order_relaxed);
      fired.store(true, std::memory_order_release);
    });
  }
  void on_message(const Message&) override {}

  std::atomic<bool> fired{false};
  std::atomic<int> order{-1};

 private:
  Time delay_;
  std::atomic<int>& seq_;
};

TEST(ThreadedRuntime, ClockSkewAcceleratesTimerArming) {
  // Both nodes arm the same nominal 200 ms one-shot; node 1 runs at rate
  // 4.0, so its timer arms at ~50 ms wall while node 0's cannot fire
  // before 200 ms (the wheel never fires early). The 150 ms cushion
  // dwarfs scheduler jitter even on a loaded CI box — a rate-ratio
  // assertion here would flake under oversubscription, where wakeup
  // latency, not the armed delay, paces short timers.
  ThreadedRuntime rt(2, 1);
  std::atomic<int> seq{0};
  OneShot nominal(200 * kMillisecond, seq), skewed(200 * kMillisecond, seq);
  rt.attach(0, nominal);
  rt.attach(1, skewed);
  rt.set_clock_skew(1, /*rate=*/4.0, /*offset=*/0);
  rt.start();
  ASSERT_TRUE(wait_for([&] { return skewed.fired.load(); }));
  EXPECT_FALSE(nominal.fired.load())
      << "unskewed 200 ms timer fired within the skewed node's ~50 ms";
  ASSERT_TRUE(wait_for([&] { return nominal.fired.load(); }));
  EXPECT_LT(skewed.order.load(), nominal.order.load());
  rt.stop();
}

TEST(ThreadedRuntime, ManyNodesAllToAll) {
  constexpr int kN = 5;
  ThreadedRuntime rt(kN, 7);
  std::vector<std::unique_ptr<Echo>> procs;
  for (int i = 0; i < kN; ++i) {
    procs.push_back(std::make_unique<Echo>());
    rt.attach(static_cast<NodeId>(i), *procs.back());
  }
  rt.start();
  for (int i = 0; i < kN; ++i) {
    Echo* p = procs[static_cast<std::size_t>(i)].get();
    rt.post(static_cast<NodeId>(i), [p, i] {
      for (int d = 0; d < kN; ++d)
        if (d != i) p->do_send(static_cast<NodeId>(d), 0);
    });
  }
  ASSERT_TRUE(wait_for([&] {
    for (const auto& p : procs)
      if (p->received.load() < kN - 1) return false;
    return true;
  }));
  rt.stop();
  EXPECT_EQ(rt.total_stats().delivered,
            static_cast<std::uint64_t>(kN * (kN - 1)));
}

}  // namespace
}  // namespace canopus::runtime
