// TimerWheel: firing accuracy (never early, at most one tick late),
// cancellation with generation checks, cross-level cascades, and re-arm
// from inside a firing closure.
#include "runtime/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace canopus::runtime {
namespace {

constexpr Time kTick = Time(1) << TimerWheel::kTickBits;

TEST(TimerWheel, FiresAtDeadlineNeverEarly) {
  TimerWheel w;
  Time fired_at = -1;
  const Time when = 5 * kTick + 17;
  w.arm(when, [&] { fired_at = when; });
  EXPECT_EQ(w.armed(), 1u);

  // Advancing to just before the deadline must not fire.
  EXPECT_EQ(w.advance(when - kTick), 0u);
  EXPECT_EQ(fired_at, -1);
  // Within one tick past the deadline it must have fired.
  EXPECT_EQ(w.advance(when + kTick), 1u);
  EXPECT_EQ(fired_at, when);
  EXPECT_EQ(w.armed(), 0u);
}

TEST(TimerWheel, DueTimerFiresOnNextAdvance) {
  TimerWheel w;
  w.advance(100 * kTick);
  int fired = 0;
  w.arm(3 * kTick, [&] { ++fired; });  // deadline already in the past
  EXPECT_EQ(w.advance(102 * kTick), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelAndStaleCancel) {
  TimerWheel w;
  int fired = 0;
  const simnet::EventId a = w.arm(2 * kTick, [&] { fired += 1; });
  const simnet::EventId b = w.arm(2 * kTick, [&] { fired += 10; });
  w.cancel(a);
  EXPECT_EQ(w.armed(), 1u);
  w.cancel(a);  // double-cancel: ignored
  w.cancel(simnet::kInvalidEvent);
  w.advance(4 * kTick);
  EXPECT_EQ(fired, 10);
  w.cancel(b);  // cancel after fire: generation check ignores it
  // The cell `a` used is recycled; cancelling `a` again must not disturb a
  // freshly armed timer reusing that cell.
  int late = 0;
  w.arm(8 * kTick, [&] { ++late; });
  w.cancel(a);
  w.cancel(b);
  w.advance(10 * kTick);
  EXPECT_EQ(late, 1);
}

TEST(TimerWheel, SameTickFiresInArmOrder) {
  TimerWheel w;
  std::vector<int> order;
  const Time when = 4 * kTick + 1;
  for (int i = 0; i < 5; ++i) w.arm(when + i, [&order, i] { order.push_back(i); });
  w.advance(6 * kTick);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheel, ReArmFromClosure) {
  TimerWheel w;
  int ticks = 0;
  // A periodic timer re-arming itself from its own closure (the protocols'
  // heartbeat pattern). std::function allows the self-reference.
  std::function<void()> again = [&] {
    ++ticks;
    if (ticks < 5) w.arm(Time(ticks + 1) * 10 * kTick, [&] { again(); });
  };
  w.arm(10 * kTick, [&] { again(); });
  w.advance(100 * kTick);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(w.armed(), 0u);
}

// Random deadlines across all wheel levels (microseconds to minutes),
// advanced in random steps: every timer fires exactly once, never before
// its deadline, and within one tick after it.
TEST(TimerWheel, RandomizedAccuracyAcrossLevels) {
  Rng rng(20260808);
  TimerWheel w;
  struct Armed {
    Time when;
    int fires = 0;
    Time fired_at = -1;
  };
  std::vector<Armed> timers(500);
  Time now = 0;
  // Horizon: ~2 minutes of virtual time — reaches level 3 of the wheel.
  const Time horizon = 120 * kSecond;
  for (std::size_t i = 0; i < timers.size(); ++i) {
    timers[i].when = Time(rng.below(std::uint64_t(horizon))) + 1;
    Armed* t = &timers[i];
    Time* now_p = &now;
    w.arm(t->when, [t, now_p] {
      t->fires++;
      t->fired_at = *now_p;
    });
  }
  EXPECT_EQ(w.armed(), timers.size());
  while (now < horizon + kTick) {
    now += Time(rng.below(std::uint64_t(400 * kMicrosecond))) + 1;
    w.advance(now);
  }
  for (const Armed& t : timers) {
    ASSERT_EQ(t.fires, 1);
    // Never early; "fired_at" is the advance() target, which may overshoot
    // the deadline by the advance step, but the firing *tick* must be
    // within one tick of the deadline — approximate via fired_at >= when.
    EXPECT_GE(t.fired_at, t.when);
  }
  EXPECT_EQ(w.armed(), 0u);
}

TEST(TimerWheel, NextDeadlineForIdleParking) {
  TimerWheel w;
  EXPECT_EQ(w.next_deadline(), -1);
  w.arm(50 * kTick, [] {});
  const simnet::EventId early = w.arm(7 * kTick, [] {});
  EXPECT_EQ(w.next_deadline(), 7 * kTick);
  w.cancel(early);
  EXPECT_EQ(w.next_deadline(), 50 * kTick);
}

TEST(TimerWheel, GrowsPastPreallocationAndRecycles) {
  TimerWheel w(0, 4);  // tiny preallocation: force growth
  int fired = 0;
  for (int i = 0; i < 1000; ++i)
    w.arm(Time(i % 60 + 1) * kTick, [&] { ++fired; });
  w.advance(70 * kTick);
  EXPECT_EQ(fired, 1000);
  // All 1000 cells are free again; re-arming reuses them.
  for (int i = 0; i < 1000; ++i)
    w.arm(80 * kTick, [&] { ++fired; });
  w.advance(90 * kTick);
  EXPECT_EQ(fired, 2000);
}

}  // namespace
}  // namespace canopus::runtime
