// The bench Harness: CLI parsing and the BENCH_*.json emission contract
// that scripts/validate_bench_json.py and downstream tooling rely on.
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace canopus::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    ptrs.push_back(const_cast<char*>("bench"));
    for (auto& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

TEST(Harness, ParsesFlagsAndEmitsSchemaV1Json) {
  const std::string path = ::testing::TempDir() + "bench_util_test_out.json";
  Argv a({"--threads=3", "--full", "--json=" + path});
  Harness h(a.argc(), a.argv(), "testfig", "A \"quoted\" title", "Sec 0");
  EXPECT_TRUE(h.full());
  EXPECT_EQ(h.pool().threads(), 3u);

  workload::Measurement m;
  m.offered = 1'000.5;
  m.throughput = 900.25;
  m.median = 2 * kMillisecond;
  m.p99 = 5 * kMillisecond;
  m.mean = 2.5 * kMillisecond;
  m.completed = 1234;
  workload::SearchResult res;
  res.sweep = {m, m};
  res.max = m;
  h.add_series("series one\n").attr("system", "Canopus").scalar("nodes", 9)
      .search(res)
      .point("at_70pct_of_max", m);
  h.add_series("empty series");  // no sweep, no max
  h.add_scalar("shape_ratio", 3.25);
  ASSERT_EQ(h.finish(), 0);

  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"schema\":\"canopus-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"figure\":\"testfig\""), std::string::npos);
  EXPECT_NE(json.find("\"title\":\"A \\\"quoted\\\" title\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":3"), std::string::npos);
  EXPECT_NE(json.find("\"wall_clock_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"events_processed\":"), std::string::npos);
  EXPECT_NE(json.find("\"events_per_second\":"), std::string::npos);
  EXPECT_NE(json.find("\"heap_allocations\":"), std::string::npos);
  EXPECT_NE(json.find("\"allocs_per_event\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"series one\\n\""), std::string::npos);
  EXPECT_NE(json.find("\"system\":\"Canopus\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":9"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"median_ns\":2000000"), std::string::npos);
  EXPECT_NE(json.find("\"at_70pct_of_max\""), std::string::npos);
  EXPECT_NE(json.find("\"max\":null"), std::string::npos);  // empty series
  EXPECT_NE(json.find("\"shape_ratio\":3.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Harness, DefaultsAreQuickModeAndFigureNamedJson) {
  Argv a({});
  // Write into a temp dir so the default path does not pollute the cwd:
  // default json path is relative, so chdir-free check of the name only.
  Harness h(a.argc(), a.argv(), "figx", "t", "r");
  EXPECT_FALSE(h.full());
  EXPECT_TRUE(h.quick());
  EXPECT_GE(h.pool().threads(), 1u);
}

}  // namespace
}  // namespace canopus::bench
