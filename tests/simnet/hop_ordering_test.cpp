// Regression test for the per-hop link reservation model: a message whose
// arrival at a shared link lies far in the future (long WAN propagation)
// must NOT delay a message that physically reaches that link earlier.
//
// Before the fix, Network::send reserved every hop at send-call time, so a
// WAN message sent first reserved the destination's down-link ~66 ms ahead
// and a local message sent a microsecond later queued behind the
// reservation — inflating intra-DC delivery by the WAN latency. This
// single modelling flaw tripled Canopus' WAN cycle times.
#include <gtest/gtest.h>

#include <memory>

#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Recorder : Process {
  std::vector<std::pair<Time, NodeId>> rx;
  void on_message(const Message& m) override {
    rx.push_back({sim().now(), m.src()});
  }
  void say(NodeId dst, std::size_t bytes) { send(dst, bytes, int{1}); }
};

TEST(HopOrdering, WanMessageDoesNotBlockEarlierLocalOne) {
  // Two DCs; a VA node sends to an IR node (one-way ~33 ms); a moment
  // later an IR-local node sends to the same destination. The local
  // message must arrive in ~intra-DC time, not after the WAN one.
  WanConfig wc;
  wc.servers_per_dc = {2, 1};
  wc.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(wc);
  Simulator sim;
  Network net(sim, c.topo, CpuModel{0, 0, 0});

  Recorder ir0, ir1, va;
  net.attach(c.servers[0], ir0);  // IR, destination
  net.attach(c.servers[1], ir1);  // IR, local sender
  net.attach(c.servers[2], va);   // VA, remote sender

  sim.at(0, [&] { va.say(c.servers[0], 1'000); });
  sim.at(1'000, [&] { ir1.say(c.servers[0], 1'000); });  // 1 us later
  sim.run();

  ASSERT_EQ(ir0.rx.size(), 2u);
  // Local message first (~0.1 ms intra-DC), WAN second (~33 ms).
  EXPECT_EQ(ir0.rx[0].second, c.servers[1]);
  EXPECT_LT(ir0.rx[0].first, kMillisecond);
  EXPECT_EQ(ir0.rx[1].second, c.servers[2]);
  EXPECT_GT(ir0.rx[1].first, 30 * kMillisecond);
}

TEST(HopOrdering, BandwidthContentionStillApplies) {
  // The fix must not lose bandwidth queueing: two large same-origin
  // messages to one destination still serialize on the shared down-link.
  RackConfig rc;
  rc.racks = 1;
  rc.servers_per_rack = 3;
  rc.clients_per_rack = 0;
  Cluster c = build_multi_rack(rc);
  Simulator sim;
  Network net(sim, c.topo, CpuModel{0, 0, 0});
  Recorder a, b, dst;
  net.attach(c.servers[0], a);
  net.attach(c.servers[1], b);
  net.attach(c.servers[2], dst);

  const std::size_t big = 1'000'000;  // 800 us serialization at 10 Gb/s
  sim.at(0, [&] {
    a.say(c.servers[2], big);
    b.say(c.servers[2], big);
  });
  sim.run();
  ASSERT_EQ(dst.rx.size(), 2u);
  EXPECT_GE(dst.rx[1].first - dst.rx[0].first,
            static_cast<Time>(static_cast<double>(big) / gbps(10.0)));
}

TEST(HopOrdering, PerPairFifoPreserved) {
  // Hop-by-hop scheduling must keep same-pair FIFO (protocol layers rely
  // on it).
  RackConfig rc;
  rc.racks = 2;
  rc.servers_per_rack = 1;
  rc.clients_per_rack = 0;
  Cluster c = build_multi_rack(rc);
  Simulator sim;
  Network net(sim, c.topo);
  Recorder a, b;
  net.attach(c.servers[0], a);
  net.attach(c.servers[1], b);
  sim.at(0, [&] {
    for (int i = 0; i < 20; ++i)
      a.say(c.servers[1], static_cast<std::size_t>(100 + 100 * (i % 3)));
  });
  sim.run();
  ASSERT_EQ(b.rx.size(), 20u);
  for (std::size_t i = 1; i < b.rx.size(); ++i)
    EXPECT_GE(b.rx[i].first, b.rx[i - 1].first);
}

}  // namespace
}  // namespace canopus::simnet
