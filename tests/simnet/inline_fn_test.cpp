#include "simnet/inline_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace canopus::simnet {
namespace {

TEST(InlineFn, DefaultIsEmpty) {
  InlineFn f;
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFn n = nullptr;
  EXPECT_FALSE(static_cast<bool>(n));
}

TEST(InlineFn, InvokesSmallCapture) {
  int hits = 0;
  InlineFn f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, SmallCapturesFitInline) {
  // The contract the simnet call sites static_assert on: a this-pointer
  // plus a handful of scalars must never fall back to the heap.
  int a = 0, b = 0, c = 0;
  auto small = [&a, &b, &c, x = std::int64_t{1}, y = std::int64_t{2}] {
    a = static_cast<int>(x + y) + b + c;
  };
  static_assert(InlineFn::fits_inline<decltype(small)>);
  InlineFn f = std::move(small);
  f();
  EXPECT_EQ(a, 3);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  InlineFn f = [&hits] { ++hits; };
  InlineFn g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, MoveAssignReplacesAndDestroysOld) {
  auto counter = std::make_shared<int>(0);
  ASSERT_EQ(counter.use_count(), 1);
  InlineFn f = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  f = InlineFn([counter] { *counter += 10; });
  EXPECT_EQ(counter.use_count(), 2);  // the replaced closure released its ref
  f();
  EXPECT_EQ(*counter, 10);
  f = nullptr;
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFn, MoveOnlyCapture) {
  auto owned = std::make_unique<int>(7);
  int got = 0;
  InlineFn f = [p = std::move(owned), &got] { got = *p; };
  InlineFn g = std::move(f);
  g();
  EXPECT_EQ(got, 7);
}

TEST(InlineFn, HeapFallbackForLargeCapture) {
  std::array<std::int64_t, 32> big{};  // 256 bytes: over the inline budget
  big[31] = 42;
  std::int64_t got = 0;
  auto large = [big, &got] { got = big[31]; };
  static_assert(!InlineFn::fits_inline<decltype(large)>);
  InlineFn f = std::move(large);
  InlineFn g = std::move(f);  // heap case: move relocates a pointer
  g();
  EXPECT_EQ(got, 42);
}

TEST(InlineFn, HeapFallbackDestroysCapture) {
  auto counter = std::make_shared<int>(0);
  std::array<std::int64_t, 32> pad{};
  {
    InlineFn f = [counter, pad] { (void)pad; };
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, WrapsStdFunction) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  static_assert(InlineFn::fits_inline<std::function<void()>>);
  InlineFn f = fn;  // copies the std::function into inline storage
  f();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, ReassignmentLoopDoesNotLeak) {
  auto counter = std::make_shared<int>(0);
  InlineFn f;
  for (int i = 0; i < 100; ++i) f = [counter, i] { *counter = i; };
  f();
  EXPECT_EQ(*counter, 99);
  EXPECT_EQ(counter.use_count(), 2);
}

}  // namespace
}  // namespace canopus::simnet
