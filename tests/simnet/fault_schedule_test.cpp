#include "simnet/fault_schedule.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Recorder : Process {
  std::vector<std::pair<Time, std::string>> received;
  void on_message(const Message& m) override {
    const auto* s = m.as<std::string>();
    received.push_back({sim().now(), s ? *s : std::string{}});
  }
  using Process::send;
  void say(NodeId dst, std::string text) { send(dst, 10, std::move(text)); }
};

class FaultScheduleTest : public ::testing::Test {
 protected:
  void build(int n, CpuModel cpu = CpuModel{0, 0, 0.0}) {
    RackConfig cfg;
    cfg.racks = 1;
    cfg.servers_per_rack = n;
    cfg.clients_per_rack = 0;
    cluster_ = build_multi_rack(cfg);
    net_ = std::make_unique<Network>(sim_, cluster_.topo, cpu);
    procs_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      net_->attach(cluster_.servers[static_cast<size_t>(i)],
                   procs_[static_cast<size_t>(i)]);
  }

  NodeId srv(int i) { return cluster_.servers[static_cast<size_t>(i)]; }

  Simulator sim_;
  Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<Recorder> procs_;
};

TEST_F(FaultScheduleTest, CrashAndRecoverFireAtScheduledTimes) {
  build(2);
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1))
      .recover_at(2 * kMillisecond, srv(1));
  sched.arm(*net_);

  // Sent before the crash: delivered. During: dropped. After: delivered.
  sim_.at(0, [&] { procs_[0].say(srv(1), "before"); });
  sim_.at(kMillisecond + 1, [&] { procs_[0].say(srv(1), "during"); });
  sim_.at(2 * kMillisecond + 1, [&] { procs_[0].say(srv(1), "after"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 2u);
  EXPECT_EQ(procs_[1].received[0].second, "before");
  EXPECT_EQ(procs_[1].received[1].second, "after");
  EXPECT_EQ(net_->stats().dropped, 1u);
}

TEST_F(FaultScheduleTest, SeverAndHealDirectedPair) {
  build(2);
  FaultSchedule sched;
  sched.sever_at(kMillisecond, srv(0), srv(1))
      .heal_at(2 * kMillisecond, srv(0), srv(1));
  sched.arm(*net_);

  sim_.at(kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "blocked");
    procs_[1].say(srv(0), "open");  // reverse direction unaffected
  });
  sim_.at(2 * kMillisecond + 1, [&] { procs_[0].say(srv(1), "healed"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(procs_[1].received[0].second, "healed");
  ASSERT_EQ(procs_[0].received.size(), 1u);
}

TEST_F(FaultScheduleTest, PartitionSeversBothDirections) {
  build(2);
  FaultSchedule sched;
  sched.partition_at(kMillisecond, srv(0), srv(1))
      .join_at(2 * kMillisecond, srv(0), srv(1));
  EXPECT_EQ(sched.events().size(), 4u);
  sched.arm(*net_);

  sim_.at(kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "x");
    procs_[1].say(srv(0), "y");
  });
  sim_.at(2 * kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "x2");
    procs_[1].say(srv(0), "y2");
  });
  sim_.run();
  ASSERT_EQ(procs_[0].received.size(), 1u);
  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(net_->stats().dropped, 2u);
}

TEST_F(FaultScheduleTest, HookOverridesDefaultApplication) {
  build(2);
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1));

  std::vector<FaultEvent> observed;
  sched.arm(*net_, [&](Network& net, const FaultEvent& ev) {
    observed.push_back(ev);
    FaultSchedule::apply(net, ev);  // the hook decides to apply it
  });
  sim_.run();

  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(observed[0].a, srv(1));
  EXPECT_EQ(observed[0].at, kMillisecond);
  EXPECT_FALSE(net_->is_up(srv(1)));
}

TEST_F(FaultScheduleTest, ProbeArmedBeforeScheduleSeesPreFaultState) {
  build(2);
  // The runner relies on FIFO tie-breaking: a probe scheduled before the
  // schedule is armed observes the state before a same-timestamp fault.
  bool up_at_probe = false;
  sim_.at(kMillisecond, [&] { up_at_probe = net_->is_up(srv(1)); });
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1));
  sched.arm(*net_);
  sim_.run();
  EXPECT_TRUE(up_at_probe);
  EXPECT_FALSE(net_->is_up(srv(1)));
}

TEST(FaultKindNameTest, AllKindsNamed) {
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kRecover), "recover");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kSever), "sever");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kHeal), "heal");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kCpuSlow), "cpu_slow");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kCpuNormal), "cpu_normal");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kFlapStart), "flap_start");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kFlapStop), "flap_stop");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kDupStart), "dup_start");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kDupStop), "dup_stop");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kReorderStart),
               "reorder_start");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kReorderStop),
               "reorder_stop");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kSkewSet), "skew_set");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kSkewClear), "skew_clear");
}

TEST(FaultScheduleBuilder, DoubleSeverOfSamePairDedups) {
  // An idempotent double-sever (a scenario composed of overlapping
  // partition helpers) collapses to one event; so does its double-heal.
  FaultSchedule s;
  s.sever_at(kMillisecond, 0, 1).sever_at(2 * kMillisecond, 0, 1);
  EXPECT_EQ(s.events().size(), 1u);
  s.heal_at(3 * kMillisecond, 0, 1).heal_at(4 * kMillisecond, 0, 1);
  EXPECT_EQ(s.events().size(), 2u);
  // Re-severing after the heal is a NEW fault, not a duplicate.
  s.sever_at(5 * kMillisecond, 0, 1);
  EXPECT_EQ(s.events().size(), 3u);
  // The reverse direction is a distinct pair.
  s.sever_at(5 * kMillisecond, 1, 0);
  EXPECT_EQ(s.events().size(), 4u);
  // A heal with no sever open for the pair is dropped outright.
  FaultSchedule t;
  t.heal_at(kMillisecond, 3, 4);
  EXPECT_TRUE(t.empty());
}

TEST(FaultScheduleBuilder, OverlappingPartitionsDedup) {
  FaultSchedule s;
  s.partition_at(kMillisecond, 0, 1).partition_at(2 * kMillisecond, 0, 1);
  EXPECT_EQ(s.events().size(), 2u);  // second partition: both severs open
  s.join_at(3 * kMillisecond, 0, 1).join_at(4 * kMillisecond, 0, 1);
  EXPECT_EQ(s.events().size(), 4u);
}

TEST_F(FaultScheduleTest, DuplicationDeliversEchoCopy) {
  build(2);
  FaultSchedule sched;
  sched.dup_at(kMillisecond, srv(0), srv(1), kMillisecond)
      .dup_stop_at(5 * kMillisecond, srv(0), srv(1));
  sched.arm(*net_);

  sim_.at(2 * kMillisecond, [&] { procs_[0].say(srv(1), "echo"); });
  sim_.at(6 * kMillisecond, [&] { procs_[0].say(srv(1), "single"); });
  sim_.run();

  // The duplicated send arrives twice, the echo trailing by the
  // configured delay; after dup_stop messages deliver once again.
  ASSERT_EQ(procs_[1].received.size(), 3u);
  EXPECT_EQ(procs_[1].received[0].second, "echo");
  EXPECT_EQ(procs_[1].received[1].second, "echo");
  EXPECT_EQ(procs_[1].received[1].first - procs_[1].received[0].first,
            kMillisecond);
  EXPECT_EQ(procs_[1].received[2].second, "single");
  EXPECT_EQ(net_->stats().duplicated, 1u);
}

TEST_F(FaultScheduleTest, FlapDropsDuringDownHalfPeriod) {
  build(2);
  // Flap with a 2 ms period from t=1 ms: the pair is down during the
  // first half of each period — [1,2) down, [2,3) up, [3,4) down...
  FaultSchedule sched;
  sched.flap_at(kMillisecond, srv(0), srv(1), 2 * kMillisecond)
      .flap_stop_at(10 * kMillisecond, srv(0), srv(1));
  sched.arm(*net_);

  sim_.at(kMillisecond + kMillisecond / 2,
          [&] { procs_[0].say(srv(1), "down1"); });
  sim_.at(2 * kMillisecond + kMillisecond / 2,
          [&] { procs_[0].say(srv(1), "up1"); });
  sim_.at(3 * kMillisecond + kMillisecond / 2,
          [&] { procs_[0].say(srv(1), "down2"); });
  sim_.at(11 * kMillisecond, [&] { procs_[0].say(srv(1), "stopped"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 2u);
  EXPECT_EQ(procs_[1].received[0].second, "up1");
  EXPECT_EQ(procs_[1].received[1].second, "stopped");
  EXPECT_EQ(net_->stats().dropped, 2u);
}

TEST_F(FaultScheduleTest, CpuSlowScalesComputeCost) {
  build(2, CpuModel{10'000, 10'000, 0.0});  // 10 us fixed send/recv cost
  FaultSchedule sched;
  sched.cpu_slow_at(kMillisecond, srv(0), 100.0)
      .cpu_normal_at(10 * kMillisecond, srv(0));
  sched.arm(*net_);

  sim_.at(0, [&] { procs_[0].say(srv(1), "fast"); });
  sim_.at(kMillisecond + 1, [&] { procs_[0].say(srv(1), "slowed"); });
  sim_.at(10 * kMillisecond + 1, [&] { procs_[0].say(srv(1), "fast2"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 3u);
  const Time lat_fast = procs_[1].received[0].first;
  const Time lat_slow = procs_[1].received[1].first - (kMillisecond + 1);
  const Time lat_fast2 =
      procs_[1].received[2].first - (10 * kMillisecond + 1);
  // Degraded sender: its 10 us send cost became 1 ms. After cpu_normal the
  // latency returns EXACTLY to the baseline (factor 1.0 takes the
  // unscaled code path — bit-identity when the palette is off).
  EXPECT_EQ(lat_fast, lat_fast2);
  EXPECT_GE(lat_slow - lat_fast, 900'000);
}

TEST_F(FaultScheduleTest, ReorderCanFlipDeliveryOrder) {
  build(2);
  FaultSchedule sched;
  sched.reorder_at(0, srv(0), srv(1), 5 * kMillisecond)
      .reorder_stop_at(50 * kMillisecond, srv(0), srv(1));
  sched.arm(*net_);

  // A burst of closely spaced messages through a 5 ms jitter window MUST
  // arrive out of order (and deterministically so — the per-pair jitter
  // RNG is derived from the simulator seed and the pair alone).
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i)
    sim_.at(kMillisecond + i * 1'000,
            [&, i] { procs_[0].say(srv(1), std::to_string(i)); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), static_cast<std::size_t>(kBurst));
  bool flipped = false;
  for (std::size_t i = 1; i < procs_[1].received.size(); ++i)
    flipped |= std::stoi(procs_[1].received[i].second) <
               std::stoi(procs_[1].received[i - 1].second);
  EXPECT_TRUE(flipped) << "jittered burst arrived fully in order";
  EXPECT_EQ(net_->stats().reordered, static_cast<std::uint64_t>(kBurst));
}

struct TimerProc : Process {
  Time fired_at = -1;
  void on_start() override {
    // Indirection: the outer timer is armed at t=0 BEFORE the skew event
    // applies (control events at t >= 1 ms); the inner, measured timer is
    // armed from node context at t=2 ms, under skew.
    after(2 * kMillisecond, [this] {
      after(100 * kMillisecond, [this] { fired_at = sim().now(); });
    });
  }
  void on_message(const Message&) override {}
};

TEST(FaultScheduleGrayTest, ClockSkewScalesAndOffsetsTimerArming) {
  Simulator sim;
  RackConfig cfg;
  cfg.racks = 1;
  cfg.servers_per_rack = 3;
  cfg.clients_per_rack = 0;
  const Cluster cluster = build_multi_rack(cfg);
  Network net(sim, cluster.topo, CpuModel{0, 0, 0.0});
  TimerProc fast, normal, lagged;
  net.attach(cluster.servers[0], fast);
  net.attach(cluster.servers[1], normal);
  net.attach(cluster.servers[2], lagged);

  FaultSchedule sched;
  sched.skew_at(kMillisecond, cluster.servers[0], 2.0, 0)
      .skew_clear_at(500 * kMillisecond, cluster.servers[0])
      .skew_at(kMillisecond, cluster.servers[2], 1.0, 5 * kMillisecond)
      .skew_clear_at(500 * kMillisecond, cluster.servers[2]);
  sched.arm(net);
  sim.run();

  // All three armed a nominal 100 ms timer at t=2 ms. Rate 2.0 is a fast
  // clock (the timer fires at half the nominal delay); offset adds a
  // constant lag; the unskewed node is exact.
  EXPECT_EQ(normal.fired_at, 102 * kMillisecond);
  EXPECT_EQ(fast.fired_at, 52 * kMillisecond);
  EXPECT_EQ(lagged.fired_at, 107 * kMillisecond);
}

}  // namespace
}  // namespace canopus::simnet
