#include "simnet/fault_schedule.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Recorder : Process {
  std::vector<std::pair<Time, std::string>> received;
  void on_message(const Message& m) override {
    const auto* s = m.as<std::string>();
    received.push_back({sim().now(), s ? *s : std::string{}});
  }
  using Process::send;
  void say(NodeId dst, std::string text) { send(dst, 10, std::move(text)); }
};

class FaultScheduleTest : public ::testing::Test {
 protected:
  void build(int n) {
    RackConfig cfg;
    cfg.racks = 1;
    cfg.servers_per_rack = n;
    cfg.clients_per_rack = 0;
    cluster_ = build_multi_rack(cfg);
    net_ = std::make_unique<Network>(sim_, cluster_.topo,
                                     CpuModel{0, 0, 0.0});
    procs_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      net_->attach(cluster_.servers[static_cast<size_t>(i)],
                   procs_[static_cast<size_t>(i)]);
  }

  NodeId srv(int i) { return cluster_.servers[static_cast<size_t>(i)]; }

  Simulator sim_;
  Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<Recorder> procs_;
};

TEST_F(FaultScheduleTest, CrashAndRecoverFireAtScheduledTimes) {
  build(2);
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1))
      .recover_at(2 * kMillisecond, srv(1));
  sched.arm(*net_);

  // Sent before the crash: delivered. During: dropped. After: delivered.
  sim_.at(0, [&] { procs_[0].say(srv(1), "before"); });
  sim_.at(kMillisecond + 1, [&] { procs_[0].say(srv(1), "during"); });
  sim_.at(2 * kMillisecond + 1, [&] { procs_[0].say(srv(1), "after"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 2u);
  EXPECT_EQ(procs_[1].received[0].second, "before");
  EXPECT_EQ(procs_[1].received[1].second, "after");
  EXPECT_EQ(net_->stats().dropped, 1u);
}

TEST_F(FaultScheduleTest, SeverAndHealDirectedPair) {
  build(2);
  FaultSchedule sched;
  sched.sever_at(kMillisecond, srv(0), srv(1))
      .heal_at(2 * kMillisecond, srv(0), srv(1));
  sched.arm(*net_);

  sim_.at(kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "blocked");
    procs_[1].say(srv(0), "open");  // reverse direction unaffected
  });
  sim_.at(2 * kMillisecond + 1, [&] { procs_[0].say(srv(1), "healed"); });
  sim_.run();

  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(procs_[1].received[0].second, "healed");
  ASSERT_EQ(procs_[0].received.size(), 1u);
}

TEST_F(FaultScheduleTest, PartitionSeversBothDirections) {
  build(2);
  FaultSchedule sched;
  sched.partition_at(kMillisecond, srv(0), srv(1))
      .join_at(2 * kMillisecond, srv(0), srv(1));
  EXPECT_EQ(sched.events().size(), 4u);
  sched.arm(*net_);

  sim_.at(kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "x");
    procs_[1].say(srv(0), "y");
  });
  sim_.at(2 * kMillisecond + 1, [&] {
    procs_[0].say(srv(1), "x2");
    procs_[1].say(srv(0), "y2");
  });
  sim_.run();
  ASSERT_EQ(procs_[0].received.size(), 1u);
  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(net_->stats().dropped, 2u);
}

TEST_F(FaultScheduleTest, HookOverridesDefaultApplication) {
  build(2);
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1));

  std::vector<FaultEvent> observed;
  sched.arm(*net_, [&](Network& net, const FaultEvent& ev) {
    observed.push_back(ev);
    FaultSchedule::apply(net, ev);  // the hook decides to apply it
  });
  sim_.run();

  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(observed[0].a, srv(1));
  EXPECT_EQ(observed[0].at, kMillisecond);
  EXPECT_FALSE(net_->is_up(srv(1)));
}

TEST_F(FaultScheduleTest, ProbeArmedBeforeScheduleSeesPreFaultState) {
  build(2);
  // The runner relies on FIFO tie-breaking: a probe scheduled before the
  // schedule is armed observes the state before a same-timestamp fault.
  bool up_at_probe = false;
  sim_.at(kMillisecond, [&] { up_at_probe = net_->is_up(srv(1)); });
  FaultSchedule sched;
  sched.crash_at(kMillisecond, srv(1));
  sched.arm(*net_);
  sim_.run();
  EXPECT_TRUE(up_at_probe);
  EXPECT_FALSE(net_->is_up(srv(1)));
}

TEST(FaultKindNameTest, AllKindsNamed) {
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kRecover), "recover");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kSever), "sever");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kHeal), "heal");
}

}  // namespace
}  // namespace canopus::simnet
