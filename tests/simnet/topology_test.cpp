#include "simnet/topology.h"

#include <gtest/gtest.h>

namespace canopus::simnet {
namespace {

TEST(Topology, MultiRackCounts) {
  RackConfig cfg;
  cfg.racks = 3;
  cfg.servers_per_rack = 3;
  cfg.clients_per_rack = 5;
  Cluster c = build_multi_rack(cfg);
  EXPECT_EQ(c.servers.size(), 9u);
  EXPECT_EQ(c.clients.size(), 15u);
  EXPECT_EQ(c.topo.num_nodes(), 24u);
}

TEST(Topology, RackAssignment) {
  RackConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 3;
  cfg.clients_per_rack = 1;
  Cluster c = build_multi_rack(cfg);
  EXPECT_EQ(c.topo.rack_of(c.servers[0]), 0);
  EXPECT_EQ(c.topo.rack_of(c.servers[2]), 0);
  EXPECT_EQ(c.topo.rack_of(c.servers[3]), 1);
  EXPECT_EQ(c.topo.rack_of(c.clients[1]), 1);
}

TEST(Topology, SameRackPathIsTwoHops) {
  Cluster c = build_multi_rack({});
  const auto& p = c.topo.path(c.servers[0], c.servers[1]);
  EXPECT_EQ(p.size(), 2u);  // NIC up, NIC down
}

TEST(Topology, CrossRackPathTraversesAggregation) {
  RackConfig cfg;
  Cluster c = build_multi_rack(cfg);
  NodeId a = c.servers[0];                              // rack 0
  NodeId b = c.servers[static_cast<size_t>(cfg.servers_per_rack)];  // rack 1
  const auto& p = c.topo.path(a, b);
  EXPECT_EQ(p.size(), 4u);  // up, agg up, agg down, down
}

TEST(Topology, BaseLatencyAddsSerialization) {
  RackConfig cfg;
  cfg.nic_latency = 1'000;
  cfg.nic_gbps = 8.0;  // 1 byte/ns
  Cluster c = build_multi_rack(cfg);
  // Two links of 1000 ns propagation each plus 100 ns serialization each.
  EXPECT_EQ(c.topo.base_latency(c.servers[0], c.servers[1], 100), 2'200);
}

TEST(Topology, Table1MatrixIsMirroredAndSized) {
  const auto& m = table1_rtt_ms();
  ASSERT_EQ(m.size(), 7u);
  for (size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m[i].size(), 7u);
    for (size_t j = 0; j < m.size(); ++j) EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
  }
  // Spot checks against the paper's table.
  EXPECT_DOUBLE_EQ(m[1][0], 133);  // CA-IR
  EXPECT_DOUBLE_EQ(m[6][5], 322);  // FF-SY
  EXPECT_DOUBLE_EQ(m[3][3], 0.13); // TK intra
}

TEST(Topology, MultiDcRttMatchesMatrix) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3, 3};
  cfg.clients_per_dc = {1, 1, 1};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  ASSERT_EQ(c.servers.size(), 9u);

  NodeId ir = c.servers[0], ca = c.servers[3];
  const Time one_way = c.topo.base_latency(ir, ca, 1);
  const Time rtt = one_way + c.topo.base_latency(ca, ir, 1);
  // 133 ms +- serialization slack.
  EXPECT_NEAR(static_cast<double>(rtt), 133.0 * kMillisecond,
              0.01 * kMillisecond);
}

TEST(Topology, MultiDcIntraDcRttMatchesDiagonal) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  NodeId a = c.servers[0], b = c.servers[1];
  const Time rtt =
      c.topo.base_latency(a, b, 1) + c.topo.base_latency(b, a, 1);
  EXPECT_NEAR(static_cast<double>(rtt), 0.20 * kMillisecond,
              0.01 * kMillisecond);
}

TEST(Topology, MultiDcRejectsShortMatrix) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3, 3};
  cfg.rtt_ms = {{0.2}};
  EXPECT_THROW(build_multi_dc(cfg), std::invalid_argument);
}

TEST(Topology, DcAssignment) {
  WanConfig cfg;
  cfg.servers_per_dc = {2, 2};
  cfg.clients_per_dc = {1, 1};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  EXPECT_EQ(c.topo.dc_of(c.servers[0]), 0);
  EXPECT_EQ(c.topo.dc_of(c.servers[3]), 1);
  EXPECT_EQ(c.topo.dc_of(c.clients[0]), 0);
  EXPECT_EQ(c.topo.dc_of(c.clients[1]), 1);
}

}  // namespace
}  // namespace canopus::simnet
