#include "simnet/topology.h"

#include <gtest/gtest.h>

namespace canopus::simnet {
namespace {

TEST(Topology, MultiRackCounts) {
  RackConfig cfg;
  cfg.racks = 3;
  cfg.servers_per_rack = 3;
  cfg.clients_per_rack = 5;
  Cluster c = build_multi_rack(cfg);
  EXPECT_EQ(c.servers.size(), 9u);
  EXPECT_EQ(c.clients.size(), 15u);
  EXPECT_EQ(c.topo.num_nodes(), 24u);
}

TEST(Topology, RackAssignment) {
  RackConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 3;
  cfg.clients_per_rack = 1;
  Cluster c = build_multi_rack(cfg);
  EXPECT_EQ(c.topo.rack_of(c.servers[0]), 0);
  EXPECT_EQ(c.topo.rack_of(c.servers[2]), 0);
  EXPECT_EQ(c.topo.rack_of(c.servers[3]), 1);
  EXPECT_EQ(c.topo.rack_of(c.clients[1]), 1);
}

TEST(Topology, SameRackPathIsTwoHops) {
  Cluster c = build_multi_rack({});
  const auto& p = c.topo.path(c.servers[0], c.servers[1]);
  EXPECT_EQ(p.size(), 2u);  // NIC up, NIC down
}

TEST(Topology, CrossRackPathTraversesAggregation) {
  RackConfig cfg;
  Cluster c = build_multi_rack(cfg);
  NodeId a = c.servers[0];                              // rack 0
  NodeId b = c.servers[static_cast<size_t>(cfg.servers_per_rack)];  // rack 1
  const auto& p = c.topo.path(a, b);
  EXPECT_EQ(p.size(), 4u);  // up, agg up, agg down, down
}

TEST(Topology, BaseLatencyAddsSerialization) {
  RackConfig cfg;
  cfg.nic_latency = 1'000;
  cfg.nic_gbps = 8.0;  // 1 byte/ns
  Cluster c = build_multi_rack(cfg);
  // Two links of 1000 ns propagation each plus 100 ns serialization each.
  EXPECT_EQ(c.topo.base_latency(c.servers[0], c.servers[1], 100), 2'200);
}

TEST(Topology, Table1MatrixIsMirroredAndSized) {
  const auto& m = table1_rtt_ms();
  ASSERT_EQ(m.size(), 7u);
  for (size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m[i].size(), 7u);
    for (size_t j = 0; j < m.size(); ++j) EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
  }
  // Spot checks against the paper's table.
  EXPECT_DOUBLE_EQ(m[1][0], 133);  // CA-IR
  EXPECT_DOUBLE_EQ(m[6][5], 322);  // FF-SY
  EXPECT_DOUBLE_EQ(m[3][3], 0.13); // TK intra
}

TEST(Topology, MultiDcRttMatchesMatrix) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3, 3};
  cfg.clients_per_dc = {1, 1, 1};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  ASSERT_EQ(c.servers.size(), 9u);

  NodeId ir = c.servers[0], ca = c.servers[3];
  const Time one_way = c.topo.base_latency(ir, ca, 1);
  const Time rtt = one_way + c.topo.base_latency(ca, ir, 1);
  // 133 ms +- serialization slack.
  EXPECT_NEAR(static_cast<double>(rtt), 133.0 * kMillisecond,
              0.01 * kMillisecond);
}

TEST(Topology, MultiDcIntraDcRttMatchesDiagonal) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  NodeId a = c.servers[0], b = c.servers[1];
  const Time rtt =
      c.topo.base_latency(a, b, 1) + c.topo.base_latency(b, a, 1);
  EXPECT_NEAR(static_cast<double>(rtt), 0.20 * kMillisecond,
              0.01 * kMillisecond);
}

TEST(Topology, MultiDcRejectsShortMatrix) {
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3, 3};
  cfg.rtt_ms = {{0.2}};
  EXPECT_THROW(build_multi_dc(cfg), std::invalid_argument);
}

TEST(Topology, DcAssignment) {
  WanConfig cfg;
  cfg.servers_per_dc = {2, 2};
  cfg.clients_per_dc = {1, 1};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  EXPECT_EQ(c.topo.dc_of(c.servers[0]), 0);
  EXPECT_EQ(c.topo.dc_of(c.servers[3]), 1);
  EXPECT_EQ(c.topo.dc_of(c.clients[0]), 0);
  EXPECT_EQ(c.topo.dc_of(c.clients[1]), 1);
}

// --------------------------------------------------------------------------
// Shard maps + PDES lookahead (ISSUE 6): make_shard_map partitions sites,
// min_cut_latency is the conservative lookahead between shard pairs.
// --------------------------------------------------------------------------

TEST(ShardMap, MultiRackClampsToSiteCount) {
  Cluster c = build_multi_rack({});  // 3 racks
  ShardMap m = make_shard_map(c.topo, 8);
  EXPECT_EQ(m.num_shards, 3u);
  for (NodeId n = 0; n < c.topo.num_nodes(); ++n)
    EXPECT_EQ(m.node_shard[n], static_cast<std::uint32_t>(c.topo.rack_of(n)));
}

TEST(ShardMap, MultiRackFoldsSitesRoundRobin) {
  Cluster c = build_multi_rack({});  // 3 racks
  ShardMap m = make_shard_map(c.topo, 2);
  EXPECT_EQ(m.num_shards, 2u);
  for (NodeId n = 0; n < c.topo.num_nodes(); ++n)
    EXPECT_EQ(m.node_shard[n],
              static_cast<std::uint32_t>(c.topo.rack_of(n)) % 2u);
  for (LinkId l = 0; l < c.topo.num_links(); ++l)
    EXPECT_EQ(m.link_shard[l],
              static_cast<std::uint32_t>(c.topo.site_of_link(l)) % 2u);
}

TEST(ShardMap, ZeroRequestedShardsStillYieldsOne) {
  Cluster c = build_multi_rack({});
  EXPECT_EQ(make_shard_map(c.topo, 0).num_shards, 1u);
}

TEST(ShardMap, MultiRackMinCutIsUplinkLatency) {
  // The only shard-crossing hand-off in the rack fabric is the sender
  // rack's aggregation uplink: its arrival event schedules the downlink
  // hop in the destination rack's shard. Its latency is the lookahead.
  RackConfig cfg;
  cfg.uplink_latency = 2'000;
  Cluster c = build_multi_rack(cfg);
  ShardMap m = make_shard_map(c.topo, 3);
  for (std::uint32_t a = 0; a < 3; ++a)
    for (std::uint32_t b = 0; b < 3; ++b) {
      if (a == b)
        EXPECT_EQ(c.topo.min_cut_latency(m, a, b), kTimeInf);  // no crossing
      else
        EXPECT_EQ(c.topo.min_cut_latency(m, a, b), cfg.uplink_latency);
    }
}

TEST(ShardMap, MultiDcMinCutIsWanOneWay) {
  // WAN links are owned by the SOURCE datacenter, so the dc-a -> dc-b
  // crossing happens at the WAN link itself: one-way latency = rtt/2 minus
  // the two DC-edge hops (rtt_ii/4 each).
  WanConfig cfg;
  cfg.servers_per_dc = {3, 3, 3};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  ShardMap m = make_shard_map(c.topo, 3);

  auto edge = [&](int dc) {
    return static_cast<Time>(cfg.rtt_ms[static_cast<std::size_t>(dc)]
                                       [static_cast<std::size_t>(dc)] /
                             4.0 * kMillisecond);
  };
  auto wan_one_way = [&](int i, int j) {
    return static_cast<Time>(cfg.rtt_ms[static_cast<std::size_t>(i)]
                                       [static_cast<std::size_t>(j)] /
                             2.0 * kMillisecond) -
           edge(i) - edge(j);
  };
  // IR -> CA: 133/2 ms minus the 0.05 ms edges on both sides.
  EXPECT_EQ(c.topo.min_cut_latency(m, 0, 1), wan_one_way(0, 1));
  EXPECT_EQ(c.topo.min_cut_latency(m, 1, 0), wan_one_way(1, 0));
  EXPECT_EQ(c.topo.min_cut_latency(m, 1, 2), wan_one_way(1, 2));
  // WAN lookahead dwarfs the rack fabric's: tens of milliseconds.
  EXPECT_GT(c.topo.min_cut_latency(m, 0, 1), 60 * kMillisecond);
}

TEST(ShardMap, MinCutMatrixMatchesPairwiseScan) {
  WanConfig cfg;
  cfg.servers_per_dc = {2, 2, 2, 2};
  cfg.rtt_ms = table1_rtt_ms();
  Cluster c = build_multi_dc(cfg);
  ShardMap m = make_shard_map(c.topo, 4);
  const std::vector<Time> mat = min_cut_matrix(c.topo, m);
  ASSERT_EQ(mat.size(), 16u);
  for (std::uint32_t a = 0; a < 4; ++a)
    for (std::uint32_t b = 0; b < 4; ++b)
      EXPECT_EQ(mat[a * 4 + b], c.topo.min_cut_latency(m, a, b))
          << a << "->" << b;
}

TEST(ShardMap, FoldedMapKeepsPositiveLookaheadBetweenDistinctShards) {
  // Folding 3 racks onto 2 shards puts racks 0 and 2 in shard 0; their
  // mutual traffic is intra-shard (no crossing), while every inter-shard
  // pair still crosses an uplink.
  Cluster c = build_multi_rack({});
  ShardMap m = make_shard_map(c.topo, 2);
  const std::vector<Time> mat = min_cut_matrix(c.topo, m);
  EXPECT_EQ(mat[0 * 2 + 0], kTimeInf);
  EXPECT_EQ(mat[1 * 2 + 1], kTimeInf);
  EXPECT_GT(mat[0 * 2 + 1], 0);
  EXPECT_LT(mat[0 * 2 + 1], kTimeInf);
  EXPECT_GT(mat[1 * 2 + 0], 0);
  EXPECT_LT(mat[1 * 2 + 0], kTimeInf);
}

TEST(ShardMap, ZeroLatencyCrossingIsRejected) {
  // A hand-off along a zero-latency link would mean zero lookahead — the
  // conservative kernel could deadlock-or-block forever, so make_shard_map
  // must refuse the partition outright.
  Topology t;
  const NodeId a = t.add_node(/*rack=*/0, 0);
  const NodeId b = t.add_node(/*rack=*/1, 0);
  const LinkId l0 = t.add_link(/*latency=*/0, gbps(10.0), /*site=*/0);
  const LinkId l1 = t.add_link(/*latency=*/1'000, gbps(10.0), /*site=*/1);
  t.set_path(a, b, {l0, l1});
  EXPECT_THROW(make_shard_map(t, 2), std::invalid_argument);
  // The same wiring with a positive crossing latency is accepted.
  Topology ok;
  const NodeId oa = ok.add_node(0, 0);
  const NodeId ob = ok.add_node(1, 0);
  const LinkId k0 = ok.add_link(500, gbps(10.0), 0);
  const LinkId k1 = ok.add_link(1'000, gbps(10.0), 1);
  ok.set_path(oa, ob, {k0, k1});
  ShardMap m = make_shard_map(ok, 2);
  EXPECT_EQ(ok.min_cut_latency(m, 0, 1), 500);
}

TEST(ShardMap, ForeignPathEndpointIsRejected) {
  // A path whose first hop is owned by a different shard than its source
  // node would make the send event emit into a queue the sender's worker
  // does not own.
  Topology t;
  const NodeId a = t.add_node(0, 0);
  const NodeId b = t.add_node(1, 0);
  const LinkId wrong = t.add_link(1'000, gbps(10.0), /*site=*/1);
  t.set_path(a, b, {wrong});
  EXPECT_THROW(make_shard_map(t, 2), std::invalid_argument);
}

}  // namespace
}  // namespace canopus::simnet
