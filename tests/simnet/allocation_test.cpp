// Proves the steady-state message path is allocation-free: after warmup,
// pushing a message through Network::send -> hop arrivals -> delivery ->
// dispatch performs ZERO heap allocations (ISSUE 4 acceptance criterion).
//
// The counting global operator new/delete hook comes from
// bench/alloc_count.h (replacement allocation functions must be defined in
// exactly one TU per binary — this test IS that TU for this binary).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "alloc_count.h"
#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/simulator.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Sink : Process {
  std::uint64_t received = 0;
  void on_message(const Message&) override { ++received; }
};

class SteadyStateFixture : public ::testing::Test {
 protected:
  SteadyStateFixture() : cluster_(simnet::build_multi_rack(rack_config())) {
    net_.emplace(sim_, cluster_.topo);
    sinks_.resize(cluster_.servers.size());
    for (std::size_t i = 0; i < sinks_.size(); ++i)
      net_->attach(cluster_.servers[i], sinks_[i]);
    sim_.run();  // drain on_start events
    // The shared payload is created ONCE; every steady-state send reuses it
    // (broadcast/readdress semantics — a payload copy is a pointer copy).
    template_msg_ = Message(cluster_.servers[0], cluster_.servers[13], 256,
                            std::string("steady"));
  }

  static simnet::RackConfig rack_config() {
    simnet::RackConfig rc;
    rc.racks = 3;
    rc.servers_per_rack = 9;
    rc.clients_per_rack = 0;
    return rc;
  }

  /// One cross-rack message end to end: send + 4 hop events + dispatch.
  void push_one(std::size_t i) {
    const NodeId src = cluster_.servers[i % 27];
    const NodeId dst = cluster_.servers[(i + 13) % 27];
    net_->send(template_msg_.readdressed(src, dst));
    sim_.run();
  }

  Simulator sim_{7};
  Cluster cluster_;
  std::optional<Network> net_;
  std::vector<Sink> sinks_;
  Message template_msg_;
};

TEST_F(SteadyStateFixture, MessageHopsAllocateNothing) {
  // Warm up: grows the event queue slots/heap, the free list, and any lazy
  // per-container capacity to steady state.
  for (std::size_t i = 0; i < 256; ++i) push_one(i);

  const std::uint64_t before = canopus::bench::heap_allocations();
  for (std::size_t i = 0; i < 1024; ++i) push_one(i);
  const std::uint64_t after = canopus::bench::heap_allocations();

  EXPECT_EQ(after - before, 0u)
      << "steady-state message path performed " << (after - before)
      << " heap allocations over 1024 messages";
  std::uint64_t delivered = 0;
  for (const Sink& s : sinks_) delivered += s.received;
  EXPECT_EQ(delivered, 256u + 1024u);
}

TEST_F(SteadyStateFixture, LocalDeliveryAllocatesNothing) {
  for (std::size_t i = 0; i < 64; ++i) {
    net_->send(template_msg_.readdressed(cluster_.servers[3],
                                         cluster_.servers[3]));
    sim_.run();
  }
  const std::uint64_t before = canopus::bench::heap_allocations();
  for (std::size_t i = 0; i < 256; ++i) {
    net_->send(template_msg_.readdressed(cluster_.servers[3],
                                         cluster_.servers[3]));
    sim_.run();
  }
  EXPECT_EQ(canopus::bench::heap_allocations() - before, 0u);
}

TEST_F(SteadyStateFixture, TimerRearmAllocatesNothing) {
  // The protocol pipeline-timer pattern: arm, cancel, re-arm. InlineFn
  // stores the capture in the recycled slot — no allocation per cycle.
  int fired = 0;
  // Warm up with the same churn volume as the measured loop: the lazily
  // compacted heap retains up to 2x live stale records, so its capacity
  // high-water mark is only reached by churning at full rate.
  for (int i = 0; i < 1024; ++i) {
    const EventId id = sim_.after(1000, [&fired] { ++fired; });
    sim_.cancel(id);
  }
  const std::uint64_t before = canopus::bench::heap_allocations();
  for (int i = 0; i < 1024; ++i) {
    const EventId id = sim_.after(1000, [&fired] { ++fired; });
    sim_.cancel(id);
  }
  sim_.after(1, [&fired] { ++fired; });
  sim_.run();
  EXPECT_EQ(canopus::bench::heap_allocations() - before, 0u);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace canopus::simnet
