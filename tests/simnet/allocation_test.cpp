// Proves the steady-state message path is allocation-free: after warmup,
// pushing a message through Network::send -> hop arrivals -> delivery ->
// dispatch performs ZERO heap allocations (ISSUE 4 acceptance criterion).
//
// The counting global operator new/delete hook comes from
// bench/alloc_count.h (replacement allocation functions must be defined in
// exactly one TU per binary — this test IS that TU for this binary).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "alloc_count.h"
#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/simulator.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Sink : Process {
  std::uint64_t received = 0;
  void on_message(const Message&) override { ++received; }
};

class SteadyStateFixture : public ::testing::Test {
 protected:
  SteadyStateFixture() : cluster_(simnet::build_multi_rack(rack_config())) {
    net_.emplace(sim_, cluster_.topo);
    sinks_.resize(cluster_.servers.size());
    for (std::size_t i = 0; i < sinks_.size(); ++i)
      net_->attach(cluster_.servers[i], sinks_[i]);
    sim_.run();  // drain on_start events
    // The shared payload is created ONCE; every steady-state send reuses it
    // (broadcast/readdress semantics — a payload copy is a pointer copy).
    template_msg_ = Message(cluster_.servers[0], cluster_.servers[13], 256,
                            std::string("steady"));
  }

  static simnet::RackConfig rack_config() {
    simnet::RackConfig rc;
    rc.racks = 3;
    rc.servers_per_rack = 9;
    rc.clients_per_rack = 0;
    return rc;
  }

  /// One cross-rack message end to end: send + 4 hop events + dispatch.
  void push_one(std::size_t i) {
    const NodeId src = cluster_.servers[i % 27];
    const NodeId dst = cluster_.servers[(i + 13) % 27];
    net_->send(template_msg_.readdressed(src, dst));
    sim_.run();
  }

  Simulator sim_{7};
  Cluster cluster_;
  std::optional<Network> net_;
  std::vector<Sink> sinks_;
  Message template_msg_;
};

TEST_F(SteadyStateFixture, MessageHopsAllocateNothing) {
  // Warm up: grows the event queue slots/heap, the free list, and any lazy
  // per-container capacity to steady state.
  for (std::size_t i = 0; i < 256; ++i) push_one(i);

  const std::uint64_t before = canopus::bench::heap_allocations();
  for (std::size_t i = 0; i < 1024; ++i) push_one(i);
  const std::uint64_t after = canopus::bench::heap_allocations();

  EXPECT_EQ(after - before, 0u)
      << "steady-state message path performed " << (after - before)
      << " heap allocations over 1024 messages";
  std::uint64_t delivered = 0;
  for (const Sink& s : sinks_) delivered += s.received;
  EXPECT_EQ(delivered, 256u + 1024u);
}

TEST_F(SteadyStateFixture, LocalDeliveryAllocatesNothing) {
  for (std::size_t i = 0; i < 64; ++i) {
    net_->send(template_msg_.readdressed(cluster_.servers[3],
                                         cluster_.servers[3]));
    sim_.run();
  }
  const std::uint64_t before = canopus::bench::heap_allocations();
  for (std::size_t i = 0; i < 256; ++i) {
    net_->send(template_msg_.readdressed(cluster_.servers[3],
                                         cluster_.servers[3]));
    sim_.run();
  }
  EXPECT_EQ(canopus::bench::heap_allocations() - before, 0u);
}

TEST_F(SteadyStateFixture, TimerRearmAllocatesNothing) {
  // The protocol pipeline-timer pattern: arm, cancel, re-arm. InlineFn
  // stores the capture in the recycled slot — no allocation per cycle.
  int fired = 0;
  // Warm up with the same churn volume as the measured loop: the lazily
  // compacted heap retains up to 2x live stale records, so its capacity
  // high-water mark is only reached by churning at full rate.
  for (int i = 0; i < 1024; ++i) {
    const EventId id = sim_.after(1000, [&fired] { ++fired; });
    sim_.cancel(id);
  }
  const std::uint64_t before = canopus::bench::heap_allocations();
  for (int i = 0; i < 1024; ++i) {
    const EventId id = sim_.after(1000, [&fired] { ++fired; });
    sim_.cancel(id);
  }
  sim_.after(1, [&fired] { ++fired; });
  sim_.run();
  EXPECT_EQ(canopus::bench::heap_allocations() - before, 0u);
  EXPECT_EQ(fired, 1);
}

// --------------------------------------------------------------------------
// Sharded-kernel hand-off (ISSUE 6): cross-shard message hand-off rides the
// preallocated SPSC rings and pooled MessageEvents, so the steady-state
// PDES hot path performs ZERO heap allocations per message — same criterion
// as the serial path above, extended to run_parallel_until().
//
// Methodology: run_parallel_until() itself has a fixed per-CALL overhead
// (spawning K worker threads, the coordinator's scratch vector), so the
// per-message cost is isolated differentially — one call carrying V
// messages must allocate exactly as much as one call carrying 2V.
// --------------------------------------------------------------------------

/// The sharded world as a plain struct (not a gtest fixture):
/// ParallelMatchesSerialDeliveryExactly instantiates a second one as the
/// serial twin, which a fixture type (abstract until TEST_F) cannot do.
struct PdesWorld {
  PdesWorld() : cluster_(simnet::build_multi_rack(rack_config())) {
    sim_.configure_shards(cluster_.topo, make_shard_map(cluster_.topo, 3));
    net_.emplace(sim_, cluster_.topo);
    sinks_.resize(cluster_.servers.size());
    for (std::size_t i = 0; i < sinks_.size(); ++i)
      net_->attach(cluster_.servers[i], sinks_[i]);
    template_msg_ = Message(cluster_.servers[0], cluster_.servers[3], 256,
                            std::string("steady"));
  }

  static simnet::RackConfig rack_config() {
    simnet::RackConfig rc;
    rc.racks = 3;
    rc.servers_per_rack = 3;
    rc.clients_per_rack = 0;
    return rc;
  }

  /// Worker-context traffic source: sends one cross-rack message from
  /// server i, then re-arms itself. Runs on server i's lane (kicked off
  /// via at_node), so the send's first hop is shard-local and the
  /// aggregation-uplink hop crosses shards — every message exercises one
  /// SPSC hand-off.
  void pump(std::size_t i, Time period, Time stop) {
    const NodeId src = cluster_.servers[i];
    const NodeId dst = cluster_.servers[(i + 3) % cluster_.servers.size()];
    net_->send(template_msg_.readdressed(src, dst));
    if (sim_.now() + period <= stop)
      sim_.after(period, [this, i, period, stop] { pump(i, period, stop); });
  }

  std::uint64_t delivered() const {
    std::uint64_t n = 0;
    for (const Sink& s : sinks_) n += s.received;
    return n;
  }

  Simulator sim_{7};
  Cluster cluster_;
  std::optional<Network> net_;
  std::vector<Sink> sinks_;
  Message template_msg_;
};

class PdesHandoffFixture : public ::testing::Test, public PdesWorld {};

TEST_F(PdesHandoffFixture, CrossShardHandoffAllocatesNothingPerMessage) {
  // Warmup pumps run hotter than the measured ones: container capacity
  // (queue heaps, ring-drain bursts, free lists) grows to the high-water
  // mark of the heavier load, so the measured windows never trigger an
  // amortized doubling. 3 us is ~75% node-CPU utilization (each node pays
  // send_fixed + recv_fixed + byte costs, ~2.26 us per period) — hot, but
  // below saturation, so no simulated backlog carries into the windows.
  constexpr Time kWarmPeriod = 3'000;
  constexpr Time kPeriod = 5'000;        // one send per server per 5 us
  constexpr Time kWarmEnd = 6'000'000;   // warm pumps re-arm until t = 6 ms
  constexpr Time kStop = 12'000'000;     // measured pumps re-arm until 12 ms
  for (std::size_t i = 0; i < cluster_.servers.size(); ++i) {
    sim_.at_node(cluster_.servers[i], 1'000 + static_cast<Time>(i) * 100,
                 [this, i] { pump(i, kWarmPeriod, kWarmEnd); });
    sim_.at_node(cluster_.servers[i], kWarmEnd + static_cast<Time>(i) * 100,
                 [this, i] { pump(i, kPeriod, kStop); });
  }
  sim_.run_parallel_until(kWarmEnd + 500'000);
  const std::uint64_t after_warm = delivered();
  EXPECT_GT(after_warm, 0u);

  // Measure: 1.5 ms of traffic vs 3 ms of traffic, one run call each.
  // Equal allocation counts mean the per-message hand-off cost is exactly
  // zero (the fixed per-call overhead cancels).
  const std::uint64_t a0 = canopus::bench::heap_allocations();
  sim_.run_parallel_until(8'000'000);
  const std::uint64_t one_window = canopus::bench::heap_allocations() - a0;
  const std::uint64_t mid = delivered();

  const std::uint64_t b0 = canopus::bench::heap_allocations();
  sim_.run_parallel_until(11'000'000);
  const std::uint64_t two_windows = canopus::bench::heap_allocations() - b0;
  const std::uint64_t end = delivered();

  EXPECT_GT(mid, after_warm);
  EXPECT_GT(end - mid, (mid - after_warm) * 3 / 2);  // B really carried ~2x
  EXPECT_EQ(two_windows, one_window)
      << "PDES hand-off allocated "
      << (two_windows - one_window) << " times over the extra "
      << (end - mid) - (mid - after_warm) << " messages";
}

TEST_F(PdesHandoffFixture, ParallelMatchesSerialDeliveryExactly) {
  // Same fixture, serial twin: the parallel run must deliver the same
  // message count by the same deadline (bit-identity at the Network level;
  // the full digest identity lives in workload/pdes_determinism_test).
  constexpr Time kPeriod = 5'000;
  constexpr Time kStop = 2'000'000;
  for (std::size_t i = 0; i < cluster_.servers.size(); ++i)
    sim_.at_node(cluster_.servers[i], 1'000 + static_cast<Time>(i) * 100,
                 [this, i] { pump(i, kPeriod, kStop); });
  sim_.run_parallel_until(2'500'000);
  const std::uint64_t par_delivered = delivered();
  const std::uint64_t par_events = sim_.events_processed();
  const auto par_msgs = net_->stats().messages;

  PdesWorld serial_twin;
  for (std::size_t i = 0; i < serial_twin.cluster_.servers.size(); ++i)
    serial_twin.sim_.at_node(
        serial_twin.cluster_.servers[i], 1'000 + static_cast<Time>(i) * 100,
        [&serial_twin, i] { serial_twin.pump(i, kPeriod, kStop); });
  serial_twin.sim_.run_until(2'500'000);

  EXPECT_EQ(par_delivered, serial_twin.delivered());
  EXPECT_EQ(par_events, serial_twin.sim_.events_processed());
  EXPECT_EQ(par_msgs, serial_twin.net_->stats().messages);
}

}  // namespace
}  // namespace canopus::simnet
