// ChaosScheduleGenerator property tests: storms are a pure function of the
// seed, respect their window and min-heal delays, pair every fault with a
// repair, and never exceed the configured blast radius.
#include "simnet/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace canopus::simnet {
namespace {

ChaosConfig test_config() {
  ChaosConfig cfg;
  cfg.start = 500 * kMillisecond;
  cfg.end = 3'000 * kMillisecond;
  cfg.events_per_s = 20.0;
  cfg.max_down = 2;
  cfg.max_severed = 3;
  cfg.min_heal = 100 * kMillisecond;
  cfg.mean_extra = 150 * kMillisecond;
  return cfg;
}

std::vector<NodeId> test_nodes() { return {0, 1, 2, 3, 4, 5, 6, 7, 8}; }

bool schedules_equal(const FaultSchedule& a, const FaultSchedule& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent &x = a.events()[i], &y = b.events()[i];
    if (x.at != y.at || x.kind != y.kind || x.a != y.a || x.b != y.b ||
        x.x != y.x || x.d != y.d)
      return false;
  }
  return true;
}

/// A config with the whole palette enabled (equal weights).
ChaosConfig gray_config() {
  ChaosConfig cfg = test_config();
  cfg.cpu_weight = cfg.flap_weight = cfg.dup_weight = cfg.reorder_weight =
      cfg.skew_weight = 1.0;
  return cfg;
}

/// Fault families for pairing/blast-radius bookkeeping: start and stop of
/// one fault map to the same family.
int family_of(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash:
    case FaultEvent::Kind::kRecover: return 0;
    case FaultEvent::Kind::kSever:
    case FaultEvent::Kind::kHeal: return 1;
    case FaultEvent::Kind::kCpuSlow:
    case FaultEvent::Kind::kCpuNormal: return 2;
    case FaultEvent::Kind::kFlapStart:
    case FaultEvent::Kind::kFlapStop: return 3;
    case FaultEvent::Kind::kDupStart:
    case FaultEvent::Kind::kDupStop: return 4;
    case FaultEvent::Kind::kReorderStart:
    case FaultEvent::Kind::kReorderStop: return 5;
    case FaultEvent::Kind::kSkewSet:
    case FaultEvent::Kind::kSkewClear: return 6;
  }
  return -1;
}

bool starts_fault(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash:
    case FaultEvent::Kind::kSever:
    case FaultEvent::Kind::kCpuSlow:
    case FaultEvent::Kind::kFlapStart:
    case FaultEvent::Kind::kDupStart:
    case FaultEvent::Kind::kReorderStart:
    case FaultEvent::Kind::kSkewSet: return true;
    default: return false;
  }
}

/// Pair kinds carry a victim pair; node kinds a single victim.
bool pair_family(int family) {
  return family == 1 || family == 3 || family == 4 || family == 5;
}

TEST(ChaosScheduleGenerator, SameSeedSameSchedule) {
  const ChaosConfig cfg = test_config();
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    ChaosScheduleGenerator g1(seed), g2(seed);
    const FaultSchedule s1 = g1.generate(cfg, test_nodes());
    const FaultSchedule s2 = g2.generate(cfg, test_nodes());
    EXPECT_FALSE(s1.empty()) << "storm with seed " << seed << " is empty";
    EXPECT_TRUE(schedules_equal(s1, s2)) << "seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, DifferentSeedsDiffer) {
  const ChaosConfig cfg = test_config();
  ChaosScheduleGenerator g1(1), g2(2);
  const FaultSchedule s1 = g1.generate(cfg, test_nodes());
  const FaultSchedule s2 = g2.generate(cfg, test_nodes());
  EXPECT_FALSE(schedules_equal(s1, s2));
}

TEST(ChaosScheduleGenerator, GeneratorStateAdvances) {
  // Two storms drawn from ONE generator differ: the per-trial seed, not a
  // reset, decides the storm.
  const ChaosConfig cfg = test_config();
  ChaosScheduleGenerator g(7);
  const FaultSchedule s1 = g.generate(cfg, test_nodes());
  const FaultSchedule s2 = g.generate(cfg, test_nodes());
  EXPECT_FALSE(schedules_equal(s1, s2));
}

TEST(ChaosScheduleGenerator, EventsInsideWindowSortedAndPaired) {
  const ChaosConfig cfg = test_config();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    Time prev = cfg.start;
    std::map<NodeId, Time> down_since;          // node -> crash time
    std::map<std::pair<NodeId, NodeId>, Time> severed_since;
    for (const FaultEvent& ev : s.events()) {
      EXPECT_GE(ev.at, cfg.start) << "seed " << seed;
      EXPECT_LE(ev.at, cfg.end) << "seed " << seed;
      EXPECT_GE(ev.at, prev) << "schedule not time-sorted, seed " << seed;
      prev = ev.at;
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
          EXPECT_FALSE(down_since.count(ev.a))
              << "double crash of node " << ev.a << ", seed " << seed;
          down_since[ev.a] = ev.at;
          break;
        case FaultEvent::Kind::kRecover: {
          ASSERT_TRUE(down_since.count(ev.a))
              << "recover without crash, seed " << seed;
          // Min fault duration: the repair respects min_heal.
          EXPECT_GE(ev.at - down_since[ev.a], cfg.min_heal)
              << "seed " << seed;
          down_since.erase(ev.a);
          break;
        }
        case FaultEvent::Kind::kSever: {
          const auto key = std::make_pair(ev.a, ev.b);
          EXPECT_FALSE(severed_since.count(key)) << "seed " << seed;
          severed_since[key] = ev.at;
          break;
        }
        case FaultEvent::Kind::kHeal: {
          const auto key = std::make_pair(ev.a, ev.b);
          ASSERT_TRUE(severed_since.count(key)) << "seed " << seed;
          EXPECT_GE(ev.at - severed_since[key], cfg.min_heal)
              << "seed " << seed;
          severed_since.erase(key);
          break;
        }
        default: break;  // gray kinds: covered by the gray pairing test
      }
    }
    // Every fault healed by the end of the storm window.
    EXPECT_TRUE(down_since.empty()) << "unrecovered crash, seed " << seed;
    EXPECT_TRUE(severed_since.empty()) << "unhealed sever, seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, RespectsBlastRadius) {
  ChaosConfig cfg = test_config();
  cfg.events_per_s = 200.0;  // saturate: force the caps to bind
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    std::set<NodeId> down;
    std::set<std::pair<NodeId, NodeId>> severed;
    std::size_t peak_down = 0, peak_severed = 0;
    for (const FaultEvent& ev : s.events()) {
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash: down.insert(ev.a); break;
        case FaultEvent::Kind::kRecover: down.erase(ev.a); break;
        case FaultEvent::Kind::kSever: severed.insert({ev.a, ev.b}); break;
        case FaultEvent::Kind::kHeal: severed.erase({ev.a, ev.b}); break;
        default: break;
      }
      peak_down = std::max(peak_down, down.size());
      peak_severed = std::max(peak_severed, severed.size());
    }
    EXPECT_LE(peak_down, static_cast<std::size_t>(cfg.max_down))
        << "seed " << seed;
    EXPECT_LE(peak_severed, static_cast<std::size_t>(cfg.max_severed))
        << "seed " << seed;
  }
  // The saturated storm actually reaches the caps — otherwise this test
  // proves nothing about them.
  ChaosScheduleGenerator gen(1);
  const FaultSchedule s = gen.generate(cfg, test_nodes());
  EXPECT_GT(s.events().size(), 8u);
}

TEST(ChaosScheduleGenerator, TargetsOnlyGivenNodes) {
  const ChaosConfig cfg = test_config();
  const std::vector<NodeId> nodes = {10, 20, 30};
  ChaosScheduleGenerator gen(3);
  const FaultSchedule s = gen.generate(cfg, nodes);
  const std::set<NodeId> allowed(nodes.begin(), nodes.end());
  for (const FaultEvent& ev : s.events()) {
    EXPECT_TRUE(allowed.count(ev.a)) << "targeted foreign node " << ev.a;
    if (ev.kind == FaultEvent::Kind::kSever ||
        ev.kind == FaultEvent::Kind::kHeal) {
      EXPECT_TRUE(allowed.count(ev.b)) << "targeted foreign node " << ev.b;
    }
  }
}

TEST(ChaosScheduleGenerator, GraySameSeedSameSchedule) {
  const ChaosConfig cfg = gray_config();
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    ChaosScheduleGenerator g1(seed), g2(seed);
    const FaultSchedule s1 = g1.generate(cfg, test_nodes());
    const FaultSchedule s2 = g2.generate(cfg, test_nodes());
    EXPECT_FALSE(s1.empty()) << "gray storm with seed " << seed << " is empty";
    EXPECT_TRUE(schedules_equal(s1, s2)) << "seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, GrayWeightsZeroPreservesClassicStorms) {
  // The palette extension must not move the RNG stream of pre-gray
  // configs: a config with gray weights 0 draws the exact storm the
  // two-kind generator drew (this is what keeps committed chaos baselines
  // and goldens valid).
  const ChaosConfig classic = test_config();
  ChaosConfig zeroed = gray_config();
  zeroed.cpu_weight = zeroed.flap_weight = zeroed.dup_weight =
      zeroed.reorder_weight = zeroed.skew_weight = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosScheduleGenerator g1(seed), g2(seed);
    EXPECT_TRUE(schedules_equal(g1.generate(classic, test_nodes()),
                                g2.generate(zeroed, test_nodes())))
        << "seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, GrayEventsInsideWindowPairedAndParameterized) {
  const ChaosConfig cfg = gray_config();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    bool saw_gray = false;
    Time prev = cfg.start;
    // (family, a, b) -> start time of the open fault.
    std::map<std::tuple<int, NodeId, NodeId>, Time> open;
    for (const FaultEvent& ev : s.events()) {
      EXPECT_GE(ev.at, cfg.start) << "seed " << seed;
      EXPECT_LE(ev.at, cfg.end) << "seed " << seed;
      EXPECT_GE(ev.at, prev) << "not time-sorted, seed " << seed;
      prev = ev.at;
      const int fam = family_of(ev.kind);
      ASSERT_GE(fam, 0);
      if (fam >= 2) saw_gray = true;
      const NodeId b = pair_family(fam) ? ev.b : kInvalidNode;
      const auto key = std::make_tuple(fam, ev.a, b);
      if (starts_fault(ev.kind)) {
        EXPECT_FALSE(open.count(key))
            << "overlapping same-kind fault on one victim, seed " << seed;
        open[key] = ev.at;
      } else {
        ASSERT_TRUE(open.count(key)) << "repair without fault, seed " << seed;
        EXPECT_GE(ev.at - open[key], cfg.min_heal) << "seed " << seed;
        open.erase(key);
      }
      // Severity parameters propagate from the config.
      switch (ev.kind) {
        case FaultEvent::Kind::kCpuSlow:
          EXPECT_EQ(ev.x, cfg.cpu_factor);
          break;
        case FaultEvent::Kind::kFlapStart:
          EXPECT_EQ(ev.d, cfg.flap_period);
          break;
        case FaultEvent::Kind::kDupStart:
          EXPECT_EQ(ev.d, cfg.dup_echo);
          break;
        case FaultEvent::Kind::kReorderStart:
          EXPECT_EQ(ev.d, cfg.reorder_jitter);
          break;
        case FaultEvent::Kind::kSkewSet:
          EXPECT_GE(ev.x, cfg.skew_rate_lo);
          EXPECT_LE(ev.x, cfg.skew_rate_hi);
          EXPECT_EQ(ev.d, cfg.skew_offset);
          break;
        default: break;
      }
    }
    // Every fault of every kind repaired by the window's end.
    EXPECT_TRUE(open.empty()) << "unrepaired fault, seed " << seed;
    EXPECT_TRUE(saw_gray) << "no gray event drawn, seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, GrayRespectsPerKindBlastRadius) {
  ChaosConfig cfg = gray_config();
  cfg.events_per_s = 200.0;  // saturate: force every cap to bind
  const std::size_t caps[] = {
      static_cast<std::size_t>(cfg.max_down),
      static_cast<std::size_t>(cfg.max_severed),
      static_cast<std::size_t>(cfg.max_slow),
      static_cast<std::size_t>(cfg.max_flapping),
      static_cast<std::size_t>(cfg.max_dup),
      static_cast<std::size_t>(cfg.max_reorder),
      static_cast<std::size_t>(cfg.max_skewed),
  };
  std::size_t peak[7] = {};
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    std::size_t active[7] = {};
    for (const FaultEvent& ev : s.events()) {
      const int fam = family_of(ev.kind);
      ASSERT_GE(fam, 0);
      if (starts_fault(ev.kind))
        ++active[fam];
      else
        --active[fam];
      EXPECT_LE(active[fam], caps[fam])
          << "family " << fam << " over its cap, seed " << seed;
      peak[fam] = std::max(peak[fam], active[fam]);
    }
  }
  // The saturated sweep actually reaches every cap — otherwise this test
  // proves nothing about them.
  for (int fam = 0; fam < 7; ++fam)
    EXPECT_EQ(peak[fam], caps[fam]) << "family " << fam << " never saturated";
}

TEST(ChaosConfigValidate, RejectsInconsistentKnobs) {
  const auto expect_throws = [](auto mutate, const char* what) {
    ChaosConfig cfg = gray_config();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << what;
    ChaosScheduleGenerator gen(1);
    EXPECT_THROW(gen.generate(cfg, {0, 1, 2}), std::invalid_argument) << what;
  };
  expect_throws([](ChaosConfig& c) { c.end = c.start; }, "empty window");
  expect_throws([](ChaosConfig& c) { c.end = c.start - 1; },
                "inverted window");
  expect_throws([](ChaosConfig& c) { c.min_heal = 0; }, "min_heal zero");
  expect_throws([](ChaosConfig& c) { c.min_heal = -kMillisecond; },
                "min_heal negative");
  expect_throws([](ChaosConfig& c) { c.min_heal = c.end - c.start; },
                "min_heal swallows the window");
  expect_throws([](ChaosConfig& c) { c.events_per_s = -1; }, "negative rate");
  expect_throws([](ChaosConfig& c) { c.mean_extra = -1; },
                "negative mean_extra");
  expect_throws([](ChaosConfig& c) { c.crash_weight = -0.5; },
                "negative crash_weight");
  expect_throws([](ChaosConfig& c) { c.sever_weight = -1; },
                "negative sever_weight");
  expect_throws([](ChaosConfig& c) { c.cpu_weight = -1; },
                "negative cpu_weight");
  expect_throws([](ChaosConfig& c) { c.flap_weight = -1; },
                "negative flap_weight");
  expect_throws([](ChaosConfig& c) { c.dup_weight = -1; },
                "negative dup_weight");
  expect_throws([](ChaosConfig& c) { c.reorder_weight = -1; },
                "negative reorder_weight");
  expect_throws([](ChaosConfig& c) { c.skew_weight = -1; },
                "negative skew_weight");
  expect_throws([](ChaosConfig& c) { c.cpu_factor = 0; }, "cpu factor zero");
  expect_throws([](ChaosConfig& c) { c.flap_period = 0; },
                "flap period zero");
  expect_throws([](ChaosConfig& c) { c.dup_echo = -1; },
                "negative dup echo");
  expect_throws([](ChaosConfig& c) { c.reorder_jitter = 0; },
                "reorder jitter zero");
  expect_throws([](ChaosConfig& c) { c.skew_rate_lo = 0; },
                "skew rate lo zero");
  expect_throws([](ChaosConfig& c) { c.skew_rate_hi = c.skew_rate_lo / 2; },
                "skew hi below lo");
  // The message names the offending knob.
  ChaosConfig bad = gray_config();
  bad.min_heal = 0;
  try {
    bad.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("min_heal"), std::string::npos)
        << "unhelpful message: " << e.what();
  }
}

TEST(ChaosConfigValidate, AcceptsDisabledAndDegenerateButConsistentKnobs) {
  // Zero rate and all-zero weights are VALID (they mean "no storm") — only
  // inconsistent knobs throw.
  ChaosConfig cfg = test_config();
  cfg.events_per_s = 0;
  EXPECT_NO_THROW(cfg.validate());
  cfg = test_config();
  cfg.crash_weight = cfg.sever_weight = 0;
  EXPECT_NO_THROW(cfg.validate());
  // Gray parameter checks only bind when their kind is enabled.
  cfg = test_config();
  cfg.flap_period = 0;
  cfg.reorder_jitter = 0;
  cfg.cpu_factor = 0;
  cfg.skew_rate_lo = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ChaosScheduleGenerator, DegenerateInputsYieldEmptySchedules) {
  ChaosConfig cfg = test_config();
  ChaosScheduleGenerator gen(1);
  EXPECT_TRUE(gen.generate(cfg, {}).empty());
  cfg.events_per_s = 0;
  EXPECT_TRUE(gen.generate(cfg, test_nodes()).empty());
  cfg = test_config();
  cfg.crash_weight = 0;
  cfg.sever_weight = 0;
  EXPECT_TRUE(gen.generate(cfg, test_nodes()).empty());
  // Crash-only storms on a single node are legal (sever needs two nodes).
  cfg = test_config();
  cfg.sever_weight = 0;
  const FaultSchedule s = gen.generate(cfg, {5});
  for (const FaultEvent& ev : s.events())
    EXPECT_TRUE(ev.kind == FaultEvent::Kind::kCrash ||
                ev.kind == FaultEvent::Kind::kRecover);
}

}  // namespace
}  // namespace canopus::simnet
