// ChaosScheduleGenerator property tests: storms are a pure function of the
// seed, respect their window and min-heal delays, pair every fault with a
// repair, and never exceed the configured blast radius.
#include "simnet/chaos.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace canopus::simnet {
namespace {

ChaosConfig test_config() {
  ChaosConfig cfg;
  cfg.start = 500 * kMillisecond;
  cfg.end = 3'000 * kMillisecond;
  cfg.events_per_s = 20.0;
  cfg.max_down = 2;
  cfg.max_severed = 3;
  cfg.min_heal = 100 * kMillisecond;
  cfg.mean_extra = 150 * kMillisecond;
  return cfg;
}

std::vector<NodeId> test_nodes() { return {0, 1, 2, 3, 4, 5, 6, 7, 8}; }

bool schedules_equal(const FaultSchedule& a, const FaultSchedule& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent &x = a.events()[i], &y = b.events()[i];
    if (x.at != y.at || x.kind != y.kind || x.a != y.a || x.b != y.b)
      return false;
  }
  return true;
}

TEST(ChaosScheduleGenerator, SameSeedSameSchedule) {
  const ChaosConfig cfg = test_config();
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    ChaosScheduleGenerator g1(seed), g2(seed);
    const FaultSchedule s1 = g1.generate(cfg, test_nodes());
    const FaultSchedule s2 = g2.generate(cfg, test_nodes());
    EXPECT_FALSE(s1.empty()) << "storm with seed " << seed << " is empty";
    EXPECT_TRUE(schedules_equal(s1, s2)) << "seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, DifferentSeedsDiffer) {
  const ChaosConfig cfg = test_config();
  ChaosScheduleGenerator g1(1), g2(2);
  const FaultSchedule s1 = g1.generate(cfg, test_nodes());
  const FaultSchedule s2 = g2.generate(cfg, test_nodes());
  EXPECT_FALSE(schedules_equal(s1, s2));
}

TEST(ChaosScheduleGenerator, GeneratorStateAdvances) {
  // Two storms drawn from ONE generator differ: the per-trial seed, not a
  // reset, decides the storm.
  const ChaosConfig cfg = test_config();
  ChaosScheduleGenerator g(7);
  const FaultSchedule s1 = g.generate(cfg, test_nodes());
  const FaultSchedule s2 = g.generate(cfg, test_nodes());
  EXPECT_FALSE(schedules_equal(s1, s2));
}

TEST(ChaosScheduleGenerator, EventsInsideWindowSortedAndPaired) {
  const ChaosConfig cfg = test_config();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    Time prev = cfg.start;
    std::map<NodeId, Time> down_since;          // node -> crash time
    std::map<std::pair<NodeId, NodeId>, Time> severed_since;
    for (const FaultEvent& ev : s.events()) {
      EXPECT_GE(ev.at, cfg.start) << "seed " << seed;
      EXPECT_LE(ev.at, cfg.end) << "seed " << seed;
      EXPECT_GE(ev.at, prev) << "schedule not time-sorted, seed " << seed;
      prev = ev.at;
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
          EXPECT_FALSE(down_since.count(ev.a))
              << "double crash of node " << ev.a << ", seed " << seed;
          down_since[ev.a] = ev.at;
          break;
        case FaultEvent::Kind::kRecover: {
          ASSERT_TRUE(down_since.count(ev.a))
              << "recover without crash, seed " << seed;
          // Min fault duration: the repair respects min_heal.
          EXPECT_GE(ev.at - down_since[ev.a], cfg.min_heal)
              << "seed " << seed;
          down_since.erase(ev.a);
          break;
        }
        case FaultEvent::Kind::kSever: {
          const auto key = std::make_pair(ev.a, ev.b);
          EXPECT_FALSE(severed_since.count(key)) << "seed " << seed;
          severed_since[key] = ev.at;
          break;
        }
        case FaultEvent::Kind::kHeal: {
          const auto key = std::make_pair(ev.a, ev.b);
          ASSERT_TRUE(severed_since.count(key)) << "seed " << seed;
          EXPECT_GE(ev.at - severed_since[key], cfg.min_heal)
              << "seed " << seed;
          severed_since.erase(key);
          break;
        }
      }
    }
    // Every fault healed by the end of the storm window.
    EXPECT_TRUE(down_since.empty()) << "unrecovered crash, seed " << seed;
    EXPECT_TRUE(severed_since.empty()) << "unhealed sever, seed " << seed;
  }
}

TEST(ChaosScheduleGenerator, RespectsBlastRadius) {
  ChaosConfig cfg = test_config();
  cfg.events_per_s = 200.0;  // saturate: force the caps to bind
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosScheduleGenerator gen(seed);
    const FaultSchedule s = gen.generate(cfg, test_nodes());
    std::set<NodeId> down;
    std::set<std::pair<NodeId, NodeId>> severed;
    std::size_t peak_down = 0, peak_severed = 0;
    for (const FaultEvent& ev : s.events()) {
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash: down.insert(ev.a); break;
        case FaultEvent::Kind::kRecover: down.erase(ev.a); break;
        case FaultEvent::Kind::kSever: severed.insert({ev.a, ev.b}); break;
        case FaultEvent::Kind::kHeal: severed.erase({ev.a, ev.b}); break;
      }
      peak_down = std::max(peak_down, down.size());
      peak_severed = std::max(peak_severed, severed.size());
    }
    EXPECT_LE(peak_down, static_cast<std::size_t>(cfg.max_down))
        << "seed " << seed;
    EXPECT_LE(peak_severed, static_cast<std::size_t>(cfg.max_severed))
        << "seed " << seed;
  }
  // The saturated storm actually reaches the caps — otherwise this test
  // proves nothing about them.
  ChaosScheduleGenerator gen(1);
  const FaultSchedule s = gen.generate(cfg, test_nodes());
  EXPECT_GT(s.events().size(), 8u);
}

TEST(ChaosScheduleGenerator, TargetsOnlyGivenNodes) {
  const ChaosConfig cfg = test_config();
  const std::vector<NodeId> nodes = {10, 20, 30};
  ChaosScheduleGenerator gen(3);
  const FaultSchedule s = gen.generate(cfg, nodes);
  const std::set<NodeId> allowed(nodes.begin(), nodes.end());
  for (const FaultEvent& ev : s.events()) {
    EXPECT_TRUE(allowed.count(ev.a)) << "targeted foreign node " << ev.a;
    if (ev.kind == FaultEvent::Kind::kSever ||
        ev.kind == FaultEvent::Kind::kHeal) {
      EXPECT_TRUE(allowed.count(ev.b)) << "targeted foreign node " << ev.b;
    }
  }
}

TEST(ChaosScheduleGenerator, DegenerateInputsYieldEmptySchedules) {
  ChaosConfig cfg = test_config();
  ChaosScheduleGenerator gen(1);
  EXPECT_TRUE(gen.generate(cfg, {}).empty());
  cfg.events_per_s = 0;
  EXPECT_TRUE(gen.generate(cfg, test_nodes()).empty());
  cfg = test_config();
  cfg.crash_weight = 0;
  cfg.sever_weight = 0;
  EXPECT_TRUE(gen.generate(cfg, test_nodes()).empty());
  // Crash-only storms on a single node are legal (sever needs two nodes).
  cfg = test_config();
  cfg.sever_weight = 0;
  const FaultSchedule s = gen.generate(cfg, {5});
  for (const FaultEvent& ev : s.events())
    EXPECT_TRUE(ev.kind == FaultEvent::Kind::kCrash ||
                ev.kind == FaultEvent::Kind::kRecover);
}

}  // namespace
}  // namespace canopus::simnet
