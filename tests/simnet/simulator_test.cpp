#include "simnet/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace canopus::simnet {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.at(100, [&] { seen.push_back(sim.now()); });
  sim.at(50, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Time>{50, 100}));
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  Time fired = -1;
  sim.at(10, [&] { sim.after(5, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired, 15);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  Time fired = -1;
  sim.at(10, [&] { sim.after(-100, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.at(10, [&] { ++count; });
  sim.at(20, [&] { ++count; });
  sim.at(30, [&] { ++count; });
  const auto n = sim.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, SchedulingInThePastRunsImmediately) {
  Simulator sim;
  sim.run_until(100);
  Time fired = -1;
  sim.at(10, [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, 100);  // clamped to now
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DeterministicRngAcrossRuns) {
  Simulator a(123), b(123), c(456);
  std::uint64_t va = a.rng()(), vb = b.rng()(), vc = c.rng()();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Simulator, EventsProcessedAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

}  // namespace
}  // namespace canopus::simnet
