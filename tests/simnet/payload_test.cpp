// The typed message bus (simnet/payload.h): tag dispatch, the closed tag
// registry, and the shared-allocation broadcast semantics that Canopus
// proposals rely on.
#include "simnet/payload.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "canopus/messages.h"
#include "epaxos/epaxos.h"
#include "kv/types.h"
#include "raft/messages.h"
#include "rbcast/switch_broadcast.h"
#include "simnet/message.h"
#include "simnet/payload_testing.h"
#include "zab/zab.h"

namespace canopus::simnet {
namespace {

TEST(PayloadTest, WrongTypeAccessReturnsNull) {
  Payload p(std::string("hello"));
  EXPECT_NE(p.as<std::string>(), nullptr);
  EXPECT_EQ(*p.as<std::string>(), "hello");
  EXPECT_EQ(p.as<int>(), nullptr);
  EXPECT_EQ(p.as<proto::Proposal>(), nullptr);
  EXPECT_EQ(p.as<raft::WireMsg>(), nullptr);
}

TEST(PayloadTest, DefaultPayloadIsEmptyAndMatchesNothing) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.tag(), PayloadTag::kInvalid);
  EXPECT_EQ(p.as<std::string>(), nullptr);
  EXPECT_EQ(p.as<raft::WireMsg>(), nullptr);
}

TEST(PayloadTest, ProtocolTypesCarryTheirOwnTag) {
  proto::Proposal prop;
  prop.cycle = 7;
  Payload p(prop);
  ASSERT_NE(p.as<proto::Proposal>(), nullptr);
  EXPECT_EQ(p.as<proto::Proposal>()->cycle, 7u);
  // A different protocol's message under the same bus stays distinct.
  EXPECT_EQ(p.as<zab::Propose>(), nullptr);
  EXPECT_EQ(p.as<epaxos::PreAccept>(), nullptr);
  EXPECT_EQ(p.tag(), PayloadTag::kCanopusProposal);
}

TEST(PayloadTest, TagUniquenessAcrossAllRegisteredPayloads) {
  // Every type registered on the bus, across all protocol layers. Adding a
  // registration without a fresh enum tag must fail this test.
  const std::vector<PayloadTag> tags = {
      PayloadTraits<raft::WireMsg>::tag,
      PayloadTraits<proto::Proposal>::tag,
      PayloadTraits<proto::ProposalRequest>::tag,
      PayloadTraits<proto::JoinRequest>::tag,
      PayloadTraits<proto::JoinAck>::tag,
      PayloadTraits<kv::ClientBatch>::tag,
      PayloadTraits<kv::ReplyBatch>::tag,
      PayloadTraits<zab::Forward>::tag,
      PayloadTraits<zab::Propose>::tag,
      PayloadTraits<zab::Ack>::tag,
      PayloadTraits<zab::CommitMsg>::tag,
      PayloadTraits<zab::Inform>::tag,
      PayloadTraits<epaxos::PreAccept>::tag,
      PayloadTraits<epaxos::PreAcceptOk>::tag,
      PayloadTraits<epaxos::Commit>::tag,
      PayloadTraits<rbcast::SwitchFrame>::tag,
      PayloadTraits<std::string>::tag,
      PayloadTraits<int>::tag,
      PayloadTraits<char>::tag,
  };
  std::set<PayloadTag> unique(tags.begin(), tags.end());
  EXPECT_EQ(unique.size(), tags.size()) << "two payload types share a tag";
  EXPECT_FALSE(unique.contains(PayloadTag::kInvalid))
      << "a payload type registered under kInvalid";
}

TEST(PayloadTest, CopyingAPayloadSharesOneAllocation) {
  proto::Proposal prop;
  prop.writes = std::make_shared<const std::vector<kv::Request>>(
      std::vector<kv::Request>(1000));
  Payload a(std::move(prop));
  Payload b = a;          // fan-out copy
  Payload c = b;          // second hop
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_EQ(b.raw(), c.raw());
  // And the inner shared write-set is likewise not duplicated.
  EXPECT_EQ(a.as<proto::Proposal>()->writes.get(),
            c.as<proto::Proposal>()->writes.get());
}

TEST(PayloadTest, ReaddressedBroadcastSharesOnePayloadAllocation) {
  // The representative re-broadcast path: a fetched proposal is readdressed
  // to each super-leaf peer; all N messages must point at the same value.
  proto::Proposal prop;
  prop.cycle = 3;
  prop.writes = std::make_shared<const std::vector<kv::Request>>(
      std::vector<kv::Request>(512));
  Message fetched(10, 20, prop.wire_bytes(), prop);
  std::vector<Message> rebroadcast;
  for (NodeId peer = 21; peer <= 23; ++peer)
    rebroadcast.push_back(fetched.readdressed(20, peer));
  for (const Message& m : rebroadcast) {
    EXPECT_EQ(m.payload().raw(), fetched.payload().raw());
    ASSERT_NE(m.as<proto::Proposal>(), nullptr);
    EXPECT_EQ(m.as<proto::Proposal>(), fetched.as<proto::Proposal>());
  }
}

TEST(PayloadTest, RaftWireMessageRoundTrip) {
  raft::WireMsg w;
  w.group = 5;
  w.type = raft::MsgType::kRequestVote;
  w.term = 9;
  Message m(1, 2, w.wire_bytes(), w);
  ASSERT_NE(m.as<raft::WireMsg>(), nullptr);
  EXPECT_EQ(m.as<raft::WireMsg>()->group, 5u);
  EXPECT_EQ(m.as<raft::WireMsg>()->term, 9u);
  EXPECT_EQ(m.as<kv::ClientBatch>(), nullptr);
}

}  // namespace
}  // namespace canopus::simnet
