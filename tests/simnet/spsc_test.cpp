// SpscRing<T>: FIFO semantics, slot lifetime, and the two-thread hand-off
// protocol. The stress tests are the TSan targets for this ring (CI runs
// this binary in the thread-sanitizer job): a missing release/acquire pair
// on head_/tail_ shows up there as a data race on the slot bytes.
#include "simnet/spsc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace canopus::simnet {
namespace {

TEST(SpscRing, FifoOrderAndWraparound) {
  SpscRing<std::uint64_t> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);

  // Several full fill/drain cycles so the indices wrap the mask repeatedly.
  std::uint64_t next = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_FALSE(ring.full());
      ring.push(next + static_cast<std::uint64_t>(i));
    }
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.try_push(999));
    std::uint64_t v = 0;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.try_pop(v));
      EXPECT_EQ(v, next + static_cast<std::uint64_t>(i));
    }
    EXPECT_FALSE(ring.try_pop(v));
    EXPECT_TRUE(ring.empty());
    next += 4;
  }
}

// Counts live instances, so the test can prove pops destroy slots eagerly
// and the destructor drains leftovers.
struct Tracked {
  explicit Tracked(std::atomic<int>* c = nullptr) : counter(c) {
    if (counter) counter->fetch_add(1);
  }
  Tracked(Tracked&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
  Tracked& operator=(Tracked&& o) noexcept {
    if (counter) counter->fetch_sub(1);
    counter = o.counter;
    o.counter = nullptr;
    return *this;
  }
  ~Tracked() {
    if (counter) counter->fetch_sub(1);
  }
  std::atomic<int>* counter;
};

TEST(SpscRing, PopDestroysSlotAndDtorDrains) {
  std::atomic<int> live{0};
  {
    SpscRing<Tracked> ring(8);
    for (int i = 0; i < 6; ++i) ring.push(Tracked(&live));
    EXPECT_EQ(live.load(), 6);
    Tracked out;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_TRUE(ring.try_pop(out));
    out = Tracked();  // release the moved-out instance too
    EXPECT_EQ(live.load(), 4);  // popped slots destroyed immediately
  }
  EXPECT_EQ(live.load(), 0);  // destructor drained the remaining four
}

TEST(SpscRing, TwoThreadStressKeepsFifoOrder) {
  constexpr std::uint64_t kItems = 1'000'000;
  SpscRing<std::uint64_t> ring(64);  // small ring: exercise full/empty edges

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });

  std::uint64_t expect = 0;
  while (expect < kItems) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);  // strict FIFO, nothing lost or duplicated
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Move-only payloads crossing threads: the consumer must observe the
// producer's writes to the pointee (the acquire on tail_ orders them).
TEST(SpscRing, TwoThreadMoveOnlyPayloads) {
  constexpr std::uint64_t kItems = 100'000;
  SpscRing<std::unique_ptr<std::uint64_t>> ring(32);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      auto p = std::make_unique<std::uint64_t>(i * 3 + 1);
      while (!ring.try_push(std::move(p))) std::this_thread::yield();
    }
  });

  for (std::uint64_t i = 0; i < kItems;) {
    std::unique_ptr<std::uint64_t> p;
    if (!ring.try_pop(p)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(*p, i * 3 + 1);
    ++i;
  }
  producer.join();
}

}  // namespace
}  // namespace canopus::simnet
