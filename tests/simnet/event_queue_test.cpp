#include "simnet/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace canopus::simnet {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fire();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fire();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(1, [] {});
  q.cancel(999);
  q.cancel(kInvalidEvent);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledHeadIsSkippedByNextTime) {
  EventQueue q;
  EventId early = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(42, [] {});
  auto ev = q.pop();
  EXPECT_EQ(ev.time, 42);
  EXPECT_FALSE(ev.is_message);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  EventId id = q.schedule(10, [] {});
  q.schedule(11, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ArmCancelChurnKeepsHeapBounded) {
  // The pipeline-timer pattern: arm a far-future event, cancel it, repeat.
  // The old map-backed queue left every cancelled record in the heap; the
  // slot-based queue must compact them, keeping memory at O(live events).
  EventQueue q;
  q.schedule(1'000'000, [] {});  // one long-lived event stays armed
  std::size_t max_heap = 0;
  for (int i = 0; i < 100'000; ++i) {
    EventId id = q.schedule(500'000 + i, [] {});
    q.cancel(id);
    max_heap = std::max(max_heap, q.heap_entries());
  }
  EXPECT_EQ(q.size(), 1u);
  // Compaction triggers at max(64, 2 * live): churn can never push the heap
  // past a small constant here, let alone the 100k of the old behaviour.
  EXPECT_LE(max_heap, 130u);
}

TEST(EventQueue, CancelledIdDoesNotAffectSlotReuse) {
  // A cancelled event's slot is recycled for the next schedule; the stale
  // EventId must not be able to cancel the new occupant.
  EventQueue q;
  EventId old_id = q.schedule(10, [] {});
  q.cancel(old_id);
  bool fired = false;
  q.schedule(20, [&] { fired = true; });  // reuses the slot
  q.cancel(old_id);                       // stale id: must be a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fire();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, PoppedIdCannotCancelSlotSuccessor) {
  EventQueue q;
  EventId first = q.schedule(10, [] {});
  q.pop().fire();
  bool fired = false;
  q.schedule(20, [&] { fired = true; });
  q.cancel(first);  // already fired; its slot now belongs to the new event
  EXPECT_EQ(q.size(), 1u);
  q.pop().fire();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ChurnPreservesDeterministicOrder) {
  // Interleave schedules and cancels, then check the survivors fire in
  // (time, schedule-order): compaction and slot reuse must not disturb the
  // deterministic tiebreak.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  int label = 0;
  for (int round = 0; round < 200; ++round) {
    for (int j = 0; j < 4; ++j) {
      const int l = label++;
      const Time t = (l * 37) % 50;  // many time collisions
      EventId id = q.schedule(t, [&order, l] { order.push_back(l); });
      if (j % 2 == 1) cancelled.push_back(id);
    }
    if (round % 3 == 0 && !cancelled.empty()) {
      q.cancel(cancelled.back());
      cancelled.pop_back();
    }
  }
  for (EventId id : cancelled) q.cancel(id);
  Time prev_time = -1;
  std::vector<int> seen;
  while (!q.empty()) {
    const Time t = q.next_time();
    EXPECT_GE(t, prev_time);
    prev_time = t;
    q.pop().fire();
  }
  // Survivors at equal times must have fired in ascending schedule order.
  // Replay: group labels by time and check each group is sorted.
  // (`order` holds the survivors in pop order.)
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Time ti = (order[i] * 37) % 50;
    const Time tp = (order[i - 1] * 37) % 50;
    if (ti == tp) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

// --- typed message events -------------------------------------------------

/// Records the message steps executed through it.
struct RecordingTarget : MessageEventTarget {
  std::vector<std::pair<MessageEvent::Kind, std::uint32_t>> fired;
  void on_message_event(MessageEvent&& ev) override {
    fired.emplace_back(ev.kind, ev.hop);
  }
};

TEST(EventQueue, MessageEventsInterleaveWithClosuresDeterministically) {
  EventQueue q;
  RecordingTarget target;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(0); });
  q.schedule_message(
      10, MessageEvent{&target, Message(), MessageEvent::Kind::kHop, 7});
  q.schedule(10, [&] { order.push_back(1); });
  // Equal times: schedule order wins regardless of event kind.
  auto first = q.pop();
  EXPECT_FALSE(first.is_message);
  first.fire();
  auto second = q.pop();
  ASSERT_TRUE(second.is_message);
  EXPECT_EQ(second.msg.kind, MessageEvent::Kind::kHop);
  second.fire();
  q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  ASSERT_EQ(target.fired.size(), 1u);
  EXPECT_EQ(target.fired[0], std::make_pair(MessageEvent::Kind::kHop, 7u));
}

TEST(EventQueue, MessageEventCarriesItsFields) {
  EventQueue q;
  RecordingTarget target;
  q.schedule_message(
      5, MessageEvent{&target, Message(3, 9, 128, Payload{}),
                      MessageEvent::Kind::kDispatch, 0});
  auto ev = q.pop();
  ASSERT_TRUE(ev.is_message);
  EXPECT_EQ(ev.time, 5);
  EXPECT_EQ(ev.msg.msg.src(), 3u);
  EXPECT_EQ(ev.msg.msg.dst(), 9u);
  EXPECT_EQ(ev.msg.msg.wire_bytes(), 128u);
  ev.fire();
  ASSERT_EQ(target.fired.size(), 1u);
  EXPECT_EQ(target.fired[0].first, MessageEvent::Kind::kDispatch);
}

TEST(EventQueue, SizeAndNextTimeSpanBothEventKinds) {
  EventQueue q;
  RecordingTarget target;
  q.schedule(20, [] {});
  q.schedule_message(
      10, MessageEvent{&target, Message(), MessageEvent::Kind::kDeliver, 0});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time(), 10);  // the message event is earliest
  q.pop().fire();
  EXPECT_EQ(q.next_time(), 20);
  q.pop().fire();
  EXPECT_TRUE(q.empty());
  ASSERT_EQ(target.fired.size(), 1u);
}

TEST(EventQueue, CancellingClosuresDoesNotDisturbMessageEvents) {
  // Closure cancellation (slots, generations, lazy compaction) is invisible
  // to the message plane: messages fire in their scheduled order.
  EventQueue q;
  RecordingTarget target;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 100; ++i)
    cancelled.push_back(q.schedule(5, [] { FAIL(); }));
  for (std::uint32_t i = 0; i < 4; ++i)
    q.schedule_message(
        6, MessageEvent{&target, Message(), MessageEvent::Kind::kHop, i});
  for (EventId id : cancelled) q.cancel(id);
  EXPECT_EQ(q.size(), 4u);
  while (!q.empty()) q.pop().fire();
  ASSERT_EQ(target.fired.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(target.fired[i].second, i);
}

// --------------------------------------------------------------------------
// Lane-sequence discipline (ISSUE 6): the sharded kernel encodes an event's
// source lane in the high bits of the explicit tie-break seq,
// (lane << 40) | per-lane-counter. These tests pin the cross-shard contract:
// at equal times, events order by lane then by per-lane schedule order, and
// that order is a property of the KEYS alone — merging several queues by
// next_key() reproduces the single-queue order exactly, which is what makes
// parallel execution bit-identical to serial.
// --------------------------------------------------------------------------

constexpr std::uint64_t lane_seq(std::uint32_t lane, std::uint64_t ctr) {
  return (static_cast<std::uint64_t>(lane) << 40) | ctr;
}

TEST(EventQueue, LaneSeqTieBreakIsInsertionOrderIndependent) {
  // Schedule equal-time events from three lanes in scrambled insertion
  // order; they must pop lane-major, counter-minor.
  EventQueue q;
  std::vector<int> order;
  auto ev = [&](int label) {
    return [&order, label] { order.push_back(label); };
  };
  q.schedule(5, lane_seq(2, 1), ev(21));
  q.schedule(5, lane_seq(0, 2), ev(2));
  q.schedule(5, lane_seq(1, 1), ev(11));
  q.schedule(5, lane_seq(0, 1), ev(1));
  q.schedule(5, lane_seq(2, 2), ev(22));
  q.schedule(5, lane_seq(1, 2), ev(12));
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12, 21, 22}));
}

TEST(EventQueue, ControlLaneLosesAllTimeTies) {
  // The simulator assigns the control plane the numerically LARGEST lane,
  // so at equal times every node/link event fires before any control
  // event — the parallel coordinator can run control events at a global
  // barrier without reordering anything.
  EventQueue q;
  std::vector<int> order;
  const std::uint32_t control = 0xFFFF;
  q.schedule(7, lane_seq(control, 1), [&] { order.push_back(99); });
  q.schedule(7, lane_seq(3, 7), [&] { order.push_back(3); });
  q.schedule(7, lane_seq(control - 1, 1), [&] { order.push_back(98); });
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(order, (std::vector<int>{3, 98, 99}));
}

TEST(EventQueue, MergingQueuesByKeyReproducesSingleQueueOrder) {
  // The serial loop merges N shard queues by next_key(); the parallel
  // kernel executes each queue independently under the lookahead bound.
  // Both orders coincide because keys are globally unique and each lane
  // lives in exactly one queue. Simulate the merge over a shard split and
  // check it equals the order of one queue holding everything.
  struct Step {
    Time t;
    std::uint32_t lane;
    std::uint64_t ctr;
    int label;
  };
  const std::vector<Step> steps{
      {10, 0, 1, 1}, {10, 1, 1, 2},  {10, 2, 1, 3},  {15, 1, 2, 4},
      {15, 0, 2, 5}, {20, 2, 2, 6},  {20, 2, 3, 7},  {20, 0, 3, 8},
      {25, 1, 3, 9}, {25, 0, 4, 10}, {25, 2, 4, 11},
  };

  EventQueue all;
  std::vector<int> serial;
  for (const Step& s : steps)
    all.schedule(s.t, lane_seq(s.lane, s.ctr),
                 [&serial, label = s.label] { serial.push_back(label); });
  while (!all.empty()) all.pop().fire();

  // Shard split: lane 0 -> shard A, lanes 1 and 2 -> shard B.
  EventQueue a, b;
  std::vector<int> merged;
  for (const Step& s : steps)
    (s.lane == 0 ? a : b).schedule(
        s.t, lane_seq(s.lane, s.ctr),
        [&merged, label = s.label] { merged.push_back(label); });
  while (!a.empty() || !b.empty()) {
    EventQueue* next;
    if (a.empty())
      next = &b;
    else if (b.empty())
      next = &a;
    else
      next = a.next_key() < b.next_key() ? &a : &b;
    next->pop().fire();
  }

  // serial == sorted-by-(time, lane, ctr) == the cross-queue merge.
  EXPECT_EQ(serial,
            (std::vector<int>{1, 2, 3, 5, 4, 8, 6, 7, 10, 9, 11}));
  EXPECT_EQ(merged, serial);
}

TEST(EventQueue, MoveOnlyCaptureIsAccepted) {
  // std::function required copyable captures; InlineFn must not.
  EventQueue q;
  auto owned = std::make_unique<int>(7);
  int got = 0;
  q.schedule(1, [p = std::move(owned), &got] { got = *p; });
  q.pop().fire();
  EXPECT_EQ(got, 7);
}

}  // namespace
}  // namespace canopus::simnet
