#include "simnet/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace canopus::simnet {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) q.schedule(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(1, [] {});
  q.cancel(999);
  q.cancel(kInvalidEvent);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledHeadIsSkippedByNextTime) {
  EventQueue q;
  EventId early = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(42, [] {});
  auto [t, fn] = q.pop();
  EXPECT_EQ(t, 42);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  EventId id = q.schedule(10, [] {});
  q.schedule(11, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace canopus::simnet
