#include "simnet/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace canopus::simnet {
namespace {

struct Recorder : Process {
  struct Rx {
    Time time;
    NodeId src;
    std::string text;
  };
  std::vector<Rx> received;

  void on_message(const Message& m) override {
    const auto* s = m.as<std::string>();
    received.push_back({sim().now(), m.src(), s ? *s : std::string{}});
  }

  using Process::send;  // expose for tests
  void say(NodeId dst, std::size_t bytes, std::string text) {
    send(dst, bytes, std::move(text));
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  void build(int n, CpuModel cpu = CpuModel{0, 0, 0.0}) {
    RackConfig cfg;
    cfg.racks = 1;
    cfg.servers_per_rack = n;
    cfg.clients_per_rack = 0;
    cluster_ = build_multi_rack(cfg);
    net_ = std::make_unique<Network>(sim_, cluster_.topo, cpu);
    procs_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      net_->attach(cluster_.servers[static_cast<size_t>(i)],
                   procs_[static_cast<size_t>(i)]);
  }

  Simulator sim_;
  Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<Recorder> procs_;
};

TEST_F(NetworkTest, DeliversWithTopologyLatency) {
  build(2);
  const Time expect =
      cluster_.topo.base_latency(cluster_.servers[0], cluster_.servers[1], 100);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 100, "hi"); });
  sim_.run();
  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(procs_[1].received[0].time, expect);
  EXPECT_EQ(procs_[1].received[0].text, "hi");
  EXPECT_EQ(procs_[1].received[0].src, cluster_.servers[0]);
}

TEST_F(NetworkTest, CpuCostDelaysDelivery) {
  build(2, CpuModel{1'000, 2'000, 1.0});
  const Time wire =
      cluster_.topo.base_latency(cluster_.servers[0], cluster_.servers[1], 100);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 100, "x"); });
  sim_.run();
  ASSERT_EQ(procs_[1].received.size(), 1u);
  // send: 1000 + 100*1; recv: 2000 + 100*1.
  EXPECT_EQ(procs_[1].received[0].time, wire + 1'100 + 2'100);
}

TEST_F(NetworkTest, SharedLinkSerializesTraffic) {
  build(3);
  // Two senders hammer the same receiver; the receiver's downlink is the
  // shared bottleneck, so the second message queues behind the first.
  const std::size_t big = 1'000'000;  // 1 MB at 1.25 B/ns = 800 us
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[2], big, "a");
    procs_[1].say(cluster_.servers[2], big, "b");
  });
  sim_.run();
  ASSERT_EQ(procs_[2].received.size(), 2u);
  const Time gap = procs_[2].received[1].time - procs_[2].received[0].time;
  // The serialization time of 1 MB at 10 Gb/s is 800 us; queueing must
  // impose at least that gap.
  EXPECT_GE(gap, static_cast<Time>(big / gbps(10.0)));
}

TEST_F(NetworkTest, IndependentLinksDoNotQueue) {
  build(4);
  const std::size_t big = 1'000'000;
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[2], big, "a");
    procs_[1].say(cluster_.servers[3], big, "b");
  });
  sim_.run();
  ASSERT_EQ(procs_[2].received.size(), 1u);
  ASSERT_EQ(procs_[3].received.size(), 1u);
  EXPECT_EQ(procs_[2].received[0].time, procs_[3].received[0].time);
}

TEST_F(NetworkTest, CrashedDestinationDropsMessage) {
  build(2);
  net_->crash(cluster_.servers[1]);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 10, "x"); });
  sim_.run();
  EXPECT_TRUE(procs_[1].received.empty());
  EXPECT_EQ(net_->stats().dropped, 1u);
}

TEST_F(NetworkTest, CrashedSourceSendsNothing) {
  build(2);
  net_->crash(cluster_.servers[0]);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 10, "x"); });
  sim_.run();
  EXPECT_TRUE(procs_[1].received.empty());
  EXPECT_EQ(net_->stats().messages, 0u);
}

TEST_F(NetworkTest, RecoveredNodeReceivesAgain) {
  build(2);
  net_->crash(cluster_.servers[1]);
  net_->recover(cluster_.servers[1]);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 10, "x"); });
  sim_.run();
  EXPECT_EQ(procs_[1].received.size(), 1u);
}

TEST_F(NetworkTest, CrashAfterSendDropsInFlight) {
  build(2);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 10, "x"); });
  sim_.at(1, [&] { net_->crash(cluster_.servers[1]); });
  sim_.run();
  EXPECT_TRUE(procs_[1].received.empty());
}

TEST_F(NetworkTest, SeverBlocksOneDirectionOnly) {
  build(2);
  net_->sever(cluster_.servers[0], cluster_.servers[1]);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 10, "blocked");
    procs_[1].say(cluster_.servers[0], 10, "open");
  });
  sim_.run();
  EXPECT_TRUE(procs_[1].received.empty());
  ASSERT_EQ(procs_[0].received.size(), 1u);
  net_->heal(cluster_.servers[0], cluster_.servers[1]);
  sim_.at(sim_.now(), [&] { procs_[0].say(cluster_.servers[1], 10, "now"); });
  sim_.run();
  EXPECT_EQ(procs_[1].received.size(), 1u);
}

TEST_F(NetworkTest, SeverIsPerDirectedPair) {
  build(3);
  // Severing 0 -> 1 must not affect 0 -> 2, 2 -> 1, or 1 -> 0.
  net_->sever(cluster_.servers[0], cluster_.servers[1]);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 10, "dropped");
    procs_[0].say(cluster_.servers[2], 10, "ok02");
    procs_[2].say(cluster_.servers[1], 10, "ok21");
    procs_[1].say(cluster_.servers[0], 10, "ok10");
  });
  sim_.run();
  ASSERT_EQ(procs_[1].received.size(), 1u);
  EXPECT_EQ(procs_[1].received[0].text, "ok21");
  ASSERT_EQ(procs_[2].received.size(), 1u);
  ASSERT_EQ(procs_[0].received.size(), 1u);
}

TEST_F(NetworkTest, SeverCountsDropsInStats) {
  build(2);
  net_->sever(cluster_.servers[0], cluster_.servers[1]);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 10, "a");
    procs_[0].say(cluster_.servers[1], 10, "b");
  });
  sim_.run();
  EXPECT_EQ(net_->stats().dropped, 2u);
  // Severed sends never enter the wire: no message/byte accounting.
  EXPECT_EQ(net_->stats().messages, 0u);
  EXPECT_EQ(net_->stats().bytes, 0u);
}

TEST_F(NetworkTest, HealOnlyAffectsTheNamedPair) {
  build(3);
  net_->sever(cluster_.servers[0], cluster_.servers[1]);
  net_->sever(cluster_.servers[0], cluster_.servers[2]);
  net_->heal(cluster_.servers[0], cluster_.servers[1]);
  // Healing a pair that was never severed is a no-op, not an error.
  net_->heal(cluster_.servers[1], cluster_.servers[2]);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 10, "healed");
    procs_[0].say(cluster_.servers[2], 10, "still-dropped");
  });
  sim_.run();
  EXPECT_EQ(procs_[1].received.size(), 1u);
  EXPECT_TRUE(procs_[2].received.empty());
  EXPECT_EQ(net_->stats().dropped, 1u);
}

TEST_F(NetworkTest, SeverDoesNotBlockLocalDelivery) {
  build(2);
  // Self-traffic takes the local path; a (nonsensical) self-sever must not
  // black-hole it.
  net_->sever(cluster_.servers[0], cluster_.servers[0]);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[0], 10, "me"); });
  sim_.run();
  EXPECT_EQ(procs_[0].received.size(), 1u);
  EXPECT_EQ(net_->stats().dropped, 0u);
}

TEST_F(NetworkTest, DroppedAccountingUnderCrashPlusPartition) {
  build(3);
  // One crashed destination, one severed pair, one in-flight message whose
  // destination crashes mid-delivery: each drop is counted exactly once.
  net_->crash(cluster_.servers[1]);
  net_->sever(cluster_.servers[0], cluster_.servers[2]);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 10, "to-crashed");   // dropped at dst
    procs_[0].say(cluster_.servers[2], 10, "to-severed");   // dropped at src
    procs_[2].say(cluster_.servers[0], 10, "in-flight");
  });
  sim_.at(1, [&] { net_->crash(cluster_.servers[0]); });    // eats in-flight
  sim_.run();
  EXPECT_TRUE(procs_[0].received.empty());
  EXPECT_TRUE(procs_[1].received.empty());
  EXPECT_TRUE(procs_[2].received.empty());
  EXPECT_EQ(net_->stats().dropped, 3u);
}

TEST_F(NetworkTest, SelfSendDeliversLocally) {
  build(2);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[0], 10, "me"); });
  sim_.run();
  ASSERT_EQ(procs_[0].received.size(), 1u);
  EXPECT_EQ(net_->stats().messages, 0u);  // no wire traffic
}

TEST_F(NetworkTest, StatsCountMessagesAndBytes) {
  build(2);
  sim_.at(0, [&] {
    procs_[0].say(cluster_.servers[1], 100, "a");
    procs_[0].say(cluster_.servers[1], 50, "b");
  });
  sim_.run();
  EXPECT_EQ(net_->stats().messages, 2u);
  EXPECT_EQ(net_->stats().bytes, 150u);
}

TEST_F(NetworkTest, LinkBytesAccumulatePerLink) {
  build(2);
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 100, "a"); });
  sim_.run();
  const auto& path =
      cluster_.topo.path(cluster_.servers[0], cluster_.servers[1]);
  for (LinkId l : path) EXPECT_EQ(net_->link_bytes(l), 100u);
}

TEST_F(NetworkTest, TraceHookSeesDeliveries) {
  build(2);
  std::vector<std::pair<Time, NodeId>> trace;
  net_->set_trace([&](Time t, const Message& m) {
    trace.push_back({t, m.dst()});
  });
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 10, "x"); });
  sim_.run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].second, cluster_.servers[1]);
}

TEST_F(NetworkTest, FifoOrderPreservedBetweenPair) {
  build(2);
  sim_.at(0, [&] {
    for (int i = 0; i < 10; ++i)
      procs_[0].say(cluster_.servers[1], 100, std::to_string(i));
  });
  sim_.run();
  ASSERT_EQ(procs_[1].received.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(procs_[1].received[static_cast<size_t>(i)].text,
              std::to_string(i));
}

TEST(MessageTest, TypedAccess) {
  Message m(1, 2, 64, std::string("payload"));
  EXPECT_NE(m.as<std::string>(), nullptr);
  EXPECT_EQ(m.as<int>(), nullptr);
  EXPECT_EQ(*m.as<std::string>(), "payload");
  EXPECT_EQ(m.wire_bytes(), 64u);
}

TEST(MessageTest, ReaddressSharesPayload) {
  Message m(1, 2, 64, std::string("payload"));
  Message n = m.readdressed(3, 4);
  EXPECT_EQ(n.src(), 3u);
  EXPECT_EQ(n.dst(), 4u);
  EXPECT_EQ(m.as<std::string>(), n.as<std::string>());  // same object
}

// The representative re-broadcast path (§4.2): a relay readdresses the
// incoming Message to its peers and puts it back on the network. Exercises
// Message::readdressed through Network::send end-to-end and checks that
// every receiver shares the original payload allocation.
TEST_F(NetworkTest, ReaddressedRelayDeliversSharedPayload) {
  struct Relay : Process {
    std::vector<NodeId> fanout;
    void on_message(const Message& m) override {
      for (NodeId dst : fanout)
        net().send(m.readdressed(node_id(), dst));
    }
  };
  // Build 4 nodes; node 1 relays whatever node 0 sends to nodes 2 and 3.
  RackConfig cfg;
  cfg.racks = 1;
  cfg.servers_per_rack = 4;
  cfg.clients_per_rack = 0;
  cluster_ = build_multi_rack(cfg);
  net_ = std::make_unique<Network>(sim_, cluster_.topo, CpuModel{0, 0, 0.0});
  procs_.resize(3);  // recorders for nodes 0, 2, 3
  Relay relay;
  relay.fanout = {cluster_.servers[2], cluster_.servers[3]};
  net_->attach(cluster_.servers[0], procs_[0]);
  net_->attach(cluster_.servers[1], relay);
  net_->attach(cluster_.servers[2], procs_[1]);
  net_->attach(cluster_.servers[3], procs_[2]);

  const void* original = nullptr;
  net_->set_trace([&](Time, const Message& m) {
    if (original == nullptr) original = m.payload().raw();
    EXPECT_EQ(m.payload().raw(), original);  // one allocation end to end
  });
  sim_.at(0, [&] { procs_[0].say(cluster_.servers[1], 100, "fetched"); });
  sim_.run();
  ASSERT_EQ(procs_[1].received.size(), 1u);
  ASSERT_EQ(procs_[2].received.size(), 1u);
  EXPECT_EQ(procs_[1].received[0].text, "fetched");
  EXPECT_EQ(procs_[2].received[0].text, "fetched");
  EXPECT_EQ(procs_[1].received[0].src, cluster_.servers[1]);
  EXPECT_NE(original, nullptr);
}

}  // namespace
}  // namespace canopus::simnet
