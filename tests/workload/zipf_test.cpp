// Zipfian key sampler: distribution shape (chi-square against the exact
// pmf), the one-uniform-draw contract that keeps seeded goldens stable, and
// bit-identical key streams across reruns and PDES shard counts.
#include "workload/key_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "workload/sharded.h"

namespace canopus::workload {
namespace {

TEST(ShardOfKey, CoversAllGroupsAndIsPure) {
  const std::uint32_t groups = 4;
  std::set<std::uint32_t> hit;
  for (std::uint64_t k = 0; k < 256; ++k) {
    const std::uint32_t g = shard_of_key(k, groups);
    ASSERT_LT(g, groups);
    EXPECT_EQ(g, shard_of_key(k, groups));  // pure function
    hit.insert(g);
  }
  EXPECT_EQ(hit.size(), groups);
}

TEST(ShardOfKey, DecorrelatesConsecutiveRanks) {
  // raw rank % groups would alternate perfectly; the mixed hash must not.
  const std::uint32_t groups = 2;
  int same_as_next = 0;
  for (std::uint64_t k = 0; k + 1 < 512; ++k)
    if (shard_of_key(k, groups) == shard_of_key(k + 1, groups))
      ++same_as_next;
  // Unmixed striping gives exactly 0; a mixed hash stays near half.
  EXPECT_GT(same_as_next, 128);
  EXPECT_LT(same_as_next, 384);
}

TEST(ZipfTable, PmfIsANormalizedDistribution) {
  const ZipfTable t(1'000, 0.99);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < t.n(); ++k) sum += t.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(t.pmf(0), t.pmf(1));
  EXPECT_GT(t.pmf(1), t.pmf(10));
  EXPECT_GT(t.pmf(10), t.pmf(999));
}

TEST(ZipfTable, ChiSquareMatchesPmf) {
  // 50k draws binned as {0}, {1}, [2,10), [10,100), [100,1000). The seeded
  // draw makes both statistics single deterministic numbers. The Gray et
  // al. inversion carries a documented few-percent bias in the middle
  // ranks (it inverts the continuous zipf CDF), which at 50k draws
  // dominates sampling noise — so the gates are (a) every bin within 10%
  // relative error of the exact pmf mass and (b) a chi-square bound sized
  // to admit that bias (0.5% of draws). A wrong exponent, a broken
  // normalization or a non-uniform source moves bin masses far past both.
  const auto table = ZipfTable::get(1'000, 0.99);
  const std::uint64_t kDraws = 50'000;
  const std::uint64_t edges[] = {0, 1, 2, 10, 100, 1'000};
  constexpr std::size_t kBins = 5;
  std::uint64_t observed[kBins] = {};
  Rng rng(0x21bf5ULL);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t k = table->draw(rng);
    ASSERT_LT(k, table->n());
    for (std::size_t b = 0; b < kBins; ++b)
      if (k >= edges[b] && k < edges[b + 1]) {
        ++observed[b];
        break;
      }
  }
  double stat = 0.0;
  for (std::size_t b = 0; b < kBins; ++b) {
    double p = 0.0;
    for (std::uint64_t k = edges[b]; k < edges[b + 1]; ++k) p += table->pmf(k);
    const double expected = p * static_cast<double>(kDraws);
    ASSERT_GT(expected, 5.0);  // chi-square validity
    const double d = static_cast<double>(observed[b]) - expected;
    EXPECT_LT(std::abs(d) / expected, 0.10)
        << "bin [" << edges[b] << "," << edges[b + 1] << ") observed "
        << observed[b] << " expected " << expected;
    stat += d * d / expected;
  }
  EXPECT_LT(stat, 0.005 * static_cast<double>(kDraws))
      << "zipf sample diverges from pmf, chi2=" << stat;
  // Popularity must actually be skewed: the single most popular rank draws
  // orders of magnitude more than the uniform per-rank share (50 here).
  EXPECT_GT(observed[0], 50u * 20u);
}

TEST(ZipfTable, DrawConsumesExactlyOneUniform) {
  // The golden-stability contract: swapping the uniform draw for the zipf
  // draw changes WHICH key comes out, never how much RNG stream is eaten.
  const auto table = ZipfTable::get(4'096, 0.99);
  Rng a(42), b(42);
  for (int i = 0; i < 1'000; ++i) table->draw(a);
  for (int i = 0; i < 1'000; ++i) b.uniform();
  EXPECT_EQ(a(), b());
}

TEST(ZipfTable, SameSeedSameStreamDifferentSeedDiffers) {
  const auto table = ZipfTable::get(100'000, 0.99);
  Rng a(7), b(7), c(8);
  std::vector<std::uint64_t> sa, sb, sc;
  for (int i = 0; i < 512; ++i) {
    sa.push_back(table->draw(a));
    sb.push_back(table->draw(b));
    sc.push_back(table->draw(c));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(ZipfTable, CacheSharesOneTablePerParameterPoint) {
  const auto a = ZipfTable::get(12'345, 0.99);
  const auto b = ZipfTable::get(12'345, 0.99);
  const auto c = ZipfTable::get(12'345, 0.80);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

// --- end-to-end determinism of zipfian-keyed trials -----------------------

TrialConfig zipf_config(System sys) {
  TrialConfig tc;
  tc.system = sys;
  tc.groups = 2;
  tc.per_group = 3;
  tc.client_machines = 1;
  tc.key_dist = KeyDist::kZipfian;
  tc.num_keys = 10'000;
  tc.warmup = 200 * kMillisecond;
  tc.measure = 600 * kMillisecond;
  tc.drain = 300 * kMillisecond;
  return tc;
}

TEST(ZipfDeterminism, ClassicTrialRepeatsExactly) {
  const TrialConfig tc = zipf_config(System::kRaft);
  const Measurement a = run_trial(tc, 4'000);
  const Measurement b = run_trial(tc, 4'000);
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(ZipfDeterminism, ShardedZipfStreamsIdenticalAcrossSimThreads) {
  // The strongest pin available: the per-group commit fingerprints hash
  // every committed (id, key, value) in order, so equal folds mean the
  // zipfian key stream reaching every group was bit-identical under the
  // serial and the 2-shard PDES kernels.
  ShardedConfig sc;
  sc.base = zipf_config(System::kRaft);
  sc.sessions_per_machine = 64;
  const ShardedTrialResult serial = run_sharded_trial(sc, 4'000);
  sc.base.sim_threads = 2;
  const ShardedTrialResult sharded = run_sharded_trial(sc, 4'000);
  EXPECT_GT(serial.agg.completed, 0u);
  EXPECT_TRUE(serial.groups_agree);
  EXPECT_TRUE(sharded.groups_agree);
  EXPECT_EQ(serial.fingerprint, sharded.fingerprint);
  EXPECT_EQ(serial.group_commits, sharded.group_commits);
  EXPECT_EQ(serial.agg.completed, sharded.agg.completed);
  EXPECT_EQ(serial.sent, sharded.sent);
}

}  // namespace
}  // namespace canopus::workload
