// find_max_throughput stop rules (plateau / latency cap / saturation) and
// the equivalence of the serial and speculative-parallel searches.
#include "workload/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/trial_pool.h"

namespace canopus::workload {
namespace {

// A synthetic, deterministic "system": throughput tracks offered load up to
// a capacity knee, then flattens; latency stays low until far past the knee.
TrialFn capped_system(double capacity, double latency_blowup_at) {
  return [=](double offered) {
    Measurement m;
    m.offered = offered;
    m.throughput = offered <= capacity ? offered : capacity;
    m.median = offered <= latency_blowup_at ? kMillisecond : 50 * kMillisecond;
    m.p99 = 2 * m.median;
    m.mean = static_cast<double>(m.median);
    m.completed = static_cast<std::uint64_t>(m.throughput);
    return m;
  };
}

TEST(FindMaxThroughput, StopsAtPlateauNotLatencyCap) {
  // Capacity 100k; latency never blows up below 1e12, so only the plateau
  // (or saturation) rule can stop the ramp. The old code would have burned
  // all 20 steps.
  int trials = 0;
  TrialFn base = capped_system(100'000, 1e12);
  TrialFn counted = [&](double r) {
    ++trials;
    return base(r);
  };
  const auto res = find_max_throughput(counted, 10'000, 2.0,
                                       10 * kMillisecond, 20, 3);
  EXPECT_DOUBLE_EQ(res.max.throughput, 100'000);
  // Ramp: 10k,20k,40k,80k,160k,... The first capped point (160k) is also
  // saturated (100k < 0.7*160k), so the saturation rule fires first here.
  EXPECT_LT(trials, 20);
  EXPECT_EQ(res.sweep.size(), static_cast<std::size_t>(trials));
}

TEST(FindMaxThroughput, PlateauBreaksAfterKFlatHealthySteps) {
  // growth 1.0 keeps the offered rate constant: the first trial sets the
  // best (99% of offered), every later trial lands at 75% — healthy (median
  // far under the cap), never saturated (75% > the 0.7 threshold), and
  // never improving. Only the plateau rule can stop this ramp.
  int trials = 0;
  TrialFn flat2 = [&](double offered) {
    ++trials;
    Measurement m;
    m.offered = offered;
    m.throughput = trials == 1 ? 0.99 * offered : 0.75 * offered;
    m.median = kMillisecond;
    m.completed = static_cast<std::uint64_t>(m.throughput);
    return m;
  };
  const auto res = find_max_throughput(flat2, 1'000, 1.0,
                                       10 * kMillisecond, 50, 3);
  // 1 improving step + 3 flat steps = 4 trials, not 50.
  EXPECT_EQ(trials, 4);
  EXPECT_EQ(res.sweep.size(), 4u);
  EXPECT_DOUBLE_EQ(res.max.throughput, 990);
}

TEST(FindMaxThroughput, LatencyCapStillBreaks) {
  const auto res = find_max_throughput(capped_system(1e12, 50'000), 10'000,
                                       2.0, 10 * kMillisecond, 20, 3);
  // Ramp 10k,20k,40k,80k: 80k > 50k blows latency; unhealthy point ends the
  // search and is excluded from max but included in the sweep.
  EXPECT_EQ(res.sweep.size(), 4u);
  EXPECT_DOUBLE_EQ(res.max.throughput, 40'000);
  EXPECT_EQ(res.sweep.back().median, 50 * kMillisecond);
}

TEST(FindMaxThroughput, ZeroCompletionsIsUnhealthy) {
  TrialFn dead = [](double offered) {
    Measurement m;
    m.offered = offered;
    return m;  // nothing completed
  };
  const auto res = find_max_throughput(dead, 1'000, 2.0, 10 * kMillisecond,
                                       20, 3);
  EXPECT_EQ(res.sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(res.max.throughput, 0);
}

TEST(FindMaxThroughput, RespectsMaxSteps) {
  // Always-improving healthy system: only max_steps can stop it.
  TrialFn ideal = capped_system(1e15, 1e15);
  const auto res = find_max_throughput(ideal, 1'000, 1.3, 10 * kMillisecond,
                                       7, 3);
  EXPECT_EQ(res.sweep.size(), 7u);
}

TEST(FindMaxThroughput, ParallelSearchMatchesSerialBitForBit) {
  TrialFn sys = capped_system(123'456, 900'000);
  const auto serial = find_max_throughput(sys, 10'000, 1.4,
                                          10 * kMillisecond, 20, 3);
  for (unsigned threads : {1u, 2u, 3u, 5u, 8u}) {
    TrialPool pool(threads);
    const auto par = find_max_throughput(pool, sys, 10'000, 1.4,
                                         10 * kMillisecond, 20, 3);
    ASSERT_EQ(par.sweep.size(), serial.sweep.size()) << threads;
    for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
      EXPECT_EQ(par.sweep[i].offered, serial.sweep[i].offered);
      EXPECT_EQ(par.sweep[i].throughput, serial.sweep[i].throughput);
      EXPECT_EQ(par.sweep[i].median, serial.sweep[i].median);
      EXPECT_EQ(par.sweep[i].completed, serial.sweep[i].completed);
    }
    EXPECT_EQ(par.max.throughput, serial.max.throughput);
    EXPECT_EQ(par.max.offered, serial.max.offered);
  }
}

TEST(SweepRates, ParallelMatchesSerial) {
  TrialFn sys = capped_system(50'000, 80'000);
  const std::vector<double> rates{1'000, 2'000, 40'000, 60'000, 90'000};
  const auto serial = sweep_rates(sys, rates);
  TrialPool pool(4);
  const auto par = sweep_rates(pool, sys, rates);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(par[i].offered, serial[i].offered);
    EXPECT_EQ(par[i].throughput, serial[i].throughput);
    EXPECT_EQ(par[i].median, serial[i].median);
  }
}

}  // namespace
}  // namespace canopus::workload
