// ShardedService end to end: every system serves a hash-partitioned
// keyspace across independent groups, router clients redirect around
// crashed servers, group-scoped fault plumbing lands on the right nodes,
// per-group auditors stay clean under chaos storms, and the whole sharded
// pipeline is bit-identical across PDES shard counts.
#include "workload/sharded.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace canopus::workload {
namespace {

ShardedConfig small_sharded(System sys, int groups = 2) {
  ShardedConfig sc;
  sc.base.system = sys;
  sc.base.groups = groups;
  sc.base.per_group = 3;
  sc.base.client_machines = 1;  // per rack
  sc.base.num_keys = 100'000;
  sc.base.warmup = 200 * kMillisecond;
  sc.base.measure = 600 * kMillisecond;
  sc.base.drain = 300 * kMillisecond;
  sc.sessions_per_machine = 32;
  return sc;
}

FaultTiming short_timing() {
  FaultTiming ft;
  ft.warmup = 200 * kMillisecond;
  ft.fault_at = 600 * kMillisecond;
  ft.heal_at = 1'300 * kMillisecond;
  ft.end_at = 2'000 * kMillisecond;
  ft.drain = 500 * kMillisecond;
  return ft;
}

class ShardedSystemsTest : public ::testing::TestWithParam<System> {};

TEST_P(ShardedSystemsTest, EveryGroupCommitsAndAgrees) {
  const ShardedConfig sc = small_sharded(GetParam());
  const ShardedTrialResult r = run_sharded_trial(sc, 4'000);
  EXPECT_GT(r.agg.completed, 0u);
  EXPECT_TRUE(r.groups_agree);
  ASSERT_EQ(r.group_commits.size(), 2u);
  for (std::size_t g = 0; g < r.group_commits.size(); ++g)
    EXPECT_GT(r.group_commits[g], 0u) << "group " << g << " committed nothing";
  EXPECT_EQ(r.sessions, 2u * 32u);  // 2 racks x 1 machine x 32 sessions
  EXPECT_EQ(r.client_failed, 0u);
  EXPECT_EQ(r.retries, 0u);  // no faults: no group was ever fully down
}

TEST_P(ShardedSystemsTest, ZeroAuditViolationsUnderPerGroupStorm) {
  const ShardedConfig sc = small_sharded(GetParam());
  const FaultTiming ft = short_timing();
  const ChaosIntensity ci = standard_intensities()[0];  // low
  ShardedConfig tuned = sc;
  tuned.base = chaos_tuned(tuned.base);
  const ShardedChaosResult r =
      run_sharded_chaos_trial(tuned, ci, ft, 4'000, ChaosScope::kPerGroup);
  EXPECT_EQ(r.violations, 0u) << (r.violation_details.empty()
                                      ? std::string("(no details)")
                                      : r.violation_details[0].detail);
  ASSERT_EQ(r.group_violations.size(), 2u);
  for (const std::uint64_t v : r.group_violations) EXPECT_EQ(v, 0u);
  EXPECT_GT(r.fault_events, 0u);
  EXPECT_GT(r.acked_writes, 0u);
  EXPECT_GT(r.committed_writes, 0u);
  EXPECT_GT(r.before.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ShardedSystemsTest,
                         ::testing::Values(System::kCanopus, System::kRaft,
                                           System::kZab, System::kEPaxos),
                         [](const auto& info) {
                           return std::string(system_name(info.param));
                         });

TEST(ShardedService, LocateAndFleetIndexingAreGroupMajor) {
  const ShardedConfig sc = small_sharded(System::kRaft);
  simnet::Simulator sim(1);
  simnet::Cluster cluster = build_cluster(sc.base);
  simnet::Network net(sim, cluster.topo, sc.base.cpu);
  ShardedService svc(sc.base, cluster, net);
  ASSERT_EQ(svc.num_groups(), 2u);
  ASSERT_EQ(svc.servers_per_group(), 3u);
  for (std::size_t g = 0; g < svc.num_groups(); ++g)
    for (std::size_t s = 0; s < svc.servers_per_group(); ++s) {
      const NodeId n = svc.group_servers()[g][s];
      EXPECT_EQ(svc.locate(n), (std::pair<std::size_t, std::size_t>{g, s}));
      EXPECT_EQ(svc.group(g).server_node(s), n);
      EXPECT_EQ(cluster.servers[g * 3 + s], n);
    }
  // Fleet index 4 = group 1, local 1.
  svc.crash(4);
  EXPECT_FALSE(svc.group(1).up(1));
  EXPECT_TRUE(svc.group(0).up(1));
  EXPECT_TRUE(svc.recover(4));
  EXPECT_TRUE(svc.group(1).up(1));
}

TEST(ShardedService, RoutersRedirectAroundACrashedServer) {
  const ShardedConfig sc = small_sharded(System::kRaft);
  const std::uint64_t seed = 77;
  simnet::Simulator sim(seed);
  simnet::Cluster cluster = build_cluster(sc.base);
  simnet::Network net(sim, cluster.topo, sc.base.cpu);
  ShardedService svc(sc.base, cluster, net);
  auto rec = std::make_shared<LatencyRecorder>();
  rec->set_window(sc.base.warmup, sc.base.warmup + sc.base.measure);
  auto routers = attach_router_clients(sc, cluster, svc, net, rec, 4'000,
                                       seed, sc.base.warmup + sc.base.measure);
  // Take group 0's follower down for the whole run: every batch whose
  // round-robin pick lands on it must be redirected to a live sibling.
  sim.at(1, [&svc] { svc.crash(1); });
  sim.run_until(sc.base.warmup + sc.base.measure + sc.base.drain);
  std::uint64_t redirects = 0, failed = 0;
  for (const auto& r : routers) {
    redirects += r->redirects();
    failed += r->failed();
  }
  EXPECT_GT(redirects, 0u);
  EXPECT_EQ(failed, 0u);  // a 2/3 group is never fully down
  EXPECT_GT(rec->completed(), 0u);
  // Both groups still commit and agree despite the dark node.
  for (std::size_t g = 0; g < svc.num_groups(); ++g) {
    EXPECT_GT(svc.group_committed(g), 0u);
    EXPECT_TRUE(svc.group_agrees(g));
  }
}

TEST(ShardedService, WholeGroupDownRetriesThenFailsHonestly) {
  ShardedConfig sc = small_sharded(System::kRaft);
  sc.max_attempts = 2;
  const std::uint64_t seed = 78;
  simnet::Simulator sim(seed);
  simnet::Cluster cluster = build_cluster(sc.base);
  simnet::Network net(sim, cluster.topo, sc.base.cpu);
  ShardedService svc(sc.base, cluster, net);
  auto rec = std::make_shared<LatencyRecorder>();
  rec->set_window(sc.base.warmup, sc.base.warmup + sc.base.measure);
  auto routers = attach_router_clients(sc, cluster, svc, net, rec, 4'000,
                                       seed, sc.base.warmup + sc.base.measure);
  sim.at(1, [&svc] {
    for (std::size_t s = 0; s < svc.servers_per_group(); ++s) svc.crash(s);
  });
  sim.run_until(sc.base.warmup + sc.base.measure + sc.base.drain);
  std::uint64_t retries = 0, failed = 0;
  for (const auto& r : routers) {
    retries += r->retries();
    failed += r->failed();
  }
  EXPECT_GT(retries, 0u);   // backoff was exercised
  EXPECT_GT(failed, 0u);    // and bounded: group-0 keys eventually fail
  // The recorder windows failures by arrival (steady-state only), so it
  // sees a subset of the router's lifetime count.
  EXPECT_GT(rec->failed(), 0u);
  EXPECT_LE(rec->failed(), failed);
  // The surviving group keeps serving its share of the keyspace.
  EXPECT_GT(svc.group_committed(1), 0u);
  EXPECT_GT(rec->completed(), 0u);
}

TEST(ShardedService, GroupScopedScenarioHitsOnlyItsGroup) {
  const ShardedConfig sc = small_sharded(System::kRaft);
  const FaultTiming ft = short_timing();
  simnet::Simulator sim(5);
  simnet::Cluster cluster = build_cluster(sc.base);
  simnet::Network net(sim, cluster.topo, sc.base.cpu);
  ShardedService svc(sc.base, cluster, net);
  // A group-local single-node crash scoped onto group 1.
  FaultScenario local;
  local.name = "single_node_crash";
  local.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, 1, -1});
  local.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, 1, -1});
  const FaultScenario scoped = scope_to_group(local, 1, sc.base.per_group);
  EXPECT_EQ(scoped.name, "single_node_crash@group1");
  EXPECT_EQ(scoped.steps[0].a, 4);  // 1 * per_group + 1
  arm_sharded(make_schedule(scoped, cluster.servers), net, svc);
  sim.run_until(ft.fault_at + 1);
  EXPECT_FALSE(svc.group(1).up(1));
  for (std::size_t s = 0; s < 3; ++s) EXPECT_TRUE(svc.group(0).up(s));
  sim.run_until(ft.heal_at + 1);
  EXPECT_TRUE(svc.group(1).up(1));
}

TEST(ShardedService, StrictArmingAcceptsRecoversForAllSystems) {
  // Every system — Canopus included, via sponsored rejoin — now has a
  // repair path, so strict arming accepts recover events everywhere.
  for (System sys : {System::kCanopus, System::kRaft}) {
    ShardedConfig sc = small_sharded(sys);
    simnet::Simulator sim(6);
    simnet::Cluster cluster = build_cluster(sc.base);
    simnet::Network net(sim, cluster.topo, sc.base.cpu);
    ShardedService svc(sc.base, cluster, net);
    ASSERT_TRUE(svc.supports_recover());
    simnet::FaultSchedule with_recover;
    with_recover.crash_at(10, cluster.servers[0])
        .recover_at(20, cluster.servers[0]);
    EXPECT_NO_THROW(arm_sharded(with_recover, net, svc));
    EXPECT_NO_THROW(arm_sharded(with_recover, net, svc,
                                RecoverArming::kTolerateUnsupported));
  }
}

TEST(ShardedChaos, PerGroupScopeStormsEveryGroup) {
  ShardedConfig sc = small_sharded(System::kRaft);
  sc.base = chaos_tuned(sc.base);
  const FaultTiming ft = short_timing();
  const ChaosIntensity ci = standard_intensities()[0];
  const ShardedChaosResult fleet =
      run_sharded_chaos_trial(sc, ci, ft, 4'000, ChaosScope::kFleet);
  const ShardedChaosResult per_group =
      run_sharded_chaos_trial(sc, ci, ft, 4'000, ChaosScope::kPerGroup);
  // Per-group scope draws an independent storm of the same intensity for
  // EACH group, so its fleet-wide fault count is strictly larger here.
  EXPECT_GT(per_group.fault_events, fleet.fault_events);
  EXPECT_EQ(fleet.violations, 0u);
  EXPECT_EQ(per_group.violations, 0u);
}

TEST(ShardedChaos, BitIdenticalAcrossSimThreads) {
  ShardedConfig sc = small_sharded(System::kRaft);
  sc.base = chaos_tuned(sc.base);
  const FaultTiming ft = short_timing();
  const ChaosIntensity ci = standard_intensities()[1];  // medium
  const ShardedChaosResult serial =
      run_sharded_chaos_trial(sc, ci, ft, 4'000, ChaosScope::kPerGroup);
  sc.base.sim_threads = 2;
  const ShardedChaosResult sharded =
      run_sharded_chaos_trial(sc, ci, ft, 4'000, ChaosScope::kPerGroup);
  EXPECT_EQ(serial.violations, 0u);
  EXPECT_EQ(sharded.violations, 0u);
  EXPECT_EQ(serial.fault_events, sharded.fault_events);
  EXPECT_EQ(serial.before.completed, sharded.before.completed);
  EXPECT_EQ(serial.storm.completed, sharded.storm.completed);
  EXPECT_EQ(serial.after.completed, sharded.after.completed);
  EXPECT_EQ(serial.acked_writes, sharded.acked_writes);
  EXPECT_EQ(serial.committed_writes, sharded.committed_writes);
  EXPECT_EQ(serial.redirects, sharded.redirects);
  EXPECT_EQ(serial.client_failed, sharded.client_failed);
  EXPECT_EQ(serial.recovery_ns, sharded.recovery_ns);
}

TEST(ShardedTrial, BitIdenticalAcrossSimThreadsAndRepeatable) {
  ShardedConfig sc = small_sharded(System::kCanopus);
  const ShardedTrialResult a = run_sharded_trial(sc, 4'000);
  const ShardedTrialResult b = run_sharded_trial(sc, 4'000);
  sc.base.sim_threads = 2;
  const ShardedTrialResult c = run_sharded_trial(sc, 4'000);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
  EXPECT_EQ(a.agg.completed, c.agg.completed);
  EXPECT_EQ(a.agg.median, c.agg.median);
  EXPECT_EQ(a.group_commits, c.group_commits);
  EXPECT_EQ(a.sent, c.sent);
}

}  // namespace
}  // namespace canopus::workload
