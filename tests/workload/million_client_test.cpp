// The million-client workload plane: one RouterClient machine hosts 10^6
// sessions with O(1) state per session (one 64-bit cursor), so scaling the
// session count by ~1000x changes request *attribution* only — proven here
// with the global operator-new hook: the steady-state allocation count of a
// million-session trial is EXACTLY that of a thousand-session trial.
//
// This TU carries the counting allocation hook (bench/alloc_count.h), which
// must be defined in exactly one TU per binary — so this test links alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "bench/alloc_count.h"
#include "workload/sharded.h"

namespace canopus::workload {
namespace {

struct AllocProfile {
  std::uint64_t setup = 0;    ///< allocations before warmup ends
  std::uint64_t window = 0;   ///< allocations from warmup end to run end
  std::uint64_t completed = 0;
  std::uint64_t generated = 0;
  std::uint64_t sessions = 0;
};

// One sharded trial, manually staged so the allocation counter can be
// sampled at the warmup boundary. Everything except `sessions_per_machine`
// is held fixed; the RNG draw sequence is independent of the session count
// (the session pick costs one draw either way), so both profiles execute
// the same simulation events and differ only in request attribution.
AllocProfile run_with_sessions(std::uint32_t sessions_per_machine) {
  ShardedConfig sc;
  sc.base.system = System::kRaft;
  sc.base.groups = 2;
  sc.base.per_group = 3;
  sc.base.client_machines = 1;  // 2 racks x 1 machine
  sc.base.key_dist = KeyDist::kZipfian;  // the skewed-popularity trial
  sc.base.num_keys = 1'000'000;
  sc.base.warmup = 200 * kMillisecond;
  sc.base.measure = 500 * kMillisecond;
  sc.base.drain = 300 * kMillisecond;
  sc.sessions_per_machine = sessions_per_machine;

  const double rate = 4'000;
  const std::uint64_t trial_seed = derive_seed(sc.base.seed, 0x106aULL);
  simnet::Simulator sim(trial_seed);
  simnet::Cluster cluster = build_cluster(sc.base);
  simnet::Network net(sim, cluster.topo, sc.base.cpu);
  ShardedService svc(sc.base, cluster, net);
  auto rec = std::make_shared<LatencyRecorder>();
  rec->set_window(sc.base.warmup, sc.base.warmup + sc.base.measure);
  auto routers =
      attach_router_clients(sc, cluster, svc, net, rec, rate, trial_seed,
                            sc.base.warmup + sc.base.measure);

  AllocProfile p;
  const std::uint64_t at_start = bench::heap_allocations();
  sim.run_until(sc.base.warmup);
  const std::uint64_t at_warm = bench::heap_allocations();
  sim.run_until(sc.base.warmup + sc.base.measure + sc.base.drain);
  const std::uint64_t at_end = bench::heap_allocations();
  p.setup = at_warm - at_start;
  p.window = at_end - at_warm;
  p.completed = rec->completed();
  for (const auto& r : routers) {
    p.generated += r->generated();
    p.sessions += r->sessions();
  }
  return p;
}

TEST(MillionClients, SteadyStateAllocationsIndependentOfSessionCount) {
  // Prime the process-wide zipf table outside both profiles so neither
  // pays its one-time construction.
  ZipfTable::get(1'000'000, 0.99);

  const AllocProfile small = run_with_sessions(1'024);
  const AllocProfile million = run_with_sessions(500'000);

  ASSERT_EQ(small.sessions, 2'048u);
  ASSERT_EQ(million.sessions, 1'000'000u);

  // Identical simulations modulo attribution: same offered events...
  EXPECT_GT(small.completed, 0u);
  EXPECT_EQ(small.generated, million.generated);
  EXPECT_EQ(small.completed, million.completed);

  // ...and the load-bearing claim: not one extra steady-state allocation
  // for 488x the sessions. Per-session cost beyond the flat cursor array
  // would show up here multiplied by ~10^6.
  EXPECT_EQ(small.window, million.window)
      << "steady-state allocations scale with session count";

  // Setup differs only by O(1) allocations (the bigger cursor array is ONE
  // allocation; vector iterator-range attach bookkeeping stays fixed).
  const std::uint64_t setup_delta = million.setup > small.setup
                                        ? million.setup - small.setup
                                        : small.setup - million.setup;
  EXPECT_LE(setup_delta, 16u);
}

}  // namespace
}  // namespace canopus::workload
