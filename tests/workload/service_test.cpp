// ConsensusService: the uniform facade drives all four systems through the
// same submit/crash/recover/audit surface.
#include "workload/service.h"

#include <gtest/gtest.h>

#include <memory>

#include "workload/deployments.h"

namespace canopus::workload {
namespace {

struct Deployment {
  TrialConfig tc;
  simnet::Simulator sim{7};
  simnet::Cluster cluster;
  std::unique_ptr<simnet::Network> net;
  std::unique_ptr<ConsensusService> service;

  explicit Deployment(System sys, int groups = 2, int per_group = 3) {
    tc.system = sys;
    tc.groups = groups;
    tc.per_group = per_group;
    tc.client_machines = 0;
    tc = fault_tuned_local(tc);
    cluster = build_cluster(tc);
    net = std::make_unique<simnet::Network>(sim, cluster.topo);
    service = make_service(tc, cluster, *net);
  }

  // Local single-DC repair tuning without dragging in fault_scenario.h.
  static TrialConfig fault_tuned_local(TrialConfig tc) {
    tc.canopus.fetch_timeout = 100 * kMillisecond;
    tc.epaxos.repair_retry = 25 * kMillisecond;
    tc.zab.sync_retry = 25 * kMillisecond;
    return tc;
  }

  void write_at(Time t, std::size_t node, std::uint64_t key,
                std::uint64_t val) {
    sim.at(t, [this, node, key, val] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = val;
      r.arrival = sim.now();
      service->submit(node, r);
    });
  }

  bool all_agree() const {
    bool first = true;
    std::uint64_t fp = 0, count = 0;
    for (std::size_t i = 0; i < service->num_servers(); ++i) {
      if (!service->comparable(i)) continue;
      if (first) {
        fp = service->commit_fingerprint(i);
        count = service->committed_writes(i);
        first = false;
      } else if (service->commit_fingerprint(i) != fp ||
                 service->committed_writes(i) != count) {
        return false;
      }
    }
    return true;
  }
};

class ServiceTest : public ::testing::TestWithParam<System> {};

TEST_P(ServiceTest, NameMatchesSystem) {
  Deployment d(GetParam());
  EXPECT_STREQ(d.service->name(), system_name(GetParam()));
}

TEST_P(ServiceTest, WritesCommitEverywhereAndDigestsAgree) {
  Deployment d(GetParam());
  d.write_at(5 * kMillisecond, 0, 1, 11);
  d.write_at(6 * kMillisecond, 4, 2, 22);
  d.sim.run_until(2 * kSecond);
  for (std::size_t i = 0; i < d.service->num_servers(); ++i) {
    EXPECT_EQ(d.service->committed_writes(i), 2u) << "node " << i;
    EXPECT_EQ(d.service->store(i).read(1), 11u);
    EXPECT_EQ(d.service->store(i).read(2), 22u);
    EXPECT_GT(d.service->progress(i), 0u);
  }
  EXPECT_TRUE(d.all_agree());
}

TEST_P(ServiceTest, CrashBookkeepingAndComparability) {
  Deployment d(GetParam());
  EXPECT_TRUE(d.service->up(5));
  EXPECT_TRUE(d.service->comparable(5));
  d.service->crash(5);
  EXPECT_FALSE(d.service->up(5));
  EXPECT_TRUE(d.service->ever_crashed(5));
  EXPECT_FALSE(d.service->comparable(5));
}

TEST_P(ServiceTest, SurvivorsCommitAfterOneCrash) {
  Deployment d(GetParam());
  d.sim.at(100 * kMillisecond, [&] { d.service->crash(5); });
  d.write_at(1'500 * kMillisecond, 0, 3, 33);
  d.sim.run_until(4 * kSecond);
  for (std::size_t i = 0; i < d.service->num_servers(); ++i) {
    if (!d.service->comparable(i)) continue;
    EXPECT_EQ(d.service->store(i).read(3), 33u) << "node " << i;
  }
  EXPECT_TRUE(d.all_agree());
}

TEST_P(ServiceTest, RecoverSemanticsMatchTheSystem) {
  Deployment d(GetParam());
  EXPECT_TRUE(d.service->supports_recover());
  d.service->crash(5);
  const bool recovered = d.service->recover(5);
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(d.service->up(5));
  if (GetParam() == System::kCanopus) {
    // A recovered pnode is back up but in JOINING mode: it is excluded from
    // the audit set until a live super-leaf sibling sponsors its re-admission
    // and ships it a state snapshot.
    EXPECT_FALSE(d.service->comparable(5));
  } else {
    EXPECT_TRUE(d.service->comparable(5));
  }
}

TEST_P(ServiceTest, RecoveredNodeConvergesAfterMissingWrites) {
  Deployment d(GetParam());
  d.write_at(5 * kMillisecond, 0, 1, 11);
  d.sim.at(500 * kMillisecond, [&] { d.service->crash(5); });
  d.write_at(700 * kMillisecond, 0, 2, 22);  // missed by node 5
  d.sim.at(1'500 * kMillisecond, [&] { d.service->recover(5); });
  // Post-recovery traffic lets passive gap detection kick in where needed.
  d.write_at(1'700 * kMillisecond, 1, 3, 33);
  d.sim.run_until(5 * kSecond);
  EXPECT_EQ(d.service->store(5).read(2), 22u);
  EXPECT_EQ(d.service->store(5).read(3), 33u);
  EXPECT_TRUE(d.all_agree());
}

TEST_P(ServiceTest, OnCommitHookFiresWithBatches) {
  Deployment d(GetParam());
  std::uint64_t hook_writes = 0;
  d.service->on_commit = [&](std::size_t, std::uint64_t,
                             const std::vector<kv::Request>& batch) {
    for (const kv::Request& r : batch)
      if (r.is_write) ++hook_writes;
  };
  d.write_at(5 * kMillisecond, 0, 1, 11);
  d.sim.run_until(2 * kSecond);
  // Every node reports its commit: groups*per_group nodes x 1 write.
  EXPECT_EQ(hook_writes, d.service->num_servers());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ServiceTest,
                         ::testing::Values(System::kCanopus, System::kRaft,
                                           System::kZab, System::kEPaxos),
                         [](const auto& info) {
                           return std::string(system_name(info.param));
                         });

}  // namespace
}  // namespace canopus::workload
