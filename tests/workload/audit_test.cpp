// Checker self-tests: the invariant auditor must DETECT injected
// violations — a lost acknowledged write, a commit-order flip, a stale or
// phantom read — and must pass clean histories. These tests feed synthetic
// histories through the low-level note_*/finalize API; the live wiring is
// exercised by the chaos golden tests (tests/workload/golden_digest_test).
#include "workload/audit.h"

#include <gtest/gtest.h>

#include <vector>

namespace canopus::workload {
namespace {

kv::Request write_req(ClientId client, std::uint64_t seq, std::uint64_t key,
                      std::uint64_t value) {
  kv::Request r;
  r.id = {client, seq};
  r.is_write = true;
  r.key = key;
  r.value = value;
  return r;
}

kv::Completion write_ack(ClientId client, std::uint64_t seq) {
  kv::Completion c;
  c.id = {client, seq};
  c.is_write = true;
  return c;
}

kv::Completion read_reply(std::uint64_t key, std::uint64_t value) {
  kv::Completion c;
  c.is_write = false;
  c.key = key;
  c.value = value;
  return c;
}

AuditConfig ordered_cfg() {
  AuditConfig ac;
  ac.ordered = true;
  return ac;
}

std::uint64_t count(const HistoryAuditor& a, AuditViolation::Kind k) {
  std::uint64_t n = 0;
  for (const AuditViolation& v : a.violations()) n += v.kind == k ? 1 : 0;
  return n;
}

TEST(HistoryAuditor, CleanOrderedHistoryPasses) {
  HistoryAuditor a(ordered_cfg(), 3);
  const auto w1 = write_req(7, 1, 100, 11), w2 = write_req(7, 2, 100, 22),
             w3 = write_req(8, 1, 200, 33);
  for (std::size_t node = 0; node < 3; ++node) {
    a.note_commit(node, {w1, w2});
    a.note_commit(node, {w3});
  }
  a.note_reply(0, 0, write_ack(7, 1), 10);
  a.note_reply(0, 0, write_ack(7, 2), 20);
  a.note_reply(1, 2, write_ack(8, 1), 30);
  // Monotone session: initial 0, then the two versions in commit order.
  a.note_reply(0, 1, read_reply(100, 0), 5);
  a.note_reply(0, 1, read_reply(100, 11), 15);
  a.note_reply(0, 1, read_reply(100, 22), 25);
  const std::vector<bool> all(3, true);
  a.check_prefixes(40, all);
  a.finalize(50, all);
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.acked_writes(), 3u);
  EXPECT_EQ(a.observed_reads(), 3u);
}

TEST(HistoryAuditor, LaggingPrefixIsNotDivergence) {
  // A node mid-catch-up holds a shorter — but consistent — prefix.
  HistoryAuditor a(ordered_cfg(), 2);
  const auto w1 = write_req(1, 1, 5, 50), w2 = write_req(1, 2, 6, 60);
  a.note_commit(0, {w1, w2});
  a.note_commit(1, {w1});
  const std::vector<bool> all(2, true);
  a.check_prefixes(10, all);
  a.finalize(20, all);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(HistoryAuditor, DetectsLostAckedWrite) {
  HistoryAuditor a(ordered_cfg(), 2);
  const auto w1 = write_req(1, 1, 5, 50);
  a.note_commit(0, {w1});
  a.note_commit(1, {w1});
  a.note_reply(0, 0, write_ack(1, 1), 10);
  a.note_reply(0, 0, write_ack(1, 2), 12);  // acked but never committed
  a.finalize(20, {true, true});
  EXPECT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(count(a, AuditViolation::Kind::kLostAckedWrite), 1u);
}

TEST(HistoryAuditor, AckedWriteOnOnlyOneComparableNodeIsNotLost) {
  // Durability is judged over the union of comparable nodes: a write that
  // reached one surviving replica is not lost (the prefix check separately
  // decides whether histories agree).
  HistoryAuditor a(ordered_cfg(), 2);
  const auto w1 = write_req(1, 1, 5, 50);
  a.note_commit(0, {w1});
  a.note_reply(0, 0, write_ack(1, 1), 10);
  a.finalize(20, {true, true});
  EXPECT_EQ(count(a, AuditViolation::Kind::kLostAckedWrite), 0u);
}

TEST(HistoryAuditor, DetectsOrderFlip) {
  HistoryAuditor a(ordered_cfg(), 2);
  const auto w1 = write_req(1, 1, 5, 50), w2 = write_req(1, 2, 6, 60);
  a.note_commit(0, {w1, w2});
  a.note_commit(1, {w2, w1});  // same set, flipped order: a fork
  a.check_prefixes(10, {true, true});
  EXPECT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(count(a, AuditViolation::Kind::kPrefixDivergence), 1u);
  // Reported once, not once per probe.
  a.check_prefixes(20, {true, true});
  a.finalize(30, {true, true});
  EXPECT_EQ(count(a, AuditViolation::Kind::kPrefixDivergence), 1u);
}

TEST(HistoryAuditor, UnorderedModeSkipsPrefixButCatchesLostWrites) {
  AuditConfig ac;
  ac.ordered = false;  // EPaxos: commit order is legitimately partial
  HistoryAuditor a(ac, 2);
  const auto w1 = write_req(1, 1, 5, 50), w2 = write_req(1, 2, 6, 60);
  a.note_commit(0, {w1, w2});
  a.note_commit(1, {w2, w1});
  a.note_reply(0, 0, write_ack(1, 1), 10);
  a.note_reply(0, 0, write_ack(9, 9), 12);  // never committed anywhere
  a.check_prefixes(15, {true, true});
  a.finalize(20, {true, true});
  EXPECT_EQ(count(a, AuditViolation::Kind::kPrefixDivergence), 0u);
  EXPECT_EQ(count(a, AuditViolation::Kind::kLostAckedWrite), 1u);
}

TEST(HistoryAuditor, DetectsStaleRead) {
  HistoryAuditor a(ordered_cfg(), 1);
  const auto w1 = write_req(1, 1, 100, 11), w2 = write_req(1, 2, 100, 22);
  a.note_commit(0, {w1, w2});
  a.note_reply(0, 0, read_reply(100, 22), 10);  // newest version...
  a.note_reply(0, 0, read_reply(100, 11), 20);  // ...then an older one
  a.finalize(30, {true});
  EXPECT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(count(a, AuditViolation::Kind::kStaleRead), 1u);
}

TEST(HistoryAuditor, DetectsValueRollbackToInitialState) {
  // Seeing a committed value and then the pre-write initial state (0) is a
  // backwards read too.
  HistoryAuditor a(ordered_cfg(), 1);
  a.note_commit(0, {write_req(1, 1, 100, 11)});
  a.note_reply(0, 0, read_reply(100, 11), 10);
  a.note_reply(0, 0, read_reply(100, 0), 20);
  a.finalize(30, {true});
  EXPECT_EQ(count(a, AuditViolation::Kind::kStaleRead), 1u);
}

TEST(HistoryAuditor, SessionsAreIndependent) {
  // The same backwards pattern split across two servers is legal: sessions
  // are per (client, server, key), matching what FIFO delivery guarantees.
  HistoryAuditor a(ordered_cfg(), 2);
  const auto w1 = write_req(1, 1, 100, 11), w2 = write_req(1, 2, 100, 22);
  a.note_commit(0, {w1, w2});
  a.note_commit(1, {w1, w2});
  a.note_reply(0, 0, read_reply(100, 22), 10);  // fresh node
  a.note_reply(0, 1, read_reply(100, 11), 20);  // lagging node: fine
  a.finalize(30, {true, true});
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(HistoryAuditor, DuplicateCommittedValuesAreNotFalsePositives) {
  // The same value committed twice to one key makes a read of it
  // ambiguous (replies carry values, not write ids): the checker must
  // score it conservatively by its [first, last] rank range and never
  // flag a legal interleaving.
  HistoryAuditor a(ordered_cfg(), 1);
  a.note_commit(0, {write_req(1, 1, 100, 5), write_req(1, 2, 100, 7),
                    write_req(1, 3, 100, 5)});
  a.note_reply(0, 0, read_reply(100, 5), 10);  // could be rank 0 or 2
  a.note_reply(0, 0, read_reply(100, 7), 20);  // rank 1: legal if 5 was rank 0
  a.note_reply(0, 0, read_reply(100, 5), 30);  // legal again: could be rank 2
  a.finalize(40, {true});
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(HistoryAuditor, DetectsPhantomRead) {
  HistoryAuditor a(ordered_cfg(), 1);
  a.note_commit(0, {write_req(1, 1, 100, 11)});
  // Value 99 was never committed at this server, for any key.
  a.note_reply(0, 0, read_reply(100, 99), 10);
  // Key 777 was never written at all.
  a.note_reply(0, 0, read_reply(777, 55), 20);
  a.finalize(30, {true});
  EXPECT_EQ(count(a, AuditViolation::Kind::kPhantomRead), 2u);
}

TEST(HistoryAuditor, ViolationDetailsAreCappedButCounted) {
  AuditConfig ac = ordered_cfg();
  ac.max_recorded = 2;
  HistoryAuditor a(ac, 1);
  for (std::uint64_t s = 1; s <= 5; ++s)
    a.note_reply(0, 0, write_ack(1, s), 10);  // five lost writes
  a.note_commit(0, {write_req(2, 1, 1, 1)});  // make node 0 comparable-rich
  a.finalize(20, {true});
  EXPECT_EQ(a.violation_count(), 5u);
  EXPECT_EQ(a.violations().size(), 2u);
}

}  // namespace
}  // namespace canopus::workload
