// StormMinimizer tests: ddmin unit semantics against predicate oracles,
// and the full loop against a REAL auditor oracle — a deterministic
// mini-harness in which a reorder window provably flips a naive applier's
// commit order, the HistoryAuditor detects the fork (the audit-plane
// self-test for the gray palette), and the minimizer strips a noisy storm
// down to the one fault pair that matters.
#include "workload/storm_minimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "simnet/chaos.h"
#include "simnet/payload_testing.h"
#include "simnet/topology.h"
#include "workload/audit.h"

namespace canopus::workload {
namespace {

using simnet::FaultEvent;
using simnet::FaultSchedule;

bool storms_equal(const FaultSchedule& a, const FaultSchedule& b) {
  if (a.events().size() != b.events().size()) return false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent &x = a.events()[i], &y = b.events()[i];
    if (x.at != y.at || x.kind != y.kind || x.a != y.a || x.b != y.b ||
        x.x != y.x || x.d != y.d)
      return false;
  }
  return true;
}

// --- ddmin against predicate oracles ----------------------------------

FaultSchedule noise_storm(std::size_t pairs) {
  // `pairs` crash/recover pairs on rotating nodes, 10 ms apart.
  FaultSchedule s;
  for (std::size_t i = 0; i < pairs; ++i) {
    const Time t = static_cast<Time>(i + 1) * 10 * kMillisecond;
    s.crash_at(t, static_cast<NodeId>(i % 5))
        .recover_at(t + 5 * kMillisecond, static_cast<NodeId>(i % 5));
  }
  return s;
}

bool has_event(const FaultSchedule& s, FaultEvent::Kind kind, NodeId a,
               NodeId b) {
  for (const FaultEvent& ev : s.events())
    if (ev.kind == kind && ev.a == a && ev.b == b) return true;
  return false;
}

TEST(StormMinimizer, ReducesToSingleCulpritUnit) {
  // 20 noise pairs plus one sever pair; the oracle cares only about the
  // sever. Minimal = exactly the sever and its heal.
  std::vector<FaultEvent> evs = noise_storm(20).events();
  evs.push_back({205 * kMillisecond, FaultEvent::Kind::kSever, 3, 4, 0, 0});
  evs.push_back({280 * kMillisecond, FaultEvent::Kind::kHeal, 3, 4, 0, 0});
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  FaultSchedule storm;
  for (const FaultEvent& ev : evs) storm.add(ev);

  StormMinimizer mini([](const FaultSchedule& s) {
    return has_event(s, FaultEvent::Kind::kSever, 3, 4);
  });
  const MinimizeResult res = mini.minimize(storm);
  EXPECT_TRUE(res.reproduced);
  EXPECT_EQ(res.original_events, 42u);
  ASSERT_EQ(res.minimal_events, 2u);
  EXPECT_EQ(res.minimal.events()[0].kind, FaultEvent::Kind::kSever);
  EXPECT_EQ(res.minimal.events()[1].kind, FaultEvent::Kind::kHeal);
  EXPECT_LE(res.probes, 100u);
}

TEST(StormMinimizer, KeepsInteractingUnits) {
  // The failure needs BOTH the crash of node 1 and the sever (3,4): ddmin
  // must keep two units that live in different halves of the storm.
  std::vector<FaultEvent> evs = noise_storm(16).events();
  evs.push_back({15 * kMillisecond, FaultEvent::Kind::kSever, 3, 4, 0, 0});
  evs.push_back({290 * kMillisecond, FaultEvent::Kind::kHeal, 3, 4, 0, 0});
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  FaultSchedule storm;
  for (const FaultEvent& ev : evs) storm.add(ev);

  StormMinimizer mini([](const FaultSchedule& s) {
    return has_event(s, FaultEvent::Kind::kSever, 3, 4) &&
           has_event(s, FaultEvent::Kind::kCrash, 1, kInvalidNode);
  });
  const MinimizeResult res = mini.minimize(storm);
  EXPECT_TRUE(res.reproduced);
  // 1-minimal: the sever pair, plus at least one crash(1)/recover pair
  // (noise rotates nodes, so several crash(1) units exist; ddmin keeps 1).
  EXPECT_EQ(res.minimal_events, 4u);
  EXPECT_TRUE(has_event(res.minimal, FaultEvent::Kind::kSever, 3, 4));
  EXPECT_TRUE(has_event(res.minimal, FaultEvent::Kind::kCrash, 1,
                        kInvalidNode));
}

TEST(StormMinimizer, GreenOracleMeansNothingToMinimize) {
  StormMinimizer mini([](const FaultSchedule&) { return false; });
  const MinimizeResult res = mini.minimize(noise_storm(5));
  EXPECT_FALSE(res.reproduced);
  EXPECT_EQ(res.minimal_events, res.original_events);
  EXPECT_EQ(res.probes, 1u);  // only the initial reproduction check
}

TEST(StormMinimizer, ToleratesUnpairedEvents) {
  // A hand-truncated storm with a lone heal: it becomes a singleton unit
  // and is dropped like any other irrelevant one.
  FaultSchedule storm;
  storm.crash_at(10 * kMillisecond, 2)
      .recover_at(20 * kMillisecond, 2)
      .add({30 * kMillisecond, FaultEvent::Kind::kHeal, 0, 1, 0, 0});
  StormMinimizer mini([](const FaultSchedule& s) {
    return has_event(s, FaultEvent::Kind::kCrash, 2, kInvalidNode);
  });
  const MinimizeResult res = mini.minimize(storm);
  EXPECT_TRUE(res.reproduced);
  EXPECT_EQ(res.minimal_events, 2u);
}

TEST(StormMinimizer, ShrinksDurationsTowardFloor) {
  FaultSchedule storm;
  storm.crash_at(10 * kMillisecond, 0).recover_at(510 * kMillisecond, 0);
  MinimizeOptions opt;
  opt.min_duration = kMillisecond;
  StormMinimizer mini(
      [](const FaultSchedule& s) {
        return has_event(s, FaultEvent::Kind::kCrash, 0, kInvalidNode);
      },
      opt);
  const MinimizeResult res = mini.minimize(storm);
  ASSERT_EQ(res.minimal_events, 2u);
  EXPECT_GT(res.duration_shrinks, 0u);
  const Time gap = res.minimal.events()[1].at - res.minimal.events()[0].at;
  EXPECT_EQ(gap, opt.min_duration);
}

// --- the real-oracle loop: naive applier + auditor --------------------
//
// Node 0 broadcasts sequence-numbered writes to two "appliers" which
// commit in ARRIVAL order — deliberately naive, exactly the mistake an
// ordering protocol exists to prevent. With FIFO delivery both appliers
// commit identical orders; a reorder window on one inbound path flips
// arrival order on that applier alone, and the auditor's prefix check
// catches the fork. This doubles as the gray palette's audit self-test:
// the reorder primitive provably produces histories the audit plane
// rejects.

struct Sender : simnet::Process {
  void on_message(const simnet::Message&) override {}
  void emit(NodeId dst, std::uint64_t seq) {
    send(dst, kv::kRequestWire, std::to_string(seq));
  }
};

struct Applier : simnet::Process {
  HistoryAuditor* auditor = nullptr;
  std::size_t index = 0;
  void on_message(const simnet::Message& m) override {
    const auto* s = m.as<std::string>();
    ASSERT_NE(s, nullptr);
    const std::uint64_t seq = std::stoull(*s);
    kv::Request r;
    r.id = {0, seq};
    r.is_write = true;
    r.key = 1;
    r.value = 1'000 + seq;  // unique per write: full-strength rank checks
    auditor->note_commit(index, {r});
  }
};

constexpr Time kFirstSend = 100 * kMillisecond;
constexpr Time kSendGap = 5 * kMillisecond;
constexpr int kSends = 60;

std::uint64_t probe_violations(const FaultSchedule& storm) {
  simnet::Simulator sim(97);
  simnet::RackConfig rc;
  rc.racks = 1;
  rc.servers_per_rack = 3;
  rc.clients_per_rack = 0;
  const simnet::Cluster cluster = simnet::build_multi_rack(rc);
  simnet::Network net(sim, cluster.topo, simnet::CpuModel{0, 0, 0.0});

  AuditConfig ac;
  ac.ordered = true;
  HistoryAuditor auditor(ac, 2);
  Sender sender;
  Applier a0, a1;
  a0.auditor = a1.auditor = &auditor;
  a0.index = 0;
  a1.index = 1;
  net.attach(cluster.servers[0], sender);
  net.attach(cluster.servers[1], a0);
  net.attach(cluster.servers[2], a1);
  storm.arm(net);

  for (int i = 0; i < kSends; ++i)
    sim.at(kFirstSend + i * kSendGap, [&, i] {
      sender.emit(cluster.servers[1], static_cast<std::uint64_t>(i));
      sender.emit(cluster.servers[2], static_cast<std::uint64_t>(i));
    });
  sim.run();
  auditor.finalize(sim.now(), {true, true});
  return auditor.violation_count();
}

/// The culprit: a reorder window on the path 0 -> applier A, wide enough
/// (20 ms jitter vs 5 ms send gap) that arrival order MUST flip.
FaultSchedule reorder_core(const simnet::Cluster& cluster) {
  FaultSchedule s;
  s.reorder_at(150 * kMillisecond, cluster.servers[0], cluster.servers[1],
               20 * kMillisecond)
      .reorder_stop_at(350 * kMillisecond, cluster.servers[0],
                       cluster.servers[1]);
  return s;
}

simnet::Cluster harness_cluster() {
  simnet::RackConfig rc;
  rc.racks = 1;
  rc.servers_per_rack = 3;
  rc.clients_per_rack = 0;
  return simnet::build_multi_rack(rc);
}

TEST(AuditSelfTest, ReorderInducedOrderFlipIsDetected) {
  // Clean run: identical arrival orders, no violations.
  EXPECT_EQ(probe_violations(FaultSchedule{}), 0u);
  // The reorder window forks one applier's commit order.
  const simnet::Cluster cluster = harness_cluster();
  EXPECT_GT(probe_violations(reorder_core(cluster)), 0u);
}

TEST(StormMinimizer, AuditorOracleShrinksNoisyStormToReorderCore) {
  const simnet::Cluster cluster = harness_cluster();

  // Noise that provably cannot flip the 0->applier paths: pair faults
  // drawn over the two appliers only (no traffic flows between them) and
  // node faults with no observable effect here (cpu with a zero CpuModel,
  // skew with no timers). Crash stays OFF — a dark applier would miss
  // writes and fork by itself.
  simnet::ChaosConfig cc;
  cc.start = 120 * kMillisecond;
  cc.end = 380 * kMillisecond;
  cc.events_per_s = 60.0;
  cc.min_heal = 20 * kMillisecond;
  cc.mean_extra = 30 * kMillisecond;
  cc.crash_weight = 0;
  cc.sever_weight = 1;
  cc.cpu_weight = cc.flap_weight = cc.dup_weight = cc.skew_weight = 1;
  simnet::ChaosScheduleGenerator gen(7);
  std::vector<FaultEvent> evs =
      gen.generate(cc, {cluster.servers[1], cluster.servers[2]}).events();
  ASSERT_GE(evs.size(), 10u) << "noise storm too small to be interesting";
  const FaultSchedule core = reorder_core(cluster);
  for (const FaultEvent& ev : core.events()) evs.push_back(ev);
  std::stable_sort(evs.begin(), evs.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  FaultSchedule storm;
  for (const FaultEvent& ev : evs) storm.add(ev);
  ASSERT_EQ(probe_violations(storm), probe_violations(core))
      << "noise is not inert — it changed the verdict";

  auto reduce = [&] {
    StormMinimizer mini(
        [](const FaultSchedule& s) { return probe_violations(s) > 0; });
    return mini.minimize(storm);
  };
  const MinimizeResult res = reduce();
  EXPECT_TRUE(res.reproduced);
  EXPECT_LE(res.minimal_events, 3u);
  EXPECT_TRUE(has_event(res.minimal, FaultEvent::Kind::kReorderStart,
                        cluster.servers[0], cluster.servers[1]));
  // The minimal storm still trips the auditor, and re-reducing from the
  // same inputs replays bit-identically (probe count included).
  EXPECT_GT(probe_violations(res.minimal), 0u);
  const MinimizeResult again = reduce();
  EXPECT_TRUE(storms_equal(res.minimal, again.minimal));
  EXPECT_EQ(res.probes, again.probes);
}

}  // namespace
}  // namespace canopus::workload
