// OpenLoopClient construction contract.
#include "workload/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace canopus::workload {
namespace {

TEST(OpenLoopClient, RejectsEmptyServerList) {
  // tick() round-robins over cfg.servers; an empty list used to reach a
  // modulo-by-zero at the first generated batch. It must fail loudly at
  // construction instead.
  ClientConfig cfg;
  auto rec = std::make_shared<LatencyRecorder>();
  EXPECT_THROW(OpenLoopClient(cfg, rec, 1), std::invalid_argument);
}

TEST(OpenLoopClient, AcceptsNonEmptyServerList) {
  ClientConfig cfg;
  cfg.servers = {0, 1, 2};
  auto rec = std::make_shared<LatencyRecorder>();
  OpenLoopClient client(cfg, rec, 1);
  EXPECT_EQ(client.sent(), 0u);
}

}  // namespace
}  // namespace canopus::workload
