// OpenLoopClient construction contract + failed-request accounting.
#include "workload/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "simnet/topology.h"

namespace canopus::workload {
namespace {

/// Accepts and ignores everything (stands in for a server).
class SinkProcess final : public simnet::Process {
 public:
  void on_message(const simnet::Message&) override {}
};

TEST(OpenLoopClient, RejectsEmptyServerList) {
  // tick() round-robins over cfg.servers; an empty list used to reach a
  // modulo-by-zero at the first generated batch. It must fail loudly at
  // construction instead.
  ClientConfig cfg;
  auto rec = std::make_shared<LatencyRecorder>();
  EXPECT_THROW(OpenLoopClient(cfg, rec, 1), std::invalid_argument);
}

TEST(OpenLoopClient, AcceptsNonEmptyServerList) {
  ClientConfig cfg;
  cfg.servers = {0, 1, 2};
  auto rec = std::make_shared<LatencyRecorder>();
  OpenLoopClient client(cfg, rec, 1);
  EXPECT_EQ(client.sent(), 0u);
  EXPECT_EQ(client.failed(), 0u);
}

// Regression (chaos-plane accounting): requests whose target server is
// crashed used to be handed to the network and silently black-holed — they
// counted as "sent" and simply never completed, so availability under
// faults could not distinguish a dead server from a slow one. They must be
// counted as failed, both on the client and in the recorder's window.
TEST(OpenLoopClient, CountsRequestsToCrashedServerAsFailed) {
  simnet::Simulator sim(7);
  simnet::RackConfig rc;
  rc.racks = 1;
  rc.servers_per_rack = 2;
  rc.clients_per_rack = 1;
  simnet::Cluster cluster = simnet::build_multi_rack(rc);
  simnet::Network net(sim, cluster.topo, {});

  ClientConfig cfg;
  cfg.servers = cluster.servers;
  cfg.rate_per_s = 50'000;
  cfg.stop_at = 100 * kMillisecond;
  auto rec = std::make_shared<LatencyRecorder>();
  rec->set_window(0, 100 * kMillisecond);
  OpenLoopClient client(cfg, rec, 11);
  net.attach(cluster.clients[0], client);
  SinkProcess s0, s1;
  net.attach(cluster.servers[0], s0);
  net.attach(cluster.servers[1], s1);

  net.crash(cluster.servers[0]);  // one of the two targets is dead
  const std::uint64_t dropped_before = net.stats().dropped;
  sim.run_until(100 * kMillisecond);

  // Roughly half the generated requests round-robin onto the crashed
  // server: all of those must be accounted as failed, none black-holed.
  EXPECT_GT(client.failed(), 0u);
  EXPECT_GT(client.sent(), 0u);
  EXPECT_EQ(client.generated(), client.sent() + client.failed());
  EXPECT_GT(client.failed(), client.generated() / 3);
  EXPECT_LT(client.failed(), 2 * client.generated() / 3);
  // The recorder saw every failure (same arrival-window accounting as
  // completions), so per-phase fault benches report them honestly.
  EXPECT_EQ(rec->failed(), client.failed());
  // And the client did NOT hand the doomed batches to the network: no new
  // drops were recorded for them.
  EXPECT_EQ(net.stats().dropped, dropped_before);
}

// With every server up, nothing is counted failed (the accounting is
// inert outside fault scenarios, so steady-state benches are unchanged).
TEST(OpenLoopClient, NoFailuresWhenAllServersUp) {
  simnet::Simulator sim(7);
  simnet::RackConfig rc;
  rc.racks = 1;
  rc.servers_per_rack = 2;
  rc.clients_per_rack = 1;
  simnet::Cluster cluster = simnet::build_multi_rack(rc);
  simnet::Network net(sim, cluster.topo, {});

  ClientConfig cfg;
  cfg.servers = cluster.servers;
  cfg.rate_per_s = 50'000;
  cfg.stop_at = 50 * kMillisecond;
  auto rec = std::make_shared<LatencyRecorder>();
  rec->set_window(0, 50 * kMillisecond);
  OpenLoopClient client(cfg, rec, 11);
  net.attach(cluster.clients[0], client);
  sim.run_until(50 * kMillisecond);

  EXPECT_GT(client.sent(), 0u);
  EXPECT_EQ(client.failed(), 0u);
  EXPECT_EQ(rec->failed(), 0u);
}

}  // namespace
}  // namespace canopus::workload
