// Fault scenarios end to end: every system runs the standard suite through
// ConsensusService under open-loop load; live nodes must agree in every
// scenario, and Canopus must stall-not-corrupt on super-leaf majority loss.
#include "workload/fault_scenario.h"

#include <gtest/gtest.h>

namespace canopus::workload {
namespace {

FaultTiming short_timing() {
  FaultTiming ft;
  ft.warmup = 200 * kMillisecond;
  ft.fault_at = 600 * kMillisecond;
  ft.heal_at = 1'300 * kMillisecond;
  ft.end_at = 2'000 * kMillisecond;
  ft.drain = 500 * kMillisecond;
  return ft;
}

TrialConfig small_config(System sys) {
  TrialConfig tc;
  tc.system = sys;
  tc.groups = 2;
  tc.per_group = 3;
  tc.client_machines = 1;
  tc.warmup = short_timing().warmup;
  return fault_tuned(tc);
}

TEST(StandardScenarios, SuiteShape) {
  const FaultTiming ft = short_timing();
  const auto suite = standard_scenarios(3, 3, ft);
  ASSERT_EQ(suite.size(), 5u);
  int majority_loss = 0;
  for (const FaultScenario& sc : suite) {
    EXPECT_FALSE(sc.name.empty());
    EXPECT_FALSE(sc.steps.empty());
    for (const auto& st : sc.steps) {
      EXPECT_GE(st.at, ft.fault_at);
      EXPECT_LE(st.at, ft.heal_at);
      EXPECT_GE(st.a, 0);
      EXPECT_LT(st.a, 9);
    }
    if (sc.majority_loss) ++majority_loss;
  }
  EXPECT_EQ(majority_loss, 1);
  // The one-way partition severs every group-0 -> other-group pair.
  const auto& part = suite[3];
  EXPECT_EQ(part.name, "partition_asym");
  EXPECT_EQ(part.steps.size(), 2u * 3u * 6u);
}

TEST(PhasedRecorder, RoutesByArrivalPhase) {
  const FaultTiming ft = short_timing();
  PhasedRecorder rec(ft);
  rec.complete(ft.fault_at, ft.warmup + 1);          // before-phase arrival
  rec.complete(ft.heal_at, ft.fault_at + 1);         // during
  rec.complete(ft.end_at, ft.heal_at + 1);           // after
  rec.complete(ft.end_at, ft.warmup - 1);            // pre-warmup: nowhere
  EXPECT_EQ(rec.before().completed(), 1u);
  EXPECT_EQ(rec.during().completed(), 1u);
  EXPECT_EQ(rec.after().completed(), 1u);
}

class ScenarioSuiteTest : public ::testing::TestWithParam<System> {};

TEST_P(ScenarioSuiteTest, AllScenariosSafeAndAvailableBeforeFault) {
  const FaultTiming ft = short_timing();
  const TrialConfig tc = small_config(GetParam());
  const auto suite = standard_scenarios(tc.groups, tc.per_group, ft);
  for (const FaultScenario& sc : suite) {
    const ScenarioResult r = run_fault_scenario(tc, sc, ft, 5'000);
    EXPECT_TRUE(r.safe()) << r.system << " diverged in " << sc.name;
    EXPECT_GT(r.before.throughput, 0.5 * 5'000)
        << r.system << " unhealthy before faults in " << sc.name;
    EXPECT_GT(r.comparable_nodes, 0u);
    EXPECT_GT(r.committed_writes, 0u) << sc.name;
  }
}

TEST_P(ScenarioSuiteTest, MajorityLossStallsOnlyCanopus) {
  const FaultTiming ft = short_timing();
  const TrialConfig tc = small_config(GetParam());
  const auto suite = standard_scenarios(tc.groups, tc.per_group, ft);
  const FaultScenario& loss = suite[2];
  ASSERT_TRUE(loss.majority_loss);
  const ScenarioResult r = run_fault_scenario(tc, loss, ft, 5'000);
  EXPECT_TRUE(r.safe());
  if (GetParam() == System::kCanopus) {
    // The documented §6 trade: no progress while a super-leaf lacks a
    // majority — and no divergence.
    EXPECT_TRUE(r.stalled_during());
    // Majority loss jams the rejoin path too: the exclusion of the crashed
    // pnodes can never commit without a group majority, so no live sibling
    // ever sponsors them back — the super-leaf stays dark.
    EXPECT_FALSE(r.progressed_after());
  } else {
    // Quorum systems lose at most the crashed minority's capacity.
    EXPECT_TRUE(r.progressed_after());
  }
}

TEST_P(ScenarioSuiteTest, RecoverableSystemsRegainAvailabilityAfterCrash) {
  const FaultTiming ft = short_timing();
  const TrialConfig tc = small_config(GetParam());
  const auto suite = standard_scenarios(tc.groups, tc.per_group, ft);
  const ScenarioResult r = run_fault_scenario(tc, suite[0], ft, 5'000);
  ASSERT_EQ(r.scenario, "single_node_crash");
  EXPECT_TRUE(r.safe());
  EXPECT_TRUE(r.progressed_after());
  EXPECT_GT(r.after.throughput, 0.5 * 5'000) << r.system;
  EXPECT_TRUE(r.retention_ok) << r.system << " retained " << r.max_log_retained
                              << " > bound " << retained_log_bound(tc);
}

// The regression the snapshot layer exists for: one node misses more
// commits than any retained history covers, then must come back by state
// transfer — never by a silent, endless history fetch.
TEST_P(ScenarioSuiteTest, LongDowntimeRejoinsViaSnapshot) {
  const FaultTiming ft = long_downtime_timing();
  TrialConfig tc = small_config(GetParam());
  const FaultScenario sc = long_downtime_scenario(tc.per_group, ft);
  const ScenarioResult r = run_fault_scenario(tc, sc, ft, 5'000);
  EXPECT_TRUE(r.safe()) << r.system;
  EXPECT_TRUE(r.progressed_after()) << r.system;
  EXPECT_GT(r.snapshots_installed, 0u)
      << r.system << " rejoined without a state transfer";
  EXPECT_TRUE(r.retention_ok) << r.system << " retained " << r.max_log_retained
                              << " > bound " << retained_log_bound(tc);
}

TEST_P(ScenarioSuiteTest, DeterministicAcrossRuns) {
  const FaultTiming ft = short_timing();
  const TrialConfig tc = small_config(GetParam());
  const auto suite = standard_scenarios(tc.groups, tc.per_group, ft);
  const ScenarioResult a = run_fault_scenario(tc, suite[1], ft, 5'000);
  const ScenarioResult b = run_fault_scenario(tc, suite[1], ft, 5'000);
  EXPECT_EQ(a.before.completed, b.before.completed);
  EXPECT_EQ(a.during.completed, b.during.completed);
  EXPECT_EQ(a.after.completed, b.after.completed);
  EXPECT_EQ(a.during.median, b.during.median);
  EXPECT_EQ(a.committed_writes, b.committed_writes);
  EXPECT_EQ(a.progress_at_end, b.progress_at_end);
}

// --- RecoverArming: arming recovers against a system without a rejoin
// path must fail fast (strict, the default) or be an explicit opt-in.
// All four real systems now have a repair path (snapshot transfer /
// sponsored rejoin), so the no-recover case is exercised through a stub.

class StubNoRecoverService final : public ConsensusService {
 public:
  StubNoRecoverService(runtime::Host& host, std::vector<NodeId> servers)
      : ConsensusService(host, std::move(servers)) {}
  const char* name() const override { return "StubNoRecover"; }
  bool supports_recover() const override { return false; }
  void submit(std::size_t, kv::Request) override {}
  std::uint64_t committed_writes(std::size_t) const override { return 0; }
  std::uint64_t commit_fingerprint(std::size_t) const override { return 0; }
  std::uint64_t served_reads(std::size_t) const override { return 0; }
  std::uint64_t progress(std::size_t) const override { return 0; }
  const kv::Store& store(std::size_t) const override { return store_; }

 private:
  void node_crash(std::size_t) override {}
  kv::Store store_;
};

TEST(RecoverArmingTest, StrictThrowsForDoomedRecoverEvents) {
  const TrialConfig tc = small_config(System::kCanopus);
  simnet::Simulator sim(1);
  simnet::Cluster cluster = build_cluster(tc);
  simnet::Network net(sim, cluster.topo, tc.cpu);
  StubNoRecoverService svc(net, cluster.servers);
  ASSERT_FALSE(svc.supports_recover());
  simnet::FaultSchedule sched;
  sched.crash_at(10, cluster.servers[1]).recover_at(20, cluster.servers[1]);
  try {
    arm_via_service(sched, net, svc);  // strict by default
    FAIL() << "arming doomed recovers must throw";
  } catch (const std::invalid_argument& e) {
    // The diagnostic must name the system and the doomed events.
    EXPECT_NE(std::string(e.what()).find("StubNoRecover"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 recover event"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kTolerateUnsupported"),
              std::string::npos);
  }
}

TEST(RecoverArmingTest, StrictAcceptsCrashOnlyAndRecoverableSystems) {
  {
    const TrialConfig tc = small_config(System::kCanopus);
    simnet::Simulator sim(1);
    simnet::Cluster cluster = build_cluster(tc);
    simnet::Network net(sim, cluster.topo, tc.cpu);
    StubNoRecoverService svc(net, cluster.servers);
    simnet::FaultSchedule crash_only;
    crash_only.crash_at(10, cluster.servers[1]);
    EXPECT_NO_THROW(arm_via_service(crash_only, net, svc));
  }
  // Every real system supports recover now — Canopus included.
  for (System sys : {System::kCanopus, System::kRaft}) {
    const TrialConfig tc = small_config(sys);
    simnet::Simulator sim(1);
    simnet::Cluster cluster = build_cluster(tc);
    simnet::Network net(sim, cluster.topo, tc.cpu);
    auto svc = make_service(tc, cluster, net);
    ASSERT_TRUE(svc->supports_recover());
    simnet::FaultSchedule sched;
    sched.crash_at(10, cluster.servers[1]).recover_at(20, cluster.servers[1]);
    EXPECT_NO_THROW(arm_via_service(sched, net, *svc));
  }
}

TEST(RecoverArmingTest, TolerateModeLeavesTheNodeDark) {
  const TrialConfig tc = small_config(System::kCanopus);
  simnet::Simulator sim(1);
  simnet::Cluster cluster = build_cluster(tc);
  simnet::Network net(sim, cluster.topo, tc.cpu);
  StubNoRecoverService svc(net, cluster.servers);
  simnet::FaultSchedule sched;
  sched.crash_at(10, cluster.servers[1]).recover_at(20, cluster.servers[1]);
  arm_via_service(sched, net, svc, RecoverArming::kTolerateUnsupported);
  sim.run_until(30);
  EXPECT_FALSE(svc.up(1));  // the recover no-opped, as opted into
  EXPECT_TRUE(svc.ever_crashed(1));
  EXPECT_FALSE(svc.comparable(1));
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ScenarioSuiteTest,
                         ::testing::Values(System::kCanopus, System::kRaft,
                                           System::kZab, System::kEPaxos),
                         [](const auto& info) {
                           return std::string(system_name(info.param));
                         });

}  // namespace
}  // namespace canopus::workload
