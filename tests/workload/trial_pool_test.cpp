// TrialPool mechanics and the harness determinism guarantee: an N-thread
// sweep over real simulations is bit-for-bit equal to the 1-thread sweep.
#include "workload/trial_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "workload/deployments.h"

namespace canopus::workload {
namespace {

TEST(TrialPool, RunsEveryIndexExactlyOnce) {
  TrialPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.run_indexed(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TrialPool, ReusableAcrossBatches) {
  TrialPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run_indexed(round + 1, [&](std::size_t i) { sum += i + 1; });
    const std::size_t n = static_cast<std::size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(TrialPool, ZeroTasksIsANoop) {
  TrialPool pool(2);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(TrialPool, SingleThreadRunsInline) {
  TrialPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  pool.run_indexed(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // unsynchronized: must be inline
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TrialPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(TrialPool::default_threads(), 1u);
  TrialPool pool;  // must construct and destruct cleanly
  EXPECT_GE(pool.threads(), 1u);
}

TEST(TrialPool, PropagatesFirstException) {
  TrialPool pool(4);
  EXPECT_THROW(pool.run_indexed(16,
                                [](std::size_t i) {
                                  if (i == 7)
                                    throw std::runtime_error("trial failed");
                                }),
               std::runtime_error);
  // The pool must still be usable after a failed batch.
  std::atomic<int> ran{0};
  pool.run_indexed(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

// The determinism guarantee the whole bench harness rests on: a real
// multi-system sweep run on N worker threads equals the serial sweep
// bit for bit under the same seed.
TEST(TrialPool, RealSweepIsBitIdenticalAcrossThreadCounts) {
  TrialConfig tc;
  tc.system = System::kCanopus;
  tc.groups = 3;
  tc.per_group = 1;
  tc.client_machines = 1;
  tc.warmup = 50 * kMillisecond;
  tc.measure = 150 * kMillisecond;
  tc.drain = 50 * kMillisecond;
  tc.seed = 99;
  const TrialFn trial = make_trial(tc);
  const std::vector<double> rates{2'000, 5'000, 9'000, 14'000};

  const std::vector<Measurement> serial = sweep_rates(trial, rates);
  ASSERT_EQ(serial.size(), rates.size());
  EXPECT_GT(serial[0].completed, 0u);

  for (unsigned threads : {1u, 2u, 4u}) {
    TrialPool pool(threads);
    const std::vector<Measurement> par = sweep_rates(pool, trial, rates);
    ASSERT_EQ(par.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].offered, serial[i].offered) << threads << "t #" << i;
      EXPECT_EQ(par[i].throughput, serial[i].throughput)
          << threads << "t #" << i;
      EXPECT_EQ(par[i].median, serial[i].median) << threads << "t #" << i;
      EXPECT_EQ(par[i].p99, serial[i].p99) << threads << "t #" << i;
      EXPECT_EQ(par[i].mean, serial[i].mean) << threads << "t #" << i;
      EXPECT_EQ(par[i].completed, serial[i].completed)
          << threads << "t #" << i;
    }
  }
}

}  // namespace
}  // namespace canopus::workload
