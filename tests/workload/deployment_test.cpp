// Whole-stack smoke tests: every system runs under open-loop Poisson load
// on both topologies and completes requests with sane latencies.
#include "workload/deployments.h"

#include <gtest/gtest.h>

namespace canopus::workload {
namespace {

TrialConfig base_single_dc(System s) {
  TrialConfig tc;
  tc.system = s;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.warmup = 300 * kMillisecond;
  tc.measure = 700 * kMillisecond;
  tc.drain = 500 * kMillisecond;
  return tc;
}

TEST(Deployment, CanopusSingleDcCompletesLoad) {
  Measurement m = run_trial(base_single_dc(System::kCanopus), 30'000);
  EXPECT_GT(m.completed, 10'000u);
  EXPECT_GT(m.throughput, 0.8 * m.offered);
  EXPECT_LT(m.median, 10 * kMillisecond);
}

TEST(Deployment, EPaxosSingleDcCompletesLoad) {
  Measurement m = run_trial(base_single_dc(System::kEPaxos), 30'000);
  EXPECT_GT(m.throughput, 0.8 * m.offered);
  EXPECT_LT(m.median, 20 * kMillisecond);
}

TEST(Deployment, ZabSingleDcCompletesLoad) {
  Measurement m = run_trial(base_single_dc(System::kZab), 30'000);
  EXPECT_GT(m.throughput, 0.8 * m.offered);
  EXPECT_LT(m.median, 10 * kMillisecond);
}

TEST(Deployment, CanopusReadLatencyBelowWriteHeavy) {
  // More reads -> higher Canopus throughput at the same offered load
  // headroom (reads are local). Sanity-check the mechanism: at the same
  // rate, a 100%-write workload generates more network bytes than 20%.
  TrialConfig tc = base_single_dc(System::kCanopus);
  tc.write_ratio = 0.2;
  Measurement light = run_trial(tc, 20'000);
  tc.write_ratio = 1.0;
  Measurement heavy = run_trial(tc, 20'000);
  EXPECT_GT(light.completed, 0u);
  EXPECT_GT(heavy.completed, 0u);
  // Both complete, but the write-heavy run can only be slower or equal.
  EXPECT_LE(light.median, heavy.median + kMillisecond);
}

TEST(Deployment, CanopusWanPipelinedCompletesLoad) {
  TrialConfig tc;
  tc.system = System::kCanopus;
  tc.wan = true;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.canopus.pipelining = true;
  tc.warmup = kSecond;  // several WAN RTTs
  tc.measure = kSecond;
  tc.drain = 1'500 * kMillisecond;
  Measurement m = run_trial(tc, 20'000);
  EXPECT_GT(m.throughput, 0.6 * m.offered);
  // Median ~ one wide-area consensus cycle: between 60 ms (one-way VA) and
  // a few hundred ms.
  EXPECT_GT(m.median, 30 * kMillisecond);
  EXPECT_LT(m.median, 600 * kMillisecond);
}

TEST(Deployment, EPaxosWanCompletesLoad) {
  TrialConfig tc;
  tc.system = System::kEPaxos;
  tc.wan = true;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.warmup = kSecond;
  tc.measure = kSecond;
  tc.drain = 1'500 * kMillisecond;
  Measurement m = run_trial(tc, 20'000);
  EXPECT_GT(m.throughput, 0.6 * m.offered);
  // EPaxos fast path: one WAN round trip to a fast quorum.
  EXPECT_GT(m.median, 30 * kMillisecond);
  EXPECT_LT(m.median, 600 * kMillisecond);
}

TEST(Deployment, FindMaxThroughputTerminates) {
  TrialConfig tc = base_single_dc(System::kCanopus);
  tc.measure = 500 * kMillisecond;
  auto res = find_max_throughput(make_trial(tc), 20'000, 2.0,
                                 10 * kMillisecond, 6);
  EXPECT_GT(res.max.throughput, 0.0);
  EXPECT_FALSE(res.sweep.empty());
  EXPECT_LE(res.sweep.size(), 6u);
}

TEST(Deployment, DeterministicAcrossRuns) {
  TrialConfig tc = base_single_dc(System::kCanopus);
  tc.measure = 400 * kMillisecond;
  Measurement a = run_trial(tc, 10'000);
  Measurement b = run_trial(tc, 10'000);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.median, b.median);
}

}  // namespace
}  // namespace canopus::workload
