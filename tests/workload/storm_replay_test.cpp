// Scripted-storm regression: a minimized canopus-storm-v1 artifact checked
// into tests/data is parsed and replayed against the exact deployment it
// was captured on, and must reproduce the behaviour it pins — the Canopus
// sponsored-rejoin state transfer (ISSUE 10) with a clean audit.
//
// The artifact was produced by the DISABLED_RegenerateArtifact test below:
// a long-downtime crash/recover pair buried in gray noise, ddmin-reduced by
// StormMinimizer under the oracle "the rejoin still installs a snapshot and
// the audit stays clean". Re-run that test (with
// --gtest_also_run_disabled_tests) to regenerate after a deliberate
// behaviour change, and say so in the commit.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "workload/chaos.h"
#include "workload/fault_scenario.h"
#include "workload/storm_minimizer.h"

#ifndef CANOPUS_TEST_DATA_DIR
#define CANOPUS_TEST_DATA_DIR "tests/data"
#endif

namespace canopus::workload {
namespace {

const char* const kArtifact =
    CANOPUS_TEST_DATA_DIR "/canopus_rejoin_storm.json";

// The deployment the artifact's node ids refer to. Any change here
// invalidates the artifact — regenerate it.
TrialConfig replay_config() {
  TrialConfig tc;
  tc.system = System::kCanopus;
  tc.groups = 2;
  tc.per_group = 3;
  tc.client_machines = 1;
  tc.seed = 42;
  tc = fault_tuned(tc);
  tc.warmup = long_downtime_timing().warmup;
  return tc;
}

ChaosResult replay(const simnet::FaultSchedule& storm, double rate,
                   int sim_threads = 1) {
  TrialConfig tc = replay_config();
  tc.sim_threads = sim_threads;
  const ChaosIntensity unused{"replay", 0, 0, 0, 0, 0};
  return run_chaos_trial(tc, unused, long_downtime_timing(), rate, &storm);
}

TEST(StormReplay, MinimizedRejoinArtifactReproduces) {
  std::ifstream in(kArtifact);
  ASSERT_TRUE(in.good()) << "missing artifact " << kArtifact;
  std::stringstream buf;
  buf << in.rdbuf();

  LoadedStorm loaded;
  ASSERT_TRUE(storm_from_json(buf.str(), &loaded))
      << "artifact failed to parse: " << kArtifact;
  EXPECT_EQ(loaded.system, "Canopus");
  ASSERT_FALSE(loaded.storm.events().empty());

  const ChaosResult r = replay(loaded.storm, loaded.offered_rate);
  EXPECT_EQ(r.violations, 0u);
  for (const AuditViolation& v : r.violation_details)
    ADD_FAILURE() << audit_violation_name(v.kind) << ": " << v.detail;
  EXPECT_GE(r.snapshots_installed, 1u)
      << "the minimized storm no longer exercises the rejoin transfer";
  EXPECT_TRUE(r.retention_ok);

  // The artifact replays identically under the parallel event kernel.
  const ChaosResult p = replay(loaded.storm, loaded.offered_rate, 2);
  EXPECT_EQ(p.violations, 0u);
  EXPECT_EQ(p.fingerprint, r.fingerprint);
  EXPECT_EQ(p.committed_writes, r.committed_writes);
  EXPECT_EQ(p.snapshots_installed, r.snapshots_installed);
}

// Round-trip sanity on the parser itself, independent of the artifact.
TEST(StormReplay, JsonRoundTripIsLossless) {
  simnet::FaultSchedule storm;
  storm.crash_at(500 * kMillisecond, 7)
      .recover_at(2'500 * kMillisecond, 7)
      .cpu_slow_at(600 * kMillisecond, 3, 4.5)
      .flap_at(700 * kMillisecond, 2, 5, 80 * kMillisecond);

  StormJsonMeta meta;
  meta.system = "Canopus";
  meta.intensity = "gray-mix";
  meta.seed = 42;
  meta.offered_rate = 5000.0;

  std::string path = ::testing::TempDir() + "storm_roundtrip.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  storm_to_json(f, storm, meta);
  std::fclose(f);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  LoadedStorm loaded;
  ASSERT_TRUE(storm_from_json(buf.str(), &loaded));
  EXPECT_EQ(loaded.system, "Canopus");
  EXPECT_EQ(loaded.seed, 42u);
  EXPECT_EQ(loaded.offered_rate, 5000.0);
  ASSERT_EQ(loaded.storm.events().size(), storm.events().size());
  for (std::size_t i = 0; i < storm.events().size(); ++i) {
    const simnet::FaultEvent& a = storm.events()[i];
    const simnet::FaultEvent& b = loaded.storm.events()[i];
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.d, b.d);
  }
}

TEST(StormReplay, ParserRejectsForeignAndTruncatedDocuments) {
  LoadedStorm out;
  EXPECT_FALSE(storm_from_json("{\"schema\":\"other-v2\"}", &out));
  EXPECT_FALSE(storm_from_json("", &out));
  EXPECT_FALSE(storm_from_json(
      "{\"schema\":\"canopus-storm-v1\",\"system\":\"Canopus\","
      "\"intensity\":\"x\",\"seed\":1,\"offered_rate\":1,"
      "\"events\":[{\"at_ns\":5,\"kind\":\"crash\"",  // truncated event
      &out));
}

// Regenerates tests/data/canopus_rejoin_storm.json: buries the
// long-downtime crash/recover pair in gray noise and lets StormMinimizer
// ddmin it back out under the rejoin oracle. Disabled — run on demand:
//   workload_storm_replay_test \
//     --gtest_also_run_disabled_tests --gtest_filter='*Regenerate*'
TEST(StormReplay, DISABLED_RegenerateArtifact) {
  const TrialConfig tc = replay_config();
  const double rate = 5'000.0;
  simnet::Cluster cluster = build_cluster(tc);
  const NodeId victim = cluster.servers[tc.per_group];  // group 1, server 0

  simnet::FaultSchedule storm;
  storm.crash_at(500 * kMillisecond, victim)
      .recover_at(2'500 * kMillisecond, victim);
  // Gray noise the minimizer must strip: none of it is needed for the
  // rejoin transfer to happen.
  storm.cpu_slow_at(600 * kMillisecond, cluster.servers[0], 3.0)
      .cpu_normal_at(1'200 * kMillisecond, cluster.servers[0]);
  storm.dup_at(700 * kMillisecond, cluster.servers[1], cluster.servers[2],
               2 * kMillisecond)
      .dup_stop_at(1'500 * kMillisecond, cluster.servers[1],
                   cluster.servers[2]);
  storm.reorder_at(800 * kMillisecond, cluster.servers[4],
                   cluster.servers[5], kMillisecond)
      .reorder_stop_at(1'600 * kMillisecond, cluster.servers[4],
                       cluster.servers[5]);
  storm.skew_at(900 * kMillisecond, cluster.servers[2], 1.05,
                50 * kMillisecond)
      .skew_clear_at(1'700 * kMillisecond, cluster.servers[2]);

  StormMinimizer::Oracle oracle = [&](const simnet::FaultSchedule& s) {
    const ChaosResult r = replay(s, rate);
    return r.violations == 0 && r.snapshots_installed >= 1;
  };
  MinimizeOptions opt;
  opt.shrink_durations = false;  // keep the artifact's downtime realistic
  StormMinimizer minimizer(oracle, opt);
  const MinimizeResult res = minimizer.minimize(storm);
  ASSERT_TRUE(res.reproduced);

  StormJsonMeta meta;
  meta.system = "Canopus";
  meta.intensity = "long-downtime";
  meta.seed = tc.seed;
  meta.offered_rate = rate;
  meta.reproduced = true;
  meta.original_events = res.original_events;
  meta.probes = res.probes;
  meta.duration_shrinks = res.duration_shrinks;

  std::FILE* f = std::fopen(kArtifact, "w");
  ASSERT_NE(f, nullptr) << "cannot write " << kArtifact;
  storm_to_json(f, res.minimal, meta);
  std::fclose(f);
  std::printf("regenerated %s: %zu -> %zu events, %zu probes\n", kArtifact,
              res.original_events, res.minimal_events, res.probes);
}

}  // namespace
}  // namespace canopus::workload
