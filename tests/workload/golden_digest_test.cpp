// Golden-digest determinism regression: for a fixed seed and workload, every
// system's commit digest, read count, network statistics, and event count
// are pinned to the exact values produced before the typed-event-plane
// rewrite (ISSUE 4). Any change to these constants means the simulation's
// observable behaviour changed — which a pure performance refactor of the
// substrate must never do. If a FUTURE protocol/workload change legitimately
// alters behaviour, regenerate the constants and say so in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "workload/chaos.h"
#include "workload/deployments.h"
#include "workload/fault_scenario.h"

namespace canopus::workload {
namespace {

struct Golden {
  System system;
  std::uint64_t fingerprint;
  std::uint64_t writes;
  std::uint64_t reads;
  std::uint64_t messages;
  std::uint64_t bytes;
  std::uint64_t events;
};

// Captured with the exact setup below. Re-pinned for the sharded-kernel
// lane-sequence discipline (ISSUE 6): per-lane tie-break order and per-node
// protocol RNG streams legitimately change the commit interleaving — note
// that write/read/message/byte/event COUNTS are identical to the previous
// pins; only the fingerprints (commit order) moved.
constexpr Golden kGolden[] = {
    {System::kCanopus, 0xde8dddc1563f3495ULL, 3449, 379, 283070, 23604000,
     1191785},
    {System::kRaft, 0x724ce4fdb652aa85ULL, 3449, 379, 24525, 2769768, 127983},
    {System::kZab, 0x888cd687c8edd219ULL, 3449, 379, 21091, 2193240, 106467},
    {System::kEPaxos, 0xa229fc217f2eb3a2ULL, 3449, 379, 22406, 3751440,
     122348},
};

class GoldenDigest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenDigest, RunMatchesRecordedTrace) {
  const Golden& g = GetParam();
  TrialConfig tc;
  tc.system = g.system;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.write_ratio = 0.5;
  tc.warmup = 50 * kMillisecond;
  tc.measure = 300 * kMillisecond;
  tc.drain = 100 * kMillisecond;
  tc.seed = 42;

  const std::uint64_t trial_seed = derive_seed(tc.seed, 0xf19aULL);
  simnet::Simulator sim(trial_seed);
  simnet::Cluster cluster = build_cluster(tc);
  simnet::Network net(sim, cluster.topo, tc.cpu);
  auto service = make_service(tc, cluster, net);
  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, net, recorder, 20'000.0,
                                trial_seed, tc.warmup + tc.measure);
  sim.run_until(tc.warmup + tc.measure + tc.drain);

  EXPECT_EQ(service->commit_fingerprint(0), g.fingerprint) << service->name();
  EXPECT_EQ(service->committed_writes(0), g.writes);
  EXPECT_EQ(service->served_reads(0), g.reads);
  EXPECT_EQ(net.stats().messages, g.messages);
  EXPECT_EQ(net.stats().bytes, g.bytes);
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_EQ(sim.events_processed(), g.events);

  // Agreement: every server holds the same committed history.
  for (std::size_t i = 1; i < service->num_servers(); ++i) {
    EXPECT_EQ(service->commit_fingerprint(i), g.fingerprint)
        << service->name() << " node " << i;
    EXPECT_EQ(service->committed_writes(i), g.writes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, GoldenDigest,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(system_name(info.param.system));
                         });

// --------------------------------------------------------------------------
// Chaos-storm goldens: one fixed-seed storm per system, pinning the storm
// shape, the surviving commit history, and — above all — that the
// continuously-running invariant auditor reports ZERO violations. Any
// change to these constants means protocol behaviour under faults changed;
// regenerate them deliberately (the failure output prints the actual
// values) and say so in the commit.
// --------------------------------------------------------------------------

struct ChaosGolden {
  System system;
  std::uint64_t fault_events;
  std::uint64_t fingerprint;
  std::uint64_t committed;
  std::uint64_t acked;
  std::uint64_t comparable;
};

// Captured with the exact setup below. Canopus: 3 of its 9 pnodes crash
// during the storm and their sponsored rejoins don't complete before the
// run ends (the re-admission grace outlasts the window), so 6 nodes remain
// comparable and some tail acks are never delivered; the quorum systems
// recover everyone.
constexpr ChaosGolden kChaosGolden[] = {
    {System::kCanopus, 8, 0x87de66df97114f0cULL, 4625, 4472, 6},
    {System::kRaft, 8, 0xdcb573c33108525eULL, 7000, 7000, 9},
    {System::kZab, 8, 0xe5f8bb1970db615fULL, 7003, 7003, 9},
    {System::kEPaxos, 8, 0x7354716838e20d9fULL, 7452, 7452, 9},
};

class ChaosGoldenDigest : public ::testing::TestWithParam<ChaosGolden> {};

TEST_P(ChaosGoldenDigest, StormMatchesRecordedTraceAndStaysClean) {
  const ChaosGolden& g = GetParam();
  TrialConfig tc;
  tc.system = g.system;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.write_ratio = 0.5;
  tc.seed = 42;
  tc = chaos_tuned(tc);

  FaultTiming ft;
  ft.warmup = 100 * kMillisecond;
  ft.fault_at = 250 * kMillisecond;
  ft.heal_at = 850 * kMillisecond;
  ft.end_at = 1'100 * kMillisecond;
  ft.drain = 400 * kMillisecond;
  tc.warmup = ft.warmup;

  const ChaosIntensity ci{"golden", 12.0, 2, 2, 80 * kMillisecond,
                          100 * kMillisecond};
  const ChaosResult r = run_chaos_trial(tc, ci, ft, 15'000.0);

  // The invariant audit is the point: a storm must never violate safety.
  EXPECT_EQ(r.violations, 0u) << r.system;
  for (const AuditViolation& v : r.violation_details)
    ADD_FAILURE() << r.system << ": " << audit_violation_name(v.kind) << ": "
                  << v.detail;

  // Determinism pins: the storm and its surviving history replay exactly.
  EXPECT_EQ(r.fault_events, g.fault_events) << r.system;
  EXPECT_EQ(r.fingerprint, g.fingerprint) << r.system;
  EXPECT_EQ(r.committed_writes, g.committed) << r.system;
  EXPECT_EQ(r.acked_writes, g.acked) << r.system;
  EXPECT_EQ(r.comparable_nodes, g.comparable) << r.system;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ChaosGoldenDigest,
                         ::testing::ValuesIn(kChaosGolden),
                         [](const auto& info) {
                           return std::string(system_name(info.param.system));
                         });

// --------------------------------------------------------------------------
// Gray-storm goldens (ISSUE 9): the gray-mix intensity draws all five gray
// fault kinds (cpu-slow, flapping, duplication, reordering, clock skew) in
// one storm. Pins the storm shape and surviving history at seed 42, requires
// a clean audit, and replays the SAME trial under the parallel event kernel
// (sim_threads = 2) demanding bit-identical results — gray fault state must
// stay deterministic under sharded execution.
// --------------------------------------------------------------------------

struct GrayGolden {
  System system;
  std::uint64_t fault_events;
  std::uint64_t fingerprint;
  std::uint64_t committed;
  std::uint64_t acked;
  std::uint64_t comparable;
};

// Captured with the exact setup below. The seed-42 storm draws all seven
// kinds (crash, sever, cpu-slow, flap, dup, reorder, skew); the one crashed
// Canopus pnode's sponsored rejoin does not finish inside this short storm
// window (the re-admission grace outlasts it), so 8 nodes stay comparable
// and two tail acks are lost. Canopus fingerprint re-pinned for the rejoin
// path (ISSUE 10): membership bookkeeping in the cycle starter legitimately
// shifts the commit interleaving; all counts are unchanged.
constexpr GrayGolden kGrayGolden[] = {
    {System::kCanopus, 12, 0xdffdd8ca074726daULL, 7656, 7654, 8},
    {System::kRaft, 12, 0x953287f0c5147056ULL, 7080, 7080, 9},
    {System::kZab, 12, 0x2aa353e92ab93e6eULL, 7079, 7079, 9},
    {System::kEPaxos, 12, 0xd0dcbda5b3f395a3ULL, 8068, 8068, 9},
};

class GrayChaosGoldenDigest : public ::testing::TestWithParam<GrayGolden> {};

TEST_P(GrayChaosGoldenDigest, GrayMixStormPinsAndReplaysAcrossSimThreads) {
  const GrayGolden& g = GetParam();
  TrialConfig tc;
  tc.system = g.system;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.write_ratio = 0.5;
  tc.seed = 42;
  tc = chaos_tuned(tc);

  FaultTiming ft;
  ft.warmup = 100 * kMillisecond;
  ft.fault_at = 250 * kMillisecond;
  ft.heal_at = 850 * kMillisecond;
  ft.end_at = 1'100 * kMillisecond;
  ft.drain = 400 * kMillisecond;
  tc.warmup = ft.warmup;

  // gray-mix densified so the seed-42 storm draws every kind in the
  // palette (at the bench rate of 12/s this seed happens to draw only
  // reorder and dup — too thin for a full-palette pin).
  ChaosIntensity mix = gray_intensities().back();
  ASSERT_EQ(mix.name, "gray-mix");
  mix.events_per_s = 40.0;

  const ChaosResult r = run_chaos_trial(tc, mix, ft, 15'000.0);

  EXPECT_EQ(r.violations, 0u) << r.system;
  for (const AuditViolation& v : r.violation_details)
    ADD_FAILURE() << r.system << ": " << audit_violation_name(v.kind) << ": "
                  << v.detail;

  EXPECT_EQ(r.fault_events, g.fault_events) << r.system;
  EXPECT_EQ(r.fingerprint, g.fingerprint) << r.system;
  EXPECT_EQ(r.committed_writes, g.committed) << r.system;
  EXPECT_EQ(r.acked_writes, g.acked) << r.system;
  EXPECT_EQ(r.comparable_nodes, g.comparable) << r.system;

  // Same trial under the sharded parallel kernel: every observable must be
  // bit-identical to the serial run.
  TrialConfig ptc = tc;
  ptc.sim_threads = 2;
  const ChaosResult p = run_chaos_trial(ptc, mix, ft, 15'000.0);
  EXPECT_EQ(p.violations, 0u) << p.system;
  EXPECT_EQ(p.fault_events, r.fault_events) << p.system;
  EXPECT_EQ(p.fingerprint, r.fingerprint) << p.system;
  EXPECT_EQ(p.committed_writes, r.committed_writes) << p.system;
  EXPECT_EQ(p.acked_writes, r.acked_writes) << p.system;
  EXPECT_EQ(p.comparable_nodes, r.comparable_nodes) << p.system;
  EXPECT_EQ(p.commit_spread, r.commit_spread) << p.system;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, GrayChaosGoldenDigest,
                         ::testing::ValuesIn(kGrayGolden),
                         [](const auto& info) {
                           return std::string(system_name(info.param.system));
                         });

// --------------------------------------------------------------------------
// Long-downtime goldens (ISSUE 10): the snapshot/state-transfer scenario —
// one node dark past every retained-history window, back by state transfer.
// Pins the surviving history, the snapshot count, and the retention bound
// at seed 42, then replays the SAME trial under the parallel event kernel
// (sim_threads = 2) demanding bit-identical results: the install path must
// stay deterministic under sharded execution.
// --------------------------------------------------------------------------

struct DowntimeGolden {
  System system;
  std::uint64_t fingerprint;
  std::uint64_t committed;
  std::uint64_t snapshots;
  std::uint64_t comparable;
};

// Captured with the exact setup below. Every system installs at least one
// snapshot: Raft ships InstallSnapshot past the compacted base, Zab answers
// the stale sync with a snapshot, EPaxos escalates the beyond-window gap,
// and the Canopus pnode is sponsored back with a full state transfer.
constexpr DowntimeGolden kDowntimeGolden[] = {
    {System::kCanopus, 0x8f174f59010f9f81ULL, 4156, 1, 6},
    {System::kRaft, 0x0619dcd0c335ad2dULL, 4156, 1, 6},
    {System::kZab, 0xf5fee0b56332117dULL, 4156, 1, 6},
    {System::kEPaxos, 0x1216167caaa27ddcULL, 4156, 1, 6},
};

class DowntimeGoldenDigest : public ::testing::TestWithParam<DowntimeGolden> {
};

TEST_P(DowntimeGoldenDigest, SnapshotRejoinPinsAndReplaysAcrossSimThreads) {
  const DowntimeGolden& g = GetParam();
  TrialConfig tc;
  tc.system = g.system;
  tc.groups = 2;
  tc.per_group = 3;
  tc.client_machines = 1;
  tc.seed = 42;
  tc = fault_tuned(tc);

  const FaultTiming ft = long_downtime_timing();
  tc.warmup = ft.warmup;
  const FaultScenario sc = long_downtime_scenario(tc.per_group, ft);
  const ScenarioResult r = run_fault_scenario(tc, sc, ft, 5'000.0);

  EXPECT_TRUE(r.safe()) << r.system;
  EXPECT_TRUE(r.retention_ok)
      << r.system << " retained " << r.max_log_retained << " > bound "
      << retained_log_bound(tc);
  EXPECT_EQ(r.fingerprint, g.fingerprint) << r.system;
  EXPECT_EQ(r.committed_writes, g.committed) << r.system;
  EXPECT_EQ(r.snapshots_installed, g.snapshots) << r.system;
  EXPECT_EQ(r.comparable_nodes, g.comparable) << r.system;

  // Same trial under the sharded parallel kernel: bit-identical.
  TrialConfig ptc = tc;
  ptc.sim_threads = 2;
  const ScenarioResult p = run_fault_scenario(ptc, sc, ft, 5'000.0);
  EXPECT_EQ(p.fingerprint, r.fingerprint) << p.system;
  EXPECT_EQ(p.committed_writes, r.committed_writes) << p.system;
  EXPECT_EQ(p.snapshots_installed, r.snapshots_installed) << p.system;
  EXPECT_EQ(p.comparable_nodes, r.comparable_nodes) << p.system;
  EXPECT_EQ(p.max_log_retained, r.max_log_retained) << p.system;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, DowntimeGoldenDigest,
                         ::testing::ValuesIn(kDowntimeGolden),
                         [](const auto& info) {
                           return std::string(system_name(info.param.system));
                         });

}  // namespace
}  // namespace canopus::workload
