// Golden-digest determinism regression: for a fixed seed and workload, every
// system's commit digest, read count, network statistics, and event count
// are pinned to the exact values produced before the typed-event-plane
// rewrite (ISSUE 4). Any change to these constants means the simulation's
// observable behaviour changed — which a pure performance refactor of the
// substrate must never do. If a FUTURE protocol/workload change legitimately
// alters behaviour, regenerate the constants and say so in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "workload/deployments.h"

namespace canopus::workload {
namespace {

struct Golden {
  System system;
  std::uint64_t fingerprint;
  std::uint64_t writes;
  std::uint64_t reads;
  std::uint64_t messages;
  std::uint64_t bytes;
  std::uint64_t events;
};

// Captured at commit 4b75f59 (pre-rewrite) with the exact setup below.
constexpr Golden kGolden[] = {
    {System::kCanopus, 0xa8dec9dcc918f031ULL, 3449, 379, 283070, 23604000,
     1191785},
    {System::kRaft, 0xc5bb842af0672a79ULL, 3449, 379, 24525, 2769768, 127983},
    {System::kZab, 0x56a59c42b707fc9ULL, 3449, 379, 21091, 2193240, 106467},
    {System::kEPaxos, 0xa229fc217f2eb3a2ULL, 3449, 379, 22406, 3751440,
     122348},
};

class GoldenDigest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenDigest, RunMatchesRecordedTrace) {
  const Golden& g = GetParam();
  TrialConfig tc;
  tc.system = g.system;
  tc.groups = 3;
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.write_ratio = 0.5;
  tc.warmup = 50 * kMillisecond;
  tc.measure = 300 * kMillisecond;
  tc.drain = 100 * kMillisecond;
  tc.seed = 42;

  const std::uint64_t trial_seed = derive_seed(tc.seed, 0xf19aULL);
  simnet::Simulator sim(trial_seed);
  simnet::Cluster cluster = build_cluster(tc);
  simnet::Network net(sim, cluster.topo, tc.cpu);
  auto service = make_service(tc, cluster, net);
  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, net, recorder, 20'000.0,
                                trial_seed, tc.warmup + tc.measure);
  sim.run_until(tc.warmup + tc.measure + tc.drain);

  EXPECT_EQ(service->commit_fingerprint(0), g.fingerprint) << service->name();
  EXPECT_EQ(service->committed_writes(0), g.writes);
  EXPECT_EQ(service->served_reads(0), g.reads);
  EXPECT_EQ(net.stats().messages, g.messages);
  EXPECT_EQ(net.stats().bytes, g.bytes);
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_EQ(sim.events_processed(), g.events);

  // Agreement: every server holds the same committed history.
  for (std::size_t i = 1; i < service->num_servers(); ++i) {
    EXPECT_EQ(service->commit_fingerprint(i), g.fingerprint)
        << service->name() << " node " << i;
    EXPECT_EQ(service->committed_writes(i), g.writes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, GoldenDigest,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(system_name(info.param.system));
                         });

}  // namespace
}  // namespace canopus::workload
