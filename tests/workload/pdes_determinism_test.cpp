// The oracle for the sharded (PDES) kernel's cardinal constraint (ISSUE 6):
// run_parallel_until() must be BIT-IDENTICAL to run_until() — same commit
// fingerprints, same client-visible counts, same NetworkStats, same number
// of events processed — for every system, every seed, every shard count.
//
// Why this holds by construction: every event source is a lane, an event's
// tie-break seq is (lane << 40) | per-lane counter, and a lane's counter is
// only ever advanced by the one shard that owns the lane. The (time, seq)
// total order is therefore a pure function of the simulated causality, not
// of the shard map or of worker interleaving — see DESIGN.md §10. These
// tests are the empirical check of that argument across:
//
//   * the steady-state rack fabric (3 racks, lookahead = the 2 us uplink),
//   * the WAN fabric (4 datacenters, lookahead = tens of ms), and
//   * the chaos storm (faults + audits ride the control lane and fire at
//     coordinator barriers).
//
// Windows are deliberately short: CI runners may have ONE core, where the
// parallel kernel is strictly slower than serial (see EXPERIMENTS.md,
// "PDES scaling") — this file buys correctness coverage, not speed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "workload/chaos.h"
#include "workload/deployments.h"

namespace canopus::workload {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 1337};
constexpr unsigned kThreadCounts[] = {2, 4};

struct Digest {
  std::uint64_t fingerprint = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t events = 0;

  bool operator==(const Digest&) const = default;
};

std::ostream& operator<<(std::ostream& os, const Digest& d) {
  return os << "{fp=" << std::hex << d.fingerprint << std::dec
            << " w=" << d.writes << " r=" << d.reads << " msg=" << d.messages
            << " B=" << d.bytes << " drop=" << d.dropped
            << " ev=" << d.events << "}";
}

/// One fixed-rate steady-state trial, digested. Mirrors run_trial() but
/// reads the service/network/simulator counters instead of latency stats.
Digest run_digest(System sys, std::uint64_t seed, bool wan,
                  unsigned sim_threads) {
  TrialConfig tc;
  tc.system = sys;
  tc.wan = wan;
  tc.groups = wan ? 4 : 3;  // 4 DCs: "4 shards" below is a real 4-way split
  tc.per_group = 3;
  tc.client_machines = 2;
  tc.write_ratio = 0.5;
  tc.seed = seed;
  tc.sim_threads = sim_threads;
  if (wan) {
    tc.warmup = 200 * kMillisecond;  // WAN commit cycles are ~RTT long
    tc.measure = 600 * kMillisecond;
    tc.drain = 200 * kMillisecond;
  } else {
    tc.warmup = 30 * kMillisecond;
    tc.measure = 120 * kMillisecond;
    tc.drain = 50 * kMillisecond;
  }
  const double rate = wan ? 2'000.0 : 20'000.0;

  const std::uint64_t trial_seed = derive_seed(tc.seed, 0xf19aULL);
  simnet::Simulator sim(trial_seed);
  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  auto service = make_service(tc, cluster, net);
  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, net, recorder, rate, trial_seed,
                                tc.warmup + tc.measure);
  const Time deadline = tc.warmup + tc.measure + tc.drain;
  if (tc.sim_threads > 1)
    sim.run_parallel_until(deadline);
  else
    sim.run_until(deadline);

  Digest d;
  // Fold EVERY node's history into the digest (FNV-style): at the fixed
  // deadline, distant followers legitimately lag the leader by up to a WAN
  // RTT, so nodes need not agree yet — but each node's exact prefix must
  // be identical between the serial and sharded runs.
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    d.fingerprint = (d.fingerprint ^ service->commit_fingerprint(i)) *
                    0x100000001b3ULL;
    d.writes += service->committed_writes(i);
    d.reads += service->served_reads(i);
  }
  d.messages = net.stats().messages;
  d.bytes = net.stats().bytes;
  d.dropped = net.stats().dropped;
  d.events = sim.events_processed();
  return d;
}

class PdesDeterminism : public ::testing::TestWithParam<System> {};

TEST_P(PdesDeterminism, RackFabricBitIdenticalAcrossSeedsAndShardCounts) {
  for (std::uint64_t seed : kSeeds) {
    const Digest serial = run_digest(GetParam(), seed, /*wan=*/false, 1);
    ASSERT_GT(serial.writes, 0u) << "trial produced no commits; vacuous";
    for (unsigned t : kThreadCounts) {
      const Digest par = run_digest(GetParam(), seed, /*wan=*/false, t);
      EXPECT_EQ(par, serial) << system_name(GetParam()) << " seed " << seed
                             << " sim_threads " << t;
    }
  }
}

TEST_P(PdesDeterminism, WanFabricBitIdenticalWithWanLookahead) {
  // The tentpole case: shard per datacenter, lookahead = WAN one-way
  // latency (tens of ms), so shards run nearly decoupled — and must still
  // replay the serial order exactly.
  const Digest serial = run_digest(GetParam(), 42, /*wan=*/true, 1);
  ASSERT_GT(serial.writes, 0u) << "trial produced no commits; vacuous";
  for (unsigned t : kThreadCounts) {
    const Digest par = run_digest(GetParam(), 42, /*wan=*/true, t);
    EXPECT_EQ(par, serial) << system_name(GetParam()) << " sim_threads " << t;
  }
}

TEST_P(PdesDeterminism, ChaosStormBitIdenticalThroughControlBarriers) {
  // Faults, heals and the continuous linearizability audit all ride the
  // control lane: under sharded execution they fire one-at-a-time at
  // coordinator barriers with every worker parked. The storm's entire
  // observable outcome must match the serial replay — and stay clean.
  auto storm = [&](unsigned sim_threads) {
    TrialConfig tc;
    tc.system = GetParam();
    tc.groups = 3;
    tc.per_group = 3;
    tc.client_machines = 2;
    tc.write_ratio = 0.5;
    tc.seed = 42;
    tc = chaos_tuned(tc);
    tc.sim_threads = sim_threads;

    FaultTiming ft;
    ft.warmup = 100 * kMillisecond;
    ft.fault_at = 200 * kMillisecond;
    ft.heal_at = 500 * kMillisecond;
    ft.end_at = 650 * kMillisecond;
    ft.drain = 200 * kMillisecond;
    tc.warmup = ft.warmup;

    const ChaosIntensity ci{"pdes", 12.0, 2, 2, 80 * kMillisecond,
                            100 * kMillisecond};
    return run_chaos_trial(tc, ci, ft, 15'000.0);
  };

  const ChaosResult serial = storm(1);
  EXPECT_EQ(serial.violations, 0u);
  ASSERT_GT(serial.committed_writes, 0u);
  for (unsigned t : kThreadCounts) {
    const ChaosResult par = storm(t);
    EXPECT_EQ(par.violations, 0u) << "sim_threads " << t;
    EXPECT_EQ(par.fault_events, serial.fault_events) << "sim_threads " << t;
    EXPECT_EQ(par.fingerprint, serial.fingerprint) << "sim_threads " << t;
    EXPECT_EQ(par.committed_writes, serial.committed_writes)
        << "sim_threads " << t;
    EXPECT_EQ(par.acked_writes, serial.acked_writes) << "sim_threads " << t;
    EXPECT_EQ(par.observed_reads, serial.observed_reads)
        << "sim_threads " << t;
    EXPECT_EQ(par.comparable_nodes, serial.comparable_nodes)
        << "sim_threads " << t;
    EXPECT_EQ(par.client_failed, serial.client_failed) << "sim_threads " << t;
    EXPECT_EQ(par.recovered, serial.recovered) << "sim_threads " << t;
    EXPECT_EQ(par.recovery_ns, serial.recovery_ns) << "sim_threads " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, PdesDeterminism,
                         ::testing::ValuesIn(kAllSystems),
                         [](const auto& info) {
                           return std::string(system_name(info.param));
                         });

}  // namespace
}  // namespace canopus::workload
