#include "workload/stats.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace canopus::workload {
namespace {

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(i);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(1.0), 9);
}

TEST(LatencyHistogram, MedianOfUniformRange) {
  LatencyHistogram h;
  for (Time v = 1; v <= 1000; ++v) h.record(v * 1000);
  const double med = static_cast<double>(h.median());
  EXPECT_NEAR(med, 500'000, 500'000 * 0.04);  // <= ~4% bucket error
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i)
    h.record(static_cast<Time>(rng.below(100 * kMillisecond)));
  Time prev = 0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const Time v = h.percentile(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

TEST(LatencyHistogram, LargeValuesBounded) {
  LatencyHistogram h;
  h.record(3'600 * kSecond);  // one hour
  EXPECT_GE(h.percentile(0.5), kSecond);
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record(kMillisecond);
  b.record(3 * kMillisecond);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.percentile(1.0), 2 * kMillisecond);
}

TEST(LatencyHistogram, NegativeClampsToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(LatencyHistogram, PercentileClampsOutOfRangeInputs) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(i);
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(1.5), h.percentile(1.0));
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()),
            h.percentile(0.0));
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::infinity()),
            h.percentile(1.0));
  EXPECT_EQ(h.percentile(-std::numeric_limits<double>::infinity()),
            h.percentile(0.0));
}

TEST(LatencyHistogram, PercentileClampOnEmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(7.0), 0);
  EXPECT_EQ(h.percentile(-7.0), 0);
}

TEST(LatencyRecorder, WindowFiltersArrivals) {
  LatencyRecorder r;
  r.set_window(kSecond, 2 * kSecond);
  r.complete(1'500 * kMillisecond, 500 * kMillisecond);   // arrived early
  r.complete(2'500 * kMillisecond, 2'100 * kMillisecond); // arrived late
  r.complete(1'600 * kMillisecond, 1'500 * kMillisecond); // in window
  EXPECT_EQ(r.completed(), 1u);
  EXPECT_NEAR(static_cast<double>(r.histogram().median()),
              100.0 * kMillisecond, 0.04 * 100 * kMillisecond);
}

TEST(LatencyRecorder, ThroughputOverWindow) {
  LatencyRecorder r;
  r.set_window(0, 2 * kSecond);
  for (int i = 0; i < 1000; ++i)
    r.complete(kSecond, kMillisecond * static_cast<Time>(i % 1000));
  EXPECT_DOUBLE_EQ(r.throughput(), 500.0);  // 1000 reqs / 2 s
}

}  // namespace
}  // namespace canopus::workload
