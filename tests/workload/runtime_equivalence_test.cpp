// Cross-backend digest equivalence (DESIGN.md §12): the same scripted
// command sequence driven through the discrete-event simulator and through
// runtime::ThreadedRuntime must produce identical per-server commit
// fingerprints on all four systems — kv::CommitDigest (ordered hash chain)
// for Canopus/Raft/Zab, kv::SetDigest (order-free) for EPaxos. This is the
// proof that the threaded backend runs the *same protocols*, not a port:
// any divergence in ordering, duplication or loss shows up as a digest
// mismatch.
#include "runtime/threaded_trial.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace canopus::workload {
namespace {

TrialConfig five_node_config(System sys, std::uint64_t seed) {
  TrialConfig tc;
  tc.system = sys;
  tc.groups = 1;  // single rack: 5 servers, height-1 LOT for Canopus
  tc.per_group = 5;
  tc.client_machines = 0;  // scripted submission only — no open-loop load
  tc.seed = seed;
  return tc;
}

void expect_equivalent(System sys, std::uint64_t seed, std::size_t k) {
  SCOPED_TRACE(testing::Message()
               << system_name(sys) << " seed=" << seed << " k=" << k);
  const TrialConfig tc = five_node_config(sys, seed);

  const ScriptResult sim = run_script_sim(tc, k);
  ASSERT_TRUE(sim.completed)
      << "simulated backend did not commit the full script";

  const ScriptResult thr = run_script_threads(tc, k);
  ASSERT_TRUE(thr.completed)
      << "threaded backend did not commit the full script within the "
         "wall-clock deadline";

  ASSERT_EQ(sim.fingerprint.size(), thr.fingerprint.size());
  for (std::size_t i = 0; i < sim.fingerprint.size(); ++i) {
    EXPECT_EQ(sim.committed[i], thr.committed[i]) << "server " << i;
    EXPECT_EQ(sim.fingerprint[i], thr.fingerprint[i]) << "server " << i;
  }
  // Every server of one backend also agrees with every server of the
  // other: with identical scripts the fingerprints are all one value.
  for (std::size_t i = 1; i < sim.fingerprint.size(); ++i)
    EXPECT_EQ(sim.fingerprint[0], sim.fingerprint[i]);
}

// run_trial's threaded dispatch end-to-end: open-loop Poisson clients,
// latency recorder and measurement window all running on real threads
// (the --runtime=threads path of the figure benches). Wall-clock, so only
// sanity shapes are asserted, not numbers.
TEST(RuntimeEquivalence, ThreadedTrialSmoke) {
  TrialConfig tc = five_node_config(System::kCanopus, 1);
  tc.client_machines = 2;
  tc.runtime = RuntimeKind::kThreads;
  tc.warmup = 150 * kMillisecond;
  tc.measure = 500 * kMillisecond;
  tc.drain = 150 * kMillisecond;
  const Measurement m = run_trial(tc, /*offered_rate=*/2000.0);
  EXPECT_GT(m.completed, 0u) << "no client request completed on threads";
  EXPECT_GT(m.median, 0);
}

constexpr std::size_t kScript = 160;

TEST(RuntimeEquivalence, CanopusSeed1) {
  expect_equivalent(System::kCanopus, 1, kScript);
}
TEST(RuntimeEquivalence, CanopusSeed42) {
  expect_equivalent(System::kCanopus, 42, kScript);
}
TEST(RuntimeEquivalence, RaftSeed1) {
  expect_equivalent(System::kRaft, 1, kScript);
}
TEST(RuntimeEquivalence, RaftSeed42) {
  expect_equivalent(System::kRaft, 42, kScript);
}
TEST(RuntimeEquivalence, ZabSeed1) {
  expect_equivalent(System::kZab, 1, kScript);
}
TEST(RuntimeEquivalence, ZabSeed42) {
  expect_equivalent(System::kZab, 42, kScript);
}
TEST(RuntimeEquivalence, EPaxosSeed1) {
  expect_equivalent(System::kEPaxos, 1, kScript);
}
TEST(RuntimeEquivalence, EPaxosSeed42) {
  expect_equivalent(System::kEPaxos, 42, kScript);
}

}  // namespace
}  // namespace canopus::workload
