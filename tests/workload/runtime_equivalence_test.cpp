// Cross-backend digest equivalence (DESIGN.md §12): the same scripted
// command sequence driven through the discrete-event simulator and through
// runtime::ThreadedRuntime must produce identical per-server commit
// fingerprints on all four systems — kv::CommitDigest (ordered hash chain)
// for Canopus/Raft/Zab, kv::SetDigest (order-free) for EPaxos. This is the
// proof that the threaded backend runs the *same protocols*, not a port:
// any divergence in ordering, duplication or loss shows up as a digest
// mismatch.
#include "runtime/threaded_trial.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "runtime/threaded.h"

namespace canopus::workload {
namespace {

TrialConfig five_node_config(System sys, std::uint64_t seed) {
  TrialConfig tc;
  tc.system = sys;
  tc.groups = 1;  // single rack: 5 servers, height-1 LOT for Canopus
  tc.per_group = 5;
  tc.client_machines = 0;  // scripted submission only — no open-loop load
  tc.seed = seed;
  return tc;
}

void expect_equivalent(System sys, std::uint64_t seed, std::size_t k) {
  SCOPED_TRACE(testing::Message()
               << system_name(sys) << " seed=" << seed << " k=" << k);
  const TrialConfig tc = five_node_config(sys, seed);

  const ScriptResult sim = run_script_sim(tc, k);
  ASSERT_TRUE(sim.completed)
      << "simulated backend did not commit the full script";

  const ScriptResult thr = run_script_threads(tc, k);
  ASSERT_TRUE(thr.completed)
      << "threaded backend did not commit the full script within the "
         "wall-clock deadline";

  ASSERT_EQ(sim.fingerprint.size(), thr.fingerprint.size());
  for (std::size_t i = 0; i < sim.fingerprint.size(); ++i) {
    EXPECT_EQ(sim.committed[i], thr.committed[i]) << "server " << i;
    EXPECT_EQ(sim.fingerprint[i], thr.fingerprint[i]) << "server " << i;
  }
  // Every server of one backend also agrees with every server of the
  // other: with identical scripts the fingerprints are all one value.
  for (std::size_t i = 1; i < sim.fingerprint.size(); ++i)
    EXPECT_EQ(sim.fingerprint[0], sim.fingerprint[i]);
}

// run_trial's threaded dispatch end-to-end: open-loop Poisson clients,
// latency recorder and measurement window all running on real threads
// (the --runtime=threads path of the figure benches). Wall-clock, so only
// sanity shapes are asserted, not numbers.
TEST(RuntimeEquivalence, ThreadedTrialSmoke) {
  TrialConfig tc = five_node_config(System::kCanopus, 1);
  tc.client_machines = 2;
  tc.runtime = RuntimeKind::kThreads;
  tc.warmup = 150 * kMillisecond;
  tc.measure = 500 * kMillisecond;
  tc.drain = 150 * kMillisecond;
  const Measurement m = run_trial(tc, /*offered_rate=*/2000.0);
  EXPECT_GT(m.completed, 0u) << "no client request completed on threads";
  EXPECT_GT(m.median, 0);
}

// Snapshot catch-up on real threads (ISSUE 10): a server crashes, the
// survivors retire more history than its repair window retains, and on
// recovery the only path back is snapshot/state transfer — Raft
// InstallSnapshot, the Zab sync snapshot, the EPaxos gap escalation, the
// Canopus sponsored rejoin. Wall-clock and hardware-scheduled, so the test
// asserts shapes (a snapshot installed, digests converged), never timings.
// Mid-run observation goes through atomics fed by the service hooks;
// protocol state is read only after rt.stop()'s join barrier.
void expect_snapshot_catchup_threads(System sys) {
  SCOPED_TRACE(testing::Message() << system_name(sys));
  TrialConfig tc = five_node_config(sys, 7);
  // Retention windows small enough that the victim's gap overflows them.
  tc.raft.raft.compaction_threshold = 16;
  tc.raft.raft.compaction_keep = 4;
  tc.zab.history_depth = 16;
  tc.epaxos.repair_window = 8;

  simnet::Cluster cluster = build_cluster(tc);
  runtime::ThreadedRuntime rt(cluster.topo.num_nodes(), tc.seed);
  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, rt);
  ASSERT_TRUE(service->supports_recover());

  const std::size_t n = service->num_servers();
  const std::size_t victim = n - 1;
  std::vector<std::atomic<std::uint64_t>> committed(n);
  std::atomic<bool> victim_snapshot{false};
  service->on_commit = [&](std::size_t i, std::uint64_t,
                           const std::vector<kv::Request>& batch) {
    committed[i].fetch_add(batch.size(), std::memory_order_relaxed);
  };
  service->on_snapshot_install = [&](std::size_t i, const kv::Snapshot&) {
    if (i == victim) victim_snapshot.store(true, std::memory_order_relaxed);
  };

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  const auto wait_for = [&](auto&& pred) {
    while (!pred() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    return static_cast<bool>(pred());
  };
  std::uint64_t next_id = 0;
  const auto submit_writes = [&](std::uint64_t first_key, std::size_t k) {
    for (std::size_t i = 0; i < k; ++i) {
      kv::Request r;
      r.id = {kInvalidNode, ++next_id};
      r.is_write = true;
      r.key = first_key + i;
      r.value = 1000 + next_id;
      service->submit(0, r);
    }
  };

  rt.start();
  submit_writes(1, 8);
  ASSERT_TRUE(wait_for([&] {
    for (std::size_t i = 0; i < n; ++i)
      if (committed[i].load(std::memory_order_relaxed) < 8) return false;
    return true;
  })) << "initial writes did not commit everywhere";

  service->crash(victim);
  // Paced one-by-one: a tight submit burst would let the leader batch the
  // whole gap into a couple of log entries and never cross the compaction
  // threshold — catch-up would then ride plain replication and the test
  // would prove nothing. Each write waits until every survivor committed
  // it, so each occupies its own log slot / zxid / instance.
  for (std::size_t w = 0; w < 40; ++w) {
    submit_writes(100 + w, 1);
    ASSERT_TRUE(wait_for([&] {
      for (std::size_t i = 0; i < n; ++i)
        if (i != victim &&
            committed[i].load(std::memory_order_relaxed) < 9 + w)
          return false;
      return true;
    })) << "survivors did not absorb gap-opening write " << w;
  }

  ASSERT_TRUE(service->recover(victim));
  ASSERT_TRUE(wait_for([&] {
    return victim_snapshot.load(std::memory_order_relaxed);
  })) << "recovered node never installed a catch-up snapshot";

  // Post-snapshot, the victim rides normal replication again.
  submit_writes(500, 4);
  ASSERT_TRUE(wait_for([&] {
    for (std::size_t i = 0; i < n; ++i)
      if (committed[i].load(std::memory_order_relaxed) <
          (i == victim ? 4u : 52u))
        return false;
    return true;
  })) << "post-recovery writes did not reach every server";

  rt.stop();  // join = happens-before: protocol state is safe to read now
  EXPECT_GE(service->snapshots_installed(victim), 1u);
  EXPECT_TRUE(service->up(victim));
  EXPECT_TRUE(service->comparable(victim));
  EXPECT_EQ(service->committed_writes(victim),
            service->committed_writes(0));
  EXPECT_EQ(service->commit_fingerprint(victim),
            service->commit_fingerprint(0));
}

TEST(RuntimeEquivalence, SnapshotCatchupOnThreadsCanopus) {
  expect_snapshot_catchup_threads(System::kCanopus);
}
TEST(RuntimeEquivalence, SnapshotCatchupOnThreadsRaft) {
  expect_snapshot_catchup_threads(System::kRaft);
}
TEST(RuntimeEquivalence, SnapshotCatchupOnThreadsZab) {
  expect_snapshot_catchup_threads(System::kZab);
}
TEST(RuntimeEquivalence, SnapshotCatchupOnThreadsEPaxos) {
  expect_snapshot_catchup_threads(System::kEPaxos);
}

constexpr std::size_t kScript = 160;

TEST(RuntimeEquivalence, CanopusSeed1) {
  expect_equivalent(System::kCanopus, 1, kScript);
}
TEST(RuntimeEquivalence, CanopusSeed42) {
  expect_equivalent(System::kCanopus, 42, kScript);
}
TEST(RuntimeEquivalence, RaftSeed1) {
  expect_equivalent(System::kRaft, 1, kScript);
}
TEST(RuntimeEquivalence, RaftSeed42) {
  expect_equivalent(System::kRaft, 42, kScript);
}
TEST(RuntimeEquivalence, ZabSeed1) {
  expect_equivalent(System::kZab, 1, kScript);
}
TEST(RuntimeEquivalence, ZabSeed42) {
  expect_equivalent(System::kZab, 42, kScript);
}
TEST(RuntimeEquivalence, EPaxosSeed1) {
  expect_equivalent(System::kEPaxos, 1, kScript);
}
TEST(RuntimeEquivalence, EPaxosSeed42) {
  expect_equivalent(System::kEPaxos, 42, kScript);
}

}  // namespace
}  // namespace canopus::workload
