// Standalone Raft KV deployment: replication, forwarding, leader failover
// and crash-recovery repair.
#include "raft/raft_kv.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simnet/topology.h"

namespace canopus::raft {
namespace {

class RaftKvTest : public ::testing::Test {
 protected:
  void build(int n, KvConfig cfg = {}) {
    sim_ = std::make_unique<simnet::Simulator>(42);
    simnet::RackConfig rc;
    rc.racks = 1;
    rc.servers_per_rack = n;
    rc.clients_per_rack = 0;
    cluster_ = simnet::build_multi_rack(rc);
    net_ = std::make_unique<simnet::Network>(*sim_, cluster_.topo);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<RaftKvNode>(cluster_.servers, cfg));
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *nodes_.back());
    }
  }

  void write_at(Time t, int node, std::uint64_t key, std::uint64_t val) {
    sim_->at(t, [this, node, key, val] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = val;
      r.arrival = sim_->now();
      nodes_[static_cast<size_t>(node)]->submit(r);
    });
  }

  void crash(int node) {
    net_->crash(cluster_.servers[static_cast<size_t>(node)]);
    nodes_[static_cast<size_t>(node)]->crash();
  }

  void recover(int node) {
    net_->recover(cluster_.servers[static_cast<size_t>(node)]);
    nodes_[static_cast<size_t>(node)]->recover();
  }

  std::unique_ptr<simnet::Simulator> sim_;
  simnet::Cluster cluster_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<std::unique_ptr<RaftKvNode>> nodes_;
};

TEST_F(RaftKvTest, BootstrapLeaderIsNodeZero) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  EXPECT_TRUE(nodes_[0]->is_leader());
  EXPECT_FALSE(nodes_[1]->is_leader());
}

TEST_F(RaftKvTest, LeaderWriteReplicatesToAll) {
  build(3);
  write_at(kMillisecond, 0, 7, 77);
  sim_->run_until(500 * kMillisecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->store().read(7), 77u);
    EXPECT_EQ(n->committed_writes(), 1u);
  }
}

TEST_F(RaftKvTest, FollowerForwardsToLeader) {
  build(5);
  write_at(kMillisecond, 3, 1, 11);
  write_at(kMillisecond, 4, 2, 22);
  sim_->run_until(500 * kMillisecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->store().read(1), 11u);
    EXPECT_EQ(n->store().read(2), 22u);
    EXPECT_TRUE(n->digest() == nodes_[0]->digest());
  }
}

TEST_F(RaftKvTest, ReadsServedLocally) {
  build(3);
  write_at(kMillisecond, 0, 5, 55);
  sim_->at(300 * kMillisecond, [this] {
    kv::Request r;
    r.is_write = false;
    r.key = 5;
    nodes_[2]->submit(r);
  });
  sim_->run_until(500 * kMillisecond);
  EXPECT_EQ(nodes_[2]->served_reads(), 1u);
}

TEST_F(RaftKvTest, LeaderCrashTriggersFailoverAndWritesContinue) {
  build(5);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(200 * kMillisecond);
  crash(0);
  // A new leader is elected; a follower-submitted write still commits.
  write_at(kSecond, 2, 2, 22);
  sim_->run_until(3 * kSecond);
  int leaders = 0;
  for (auto& n : nodes_) {
    if (n->crashed()) continue;
    if (n->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    EXPECT_EQ(nodes_[i]->store().read(2), 22u) << "node " << i;
    EXPECT_TRUE(nodes_[i]->digest() == nodes_[1]->digest());
  }
}

TEST_F(RaftKvTest, RecoveredNodeIsRepairedByLog) {
  build(5);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(200 * kMillisecond);
  crash(4);
  write_at(300 * kMillisecond, 0, 2, 22);
  write_at(400 * kMillisecond, 1, 3, 33);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[4]->store().read(2), 0u);  // missed while down
  recover(4);
  sim_->run_until(3 * kSecond);
  EXPECT_EQ(nodes_[4]->store().read(2), 22u);
  EXPECT_EQ(nodes_[4]->store().read(3), 33u);
  EXPECT_TRUE(nodes_[4]->digest() == nodes_[0]->digest());
}

// --- log compaction + InstallSnapshot (ISSUE 10) --------------------------

// Committed prefix past compaction_threshold is folded into the KV
// snapshot; the in-memory log stays bounded regardless of how much history
// the cluster retires.
TEST_F(RaftKvTest, CompactionBoundsTheLogUnderLoad) {
  KvConfig cfg;
  cfg.raft.compaction_threshold = 16;
  cfg.raft.compaction_keep = 4;
  build(3, cfg);
  for (int i = 0; i < 60; ++i)
    write_at((static_cast<Time>(i) + 1) * 5 * kMillisecond, 0, 100 + i,
             1000 + i);
  sim_->run_until(2 * kSecond);
  for (auto& n : nodes_) {
    EXPECT_LE(n->log_entries_retained(), 16u + 4u);
    EXPECT_EQ(n->store().read(159), 1059u);  // state survives compaction
    EXPECT_TRUE(n->digest() == nodes_[0]->digest());
  }
}

// A follower that slept through compaction cannot be repaired from the log
// — the entries it needs are gone. The leader must ship InstallSnapshot,
// then resume normal replication from the snapshot frontier.
TEST_F(RaftKvTest, FollowerBehindCompactionBaseGetsInstallSnapshot) {
  KvConfig cfg;
  cfg.raft.compaction_threshold = 16;
  cfg.raft.compaction_keep = 4;
  build(5, cfg);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(200 * kMillisecond);
  crash(4);
  for (int i = 0; i < 40; ++i)  // retire well past the threshold
    write_at((250 + 5 * static_cast<Time>(i)) * kMillisecond, 0, 100 + i,
             1000 + i);
  sim_->run_until(kSecond);
  recover(4);
  sim_->run_until(3 * kSecond);
  EXPECT_EQ(nodes_[4]->snapshots_installed(), 1u);
  EXPECT_EQ(nodes_[4]->store().read(1), 11u);
  EXPECT_EQ(nodes_[4]->store().read(139), 1039u);
  EXPECT_TRUE(nodes_[4]->digest() == nodes_[0]->digest());
  // And the repaired follower keeps riding the normal log afterwards.
  write_at(sim_->now() + 10 * kMillisecond, 0, 7, 77);
  sim_->run_until(sim_->now() + 500 * kMillisecond);
  EXPECT_EQ(nodes_[4]->store().read(7), 77u);
  EXPECT_EQ(nodes_[4]->snapshots_installed(), 1u);  // no extra snapshot
}

// Compaction disabled (threshold 0): the log grows without bound and no
// snapshot ever ships — the pre-compaction baseline stays reachable.
TEST_F(RaftKvTest, CompactionDisabledKeepsFullLog) {
  KvConfig cfg;
  cfg.raft.compaction_threshold = 0;
  build(3, cfg);
  for (int i = 0; i < 40; ++i)
    write_at((static_cast<Time>(i) + 1) * 5 * kMillisecond, 0, 100 + i,
             1000 + i);
  sim_->run_until(2 * kSecond);
  EXPECT_GE(nodes_[0]->log_entries_retained(), 40u);
  EXPECT_EQ(nodes_[0]->snapshots_installed(), 0u);
}

TEST_F(RaftKvTest, AsymmetricPartitionDoesNotApplyStaleTail) {
  // One-way partition: the old leader's side (0,1) cannot reach (2,3,4),
  // but the reverse direction stays open. Nodes 2-4 elect a new leader and
  // keep committing; its heartbeats REACH 0 and 1 (reverse path is open)
  // while 0 keeps a stale uncommitted tail of its own appends. The commit
  // advance on those heartbeats must never apply the unverified stale tail
  // (Raft §5.3: commitIndex is bounded by the last VERIFIED entry).
  build(5);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(200 * kMillisecond);
  for (int a : {0, 1})
    for (int b : {2, 3, 4})
      net_->sever(cluster_.servers[static_cast<size_t>(a)],
                  cluster_.servers[static_cast<size_t>(b)]);
  // Old leader appends these, replicates only to node 1 — never committed.
  write_at(300 * kMillisecond, 0, 7, 70);
  write_at(310 * kMillisecond, 0, 8, 80);
  // The majority side commits different writes under a new leader.
  write_at(1'500 * kMillisecond, 2, 2, 22);
  write_at(1'600 * kMillisecond, 3, 3, 33);
  sim_->run_until(4 * kSecond);
  EXPECT_EQ(nodes_[2]->store().read(2), 22u);
  // Nodes 0 and 1 must not have applied their stale tail.
  EXPECT_EQ(nodes_[0]->store().read(7), 0u);
  EXPECT_EQ(nodes_[1]->store().read(7), 0u);
  for (int a : {0, 1})
    for (int b : {2, 3, 4})
      net_->heal(cluster_.servers[static_cast<size_t>(a)],
                 cluster_.servers[static_cast<size_t>(b)]);
  sim_->run_until(8 * kSecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->store().read(2), 22u);
    EXPECT_EQ(n->store().read(3), 33u);
    EXPECT_TRUE(n->digest() == nodes_[2]->digest());
  }
}

TEST_F(RaftKvTest, MinorityPartitionStallsThenHeals) {
  build(3);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(200 * kMillisecond);
  // Isolate node 2 (both directions); the majority keeps committing.
  net_->sever(cluster_.servers[0], cluster_.servers[2]);
  net_->sever(cluster_.servers[2], cluster_.servers[0]);
  net_->sever(cluster_.servers[1], cluster_.servers[2]);
  net_->sever(cluster_.servers[2], cluster_.servers[1]);
  write_at(300 * kMillisecond, 0, 2, 22);
  sim_->run_until(2 * kSecond);
  EXPECT_EQ(nodes_[0]->store().read(2), 22u);
  EXPECT_EQ(nodes_[2]->store().read(2), 0u);
  net_->heal(cluster_.servers[0], cluster_.servers[2]);
  net_->heal(cluster_.servers[2], cluster_.servers[0]);
  net_->heal(cluster_.servers[1], cluster_.servers[2]);
  net_->heal(cluster_.servers[2], cluster_.servers[1]);
  sim_->run_until(4 * kSecond);
  EXPECT_EQ(nodes_[2]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[2]->digest() == nodes_[0]->digest());
}

}  // namespace
}  // namespace canopus::raft
