#include "raft/raft.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../testutil/harness.h"

namespace canopus::raft {
namespace {

using simnet::Cluster;
using simnet::Network;
using simnet::Simulator;
using testutil::RaftHost;
using testutil::small_cluster;

class RaftTest : public ::testing::Test {
 protected:
  /// Builds n hosts each running one member of a single group (group 0).
  void build(int n, Options opt = {}, std::uint64_t seed = 42) {
    // Tear down dependents of the previous simulator BEFORE replacing it:
    // RaftNode destructors cancel timers on the simulator they were built
    // with (rebuilds happen in e.g. DeterministicAcrossIdenticalSeeds).
    hosts_.clear();
    net_.reset();
    sim_ = std::make_unique<Simulator>(seed);
    cluster_ = small_cluster(n);
    net_ = std::make_unique<Network>(*sim_, cluster_.topo);
    hosts_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& h = hosts_[static_cast<size_t>(i)];
      h = std::make_unique<RaftHost>();
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *h);
      h->make_group(0, cluster_.servers, *sim_, opt);
    }
  }

  void start_all(NodeId bootstrap = kInvalidNode) {
    for (auto& h : hosts_)
      h->groups[0]->start(h->groups[0]->self() == bootstrap);
  }

  RaftNode& node(int i) { return *hosts_[static_cast<size_t>(i)]->groups[0]; }

  int leader_count() {
    int n = 0;
    for (auto& h : hosts_)
      if (h->groups[0]->is_leader() && !h->groups[0]->stopped()) ++n;
    return n;
  }

  int find_leader() {
    for (size_t i = 0; i < hosts_.size(); ++i)
      if (hosts_[i]->groups[0]->is_leader() && !hosts_[i]->groups[0]->stopped())
        return static_cast<int>(i);
    return -1;
  }

  std::unique_ptr<Simulator> sim_;
  Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<RaftHost>> hosts_;
};

TEST_F(RaftTest, ElectsExactlyOneLeader) {
  build(3);
  start_all();
  sim_->run_until(2 * kSecond);
  EXPECT_EQ(leader_count(), 1);
}

TEST_F(RaftTest, BootstrapLeaderSkipsElection) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  EXPECT_TRUE(node(0).is_leader());
  EXPECT_EQ(node(0).term(), 1u);
  // Followers learn the leader via heartbeats.
  EXPECT_EQ(node(1).leader_hint(), cluster_.servers[0]);
  EXPECT_EQ(node(2).leader_hint(), cluster_.servers[0]);
}

TEST_F(RaftTest, ReplicatesAndCommitsOnAllMembers) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  auto idx = node(0).propose(std::string("hello"), 5);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  sim_->run_until(100 * kMillisecond);
  for (auto& h : hosts_) {
    ASSERT_EQ(h->commits.size(), 1u);
    EXPECT_EQ(testutil::text(h->commits[0].entry.payload),
              "hello");
  }
}

TEST_F(RaftTest, FollowerRejectsProposal) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  EXPECT_FALSE(node(1).propose(std::string("nope"), 4).has_value());
}

TEST_F(RaftTest, CommitOrderIsIdentical) {
  build(5);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  for (int i = 0; i < 20; ++i)
    node(0).propose(std::string(1, static_cast<char>('a' + i)), 1);
  sim_->run_until(500 * kMillisecond);
  for (auto& h : hosts_) {
    ASSERT_EQ(h->commits.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(testutil::text(h->commits[static_cast<size_t>(i)].entry.payload),
                std::string(1, static_cast<char>('a' + i)));
    }
  }
}

TEST_F(RaftTest, LeaderFailureTriggersReelection) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  node(0).propose(std::string("committed"), 9);
  sim_->run_until(100 * kMillisecond);

  net_->crash(cluster_.servers[0]);
  node(0).stop();
  sim_->run_until(2 * kSecond);

  const int leader = find_leader();
  ASSERT_NE(leader, -1);
  EXPECT_NE(leader, 0);
  // The committed entry survived.
  ASSERT_GE(hosts_[static_cast<size_t>(leader)]->commits.size(), 1u);
  EXPECT_EQ(testutil::text(hosts_[static_cast<size_t>(leader)]->commits[0].entry.payload),
            "committed");
}

TEST_F(RaftTest, NewLeaderCompletesIncompleteReplication) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);

  // Propose, let replication start, then crash the leader before its next
  // heartbeat; with live followers the entry reaches them and the new
  // leader must preserve and commit it (§4.3's drain behaviour).
  node(0).propose(std::string("draft"), 5);
  sim_->run_until(sim_->now() + 5 * kMillisecond);
  net_->crash(cluster_.servers[0]);
  node(0).stop();
  sim_->run_until(3 * kSecond);

  const int leader = find_leader();
  ASSERT_NE(leader, -1);
  auto& commits = hosts_[static_cast<size_t>(leader)]->commits;
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(testutil::text(commits[0].entry.payload), "draft");
}

TEST_F(RaftTest, CrashedFollowerCatchesUpAfterRecovery) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);

  net_->crash(cluster_.servers[2]);
  for (int i = 0; i < 5; ++i) node(0).propose(std::string("e"), 1);
  sim_->run_until(200 * kMillisecond);
  EXPECT_EQ(hosts_[2]->commits.size(), 0u);

  net_->recover(cluster_.servers[2]);
  sim_->run_until(2 * kSecond);
  EXPECT_EQ(hosts_[2]->commits.size(), 5u);
}

TEST_F(RaftTest, MinorityCannotCommit) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);

  // Cut the leader off from both followers (but not vice versa: the leader
  // keeps believing; the entry must never commit anywhere).
  net_->crash(cluster_.servers[1]);
  net_->crash(cluster_.servers[2]);
  node(1).stop();
  node(2).stop();
  node(0).propose(std::string("lost"), 4);
  sim_->run_until(2 * kSecond);
  EXPECT_TRUE(hosts_[0]->commits.empty());
}

TEST_F(RaftTest, SingleMemberGroupCommitsImmediately) {
  build(1);
  start_all(cluster_.servers[0]);
  sim_->run_until(kMillisecond);
  node(0).propose(std::string("solo"), 4);
  EXPECT_EQ(node(0).commit_index(), 1u);
  ASSERT_EQ(hosts_[0]->commits.size(), 1u);
}

TEST_F(RaftTest, RemoveMemberShrinksQuorum) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);

  // Crash one follower; a 3-group can still commit (quorum 2).
  net_->crash(cluster_.servers[2]);
  node(2).stop();

  // Now remove it; group of 2 has quorum 2, still fine with remaining pair.
  node(0).remove_member(cluster_.servers[2]);
  node(1).remove_member(cluster_.servers[2]);
  node(0).propose(std::string("after"), 5);
  sim_->run_until(500 * kMillisecond);
  ASSERT_EQ(hosts_[0]->commits.size(), 1u);
  ASSERT_EQ(hosts_[1]->commits.size(), 1u);
}

TEST_F(RaftTest, AddMemberReplicatesHistory) {
  build(3);
  // Group of only {0,1} at first.
  std::vector<NodeId> pair{cluster_.servers[0], cluster_.servers[1]};
  for (int i = 0; i < 3; ++i) {
    auto& h = hosts_[static_cast<size_t>(i)];
    h->groups.clear();
    h->commits.clear();
    h->make_group(0, i < 2 ? pair : cluster_.servers, *sim_);
  }
  node(0).start(true);
  node(1).start(false);
  sim_->run_until(50 * kMillisecond);
  node(0).propose(std::string("old"), 3);
  sim_->run_until(100 * kMillisecond);

  // Node 2 joins; the leader backfills its log.
  node(0).add_member(cluster_.servers[2]);
  node(1).add_member(cluster_.servers[2]);
  node(2).start(false);
  sim_->run_until(2 * kSecond);
  ASSERT_GE(hosts_[2]->commits.size(), 1u);
  EXPECT_EQ(testutil::text(hosts_[2]->commits[0].entry.payload),
            "old");
}

TEST_F(RaftTest, TermIncreasesAcrossElections) {
  build(3);
  start_all(cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  const Term t0 = node(0).term();
  net_->crash(cluster_.servers[0]);
  node(0).stop();
  sim_->run_until(3 * kSecond);
  const int leader = find_leader();
  ASSERT_NE(leader, -1);
  EXPECT_GT(node(leader).term(), t0);
}

TEST_F(RaftTest, DeterministicAcrossIdenticalSeeds) {
  build(3, {}, 7);
  start_all();
  sim_->run_until(2 * kSecond);
  const int leader_a = find_leader();
  const Term term_a = node(0).term();

  build(3, {}, 7);
  start_all();
  sim_->run_until(2 * kSecond);
  EXPECT_EQ(find_leader(), leader_a);
  EXPECT_EQ(node(0).term(), term_a);
}

TEST_F(RaftTest, HeartbeatsMaintainLeaderContact) {
  Options opt;
  opt.heartbeat_interval = 10 * kMillisecond;
  build(3, opt);
  start_all(cluster_.servers[0]);
  sim_->run_until(kSecond);
  // Followers heard from the leader within ~1 heartbeat interval.
  EXPECT_LE(node(1).time_since_leader_contact(), 3 * opt.heartbeat_interval);
  EXPECT_EQ(leader_count(), 1);
  EXPECT_EQ(node(0).term(), 1u);  // no disruptive elections
}

}  // namespace
}  // namespace canopus::raft
