// Parameterized Raft sweeps: the core invariants hold at every group size.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../testutil/harness.h"

namespace canopus::raft {
namespace {

using simnet::Network;
using simnet::Simulator;
using testutil::RaftHost;
using testutil::small_cluster;

class RaftSizeTest : public ::testing::TestWithParam<int> {
 protected:
  void build(std::uint64_t seed = 42) {
    const int n = GetParam();
    sim_ = std::make_unique<Simulator>(seed);
    cluster_ = small_cluster(n);
    net_ = std::make_unique<Network>(*sim_, cluster_.topo);
    for (int i = 0; i < n; ++i) {
      hosts_.push_back(std::make_unique<RaftHost>());
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *hosts_.back());
      hosts_.back()->make_group(0, cluster_.servers, *sim_);
    }
  }

  std::unique_ptr<Simulator> sim_;
  simnet::Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<RaftHost>> hosts_;
};

TEST_P(RaftSizeTest, ElectsExactlyOneLeaderAtAnySize) {
  build();
  for (auto& h : hosts_) h->groups[0]->start(false);
  sim_->run_until(3 * kSecond);
  int leaders = 0;
  for (auto& h : hosts_)
    if (h->groups[0]->is_leader()) ++leaders;
  EXPECT_EQ(leaders, 1);
}

TEST_P(RaftSizeTest, AllMembersCommitSameSequence) {
  build();
  for (auto& h : hosts_)
    h->groups[0]->start(h->groups[0]->self() == cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);
  for (int i = 0; i < 15; ++i)
    hosts_[0]->groups[0]->propose(std::to_string(i), 2);
  sim_->run_until(2 * kSecond);
  for (auto& h : hosts_) {
    ASSERT_EQ(h->commits.size(), 15u);
    for (int i = 0; i < 15; ++i)
      EXPECT_EQ(testutil::text(h->commits[static_cast<size_t>(i)].entry.payload),
                std::to_string(i));
  }
}

TEST_P(RaftSizeTest, ToleratesMinorityFailures) {
  build();
  const int n = GetParam();
  if (n < 3) GTEST_SKIP() << "needs a tolerable minority";
  for (auto& h : hosts_)
    h->groups[0]->start(h->groups[0]->self() == cluster_.servers[0]);
  sim_->run_until(50 * kMillisecond);

  const int f = (n - 1) / 2;
  for (int i = 0; i < f; ++i) {
    net_->crash(cluster_.servers[static_cast<size_t>(n - 1 - i)]);
    hosts_[static_cast<size_t>(n - 1 - i)]->groups[0]->stop();
  }
  hosts_[0]->groups[0]->propose(std::string("survives"), 8);
  sim_->run_until(2 * kSecond);
  EXPECT_GE(hosts_[0]->commits.size(), 1u);
  EXPECT_GE(hosts_[1]->commits.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RaftSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 9));

class RbcastSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RbcastSizeTest, EveryMemberDeliversEveryBroadcast) {
  const int n = GetParam();
  Simulator sim(7);
  auto cluster = small_cluster(n);
  Network net(sim, cluster.topo);
  std::vector<std::unique_ptr<testutil::RbcastHost>> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<testutil::RbcastHost>());
    net.attach(cluster.servers[static_cast<size_t>(i)], *hosts.back());
    hosts.back()->init(cluster.servers, sim);
  }
  sim.run_until(10 * kMillisecond);
  for (int round = 0; round < 3; ++round)
    for (auto& h : hosts) h->rb->broadcast(std::string("m"), 1);
  sim.run_until(2 * kSecond);
  for (auto& h : hosts)
    EXPECT_EQ(h->delivered.size(), static_cast<size_t>(3 * n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbcastSizeTest,
                         ::testing::Values(2, 3, 4, 5, 7));

}  // namespace
}  // namespace canopus::raft
