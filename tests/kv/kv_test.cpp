#include <gtest/gtest.h>

#include "kv/store.h"
#include "kv/types.h"

namespace canopus::kv {
namespace {

TEST(Store, ReadOfMissingKeyIsZero) {
  Store s;
  EXPECT_EQ(s.read(42), 0u);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Store, ApplyWriteThenRead) {
  Store s;
  Request w;
  w.is_write = true;
  w.key = 7;
  w.value = 77;
  s.apply(w);
  EXPECT_EQ(s.read(7), 77u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Store, ApplyIgnoresReads) {
  Store s;
  Request r;
  r.is_write = false;
  r.key = 7;
  r.value = 99;
  s.apply(r);
  EXPECT_EQ(s.read(7), 0u);
}

TEST(Store, OverwriteKeepsLatest) {
  Store s;
  Request w;
  w.is_write = true;
  w.key = 1;
  for (std::uint64_t v = 1; v <= 5; ++v) {
    w.value = v;
    s.apply(w);
  }
  EXPECT_EQ(s.read(1), 5u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(CommitDigest, EqualForEqualSequences) {
  CommitDigest a, b;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Request w;
    w.id = {static_cast<ClientId>(i), i};
    w.key = i;
    w.value = i * 3;
    a.append(w);
    b.append(w);
  }
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.count(), 10u);
}

TEST(CommitDigest, OrderSensitive) {
  Request x, y;
  x.key = 1;
  x.value = 10;
  y.key = 2;
  y.value = 20;
  CommitDigest a, b;
  a.append(x);
  a.append(y);
  b.append(y);
  b.append(x);
  EXPECT_FALSE(a == b);
}

TEST(CommitDigest, ContentSensitive) {
  Request x;
  x.key = 1;
  x.value = 10;
  CommitDigest a, b;
  a.append(x);
  x.value = 11;
  b.append(x);
  EXPECT_FALSE(a == b);
}

TEST(WireSizes, BatchesScaleWithContent) {
  ClientBatch cb;
  const auto empty = cb.wire_bytes();
  cb.reqs.resize(10);
  EXPECT_EQ(cb.wire_bytes(), empty + 10 * kRequestWire);

  ReplyBatch rb;
  const auto rempty = rb.wire_bytes();
  rb.done.resize(4);
  EXPECT_EQ(rb.wire_bytes(), rempty + 4 * 24);
}

TEST(RequestId, DefaultIsInvalidClient) {
  RequestId id;
  EXPECT_EQ(id.client, kInvalidNode);
  RequestId a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace canopus::kv
