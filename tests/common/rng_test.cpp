#include <gtest/gtest.h>

#include "common/rng.h"

namespace canopus {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b();
    EXPECT_EQ(va, vb);
  }
  EXPECT_NE(Rng(5)(), c());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(1), 0u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(2);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(3);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(40.0);
  EXPECT_NEAR(sum / kN, 40.0, 1.0);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(4);
  Rng b = a.fork();
  // Streams diverge; and the fork is deterministic.
  Rng a2(4);
  Rng b2 = a2.fork();
  EXPECT_EQ(b(), b2());
  EXPECT_NE(a(), Rng(4).fork()());
}

TEST(Rng, RoughUniformityAcrossBuckets) {
  Rng r(9);
  int buckets[8] = {};
  constexpr int kN = 80'000;
  for (int i = 0; i < kN; ++i) ++buckets[r.below(8)];
  for (int b = 0; b < 8; ++b)
    EXPECT_NEAR(buckets[b], kN / 8, kN / 8 * 0.05) << b;
}

}  // namespace
}  // namespace canopus
