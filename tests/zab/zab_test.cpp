#include "zab/zab.h"

#include <gtest/gtest.h>

#include <memory>

#include "simnet/topology.h"

namespace canopus::zab {
namespace {

class ZabTest : public ::testing::Test {
 protected:
  void build(int n, Config cfg = {}) {
    sim_ = std::make_unique<simnet::Simulator>(42);
    simnet::RackConfig rc;
    rc.racks = 1;
    rc.servers_per_rack = n;
    rc.clients_per_rack = 0;
    cluster_ = simnet::build_multi_rack(rc);
    net_ = std::make_unique<simnet::Network>(*sim_, cluster_.topo);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<ZabNode>(cluster_.servers, cfg));
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *nodes_.back());
    }
  }

  void write_at(Time t, int node, std::uint64_t key, std::uint64_t val) {
    sim_->at(t, [this, node, key, val] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = val;
      r.arrival = sim_->now();
      nodes_[static_cast<size_t>(node)]->submit(r);
    });
  }

  void read_at(Time t, int node, std::uint64_t key) {
    sim_->at(t, [this, node, key] {
      kv::Request r;
      r.is_write = false;
      r.key = key;
      r.arrival = sim_->now();
      nodes_[static_cast<size_t>(node)]->submit(r);
    });
  }

  std::unique_ptr<simnet::Simulator> sim_;
  simnet::Cluster cluster_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<std::unique_ptr<ZabNode>> nodes_;
};

TEST_F(ZabTest, RolesAssigned) {
  Config cfg;
  cfg.followers = 5;
  build(9, cfg);
  EXPECT_EQ(nodes_[0]->role(), ZabNode::Role::kLeader);
  EXPECT_EQ(nodes_[1]->role(), ZabNode::Role::kFollower);
  EXPECT_EQ(nodes_[5]->role(), ZabNode::Role::kFollower);
  EXPECT_EQ(nodes_[6]->role(), ZabNode::Role::kObserver);
  EXPECT_EQ(nodes_[8]->role(), ZabNode::Role::kObserver);
}

TEST_F(ZabTest, LeaderWriteCommitsEverywhere) {
  build(9);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(1), 11u);
}

TEST_F(ZabTest, FollowerWriteForwardsToLeader) {
  build(9);
  write_at(kMillisecond, 3, 2, 22);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(2), 22u);
}

TEST_F(ZabTest, ObserverWriteForwardsToLeader) {
  build(9);
  write_at(kMillisecond, 8, 3, 33);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(3), 33u);
}

TEST_F(ZabTest, CommitOrderIdenticalOnAllNodes) {
  build(9);
  for (int i = 0; i < 20; ++i)
    write_at(kMillisecond + static_cast<Time>(i) * 3 * kMillisecond,
             i % 9, static_cast<std::uint64_t>(i % 4),
             static_cast<std::uint64_t>(i));
  sim_->run_until(2 * kSecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->committed_writes(), 20u);
    EXPECT_TRUE(n->digest() == nodes_[0]->digest());
  }
}

TEST_F(ZabTest, ReadsServedLocallyWithoutBroadcast) {
  build(9);
  write_at(kMillisecond, 0, 5, 55);
  sim_->run_until(500 * kMillisecond);
  const auto msgs_before = net_->stats().messages;
  read_at(sim_->now(), 7, 5);
  sim_->run_until(sim_->now() + 100 * kMillisecond);
  EXPECT_EQ(nodes_[7]->served_reads(), 1u);
  // A local read generates no consensus traffic (reply to a test-local
  // client id is suppressed since client == kInvalidNode).
  EXPECT_EQ(net_->stats().messages, msgs_before);
}

TEST_F(ZabTest, BatchingCoalescesWrites) {
  Config cfg;
  cfg.batch_interval = 5 * kMillisecond;
  build(9, cfg);
  int commits = 0;
  nodes_[0]->on_commit = [&](Zxid, const std::vector<kv::Request>&) {
    ++commits;
  };
  // 10 writes to the leader inside one batch window -> one proposal.
  for (int i = 0; i < 10; ++i)
    write_at(kMillisecond, 0, static_cast<std::uint64_t>(i), 1);
  sim_->run_until(kSecond);
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(nodes_[0]->committed_writes(), 10u);
}

TEST_F(ZabTest, QuorumLossStalls) {
  Config cfg;
  cfg.followers = 5;
  build(9, cfg);
  // Kill 3 of 5 followers: quorum of 6 voters (leader+5) is 4; only 3 left.
  net_->crash(cluster_.servers[1]);
  net_->crash(cluster_.servers[2]);
  net_->crash(cluster_.servers[3]);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[0]->store().read(1), 0u);
  EXPECT_EQ(nodes_[8]->store().read(1), 0u);
}

TEST_F(ZabTest, ObserversDoNotVote) {
  Config cfg;
  cfg.followers = 2;
  build(9, cfg);
  // Quorum = 2 of {leader, f1, f2}. Kill ALL observers: commits continue.
  for (int i = 3; i < 9; ++i) net_->crash(cluster_.servers[static_cast<size_t>(i)]);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[0]->store().read(1), 11u);
  EXPECT_EQ(nodes_[1]->store().read(1), 11u);
}

TEST_F(ZabTest, SmallEnsembleFollowerCountClamped) {
  Config cfg;
  cfg.followers = 5;
  build(3, cfg);  // fewer nodes than followers+1
  write_at(kMillisecond, 2, 1, 11);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(1), 11u);
}

TEST_F(ZabTest, LeaderRetransmitsProposalsLostToPartition) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  build(6, cfg);
  // Leader -> follower 5 is severed while a write commits: the follower
  // misses the Propose AND the Commit. Post-heal traffic reveals the
  // committed-zxid gap (catch-up is traffic-driven, not heartbeat-driven)
  // and the follower requests the missed range from the leader.
  net_->sever(cluster_.servers[0], cluster_.servers[5]);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(300 * kMillisecond);
  EXPECT_EQ(nodes_[0]->store().read(1), 11u);  // quorum didn't need node 5
  EXPECT_EQ(nodes_[5]->store().read(1), 0u);
  net_->heal(cluster_.servers[0], cluster_.servers[5]);
  write_at(350 * kMillisecond, 0, 2, 22);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[5]->store().read(1), 11u);
  EXPECT_EQ(nodes_[5]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[5]->digest() == nodes_[0]->digest());
}

TEST_F(ZabTest, CrashedFollowerCatchesUpAfterRecovery) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  build(6, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[5]);
    nodes_[5]->crash();
  });
  write_at(50 * kMillisecond, 0, 1, 11);
  write_at(60 * kMillisecond, 1, 2, 22);
  sim_->run_until(400 * kMillisecond);
  EXPECT_EQ(nodes_[5]->store().read(1), 0u);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[5]);
    nodes_[5]->recover();  // resyncs from the leader
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[5]->store().read(1), 11u);
  EXPECT_EQ(nodes_[5]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[5]->digest() == nodes_[0]->digest());
  EXPECT_EQ(nodes_[5]->applied_upto(), nodes_[0]->applied_upto());
}

TEST_F(ZabTest, CrashedObserverCatchesUpAfterRecovery) {
  Config cfg;
  cfg.followers = 2;
  cfg.sync_retry = 20 * kMillisecond;
  build(6, cfg);  // nodes 3..5 are observers
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[5]);
    nodes_[5]->crash();
  });
  write_at(50 * kMillisecond, 0, 1, 11);
  sim_->run_until(300 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[5]);
    nodes_[5]->recover();
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[5]->store().read(1), 11u);
  EXPECT_TRUE(nodes_[5]->digest() == nodes_[0]->digest());
}

// --- history compaction + snapshot sync (ISSUE 10) ------------------------

// A follower that misses more commits than history_depth retains must come
// back by snapshot: the leader's history ring no longer covers the zxid the
// follower asks for, so the SyncReply carries a full state image.
TEST_F(ZabTest, FollowerBeyondHistoryInstallsSnapshot) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  cfg.history_depth = 8;  // tiny ring: 20 missed writes overflow it
  build(6, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[5]);
    nodes_[5]->crash();
  });
  for (int i = 0; i < 20; ++i)
    write_at((50 + 5 * i) * kMillisecond, 0, 100 + i, 1000 + i);
  sim_->run_until(400 * kMillisecond);
  EXPECT_LE(nodes_[0]->log_entries_retained(), 8u);  // ring stayed bounded
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[5]);
    nodes_[5]->recover();
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[5]->snapshots_installed(), 1u);
  EXPECT_GE(nodes_[0]->snapshots_served(), 1u);
  EXPECT_FALSE(nodes_[5]->catch_up_failed());
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(nodes_[5]->store().read(100 + i), 1000u + i);
  EXPECT_TRUE(nodes_[5]->digest() == nodes_[0]->digest());
  EXPECT_EQ(nodes_[5]->applied_upto(), nodes_[0]->applied_upto());
}

// The regression for the silent stall: with snapshots disabled the leader
// answers the stale sync with an explicit SyncTooOld, the member fails
// LOUDLY (catch_up_failed) and stops retrying — it must never spin on a
// sync that can no longer be served.
TEST_F(ZabTest, SyncTooOldFailsLoudlyWhenSnapshotsDisabled) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  cfg.history_depth = 8;
  cfg.snapshots = false;
  build(6, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[5]);
    nodes_[5]->crash();
  });
  for (int i = 0; i < 20; ++i)
    write_at((50 + 5 * i) * kMillisecond, 0, 100 + i, 1000 + i);
  sim_->run_until(400 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[5]);
    nodes_[5]->recover();
  });
  sim_->run_until(kSecond);
  EXPECT_TRUE(nodes_[5]->catch_up_failed());
  EXPECT_EQ(nodes_[5]->snapshots_installed(), 0u);
  // The failure is terminal, not a retry loop: the survivors keep
  // committing and the failed member stays frozen where it was.
  const auto frozen = nodes_[5]->applied_upto();
  write_at(sim_->now() + 10 * kMillisecond, 0, 7, 77);
  sim_->run_until(sim_->now() + 500 * kMillisecond);
  EXPECT_EQ(nodes_[0]->store().read(7), 77u);
  EXPECT_EQ(nodes_[5]->applied_upto(), frozen);
}

// A member that fell behind by LESS than history_depth still syncs from the
// ring — no snapshot ships for a short gap.
TEST_F(ZabTest, ShortGapSyncsFromHistoryWithoutSnapshot) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  cfg.history_depth = 64;
  build(6, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[5]);
    nodes_[5]->crash();
  });
  write_at(50 * kMillisecond, 0, 1, 11);
  write_at(60 * kMillisecond, 0, 2, 22);
  sim_->run_until(300 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[5]);
    nodes_[5]->recover();
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[5]->snapshots_installed(), 0u);
  EXPECT_EQ(nodes_[5]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[5]->digest() == nodes_[0]->digest());
}

TEST_F(ZabTest, RecoveredLeaderResumesCommitPipeline) {
  Config cfg;
  cfg.followers = 5;
  cfg.sync_retry = 20 * kMillisecond;
  build(6, cfg);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(100 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->crash(cluster_.servers[0]);
    nodes_[0]->crash();
  });
  // Writes forwarded while the leader is down are lost (no election in
  // this baseline); liveness returns once the leader restarts.
  sim_->run_until(400 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[0]);
    nodes_[0]->recover();
  });
  write_at(500 * kMillisecond, 1, 2, 22);
  sim_->run_until(2 * kSecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->store().read(2), 22u);
    EXPECT_TRUE(n->digest() == nodes_[0]->digest());
  }
}

}  // namespace
}  // namespace canopus::zab
