#include "rbcast/rbcast.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../testutil/harness.h"

namespace canopus::rbcast {
namespace {

using simnet::Cluster;
using simnet::Network;
using simnet::Simulator;
using testutil::RbcastHost;
using testutil::small_cluster;

class RbcastTest : public ::testing::Test {
 protected:
  void build(int n, std::uint64_t seed = 42) {
    // Old hosts reference the old simulator; destroy them before it goes.
    hosts_.clear();
    net_.reset();
    sim_ = std::make_unique<Simulator>(seed);
    cluster_ = small_cluster(n);
    net_ = std::make_unique<Network>(*sim_, cluster_.topo);
    for (int i = 0; i < n; ++i) {
      hosts_.push_back(std::make_unique<RbcastHost>());
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *hosts_.back());
      hosts_.back()->init(cluster_.servers, *sim_);
    }
  }

  std::vector<std::string> texts(int host) const {
    std::vector<std::string> out;
    for (const auto& d : hosts_[static_cast<size_t>(host)]->delivered)
      out.push_back(testutil::text(d.payload));
    return out;
  }

  std::unique_ptr<Simulator> sim_;
  Cluster cluster_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<RbcastHost>> hosts_;
};

TEST_F(RbcastTest, BroadcastReachesAllIncludingSelf) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  hosts_[0]->rb->broadcast(std::string("m1"), 2);
  sim_->run_until(100 * kMillisecond);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(hosts_[static_cast<size_t>(i)]->delivered.size(), 1u) << i;
    EXPECT_EQ(hosts_[static_cast<size_t>(i)]->delivered[0].origin,
              cluster_.servers[0]);
    EXPECT_EQ(texts(i)[0], "m1");
  }
}

TEST_F(RbcastTest, SameOriginDeliveredInOrderEverywhere) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  for (int i = 0; i < 10; ++i)
    hosts_[1]->rb->broadcast(std::to_string(i), 2);
  sim_->run_until(500 * kMillisecond);
  for (int h = 0; h < 3; ++h) {
    auto t = texts(h);
    ASSERT_EQ(t.size(), 10u);
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(t[static_cast<size_t>(i)], std::to_string(i));
  }
}

TEST_F(RbcastTest, ConcurrentBroadcastsAllDelivered) {
  build(5);
  sim_->run_until(10 * kMillisecond);
  for (auto& h : hosts_)
    h->rb->broadcast(std::string("from") +
                         std::to_string(h->rb->members()[0]),
                     8);
  // Every node broadcast one message; all five must deliver all five.
  for (size_t i = 0; i < hosts_.size(); ++i)
    hosts_[i]->rb->broadcast("x" + std::to_string(i), 8);
  sim_->run_until(kSecond);
  for (auto& h : hosts_) EXPECT_EQ(h->delivered.size(), 10u);
}

TEST_F(RbcastTest, AgreementOnSameOriginPrefix) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  for (int i = 0; i < 5; ++i) {
    hosts_[0]->rb->broadcast("a" + std::to_string(i), 2);
    hosts_[2]->rb->broadcast("c" + std::to_string(i), 2);
  }
  sim_->run_until(kSecond);
  // Per-origin sequences are identical on every host.
  for (int h = 0; h < 3; ++h) {
    std::vector<std::string> a, c;
    for (const auto& d : hosts_[static_cast<size_t>(h)]->delivered) {
      const std::string s = testutil::text(d.payload);
      (s[0] == 'a' ? a : c).push_back(s);
    }
    ASSERT_EQ(a.size(), 5u);
    ASSERT_EQ(c.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(a[static_cast<size_t>(i)], "a" + std::to_string(i));
      EXPECT_EQ(c[static_cast<size_t>(i)], "c" + std::to_string(i));
    }
  }
}

TEST_F(RbcastTest, FailedPeerIsDetected) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  net_->crash(cluster_.servers[2]);
  hosts_[2]->rb->stop();
  sim_->run_until(3 * kSecond);
  // Survivors detect the failure of node 2's group leadership.
  for (int h = 0; h < 2; ++h) {
    ASSERT_GE(hosts_[static_cast<size_t>(h)]->failures.size(), 1u) << h;
    EXPECT_EQ(hosts_[static_cast<size_t>(h)]->failures[0],
              cluster_.servers[2]);
  }
}

TEST_F(RbcastTest, InFlightBroadcastSurvivesOriginCrash) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  // Broadcast then crash the origin 3 ms later: replication has reached the
  // followers; the replacement leader must complete delivery (§4.3).
  hosts_[0]->rb->broadcast(std::string("will-survive"), 12);
  sim_->run_until(sim_->now() + 3 * kMillisecond);
  net_->crash(cluster_.servers[0]);
  hosts_[0]->rb->stop();
  sim_->run_until(5 * kSecond);
  for (int h = 1; h < 3; ++h) {
    auto t = texts(h);
    ASSERT_EQ(t.size(), 1u) << h;
    EXPECT_EQ(t[0], "will-survive");
  }
}

TEST_F(RbcastTest, RemoveMemberKeepsBroadcastWorking) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  net_->crash(cluster_.servers[2]);
  hosts_[2]->rb->stop();
  sim_->run_until(3 * kSecond);
  hosts_[0]->rb->remove_member(cluster_.servers[2]);
  hosts_[1]->rb->remove_member(cluster_.servers[2]);
  const auto before0 = hosts_[0]->delivered.size();
  const auto before1 = hosts_[1]->delivered.size();
  hosts_[0]->rb->broadcast(std::string("post-removal"), 12);
  sim_->run_until(sim_->now() + kSecond);
  EXPECT_EQ(hosts_[0]->delivered.size(), before0 + 1);
  EXPECT_EQ(hosts_[1]->delivered.size(), before1 + 1);
}

TEST_F(RbcastTest, MajorityFailureHaltsBroadcast) {
  build(3);
  sim_->run_until(10 * kMillisecond);
  net_->crash(cluster_.servers[1]);
  net_->crash(cluster_.servers[2]);
  hosts_[1]->rb->stop();
  hosts_[2]->rb->stop();
  hosts_[0]->rb->broadcast(std::string("stuck"), 5);
  sim_->run_until(5 * kSecond);
  // 2F+1 = 3 supports F = 1; two failures halt delivery (no commit).
  EXPECT_TRUE(hosts_[0]->delivered.empty());
}

TEST_F(RbcastTest, IsMemberReflectsMembership) {
  build(2);
  EXPECT_TRUE(hosts_[0]->rb->is_member(cluster_.servers[1]));
  hosts_[0]->rb->remove_member(cluster_.servers[1]);
  EXPECT_FALSE(hosts_[0]->rb->is_member(cluster_.servers[1]));
}

}  // namespace
}  // namespace canopus::rbcast
