#include "epaxos/epaxos.h"

#include <gtest/gtest.h>

#include <memory>

#include "simnet/topology.h"

namespace canopus::epaxos {
namespace {

class EPaxosTest : public ::testing::Test {
 protected:
  void build(int n, Config cfg = {}) {
    sim_ = std::make_unique<simnet::Simulator>(42);
    simnet::RackConfig rc;
    rc.racks = 1;
    rc.servers_per_rack = n;
    rc.clients_per_rack = 0;
    cluster_ = simnet::build_multi_rack(rc);
    net_ = std::make_unique<simnet::Network>(*sim_, cluster_.topo);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(
          std::make_unique<EPaxosNode>(cluster_.servers, cfg));
      net_->attach(cluster_.servers[static_cast<size_t>(i)], *nodes_.back());
    }
  }

  void write_at(Time t, int node, std::uint64_t key, std::uint64_t val) {
    sim_->at(t, [this, node, key, val] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = val;
      r.arrival = sim_->now();
      nodes_[static_cast<size_t>(node)]->submit(r);
    });
  }

  std::unique_ptr<simnet::Simulator> sim_;
  simnet::Cluster cluster_;
  std::unique_ptr<simnet::Network> net_;
  std::vector<std::unique_ptr<EPaxosNode>> nodes_;
};

TEST_F(EPaxosTest, CommitsAndExecutesEverywhere) {
  build(3);
  write_at(kMillisecond, 0, 7, 77);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) {
    EXPECT_EQ(n->store().read(7), 77u);
    EXPECT_GE(n->executed_requests(), 1u);
  }
}

TEST_F(EPaxosTest, BatchingDelaysFlush) {
  Config cfg;
  cfg.batch_interval = 5 * kMillisecond;
  build(3, cfg);
  Time executed_at = 0;
  nodes_[0]->on_execute = [&](const std::vector<kv::Request>&) {
    if (executed_at == 0) executed_at = sim_->now();
  };
  write_at(kMillisecond, 0, 1, 1);
  sim_->run_until(kSecond);
  // Batch flushes 5 ms after submission; commit needs one in-rack RTT.
  EXPECT_GE(executed_at, 6 * kMillisecond);
  EXPECT_LE(executed_at, 8 * kMillisecond);
}

TEST_F(EPaxosTest, MultipleLeadersAllExecute) {
  build(5);
  for (int i = 0; i < 5; ++i)
    write_at(kMillisecond, i, static_cast<std::uint64_t>(i), 100 + i);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) {
    for (std::uint64_t k = 0; k < 5; ++k)
      EXPECT_EQ(n->store().read(k), 100 + k);
    EXPECT_EQ(n->executed_requests(), 5u);
  }
}

TEST_F(EPaxosTest, ReadsTravelThroughProtocol) {
  build(3);
  write_at(kMillisecond, 0, 9, 99);
  sim_->run_until(200 * kMillisecond);
  // A read goes through a full instance; it executes (counted) and can be
  // observed via on_execute at remote replicas too.
  int read_seen_remote = 0;
  nodes_[1]->on_execute = [&](const std::vector<kv::Request>& batch) {
    for (const auto& r : batch)
      if (!r.is_write) ++read_seen_remote;
  };
  sim_->at(sim_->now(), [this] {
    kv::Request r;
    r.is_write = false;
    r.key = 9;
    r.arrival = sim_->now();
    nodes_[2]->submit(r);
  });
  sim_->run_until(sim_->now() + kSecond);
  EXPECT_EQ(read_seen_remote, 1);
}

TEST_F(EPaxosTest, SingleReplicaDegenerate) {
  build(1);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[0]->store().read(1), 11u);
}

TEST_F(EPaxosTest, FastQuorumSizes) {
  // N=3: F=1, fq=2. N=5: F=2, fq=3. N=9: F=4, fq=6. (EPaxos paper.)
  build(3);
  // Validate indirectly: with 3 replicas, killing one still commits.
  net_->crash(cluster_.servers[2]);
  write_at(kMillisecond, 0, 5, 55);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[0]->store().read(5), 55u);
  EXPECT_EQ(nodes_[1]->store().read(5), 55u);
}

TEST_F(EPaxosTest, BelowFastQuorumStalls) {
  build(3);
  net_->crash(cluster_.servers[1]);
  net_->crash(cluster_.servers[2]);
  write_at(kMillisecond, 0, 5, 55);
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[0]->store().read(5), 0u);  // never committed
}

TEST_F(EPaxosTest, PartitionedReplicaRepairsMissedInstances) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  build(5, cfg);
  // Replica 4 misses everything from replica 0 during a one-way partition;
  // the commit of a later instance reveals the gap and repair fetches the
  // missed batches back.
  net_->sever(cluster_.servers[0], cluster_.servers[4]);
  write_at(kMillisecond, 0, 1, 11);
  sim_->run_until(100 * kMillisecond);
  EXPECT_EQ(nodes_[4]->store().read(1), 0u);
  net_->heal(cluster_.servers[0], cluster_.servers[4]);
  write_at(150 * kMillisecond, 0, 2, 22);  // post-heal traffic reveals gap
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[4]->store().read(1), 11u);
  EXPECT_EQ(nodes_[4]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[4]->set_digest() == nodes_[0]->set_digest());
}

TEST_F(EPaxosTest, CrashedReplicaResyncsOnRecovery) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  build(5, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[4]);
    nodes_[4]->crash();
  });
  write_at(50 * kMillisecond, 0, 1, 11);
  write_at(60 * kMillisecond, 1, 2, 22);
  sim_->run_until(300 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[4]);
    nodes_[4]->recover();  // probes peers for missed instances
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[4]->store().read(1), 11u);
  EXPECT_EQ(nodes_[4]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[4]->set_digest() == nodes_[0]->set_digest());
}

TEST_F(EPaxosTest, RecoveredLeaderRetransmitsItsOwnInFlightInstances) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  build(3, cfg);
  // The acks (not the PreAccepts) are lost, then the leader crashes with
  // its own instance in flight and recovers into an otherwise IDLE
  // cluster: no other leader ever commits, so SeqProbe replies report no
  // gaps — only the own-instance retransmit loop can finish the commit.
  net_->sever(cluster_.servers[1], cluster_.servers[0]);
  net_->sever(cluster_.servers[2], cluster_.servers[0]);
  write_at(kMillisecond, 0, 9, 99);
  sim_->run_until(50 * kMillisecond);
  EXPECT_EQ(nodes_[0]->store().read(9), 0u);  // below fast quorum
  sim_->at(sim_->now(), [this] {
    net_->crash(cluster_.servers[0]);
    nodes_[0]->crash();
  });
  sim_->run_until(60 * kMillisecond);
  net_->heal(cluster_.servers[1], cluster_.servers[0]);
  net_->heal(cluster_.servers[2], cluster_.servers[0]);
  sim_->at(100 * kMillisecond, [this] {
    net_->recover(cluster_.servers[0]);
    nodes_[0]->recover();
  });
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(9), 99u);
  EXPECT_TRUE(nodes_[0]->set_digest() == nodes_[1]->set_digest());
}

TEST_F(EPaxosTest, PreAcceptRetransmitCannotDoubleCountAcks) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  build(5, cfg);
  // Sever the leader's path to 3 of 4 peers: the one remaining ok (plus
  // the leader's implicit vote) is below the fast quorum of 3, and the
  // retransmit path must not commit by counting a re-acked peer twice.
  net_->sever(cluster_.servers[0], cluster_.servers[2]);
  net_->sever(cluster_.servers[0], cluster_.servers[3]);
  net_->sever(cluster_.servers[0], cluster_.servers[4]);
  write_at(kMillisecond, 0, 5, 55);
  sim_->run_until(500 * kMillisecond);  // many retransmit rounds
  EXPECT_EQ(nodes_[0]->store().read(5), 0u);  // still below fast quorum
  // Heal: the next retransmission completes the quorum.
  net_->heal(cluster_.servers[0], cluster_.servers[2]);
  net_->heal(cluster_.servers[0], cluster_.servers[3]);
  net_->heal(cluster_.servers[0], cluster_.servers[4]);
  sim_->run_until(kSecond);
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(5), 55u);
}

TEST_F(EPaxosTest, SetDigestOrderInsensitive) {
  kv::SetDigest a, b;
  kv::Request r1, r2;
  r1.is_write = r2.is_write = true;
  r1.key = 1, r1.value = 11;
  r2.key = 2, r2.value = 22;
  a.append(r1);
  a.append(r2);
  b.append(r2);
  b.append(r1);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.count(), 2u);
  kv::SetDigest c;
  c.append(r1);
  EXPECT_FALSE(a == c);
}

// --- repair ring + snapshot escalation (ISSUE 10) -------------------------

// The regression for the silent catch-up stall: a replica crashes long
// enough for the survivors to retire more instances than the repair ring
// (repair_window = 4) retains. Gap repair cannot fetch those instances from
// anyone, so it must escalate to a snapshot — and converge.
TEST_F(EPaxosTest, LongCrashedReplicaEscalatesToSnapshot) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  cfg.repair_window = 4;
  build(5, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[4]);
    nodes_[4]->crash();
  });
  for (int i = 0; i < 24; ++i)  // 24 instances >> window of 4
    write_at((50 + 5 * i) * kMillisecond, i % 4, 100 + i, 1000 + i);
  sim_->run_until(500 * kMillisecond);
  EXPECT_LE(nodes_[0]->log_entries_retained(), 4u);  // ring stayed bounded
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[4]);
    nodes_[4]->recover();
  });
  sim_->run_until(2 * kSecond);
  EXPECT_GE(nodes_[4]->snapshots_installed(), 1u);
  EXPECT_EQ(nodes_[4]->unrecoverable_gaps(), 0u);
  for (int i = 0; i < 24; ++i)
    EXPECT_EQ(nodes_[4]->store().read(100 + i), 1000u + i);
  EXPECT_TRUE(nodes_[4]->set_digest() == nodes_[0]->set_digest());
}

// With snapshots disabled the same gap becomes an explicit unrecoverable
// outcome: the replica counts it and stops asking — no endless CommitFull
// retry loop, and the survivors keep executing.
TEST_F(EPaxosTest, BeyondWindowGapIsLoudlyUnrecoverableWithoutSnapshots) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  cfg.repair_window = 4;
  cfg.snapshots = false;
  build(5, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[4]);
    nodes_[4]->crash();
  });
  for (int i = 0; i < 24; ++i)
    write_at((50 + 5 * i) * kMillisecond, i % 4, 100 + i, 1000 + i);
  sim_->run_until(500 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[4]);
    nodes_[4]->recover();
  });
  sim_->run_until(2 * kSecond);
  EXPECT_GE(nodes_[4]->unrecoverable_gaps(), 1u);
  EXPECT_EQ(nodes_[4]->snapshots_installed(), 0u);
  // Survivors are unaffected by the failed repair.
  write_at(sim_->now() + 10 * kMillisecond, 0, 7, 77);
  sim_->run_until(sim_->now() + 500 * kMillisecond);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(nodes_[i]->store().read(7), 77u);
}

// A short outage — fewer missed instances than the window — repairs from
// the ring as before; no snapshot ships.
TEST_F(EPaxosTest, ShortGapRepairsFromRingWithoutSnapshot) {
  Config cfg;
  cfg.repair_retry = 20 * kMillisecond;
  cfg.repair_window = 64;
  build(5, cfg);
  sim_->at(10 * kMillisecond, [this] {
    net_->crash(cluster_.servers[4]);
    nodes_[4]->crash();
  });
  write_at(50 * kMillisecond, 0, 1, 11);
  write_at(60 * kMillisecond, 1, 2, 22);
  sim_->run_until(300 * kMillisecond);
  sim_->at(sim_->now(), [this] {
    net_->recover(cluster_.servers[4]);
    nodes_[4]->recover();
  });
  sim_->run_until(kSecond);
  EXPECT_EQ(nodes_[4]->snapshots_installed(), 0u);
  EXPECT_EQ(nodes_[4]->store().read(1), 11u);
  EXPECT_EQ(nodes_[4]->store().read(2), 22u);
  EXPECT_TRUE(nodes_[4]->set_digest() == nodes_[0]->set_digest());
}

TEST_F(EPaxosTest, InterferingInstancesExecuteInDependencyOrder) {
  Config cfg;
  cfg.interference = 1.0;  // every instance conflicts
  build(3, cfg);
  for (int i = 0; i < 4; ++i)
    write_at(kMillisecond + static_cast<Time>(i) * 20 * kMillisecond, 0, 1,
             static_cast<std::uint64_t>(i));
  sim_->run_until(2 * kSecond);
  // Same leader, sequential dependencies: final value is the last write.
  for (auto& n : nodes_) EXPECT_EQ(n->store().read(1), 3u);
}

}  // namespace
}  // namespace canopus::epaxos
