// Test scaffolding for whole-cluster Canopus runs.
#pragma once

#include <memory>
#include <vector>

#include "canopus/node.h"
#include "simnet/network.h"
#include "simnet/topology.h"

namespace canopus::testutil {

/// A ready-to-run Canopus deployment over a multi-rack (single-DC) or
/// multi-DC topology: one super-leaf per rack/DC.
class CanopusCluster {
 public:
  /// Single-datacenter: `racks` super-leaves of `per_rack` nodes each.
  CanopusCluster(int racks, int per_rack, core::Config cfg = {},
                 std::uint64_t seed = 42, int arity = 0)
      : sim_(seed) {
    simnet::RackConfig rc;
    rc.racks = racks;
    rc.servers_per_rack = per_rack;
    rc.clients_per_rack = 0;
    cluster_ = simnet::build_multi_rack(rc);
    init(cfg, arity);
  }

  /// Multi-datacenter with the paper's Table 1 latencies: one super-leaf of
  /// `per_dc` nodes per datacenter.
  static CanopusCluster multi_dc(int dcs, int per_dc, core::Config cfg = {},
                                 std::uint64_t seed = 42) {
    simnet::WanConfig wc;
    wc.servers_per_dc.assign(static_cast<std::size_t>(dcs), per_dc);
    wc.rtt_ms = simnet::table1_rtt_ms();
    return CanopusCluster(simnet::build_multi_dc(wc), cfg, seed);
  }

  CanopusCluster(simnet::Cluster cluster, core::Config cfg,
                 std::uint64_t seed)
      : sim_(seed), cluster_(std::move(cluster)) {
    init(cfg, 0);
  }

  simnet::Simulator& sim() { return sim_; }
  simnet::Network& net() { return *net_; }
  core::CanopusNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }
  NodeId server(std::size_t i) const { return cluster_.servers[i]; }
  const std::shared_ptr<const lot::Lot>& lot() const { return lot_; }

  /// Submits a write to node i at simulated time t.
  void write_at(Time t, std::size_t i, std::uint64_t key, std::uint64_t val,
                ClientId client = kInvalidNode, std::uint64_t seq = 0) {
    sim_.at(t, [this, i, key, val, client, seq] {
      kv::Request r;
      r.id = {client, seq};
      r.is_write = true;
      r.key = key;
      r.value = val;
      r.arrival = sim_.now();
      nodes_[i]->submit(r);
    });
  }

  /// Submits a read to node i at simulated time t.
  void read_at(Time t, std::size_t i, std::uint64_t key,
               ClientId client = kInvalidNode, std::uint64_t seq = 0) {
    sim_.at(t, [this, i, key, client, seq] {
      kv::Request r;
      r.id = {client, seq};
      r.is_write = false;
      r.key = key;
      r.arrival = sim_.now();
      nodes_[i]->submit(r);
    });
  }

  /// Crash node i (both network and protocol sides).
  void crash(std::size_t i) {
    net_->crash(server(i));
    nodes_[i]->crash();
  }

  /// True when all live (non-crashed) nodes share the same commit digest.
  bool all_agree() const {
    const kv::CommitDigest* first = nullptr;
    for (const auto& n : nodes_) {
      if (!net_->is_up(n->node_id())) continue;
      if (first == nullptr) {
        first = &n->digest();
      } else if (!(*first == n->digest())) {
        return false;
      }
    }
    return true;
  }

 private:
  void init(const core::Config& cfg, int arity) {
    net_ = std::make_unique<simnet::Network>(sim_, cluster_.topo);

    lot::LotConfig lc;
    lc.arity = arity;
    int current_group = -1;
    for (NodeId s : cluster_.servers) {
      const int g = cluster_.topo.dc_of(s) * 1'000'000 +
                    cluster_.topo.rack_of(s);
      if (g != current_group) {
        lc.super_leaves.emplace_back();
        current_group = g;
      }
      lc.super_leaves.back().push_back(s);
    }
    lot_ = std::make_shared<const lot::Lot>(lot::Lot::build(lc));

    for (NodeId s : cluster_.servers) {
      nodes_.push_back(std::make_unique<core::CanopusNode>(lot_, cfg));
      net_->attach(s, *nodes_.back());
    }
  }

  simnet::Simulator sim_;
  simnet::Cluster cluster_;
  std::unique_ptr<simnet::Network> net_;
  std::shared_ptr<const lot::Lot> lot_;
  std::vector<std::unique_ptr<core::CanopusNode>> nodes_;
};

}  // namespace canopus::testutil
