// Shared test scaffolding: small clusters and protocol-hosting processes.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "raft/raft.h"
#include "rbcast/rbcast.h"
#include "simnet/network.h"
#include "simnet/payload_testing.h"
#include "simnet/topology.h"

namespace canopus::testutil {

/// Checked accessor for string test payloads: a wrong-typed or empty
/// payload fails the expectation instead of dereferencing null.
inline std::string text(const simnet::Payload& p) {
  const std::string* s = p.as<std::string>();
  EXPECT_NE(s, nullptr) << "payload does not carry a std::string";
  return s ? *s : std::string("<non-string payload>");
}

/// A single-rack cluster of `n` server machines (no clients).
inline simnet::Cluster small_cluster(int n) {
  simnet::RackConfig cfg;
  cfg.racks = 1;
  cfg.servers_per_rack = n;
  cfg.clients_per_rack = 0;
  return simnet::build_multi_rack(cfg);
}

/// Process hosting one or more RaftNodes, routing wire messages by group.
class RaftHost : public simnet::Process {
 public:
  /// Creates a group on this host. Returns the node (owned by the host).
  raft::RaftNode& make_group(raft::GroupId group, std::vector<NodeId> members,
                             simnet::Simulator& sim, raft::Options opt = {}) {
    raft::RaftNode::Callbacks cb;
    cb.send = [this](NodeId dst, const raft::WireMsg& m) {
      send(dst, m.wire_bytes(), m);
    };
    cb.on_commit = [this, group](raft::LogIndex idx, const raft::LogEntry& e) {
      commits.push_back({group, idx, e});
      if (on_commit) on_commit(group, idx, e);
    };
    cb.on_leader_change = [this, group](NodeId leader, raft::Term term) {
      leader_changes.push_back({group, leader, term});
    };
    auto node = std::make_unique<raft::RaftNode>(group, node_id(),
                                                 std::move(members), sim,
                                                 std::move(cb), opt);
    raft::RaftNode& ref = *node;
    groups[group] = std::move(node);
    return ref;
  }

  void on_message(const simnet::Message& m) override {
    if (const auto* w = m.as<raft::WireMsg>()) {
      auto it = groups.find(w->group);
      if (it != groups.end()) it->second->on_message(m.src(), *w);
    }
  }

  struct Commit {
    raft::GroupId group;
    raft::LogIndex index;
    raft::LogEntry entry;
  };
  struct LeaderChange {
    raft::GroupId group;
    NodeId leader;
    raft::Term term;
  };

  std::unordered_map<raft::GroupId, std::unique_ptr<raft::RaftNode>> groups;
  std::vector<Commit> commits;
  std::vector<LeaderChange> leader_changes;
  std::function<void(raft::GroupId, raft::LogIndex, const raft::LogEntry&)>
      on_commit;
};

/// Process hosting a super-leaf ReliableBroadcast endpoint.
class RbcastHost : public simnet::Process {
 public:
  void init(std::vector<NodeId> members, simnet::Simulator& sim,
            raft::Options opt = {}) {
    rbcast::ReliableBroadcast::Callbacks cb;
    cb.send = [this](NodeId dst, const raft::WireMsg& m) {
      send(dst, m.wire_bytes(), m);
    };
    cb.deliver = [this](NodeId origin, const simnet::Payload& payload) {
      delivered.push_back({origin, payload});
    };
    cb.on_peer_failed = [this](NodeId failed) {
      failures.push_back(failed);
    };
    rb = std::make_unique<rbcast::ReliableBroadcast>(
        node_id(), std::move(members), sim, std::move(cb), opt);
  }

  void on_start() override { rb->start(); }

  void on_message(const simnet::Message& m) override {
    if (const auto* w = m.as<raft::WireMsg>()) rb->on_message(m.src(), *w);
  }

  struct Delivery {
    NodeId origin;
    simnet::Payload payload;
  };

  std::unique_ptr<rbcast::ReliableBroadcast> rb;
  std::vector<Delivery> delivered;
  std::vector<NodeId> failures;
};

}  // namespace canopus::testutil
