#!/usr/bin/env python3
"""Compare a bench_micro run against a committed baseline.

Usage: compare_bench.py CURRENT.json BASELINE.json [--threshold=0.20]

Both files are google-benchmark JSON (bench_micro's output). Benchmarks are
matched by name and compared on real_time; a WARNING line is printed for
every benchmark whose time regressed by more than the threshold (default
20%), and an improvement note for ones that got faster by the same margin.

The exit code is always 0: CI runners differ wildly from the machine that
produced the committed baseline, so regressions here are a prompt for a
human look (and a baseline refresh in the same PR that knowingly changes
performance), not a gate.
"""
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        sys.exit(2)
    if "benchmarks" not in doc:
        print(f"{path}: not google-benchmark JSON", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc["benchmarks"]:
        # Aggregate reports (mean/median/stddev) share the base name; prefer
        # the plain entry, which is what bench_micro emits by default.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.20
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    current, baseline = load(args[0]), load(args[1])

    regressions = 0
    for name, (base_time, unit) in sorted(baseline.items()):
        if name not in current:
            print(f"note: {name}: missing from current run")
            continue
        cur_time, cur_unit = current[name]
        if cur_unit != unit:
            print(f"note: {name}: time_unit changed {unit} -> {cur_unit}")
            continue
        if base_time <= 0:
            continue
        ratio = cur_time / base_time
        if ratio > 1.0 + threshold:
            regressions += 1
            print(f"WARNING: {name}: {base_time:.0f} -> {cur_time:.0f} {unit} "
                  f"({ratio:.2f}x slower than baseline)")
        elif ratio < 1.0 - threshold:
            print(f"improved: {name}: {base_time:.0f} -> {cur_time:.0f} {unit} "
                  f"({1 / ratio:.2f}x faster than baseline)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name}: new benchmark (no baseline)")

    if regressions == 0:
        print(f"compare_bench: no regressions beyond {threshold:.0%}")
    else:
        print(f"compare_bench: {regressions} benchmark(s) regressed beyond "
              f"{threshold:.0%} — investigate, or refresh the baseline if "
              "the change is intended")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
