#!/usr/bin/env python3
"""Compare a bench run against a committed baseline.

Usage: compare_bench.py CURRENT.json BASELINE.json [--threshold=0.20]

Two formats are supported, detected from the files themselves:

* google-benchmark JSON (bench_micro): benchmarks are matched by name and
  compared on real_time.
* canopus-bench-v1 JSON (the figure benches, e.g. BENCH_chaos.json):
  series are matched by name and compared on their scalars; measurement
  points are compared on throughput. Simulated results are deterministic
  per seed, so any drift here means behaviour changed — a refreshed
  baseline belongs in the same PR as the change that moved it.

A WARNING line is printed for every value that regressed/drifted by more
than the threshold (default 20%; exact-match fields like violation counts
always warn on any difference), and an improvement note for wall-clock
values that got faster by the same margin.

The exit code is always 0: CI runners differ wildly from the machine that
produced the committed baseline, so regressions here are a prompt for a
human look (and a baseline refresh in the same PR that knowingly changes
performance), not a gate.
"""
import json
import sys


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot read: {e}", file=sys.stderr)
        sys.exit(2)


def load_micro(path, doc):
    if "benchmarks" not in doc:
        print(f"{path}: not google-benchmark JSON", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc["benchmarks"]:
        # Aggregate reports (mean/median/stddev) share the base name; prefer
        # the plain entry, which is what bench_micro emits by default.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def compare_micro(current, baseline, threshold):
    regressions = 0
    for name, (base_time, unit) in sorted(baseline.items()):
        if name not in current:
            print(f"note: {name}: missing from current run")
            continue
        cur_time, cur_unit = current[name]
        if cur_unit != unit:
            print(f"note: {name}: time_unit changed {unit} -> {cur_unit}")
            continue
        if base_time <= 0:
            continue
        ratio = cur_time / base_time
        if ratio > 1.0 + threshold:
            regressions += 1
            print(f"WARNING: {name}: {base_time:.0f} -> {cur_time:.0f} {unit} "
                  f"({ratio:.2f}x slower than baseline)")
        elif ratio < 1.0 - threshold:
            print(f"improved: {name}: {base_time:.0f} -> {cur_time:.0f} {unit} "
                  f"({1 / ratio:.2f}x faster than baseline)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name}: new benchmark (no baseline)")
    return regressions


# Scalars compared EXACTLY: integer-valued simulated results, which are
# pure functions of the seed for a given platform's libm (the Poisson and
# exponential draws go through exp/log, so a different libm could shift a
# draw by an ULP and move an integer counter by a step — the same caveat
# the golden-digest tests carry). Baselines are refreshed on the platform
# CI runs on; the comparison is warn-only for exactly this reason.
# Float-valued simulated results (availability, recovery_ms, throughput)
# stay threshold-compared.
EXACT_SCALAR_HINTS = ("violation", "fault_events", "committed", "acked",
                      "comparable", "completed", "digests", "recovered",
                      "observed_reads", "client_failed", "trials",
                      "stalled", "progressed")


def figure_scalars(doc):
    """Flattens a canopus-bench-v1 doc to {name: value} comparable pairs."""
    out = {}
    for k, v in doc.get("scalars", {}).items():
        out[f"scalars.{k}"] = v
    for s in doc.get("series", []):
        prefix = f"series[{s['name']}]"
        for k, v in s.get("scalars", {}).items():
            out[f"{prefix}.{k}"] = v
        for label, m in s.get("points", {}).items():
            out[f"{prefix}.points[{label}].throughput"] = m["throughput_req_s"]
    return out


def compare_figure(current, baseline, threshold):
    regressions = 0
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"note: {name}: missing from current run")
            continue
        cur = current[name]
        exact = any(h in name for h in EXACT_SCALAR_HINTS)
        if exact:
            if cur != base:
                regressions += 1
                print(f"WARNING: {name}: {base} -> {cur} "
                      "(simulated result drifted; behaviour changed)")
            continue
        if base == 0:
            # No ratio to take, but appearing from zero is still drift —
            # count it (a 'note' alone buried e.g. availability 0 -> 0.4).
            if abs(cur) > 1e-12:
                regressions += 1
                print(f"WARNING: {name}: {base} -> {cur} "
                      "(baseline was zero; value appeared)")
            continue
        ratio = cur / base
        if not (1.0 - threshold <= ratio <= 1.0 + threshold):
            regressions += 1
            print(f"WARNING: {name}: {base:.6g} -> {cur:.6g} "
                  f"({ratio:.2f}x baseline)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name}: new value (no baseline)")
    return regressions


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 0.20
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    cur_doc, base_doc = load_doc(args[0]), load_doc(args[1])

    cur_is_fig = isinstance(cur_doc, dict) and \
        cur_doc.get("schema") == "canopus-bench-v1"
    base_is_fig = isinstance(base_doc, dict) and \
        base_doc.get("schema") == "canopus-bench-v1"
    if cur_is_fig != base_is_fig:
        print(f"cannot compare: {args[0]} and {args[1]} have different "
              "schemas", file=sys.stderr)
        return 2
    if cur_is_fig:
        regressions = compare_figure(figure_scalars(cur_doc),
                                     figure_scalars(base_doc), threshold)
    else:
        regressions = compare_micro(load_micro(args[0], cur_doc),
                                    load_micro(args[1], base_doc), threshold)

    if regressions == 0:
        print(f"compare_bench: no regressions beyond {threshold:.0%}")
    else:
        print(f"compare_bench: {regressions} value(s) regressed/drifted "
              f"beyond {threshold:.0%} — investigate, or refresh the "
              "baseline if the change is intended")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
