#!/usr/bin/env python3
"""Validate BENCH_*.json files emitted by the figure benches.

Usage: validate_bench_json.py FILE [FILE ...]

Checks the canopus-bench-v1 schema (see bench/bench_util.h and
EXPERIMENTS.md): top-level metadata, and for every series the attrs /
scalars / sweep / max / points shapes. Exits nonzero on the first
violation. BENCH_micro.json (google-benchmark's own format) is validated
separately with a lighter check.
"""
import json
import sys

MEASUREMENT_KEYS = {
    "offered_req_s": (int, float),
    "throughput_req_s": (int, float),
    "median_ns": int,
    "p99_ns": int,
    "mean_ns": (int, float),
    "completed": int,
    "failed": int,
}

# BENCH_chaos.json carries the invariant-audit verdict: every series is one
# (system, intensity, seed) grid point and must say how the audit went.
CHAOS_SERIES_ATTRS = ("system", "intensity", "seed")
CHAOS_SERIES_SCALARS = (
    "violations", "fault_events", "acked_writes", "observed_reads",
    "committed_writes", "commit_spread", "comparable_nodes", "client_failed",
    "recovered", "recovery_ms", "snapshots_installed", "log_entries_retained",
    "retention_ok", "availability_storm", "availability_after",
)
CHAOS_SERIES_POINTS = ("before", "storm", "after")

# BENCH_failures.json / BENCH_failures_wan.json: one series per
# (system, scenario) with the availability/safety verdict plus the
# compaction/state-transfer verdict (snapshots installed during catch-up,
# peak retained log vs the configured bound).
FAILURES_SERIES_ATTRS = ("system", "scenario")
FAILURES_SERIES_SCALARS = (
    "digests_agree", "stalled_during", "progressed_after",
    "committed_writes", "comparable_nodes", "commit_spread",
    "snapshots_installed", "log_entries_retained", "retention_ok",
    "availability_during", "failover_ms",
)
FAILURES_SERIES_POINTS = ("before", "during", "after")

# BENCH_storm_*.json (canopus-storm-v1): a minimized fault schedule emitted
# by bench_chaos --minimize, replayable from its grid coordinates alone.
STORM_KEYS = (
    ("schema", str), ("system", str), ("intensity", str), ("seed", int),
    ("offered_rate", (int, float)), ("reproduced", bool),
    ("original_events", int), ("minimal_events", int), ("probes", int),
    ("duration_shrinks", int), ("events", list),
)
STORM_EVENT_KINDS = frozenset((
    "crash", "recover", "sever", "heal", "cpu_slow", "cpu_normal",
    "flap_start", "flap_stop", "dup_start", "dup_stop", "reorder_start",
    "reorder_stop", "skew_set", "skew_clear",
))

# BENCH_pdes.json carries the sharded-kernel scaling study: every series is
# one (topology, sim_threads) point, diffed against its serial twin.
PDES_SERIES_SCALARS = (
    "sim_threads", "wall_seconds", "speedup_vs_serial", "events",
    "committed_writes", "identical_to_serial",
)
PDES_FIGURE_SCALARS = (
    "fig6_speedup_at_4_threads", "fig6_serial_wall_seconds",
    "stress_speedup_at_4_threads", "stress_serial_wall_seconds",
    "hardware_threads", "all_identical_to_serial",
)

# BENCH_shard.json: throughput vs shard count for the sharded multi-group
# deployment. Scaling series carry (system, dist) attrs and one "agg"
# point; chaos series carry the per-group audit verdict.
SHARD_SCALING_SCALARS = (
    "shards", "committed_writes", "redirects", "retries", "client_failed",
    "sessions", "groups_agree", "max_group_share",
)
SHARD_CHAOS_SCALARS = (
    "shards", "violations", "fault_events", "acked_writes",
    "committed_writes", "redirects", "retries", "client_failed",
    "recovered", "recovery_ms",
)
SHARD_FIGURE_SCALARS = (
    "scaling_ok_canopus", "scaling_ok_raft", "violations_total",
)

# BENCH_runtime.json: the real-thread backend (DESIGN.md Sec 12). Series
# come in three planes — mailbox fabric throughput, payload-size
# calibration, and per-protocol scripted commits — and the figure scalars
# carry the zero-steady-state-alloc gate plus the cost-model fit.
RUNTIME_FIGURE_SCALARS = (
    "steady_window_msgs", "steady_window_allocs", "steady_allocs_per_msg",
    "calibrated_hop_fixed_ns", "calibrated_ns_per_byte",
    "sim_default_ns_per_byte", "sim_default_hop_fixed_ns",
)
RUNTIME_PROTOCOL_SCALARS = (
    "script_k", "committed_min", "completed", "commit_p50_ns",
    "commit_p99_ns", "messages", "wall_seconds",
)


def fail(path, msg):
    print(f"{path}: INVALID: {msg}", file=sys.stderr)
    sys.exit(1)


def check_measurement(path, m, where):
    if not isinstance(m, dict):
        fail(path, f"{where}: measurement is not an object")
    for key, types in MEASUREMENT_KEYS.items():
        if key not in m:
            fail(path, f"{where}: missing measurement key '{key}'")
        if not isinstance(m[key], types) or isinstance(m[key], bool):
            fail(path, f"{where}: '{key}' has wrong type {type(m[key])}")
    if m["completed"] < 0 or m["median_ns"] < 0 or m["failed"] < 0:
        fail(path, f"{where}: negative count/latency")


def check_figure(path, doc):
    for key, typ in [("schema", str), ("figure", str), ("title", str),
                     ("paper_ref", str), ("mode", str), ("threads", int),
                     ("wall_clock_seconds", (int, float)),
                     ("events_processed", int),
                     ("events_per_second", (int, float)),
                     ("heap_allocations", int),
                     ("allocs_per_event", (int, float)),
                     ("scalars", dict), ("series", list)]:
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")
        if not isinstance(doc[key], typ):
            fail(path, f"'{key}' has wrong type {type(doc[key])}")
    if doc["schema"] != "canopus-bench-v1":
        fail(path, f"unknown schema '{doc['schema']}'")
    if doc["mode"] not in ("quick", "full"):
        fail(path, f"unknown mode '{doc['mode']}'")
    if doc["threads"] < 1:
        fail(path, "threads < 1")
    if doc["events_processed"] < 0 or doc["heap_allocations"] < 0:
        fail(path, "negative perf counter")
    for name, value in doc["scalars"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(path, f"figure scalar '{name}' is not a number")
    if not doc["series"]:
        fail(path, "no series recorded")
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        for key, typ in [("name", str), ("attrs", dict), ("scalars", dict),
                         ("sweep", list), ("points", dict)]:
            if key not in s:
                fail(path, f"{where}: missing key '{key}'")
            if not isinstance(s[key], typ):
                fail(path, f"{where}: '{key}' has wrong type")
        for k, v in s["attrs"].items():
            if not isinstance(v, str):
                fail(path, f"{where}: attr '{k}' is not a string")
        for k, v in s["scalars"].items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                fail(path, f"{where}: scalar '{k}' is not a number")
        for j, m in enumerate(s["sweep"]):
            check_measurement(path, m, f"{where}.sweep[{j}]")
        if s["max"] is not None:
            check_measurement(path, s["max"], f"{where}.max")
        for label, m in s["points"].items():
            check_measurement(path, m, f"{where}.points[{label}]")
    if doc["figure"] in ("chaos", "chaos_wan"):
        check_chaos(path, doc)
    if doc["figure"] in ("failures", "failures_wan"):
        check_failures(path, doc)
    if doc["figure"] == "pdes":
        check_pdes(path, doc)
    if doc["figure"] == "shard":
        check_shard(path, doc)
    if doc["figure"] == "runtime":
        check_runtime(path, doc)


def check_chaos(path, doc):
    """BENCH_chaos.json: per-grid-point audit verdicts must be present and
    sane (zero violations is the bench's own exit gate; the schema checks
    the verdict is *reported*, not what it is)."""
    if "violations_total" not in doc["scalars"]:
        fail(path, "chaos: missing figure scalar 'violations_total'")
    total = 0
    breaches = 0
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        for a in CHAOS_SERIES_ATTRS:
            if a not in s["attrs"]:
                fail(path, f"{where}: chaos series missing attr '{a}'")
        for k in CHAOS_SERIES_SCALARS:
            if k not in s["scalars"]:
                fail(path, f"{where}: chaos series missing scalar '{k}'")
        if s["scalars"]["violations"] < 0:
            fail(path, f"{where}: negative violation count")
        if not (0 <= s["scalars"]["recovered"] <= 1):
            fail(path, f"{where}: 'recovered' must be 0 or 1")
        if s["scalars"]["recovered"] == 0 and s["scalars"]["recovery_ms"] != -1:
            fail(path, f"{where}: unrecovered trial must report recovery_ms=-1")
        if s["scalars"]["retention_ok"] not in (0, 1):
            fail(path, f"{where}: 'retention_ok' must be 0 or 1")
        for p in CHAOS_SERIES_POINTS:
            if p not in s["points"]:
                fail(path, f"{where}: chaos series missing point '{p}'")
        total += s["scalars"]["violations"]
        breaches += 1 if s["scalars"]["retention_ok"] == 0 else 0
    if total != doc["scalars"]["violations_total"]:
        fail(path, "chaos: violations_total does not match the series sum")
    if "retention_breaches" not in doc["scalars"]:
        fail(path, "chaos: missing figure scalar 'retention_breaches'")
    if breaches != doc["scalars"]["retention_breaches"]:
        fail(path, "chaos: retention_breaches does not match the series")


def check_failures(path, doc):
    """BENCH_failures.json: per-(system, scenario) availability + safety
    plus the ISSUE 10 compaction verdict. The schema checks the verdict is
    reported; the bench itself gates on its value."""
    if "safety_violations" not in doc["scalars"]:
        fail(path, "failures: missing figure scalar 'safety_violations'")
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        for a in FAILURES_SERIES_ATTRS:
            if a not in s["attrs"]:
                fail(path, f"{where}: failures series missing attr '{a}'")
        for k in FAILURES_SERIES_SCALARS:
            if k not in s["scalars"]:
                fail(path, f"{where}: failures series missing scalar '{k}'")
        for k in ("digests_agree", "stalled_during", "progressed_after",
                  "retention_ok"):
            if s["scalars"][k] not in (0, 1):
                fail(path, f"{where}: '{k}' must be 0 or 1")
        if s["scalars"]["log_entries_retained"] < 0:
            fail(path, f"{where}: negative log_entries_retained")
        for p in FAILURES_SERIES_POINTS:
            if p not in s["points"]:
                fail(path, f"{where}: failures series missing point '{p}'")
    if doc["figure"] == "failures":
        names = {s["attrs"]["scenario"] for s in doc["series"]}
        if "long_downtime" not in names:
            fail(path, "failures: suite lost the long_downtime scenario")


def check_pdes(path, doc):
    """BENCH_pdes.json: the scaling study's cardinal claim is serial
    bit-identity — the schema requires every point to *report* the diff
    verdict (the bench itself exits nonzero on a mismatch)."""
    for k in PDES_FIGURE_SCALARS:
        if k not in doc["scalars"]:
            fail(path, f"pdes: missing figure scalar '{k}'")
    if doc["scalars"]["hardware_threads"] < 0:
        fail(path, "pdes: negative hardware_threads")
    if doc["scalars"]["all_identical_to_serial"] not in (0, 1):
        fail(path, "pdes: 'all_identical_to_serial' must be 0 or 1")
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        if "topology" not in s["attrs"]:
            fail(path, f"{where}: pdes series missing attr 'topology'")
        for k in PDES_SERIES_SCALARS:
            if k not in s["scalars"]:
                fail(path, f"{where}: pdes series missing scalar '{k}'")
        if s["scalars"]["sim_threads"] < 1:
            fail(path, f"{where}: sim_threads < 1")
        if s["scalars"]["wall_seconds"] < 0:
            fail(path, f"{where}: negative wall_seconds")
        if s["scalars"]["identical_to_serial"] not in (0, 1):
            fail(path, f"{where}: 'identical_to_serial' must be 0 or 1")
        if (s["scalars"]["sim_threads"] > 1
                and s["scalars"]["identical_to_serial"] != 1):
            fail(path, f"{where}: sharded run diverged from its serial twin")


def check_shard(path, doc):
    """BENCH_shard.json: the sharded-consensus capstone. Every series is
    either a (system, dist, shards) scaling point with an "agg" point or a
    per-system chaos verdict with before/storm/after; the figure must carry
    the scaling-gate and violation-total scalars the CI gate keys on."""
    for k in SHARD_FIGURE_SCALARS:
        if k not in doc["scalars"]:
            fail(path, f"shard: missing figure scalar '{k}'")
    for k in ("scaling_ok_canopus", "scaling_ok_raft"):
        if doc["scalars"][k] not in (0, 1):
            fail(path, f"shard: '{k}' must be 0 or 1")
    total = 0
    saw_scaling = saw_chaos = False
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        if "system" not in s["attrs"]:
            fail(path, f"{where}: shard series missing attr 'system'")
        if s["scalars"].get("shards", 0) < 1:
            fail(path, f"{where}: shards < 1")
        if "agg" in s["points"]:  # scaling point
            saw_scaling = True
            if "dist" not in s["attrs"]:
                fail(path, f"{where}: scaling series missing attr 'dist'")
            for k in SHARD_SCALING_SCALARS:
                if k not in s["scalars"]:
                    fail(path, f"{where}: scaling series missing '{k}'")
            if not (0 < s["scalars"]["max_group_share"] <= 1):
                fail(path, f"{where}: max_group_share out of (0, 1]")
            if s["scalars"]["groups_agree"] not in (0, 1):
                fail(path, f"{where}: 'groups_agree' must be 0 or 1")
        else:  # chaos point
            saw_chaos = True
            for k in SHARD_CHAOS_SCALARS:
                if k not in s["scalars"]:
                    fail(path, f"{where}: chaos series missing '{k}'")
            for p in ("before", "storm", "after"):
                if p not in s["points"]:
                    fail(path, f"{where}: chaos series missing point '{p}'")
            if s["scalars"]["recovered"] == 0 \
                    and s["scalars"]["recovery_ms"] != -1:
                fail(path,
                     f"{where}: unrecovered trial must report recovery_ms=-1")
            total += s["scalars"]["violations"]
    if not saw_scaling or not saw_chaos:
        fail(path, "shard: need both scaling and chaos series")
    if total != doc["scalars"]["violations_total"]:
        fail(path, "shard: violations_total does not match the series sum")


def check_runtime(path, doc):
    """BENCH_runtime.json: the threaded backend. Needs all three planes,
    a clean zero-alloc steady window, and a sane calibration fit."""
    for k in RUNTIME_FIGURE_SCALARS:
        if k not in doc["scalars"]:
            fail(path, f"runtime: missing figure scalar '{k}'")
    if doc["scalars"]["steady_window_msgs"] <= 0:
        fail(path, "runtime: empty steady measurement window")
    if doc["scalars"]["steady_window_allocs"] != 0:
        fail(path, "runtime: steady window allocated on the hot path "
                   "(zero-steady-state-alloc gate)")
    if doc["scalars"]["calibrated_ns_per_byte"] < 0:
        fail(path, "runtime: negative per-byte cost fit")
    saw_mailbox = saw_calibration = saw_protocol = False
    for i, s in enumerate(doc["series"]):
        where = f"series[{i}]"
        plane = s["attrs"].get("plane")
        if plane == "mailbox":
            saw_mailbox = True
            if s["scalars"].get("msgs_per_s", 0) <= 0:
                fail(path, f"{where}: mailbox plane with no throughput")
            if s["scalars"].get("nodes", 0) < 1:
                fail(path, f"{where}: mailbox plane with nodes < 1")
        elif plane == "calibration":
            saw_calibration = True
            for k in ("payload_bytes", "ns_per_hop", "hops"):
                if k not in s["scalars"]:
                    fail(path, f"{where}: calibration series missing '{k}'")
            if s["scalars"]["ns_per_hop"] <= 0:
                fail(path, f"{where}: non-positive ns_per_hop")
        elif plane == "protocol":
            saw_protocol = True
            if "system" not in s["attrs"]:
                fail(path, f"{where}: protocol series missing attr 'system'")
            for k in RUNTIME_PROTOCOL_SCALARS:
                if k not in s["scalars"]:
                    fail(path, f"{where}: protocol series missing '{k}'")
            if s["scalars"]["completed"] not in (0, 1):
                fail(path, f"{where}: 'completed' must be 0 or 1")
        else:
            fail(path, f"{where}: unknown runtime plane '{plane}'")
    if not (saw_mailbox and saw_calibration and saw_protocol):
        fail(path, "runtime: need mailbox, calibration and protocol series")


def check_storm(path, doc):
    """canopus-storm-v1: a minimized (or failed-to-reproduce) storm from
    bench_chaos --minimize. The events array is the exact schedule a replay
    arms, so every entry must round-trip: a known kind, non-negative time,
    and the node fields the kind semantics expect."""
    for key, typ in STORM_KEYS:
        if key not in doc:
            fail(path, f"storm: missing key '{key}'")
        if not isinstance(doc[key], typ) or (
                typ is int and isinstance(doc[key], bool)):
            fail(path, f"storm: '{key}' has wrong type {type(doc[key])}")
    if doc["minimal_events"] != len(doc["events"]):
        fail(path, "storm: minimal_events does not match the events array")
    if doc["minimal_events"] > doc["original_events"]:
        fail(path, "storm: minimizer grew the storm")
    if doc["probes"] < 1:
        fail(path, "storm: probes < 1 (the oracle never ran)")
    prev_at = 0
    for i, ev in enumerate(doc["events"]):
        where = f"events[{i}]"
        for key, typ in [("at_ns", int), ("kind", str), ("a", int),
                         ("b", int), ("x", (int, float)), ("d_ns", int)]:
            if key not in ev:
                fail(path, f"{where}: missing key '{key}'")
            if not isinstance(ev[key], typ) or isinstance(ev[key], bool):
                fail(path, f"{where}: '{key}' has wrong type")
        if ev["kind"] not in STORM_EVENT_KINDS:
            fail(path, f"{where}: unknown kind '{ev['kind']}'")
        if ev["at_ns"] < 0:
            fail(path, f"{where}: negative event time")
        if ev["at_ns"] < prev_at:
            fail(path, f"{where}: events not sorted by at_ns")
        prev_at = ev["at_ns"]
        if ev["a"] < 0:
            fail(path, f"{where}: primary node must be a real node id")
    return


def check_micro(path, doc):
    # google-benchmark JSON: context + benchmarks with real_time numbers.
    if "context" not in doc or "benchmarks" not in doc:
        fail(path, "missing google-benchmark 'context'/'benchmarks'")
    if not doc["benchmarks"]:
        fail(path, "no benchmarks recorded")
    for b in doc["benchmarks"]:
        if "name" not in b or "real_time" not in b:
            fail(path, f"benchmark entry missing name/real_time: {b}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        if isinstance(doc, dict) and doc.get("schema") == "canopus-bench-v1":
            check_figure(path, doc)
        elif isinstance(doc, dict) and doc.get("schema") == "canopus-storm-v1":
            check_storm(path, doc)
        else:
            check_micro(path, doc)
        print(f"{path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
