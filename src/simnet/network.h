// Network: routes Messages through the Topology with queueing and CPU cost.
//
// Cost model (DESIGN.md §4.2):
//  * Each link has a FIFO "next free" time; a message of b bytes occupies a
//    link for b/bandwidth, then propagates for the link latency. Concurrent
//    traffic on an oversubscribed uplink therefore queues — this is what
//    makes broadcast-heavy protocols plateau.
//  * Each node has a serial CPU. Sending charges a fixed per-message cost
//    plus a per-byte cost; receiving likewise. This bounds per-node request
//    throughput and is what exposes the centralized-coordinator bottleneck
//    in Zab and the O(n) work per command in EPaxos.
//
// Fault injection: nodes can crash (messages to/from them are dropped) and
// directed node pairs can be severed to emulate partitions, even though the
// paper assumes partitions are rare — tests use this to exercise Canopus'
// documented stall behaviour.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/api.h"
#include "simnet/message.h"
#include "simnet/simulator.h"
#include "simnet/topology.h"

namespace canopus::simnet {

class Process;

/// Per-node processing cost parameters; the experiment defaults and their
/// calibration rationale are documented in EXPERIMENTS.md ("Cost-model
/// parameters"). Protocol-level per-request work is charged separately via
/// Network::busy() by each protocol implementation.
struct CpuModel {
  Time send_fixed = 1'000;    ///< ns per message sent
  Time recv_fixed = 1'000;    ///< ns per message received
  double ns_per_byte = 0.5;   ///< serialization/deserialization cost
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< extra copies injected by dup windows
  std::uint64_t reordered = 0;   ///< sends that drew a reorder jitter
};

/// Network is also the simulated backend's runtime::Host: drivers written
/// against the Host seam (ConsensusService, deployments) work unchanged on
/// either backend. post() runs inline — between run() slices the driver
/// thread IS every node's execution context.
class Network : public MessageEventTarget, public runtime::Host {
 public:
  Network(Simulator& sim, Topology topo, CpuModel cpu = {});

  /// Registers the process handling messages addressed to `id`.
  /// The process must outlive the network.
  void attach(NodeId id, Process& proc) override;

  /// Sends a message; delivery is scheduled through the link/CPU model.
  void send(Message m);

  /// Local (same-node) hand-off: skips links, still charges CPU.
  void send_local(Message m);

  /// Charges `cost` of protocol-level compute (sorting, dependency checks,
  /// state-machine work) to a node's serial CPU. Subsequent sends and
  /// deliveries at that node queue behind it.
  void busy(NodeId n, Time cost) {
    if (cost <= 0) return;
    const Time now = sim_.now();
    cpu_free_[n] = std::max(now, cpu_free_[n]) + scaled_cpu(n, cost);
  }

  // --- fault injection -----------------------------------------------
  void crash(NodeId n) override;
  void recover(NodeId n) override;
  bool is_up(NodeId n) const override { return up_[n]; }
  /// Severs/heals the directed pair a -> b.
  void sever(NodeId a, NodeId b) override;
  void heal(NodeId a, NodeId b) override;

  // --- gray-failure fault plane (DESIGN.md §13) -----------------------
  // All of these mutate only scalar per-node slots or map *structure*;
  // under sharded execution they are driven by fault events, which fire at
  // control barriers with every worker parked — the same write discipline
  // as up_/severed_.
  /// Multiplies node n's compute costs (send/recv/busy) by `factor` (> 0);
  /// 1.0 restores normal speed. A degraded node is slow, not dead.
  void set_cpu_factor(NodeId n, double factor);
  double cpu_factor(NodeId n) const { return cpu_factor_[n]; }
  /// The directed pair a -> b oscillates: down for the first half of every
  /// `period` (> 0), up for the second, phase-anchored at the current time.
  void flap(NodeId a, NodeId b, Time period);
  void flap_stop(NodeId a, NodeId b);
  /// Every message a -> b is delivered twice; the echo enters the wire
  /// `echo_delay` after the original.
  void duplicate(NodeId a, NodeId b, Time echo_delay);
  void duplicate_stop(NodeId a, NodeId b);
  /// Every message a -> b has a seeded per-message jitter in [0, max_jitter]
  /// added before its first hop, so back-to-back sends can swap on the wire.
  /// The jitter stream is a pure function of (trial seed, pair, message
  /// count on the pair) — deterministic under any shard map, because only
  /// the source node's lane ever draws from it.
  void reorder(NodeId a, NodeId b, Time max_jitter);
  void reorder_stop(NodeId a, NodeId b);
  /// Skews node n's timer clock (Simulator::after): nominal delays divide
  /// by `rate` and stretch by `offset`. Host-seam parity with the threaded
  /// backend's wheel-arming skew (runtime/threaded.h).
  void set_clock_skew(NodeId n, double rate, Time offset) override;

  /// Host::post — simulated backend: the caller is already the (only)
  /// execution thread, so the closure runs inline.
  void post(NodeId /*n*/, InlineFn fn) override { fn(); }

  // --- observability --------------------------------------------------
  /// Aggregated over the per-shard slots (the counters are sharded so
  /// concurrent workers never contend); call from outside execution or at
  /// a barrier for an exact value.
  NetworkStats stats() const {
    NetworkStats total;
    for (const ShardSlot& s : slots_) {
      total.messages += s.stats.messages;
      total.bytes += s.stats.bytes;
      total.dropped += s.stats.dropped;
      total.duplicated += s.stats.duplicated;
      total.reordered += s.stats.reordered;
    }
    return total;
  }
  /// Total bytes that traversed a given link (for utilization assertions).
  std::uint64_t link_bytes(LinkId l) const { return link_bytes_[l]; }

  /// Diagnostics: worst queueing observed so far (how far a node's CPU or a
  /// link's serializer ran ahead of the clock). Useful for locating the
  /// saturated resource in capacity experiments.
  Time max_cpu_backlog(NodeId n) const {
    return n < cpu_backlog_.size() ? cpu_backlog_[n] : 0;
  }
  Time max_link_backlog(LinkId l) const {
    return l < link_backlog_.size() ? link_backlog_[l] : 0;
  }
  const Topology& topo() const { return topo_; }

  /// Optional delivery trace hook (time, message) fired at delivery.
  /// Serial-execution diagnostic only: the hook runs from whichever shard
  /// dispatches the message, so under run_parallel_until() it would need
  /// its own synchronization — don't combine tracing with sharded runs.
  using TraceFn = std::function<void(Time, const Message&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  Simulator& sim() { return sim_; }

 private:
  /// Every per-message step (hop arrival, local delivery, receiver-CPU-done
  /// dispatch) is scheduled as a typed MessageEvent — plain pooled data in
  /// the event queue — instead of a closure, so the steady-state message
  /// path performs zero heap allocations (see DESIGN.md §8).
  void on_message_event(MessageEvent&& ev) override;
  MessageEvent make_event(Message&& m, MessageEvent::Kind kind,
                          std::size_t hop = 0) {
    return MessageEvent{this, std::move(m), kind,
                        static_cast<std::uint32_t>(hop)};
  }

  void hop_arrival(Message&& m, std::size_t hop);
  void deliver(Message&& m, Time arrival);
  void dispatch(Message&& m);

  /// Memo of the last (bytes -> cost) computation for a link's serializer /
  /// the CPU per-byte charge. Message sizes repeat heavily (fixed-size RPCs,
  /// same-batch broadcasts), and FP division is the single most expensive
  /// instruction on the hop path. Keyed on the exact byte count, so a hit
  /// returns the exact llround result the cold path would produce —
  /// bit-identical simulation, ~2x fewer FP ops per delivery.
  struct CostMemo {
    std::size_t bytes = static_cast<std::size_t>(-1);
    Time cost = 0;
  };

  /// Per-shard mutable scratch (one cache line each, plus a final slot for
  /// control/serial contexts): counters are totals-by-sum, and the memo is
  /// a pure cache whose placement cannot affect computed values — so the
  /// split changes nothing observable while letting shard workers write
  /// without contention. Every other mutable array is owner-partitioned by
  /// construction: link state is only touched by the shard owning the
  /// link, node CPU state by the shard owning the node, and up_/severed_
  /// are written solely at control barriers (workers parked).
  struct alignas(64) ShardSlot {
    NetworkStats stats;
    CostMemo cpu_byte_memo;
  };

  ShardSlot& slot() {
    return slots_[sim_.exec_shard(static_cast<std::uint32_t>(slots_.size() - 1))];
  }

  /// Gray fault state. The maps are structurally mutated only at control
  /// barriers (fault events); between barriers, workers only read them —
  /// except a reorder entry's RNG, whose single writer is the pair's
  /// source-node lane (owned by exactly one shard).
  struct FlapState {
    Time origin = 0;
    Time period = 0;
  };
  struct ReorderState {
    Time max_jitter = 0;
    Rng rng{0};
  };

  /// A flapped pair is dark during the first half of every period.
  bool flap_down(std::uint64_t key, Time now) const {
    auto it = flapping_.find(key);
    if (it == flapping_.end()) return false;
    const FlapState& f = it->second;
    return (now - f.origin) % f.period < f.period / 2;
  }

  /// Compute-cost scaling for degraded nodes. factor == 1.0 returns `cost`
  /// unchanged (no FP round trip), so runs without CPU faults are
  /// bit-identical to builds that predate the gray palette.
  Time scaled_cpu(NodeId n, Time cost) const {
    const double f = cpu_factor_[n];
    if (f == 1.0) return cost;
    return static_cast<Time>(std::llround(static_cast<double>(cost) * f));
  }

  Simulator& sim_;
  Topology topo_;
  CpuModel cpu_;
  std::vector<Process*> procs_;
  std::vector<bool> up_;
  std::vector<Time> link_free_;
  std::vector<Time> cpu_free_;
  std::vector<std::uint64_t> link_bytes_;
  std::vector<Time> cpu_backlog_;
  std::vector<Time> link_backlog_;
  std::unordered_set<std::uint64_t> severed_;
  std::vector<double> cpu_factor_;  ///< per node; 1.0 = full speed
  std::unordered_map<std::uint64_t, FlapState> flapping_;
  std::unordered_map<std::uint64_t, Time> dup_echo_;
  std::unordered_map<std::uint64_t, ReorderState> reorder_;
  std::vector<CostMemo> link_memo_;  ///< per link: last serialize time
  std::vector<ShardSlot> slots_;     ///< [num_shards] + control slot
  TraceFn trace_;

  Time link_serialize(LinkId l, std::size_t bytes) {
    CostMemo& memo = link_memo_[l];
    if (memo.bytes != bytes) {
      memo.bytes = bytes;
      memo.cost = static_cast<Time>(
          std::llround(static_cast<double>(bytes) / topo_.link(l).bytes_per_ns));
    }
    return memo.cost;
  }

  Time cpu_byte_cost(std::size_t bytes) {
    CostMemo& memo = slot().cpu_byte_memo;
    if (memo.bytes != bytes) {
      memo.bytes = bytes;
      memo.cost = static_cast<Time>(
          std::llround(static_cast<double>(bytes) * cpu_.ns_per_byte));
    }
    return memo.cost;
  }
};

/// Clock facet of the runtime seam: the subset of Simulator the protocols
/// use (now/cancel/after), duck-typed so code written against the simulator
/// — `sim().now()`, `sim_.after(...)` in the consensus engines — runs
/// unchanged on the threaded backend. A cheap two-pointer value; the
/// simulated branch (sim_ != nullptr) inlines to the direct Simulator call,
/// keeping the per-message hot path free of virtual dispatch so PR 4's
/// numbers and the golden digests are untouched.
class ClockHandle {
 public:
  /// Direct handle onto a Simulator (test harnesses, simulator-only tools).
  ClockHandle(Simulator& s) : sim_(&s), rt_(nullptr) {}

  Time now() const { return sim_ ? sim_->now() : rt_->now(); }
  void cancel(EventId id) const {
    if (sim_ != nullptr)
      sim_->cancel(id);
    else
      rt_->cancel(id);
  }
  EventId after(Time delay, InlineFn fn) const {
    return sim_ != nullptr ? sim_->after(delay, std::move(fn))
                           : rt_->arm(delay, std::move(fn));
  }
  std::uint64_t seed() const { return sim_ ? sim_->seed() : rt_->seed(); }

 private:
  friend class Process;
  ClockHandle(Simulator* s, runtime::Runtime* r) : sim_(s), rt_(r) {}
  Simulator* sim_;
  runtime::Runtime* rt_;
};

/// Network facet of the runtime seam (busy/is_up/send); see ClockHandle.
class NetHandle {
 public:
  /// Direct handle onto a Network (test harnesses, simulator-only tools).
  NetHandle(Network& n) : net_(&n), rt_(nullptr) {}

  void busy(NodeId n, Time cost) const {
    if (net_ != nullptr)
      net_->busy(n, cost);
    else
      rt_->busy(n, cost);
  }
  bool is_up(NodeId n) const { return net_ ? net_->is_up(n) : rt_->is_up(n); }
  void send(Message m) const {
    if (net_ != nullptr)
      net_->send(std::move(m));
    else
      rt_->send(std::move(m));
  }

 private:
  friend class Process;
  NetHandle(Network* n, runtime::Runtime* r) : net_(n), rt_(r) {}
  Network* net_;
  runtime::Runtime* rt_;
};

/// Base class for all protocol actors (consensus nodes, clients, switches'
/// control planes...). A Process is attached to exactly one NodeId.
///
/// Runtime seam: a Process is attached either to a Network (simulated
/// backend — sim_/net_ set, rt_ null) or to a runtime::ThreadedRuntime
/// (rt_ set, sim_/net_ null). sim()/net() return the thin value handles
/// above, which branch on that pointer — the same protocol code
/// transparently targets the threaded backend's wall clock, timer wheel
/// and mailboxes.
class Process {
 public:
  virtual ~Process() = default;

  NodeId node_id() const { return id_; }

  /// Invoked once when the simulation starts (after all attachments).
  virtual void on_start() {}

  /// Invoked for every delivered message.
  virtual void on_message(const Message& m) = 0;

 protected:
  ClockHandle sim() const { return ClockHandle(sim_, rt_); }
  NetHandle net() const { return NetHandle(net_, rt_); }

  /// Per-process deterministic RNG, seeded at attach() from the trial seed
  /// and the node id. Protocol code must draw from THIS stream, never from
  /// Simulator::rng(): a per-node stream's draw order depends only on the
  /// node's own event history, so it is identical under serial and sharded
  /// execution — a shared stream's would depend on the global interleaving.
  Rng& rng() { return rng_; }

  /// Sends a typed payload to `dst`, charging `wire_bytes` on the wire.
  /// Any registered wire-message type converts to Payload at this boundary.
  void send(NodeId dst, std::size_t wire_bytes, Payload payload) {
    Message m(id_, dst, wire_bytes, std::move(payload));
    if (net_ != nullptr)
      net_->send(std::move(m));
    else
      rt_->send(std::move(m));
  }

  EventId after(Time delay, InlineFn fn) {
    return sim().after(delay, std::move(fn));
  }

 private:
  friend class Network;
  friend class canopus::runtime::ThreadedRuntime;
  Simulator* sim_ = nullptr;
  Network* net_ = nullptr;
  runtime::Runtime* rt_ = nullptr;
  NodeId id_ = kInvalidNode;
  Rng rng_{0};
};

}  // namespace canopus::simnet
