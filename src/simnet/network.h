// Network: routes Messages through the Topology with queueing and CPU cost.
//
// Cost model (DESIGN.md §4.2):
//  * Each link has a FIFO "next free" time; a message of b bytes occupies a
//    link for b/bandwidth, then propagates for the link latency. Concurrent
//    traffic on an oversubscribed uplink therefore queues — this is what
//    makes broadcast-heavy protocols plateau.
//  * Each node has a serial CPU. Sending charges a fixed per-message cost
//    plus a per-byte cost; receiving likewise. This bounds per-node request
//    throughput and is what exposes the centralized-coordinator bottleneck
//    in Zab and the O(n) work per command in EPaxos.
//
// Fault injection: nodes can crash (messages to/from them are dropped) and
// directed node pairs can be severed to emulate partitions, even though the
// paper assumes partitions are rare — tests use this to exercise Canopus'
// documented stall behaviour.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "simnet/message.h"
#include "simnet/simulator.h"
#include "simnet/topology.h"

namespace canopus::simnet {

class Process;

/// Per-node processing cost parameters; the experiment defaults and their
/// calibration rationale are documented in EXPERIMENTS.md ("Cost-model
/// parameters"). Protocol-level per-request work is charged separately via
/// Network::busy() by each protocol implementation.
struct CpuModel {
  Time send_fixed = 1'000;    ///< ns per message sent
  Time recv_fixed = 1'000;    ///< ns per message received
  double ns_per_byte = 0.5;   ///< serialization/deserialization cost
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
};

class Network : public MessageEventTarget {
 public:
  Network(Simulator& sim, Topology topo, CpuModel cpu = {});

  /// Registers the process handling messages addressed to `id`.
  /// The process must outlive the network.
  void attach(NodeId id, Process& proc);

  /// Sends a message; delivery is scheduled through the link/CPU model.
  void send(Message m);

  /// Local (same-node) hand-off: skips links, still charges CPU.
  void send_local(Message m);

  /// Charges `cost` of protocol-level compute (sorting, dependency checks,
  /// state-machine work) to a node's serial CPU. Subsequent sends and
  /// deliveries at that node queue behind it.
  void busy(NodeId n, Time cost) {
    if (cost <= 0) return;
    const Time now = sim_.now();
    cpu_free_[n] = std::max(now, cpu_free_[n]) + cost;
  }

  // --- fault injection -----------------------------------------------
  void crash(NodeId n);
  void recover(NodeId n);
  bool is_up(NodeId n) const { return up_[n]; }
  /// Severs/heals the directed pair a -> b.
  void sever(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);

  // --- observability --------------------------------------------------
  /// Aggregated over the per-shard slots (the counters are sharded so
  /// concurrent workers never contend); call from outside execution or at
  /// a barrier for an exact value.
  NetworkStats stats() const {
    NetworkStats total;
    for (const ShardSlot& s : slots_) {
      total.messages += s.stats.messages;
      total.bytes += s.stats.bytes;
      total.dropped += s.stats.dropped;
    }
    return total;
  }
  /// Total bytes that traversed a given link (for utilization assertions).
  std::uint64_t link_bytes(LinkId l) const { return link_bytes_[l]; }

  /// Diagnostics: worst queueing observed so far (how far a node's CPU or a
  /// link's serializer ran ahead of the clock). Useful for locating the
  /// saturated resource in capacity experiments.
  Time max_cpu_backlog(NodeId n) const {
    return n < cpu_backlog_.size() ? cpu_backlog_[n] : 0;
  }
  Time max_link_backlog(LinkId l) const {
    return l < link_backlog_.size() ? link_backlog_[l] : 0;
  }
  const Topology& topo() const { return topo_; }

  /// Optional delivery trace hook (time, message) fired at delivery.
  /// Serial-execution diagnostic only: the hook runs from whichever shard
  /// dispatches the message, so under run_parallel_until() it would need
  /// its own synchronization — don't combine tracing with sharded runs.
  using TraceFn = std::function<void(Time, const Message&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  Simulator& sim() { return sim_; }

 private:
  /// Every per-message step (hop arrival, local delivery, receiver-CPU-done
  /// dispatch) is scheduled as a typed MessageEvent — plain pooled data in
  /// the event queue — instead of a closure, so the steady-state message
  /// path performs zero heap allocations (see DESIGN.md §8).
  void on_message_event(MessageEvent&& ev) override;
  MessageEvent make_event(Message&& m, MessageEvent::Kind kind,
                          std::size_t hop = 0) {
    return MessageEvent{this, std::move(m), kind,
                        static_cast<std::uint32_t>(hop)};
  }

  void hop_arrival(Message&& m, std::size_t hop);
  void deliver(Message&& m, Time arrival);
  void dispatch(Message&& m);

  /// Memo of the last (bytes -> cost) computation for a link's serializer /
  /// the CPU per-byte charge. Message sizes repeat heavily (fixed-size RPCs,
  /// same-batch broadcasts), and FP division is the single most expensive
  /// instruction on the hop path. Keyed on the exact byte count, so a hit
  /// returns the exact llround result the cold path would produce —
  /// bit-identical simulation, ~2x fewer FP ops per delivery.
  struct CostMemo {
    std::size_t bytes = static_cast<std::size_t>(-1);
    Time cost = 0;
  };

  /// Per-shard mutable scratch (one cache line each, plus a final slot for
  /// control/serial contexts): counters are totals-by-sum, and the memo is
  /// a pure cache whose placement cannot affect computed values — so the
  /// split changes nothing observable while letting shard workers write
  /// without contention. Every other mutable array is owner-partitioned by
  /// construction: link state is only touched by the shard owning the
  /// link, node CPU state by the shard owning the node, and up_/severed_
  /// are written solely at control barriers (workers parked).
  struct alignas(64) ShardSlot {
    NetworkStats stats;
    CostMemo cpu_byte_memo;
  };

  ShardSlot& slot() {
    return slots_[sim_.exec_shard(static_cast<std::uint32_t>(slots_.size() - 1))];
  }

  Simulator& sim_;
  Topology topo_;
  CpuModel cpu_;
  std::vector<Process*> procs_;
  std::vector<bool> up_;
  std::vector<Time> link_free_;
  std::vector<Time> cpu_free_;
  std::vector<std::uint64_t> link_bytes_;
  std::vector<Time> cpu_backlog_;
  std::vector<Time> link_backlog_;
  std::unordered_set<std::uint64_t> severed_;
  std::vector<CostMemo> link_memo_;  ///< per link: last serialize time
  std::vector<ShardSlot> slots_;     ///< [num_shards] + control slot
  TraceFn trace_;

  Time link_serialize(LinkId l, std::size_t bytes) {
    CostMemo& memo = link_memo_[l];
    if (memo.bytes != bytes) {
      memo.bytes = bytes;
      memo.cost = static_cast<Time>(
          std::llround(static_cast<double>(bytes) / topo_.link(l).bytes_per_ns));
    }
    return memo.cost;
  }

  Time cpu_byte_cost(std::size_t bytes) {
    CostMemo& memo = slot().cpu_byte_memo;
    if (memo.bytes != bytes) {
      memo.bytes = bytes;
      memo.cost = static_cast<Time>(
          std::llround(static_cast<double>(bytes) * cpu_.ns_per_byte));
    }
    return memo.cost;
  }
};

/// Base class for all protocol actors (consensus nodes, clients, switches'
/// control planes...). A Process is attached to exactly one NodeId.
class Process {
 public:
  virtual ~Process() = default;

  NodeId node_id() const { return id_; }

  /// Invoked once when the simulation starts (after all attachments).
  virtual void on_start() {}

  /// Invoked for every delivered message.
  virtual void on_message(const Message& m) = 0;

 protected:
  Simulator& sim() const { return *sim_; }
  Network& net() const { return *net_; }

  /// Per-process deterministic RNG, seeded at attach() from the trial seed
  /// and the node id. Protocol code must draw from THIS stream, never from
  /// Simulator::rng(): a per-node stream's draw order depends only on the
  /// node's own event history, so it is identical under serial and sharded
  /// execution — a shared stream's would depend on the global interleaving.
  Rng& rng() { return rng_; }

  /// Sends a typed payload to `dst`, charging `wire_bytes` on the wire.
  /// Any registered wire-message type converts to Payload at this boundary.
  void send(NodeId dst, std::size_t wire_bytes, Payload payload) {
    net_->send(Message(id_, dst, wire_bytes, std::move(payload)));
  }

  EventId after(Time delay, InlineFn fn) {
    return sim_->after(delay, std::move(fn));
  }

 private:
  friend class Network;
  Simulator* sim_ = nullptr;
  Network* net_ = nullptr;
  NodeId id_ = kInvalidNode;
  Rng rng_{0};
};

}  // namespace canopus::simnet
