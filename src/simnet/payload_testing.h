// Message-bus registrations reserved for tests and benches: scalar payload
// types for probes, ping-pong RTT measurements and harness assertions.
// Protocol code must not include this header — wire messages belong in the
// protocol's own header with their own tag.
#pragma once

#include <string>

#include "simnet/payload.h"

CANOPUS_REGISTER_PAYLOAD(std::string, kTestText);
CANOPUS_REGISTER_PAYLOAD(int, kTestInt);
CANOPUS_REGISTER_PAYLOAD(char, kTestChar);
