#include "simnet/event_queue.h"

#include <algorithm>
#include <cassert>

namespace canopus::simnet {

namespace {
// An EventId packs {generation, slot+1}; slot+1 keeps every valid id nonzero
// so kInvalidEvent (0) can never name a slot.
constexpr EventId pack(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | (slot + 1);
}
}  // namespace

EventId EventQueue::schedule(Time t, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  heap_.push_back(Entry{t, s.seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return pack(s.gen, slot);
}

void EventQueue::disarm(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // release the closure now, not at compaction
  s.seq = 0;
  ++s.gen;
  free_.push_back(slot);
  --live_;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const auto slot = static_cast<std::uint32_t>((id & 0xffffffffULL) - 1);
  if (slot >= slots_.size()) return;
  const Slot& s = slots_[slot];
  if (s.gen != static_cast<std::uint32_t>(id >> 32) || s.seq == 0) return;
  disarm(slot);
  // The heap still holds a stale record for this event. Compact once stale
  // records dominate, so cancel-heavy workloads stay at O(live) memory while
  // occasional cancels cost nothing extra.
  if (heap_.size() > 64 && heap_.size() > 2 * live_) compact();
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.front().time;
}

std::pair<Time, std::function<void()>> EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  std::pair<Time, std::function<void()>> result{top.time,
                                                std::move(slots_[top.slot].fn)};
  disarm(top.slot);
  return result;
}

}  // namespace canopus::simnet
