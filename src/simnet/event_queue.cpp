#include "simnet/event_queue.h"

#include <cassert>

namespace canopus::simnet {

EventId EventQueue::schedule(Time t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (handlers_.erase(id) > 0) --live_;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !handlers_.contains(heap_.top().id)) heap_.pop();
}

Time EventQueue::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::pair<Time, std::function<void()>> EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = handlers_.find(top.id);
  std::pair<Time, std::function<void()>> result{top.time, std::move(it->second)};
  handlers_.erase(it);
  --live_;
  return result;
}

}  // namespace canopus::simnet
