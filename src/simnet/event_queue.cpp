// Cold paths of the event queue; the per-event schedule/fire hot pair is
// inline in event_queue.h.
#include "simnet/event_queue.h"

#include <utility>

namespace canopus::simnet {

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  // Id layout (see schedule()): [63..56 routing tag | 55..24 gen |
  // 23..0 slot+1]. The tag is the Simulator's business; it is stripped
  // before the id reaches this queue, so only gen/slot are parsed here.
  const auto slot = static_cast<std::uint32_t>((id & 0xffffffULL) - 1);
  if (slot >= slots_.size()) return;
  const Slot& s = slots_[slot];
  if (s.gen != static_cast<std::uint32_t>((id >> 24) & 0xffffffffULL) ||
      s.seq == 0)
    return;
  disarm(slot);
  // The heap still holds a stale record for this event. Compact once stale
  // records dominate, so cancel-heavy workloads stay at O(live) memory while
  // occasional cancels cost nothing extra.
  if (heap_.size() > 64 && heap_.size() > 2 * live_) compact();
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!empty());
  Fired result;
  const bool from_closure_heap =
      !heap_.empty() &&
      (msg_heap_.empty() || closure_first(heap_.front(), msg_heap_.front()));
  if (from_closure_heap) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    result.time = top.time;
    result.is_message = false;
    result.fn = std::move(slots_[top.slot].fn);
    disarm(top.slot);
  } else {
    std::pop_heap(msg_heap_.begin(), msg_heap_.end(), MsgLater{});
    MsgEntry entry = std::move(msg_heap_.back());
    msg_heap_.pop_back();
    result.time = entry.time;
    result.is_message = true;
    result.msg = std::move(entry.ev);
  }
  return result;
}

}  // namespace canopus::simnet
