// InlineFn: a move-only callable with 64 bytes of inline storage.
//
// The simulator fires millions of timer closures per trial; std::function
// heap-allocates any capture over its small-buffer size (~16 bytes) and
// requires copyable captures. InlineFn stores captures up to
// kInlineCapacity bytes in place — no allocation on the timer path — and
// accepts move-only captures. Larger callables fall back to one heap
// allocation; simnet's own closures are statically asserted to fit inline
// at their call sites (network.cpp, fault_schedule.cpp), so growing a
// capture past the budget is a compile error there, not a silent perf
// regression.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace canopus::simnet {

class InlineFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  /// True when F is stored in place: small enough, not over-aligned, and
  /// nothrow-movable (moving an InlineFn relocates the inline object).
  template <class F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineCapacity &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {  // relocate src -> uninitialized dst
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        } else {  // destroy dst
          static_cast<Fn*>(dst)->~Fn();
        }
      };
    } else {  // heap fallback: the storage holds a single Fn*
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s) { (**static_cast<Fn**>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {  // relocating moves the pointer, not the Fn
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        } else {
          delete *static_cast<Fn**>(dst);
        }
      };
    }
  }

  InlineFn(InlineFn&& other) noexcept { take(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroys the held callable (if any); *this becomes empty.
  void reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  // manage_(dst, src): src != nullptr relocates src into uninitialized dst
  // (src is left destroyed/abandoned); src == nullptr destroys dst.
  using Invoke = void (*)(void*);
  using Manage = void (*)(void* dst, void* src);

  void take(InlineFn& other) {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) manage_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace canopus::simnet
