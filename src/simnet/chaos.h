// ChaosScheduleGenerator: seeded fault storms as plain FaultSchedules.
//
// A storm is a randomized sequence of fault/repair pairs drawn from a
// seeded RNG, parameterized by an intensity knob (event rate, blast
// radius, fault duration). The generator emits an ordinary
// simnet::FaultSchedule, so a storm replays bit-identically from its seed
// through the exact same arming path the hand-written scenarios use
// (workload/fault_scenario.h) — which is what makes a chaos sweep
// reproducible and a violating seed bisectable.
//
// Two fault families share the draw loop: the fail-stop kinds
// (crash/recover, sever/heal) and the gray palette (degraded CPU, flapping
// links, duplication, reordering, clock skew — DESIGN.md §13). Gray
// weights default to 0, so configs written before the palette existed draw
// byte-identical storms.
//
// Structural guarantees (property-tested in tests/simnet/chaos_test.cpp):
//  * every event lies inside [start, end];
//  * every fault is paired with exactly one repair for its victim (node or
//    directed pair), and the repair comes no earlier than `min_heal` after
//    the fault (faults have a minimum duration);
//  * replaying the schedule never exceeds any kind's blast-radius cap
//    (max_down crashed nodes, max_severed severed pairs, max_slow degraded
//    nodes, max_flapping / max_dup / max_reorder pairs, max_skewed nodes)
//    — storms degrade the cluster, they never erase it;
//  * by `end` every fault is healed, so a post-storm phase exists in which
//    repair traffic can converge and the audit plane can judge the run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "simnet/fault_schedule.h"

namespace canopus::simnet {

/// Intensity knobs of one storm. Rates are mean values of exponential
/// draws; all times are absolute simulation times.
struct ChaosConfig {
  Time start = 0;  ///< first fault no earlier than this
  Time end = 0;    ///< every fault healed/recovered by this time

  /// Mean fault-injection rate (events of any enabled kind per second).
  double events_per_s = 10.0;

  /// Blast radius: cap on *concurrently* crashed nodes / severed directed
  /// pairs. An injection drawn while its kind is at the cap is dropped
  /// (the storm keeps its rate for the other kinds).
  int max_down = 1;
  int max_severed = 2;

  /// Minimum fault duration: every fault repairs no earlier than this
  /// after injection. Must be > 0 and < (end - start).
  Time min_heal = 100 * kMillisecond;
  /// Mean of the exponential extra duration added on top of `min_heal`
  /// (clipped so repair never lands after `end`).
  Time mean_extra = 150 * kMillisecond;

  /// Relative likelihood of each fault kind. Zero disables the kind
  /// entirely (e.g. sever-only storms for partition soak tests).
  double crash_weight = 1.0;
  double sever_weight = 1.0;

  // --- gray-failure palette (all weights default 0 == disabled) --------
  double cpu_weight = 0;      ///< degraded-CPU node (slow, not dead)
  double flap_weight = 0;     ///< flapping directed link
  double dup_weight = 0;      ///< message duplication on a directed pair
  double reorder_weight = 0;  ///< bounded delivery reordering on a pair
  double skew_weight = 0;     ///< clock skew on a node's timer arming

  /// Per-kind blast radius for the gray kinds.
  int max_slow = 1;
  int max_flapping = 2;
  int max_dup = 2;
  int max_reorder = 2;
  int max_skewed = 1;

  /// Gray fault parameters (fixed per storm; the *victims and windows* are
  /// random, the severity is a config knob so sweeps stay interpretable).
  double cpu_factor = 4.0;  ///< compute-cost multiplier while degraded
  Time flap_period = 40 * kMillisecond;    ///< full down+up oscillation
  Time dup_echo = 2 * kMillisecond;        ///< duplicate trails by this
  Time reorder_jitter = 5 * kMillisecond;  ///< per-message delay in [0, j]
  double skew_rate_lo = 0.8;   ///< clock rate drawn uniformly in [lo, hi]
  double skew_rate_hi = 1.25;
  Time skew_offset = 0;        ///< constant timer lag while skewed

  /// Eager validation: throws std::invalid_argument with a descriptive
  /// message on inconsistent knobs (non-positive min_heal, min_heal not
  /// inside the window, negative weights/rates, degenerate gray
  /// parameters). generate() calls it, so a bad config fails loudly at the
  /// first draw instead of producing a silently-wrong storm.
  void validate() const;
};

class ChaosScheduleGenerator {
 public:
  explicit ChaosScheduleGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Draws one storm over `nodes` (the consensus servers; pair faults hit
  /// directed pairs of distinct entries). Deterministic: a freshly seeded
  /// generator given equal (cfg, nodes) produces an identical schedule.
  /// The generator's RNG advances across calls, so repeated generate()
  /// calls on ONE instance draw different storms — re-seed (or copy the
  /// generator) to replay a storm. Events are emitted in time order with
  /// repairs sorted before faults at equal timestamps, so a replay that
  /// walks the event list observes the blast radius the generator
  /// enforced.
  FaultSchedule generate(const ChaosConfig& cfg,
                         const std::vector<NodeId>& nodes);

 private:
  Rng rng_;
};

}  // namespace canopus::simnet
