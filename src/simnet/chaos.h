// ChaosScheduleGenerator: seeded crash/partition storms as plain
// FaultSchedules.
//
// A storm is a randomized sequence of crash/recover and sever/heal events
// drawn from a seeded RNG, parameterized by an intensity knob (event rate,
// blast radius, fault duration). The generator emits an ordinary
// simnet::FaultSchedule, so a storm replays bit-identically from its seed
// through the exact same arming path the hand-written scenarios use
// (workload/fault_scenario.h) — which is what makes a chaos sweep
// reproducible and a violating seed bisectable.
//
// Structural guarantees (property-tested in tests/simnet/chaos_test.cpp):
//  * every event lies inside [start, end];
//  * every crash is paired with exactly one recover for that node, every
//    sever with one heal for that pair, and the repair comes no earlier
//    than `min_heal` after the fault (faults have a minimum duration);
//  * replaying the schedule never has more than `max_down` nodes crashed
//    or more than `max_severed` directed pairs severed at once (the blast
//    radius) — storms degrade the cluster, they never erase it;
//  * by `end` every fault is healed, so a post-storm phase exists in which
//    repair traffic can converge and the audit plane can judge the run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "simnet/fault_schedule.h"

namespace canopus::simnet {

/// Intensity knobs of one storm. Rates are mean values of exponential
/// draws; all times are absolute simulation times.
struct ChaosConfig {
  Time start = 0;  ///< first fault no earlier than this
  Time end = 0;    ///< every fault healed/recovered by this time

  /// Mean fault-injection rate (crash or sever events per second).
  double events_per_s = 10.0;

  /// Blast radius: cap on *concurrently* crashed nodes / severed directed
  /// pairs. An injection drawn while its kind is at the cap is dropped
  /// (the storm keeps its rate for the other kind).
  int max_down = 1;
  int max_severed = 2;

  /// Minimum fault duration: a crash recovers and a sever heals no earlier
  /// than this after the fault. Must be > 0 and < (end - start).
  Time min_heal = 100 * kMillisecond;
  /// Mean of the exponential extra duration added on top of `min_heal`
  /// (clipped so repair never lands after `end`).
  Time mean_extra = 150 * kMillisecond;

  /// Relative likelihood of drawing a crash vs a sever. Zero disables the
  /// kind entirely (e.g. sever-only storms for partition soak tests).
  double crash_weight = 1.0;
  double sever_weight = 1.0;
};

class ChaosScheduleGenerator {
 public:
  explicit ChaosScheduleGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Draws one storm over `nodes` (the consensus servers; sever pairs are
  /// directed pairs of distinct entries). Deterministic: a freshly seeded
  /// generator given equal (cfg, nodes) produces an identical schedule.
  /// The generator's RNG advances across calls, so repeated generate()
  /// calls on ONE instance draw different storms — re-seed (or copy the
  /// generator) to replay a storm. Events are emitted in time order with
  /// repairs sorted before faults at equal timestamps, so a replay that
  /// walks the event list observes the blast radius the generator
  /// enforced.
  FaultSchedule generate(const ChaosConfig& cfg,
                         const std::vector<NodeId>& nodes);

 private:
  Rng rng_;
};

}  // namespace canopus::simnet
