// Discrete-event simulation kernel: virtual clock + event queues + RNG.
//
// Fully deterministic: a run is a pure function of the seed and the
// registered processes. Protocol code never reads wall-clock time or
// global randomness.
//
// Two scheduling currencies (see event_queue.h): closures via at()/after()
// for timers, and typed MessageEvents via at_message() for the network's
// per-message pipeline — the latter is plain pooled data, so the message
// hot path schedules without allocating.
//
// ## Sharded (PDES) execution — DESIGN.md §10
//
// The kernel can partition the simulation into SHARDS (one per topology
// site by default, see make_shard_map) and run one worker thread per
// shard, conservatively synchronized by the cross-shard link latencies
// (the lookahead). The cardinal invariant is BIT-IDENTITY: run() and
// run_parallel_until() execute the exact same events in the exact same
// total order, so commit digests, network statistics and event counts
// match to the bit (tests/workload/pdes_determinism_test.cpp).
//
// The mechanism is a LANE discipline on tie-break sequence numbers. Every
// event source is a lane — one per node, one per link, plus one control
// lane — and an event's seq is (lane << 40) | ++per_lane_counter. A
// lane's counter is only ever advanced by the shard that owns the lane
// (the control lane by the coordinator, at barriers), so each lane's
// counter sequence depends only on that lane's own execution history and
// is therefore independent of the shard map. The (time, seq) total order
// the serial loop executes is exactly the order the conservative parallel
// loop is allowed to execute, shard by shard.
//
// Scheduling contexts:
//  * inside an event handler, at()/after() inherit the firing event's
//    lane — a node's timers live on that node's lane and never leave its
//    shard;
//  * outside execution (setup code, and control-plane closures fired at
//    barriers) they use the control lane, which is the numerically
//    LARGEST lane: at equal times, control events fire after all shard
//    events, which is what lets the parallel coordinator run them at a
//    global barrier;
//  * Network passes explicit producer lanes and target shards to
//    at_message(); a hand-off whose target is another shard crosses via a
//    bounded SPSC ring (spsc.h), never a lock and never an allocation.
#pragma once

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "simnet/event_queue.h"
#include "simnet/spsc.h"
#include "simnet/topology.h"

namespace canopus::simnet {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x5eed) : seed_(seed), rng_(seed) {
    install_default();
  }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Context-aware clock: a worker thread sees its shard's local virtual
  /// time; everyone else (serial execution, setup code, control closures
  /// at barriers) sees the global clock.
  Time now() const { return tl_ctx_.sim == this ? tl_ctx_.now : now_; }

  /// The trial seed every deterministic stream derives from (per-node
  /// process RNGs are seeded as derive_seed(derive_seed(seed(), salt), id)
  /// so their draws are independent of execution interleaving).
  std::uint64_t seed() const { return seed_; }

  /// Setup/control-plane RNG. NOT for protocol code running inside node
  /// events — under sharded execution the draw order would depend on the
  /// schedule; use the per-process RNG (Process::rng()) instead.
  Rng& rng() { return rng_; }

  // --- shard configuration ---------------------------------------------

  /// Adopts a node/link -> shard partition (see make_shard_map) and
  /// precomputes the pairwise lookahead matrix from `topo`. Must be called
  /// before the Network is constructed and before anything is scheduled.
  void configure_shards(const Topology& topo, ShardMap map);

  /// Registers the topology dimensions with a trivial single-shard map.
  /// Called by the Network constructor; a no-op when configure_shards()
  /// already installed a map for the same topology.
  void init_topology(std::size_t num_nodes, std::size_t num_links);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t node_shard(NodeId n) const { return lane_shard_[n]; }
  std::uint32_t link_shard(LinkId l) const {
    return lane_shard_[num_nodes_ + l];
  }
  std::uint32_t link_lane(LinkId l) const {
    return static_cast<std::uint32_t>(num_nodes_ + l);
  }
  /// The worker shard executing the current event, or `fallback` outside
  /// worker context (serial execution, setup, control closures). Network
  /// uses this to index its per-shard statistics slots.
  std::uint32_t exec_shard(std::uint32_t fallback) const {
    return tl_ctx_.sim == this ? tl_ctx_.shard : fallback;
  }

  // --- scheduling -------------------------------------------------------

  /// Schedules `fn` at absolute time `t` (clamped to now). Inside an event
  /// handler the closure inherits the firing event's lane; outside it uses
  /// the control lane (fires at a global barrier under sharded execution).
  EventId at(Time abs_time, InlineFn fn);

  EventId after(Time delay, InlineFn fn) {
    if (delay < 0) delay = 0;
    // Per-node clock skew (gray fault plane, DESIGN.md §13): a skewed
    // node's nominal delay is transformed at arming time. skewed_nodes_
    // is only written by fault events at control barriers (workers
    // parked), so the guard read is race-free under sharded execution.
    if (skewed_nodes_ != 0) delay = skewed_delay(delay);
    const Time base = now();
    return at(base + delay, std::move(fn));
  }

  /// Skews node n's timer clock: delays armed via after() from n's
  /// execution context become round(delay / rate) + offset (clamped >= 0).
  /// rate > 1 is a fast clock (timers fire early), rate < 1 a slow one;
  /// offset is a constant lag. rate 1 / offset 0 clears the skew. Call
  /// from control context only (fault events, setup code) — the tables
  /// are read by every worker.
  void set_clock_skew(NodeId n, double rate, Time offset);

  /// Schedules `fn` on node `n`'s lane from OUTSIDE execution (attach-time
  /// on_start hooks). The closure runs in n's shard, and everything it
  /// schedules stays there.
  EventId at_node(NodeId n, Time abs_time, InlineFn fn);

  /// Schedules a typed message event produced by `lane` to execute in
  /// `shard`. The producer lane must be owned by the scheduling context's
  /// shard; crossing into another shard rides the SPSC ring and is only
  /// legal along a positive-lookahead edge (enforced by make_shard_map).
  void at_message(Time abs_time, std::uint32_t lane, std::uint32_t shard,
                  MessageEvent&& ev);

  /// Control-lane convenience for tests; protocol code goes through
  /// Network, which supplies explicit lanes.
  void at_message(Time abs_time, MessageEvent&& ev);

  void cancel(EventId id);

  // --- execution --------------------------------------------------------

  /// Runs serially until every queue drains. Returns events processed.
  std::uint64_t run();

  /// Runs events with time <= deadline serially, then advances the clock
  /// to exactly `deadline`. Returns events processed.
  std::uint64_t run_until(Time deadline);

  /// Sharded execution of exactly the events run_until() would execute, in
  /// the same total order per shard — one worker thread per configured
  /// shard, conservatively synchronized on the topology's cross-shard
  /// lookahead; control-lane events fire at global barriers. Bit-identical
  /// to run_until() by construction. Returns events processed.
  std::uint64_t run_parallel_until(Time deadline);

  std::uint64_t events_processed() const { return events_; }
  bool idle() const {
    if (!ctl_q_.empty()) return false;
    for (const auto& s : shards_)
      if (!s->q.empty()) return false;
    return true;
  }

  /// Process-wide count of events processed by every Simulator instance
  /// (all threads). The bench harness derives events/second from deltas of
  /// this counter; it is updated once per run call, not per event.
  static std::uint64_t global_events() {
    return global_events_.load(std::memory_order_relaxed);
  }

 private:
  /// One shard: its event queue plus the clock/state words its worker
  /// publishes. eot ("earliest output time") is the conservative promise
  /// "this shard will never again execute, and therefore never again
  /// produce, an event below this time"; neighbors execute strictly below
  /// min over in-edges of (eot + lookahead). state is gen-stamped
  /// (see state_word) so the coordinator's quiescence check can't accept
  /// a report from before the last barrier.
  struct alignas(64) Shard {
    EventQueue q;
    std::uint64_t events = 0;  ///< worker-local; read after join
    alignas(64) std::atomic<Time> eot{0};
    alignas(64) std::atomic<std::uint64_t> state{0};
  };

  /// Worker-thread execution context. tl_ctx_.sim discriminates: set only
  /// while a worker of THIS simulator executes events.
  struct ExecCtx {
    Simulator* sim = nullptr;
    std::uint32_t shard = 0;
    std::uint32_t lane = 0;
    Time now = 0;
  };
  static thread_local ExecCtx tl_ctx_;

  /// EventId top byte routes cancel() to the owning queue without lookup.
  static constexpr std::uint32_t kCtlTag = 0xff;
  static constexpr EventId kIdMask = (EventId{1} << 56) - 1;
  static EventId tag_id(std::uint32_t tag, EventId id) {
    return id == kInvalidEvent ? id : (static_cast<EventId>(tag) << 56) | id;
  }

  /// [63..33] progress (executed + drained, wrap-tolerant: only equality
  /// matters) | [32] idle | [31..0] barrier generation.
  static std::uint64_t state_word(std::uint32_t gen, std::uint64_t progress,
                                  bool idle) {
    return (progress << 33) | (std::uint64_t{idle} << 32) | gen;
  }
  static std::uint32_t state_gen(std::uint64_t w) {
    return static_cast<std::uint32_t>(w);
  }
  static bool state_idle(std::uint64_t w) { return (w >> 32) & 1; }

  std::uint64_t lane_seq(std::uint32_t lane) {
    assert(lane < lane_ctr_.size());
    // Pre-increment: seq 0 is the queue's disarmed-slot sentinel, so the
    // first seq on lane 0 must be 1, not 0. A counter past 2^40 would
    // bleed into the lane bits and corrupt the (time, seq) tie-break.
    const std::uint64_t n = ++lane_ctr_[lane];
    assert((n >> 40) == 0 && "per-lane seq counter overflowed lane packing");
    return (static_cast<std::uint64_t>(lane) << 40) | n;
  }
  static std::uint32_t seq_lane(std::uint64_t seq) {
    return static_cast<std::uint32_t>(seq >> 40);
  }

  void install(const ShardMap& map, std::vector<Time> lookahead,
               std::size_t nodes, std::size_t links);
  void install_default();
  SpscEventRing* ring(std::uint32_t from, std::uint32_t to) const {
    return rings_[from * shards_.size() + to].get();
  }

  /// Picks the globally earliest event over the control queue and every
  /// shard queue (the serial merge). Returns nullptr when all are empty.
  EventQueue* earliest_queue(EventQueue::Key& key);

  // Parallel machinery (simulator.cpp).
  void worker_loop(std::uint32_t me);
  void drain_inbound(std::uint32_t me, std::uint64_t& progress);
  void handoff_full_wait(SpscEventRing& r);
  bool quiesced(std::uint32_t gen, std::vector<std::uint64_t>& scratch);
  void park_workers();
  void drain_ctl_cancels();

  Time now_ = 0;
  std::uint32_t cur_lane_ = 0;  ///< lane of the serially-executing event
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t events_ = 0;

  /// The lane whose execution context is scheduling right now: the firing
  /// event's lane inside a handler, the control lane otherwise.
  std::uint32_t ctx_lane() const {
    return tl_ctx_.sim == this ? tl_ctx_.lane : cur_lane_;
  }

  /// Applies the scheduling context's node skew to a nominal timer delay.
  /// Only node lanes skew — link and control lanes keep true time (faults
  /// and audit probes must fire when the schedule says, not when a drifted
  /// node thinks they should).
  Time skewed_delay(Time delay) const {
    const std::uint32_t lane = ctx_lane();
    if (lane >= num_nodes_) return delay;
    const double r = skew_rate_[lane];
    if (r != 1.0)
      delay = static_cast<Time>(
          std::llround(static_cast<double>(delay) / r));
    delay += skew_offset_[lane];
    return delay < 0 ? 0 : delay;
  }

  // Lane tables: nodes 0..N-1, links N..N+L-1, control N+L (largest).
  std::size_t num_nodes_ = 0;
  std::size_t num_links_ = 0;
  std::uint32_t control_lane_ = 0;
  bool configured_ = false;  ///< a topology's map was installed
  std::vector<std::uint64_t> lane_ctr_;
  std::vector<std::uint32_t> lane_shard_;  ///< per non-control lane

  // Per-node clock skew (set_clock_skew). Written at control barriers
  // only; the barrier handshake publishes the writes to workers, exactly
  // like up_/severed_ in the Network.
  std::vector<double> skew_rate_;
  std::vector<Time> skew_offset_;
  int skewed_nodes_ = 0;  ///< nonzero skews in flight (hot-path guard)

  EventQueue ctl_q_;  ///< control-lane events; fired at barriers
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscEventRing>> rings_;  ///< [from*K + to]
  std::vector<Time> lookahead_;                        ///< [from*K + to]

  // Coordinator <-> worker channel (run_parallel_until only).
  std::atomic<Time> ctl_limit_{0};
  std::atomic<std::uint32_t> ctl_gen_{0};
  std::atomic<std::uint32_t> stop_acks_{0};
  std::atomic<bool> ctl_stop_{false};
  std::atomic<bool> done_{false};

  // Worker-context cancels of control-lane timers (armed by control code —
  // e.g. a heal closure restarting a node's election timer — and later
  // reset by the node itself). The control queue belongs to the
  // coordinator, so workers enqueue the id here; the coordinator applies
  // the batch at each barrier BEFORE firing, which is exactly when the
  // serial merge would have applied it: control events cannot fire between
  // barriers, so a cancel deferred to the next barrier can never lose the
  // race against its target. Cold path (faults only) — a mutex is fine.
  std::mutex ctl_cancel_mu_;
  std::vector<EventId> ctl_cancels_;

  static std::atomic<std::uint64_t> global_events_;
};

// --- hot-path inline definitions -------------------------------------------

inline EventId Simulator::at(Time abs_time, InlineFn fn) {
  if (tl_ctx_.sim == this) {
    // Worker context: inherit the firing event's lane. Only node-lane (and
    // at barriers, control-lane) events schedule closures, so the lane is
    // owned by this worker's shard — closures never cross shards.
    const std::uint32_t lane = tl_ctx_.lane;
    assert(lane < control_lane_ && lane_shard_[lane] == tl_ctx_.shard);
    if (abs_time < tl_ctx_.now) abs_time = tl_ctx_.now;
    return tag_id(tl_ctx_.shard, shards_[tl_ctx_.shard]->q.schedule(
                                     abs_time, lane_seq(lane), std::move(fn)));
  }
  if (abs_time < now_) abs_time = now_;
  const std::uint32_t lane = cur_lane_;
  if (lane == control_lane_)
    return tag_id(kCtlTag,
                  ctl_q_.schedule(abs_time, lane_seq(lane), std::move(fn)));
  const std::uint32_t s = lane_shard_[lane];
  return tag_id(s,
                shards_[s]->q.schedule(abs_time, lane_seq(lane), std::move(fn)));
}

inline EventId Simulator::at_node(NodeId n, Time abs_time, InlineFn fn) {
  assert(tl_ctx_.sim != this && n < num_nodes_);
  if (abs_time < now_) abs_time = now_;
  const std::uint32_t s = lane_shard_[n];
  return tag_id(s, shards_[s]->q.schedule(abs_time, lane_seq(n), std::move(fn)));
}

inline void Simulator::at_message(Time abs_time, std::uint32_t lane,
                                  std::uint32_t shard, MessageEvent&& ev) {
  if (tl_ctx_.sim == this) {
    assert(lane_shard_[lane] == tl_ctx_.shard);
    if (abs_time < tl_ctx_.now) abs_time = tl_ctx_.now;
    const std::uint64_t seq = lane_seq(lane);
    if (shard == tl_ctx_.shard) {
      shards_[shard]->q.schedule_message(abs_time, seq, std::move(ev));
      return;
    }
    // Cross-shard hand-off: bounded ring, preallocated per positive-
    // lookahead edge. The full-ring wait lives in the cold path
    // (simulator.cpp); steady state is a single in-place push.
    SpscEventRing& r = *ring(tl_ctx_.shard, shard);
    if (r.full()) handoff_full_wait(r);
    r.push(abs_time, seq, std::move(ev));
    return;
  }
  if (abs_time < now_) abs_time = now_;
  shards_[shard]->q.schedule_message(abs_time, lane_seq(lane), std::move(ev));
}

inline void Simulator::at_message(Time abs_time, MessageEvent&& ev) {
  assert(tl_ctx_.sim != this);
  if (abs_time < now_) abs_time = now_;
  ctl_q_.schedule_message(abs_time, lane_seq(control_lane_), std::move(ev));
}

inline void Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const auto tag = static_cast<std::uint32_t>(id >> 56);
  if (tl_ctx_.sim == this && tag == kCtlTag) {
    // Worker cancelling a control-lane event: defer to the coordinator
    // (see ctl_cancels_). Stale ids are harmless — EventQueue::cancel is
    // generation-checked.
    std::lock_guard<std::mutex> lock(ctl_cancel_mu_);
    ctl_cancels_.push_back(id);
    return;
  }
  // Timers are lane-local, so a worker only ever cancels events in its own
  // shard's queue; control-context cancels happen at barriers. A foreign
  // tag here would race the owning worker's queue (heap corruption), so
  // fail hard even in release rather than cancel concurrently.
  if (tl_ctx_.sim == this && tag != tl_ctx_.shard) {
    assert(false && "worker cancel targets an event owned by another shard");
    std::abort();
  }
  EventQueue& q = tag == kCtlTag ? ctl_q_ : shards_[tag]->q;
  q.cancel(id & kIdMask);
}

}  // namespace canopus::simnet
