// Discrete-event simulation kernel: virtual clock + event queue + RNG.
//
// Single-threaded and fully deterministic: a run is a pure function of the
// seed and the registered processes. Protocol code never reads wall-clock
// time or global randomness.
//
// Two scheduling currencies (see event_queue.h): closures via at()/after()
// for timers, and typed MessageEvents via at_message() for the network's
// per-message pipeline — the latter is plain pooled data, so the message
// hot path schedules without allocating.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "simnet/event_queue.h"

namespace canopus::simnet {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x5eed) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  EventId at(Time abs_time, InlineFn fn) {
    return queue_.schedule(abs_time < now_ ? now_ : abs_time, std::move(fn));
  }

  EventId after(Time delay, InlineFn fn) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules a typed message event (same clamping and FIFO-tie ordering
  /// as at()). Message events are not cancellable — see EventQueue.
  void at_message(Time abs_time, MessageEvent&& ev) {
    queue_.schedule_message(abs_time < now_ ? now_ : abs_time, std::move(ev));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with time <= deadline, then advances the clock to exactly
  /// `deadline`. Returns the number of events processed.
  std::uint64_t run_until(Time deadline);

  std::uint64_t events_processed() const { return events_; }
  bool idle() const { return queue_.empty(); }

  /// Process-wide count of events processed by every Simulator instance
  /// (all threads). The bench harness derives events/second from deltas of
  /// this counter; it is updated once per run()/run_until() call, not per
  /// event, so it costs nothing on the hot path.
  static std::uint64_t global_events() {
    return global_events_.load(std::memory_order_relaxed);
  }

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t events_ = 0;
  static std::atomic<std::uint64_t> global_events_;
};

}  // namespace canopus::simnet
