// Discrete-event simulation kernel: virtual clock + event queue + RNG.
//
// Single-threaded and fully deterministic: a run is a pure function of the
// seed and the registered processes. Protocol code never reads wall-clock
// time or global randomness.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "simnet/event_queue.h"

namespace canopus::simnet {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 0x5eed) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  EventId at(Time abs_time, std::function<void()> fn) {
    return queue_.schedule(abs_time < now_ ? now_ : abs_time, std::move(fn));
  }

  EventId after(Time delay, std::function<void()> fn) {
    return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with time <= deadline, then advances the clock to exactly
  /// `deadline`. Returns the number of events processed.
  std::uint64_t run_until(Time deadline);

  std::uint64_t events_processed() const { return events_; }
  bool idle() const { return queue_.empty(); }

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t events_ = 0;
};

}  // namespace canopus::simnet
