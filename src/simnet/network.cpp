#include "simnet/network.h"

#include <cassert>
#include <cmath>

namespace canopus::simnet {

namespace {
std::uint64_t pair_key(NodeId a, NodeId b) {
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

Network::Network(Simulator& sim, Topology topo, CpuModel cpu)
    : sim_(sim),
      topo_(std::move(topo)),
      cpu_(cpu),
      procs_(topo_.num_nodes(), nullptr),
      up_(topo_.num_nodes(), true),
      link_free_(topo_.num_links(), 0),
      cpu_free_(topo_.num_nodes(), 0),
      link_bytes_(topo_.num_links(), 0),
      cpu_backlog_(topo_.num_nodes(), 0),
      link_backlog_(topo_.num_links(), 0),
      cpu_factor_(topo_.num_nodes(), 1.0),
      link_memo_(topo_.num_links()) {
  // Register the topology with the kernel's lane tables (a no-op when
  // configure_shards() already installed a sharded map), then size the
  // per-shard scratch slots: one per shard plus one for control/serial
  // contexts.
  sim_.init_topology(topo_.num_nodes(), topo_.num_links());
  slots_.resize(sim_.num_shards() + 1);
}

void Network::attach(NodeId id, Process& proc) {
  assert(id < procs_.size());
  procs_[id] = &proc;
  proc.sim_ = &sim_;
  proc.net_ = this;
  proc.id_ = id;
  // Per-process RNG stream: a function of the trial seed and the node id
  // only, so draws are reproducible under any execution schedule.
  proc.rng_ = Rng(derive_seed(derive_seed(sim_.seed(), 0x90de5eedULL), id));
  auto start = [&proc] { proc.on_start(); };
  static_assert(InlineFn::fits_inline<decltype(start)>);
  // on_start runs on the node's own lane (and therefore in its shard):
  // everything it schedules — timers, the first sends — stays shard-local.
  sim_.at_node(id, 0, std::move(start));
}

void Network::on_message_event(MessageEvent&& ev) {
  switch (ev.kind) {
    case MessageEvent::Kind::kHop:
      hop_arrival(std::move(ev.msg), ev.hop);
      break;
    case MessageEvent::Kind::kDeliver:
      deliver(std::move(ev.msg), sim_.now());
      break;
    case MessageEvent::Kind::kDispatch:
      dispatch(std::move(ev.msg));
      break;
  }
}

void Network::send(Message m) {
  const NodeId src = m.src();
  const NodeId dst = m.dst();
  // Attach-time invariant; debug-only so the release hot path pays nothing.
  assert(src < procs_.size() && dst < procs_.size());

  if (!up_[src]) return;  // a crashed node sends nothing
  if (src == dst) {
    send_local(std::move(m));
    return;
  }
  // Fast path: with no severed pairs (the overwhelmingly common case) skip
  // the hash probe entirely. Same discipline for every gray map below:
  // an empty container costs one load + branch per send.
  if (!severed_.empty() && severed_.contains(pair_key(src, dst))) {
    ++slot().stats.dropped;
    return;
  }

  const Time now = sim_.now();

  if (!flapping_.empty() && flap_down(pair_key(src, dst), now)) {
    ++slot().stats.dropped;
    return;
  }

  // Sender CPU: serialize + syscall cost, serialized per node.
  cpu_backlog_[src] = std::max(cpu_backlog_[src], cpu_free_[src] - now);
  const Time t =
      std::max(now, cpu_free_[src]) +
      scaled_cpu(src, cpu_.send_fixed + cpu_byte_cost(m.wire_bytes()));
  cpu_free_[src] = t;

  NetworkStats& st = slot().stats;
  ++st.messages;
  st.bytes += m.wire_bytes();

  // Bounded reordering: the jitter delays the wire departure, not the
  // sender's CPU, so two back-to-back sends can swap on the link while the
  // sender's serial-CPU accounting stays FIFO.
  Time depart = t;
  if (!reorder_.empty()) {
    auto it = reorder_.find(pair_key(src, dst));
    if (it != reorder_.end()) {
      depart += static_cast<Time>(it->second.rng.below(
          static_cast<std::uint64_t>(it->second.max_jitter) + 1));
      ++st.reordered;
    }
  }

  // Duplication: a byte-identical echo enters the wire echo_delay later
  // (the Payload copy is a refcount bump, not an allocation).
  bool dup = false;
  Time echo_at = 0;
  Message echo;
  if (!dup_echo_.empty()) {
    auto it = dup_echo_.find(pair_key(src, dst));
    if (it != dup_echo_.end()) {
      dup = true;
      echo = m;
      echo_at = depart + it->second;
      ++st.messages;
      st.bytes += m.wire_bytes();
      ++st.duplicated;
    }
  }

  // Store-and-forward, one event per hop: a link's transmission slot is
  // claimed when the message actually ARRIVES at that link. (Reserving all
  // hops inside this call would order reservations by send-call time, so a
  // WAN message — which reaches the destination's down-link only ~66 ms
  // from now — would block intra-DC messages that physically arrive there
  // first.)
  //
  // Lanes/shards: the first-hop arrival is produced by the sender's node
  // lane and executes in the sender's shard (make_shard_map guarantees a
  // path's first link is owned by its source's shard).
  sim_.at_message(depart, /*lane=*/src, sim_.node_shard(src),
                  make_event(std::move(m), MessageEvent::Kind::kHop, 0));
  if (dup)
    sim_.at_message(echo_at, /*lane=*/src, sim_.node_shard(src),
                    make_event(std::move(echo), MessageEvent::Kind::kHop, 0));
}

void Network::hop_arrival(Message&& m, std::size_t hop) {
  const auto& path = topo_.path(m.src(), m.dst());
  if (hop >= path.size()) {
    deliver(std::move(m), sim_.now());
    return;
  }
  const LinkId l = path[hop];
  const Time now = sim_.now();
  link_backlog_[l] = std::max(link_backlog_[l], link_free_[l] - now);
  const Time start = std::max(now, link_free_[l]);
  const Time serialize = link_serialize(l, m.wire_bytes());
  link_free_[l] = start + serialize;
  link_bytes_[l] += m.wire_bytes();
  const Time next = start + serialize + topo_.link(l).latency;
  // The next-hop arrival is produced by THIS link's lane and executes in
  // the shard owning the next link (the destination node's shard past the
  // end — the same shard, since a path's last link is owned by it). When
  // those differ the hand-off crosses shards, and the crossed link's
  // latency — included in `next` — is exactly the lookahead the kernel
  // synchronizes on.
  const std::uint32_t next_shard = hop + 1 < path.size()
                                       ? sim_.link_shard(path[hop + 1])
                                       : sim_.node_shard(m.dst());
  sim_.at_message(next, sim_.link_lane(l), next_shard,
                  make_event(std::move(m), MessageEvent::Kind::kHop, hop + 1));
}

void Network::send_local(Message m) {
  const NodeId src = m.src();
  if (!up_[src]) return;
  const Time t = std::max(sim_.now(), cpu_free_[src]) +
                 scaled_cpu(src, cpu_.send_fixed);
  cpu_free_[src] = t;
  sim_.at_message(t, /*lane=*/src, sim_.node_shard(src),
                  make_event(std::move(m), MessageEvent::Kind::kDeliver));
}

void Network::deliver(Message&& m, Time arrival) {
  const NodeId dst = m.dst();
  if (!up_[dst] || procs_[dst] == nullptr) {
    ++slot().stats.dropped;
    return;
  }
  // Receiver CPU: deserialization + handler dispatch, serialized per node.
  cpu_backlog_[dst] =
      std::max(cpu_backlog_[dst], cpu_free_[dst] - arrival);
  const Time ready =
      std::max(arrival, cpu_free_[dst]) +
      scaled_cpu(dst, cpu_.recv_fixed + cpu_byte_cost(m.wire_bytes()));
  cpu_free_[dst] = ready;
  // Delivery and dispatch both execute in the destination's shard.
  sim_.at_message(ready, /*lane=*/dst, sim_.node_shard(dst),
                  make_event(std::move(m), MessageEvent::Kind::kDispatch));
}

void Network::dispatch(Message&& m) {
  if (!up_[m.dst()]) {
    ++slot().stats.dropped;
    return;
  }
  if (trace_) trace_(sim_.now(), m);
  procs_[m.dst()]->on_message(m);
}

void Network::crash(NodeId n) { up_[n] = false; }
void Network::recover(NodeId n) { up_[n] = true; }
void Network::sever(NodeId a, NodeId b) { severed_.insert(pair_key(a, b)); }
void Network::heal(NodeId a, NodeId b) { severed_.erase(pair_key(a, b)); }

void Network::set_cpu_factor(NodeId n, double factor) {
  assert(n < cpu_factor_.size() && factor > 0);
  cpu_factor_[n] = factor;
}

void Network::flap(NodeId a, NodeId b, Time period) {
  assert(period > 0);
  flapping_[pair_key(a, b)] = {sim_.now(), period};
}

void Network::flap_stop(NodeId a, NodeId b) {
  flapping_.erase(pair_key(a, b));
}

void Network::duplicate(NodeId a, NodeId b, Time echo_delay) {
  assert(echo_delay >= 0);
  dup_echo_[pair_key(a, b)] = echo_delay;
}

void Network::duplicate_stop(NodeId a, NodeId b) {
  dup_echo_.erase(pair_key(a, b));
}

void Network::reorder(NodeId a, NodeId b, Time max_jitter) {
  assert(max_jitter >= 0);
  ReorderState& s = reorder_[pair_key(a, b)];
  s.max_jitter = max_jitter;
  // The jitter stream depends only on (trial seed, pair): the same window
  // re-opened draws the same sequence, independent of anything else the
  // storm did — so a minimized schedule replays the surviving window's
  // jitters bit-identically.
  s.rng = Rng(derive_seed(derive_seed(sim_.seed(), 0x6a177e5ULL),
                          pair_key(a, b)));
}

void Network::reorder_stop(NodeId a, NodeId b) {
  reorder_.erase(pair_key(a, b));
}

void Network::set_clock_skew(NodeId n, double rate, Time offset) {
  sim_.set_clock_skew(n, rate, offset);
}

}  // namespace canopus::simnet
