#include "simnet/network.h"

#include <cassert>
#include <cmath>

namespace canopus::simnet {

namespace {
std::uint64_t pair_key(NodeId a, NodeId b) {
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

Network::Network(Simulator& sim, Topology topo, CpuModel cpu)
    : sim_(sim),
      topo_(std::move(topo)),
      cpu_(cpu),
      procs_(topo_.num_nodes(), nullptr),
      up_(topo_.num_nodes(), true),
      link_free_(topo_.num_links(), 0),
      cpu_free_(topo_.num_nodes(), 0),
      link_bytes_(topo_.num_links(), 0),
      cpu_backlog_(topo_.num_nodes(), 0),
      link_backlog_(topo_.num_links(), 0),
      link_memo_(topo_.num_links()) {}

void Network::attach(NodeId id, Process& proc) {
  assert(id < procs_.size());
  procs_[id] = &proc;
  proc.sim_ = &sim_;
  proc.net_ = this;
  proc.id_ = id;
  auto start = [&proc] { proc.on_start(); };
  static_assert(InlineFn::fits_inline<decltype(start)>);
  sim_.after(0, std::move(start));
}

void Network::on_message_event(MessageEvent&& ev) {
  switch (ev.kind) {
    case MessageEvent::Kind::kHop:
      hop_arrival(std::move(ev.msg), ev.hop);
      break;
    case MessageEvent::Kind::kDeliver:
      deliver(std::move(ev.msg), sim_.now());
      break;
    case MessageEvent::Kind::kDispatch:
      dispatch(std::move(ev.msg));
      break;
  }
}

void Network::send(Message m) {
  const NodeId src = m.src();
  const NodeId dst = m.dst();
  // Attach-time invariant; debug-only so the release hot path pays nothing.
  assert(src < procs_.size() && dst < procs_.size());

  if (!up_[src]) return;  // a crashed node sends nothing
  if (src == dst) {
    send_local(std::move(m));
    return;
  }
  // Fast path: with no severed pairs (the overwhelmingly common case) skip
  // the hash probe entirely.
  if (!severed_.empty() && severed_.contains(pair_key(src, dst))) {
    ++stats_.dropped;
    return;
  }

  const Time now = sim_.now();

  // Sender CPU: serialize + syscall cost, serialized per node.
  cpu_backlog_[src] = std::max(cpu_backlog_[src], cpu_free_[src] - now);
  const Time t = std::max(now, cpu_free_[src]) + cpu_.send_fixed +
                 cpu_byte_cost(m.wire_bytes());
  cpu_free_[src] = t;

  ++stats_.messages;
  stats_.bytes += m.wire_bytes();
  // Store-and-forward, one event per hop: a link's transmission slot is
  // claimed when the message actually ARRIVES at that link. (Reserving all
  // hops inside this call would order reservations by send-call time, so a
  // WAN message — which reaches the destination's down-link only ~66 ms
  // from now — would block intra-DC messages that physically arrive there
  // first.)
  sim_.at_message(t, make_event(std::move(m), MessageEvent::Kind::kHop, 0));
}

void Network::hop_arrival(Message&& m, std::size_t hop) {
  const auto& path = topo_.path(m.src(), m.dst());
  if (hop >= path.size()) {
    deliver(std::move(m), sim_.now());
    return;
  }
  const LinkId l = path[hop];
  const Time now = sim_.now();
  link_backlog_[l] = std::max(link_backlog_[l], link_free_[l] - now);
  const Time start = std::max(now, link_free_[l]);
  const Time serialize = link_serialize(l, m.wire_bytes());
  link_free_[l] = start + serialize;
  link_bytes_[l] += m.wire_bytes();
  const Time next = start + serialize + topo_.link(l).latency;
  sim_.at_message(next,
                  make_event(std::move(m), MessageEvent::Kind::kHop, hop + 1));
}

void Network::send_local(Message m) {
  if (!up_[m.src()]) return;
  const Time t = std::max(sim_.now(), cpu_free_[m.src()]) + cpu_.send_fixed;
  cpu_free_[m.src()] = t;
  sim_.at_message(t, make_event(std::move(m), MessageEvent::Kind::kDeliver));
}

void Network::deliver(Message&& m, Time arrival) {
  const NodeId dst = m.dst();
  if (!up_[dst] || procs_[dst] == nullptr) {
    ++stats_.dropped;
    return;
  }
  // Receiver CPU: deserialization + handler dispatch, serialized per node.
  cpu_backlog_[dst] =
      std::max(cpu_backlog_[dst], cpu_free_[dst] - arrival);
  const Time ready = std::max(arrival, cpu_free_[dst]) + cpu_.recv_fixed +
                     cpu_byte_cost(m.wire_bytes());
  cpu_free_[dst] = ready;
  sim_.at_message(ready,
                  make_event(std::move(m), MessageEvent::Kind::kDispatch));
}

void Network::dispatch(Message&& m) {
  if (!up_[m.dst()]) {
    ++stats_.dropped;
    return;
  }
  if (trace_) trace_(sim_.now(), m);
  procs_[m.dst()]->on_message(m);
}

void Network::crash(NodeId n) { up_[n] = false; }
void Network::recover(NodeId n) { up_[n] = true; }
void Network::sever(NodeId a, NodeId b) { severed_.insert(pair_key(a, b)); }
void Network::heal(NodeId a, NodeId b) { severed_.erase(pair_key(a, b)); }

}  // namespace canopus::simnet
