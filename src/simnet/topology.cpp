#include "simnet/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace canopus::simnet {

NodeId Topology::add_node(int rack, int dc) {
  const NodeId id = static_cast<NodeId>(rack_.size());
  rack_.push_back(rack);
  dc_.push_back(dc);
  path_stride_ = 0;  // invalidate path table layout
  return id;
}

LinkId Topology::add_link(Time latency, double bytes_per_ns, int site) {
  assert(latency >= 0 && bytes_per_ns > 0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(LinkSpec{latency, bytes_per_ns});
  link_site_.push_back(site);
  return id;
}

void Topology::ensure_path_table() {
  if (path_stride_ == num_nodes() && path_stride_ != 0) return;
  path_stride_ = num_nodes();
  paths_.assign(path_stride_ * path_stride_, {});
}

void Topology::set_path(NodeId a, NodeId b, std::vector<LinkId> links) {
  ensure_path_table();
  paths_[a * path_stride_ + b] = std::move(links);
}

const std::vector<LinkId>& Topology::path(NodeId a, NodeId b) const {
  assert(path_stride_ == num_nodes());
  return paths_[a * path_stride_ + b];
}

Time Topology::base_latency(NodeId a, NodeId b, std::size_t bytes) const {
  Time t = 0;
  for (LinkId l : path(a, b)) {
    const LinkSpec& spec = links_[l];
    t += spec.latency +
         static_cast<Time>(std::llround(static_cast<double>(bytes) /
                                        spec.bytes_per_ns));
  }
  return t;
}

Time Topology::min_cut_latency(const ShardMap& map, std::uint32_t a,
                               std::uint32_t b) const {
  Time best = kTimeInf;
  const std::size_t n = num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::vector<LinkId>& p = path(s, d);
      for (std::size_t h = 0; h + 1 < p.size(); ++h) {
        // Only true crossings: consecutive links in the SAME shard (always
        // when a == b, and under folded maps even across sites) are plain
        // local scheduling, not a hand-off.
        if (map.link_shard[p[h]] != map.link_shard[p[h + 1]] &&
            map.link_shard[p[h]] == a && map.link_shard[p[h + 1]] == b)
          best = std::min(best, links_[p[h]].latency);
      }
    }
  }
  return best;
}

std::vector<Time> min_cut_matrix(const Topology& topo, const ShardMap& map) {
  const std::size_t k = map.num_shards;
  std::vector<Time> m(k * k, kTimeInf);
  const std::size_t n = topo.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::vector<LinkId>& p = topo.path(s, d);
      for (std::size_t h = 0; h + 1 < p.size(); ++h) {
        const std::uint32_t a = map.link_shard[p[h]];
        const std::uint32_t b = map.link_shard[p[h + 1]];
        if (a != b)
          m[a * k + b] = std::min(m[a * k + b], topo.link(p[h]).latency);
      }
    }
  }
  return m;
}

ShardMap make_shard_map(const Topology& topo, unsigned requested) {
  // Sites are the builders' locality groups: rack_of covers both builders
  // (build_multi_dc assigns rack == dc).
  int max_site = 0;
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    max_site = std::max(max_site, topo.rack_of(i));
  for (LinkId l = 0; l < topo.num_links(); ++l)
    max_site = std::max(max_site, topo.site_of_link(l));
  const unsigned sites = static_cast<unsigned>(max_site) + 1;

  ShardMap map;
  map.num_shards = std::max(1u, std::min(requested, sites));
  map.node_shard.resize(topo.num_nodes());
  map.link_shard.resize(topo.num_links());
  for (NodeId i = 0; i < topo.num_nodes(); ++i)
    map.node_shard[i] =
        static_cast<std::uint32_t>(topo.rack_of(i)) % map.num_shards;
  for (LinkId l = 0; l < topo.num_links(); ++l)
    map.link_shard[l] =
        static_cast<std::uint32_t>(topo.site_of_link(l)) % map.num_shards;

  // Conservative-PDES validity: the send event (source node) must own the
  // first hop, the delivery event (destination node) the last hop, and any
  // crossing in between carries the crossed link's latency as lookahead —
  // which therefore must be positive.
  const std::size_t n = topo.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::vector<LinkId>& p = topo.path(s, d);
      if (p.empty()) continue;
      if (map.link_shard[p.front()] != map.node_shard[s] ||
          map.link_shard[p.back()] != map.node_shard[d])
        throw std::invalid_argument(
            "shard map: path endpoints not owned by their node's shard");
      for (std::size_t h = 0; h + 1 < p.size(); ++h) {
        if (map.link_shard[p[h]] != map.link_shard[p[h + 1]] &&
            topo.link(p[h]).latency <= 0)
          throw std::invalid_argument(
              "shard map: zero-latency shard crossing (no lookahead)");
      }
    }
  }
  return map;
}

Cluster build_multi_rack(const RackConfig& cfg) {
  Cluster c;
  Topology& t = c.topo;

  struct NodeLinks {
    LinkId up, down;
  };
  std::vector<NodeLinks> node_links;
  std::vector<LinkId> agg_up(cfg.racks), agg_down(cfg.racks);

  for (int r = 0; r < cfg.racks; ++r) {
    agg_up[r] = t.add_link(cfg.uplink_latency, gbps(cfg.uplink_gbps), r);
    agg_down[r] = t.add_link(cfg.uplink_latency, gbps(cfg.uplink_gbps), r);
  }

  auto add_machine = [&](int rack) {
    const NodeId id = t.add_node(rack, /*dc=*/0);
    node_links.push_back(NodeLinks{
        t.add_link(cfg.nic_latency, gbps(cfg.nic_gbps), rack),
        t.add_link(cfg.nic_latency, gbps(cfg.nic_gbps), rack),
    });
    return id;
  };

  for (int r = 0; r < cfg.racks; ++r) {
    for (int s = 0; s < cfg.servers_per_rack; ++s)
      c.servers.push_back(add_machine(r));
    for (int k = 0; k < cfg.clients_per_rack; ++k)
      c.clients.push_back(add_machine(r));
  }

  const std::size_t n = t.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      std::vector<LinkId> path{node_links[a].up};
      if (t.rack_of(a) != t.rack_of(b)) {
        path.push_back(agg_up[t.rack_of(a)]);
        path.push_back(agg_down[t.rack_of(b)]);
      }
      path.push_back(node_links[b].down);
      t.set_path(a, b, std::move(path));
    }
  }
  return c;
}

Cluster build_multi_dc(const WanConfig& cfg) {
  if (cfg.rtt_ms.size() < cfg.servers_per_dc.size())
    throw std::invalid_argument("rtt matrix smaller than datacenter count");

  Cluster c;
  Topology& t = c.topo;
  const int dcs = static_cast<int>(cfg.servers_per_dc.size());

  struct NodeLinks {
    LinkId up, down;
  };
  std::vector<NodeLinks> node_links;

  // Node <-> DC-edge latency: a quarter of the intra-DC RTT so that a
  // same-DC round trip (4 hops) matches the Table 1 diagonal.
  auto edge_latency = [&](int dc) {
    return static_cast<Time>(cfg.rtt_ms[dc][dc] / 4.0 * kMillisecond);
  };

  auto add_machine = [&](int dc) {
    const NodeId id = t.add_node(/*rack=*/dc, dc);
    node_links.push_back(NodeLinks{
        t.add_link(edge_latency(dc), gbps(cfg.nic_gbps), dc),
        t.add_link(edge_latency(dc), gbps(cfg.nic_gbps), dc),
    });
    return id;
  };

  for (int d = 0; d < dcs; ++d) {
    for (int s = 0; s < cfg.servers_per_dc[d]; ++s)
      c.servers.push_back(add_machine(d));
    const int clients =
        d < static_cast<int>(cfg.clients_per_dc.size()) ? cfg.clients_per_dc[d] : 0;
    for (int k = 0; k < clients; ++k) c.clients.push_back(add_machine(d));
  }

  // One WAN link per ordered DC pair. One-way latency is half the RTT minus
  // the edge hops so that end-to-end node RTT matches the matrix entry.
  std::vector<std::vector<LinkId>> wan(dcs, std::vector<LinkId>(dcs));
  for (int i = 0; i < dcs; ++i) {
    for (int j = 0; j < dcs; ++j) {
      if (i == j) continue;
      const double rtt =
          cfg.rtt_ms[i][j] > 0 ? cfg.rtt_ms[i][j] : cfg.rtt_ms[j][i];
      Time one_way = static_cast<Time>(rtt / 2.0 * kMillisecond) -
                     edge_latency(i) - edge_latency(j);
      if (one_way < 0) one_way = 0;
      // Owned by the SOURCE datacenter: the wan-link arrival event (which
      // schedules the next hop into the destination shard) executes in the
      // sender's shard, making the wan latency the cross-shard lookahead.
      wan[i][j] = t.add_link(one_way, gbps(cfg.wan_gbps), i);
    }
  }

  const std::size_t n = t.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      std::vector<LinkId> path{node_links[a].up};
      if (t.dc_of(a) != t.dc_of(b)) path.push_back(wan[t.dc_of(a)][t.dc_of(b)]);
      path.push_back(node_links[b].down);
      t.set_path(a, b, std::move(path));
    }
  }
  return c;
}

const std::vector<std::vector<double>>& table1_rtt_ms() {
  // Paper Table 1. The lower triangle holds inter-site RTTs; the diagonal
  // holds intra-site RTTs. Mirrored here for convenience.
  static const std::vector<std::vector<double>> m = [] {
    std::vector<std::vector<double>> v{
        // IR     CA     VA     TK     OR     SY     FF
        {0.20, 0, 0, 0, 0, 0, 0},               // IR
        {133, 0.20, 0, 0, 0, 0, 0},             // CA
        {66, 60, 0.25, 0, 0, 0, 0},             // VA
        {243, 113, 145, 0.13, 0, 0, 0},         // TK
        {154, 20, 80, 100, 0.26, 0, 0},         // OR
        {295, 168, 226, 103, 161, 0.20, 0},     // SY
        {22, 145, 89, 226, 156, 322, 0.23},     // FF
    };
    for (std::size_t i = 0; i < v.size(); ++i)
      for (std::size_t j = i + 1; j < v.size(); ++j) v[i][j] = v[j][i];
    return v;
  }();
  return m;
}

const std::vector<const char*>& table1_site_names() {
  static const std::vector<const char*> names{"IR", "CA", "VA", "TK",
                                              "OR", "SY", "FF"};
  return names;
}

}  // namespace canopus::simnet
