// Bounded single-producer/single-consumer ring for cross-shard event
// hand-off in the sharded (PDES) simulation kernel.
//
// One ring exists per ordered shard pair with finite lookahead; the
// producer is the sending shard's worker thread, the consumer the
// receiving shard's. Slots are preallocated at run_parallel() start and
// recycled in place, so a steady-state hand-off performs zero heap
// allocations — the pooled MessageEvent (and the shared Payload inside it)
// moves through the ring exactly as it would move through the event queue.
//
// Memory order: the producer release-stores tail_ after constructing the
// slot; the consumer acquire-loads tail_ before reading it, and
// release-stores head_ after vacating it (the release pairs with the
// producer's acquire-load of head_ so slot reuse never overlaps a read).
// Ring-full is resolved by the caller (Simulator::at_message drains its own
// inbound rings while waiting), never by growing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "simnet/event_queue.h"

namespace canopus::simnet {

class SpscEventRing {
 public:
  struct Slot {
    Time time = 0;
    std::uint64_t seq = 0;
    MessageEvent ev;
  };

  explicit SpscEventRing(std::size_t capacity_pow2 = 1024)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    assert((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2);
  }

  /// Producer side. Precondition: !full().
  void push(Time t, std::uint64_t seq, MessageEvent&& ev) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    Slot& s = slots_[tail & mask_];
    s.time = t;
    s.seq = seq;
    s.ev = std::move(ev);
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Producer side; conservative (may briefly report full while the
  /// consumer is mid-drain, never the reverse).
  bool full() const {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) >
           mask_;
  }

  /// Consumer side: moves the oldest entry into `out` if one is pending.
  bool try_pop(Slot& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    Slot& s = slots_[head & mask_];
    out.time = s.time;
    out.seq = s.seq;
    out.ev = std::move(s.ev);
    s.ev.reset();  // drop the payload reference before recycling the slot
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True when the ring holds no entries. Racy by nature; exact only at a
  /// quiescent point (the coordinator's double-read barrier protocol).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<Slot> slots_;
  std::uint64_t mask_;
  // Head and tail on separate cache lines: each side spins on the other's
  // counter without invalidating its own.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace canopus::simnet
