// Bounded single-producer/single-consumer rings.
//
// SpscRing<T> is the generic primitive: a fixed-capacity power-of-two ring
// of raw slots, elements placement-constructed by the producer and
// destroyed by the consumer, so a steady-state hand-off performs zero heap
// allocations and holds no stale copies (a popped Message's Payload
// reference is released immediately). Two users:
//
//  * SpscEventRing (below) — cross-shard event hand-off in the sharded
//    (PDES) simulation kernel: one ring per ordered shard pair with finite
//    lookahead; the producer is the sending shard's worker thread, the
//    consumer the receiving shard's.
//  * runtime::ThreadedRuntime — per-directed-peer-pair mailboxes carrying
//    Messages between node threads, and the driver->node injection lane
//    carrying InlineFn closures (multi-producer fan-in is built as one
//    SPSC ring per sender plus a polling drain loop; see DESIGN.md §12).
//
// Memory order: the producer release-stores tail_ after constructing the
// slot; the consumer acquire-loads tail_ before reading it, and
// release-stores head_ after vacating it (the release pairs with the
// producer's acquire-load of head_ so slot reuse never overlaps a read).
// Head and tail live on separate cache lines so each side spins on the
// other's counter without invalidating its own. Ring-full is resolved by
// the caller (the PDES kernel and the threaded runtime both drain their own
// inbound rings while waiting), never by growing.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"
#include "simnet/event_queue.h"

namespace canopus::simnet {

template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024)
      : storage_(new Slot[capacity_pow2]), mask_(capacity_pow2 - 1) {
    assert((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  ~SpscRing() {
    // Single-threaded at destruction; drain whatever the consumer left.
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; head != tail; ++head) slot(head)->~T();
  }

  /// Producer side. Precondition: !full().
  void push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    ::new (static_cast<void*>(slot(tail))) T(std::move(v));
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Producer side; false (and `v` untouched) when the ring is full.
  bool try_push(T&& v) {
    if (full()) return false;
    push(std::move(v));
    return true;
  }

  /// Producer side; conservative (may briefly report full while the
  /// consumer is mid-drain, never the reverse).
  bool full() const {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) >
           mask_;
  }

  /// Consumer side: moves the oldest entry into `out` and destroys the
  /// slot (dropping any payload reference) before recycling it.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    T* s = slot(head);
    out = std::move(*s);
    s->~T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True when the ring holds no entries. Racy by nature; exact only at a
  /// quiescent point (coordinator barrier / joined threads).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };
  T* slot(std::uint64_t i) {
    return std::launder(reinterpret_cast<T*>(storage_[i & mask_].bytes));
  }

  std::unique_ptr<Slot[]> storage_;
  std::uint64_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/// The PDES kernel's hand-off ring: (time, seq, pooled MessageEvent)
/// triples, exactly as they would sit in the event queue.
class SpscEventRing {
 public:
  struct Slot {
    Time time = 0;
    std::uint64_t seq = 0;
    MessageEvent ev;
  };

  explicit SpscEventRing(std::size_t capacity_pow2 = 1024)
      : ring_(capacity_pow2) {}

  /// Producer side. Precondition: !full().
  void push(Time t, std::uint64_t seq, MessageEvent&& ev) {
    ring_.push(Slot{t, seq, std::move(ev)});
  }

  bool full() const { return ring_.full(); }

  /// Consumer side: moves the oldest entry into `out` if one is pending.
  bool try_pop(Slot& out) { return ring_.try_pop(out); }

  bool empty() const { return ring_.empty(); }

 private:
  SpscRing<Slot> ring_;
};

}  // namespace canopus::simnet
