#include "simnet/simulator.h"

namespace canopus::simnet {

std::atomic<std::uint64_t> Simulator::global_events_{0};

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    queue_.fire_next(now_);
    ++n;
  }
  events_ += n;
  global_events_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    queue_.fire_next(now_);
    ++n;
  }
  now_ = deadline;
  events_ += n;
  global_events_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

}  // namespace canopus::simnet
