// Simulator cold paths plus the sharded (PDES) execution engine.
//
// The parallel engine is a conservative null-message design (DESIGN.md
// §10). Each shard worker repeats one round:
//
//   read neighbor clocks -> drain inbound rings -> execute -> publish
//
// and the soundness of that order is the whole synchronization story: an
// acquire-read of a neighbor's promise (eot = "I will never again produce
// an event below this time") synchronizes with its release-store, which
// the sender performs only AFTER the round's ring pushes — so every
// hand-off older than the promise is visible to the drain, and every
// later hand-off carries time >= promise + lookahead, i.e. at or above
// the bound this shard executes strictly below. Deadlock-freedom follows
// from positive lookahead: the shard holding the globally earliest event
// always satisfies head < min(eot_in + lookahead) and makes progress,
// and blocked workers keep re-reading and re-publishing so rising clocks
// propagate.
//
// Control-lane events (fault injections, probes, client stop hooks) fire
// at global barriers: the coordinator waits until every worker is
// provably idle below the next control time (gen-stamped states + empty
// rings, double-read for stability), parks the workers, fires exactly one
// control event on its own thread, rewinds every shard promise to that
// time, publishes the next control limit, and only then resumes (a worker
// can never observe a generation without the limit its idle bits must be
// judged against). One event per barrier keeps the time-tie order
// right: shard events a control closure inserts at time T must run before
// a second control event at T, because the control lane is the largest
// lane and loses every tie.
#include "simnet/simulator.h"

#include <algorithm>
#include <thread>

namespace canopus::simnet {

namespace {
inline void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Spin-wait backoff: PAUSE for a short burst, then fall back to yielding
// the timeslice. On machines with a core per worker the yield path never
// triggers; on oversubscribed machines (CI runners routinely expose a
// single core) it is what makes the conservative clock exchange advance at
// scheduler speed instead of one lookahead step per preemption quantum.
struct Backoff {
  unsigned n = 0;
  void spin() {
    if (++n > 64)
      std::this_thread::yield();
    else
      cpu_pause();
  }
  void reset() { n = 0; }
};
}  // namespace

std::atomic<std::uint64_t> Simulator::global_events_{0};
thread_local Simulator::ExecCtx Simulator::tl_ctx_;

void Simulator::install_default() {
  // Control-only configuration: no topology yet, one shard, and lane 0 IS
  // the control lane. Standalone users (unit tests, microbenches) never
  // leave this state.
  num_nodes_ = 0;
  num_links_ = 0;
  control_lane_ = 0;
  cur_lane_ = 0;
  lane_ctr_.assign(1, 0);
  lane_shard_.clear();
  shards_.clear();
  shards_.push_back(std::make_unique<Shard>());
  rings_.clear();
  rings_.resize(1);
  lookahead_.clear();
}

void Simulator::install(const ShardMap& map, std::vector<Time> lookahead,
                        std::size_t nodes, std::size_t links) {
  assert(!configured_ && "shard map already installed");
  assert(idle() && events_ == 0 && "install the shard map before scheduling");
  assert(map.num_shards >= 1 && map.num_shards < kCtlTag);
  assert(nodes + links < (std::size_t{1} << 24) && "lane id must fit 24 bits");
  num_nodes_ = nodes;
  num_links_ = links;
  control_lane_ = static_cast<std::uint32_t>(nodes + links);
  cur_lane_ = control_lane_;
  lane_ctr_.assign(nodes + links + 1, 0);
  lane_shard_.resize(nodes + links);
  skew_rate_.assign(nodes, 1.0);
  skew_offset_.assign(nodes, 0);
  skewed_nodes_ = 0;
  for (std::size_t n = 0; n < nodes; ++n) lane_shard_[n] = map.node_shard[n];
  for (std::size_t l = 0; l < links; ++l)
    lane_shard_[nodes + l] = map.link_shard[l];
  shards_.clear();
  for (std::uint32_t k = 0; k < map.num_shards; ++k)
    shards_.push_back(std::make_unique<Shard>());
  lookahead_ = std::move(lookahead);
  const std::size_t k = map.num_shards;
  rings_.clear();
  rings_.resize(k * k);
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = 0; j < k; ++j) {
      if (i == j || lookahead_.empty()) continue;
      if (lookahead_[i * k + j] < kTimeInf)
        rings_[i * k + j] = std::make_unique<SpscEventRing>();
    }
  }
  configured_ = true;
}

void Simulator::set_clock_skew(NodeId n, double rate, Time offset) {
  assert(n < num_nodes_ && rate > 0);
  const bool was = skew_rate_[n] != 1.0 || skew_offset_[n] != 0;
  const bool is = rate != 1.0 || offset != 0;
  skew_rate_[n] = rate;
  skew_offset_[n] = offset;
  skewed_nodes_ += static_cast<int>(is) - static_cast<int>(was);
}

void Simulator::configure_shards(const Topology& topo, ShardMap map) {
  std::vector<Time> la = min_cut_matrix(topo, map);
  install(map, std::move(la), topo.num_nodes(), topo.num_links());
}

void Simulator::init_topology(std::size_t num_nodes, std::size_t num_links) {
  if (configured_) {
    assert(num_nodes == num_nodes_ && num_links == num_links_ &&
           "Network topology disagrees with the installed shard map");
    (void)num_nodes;
    (void)num_links;
    return;
  }
  ShardMap map;
  map.num_shards = 1;
  map.node_shard.assign(num_nodes, 0);
  map.link_shard.assign(num_links, 0);
  install(map, {}, num_nodes, num_links);
}

EventQueue* Simulator::earliest_queue(EventQueue::Key& key) {
  EventQueue* best = nullptr;
  if (!ctl_q_.empty()) {
    key = ctl_q_.next_key();
    best = &ctl_q_;
  }
  for (auto& s : shards_) {
    if (s->q.empty()) continue;
    const EventQueue::Key k = s->q.next_key();
    if (best == nullptr || k < key) {
      key = k;
      best = &s->q;
    }
  }
  return best;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  EventQueue::Key key;
  while (EventQueue* q = earliest_queue(key)) {
    cur_lane_ = seq_lane(key.seq);
    q->fire_next(now_);
    ++n;
  }
  cur_lane_ = control_lane_;
  events_ += n;
  global_events_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  EventQueue::Key key;
  for (;;) {
    EventQueue* q = earliest_queue(key);
    if (q == nullptr || key.time > deadline) break;
    cur_lane_ = seq_lane(key.seq);
    q->fire_next(now_);
    ++n;
  }
  now_ = deadline;
  cur_lane_ = control_lane_;
  events_ += n;
  global_events_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void Simulator::drain_inbound(std::uint32_t me, std::uint64_t& progress) {
  Shard& sh = *shards_[me];
  const std::uint32_t k = num_shards();
  for (std::uint32_t j = 0; j < k; ++j) {
    SpscEventRing* r = j == me ? nullptr : ring(j, me);
    if (r == nullptr) continue;
    SpscEventRing::Slot slot;
    while (r->try_pop(slot)) {
      sh.q.schedule_message(slot.time, slot.seq, std::move(slot.ev));
      ++progress;
    }
  }
}

void Simulator::handoff_full_wait(SpscEventRing& r) {
  // A producer blocked on a full ring drains its OWN inbound rings while
  // waiting — the consumer drains every round, and servicing our own
  // producers here breaks the only possible cyclic wait. The drained work
  // is republished with the round's state word; a worker blocked here is
  // provably non-idle (it is mid-execution), so quiescence cannot pass.
  std::uint64_t progress = 0;
  Backoff wait;
  while (r.full()) {
    drain_inbound(tl_ctx_.shard, progress);
    wait.spin();
  }
}

void Simulator::worker_loop(std::uint32_t me) {
  tl_ctx_ = ExecCtx{this, me, 0, now_};
  Shard& sh = *shards_[me];
  const std::uint32_t k = num_shards();
  struct InEdge {
    Shard* from;
    SpscEventRing* ring;
    Time lookahead;
  };
  std::vector<InEdge> ins;
  for (std::uint32_t j = 0; j < k; ++j) {
    if (j == me || lookahead_.empty()) continue;
    const Time la = lookahead_[j * k + me];
    if (la < kTimeInf) ins.push_back(InEdge{shards_[j].get(), ring(j, me), la});
  }

  std::uint32_t gen = ctl_gen_.load(std::memory_order_acquire);
  std::uint64_t progress = 0;
  Backoff idle_wait;
  for (;;) {
    if (ctl_stop_.load(std::memory_order_acquire)) {
      // Deep park: ack once, then spin ONLY on the generation counter so
      // the coordinator can mutate queues, clocks and lane counters
      // without any worker re-reading them mid-barrier.
      stop_acks_.fetch_add(1, std::memory_order_acq_rel);
      Backoff parked;
      while (ctl_gen_.load(std::memory_order_acquire) == gen) parked.spin();
      if (done_.load(std::memory_order_acquire)) break;
      ++gen;
      idle_wait.reset();
      continue;
    }
    const Time limit = ctl_limit_.load(std::memory_order_acquire);
    const std::uint64_t round_start = progress;

    // 1. Read neighbor promises FIRST. The acquire pairs with the
    // publisher's release below: hand-offs made before a promise are
    // visible to the drain, later ones are timestamped at or above
    // promise + lookahead — which is exactly the bound we execute below.
    Time safe = kTimeInf;
    for (const InEdge& e : ins) {
      safe = std::min(safe,
                      e.from->eot.load(std::memory_order_acquire) + e.lookahead);
    }

    // 2. Drain inbound rings, clearing our idle bit BEFORE the first pop:
    // the coordinator must never observe "everyone idle + rings empty"
    // while a popped-but-unqueued event is in this worker's hands.
    bool busy_stored = false;
    for (const InEdge& e : ins) {
      if (e.ring->empty()) continue;
      if (!busy_stored) {
        sh.state.store(state_word(gen, progress, false),
                       std::memory_order_release);
        busy_stored = true;
      }
      SpscEventRing::Slot slot;
      while (e.ring->try_pop(slot)) {
        sh.q.schedule_message(slot.time, slot.seq, std::move(slot.ev));
        ++progress;
      }
    }

    // 3. Execute strictly below the conservative bound and never past the
    // control limit. Events AT the limit are ours to run: the control
    // event at that time fires later, at the barrier (largest lane loses
    // the tie), exactly as in the serial merge.
    while (!sh.q.empty()) {
      const EventQueue::Key key = sh.q.next_key();
      if (key.time > limit || key.time >= safe) break;
      tl_ctx_.lane = seq_lane(key.seq);
      sh.q.fire_next(tl_ctx_.now);
      ++sh.events;
      ++progress;
    }

    // 4. Publish our promise AFTER this round's hand-offs (a neighbor that
    // reads it therefore sees them too), then the gen-stamped idle state.
    const Time head = sh.q.empty() ? kTimeInf : sh.q.next_key().time;
    sh.eot.store(std::min(head, safe), std::memory_order_release);
    sh.state.store(state_word(gen, progress, head > limit),
                   std::memory_order_release);
    if (progress != round_start)
      idle_wait.reset();
    else
      idle_wait.spin();
  }
  tl_ctx_ = ExecCtx{};
}

bool Simulator::quiesced(std::uint32_t gen,
                         std::vector<std::uint64_t>& scratch) {
  // Quiescent below the published limit iff: every worker's LATEST state
  // word is idle and stamped with the current generation, every ring is
  // empty at a point after those words were read, and a re-read finds the
  // words unchanged. A worker clears its idle bit before popping a ring
  // (release, sequenced before the pop's head-store), so observing an
  // empty ring implies observing the busy mark of any in-flight drain —
  // the re-read then fails and we retry.
  const std::size_t k = shards_.size();
  scratch.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t w = shards_[i]->state.load(std::memory_order_acquire);
    if (state_gen(w) != gen || !state_idle(w)) return false;
    scratch[i] = w;
  }
  for (const auto& r : rings_) {
    if (r && !r->empty()) return false;
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (shards_[i]->state.load(std::memory_order_acquire) != scratch[i])
      return false;
  }
  return true;
}

void Simulator::park_workers() {
  ctl_stop_.store(true, std::memory_order_release);
  const std::uint32_t k = num_shards();
  Backoff wait;
  while (stop_acks_.load(std::memory_order_acquire) != k) wait.spin();
}

void Simulator::drain_ctl_cancels() {
  std::lock_guard<std::mutex> lock(ctl_cancel_mu_);
  for (EventId id : ctl_cancels_) ctl_q_.cancel(id & kIdMask);
  ctl_cancels_.clear();
}

std::uint64_t Simulator::run_parallel_until(Time deadline) {
  assert(tl_ctx_.sim == nullptr && "nested run_parallel_until");
  const std::uint32_t k = num_shards();

  ctl_gen_.store(0, std::memory_order_relaxed);
  stop_acks_.store(0, std::memory_order_relaxed);
  ctl_stop_.store(false, std::memory_order_relaxed);
  done_.store(false, std::memory_order_relaxed);
  // The control queue only changes at barriers (workers defer cancels and
  // never schedule control events), so tc stays valid from its publication
  // here / at the end of a barrier until the next barrier.
  Time tc = ctl_q_.empty() ? kTimeInf : ctl_q_.next_time();
  ctl_limit_.store(std::min(tc, deadline), std::memory_order_relaxed);
  for (auto& s : shards_) {
    s->events = 0;
    s->eot.store(now_, std::memory_order_relaxed);
    s->state.store(state_word(0, 0, false), std::memory_order_relaxed);
  }

  // Thread creation synchronizes-with the start of each worker, so the
  // relaxed initialization above is visible to all of them.
  std::vector<std::thread> workers;
  workers.reserve(k);
  for (std::uint32_t w = 0; w < k; ++w)
    workers.emplace_back([this, w] { worker_loop(w); });

  std::vector<std::uint64_t> scratch;
  std::uint32_t gen = 0;
  std::uint64_t ctl_events = 0;
  for (;;) {
    // The limit for the current generation was published before the
    // workers could observe the generation (pre-spawn for gen 0, inside
    // the previous barrier otherwise), so every idle bit stamped with
    // `gen` was computed against exactly min(tc, deadline).
    Backoff wait;
    while (!quiesced(gen, scratch)) wait.spin();
    if (tc > deadline) break;

    // Barrier: park every worker, fire exactly ONE control event on this
    // thread (the park handshake gives it exclusive access), rewind every
    // shard promise to the control time — the closure may have inserted
    // shard events there, below previously published clocks — and resume
    // with a fresh generation so stale idle reports can't be believed.
    // Deferred worker cancels apply first: the event we stopped for may
    // have been cancelled during the round, in which case nothing fires
    // and the barrier recomputes the limit.
    park_workers();
    drain_ctl_cancels();
    const Time limit = std::min(tc, deadline);
    const Time due = ctl_q_.empty() ? kTimeInf : ctl_q_.next_time();
    if (due <= limit) {
      const EventQueue::Key key = ctl_q_.next_key();
      now_ = key.time;
      cur_lane_ = seq_lane(key.seq);
      ctl_q_.fire_next(now_);
      ++ctl_events;
      cur_lane_ = control_lane_;
    }
    for (auto& s : shards_) s->eot.store(now_, std::memory_order_relaxed);
    stop_acks_.store(0, std::memory_order_relaxed);
    ctl_stop_.store(false, std::memory_order_relaxed);
    // Publish the NEXT generation's limit BEFORE resuming: the release
    // fetch_add orders the store, and a parked worker leaves only via an
    // acquire read of the bumped generation, so any worker executing under
    // the new gen is guaranteed to see the new limit. Storing it after the
    // resume (as a loop-top store would) lets a fast worker stamp the new
    // generation idle against the STALE limit; once the larger limit
    // landed, quiesced() would trust that word and the coordinator could
    // fire the next control event — or break out — with shard events in
    // (old limit, new limit] still pending.
    tc = ctl_q_.empty() ? kTimeInf : ctl_q_.next_time();
    ctl_limit_.store(std::min(tc, deadline), std::memory_order_release);
    ctl_gen_.fetch_add(1, std::memory_order_release);
    ++gen;
  }

  park_workers();
  done_.store(true, std::memory_order_release);
  ctl_gen_.fetch_add(1, std::memory_order_release);
  for (auto& w : workers) w.join();
  // Cancels deferred after the last barrier must not leak into a later
  // serial run (where the target would otherwise fire).
  drain_ctl_cancels();

  std::uint64_t n = ctl_events;
  for (auto& s : shards_) n += s->events;
  now_ = deadline;
  cur_lane_ = control_lane_;
  events_ += n;
  global_events_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

}  // namespace canopus::simnet
