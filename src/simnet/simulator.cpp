#include "simnet/simulator.h"

namespace canopus::simnet {

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
    ++n;
  }
  events_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
    ++n;
  }
  now_ = deadline;
  events_ += n;
  return n;
}

}  // namespace canopus::simnet
