// A network message: routing header + typed payload from the message bus.
//
// The payload is a simnet::Payload (see payload.h): a shared immutable
// value, so a broadcast of a large proposal (Canopus proposals can carry
// thousands of requests) shares one allocation across all receivers.
// `wire_bytes` is what the network charges for; it is computed by the
// protocol from its own serialization rules (see DESIGN.md §Messages), so
// the simulator never needs to actually serialize anything.
#pragma once

#include <cstddef>
#include <utility>

#include "common/types.h"
#include "simnet/payload.h"

namespace canopus::simnet {

class Message {
 public:
  Message() = default;

  Message(NodeId src, NodeId dst, std::size_t wire_bytes, Payload payload)
      : src_(src),
        dst_(dst),
        wire_bytes_(wire_bytes),
        payload_(std::move(payload)) {}

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  std::size_t wire_bytes() const { return wire_bytes_; }

  /// Returns the payload if it carries tag T, else nullptr.
  template <class T>
  const T* as() const {
    return payload_.as<T>();
  }

  const Payload& payload() const { return payload_; }

  /// Re-address the same payload to a different destination (used when a
  /// representative re-broadcasts a fetched proposal inside its super-leaf).
  /// Shares the payload allocation with the original.
  Message readdressed(NodeId src, NodeId dst) const {
    Message m = *this;
    m.src_ = src;
    m.dst_ = dst;
    return m;
  }

 private:
  NodeId src_ = kInvalidNode;
  NodeId dst_ = kInvalidNode;
  std::size_t wire_bytes_ = 0;
  Payload payload_;
};

}  // namespace canopus::simnet
