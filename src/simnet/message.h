// Type-erased network message.
//
// Payloads are held behind a shared_ptr so that a broadcast of a large
// proposal (Canopus proposals can carry thousands of requests) shares one
// allocation across all receivers. `wire_bytes` is what the network charges
// for; it is computed by the protocol from its own serialization rules, so
// the simulator never needs to actually serialize anything.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/types.h"

namespace canopus::simnet {

class Message {
 public:
  Message() = default;

  template <class T>
  Message(NodeId src, NodeId dst, std::size_t wire_bytes, T payload)
      : src_(src),
        dst_(dst),
        wire_bytes_(wire_bytes),
        payload_(std::make_shared<Model<T>>(std::move(payload))) {}

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  std::size_t wire_bytes() const { return wire_bytes_; }

  /// Returns the payload if it has dynamic type T, else nullptr.
  template <class T>
  const T* as() const {
    auto* model = dynamic_cast<const Model<T>*>(payload_.get());
    return model ? &model->value : nullptr;
  }

  /// Re-address the same payload to a different destination (used when a
  /// representative re-broadcasts a fetched proposal inside its super-leaf).
  Message readdressed(NodeId src, NodeId dst) const {
    Message m = *this;
    m.src_ = src;
    m.dst_ = dst;
    return m;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
  };
  template <class T>
  struct Model final : Concept {
    explicit Model(T v) : value(std::move(v)) {}
    T value;
  };

  NodeId src_ = kInvalidNode;
  NodeId dst_ = kInvalidNode;
  std::size_t wire_bytes_ = 0;
  std::shared_ptr<const Concept> payload_;
};

}  // namespace canopus::simnet
