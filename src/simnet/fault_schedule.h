// FaultSchedule: deterministic, simulation-time-scheduled fault injection.
//
// A schedule is an ordered list of fault events, each pinned to an absolute
// simulation time. Arming the schedule turns every event into one simulator
// event; because the simulator is deterministic, two runs with the same
// schedule produce bit-identical fault timings — which is what lets the
// failure benches compare systems under *identical* fault histories, and
// lets parallel trial execution stay bit-identical to serial.
//
// Two fault families (DESIGN.md §9, §13):
//  * fail-stop: crash/recover a node, sever/heal a directed pair;
//  * gray failures: degraded CPU (slow, not dead), flapping links, message
//    duplication, bounded reordering, and per-node clock skew — the
//    failures that page people without tripping a liveness detector.
//
// The schedule only knows the Network primitives (network.h). Protocols
// that need node-level crash handling on top (Canopus silencing its
// broadcast groups, a Raft member stopping its timers) hook the per-event
// `apply` callback the workload layer supplies — see
// workload/fault_scenario.h.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "simnet/network.h"

namespace canopus::simnet {

struct FaultEvent {
  enum class Kind {
    kCrash,
    kRecover,
    kSever,
    kHeal,
    // Gray-failure palette. Each fault is a [start, stop] window; the
    // parameters ride in `x`/`d` so one event is self-contained and a
    // schedule replays without external state.
    kCpuSlow,      ///< node a: compute costs multiplied by x until kCpuNormal
    kCpuNormal,    ///< node a: compute cost multiplier back to 1
    kFlapStart,    ///< pair a->b: link oscillates down/up with full period d
    kFlapStop,     ///< pair a->b: flapping ends (link stays up)
    kDupStart,     ///< pair a->b: every message also delivered again +d later
    kDupStop,      ///< pair a->b: duplication ends
    kReorderStart, ///< pair a->b: per-message seeded delivery jitter in [0,d]
    kReorderStop,  ///< pair a->b: reordering ends
    kSkewSet,      ///< node a: timer clock runs at rate x with constant lag d
    kSkewClear,    ///< node a: clock back to rate 1, lag 0
  };
  Time at = 0;
  Kind kind = Kind::kCrash;
  NodeId a = kInvalidNode;  ///< the node (node faults) or the source (pair faults)
  NodeId b = kInvalidNode;  ///< the destination (pair faults only)
  double x = 0;  ///< CPU factor (kCpuSlow) or clock rate (kSkewSet)
  Time d = 0;    ///< flap period / dup echo delay / reorder jitter bound /
                 ///< skew offset
};

const char* fault_kind_name(FaultEvent::Kind k);

class FaultSchedule {
 public:
  FaultSchedule& crash_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kCrash, n, kInvalidNode, 0, 0});
    return *this;
  }
  FaultSchedule& recover_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kRecover, n, kInvalidNode, 0, 0});
    return *this;
  }
  /// Severs the directed pair a -> b (messages a -> b are dropped;
  /// b -> a still flows — this is what makes partitions *asymmetric*).
  /// Idempotent within one schedule: severing a pair that a prior event
  /// already left severed is dropped, so replays that count sever/heal
  /// events (the generator's max_severed accounting, the minimizer's
  /// pairing) never double-book a pair. Judged in builder-call order.
  FaultSchedule& sever_at(Time t, NodeId a, NodeId b) {
    if (sever_balance(a, b) > 0) return *this;
    events_.push_back({t, FaultEvent::Kind::kSever, a, b, 0, 0});
    return *this;
  }
  /// Heals a -> b. Idempotent like sever_at: a heal of a pair the schedule
  /// does not currently leave severed is dropped.
  FaultSchedule& heal_at(Time t, NodeId a, NodeId b) {
    if (sever_balance(a, b) <= 0) return *this;
    events_.push_back({t, FaultEvent::Kind::kHeal, a, b, 0, 0});
    return *this;
  }
  /// Symmetric partition helpers: sever/heal both directions.
  FaultSchedule& partition_at(Time t, NodeId a, NodeId b) {
    return sever_at(t, a, b).sever_at(t, b, a);
  }
  FaultSchedule& join_at(Time t, NodeId a, NodeId b) {
    return heal_at(t, a, b).heal_at(t, b, a);
  }

  // --- gray-failure palette (DESIGN.md §13) ----------------------------
  FaultSchedule& cpu_slow_at(Time t, NodeId n, double factor) {
    events_.push_back(
        {t, FaultEvent::Kind::kCpuSlow, n, kInvalidNode, factor, 0});
    return *this;
  }
  FaultSchedule& cpu_normal_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kCpuNormal, n, kInvalidNode, 0, 0});
    return *this;
  }
  FaultSchedule& flap_at(Time t, NodeId a, NodeId b, Time period) {
    events_.push_back({t, FaultEvent::Kind::kFlapStart, a, b, 0, period});
    return *this;
  }
  FaultSchedule& flap_stop_at(Time t, NodeId a, NodeId b) {
    events_.push_back({t, FaultEvent::Kind::kFlapStop, a, b, 0, 0});
    return *this;
  }
  FaultSchedule& dup_at(Time t, NodeId a, NodeId b, Time echo_delay) {
    events_.push_back({t, FaultEvent::Kind::kDupStart, a, b, 0, echo_delay});
    return *this;
  }
  FaultSchedule& dup_stop_at(Time t, NodeId a, NodeId b) {
    events_.push_back({t, FaultEvent::Kind::kDupStop, a, b, 0, 0});
    return *this;
  }
  FaultSchedule& reorder_at(Time t, NodeId a, NodeId b, Time max_jitter) {
    events_.push_back({t, FaultEvent::Kind::kReorderStart, a, b, 0, max_jitter});
    return *this;
  }
  FaultSchedule& reorder_stop_at(Time t, NodeId a, NodeId b) {
    events_.push_back({t, FaultEvent::Kind::kReorderStop, a, b, 0, 0});
    return *this;
  }
  FaultSchedule& skew_at(Time t, NodeId n, double rate, Time offset) {
    events_.push_back({t, FaultEvent::Kind::kSkewSet, n, kInvalidNode, rate,
                       offset});
    return *this;
  }
  FaultSchedule& skew_clear_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kSkewClear, n, kInvalidNode, 0, 0});
    return *this;
  }

  /// Raw append, bypassing the builders' bookkeeping. For callers that
  /// enforce their own structure: the chaos generator's sorted rebuild and
  /// the minimizer's subset replays (storm_minimizer.h).
  FaultSchedule& add(const FaultEvent& ev) {
    events_.push_back(ev);
    return *this;
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Appends all of `other`'s events and re-sorts by time, keeping each
  /// source schedule's relative order at equal timestamps (stable sort, so
  /// a generator's repair-before-fault tie discipline survives the merge).
  /// This is how per-group chaos storms compose into one fleet schedule —
  /// see workload/sharded.h.
  FaultSchedule& merge(const FaultSchedule& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return *this;
  }

  /// Applies one event directly to the network (no scheduling).
  static void apply(Network& net, const FaultEvent& ev);

  /// Schedules every event on the network's simulator. When `hook` is
  /// non-null it replaces the default Network application for that event —
  /// the caller is then responsible for calling FaultSchedule::apply (or an
  /// equivalent) itself. Events at equal times fire in insertion order
  /// (the simulator queue is FIFO for ties).
  using ApplyFn = std::function<void(Network&, const FaultEvent&)>;
  void arm(Network& net, ApplyFn hook = {}) const;

 private:
  /// Net sever count for the directed pair in builder-call order: > 0 means
  /// the schedule's own events leave the pair severed at this point.
  int sever_balance(NodeId a, NodeId b) const {
    int bal = 0;
    for (const FaultEvent& ev : events_) {
      if (ev.a != a || ev.b != b) continue;
      if (ev.kind == FaultEvent::Kind::kSever) ++bal;
      if (ev.kind == FaultEvent::Kind::kHeal) --bal;
    }
    return bal;
  }

  std::vector<FaultEvent> events_;
};

}  // namespace canopus::simnet
