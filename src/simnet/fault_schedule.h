// FaultSchedule: deterministic, simulation-time-scheduled fault injection.
//
// A schedule is an ordered list of crash / recover / sever / heal events,
// each pinned to an absolute simulation time. Arming the schedule turns
// every event into one simulator event; because the simulator is
// deterministic, two runs with the same schedule produce bit-identical
// fault timings — which is what lets the failure benches compare systems
// under *identical* fault histories, and lets parallel trial execution stay
// bit-identical to serial.
//
// The schedule only knows the Network primitives (crash/recover/sever/heal,
// network.h). Protocols that need node-level crash handling on top (Canopus
// silencing its broadcast groups, a Raft member stopping its timers) hook
// the per-event `apply` callback the workload layer supplies — see
// workload/fault_scenario.h.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "simnet/network.h"

namespace canopus::simnet {

struct FaultEvent {
  enum class Kind { kCrash, kRecover, kSever, kHeal };
  Time at = 0;
  Kind kind = Kind::kCrash;
  NodeId a = kInvalidNode;  ///< the node (crash/recover) or the source (sever/heal)
  NodeId b = kInvalidNode;  ///< the destination (sever/heal only)
};

const char* fault_kind_name(FaultEvent::Kind k);

class FaultSchedule {
 public:
  FaultSchedule& crash_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kCrash, n, kInvalidNode});
    return *this;
  }
  FaultSchedule& recover_at(Time t, NodeId n) {
    events_.push_back({t, FaultEvent::Kind::kRecover, n, kInvalidNode});
    return *this;
  }
  /// Severs the directed pair a -> b (messages a -> b are dropped;
  /// b -> a still flows — this is what makes partitions *asymmetric*).
  FaultSchedule& sever_at(Time t, NodeId a, NodeId b) {
    events_.push_back({t, FaultEvent::Kind::kSever, a, b});
    return *this;
  }
  FaultSchedule& heal_at(Time t, NodeId a, NodeId b) {
    events_.push_back({t, FaultEvent::Kind::kHeal, a, b});
    return *this;
  }
  /// Symmetric partition helpers: sever/heal both directions.
  FaultSchedule& partition_at(Time t, NodeId a, NodeId b) {
    return sever_at(t, a, b).sever_at(t, b, a);
  }
  FaultSchedule& join_at(Time t, NodeId a, NodeId b) {
    return heal_at(t, a, b).heal_at(t, b, a);
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Appends all of `other`'s events and re-sorts by time, keeping each
  /// source schedule's relative order at equal timestamps (stable sort, so
  /// a generator's repair-before-fault tie discipline survives the merge).
  /// This is how per-group chaos storms compose into one fleet schedule —
  /// see workload/sharded.h.
  FaultSchedule& merge(const FaultSchedule& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
    std::stable_sort(
        events_.begin(), events_.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return *this;
  }

  /// Applies one event directly to the network (no scheduling).
  static void apply(Network& net, const FaultEvent& ev);

  /// Schedules every event on the network's simulator. When `hook` is
  /// non-null it replaces the default Network application for that event —
  /// the caller is then responsible for calling FaultSchedule::apply (or an
  /// equivalent) itself. Events at equal times fire in insertion order
  /// (the simulator queue is FIFO for ties).
  using ApplyFn = std::function<void(Network&, const FaultEvent&)>;
  void arm(Network& net, ApplyFn hook = {}) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace canopus::simnet
