// Static network topology: nodes, links and routed paths.
//
// The builders mirror the two testbeds in the paper's evaluation (§8):
//
//  * build_multi_rack — the single-datacenter cluster: racks of machines
//    behind ToR switches, ToR switches joined by an oversubscribed
//    aggregation switch (Mellanox SX1012s, 10 Gb NICs, 2x10 Gb uplinks).
//  * build_multi_dc  — the EC2 deployment: datacenters joined by WAN links
//    parameterized by the paper's Table 1 RTT matrix.
//
// A Topology is immutable once built; all mutable link/node state lives in
// Network.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace canopus::simnet {

using LinkId = std::uint32_t;

struct LinkSpec {
  Time latency = 0;         ///< one-way propagation delay, ns
  double bytes_per_ns = 0;  ///< capacity (10 Gb/s = 1.25 B/ns)
};

/// Converts gigabits per second to bytes per nanosecond.
constexpr double gbps(double g) { return g / 8.0; }

struct ShardMap;

class Topology {
 public:
  NodeId add_node(int rack, int dc);
  /// `site` tags the link with the locality group (rack or datacenter) that
  /// OWNS it for sharded simulation: the builders tag NIC links with their
  /// node's site, aggregation links with their rack, and each WAN link with
  /// its SOURCE datacenter, so a message crosses shards only along a
  /// positive-latency link (see make_shard_map / DESIGN.md §10).
  LinkId add_link(Time latency, double bytes_per_ns, int site = 0);

  /// Sets the directed path a -> b as an ordered list of links.
  void set_path(NodeId a, NodeId b, std::vector<LinkId> links);

  const std::vector<LinkId>& path(NodeId a, NodeId b) const;

  std::size_t num_nodes() const { return rack_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const LinkSpec& link(LinkId id) const { return links_[id]; }

  int rack_of(NodeId n) const { return rack_[n]; }
  int dc_of(NodeId n) const { return dc_[n]; }
  int site_of_link(LinkId l) const { return link_site_[l]; }

  /// Minimum end-to-end latency a -> b for an empty network and a message of
  /// `bytes` bytes (propagation + serialization, no queueing, no CPU).
  Time base_latency(NodeId a, NodeId b, std::size_t bytes) const;

  /// The PDES lookahead source: the minimum one-way latency over every link
  /// at which a routed message hands over from shard `a` to shard `b` (the
  /// link whose arrival event schedules the next hop into the other shard).
  /// kTimeInf when no path crosses a -> b. O(paths * hops); compute once.
  Time min_cut_latency(const ShardMap& map, std::uint32_t a,
                       std::uint32_t b) const;

 private:
  std::vector<LinkSpec> links_;
  std::vector<int> rack_;
  std::vector<int> dc_;
  std::vector<int> link_site_;
  std::vector<std::vector<LinkId>> paths_;  // dense n*n once finalized
  std::size_t path_stride_ = 0;

  void ensure_path_table();
};

/// Node/link -> shard assignment for the sharded (PDES) simulation kernel.
/// Shards partition SITES (racks in build_multi_rack, datacenters in
/// build_multi_dc), so every intra-site event stays shard-local and every
/// cross-shard hand-off rides a tagged positive-latency link.
struct ShardMap {
  std::vector<std::uint32_t> node_shard;
  std::vector<std::uint32_t> link_shard;
  std::uint32_t num_shards = 1;
};

/// Builds a ShardMap with min(requested, number of sites) shards (sites are
/// folded round-robin when requested < sites) and validates the partition
/// for conservative PDES: each routed path must start and end in its
/// endpoint's shard, and every shard-crossing link must have latency > 0
/// (the crossing latency IS the lookahead). Throws std::invalid_argument
/// on a zero-lookahead crossing.
ShardMap make_shard_map(const Topology& topo, unsigned requested);

/// Dense num_shards^2 matrix of min_cut_latency values (row-major,
/// [from * num_shards + to]); one path scan for all pairs.
std::vector<Time> min_cut_matrix(const Topology& topo, const ShardMap& map);

/// A built cluster: the topology plus which nodes are consensus servers and
/// which are client machines.
struct Cluster {
  Topology topo;
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;
};

struct RackConfig {
  int racks = 3;
  int servers_per_rack = 3;
  int clients_per_rack = 5;
  double nic_gbps = 10.0;
  Time nic_latency = 1'500;     ///< node <-> ToR one way
  double uplink_gbps = 20.0;    ///< 2 x 10 Gb ToR <-> aggregation
  Time uplink_latency = 2'000;  ///< ToR <-> aggregation one way
};

/// Single-datacenter testbed (§8.1). Oversubscription emerges naturally:
/// servers_per_rack x nic_gbps vs uplink_gbps.
Cluster build_multi_rack(const RackConfig& cfg);

struct WanConfig {
  std::vector<int> servers_per_dc;
  std::vector<int> clients_per_dc;
  /// Full RTT matrix in milliseconds; diagonal entries are intra-DC RTTs.
  std::vector<std::vector<double>> rtt_ms;
  double nic_gbps = 10.0;
  double wan_gbps = 10.0;
};

/// Multi-datacenter testbed (§8.2).
Cluster build_multi_dc(const WanConfig& cfg);

/// The paper's Table 1: RTTs in ms between IR, CA, VA, TK, OR, SY, FF
/// (Ireland, California, Virginia, Tokyo, Oregon, Sydney, Frankfurt).
const std::vector<std::vector<double>>& table1_rtt_ms();

/// Names of the Table 1 sites, in matrix order.
const std::vector<const char*>& table1_site_names();

}  // namespace canopus::simnet
