// Priority event queue with O(log n) schedule/pop and O(1) cancellation.
//
// Ordering: events fire in (time, seq) order. The queue imposes no policy
// on seq beyond uniqueness — callers choose the discipline:
//
//  * standalone use (tests, microbenches): the internal monotonic counter
//    (the schedule(Time, fn) overloads) gives plain schedule-order ties;
//  * sharded simulation: the Simulator passes EXTERNAL seqs of the form
//    (lane << 40) | per-lane-counter, where a lane is one node, one link,
//    or the control plane, and each lane's counter is only ever advanced by
//    the shard that owns the lane. Because a lane's counter sequence
//    depends only on that lane's own execution history, the (time, seq)
//    total order — and therefore the cross-SHARD tie-break at equal times:
//    lower lane first, then lower per-lane counter — is identical whether
//    the shards run serially on one queue or in parallel on many, which is
//    what makes the PDES backend bit-identical to the serial kernel
//    (DESIGN.md §10; tested in tests/simnet/event_queue_test.cpp and
//    tests/workload/pdes_determinism_test.cpp).
//
// Two event kinds share one deterministic firing order:
//
//  * closure events — an InlineFn timer callback (64-byte inline storage,
//    see inline_fn.h); the protocol timer currency. These are cancellable,
//    so their bodies live in a recycled slot vector (no per-event map
//    allocation) and the closure heap holds plain {time, seq, slot}
//    records. Cancellation disarms the slot immediately (freeing the
//    closure) and leaves a stale heap record behind; stale records are
//    skipped at pop and compacted away whenever they outnumber live ones,
//    so arm/cancel churn — e.g. a pipeline timer re-armed every cycle —
//    keeps both the heap and the slot storage bounded at O(live events).
//
//  * message events — a pooled MessageEvent record: a Message plus which
//    stage of the network pipeline (hop / deliver / dispatch) it is in.
//    Network schedules every per-message step as one of these. Message
//    events are never cancelled (a crashed receiver is checked at dispatch
//    time), so they skip the slot indirection entirely and live directly
//    in their own heap — the steady-state message path is two vector
//    operations and zero heap allocations.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "simnet/inline_fn.h"
#include "simnet/message.h"

namespace canopus::simnet {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

struct MessageEvent;

/// Executes popped MessageEvents. Network is the implementation; the
/// indirection keeps the kernel (queue + simulator) free of any network
/// dependency.
class MessageEventTarget {
 public:
  virtual void on_message_event(MessageEvent&& ev) = 0;

 protected:
  ~MessageEventTarget() = default;
};

/// One scheduled step of a message's journey through the network, as plain
/// data: no closure, no allocation. `hop` is the index into the message's
/// routed path (meaningful for kHop only).
struct MessageEvent {
  enum class Kind : std::uint8_t {
    kHop,      ///< arrival at path link `hop` (past the end: destination)
    kDeliver,  ///< local hand-off reaching the receiver (skips links)
    kDispatch, ///< receiver CPU done; invoke the process handler
  };

  MessageEventTarget* target = nullptr;
  Message msg;
  Kind kind = Kind::kHop;
  std::uint32_t hop = 0;

  /// Releases the payload reference.
  void reset() {
    target = nullptr;
    msg = Message();
  }
};

class EventQueue {
 public:
  // The schedule/fire pair runs millions of times per trial; the hot
  // members are defined inline (bottom of this header) so Network's and
  // Simulator's loops inline them across the TU boundary.

  /// Schedules `fn` at absolute time `t` with an explicit tie-break
  /// sequence number (see the header comment for the discipline). `seq`
  /// must be unique among pending events and nonzero (0 marks disarmed
  /// slots internally).
  EventId schedule(Time t, std::uint64_t seq, InlineFn fn);

  /// Convenience for standalone use: ties fire in schedule order via the
  /// queue-local counter. Do not mix with external seqs.
  EventId schedule(Time t, InlineFn fn) {
    return schedule(t, next_seq_++, std::move(fn));
  }

  /// Schedules a typed message event at absolute time `t`; same ordering
  /// guarantees as schedule(). Message events are not cancellable (and
  /// return no id): they bypass the slot machinery and live directly in
  /// the message heap — no per-event allocation at steady state.
  void schedule_message(Time t, std::uint64_t seq, MessageEvent&& ev);

  void schedule_message(Time t, MessageEvent&& ev) {
    schedule_message(t, next_seq_++, std::move(ev));
  }

  /// Cancels a pending closure event; cancelling an already-fired or
  /// invalid id is a no-op. (Ids carry a per-slot generation, so a stale id
  /// can only collide with a later event after 2^32 reuses of one slot.)
  void cancel(EventId id);

  bool empty() const { return live_ == 0 && msg_heap_.empty(); }
  std::size_t size() const { return live_ + msg_heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time();

  /// (time, seq) of the earliest pending event — the run loops use this to
  /// merge several queues (shards + control plane) into one total order.
  /// Precondition: !empty().
  struct Key {
    Time time;
    std::uint64_t seq;
    friend bool operator<(const Key& a, const Key& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }
  };
  Key next_key();

  /// The popped earliest pending event: exactly one of `fn` / `msg` is
  /// engaged, per `is_message`.
  struct Fired {
    Time time = 0;
    bool is_message = false;
    InlineFn fn;
    MessageEvent msg;

    /// Executes the event: the closure, or the message step on its target.
    void fire() {
      if (is_message)
        msg.target->on_message_event(std::move(msg));
      else
        fn();
    }
  };

  /// Pops and returns the earliest pending event. Precondition: !empty().
  /// Diagnostic/test path; the simulator's run loop uses fire_next().
  Fired pop();

  /// Pops the earliest pending event, stores its time into `now` (before
  /// the handler runs, so handlers observe the advanced clock), and
  /// executes it in place — one move out of storage, no intermediate
  /// record. This is the per-event hot path. Precondition: !empty().
  void fire_next(Time& now);

  /// Diagnostics: closure-heap records currently held, including
  /// not-yet-compacted cancelled ones. Lazy compaction bounds this at
  /// O(size()).
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;   ///< schedule order; unique, so the order is total
    std::uint32_t slot;
  };
  struct Later {  // std::greater-style comparator for a min-heap
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct Slot {
    InlineFn fn;
    std::uint64_t seq = 0;   ///< seq of the armed event, 0 when disarmed
    std::uint32_t gen = 0;   ///< bumped on every disarm; validates EventIds
  };
  /// Message events carry their record in the heap entry itself: they are
  /// never cancelled, so no slot/generation indirection is needed and the
  /// whole record stays in one contiguous array.
  struct MsgEntry {
    Time time;
    std::uint64_t seq;
    MessageEvent ev;
  };
  struct MsgLater {
    bool operator()(const MsgEntry& a, const MsgEntry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  static bool msg_before(const MsgEntry& a, const MsgEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  /// THE cross-heap tie-break: whether the closure at the top of `heap_`
  /// fires before the message at the top of `msg_heap_`. Every consumer
  /// (fire_next, next_time, pop) must use this one definition — the
  /// deterministic total order depends on them agreeing exactly.
  static bool closure_first(const Entry& c, const MsgEntry& m) {
    return c.time != m.time ? c.time < m.time : c.seq < m.seq;
  }

  bool entry_live(const Entry& e) const { return slots_[e.slot].seq == e.seq; }
  void disarm(std::uint32_t slot);
  void compact();
  void skip_cancelled();
  void fire_closure(Time& now);
  void fire_message(Time& now);

  std::vector<Entry> heap_;          ///< closure events (min-heap, Later)
  std::vector<MsgEntry> msg_heap_;   ///< message events (min-heap, MsgLater)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< disarmed slots ready for reuse
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;             ///< live closure events
};

// --- hot-path inline definitions -------------------------------------------

inline void EventQueue::disarm(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();  // release the closure now, not at compaction
  s.seq = 0;
  ++s.gen;
  free_.push_back(slot);
  --live_;
}

inline void EventQueue::skip_cancelled() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

inline EventId EventQueue::schedule(Time t, std::uint64_t seq, InlineFn fn) {
  assert(seq != 0);
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = seq;
  heap_.push_back(Entry{t, s.seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  // An EventId packs {generation, slot+1}; slot+1 keeps every valid id
  // nonzero so kInvalidEvent (0) can never name a slot. The slot index is
  // confined to 24 bits so the Simulator can tag the owning queue (shard
  // index or control plane) in the id's top byte and route cancel() without
  // a lookup; 2^24 simultaneously-armed timers per shard is far beyond any
  // simulated workload, and the assert guards the day that changes.
  assert(slot < (1u << 24) - 1);
  return (static_cast<EventId>(s.gen) << 24) | (slot + 1);
}

inline void EventQueue::schedule_message(Time t, std::uint64_t seq,
                                         MessageEvent&& ev) {
  // Hand-rolled sift-up: the standard push_heap routes the new entry
  // through a temporary even when it already sits in heap position — and a
  // MsgEntry move is 64 bytes. Events are mostly scheduled in near-time
  // order, so the early-out is the common path.
  msg_heap_.push_back(MsgEntry{t, seq, std::move(ev)});
  std::size_t i = msg_heap_.size() - 1;
  if (i == 0 || !msg_before(msg_heap_[i], msg_heap_[(i - 1) / 2])) return;
  MsgEntry v = std::move(msg_heap_[i]);
  do {
    const std::size_t p = (i - 1) / 2;
    msg_heap_[i] = std::move(msg_heap_[p]);
    i = p;
  } while (i > 0 && msg_before(v, msg_heap_[(i - 1) / 2]));
  msg_heap_[i] = std::move(v);
}

inline Time EventQueue::next_time() {
  skip_cancelled();
  assert(!empty());
  if (heap_.empty()) return msg_heap_.front().time;
  if (msg_heap_.empty()) return heap_.front().time;
  return closure_first(heap_.front(), msg_heap_.front())
             ? heap_.front().time
             : msg_heap_.front().time;
}

inline EventQueue::Key EventQueue::next_key() {
  skip_cancelled();
  assert(!empty());
  if (heap_.empty())
    return Key{msg_heap_.front().time, msg_heap_.front().seq};
  if (msg_heap_.empty()) return Key{heap_.front().time, heap_.front().seq};
  return closure_first(heap_.front(), msg_heap_.front())
             ? Key{heap_.front().time, heap_.front().seq}
             : Key{msg_heap_.front().time, msg_heap_.front().seq};
}

inline void EventQueue::fire_closure(Time& now) {
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  now = top.time;
  // Move the closure out before invoking: the handler may schedule, which
  // can grow slots_ and invalidate the reference.
  InlineFn fn = std::move(slots_[top.slot].fn);
  disarm(top.slot);
  fn();
}

inline void EventQueue::fire_message(Time& now) {
  // Hand-rolled root removal (extract root, sift the tail down) — one
  // 64-byte move when the heap is small, where the standard
  // pop_heap+pop_back pair costs three.
  MsgEntry entry = std::move(msg_heap_.front());
  const std::size_t n = msg_heap_.size() - 1;
  if (n > 0) {
    MsgEntry tail = std::move(msg_heap_.back());
    msg_heap_.pop_back();
    std::size_t i = 0;
    while (true) {
      std::size_t kid = 2 * i + 1;
      if (kid >= n) break;
      if (kid + 1 < n && msg_before(msg_heap_[kid + 1], msg_heap_[kid]))
        ++kid;
      if (!msg_before(msg_heap_[kid], tail)) break;
      msg_heap_[i] = std::move(msg_heap_[kid]);
      i = kid;
    }
    msg_heap_[i] = std::move(tail);
  } else {
    msg_heap_.pop_back();
  }
  now = entry.time;
  entry.ev.target->on_message_event(std::move(entry.ev));
}

inline void EventQueue::fire_next(Time& now) {
  assert(!empty());
  // Earliest of the two heaps; the shared seq makes the merge a total
  // order identical to a single queue's. Stale (cancelled) records only
  // exist in the closure heap, so the message fast path skips the scan.
  if (heap_.empty()) return fire_message(now);
  skip_cancelled();
  if (heap_.empty()) return fire_message(now);
  if (msg_heap_.empty()) return fire_closure(now);
  return closure_first(heap_.front(), msg_heap_.front()) ? fire_closure(now)
                                                         : fire_message(now);
}

}  // namespace canopus::simnet
