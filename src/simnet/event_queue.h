// Priority event queue with O(log n) schedule/pop and O(1) cancellation.
//
// Storage is slot-based: handlers live in a recycled slot vector (no
// per-event map allocation) and the heap holds plain {time, seq, slot}
// records. Cancellation disarms the slot immediately (freeing the closure)
// and leaves a stale heap record behind; stale records are skipped at pop
// and compacted away whenever they outnumber live ones, so arm/cancel
// churn — e.g. a pipeline timer re-armed every cycle — keeps both the heap
// and the handler storage bounded at O(live events).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace canopus::simnet {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Events at equal times fire in
  /// schedule order (a monotonic sequence number is the tiebreak), keeping
  /// runs deterministic.
  EventId schedule(Time t, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or invalid id is a
  /// no-op. (Ids carry a per-slot generation, so a stale id can only collide
  /// with a later event after 2^32 reuses of one slot.)
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time();

  /// Pops and returns the earliest pending event. Precondition: !empty().
  std::pair<Time, std::function<void()>> pop();

  /// Diagnostics: heap records currently held, including not-yet-compacted
  /// cancelled ones. Lazy compaction bounds this at O(size()).
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;   ///< schedule order; unique, so the order is total
    std::uint32_t slot;
  };
  struct Later {  // std::greater-style comparator for a min-heap
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct Slot {
    std::function<void()> fn;
    std::uint64_t seq = 0;   ///< seq of the armed event, 0 when disarmed
    std::uint32_t gen = 0;   ///< bumped on every disarm; validates EventIds
  };

  bool entry_live(const Entry& e) const { return slots_[e.slot].seq == e.seq; }
  void disarm(std::uint32_t slot);
  void compact();
  void skip_cancelled();

  std::vector<Entry> heap_;          ///< std::push_heap/pop_heap with Later
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< disarmed slots ready for reuse
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace canopus::simnet
