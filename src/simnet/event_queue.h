// Priority event queue with O(log n) schedule/pop and O(1) cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace canopus::simnet {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`. Events at equal times fire in
  /// schedule order (the id doubles as the tiebreak), keeping runs
  /// deterministic.
  EventId schedule(Time t, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or invalid id is a
  /// no-op.
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Precondition: !empty().
  Time next_time();

  /// Pops and returns the earliest pending event. Precondition: !empty().
  std::pair<Time, std::function<void()>> pop();

 private:
  struct Entry {
    Time time;
    EventId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace canopus::simnet
