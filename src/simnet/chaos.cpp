#include "simnet/chaos.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace canopus::simnet {

namespace {

/// Repairs sort before faults at equal timestamps so that replaying the
/// sorted list in order never observes more concurrent faults than the
/// generator's own bookkeeping did (a node whose recover ties a later
/// crash's timestamp frees its blast-radius slot first).
int kind_rank(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kRecover: return 0;
    case FaultEvent::Kind::kHeal: return 1;
    case FaultEvent::Kind::kCrash: return 2;
    case FaultEvent::Kind::kSever: return 3;
  }
  return 4;
}

}  // namespace

FaultSchedule ChaosScheduleGenerator::generate(
    const ChaosConfig& cfg, const std::vector<NodeId>& nodes) {
  FaultSchedule out;
  assert(cfg.end > cfg.start && cfg.min_heal > 0);
  assert(cfg.min_heal < cfg.end - cfg.start);
  if (nodes.empty() || cfg.events_per_s <= 0) return out;
  const double total_weight = cfg.crash_weight + cfg.sever_weight;
  if (total_weight <= 0) return out;

  // Active-fault bookkeeping, keyed by the scheduled repair time. An entry
  // is retired once the injection clock passes its repair, mirroring what a
  // replay of the final (time-sorted, repairs-first) event list observes.
  struct DownNode {
    Time until;
    NodeId node;
  };
  struct SeveredPair {
    Time until;
    NodeId a, b;
  };
  std::vector<DownNode> down;
  std::vector<SeveredPair> severed;
  std::vector<FaultEvent> events;

  const double mean_gap_ns = static_cast<double>(kSecond) / cfg.events_per_s;
  const Time last_injection = cfg.end - cfg.min_heal;

  // Injection times form a Poisson process over [start, last_injection];
  // each draws a fault kind, a victim with blast-radius headroom, and an
  // exponential duration >= min_heal clipped to heal by `end`.
  Time t = cfg.start;
  for (;;) {
    t += static_cast<Time>(rng_.exponential(mean_gap_ns)) + 1;
    if (t > last_injection) break;
    down.erase(std::remove_if(down.begin(), down.end(),
                              [t](const DownNode& d) { return d.until <= t; }),
               down.end());
    severed.erase(
        std::remove_if(severed.begin(), severed.end(),
                       [t](const SeveredPair& s) { return s.until <= t; }),
        severed.end());

    const bool crash_ok =
        cfg.crash_weight > 0 &&
        down.size() < static_cast<std::size_t>(std::max(cfg.max_down, 0)) &&
        down.size() < nodes.size();
    const bool sever_ok =
        cfg.sever_weight > 0 && nodes.size() >= 2 &&
        severed.size() < static_cast<std::size_t>(std::max(cfg.max_severed, 0));
    if (!crash_ok && !sever_ok) continue;  // at the blast radius: drop it

    bool crash = crash_ok;
    if (crash_ok && sever_ok)
      crash = rng_.uniform() * total_weight < cfg.crash_weight;

    const Time extra = static_cast<Time>(
        rng_.exponential(static_cast<double>(cfg.mean_extra)));
    const Time repair = std::min(cfg.end, t + cfg.min_heal + extra);

    if (crash) {
      // Victim: uniform over currently-up nodes.
      std::vector<NodeId> up;
      up.reserve(nodes.size());
      for (NodeId n : nodes) {
        bool is_down = false;
        for (const DownNode& d : down) is_down |= d.node == n;
        if (!is_down) up.push_back(n);
      }
      const NodeId victim = up[rng_.below(up.size())];
      events.push_back({t, FaultEvent::Kind::kCrash, victim, kInvalidNode});
      events.push_back(
          {repair, FaultEvent::Kind::kRecover, victim, kInvalidNode});
      down.push_back({repair, victim});
    } else {
      // Victim pair: a uniform directed pair not currently severed. The
      // pair space is tiny (n*(n-1) for cluster-sized n), so rejection
      // sampling against the active set terminates quickly; bail to the
      // next injection if the space is saturated.
      NodeId a = kInvalidNode, b = kInvalidNode;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId ca = nodes[rng_.below(nodes.size())];
        const NodeId cb = nodes[rng_.below(nodes.size())];
        if (ca == cb) continue;
        bool active = false;
        for (const SeveredPair& s : severed)
          active |= s.a == ca && s.b == cb;
        if (active) continue;
        a = ca;
        b = cb;
        break;
      }
      if (a == kInvalidNode) continue;
      events.push_back({t, FaultEvent::Kind::kSever, a, b});
      events.push_back({repair, FaultEvent::Kind::kHeal, a, b});
      severed.push_back({repair, a, b});
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     if (x.at != y.at) return x.at < y.at;
                     return kind_rank(x.kind) < kind_rank(y.kind);
                   });
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash: out.crash_at(ev.at, ev.a); break;
      case FaultEvent::Kind::kRecover: out.recover_at(ev.at, ev.a); break;
      case FaultEvent::Kind::kSever: out.sever_at(ev.at, ev.a, ev.b); break;
      case FaultEvent::Kind::kHeal: out.heal_at(ev.at, ev.a, ev.b); break;
    }
  }
  return out;
}

}  // namespace canopus::simnet
