#include "simnet/chaos.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace canopus::simnet {

namespace {

/// Repairs sort before faults at equal timestamps so that replaying the
/// sorted list in order never observes more concurrent faults than the
/// generator's own bookkeeping did (a victim whose repair ties a later
/// fault's timestamp frees its blast-radius slot first). The relative
/// order of the pre-gray kinds is unchanged, so classic-only storms sort
/// exactly as before.
int kind_rank(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kRecover: return 0;
    case FaultEvent::Kind::kHeal: return 1;
    case FaultEvent::Kind::kCpuNormal: return 2;
    case FaultEvent::Kind::kFlapStop: return 3;
    case FaultEvent::Kind::kDupStop: return 4;
    case FaultEvent::Kind::kReorderStop: return 5;
    case FaultEvent::Kind::kSkewClear: return 6;
    case FaultEvent::Kind::kCrash: return 7;
    case FaultEvent::Kind::kSever: return 8;
    case FaultEvent::Kind::kCpuSlow: return 9;
    case FaultEvent::Kind::kFlapStart: return 10;
    case FaultEvent::Kind::kDupStart: return 11;
    case FaultEvent::Kind::kReorderStart: return 12;
    case FaultEvent::Kind::kSkewSet: return 13;
  }
  return 14;
}

/// The draw loop's kind table, in a FIXED order: the weighted pick walks
/// it front to back, so adding kinds at the end cannot change the draw
/// sequence of storms that leave them disabled.
enum KindIdx : std::size_t {
  kKCrash = 0,
  kKSever,
  kKCpu,
  kKFlap,
  kKDup,
  kKReorder,
  kKSkew,
  kNumKinds,
};

constexpr bool kIsPairKind[kNumKinds] = {false, true,  false, true,
                                         true,  true,  false};

[[noreturn]] void config_error(const std::string& what) {
  throw std::invalid_argument("ChaosConfig: " + what);
}

}  // namespace

void ChaosConfig::validate() const {
  if (end <= start) config_error("end must be after start");
  if (min_heal <= 0) config_error("min_heal must be > 0");
  if (min_heal >= end - start)
    config_error("min_heal must be < the storm window (end - start)");
  if (events_per_s < 0) config_error("events_per_s must be >= 0");
  if (mean_extra < 0) config_error("mean_extra must be >= 0");
  const std::pair<double, const char*> weights[] = {
      {crash_weight, "crash_weight"},     {sever_weight, "sever_weight"},
      {cpu_weight, "cpu_weight"},         {flap_weight, "flap_weight"},
      {dup_weight, "dup_weight"},         {reorder_weight, "reorder_weight"},
      {skew_weight, "skew_weight"},
  };
  for (const auto& [w, name] : weights)
    if (w < 0) config_error(std::string(name) + " must be >= 0");
  if (cpu_weight > 0 && cpu_factor <= 0)
    config_error("cpu_factor must be > 0 when cpu_weight is enabled");
  if (flap_weight > 0 && flap_period <= 0)
    config_error("flap_period must be > 0 when flap_weight is enabled");
  if (dup_weight > 0 && dup_echo < 0)
    config_error("dup_echo must be >= 0 when dup_weight is enabled");
  if (reorder_weight > 0 && reorder_jitter <= 0)
    config_error("reorder_jitter must be > 0 when reorder_weight is enabled");
  if (skew_weight > 0 && (skew_rate_lo <= 0 || skew_rate_hi < skew_rate_lo))
    config_error("skew rates must satisfy 0 < skew_rate_lo <= skew_rate_hi");
}

FaultSchedule ChaosScheduleGenerator::generate(
    const ChaosConfig& cfg, const std::vector<NodeId>& nodes) {
  cfg.validate();
  FaultSchedule out;
  if (nodes.empty() || cfg.events_per_s <= 0) return out;

  const double weight[kNumKinds] = {
      cfg.crash_weight, cfg.sever_weight,   cfg.cpu_weight, cfg.flap_weight,
      cfg.dup_weight,   cfg.reorder_weight, cfg.skew_weight,
  };
  const int cap[kNumKinds] = {
      cfg.max_down, cfg.max_severed, cfg.max_slow,  cfg.max_flapping,
      cfg.max_dup,  cfg.max_reorder, cfg.max_skewed,
  };
  double all_weight = 0;
  for (double w : weight) all_weight += w;
  if (all_weight <= 0) return out;

  // Active-fault bookkeeping per kind, keyed by the scheduled repair time.
  // An entry is retired once the injection clock passes its repair,
  // mirroring what a replay of the final (time-sorted, repairs-first)
  // event list observes. Node kinds leave `b` invalid.
  struct Active {
    Time until;
    NodeId a, b;
  };
  std::array<std::vector<Active>, kNumKinds> active;
  std::vector<FaultEvent> events;

  const double mean_gap_ns = static_cast<double>(kSecond) / cfg.events_per_s;
  const Time last_injection = cfg.end - cfg.min_heal;

  // Injection times form a Poisson process over [start, last_injection];
  // each draws a fault kind with blast-radius headroom, a victim, and an
  // exponential duration >= min_heal clipped to heal by `end`.
  Time t = cfg.start;
  for (;;) {
    t += static_cast<Time>(rng_.exponential(mean_gap_ns)) + 1;
    if (t > last_injection) break;
    for (auto& list : active)
      list.erase(std::remove_if(list.begin(), list.end(),
                                [t](const Active& f) { return f.until <= t; }),
                 list.end());

    bool ok[kNumKinds];
    double ok_weight = 0;
    std::size_t ok_count = 0, only = 0;
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      const std::size_t headroom =
          static_cast<std::size_t>(std::max(cap[k], 0));
      ok[k] = weight[k] > 0 && active[k].size() < headroom &&
              (kIsPairKind[k] ? nodes.size() >= 2
                              : active[k].size() < nodes.size());
      if (ok[k]) {
        ok_weight += weight[k];
        ++ok_count;
        only = k;
      }
    }
    if (ok_count == 0) continue;  // at the blast radius: drop this one

    // Weighted kind pick. A single eligible kind is taken without a draw —
    // this keeps the RNG stream (and therefore every committed storm)
    // byte-identical to the pre-gray generator when only crash/sever are
    // enabled.
    std::size_t kind = only;
    if (ok_count > 1) {
      double u = rng_.uniform() * ok_weight;
      for (std::size_t k = 0; k < kNumKinds; ++k) {
        if (!ok[k]) continue;
        if (u < weight[k]) {
          kind = k;
          break;
        }
        u -= weight[k];
      }
    }

    const Time extra = static_cast<Time>(
        rng_.exponential(static_cast<double>(cfg.mean_extra)));
    const Time repair = std::min(cfg.end, t + cfg.min_heal + extra);

    NodeId a = kInvalidNode, b = kInvalidNode;
    if (!kIsPairKind[kind]) {
      // Victim: uniform over nodes this kind is not currently hitting.
      std::vector<NodeId> free;
      free.reserve(nodes.size());
      for (NodeId n : nodes) {
        bool hit = false;
        for (const Active& f : active[kind]) hit |= f.a == n;
        if (!hit) free.push_back(n);
      }
      a = free[rng_.below(free.size())];
    } else {
      // Victim pair: a uniform directed pair this kind is not currently
      // hitting. The pair space is tiny (n*(n-1) for cluster-sized n), so
      // rejection sampling against the active set terminates quickly; bail
      // to the next injection if the space is saturated.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId ca = nodes[rng_.below(nodes.size())];
        const NodeId cb = nodes[rng_.below(nodes.size())];
        if (ca == cb) continue;
        bool hit = false;
        for (const Active& f : active[kind]) hit |= f.a == ca && f.b == cb;
        if (hit) continue;
        a = ca;
        b = cb;
        break;
      }
      if (a == kInvalidNode) continue;
    }

    switch (kind) {
      case kKCrash:
        events.push_back({t, FaultEvent::Kind::kCrash, a, kInvalidNode, 0, 0});
        events.push_back(
            {repair, FaultEvent::Kind::kRecover, a, kInvalidNode, 0, 0});
        break;
      case kKSever:
        events.push_back({t, FaultEvent::Kind::kSever, a, b, 0, 0});
        events.push_back({repair, FaultEvent::Kind::kHeal, a, b, 0, 0});
        break;
      case kKCpu:
        events.push_back({t, FaultEvent::Kind::kCpuSlow, a, kInvalidNode,
                          cfg.cpu_factor, 0});
        events.push_back(
            {repair, FaultEvent::Kind::kCpuNormal, a, kInvalidNode, 0, 0});
        break;
      case kKFlap:
        events.push_back(
            {t, FaultEvent::Kind::kFlapStart, a, b, 0, cfg.flap_period});
        events.push_back({repair, FaultEvent::Kind::kFlapStop, a, b, 0, 0});
        break;
      case kKDup:
        events.push_back(
            {t, FaultEvent::Kind::kDupStart, a, b, 0, cfg.dup_echo});
        events.push_back({repair, FaultEvent::Kind::kDupStop, a, b, 0, 0});
        break;
      case kKReorder:
        events.push_back(
            {t, FaultEvent::Kind::kReorderStart, a, b, 0, cfg.reorder_jitter});
        events.push_back(
            {repair, FaultEvent::Kind::kReorderStop, a, b, 0, 0});
        break;
      case kKSkew: {
        const double rate =
            cfg.skew_rate_lo +
            rng_.uniform() * (cfg.skew_rate_hi - cfg.skew_rate_lo);
        events.push_back({t, FaultEvent::Kind::kSkewSet, a, kInvalidNode, rate,
                          cfg.skew_offset});
        events.push_back(
            {repair, FaultEvent::Kind::kSkewClear, a, kInvalidNode, 0, 0});
        break;
      }
      default: assert(false);
    }
    active[kind].push_back({repair, a, b});
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     if (x.at != y.at) return x.at < y.at;
                     return kind_rank(x.kind) < kind_rank(y.kind);
                   });
  // Raw append: the generator enforces its own pairing/blast-radius
  // structure, and the builder-level sever dedup must not second-guess a
  // sorted storm.
  for (const FaultEvent& ev : events) out.add(ev);
  return out;
}

}  // namespace canopus::simnet
