// The typed message bus: one payload representation for every wire message
// in the repository.
//
// A Payload is a (tag, shared immutable value) pair. The tag space is the
// closed enum below — one entry per wire-message struct that travels
// through the simulated network (canopus proposals, raft RPCs, zab/epaxos
// frames, kv client traffic, switch broadcast frames). Each protocol
// registers its structs with CANOPUS_REGISTER_PAYLOAD, which specializes
// PayloadTraits<T> with the struct's tag; Payload::as<T>() is then a single
// integer compare plus a static_cast — no RTTI and no type-erasure casts
// on the per-message hot path.
//
// Values are held behind shared_ptr<const void> so that a broadcast of a
// large proposal (Canopus proposals can carry thousands of requests) shares
// ONE allocation across all receivers: copying a Payload, re-addressing a
// Message, or replicating a raft LogEntry copies a pointer, never the
// value. Payload values are immutable once published — exactly the
// semantics a real wire gives you.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace canopus::simnet {

/// Closed tag space of the message bus. Every wire-message struct in the
/// repository has exactly one entry; adding a protocol message means adding
/// a tag here and a CANOPUS_REGISTER_PAYLOAD at the struct's definition.
/// Values are assigned implicitly (dense, starting at 0 for kInvalid) so
/// uniqueness holds by construction; a test additionally asserts that no
/// two *registered types* share a tag.
enum class PayloadTag : std::uint16_t {
  kInvalid = 0,

  // raft/ — all four RPCs plus control frames share one struct.
  kRaftWire,
  // raft/ standalone KV deployment (raft_kv.h): replicated batches, the
  // member -> leader write forwarding frame, and the compaction snapshot
  // carried inside InstallSnapshot.
  kRaftKvBatch,
  kRaftKvForward,
  kRaftKvSnapshot,

  // canopus/ — protocol wire messages (§4.2, §4.5, §3).
  kCanopusProposal,
  kCanopusProposalRequest,
  kCanopusJoinRequest,
  kCanopusJoinAck,

  // kv/ — client <-> server traffic, shared by every consensus system.
  kKvClientBatch,
  kKvReplyBatch,

  // zab/ — centralized atomic broadcast baseline.
  kZabForward,
  kZabPropose,
  kZabAck,
  kZabCommit,
  kZabInform,
  kZabSyncReq,
  kZabSnapshot,
  kZabSyncTooOld,

  // epaxos/ — leaderless baseline.
  kEpaxosPreAccept,
  kEpaxosPreAcceptOk,
  kEpaxosCommit,
  kEpaxosFetch,
  kEpaxosCommitFull,
  kEpaxosSeqProbe,
  kEpaxosSeqInfo,
  kEpaxosSnapRequest,
  kEpaxosSnapshot,

  // rbcast/ — hardware-assisted atomic broadcast frames.
  kSwitchFrame,

  // Reserved for tests and benches only (simnet/payload_testing.h);
  // protocol code must never use these.
  kTestText,
  kTestInt,
  kTestChar,
};

/// Primary template is intentionally undefined: sending an unregistered
/// type through the bus is a compile error, not a runtime surprise.
template <class T>
struct PayloadTraits;

template <class T>
concept RegisteredPayload = requires {
  { PayloadTraits<T>::tag } -> std::convertible_to<PayloadTag>;
};

/// A detached, shareable, typed-but-erased message body. The common
/// currency of Network, the reliable-broadcast substrates, and the raft
/// replicated log.
class Payload {
 public:
  Payload() = default;

  /// Wraps a registered wire-message value. Implicit on purpose: protocol
  /// code writes `broadcast(proposal, bytes)` / `send(dst, bytes, msg)` and
  /// the value enters the bus at that boundary.
  template <class T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Payload> &&
             RegisteredPayload<std::remove_cvref_t<T>>)
  Payload(T&& value)  // NOLINT(google-explicit-constructor)
      : tag_(PayloadTraits<std::remove_cvref_t<T>>::tag),
        ptr_(std::make_shared<const std::remove_cvref_t<T>>(
            std::forward<T>(value))) {}

  /// Returns the value if it carries tag T, else nullptr. One integer
  /// compare — the whole point of the bus.
  template <class T>
  const T* as() const {
    return tag_ == PayloadTraits<T>::tag ? static_cast<const T*>(ptr_.get())
                                         : nullptr;
  }

  PayloadTag tag() const { return tag_; }
  bool empty() const { return ptr_ == nullptr; }

  /// Identity of the shared allocation — lets tests assert that broadcast
  /// fan-out and Message::readdressed share one value instead of copying.
  const void* raw() const { return ptr_.get(); }

 private:
  PayloadTag tag_ = PayloadTag::kInvalid;
  std::shared_ptr<const void> ptr_;
};

}  // namespace canopus::simnet

/// Registers TYPE under PayloadTag::TAG. Use at global (non-namespace)
/// scope, immediately after the struct's definition.
#define CANOPUS_REGISTER_PAYLOAD(TYPE, TAG)                 \
  template <>                                               \
  struct canopus::simnet::PayloadTraits<TYPE> {             \
    static constexpr canopus::simnet::PayloadTag tag =      \
        canopus::simnet::PayloadTag::TAG;                   \
  }
