#include "simnet/fault_schedule.h"

#include <memory>

namespace canopus::simnet {

const char* fault_kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kSever: return "sever";
    case FaultEvent::Kind::kHeal: return "heal";
    case FaultEvent::Kind::kCpuSlow: return "cpu_slow";
    case FaultEvent::Kind::kCpuNormal: return "cpu_normal";
    case FaultEvent::Kind::kFlapStart: return "flap_start";
    case FaultEvent::Kind::kFlapStop: return "flap_stop";
    case FaultEvent::Kind::kDupStart: return "dup_start";
    case FaultEvent::Kind::kDupStop: return "dup_stop";
    case FaultEvent::Kind::kReorderStart: return "reorder_start";
    case FaultEvent::Kind::kReorderStop: return "reorder_stop";
    case FaultEvent::Kind::kSkewSet: return "skew_set";
    case FaultEvent::Kind::kSkewClear: return "skew_clear";
  }
  return "?";
}

void FaultSchedule::apply(Network& net, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::kCrash: net.crash(ev.a); break;
    case FaultEvent::Kind::kRecover: net.recover(ev.a); break;
    case FaultEvent::Kind::kSever: net.sever(ev.a, ev.b); break;
    case FaultEvent::Kind::kHeal: net.heal(ev.a, ev.b); break;
    case FaultEvent::Kind::kCpuSlow: net.set_cpu_factor(ev.a, ev.x); break;
    case FaultEvent::Kind::kCpuNormal: net.set_cpu_factor(ev.a, 1.0); break;
    case FaultEvent::Kind::kFlapStart: net.flap(ev.a, ev.b, ev.d); break;
    case FaultEvent::Kind::kFlapStop: net.flap_stop(ev.a, ev.b); break;
    case FaultEvent::Kind::kDupStart: net.duplicate(ev.a, ev.b, ev.d); break;
    case FaultEvent::Kind::kDupStop: net.duplicate_stop(ev.a, ev.b); break;
    case FaultEvent::Kind::kReorderStart: net.reorder(ev.a, ev.b, ev.d); break;
    case FaultEvent::Kind::kReorderStop: net.reorder_stop(ev.a, ev.b); break;
    case FaultEvent::Kind::kSkewSet:
      net.set_clock_skew(ev.a, ev.x, ev.d);
      break;
    case FaultEvent::Kind::kSkewClear: net.set_clock_skew(ev.a, 1.0, 0); break;
  }
}

void FaultSchedule::arm(Network& net, ApplyFn hook) const {
  // One shared copy of the (potentially capture-heavy) hook keeps each
  // per-event closure small enough for the simulator's inline storage.
  auto shared_hook =
      hook ? std::make_shared<const ApplyFn>(std::move(hook)) : nullptr;
  for (const FaultEvent& ev : events_) {
    auto fire = [&net, ev, shared_hook] {
      if (shared_hook)
        (*shared_hook)(net, ev);
      else
        apply(net, ev);
    };
    static_assert(InlineFn::fits_inline<decltype(fire)>);
    net.sim().at(ev.at, std::move(fire));
  }
}

}  // namespace canopus::simnet
