#include "simnet/fault_schedule.h"

#include <memory>

namespace canopus::simnet {

const char* fault_kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kSever: return "sever";
    case FaultEvent::Kind::kHeal: return "heal";
  }
  return "?";
}

void FaultSchedule::apply(Network& net, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::kCrash: net.crash(ev.a); break;
    case FaultEvent::Kind::kRecover: net.recover(ev.a); break;
    case FaultEvent::Kind::kSever: net.sever(ev.a, ev.b); break;
    case FaultEvent::Kind::kHeal: net.heal(ev.a, ev.b); break;
  }
}

void FaultSchedule::arm(Network& net, ApplyFn hook) const {
  // One shared copy of the (potentially capture-heavy) hook keeps each
  // per-event closure small enough for the simulator's inline storage.
  auto shared_hook =
      hook ? std::make_shared<const ApplyFn>(std::move(hook)) : nullptr;
  for (const FaultEvent& ev : events_) {
    auto fire = [&net, ev, shared_hook] {
      if (shared_hook)
        (*shared_hook)(net, ev);
      else
        apply(net, ev);
    };
    static_assert(InlineFn::fits_inline<decltype(fire)>);
    net.sim().at(ev.at, std::move(fire));
  }
}

}  // namespace canopus::simnet
