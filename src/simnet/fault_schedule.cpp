#include "simnet/fault_schedule.h"

namespace canopus::simnet {

const char* fault_kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kSever: return "sever";
    case FaultEvent::Kind::kHeal: return "heal";
  }
  return "?";
}

void FaultSchedule::apply(Network& net, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::kCrash: net.crash(ev.a); break;
    case FaultEvent::Kind::kRecover: net.recover(ev.a); break;
    case FaultEvent::Kind::kSever: net.sever(ev.a, ev.b); break;
    case FaultEvent::Kind::kHeal: net.heal(ev.a, ev.b); break;
  }
}

void FaultSchedule::arm(Network& net, ApplyFn hook) const {
  for (const FaultEvent& ev : events_) {
    net.sim().at(ev.at, [&net, ev, hook] {
      if (hook)
        hook(net, ev);
      else
        apply(net, ev);
    });
  }
}

}  // namespace canopus::simnet
