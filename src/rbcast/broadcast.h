// Broadcast: the reliable-broadcast abstraction a super-leaf runs on.
//
// §4.3 names two interchangeable substrates:
//  * "For ToR switches that support hardware-assisted atomic broadcast,
//     nodes in a super-leaf can use this functionality" -> SwitchBroadcast
//     (rbcast/switch_broadcast.h);
//  * "If hardware support is not available, we use a variant of Raft"
//     -> ReliableBroadcast (rbcast/rbcast.h).
//
// Canopus is written against this interface, so the substrate is a
// deployment choice (core::Config::broadcast). Payloads travel on the typed
// message bus (simnet::Payload); a broadcast shares one payload allocation
// across every receiver.
#pragma once

#include <functional>

#include "common/types.h"
#include "simnet/message.h"

namespace canopus::rbcast {

class Broadcast {
 public:
  struct Callbacks {
    /// Deliver a payload broadcast by `origin`. Same-origin payloads are
    /// delivered in broadcast order; all live members deliver the same set
    /// (validity/integrity/agreement).
    std::function<void(NodeId origin, const simnet::Payload& payload)> deliver;
    /// A member was detected failed, at a point consistently ordered with
    /// its delivered broadcasts on every survivor.
    std::function<void(NodeId failed)> on_peer_failed;
  };

  virtual ~Broadcast() = default;

  virtual void start() = 0;
  virtual void stop() = 0;
  virtual void broadcast(simnet::Payload payload, std::size_t bytes) = 0;

  /// Feeds a network message; returns true if it belonged to this layer.
  virtual bool handle(const simnet::Message& m) = 0;

  virtual void remove_member(NodeId peer) = 0;
  virtual void add_member(NodeId peer) = 0;
  virtual bool is_member(NodeId peer) const = 0;
};

}  // namespace canopus::rbcast
