#include "rbcast/rbcast.h"

#include <algorithm>
#include <cassert>

namespace canopus::rbcast {

ReliableBroadcast::ReliableBroadcast(NodeId self, std::vector<NodeId> members,
                                     simnet::ClockHandle sim, Callbacks cb,
                                     raft::Options opt)
    : self_(self),
      members_(std::move(members)),
      sim_(sim),
      cb_(std::move(cb)),
      opt_(opt) {
  assert(std::find(members_.begin(), members_.end(), self_) !=
         members_.end());
}

bool ReliableBroadcast::is_member(NodeId n) const {
  return std::find(members_.begin(), members_.end(), n) != members_.end();
}

void ReliableBroadcast::make_group(NodeId origin) {
  raft::RaftNode::Callbacks cb;
  cb.send = [this](NodeId dst, const raft::WireMsg& m) { cb_.send(dst, m); };
  cb.on_commit = [this, origin](raft::LogIndex, const raft::LogEntry& e) {
    cb_.deliver(origin, e.payload);
  };
  // NOTE: the failure signal fires on the *no-op commit*, not on the
  // election itself. The no-op is log-ordered after every entry the failed
  // leader managed to commit, so every survivor observes the failure at the
  // same point relative to the origin's delivered broadcasts — exactly the
  // "excluded from contributing" semantics Canopus' agreement proof needs
  // (Appendix A, L1.1).
  cb.on_noop_commit = [this, origin](NodeId leader, raft::Term) {
    if (leader != origin && !dissolved_.contains(origin)) {
      dissolved_.insert(origin);
      // Defer the upcall: the handler typically dissolves this very group
      // (remove_member destroys the RaftNode whose apply loop we are in).
      sim_.after(0, [this, origin] {
        if (cb_.on_peer_failed) cb_.on_peer_failed(origin);
      });
    }
  };
  groups_.emplace(origin,
                  std::make_unique<raft::RaftNode>(
                      raft::GroupId{origin}, self_, members_, sim_,
                      std::move(cb), opt_));
}

void ReliableBroadcast::start() {
  started_ = true;
  for (NodeId m : members_) make_group(m);
  for (auto& [origin, node] : groups_)
    node->start(/*bootstrap_as_leader=*/origin == self_);
}

void ReliableBroadcast::stop() {
  for (auto& [origin, node] : groups_) node->stop();
  started_ = false;
}

void ReliableBroadcast::broadcast(simnet::Payload payload, std::size_t bytes) {
  auto it = groups_.find(self_);
  // A missing own group means this node was suspected failed by its peers
  // and its group dissolved (possible under severe overload). The layer
  // above self-fences on that signal; any broadcast racing with it is
  // dropped, which is indistinguishable from crashing a moment earlier.
  if (it == groups_.end()) return;
  it->second->propose(std::move(payload), bytes);
}

void ReliableBroadcast::on_message(NodeId src, const raft::WireMsg& m) {
  if (!started_) return;

  if (m.type == raft::MsgType::kGroupDissolved) {
    // A peer already dissolved this group. Its no-op commit implies our
    // local log for the group is complete (we acked every committed entry),
    // so drain it; the surfaced no-op triggers the normal failure upcall.
    auto it = groups_.find(m.group);
    if (it != groups_.end() && !dissolved_.contains(m.group))
      it->second->force_commit_all();
    return;
  }

  auto it = groups_.find(m.group);
  if (it == groups_.end()) {
    if (dissolved_.contains(m.group)) {
      // Straggler traffic for a group we dissolved: gossip the dissolution
      // so the sender can finish and stop electioneering.
      raft::WireMsg reply;
      reply.group = m.group;
      reply.type = raft::MsgType::kGroupDissolved;
      cb_.send(src, reply);
    }
    return;
  }
  it->second->on_message(src, m);
}

void ReliableBroadcast::remove_member(NodeId peer) {
  if (!is_member(peer)) return;
  members_.erase(std::remove(members_.begin(), members_.end(), peer),
                 members_.end());
  // The failed node's own group is dissolved: "all the nodes leave that
  // group to eliminate the group from the super-leaf" (§4.3). By the time
  // Canopus applies this membership update the replacement leader has
  // already drained any incomplete replication through normal Raft commits.
  dissolved_.insert(peer);
  if (auto it = groups_.find(peer); it != groups_.end()) {
    it->second->stop();
    groups_.erase(it);
  }
  // Shrink every surviving group's membership (single-server change applied
  // at an agreed point on all live members).
  for (auto& [origin, node] : groups_) node->remove_member(peer);
}

void ReliableBroadcast::add_member(NodeId peer) {
  if (is_member(peer)) return;
  members_.push_back(peer);
  dissolved_.erase(peer);
  for (auto& [origin, node] : groups_) node->add_member(peer);
  // Create the joiner's own broadcast group on this node.
  if (!groups_.contains(peer)) {
    make_group(peer);
    if (started_) groups_[peer]->start(/*bootstrap_as_leader=*/false);
  }
}

}  // namespace canopus::rbcast
