// Hardware-assisted atomic broadcast (§4.3, first option).
//
// Models a ToR switch with an atomic-broadcast primitive: a sender hands
// the switch one frame; the switch stamps it with a rack-global sequence
// number and replicates it to every member port in hardware. All members
// therefore observe ONE total order — the switch's arrival order — with a
// single NIC transmission per broadcast (vs. the Raft variant's per-peer
// unicasts and acks).
//
// The "switch" is a SequencerState shared by the members of a super-leaf —
// the simulation stand-in for the ToR ASIC. Receivers deliver strictly in
// sequence order. Failure detection uses switch-sequenced heartbeats: a
// member that misses `miss_limit` heartbeat windows is declared failed by
// a FailNotice that itself travels through the sequencer, so every
// survivor observes the failure at the same point in the delivery order —
// the same consistent-exclusion property the Raft variant provides via
// no-op commits.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rbcast/broadcast.h"
#include "simnet/network.h"

namespace canopus::rbcast {

/// The per-super-leaf "ToR switch": a shared sequence counter. In hardware
/// this is the egress pipeline's ordering; in the simulation every member
/// holds a pointer to the same state.
struct SequencerState {
  std::uint64_t next_seq = 0;
};

struct SwitchOptions {
  Time heartbeat_interval = 15 * kMillisecond;
  int miss_limit = 4;  ///< heartbeat windows missed before declaring failure
};

/// One switch-sequenced frame: payload, heartbeat, or failure notice. The
/// inner payload rides the bus too, so the per-member fan-out and the
/// out-of-order buffer share one allocation of the (possibly huge) body.
struct SwitchFrame {
  std::uint64_t seq = 0;
  NodeId origin = kInvalidNode;
  enum class Kind : std::uint8_t { kPayload, kHeartbeat, kFail } kind =
      Kind::kPayload;
  NodeId failed = kInvalidNode;  // for kFail
  simnet::Payload payload;
  std::size_t bytes = 0;
};

class SwitchBroadcast final : public Broadcast {
 public:
  /// All members of the super-leaf share `sequencer`. The owning Process
  /// forwards its incoming messages into handle().
  ///
  /// Modelling note: the fan-out is conservatively charged as per-member
  /// unicasts at the sender NIC; real switch replication would charge one
  /// transmission. Even so the substrate removes the Raft variant's acks,
  /// commit notifications and quorum waits.
  SwitchBroadcast(NodeId self, std::vector<NodeId> members,
                  std::shared_ptr<SequencerState> sequencer,
                  simnet::ClockHandle sim, simnet::NetHandle net, Callbacks cb,
                  SwitchOptions opt = {});

  void start() override;
  void stop() override;
  void broadcast(simnet::Payload payload, std::size_t bytes) override;
  bool handle(const simnet::Message& m) override;
  void remove_member(NodeId peer) override;
  void add_member(NodeId peer) override;
  bool is_member(NodeId peer) const override;

 private:
  void emit(SwitchFrame f, std::size_t bytes);
  void deliver_ready();
  void heartbeat_tick();

  NodeId self_;
  std::vector<NodeId> members_;
  std::shared_ptr<SequencerState> seq_;
  simnet::ClockHandle sim_;
  simnet::NetHandle net_;
  Callbacks cb_;
  SwitchOptions opt_;

  std::map<std::uint64_t, SwitchFrame> pending_;  // out-of-order buffer
  std::uint64_t next_deliver_ = 0;
  std::unordered_map<NodeId, Time> last_heard_;
  std::unordered_set<NodeId> declared_failed_;
  simnet::EventId heartbeat_timer_ = simnet::kInvalidEvent;
  bool running_ = false;
};

}  // namespace canopus::rbcast

CANOPUS_REGISTER_PAYLOAD(canopus::rbcast::SwitchFrame, kSwitchFrame);
