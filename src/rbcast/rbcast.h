// Reliable broadcast within a super-leaf (paper §4.3).
//
// "Each node in a super-leaf creates its own dedicated Raft group and
//  becomes the initial leader of the group. All other nodes in the
//  super-leaf participate as followers. ... If a node fails, the other
//  nodes detect that the leader of the group has failed, and elect a new
//  leader for the group ... the new leader completes any incomplete log
//  replication, after which all the nodes leave that group."
//
// This gives the textbook reliable-broadcast properties (validity,
// integrity, agreement) for live super-leaf members: every payload a live
// node broadcasts is eventually delivered to all live members, and all live
// members deliver the same set of payloads per group. Tolerates F failures
// with 2F+1 members; if a majority of a super-leaf fails, the whole
// super-leaf fails (Canopus then stalls, §6).
//
// The Raft election machinery doubles as the super-leaf failure detector:
// when some *other* node wins the election for group g (g is named after
// its creator), the creator is declared failed and reported upward — that
// report is what Canopus piggybacks as a membership update (§4.6).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "raft/raft.h"
#include "rbcast/broadcast.h"

namespace canopus::rbcast {

class ReliableBroadcast final : public Broadcast {
 public:
  struct Callbacks {
    /// Transport to a super-leaf peer.
    std::function<void(NodeId dst, const raft::WireMsg&)> send;
    /// Delivery upcall: `origin` is the broadcasting node. Same-origin
    /// payloads are delivered in broadcast (log) order.
    std::function<void(NodeId origin, const simnet::Payload& payload)> deliver;
    /// A peer was detected failed (its group elected a replacement leader).
    std::function<void(NodeId failed)> on_peer_failed;
  };

  ReliableBroadcast(NodeId self, std::vector<NodeId> members,
                    simnet::ClockHandle sim, Callbacks cb,
                    raft::Options opt = {});

  /// Starts all per-node groups; `self`'s own group bootstraps with self as
  /// leader (no election needed — group ids fix the initial leader).
  void start() override;

  /// Crash-stop: silences all groups.
  void stop() override;

  /// Reliably broadcasts `payload` to all live super-leaf members,
  /// including the local node (self-delivery happens at local commit).
  void broadcast(simnet::Payload payload, std::size_t bytes) override;

  /// Routes an incoming Raft wire message to the right group.
  void on_message(NodeId src, const raft::WireMsg& m);

  /// Broadcast interface: consumes raft::WireMsg-carrying messages.
  bool handle(const simnet::Message& m) override {
    const auto* w = m.as<raft::WireMsg>();
    if (w == nullptr) return false;
    on_message(m.src(), *w);
    return true;
  }

  /// Membership: removes a failed/retired peer from every group's member
  /// list (the failed node's own group is dissolved once drained).
  void remove_member(NodeId peer) override;

  /// Membership: admits a joining peer into every group's member list and
  /// creates its broadcast group.
  void add_member(NodeId peer) override;

  const std::vector<NodeId>& members() const { return members_; }
  bool is_member(NodeId n) const override;

 private:
  void make_group(NodeId origin);

  NodeId self_;
  std::vector<NodeId> members_;
  simnet::ClockHandle sim_;
  Callbacks cb_;
  raft::Options opt_;
  /// One Raft group per member, keyed by the member (== group id).
  std::unordered_map<raft::GroupId, std::unique_ptr<raft::RaftNode>> groups_;
  std::unordered_set<raft::GroupId> dissolved_;
  bool started_ = false;
};

}  // namespace canopus::rbcast
