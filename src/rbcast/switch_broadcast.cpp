#include "rbcast/switch_broadcast.h"

#include <algorithm>

namespace canopus::rbcast {

SwitchBroadcast::SwitchBroadcast(NodeId self, std::vector<NodeId> members,
                                 std::shared_ptr<SequencerState> sequencer,
                                 simnet::ClockHandle sim, simnet::NetHandle net,
                                 Callbacks cb, SwitchOptions opt)
    : self_(self),
      members_(std::move(members)),
      seq_(std::move(sequencer)),
      sim_(sim),
      net_(net),
      cb_(std::move(cb)),
      opt_(opt) {}

void SwitchBroadcast::start() {
  running_ = true;
  next_deliver_ = seq_->next_seq;  // join the stream at the current point
  for (NodeId m : members_) last_heard_[m] = sim_.now();
  heartbeat_tick();
}

void SwitchBroadcast::stop() {
  running_ = false;
  if (heartbeat_timer_ != simnet::kInvalidEvent) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_ = simnet::kInvalidEvent;
  }
}

bool SwitchBroadcast::is_member(NodeId peer) const {
  return std::find(members_.begin(), members_.end(), peer) != members_.end();
}

void SwitchBroadcast::emit(SwitchFrame f, std::size_t bytes) {
  // The switch stamps the frame on ingress: one rack-global sequence.
  f.seq = seq_->next_seq++;
  // One Payload for the whole fan-out: every member port shares the same
  // frame allocation (and, transitively, the same inner payload).
  const simnet::Payload frame(std::move(f));
  for (NodeId m : members_) {
    net_.send(simnet::Message(self_, m, bytes, frame));
  }
}

void SwitchBroadcast::broadcast(simnet::Payload payload, std::size_t bytes) {
  if (!running_) return;
  SwitchFrame f;
  f.origin = self_;
  f.kind = SwitchFrame::Kind::kPayload;
  f.payload = std::move(payload);
  f.bytes = bytes;
  emit(std::move(f), bytes + 32);
}

void SwitchBroadcast::heartbeat_tick() {
  if (!running_) return;
  SwitchFrame hb;
  hb.origin = self_;
  hb.kind = SwitchFrame::Kind::kHeartbeat;
  emit(std::move(hb), 48);

  // Check for silent peers; a failure notice goes through the sequencer so
  // all survivors exclude the peer at the same point in delivery order.
  const Time deadline =
      opt_.heartbeat_interval * opt_.miss_limit;
  for (NodeId m : members_) {
    if (m == self_ || declared_failed_.contains(m)) continue;
    if (sim_.now() - last_heard_[m] > deadline) {
      SwitchFrame fail;
      fail.origin = self_;
      fail.kind = SwitchFrame::Kind::kFail;
      fail.failed = m;
      emit(std::move(fail), 48);
    }
  }
  heartbeat_timer_ =
      sim_.after(opt_.heartbeat_interval, [this] { heartbeat_tick(); });
}

bool SwitchBroadcast::handle(const simnet::Message& m) {
  const auto* f = m.as<SwitchFrame>();
  if (f == nullptr) return false;
  if (!running_) return true;
  pending_.emplace(f->seq, *f);
  deliver_ready();
  return true;
}

void SwitchBroadcast::deliver_ready() {
  // Strict sequence order = the switch's total order. A gap means an
  // in-flight frame (FIFO links fill it shortly) or a frame sequenced by a
  // member that crashed between stamping and transmitting; the crash case
  // is resolved when its FailNotice arrives and we skip its gap.
  while (!pending_.empty()) {
    auto it = pending_.begin();
    if (it->first > next_deliver_) {
      // Gap: skip only if every lower seq could no longer arrive — crashed
      // members' stamped-but-untransmitted frames. Conservatively wait;
      // heartbeats from live members keep the stream moving because every
      // heartbeat consumes a sequence number.
      break;
    }
    SwitchFrame f = std::move(it->second);
    pending_.erase(it);
    if (f.seq < next_deliver_) continue;  // duplicate
    next_deliver_ = f.seq + 1;

    last_heard_[f.origin] = sim_.now();
    switch (f.kind) {
      case SwitchFrame::Kind::kPayload:
        if (cb_.deliver) cb_.deliver(f.origin, f.payload);
        break;
      case SwitchFrame::Kind::kHeartbeat:
        break;
      case SwitchFrame::Kind::kFail:
        if (!declared_failed_.contains(f.failed)) {
          declared_failed_.insert(f.failed);
          if (cb_.on_peer_failed) cb_.on_peer_failed(f.failed);
        }
        break;
    }
  }
}

void SwitchBroadcast::remove_member(NodeId peer) {
  members_.erase(std::remove(members_.begin(), members_.end(), peer),
                 members_.end());
  declared_failed_.insert(peer);
}

void SwitchBroadcast::add_member(NodeId peer) {
  if (!is_member(peer)) members_.push_back(peer);
  declared_failed_.erase(peer);
  last_heard_[peer] = sim_.now();
}

}  // namespace canopus::rbcast
