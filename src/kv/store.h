// Replicated key-value state machine + commit audit trail.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kv/types.h"

namespace canopus::kv {

/// Deterministic snapshot image of a Store: (key, value) pairs sorted by
/// key, so the image is independent of unordered_map iteration order (and
/// therefore identical on every replica that holds the same state).
using StoreImage = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// The state machine every replica applies committed writes to.
class Store {
 public:
  void apply(const Request& w) {
    if (w.is_write) map_[w.key] = w.value;
  }

  std::uint64_t read(std::uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

  std::size_t size() const { return map_.size(); }

  StoreImage export_image() const {
    StoreImage img(map_.begin(), map_.end());
    std::sort(img.begin(), img.end());
    return img;
  }

  void restore(const StoreImage& img) {
    map_.clear();
    map_.reserve(img.size());
    for (const auto& [k, v] : img) map_[k] = v;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

/// Rolling digest of the committed write sequence. Two replicas that applied
/// the same writes in the same order have equal digests — integration tests
/// use this to assert the paper's Agreement property cheaply.
class CommitDigest {
 public:
  void append(const Request& w) {
    // FNV-1a over the identifying fields.
    auto mix = [this](std::uint64_t x) {
      hash_ ^= x;
      hash_ *= 0x100000001b3ULL;
    };
    mix(w.id.client);
    mix(w.id.seq);
    mix(w.key);
    mix(w.value);
    ++count_;
  }

  std::uint64_t value() const { return hash_; }
  std::uint64_t count() const { return count_; }

  /// Adopts another replica's digest state (snapshot install): subsequent
  /// appends continue the donor's chain exactly.
  void restore(std::uint64_t hash, std::uint64_t count) {
    hash_ = hash;
    count_ = count;
  }

  friend bool operator==(const CommitDigest&, const CommitDigest&) = default;

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t count_ = 0;
};

/// Order-insensitive digest of a committed write *set*. EPaxos executes
/// non-interfering commands in whatever order their commits arrive locally,
/// so two replicas agree on the set of committed writes but not on a total
/// order — this is the agreement property its fault scenarios can check.
/// (Ordered systems — Canopus, Raft, Zab — use CommitDigest instead, which
/// also pins the order.)
class SetDigest {
 public:
  void append(const Request& w) {
    // Commutative accumulation (sum mod 2^64) of a per-record mix.
    std::uint64_t x = (std::uint64_t{w.id.client} << 32) ^ w.id.seq;
    x = (x ^ w.key * 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
    x ^= (w.value + 0x94d049bb133111ebULL) * 0x2545f4914f6cdd1dULL;
    x ^= x >> 33;
    sum_ += x;
    ++count_;
  }

  std::uint64_t value() const { return sum_; }
  std::uint64_t count() const { return count_; }

  /// Adopts another replica's digest state (snapshot install).
  void restore(std::uint64_t sum, std::uint64_t count) {
    sum_ = sum;
    count_ = count;
  }

  friend bool operator==(const SetDigest&, const SetDigest&) = default;

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

/// A complete state-machine snapshot: the KV image plus the digest states
/// needed so the receiver's audit chain continues the donor's exactly. The
/// image rides a shared_ptr — fanning a snapshot out to N receivers shares
/// one allocation, and copying the frame is O(1).
struct Snapshot {
  std::shared_ptr<const StoreImage> image;
  std::uint64_t digest_hash = 0;   ///< CommitDigest state (ordered systems)
  std::uint64_t digest_count = 0;
  std::uint64_t set_sum = 0;       ///< SetDigest state (EPaxos)
  std::uint64_t set_count = 0;

  std::size_t image_size() const { return image ? image->size() : 0; }
  /// Modeled wire size: 16 bytes per pair plus frame metadata.
  std::size_t wire_bytes() const { return 48 + 16 * image_size(); }
};

}  // namespace canopus::kv
