// Replicated key-value state machine + commit audit trail.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "kv/types.h"

namespace canopus::kv {

/// The state machine every replica applies committed writes to.
class Store {
 public:
  void apply(const Request& w) {
    if (w.is_write) map_[w.key] = w.value;
  }

  std::uint64_t read(std::uint64_t key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

/// Rolling digest of the committed write sequence. Two replicas that applied
/// the same writes in the same order have equal digests — integration tests
/// use this to assert the paper's Agreement property cheaply.
class CommitDigest {
 public:
  void append(const Request& w) {
    // FNV-1a over the identifying fields.
    auto mix = [this](std::uint64_t x) {
      hash_ ^= x;
      hash_ *= 0x100000001b3ULL;
    };
    mix(w.id.client);
    mix(w.id.seq);
    mix(w.key);
    mix(w.value);
    ++count_;
  }

  std::uint64_t value() const { return hash_; }
  std::uint64_t count() const { return count_; }

  friend bool operator==(const CommitDigest&, const CommitDigest&) = default;

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t count_ = 0;
};

}  // namespace canopus::kv
