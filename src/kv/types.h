// Client-visible request/reply types shared by every consensus system in
// this repository (Canopus, EPaxos, Zab/ZKCanopus). Keeping the client
// protocol identical across systems is what makes the paper's comparisons
// apples-to-apples (§8's ZKCanopus methodology).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "simnet/payload.h"

namespace canopus::kv {

/// One key-value operation. The paper's workload uses 16-byte key-value
/// pairs drawn from 1M keys.
struct Request {
  RequestId id;
  bool is_write = false;
  std::uint64_t key = 0;
  std::uint64_t value = 0;  ///< payload for writes
  NodeId origin = kInvalidNode;  ///< server that received it from the client
  Time arrival = 0;  ///< client-side submit time (measurement only)
};

/// Wire footprint of one request: 16-byte KV pair + ids + flags.
inline constexpr std::size_t kRequestWire = 40;

/// Open-loop clients aggregate same-tick arrivals into one batch message.
struct ClientBatch {
  std::vector<Request> reqs;
  std::size_t wire_bytes() const { return 24 + kRequestWire * reqs.size(); }
};

/// A finished request going back to its client.
struct Completion {
  RequestId id;
  bool is_write = false;
  std::uint64_t value = 0;  ///< read result (0 for writes)
  Time arrival = 0;
  std::uint64_t key = 0;  ///< the request's key (audit plane: per-key
                          ///< monotonic-read checking); not on the wire
};

struct ReplyBatch {
  std::vector<Completion> done;
  std::size_t wire_bytes() const { return 24 + 24 * done.size(); }
};

}  // namespace canopus::kv

CANOPUS_REGISTER_PAYLOAD(canopus::kv::ClientBatch, kKvClientBatch);
CANOPUS_REGISTER_PAYLOAD(canopus::kv::ReplyBatch, kKvReplyBatch);
