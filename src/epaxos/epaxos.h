// EPaxos baseline (Moraru, Andersen, Kaminsky — SOSP '13), as configured in
// the Canopus paper's evaluation (§8):
//
//  * zero command interference — every instance takes the fast path
//    (PreAccept to all, commit on a fast quorum of PreAcceptOKs);
//  * request batching with a configurable duration (5 ms default, 2 ms
//    variant in Figure 4);
//  * "thrifty" disabled — PreAccepts go to every replica, as the paper
//    found thrifty lowered throughput in their runs;
//  * reads travel through the protocol like writes ("EPaxos sends reads
//    over the network to other nodes", §8.1.1), which is why its
//    throughput is insensitive to the write ratio.
//
// Execution: at commit the command leader executes the batch and replies to
// its clients; other replicas execute on receiving the Commit notification
// (they already hold the commands from the PreAccept).
//
// This captures EPaxos' message complexity and latency profile, which is
// what the paper's comparison exercises; the full dependency-graph conflict
// machinery is exercised trivially at zero interference (deps always empty)
// but is implemented for nonzero-interference workloads too: interfering
// instances gather dependencies and execute in dependency order.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kv/store.h"
#include "kv/types.h"
#include "simnet/network.h"

namespace canopus::epaxos {

struct Config {
  Time batch_interval = 5 * kMillisecond;  ///< paper default; Fig 4 also 2ms
  /// Fraction [0,1] of writes that interfere (conflict) with concurrent
  /// instances; the paper evaluates at 0.
  double interference = 0.0;
  /// Protocol CPU per command at every replica (dependency/attribute checks
  /// on PreAccept, instance bookkeeping) — the per-command work EPaxos pays
  /// on reads AND writes at all nodes, unlike Canopus.
  Time cpu_per_command = 1'500;

  // --- fault-plane tuning -------------------------------------------------
  /// Executed instances whose batches stay resident for peer repair. A
  /// replica that misses commits (crash, partition) fetches them back from
  /// any peer still holding the batch; beyond this window the instance is
  /// unrecoverable from that peer and the fetch rotates to another.
  std::size_t repair_window = 64;
  /// Retry interval for gap-repair fetches. Must exceed the widest RTT in
  /// the deployment (Table 1 tops out at 322 ms) or healthy in-flight
  /// commits are mistaken for gaps; single-DC failure scenarios lower it
  /// for fast post-heal repair.
  Time repair_retry = 350 * kMillisecond;
  /// Snapshot/state transfer: when a gap is provably unservable (wider
  /// than the repair window, or a full rotation of fetches came back
  /// empty), ask a peer for a full state snapshot instead of rotating
  /// CommitFull fetches forever. With snapshots off the gap is surfaced
  /// as an explicit unrecoverable outcome (unrecoverable_gaps()) and the
  /// fetch spam stops — loud, never a silent stall.
  bool snapshots = true;
};

/// Instance id: (replica, per-replica sequence number).
struct InstanceId {
  NodeId replica = kInvalidNode;
  std::uint64_t seq = 0;
  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

struct PreAccept {
  InstanceId id;
  /// Shared so the per-peer fan-out does not copy the batch N times.
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::vector<InstanceId> deps;
  std::size_t wire_bytes() const {
    return 64 + kv::kRequestWire * (batch ? batch->size() : 0) +
           16 * deps.size();
  }
};

struct PreAcceptOk {
  InstanceId id;
  std::vector<InstanceId> deps;  ///< union seen by the acceptor
  std::size_t wire_bytes() const { return 64 + 16 * deps.size(); }
};

struct Commit {
  InstanceId id;
  std::vector<InstanceId> deps;
  std::size_t wire_bytes() const { return 64 + 16 * deps.size(); }
};

/// Repair request: resend committed instances of `replica` with sequence
/// numbers in [from, to].
struct Fetch {
  NodeId replica = kInvalidNode;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  static constexpr std::size_t kWire = 40;
};

/// Repair reply: a commit that carries its batch (for replicas that never
/// received the PreAccept).
struct CommitFull {
  InstanceId id;
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::vector<InstanceId> deps;
  std::size_t wire_bytes() const {
    return 64 + kv::kRequestWire * (batch ? batch->size() : 0) +
           16 * deps.size();
  }
};

/// Recovery probe: "what is the latest instance you committed as leader?"
struct SeqProbe {
  static constexpr std::size_t kWire = 24;
};

struct SeqInfo {
  std::uint64_t committed_seq = 0;  ///< sender's own latest committed seq
  static constexpr std::size_t kWire = 24;
};

/// State-transfer request: "send me your full state" — issued when a gap
/// cannot be covered by CommitFull fetches (evicted everywhere).
struct SnapRequest {
  static constexpr std::size_t kWire = 24;
};

/// State-transfer reply: the donor's KV image + digest states plus the
/// per-replica executed frontier the image covers. Only a donor whose
/// executed set is prefix-closed for every replica answers, so `covered`
/// describes the image exactly.
struct SnapshotMsg {
  kv::Snapshot snap;
  std::uint64_t executed_count = 0;
  std::vector<std::pair<NodeId, std::uint64_t>> covered;
  std::size_t wire_bytes() const {
    return 48 + snap.wire_bytes() + 16 * covered.size();
  }
};

class EPaxosNode : public simnet::Process {
 public:
  EPaxosNode(std::vector<NodeId> replicas, Config cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  /// Local submission path for tests.
  void submit(kv::Request r);

  /// Crash-stop: drop all traffic and timers until recover(). Committed
  /// instances survive (durable log); the pending batch is volatile.
  void crash();
  /// Restart after a crash and probe peers for missed instances.
  void recover();
  bool crashed() const { return crashed_; }
  /// Probes every peer for instances this replica missed.
  void resync();

  std::uint64_t executed_requests() const { return executed_; }
  /// Reads this node answered to its own clients.
  std::uint64_t served_reads() const { return served_reads_; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }
  /// Order-insensitive digest of executed writes — the agreement check that
  /// is meaningful for EPaxos (see kv::SetDigest).
  const kv::SetDigest& set_digest() const { return set_digest_; }

  /// Repair diagnostics: (contiguously committed seq, highest seq known
  /// committed) for `replica`'s instances at this node. A first component
  /// below the second is an open gap the repair plane is working on.
  std::pair<std::uint64_t, std::uint64_t> repair_frontier(
      NodeId replica) const {
    const auto c = contig_.find(replica);
    const auto m = max_committed_seen_.find(replica);
    return {c == contig_.end() ? 0 : c->second,
            m == max_committed_seen_.end() ? 0 : m->second};
  }

  /// Repair observability: retained instance records / resident batches
  /// (the memory footprint repair_window bounds) and snapshot counters.
  std::size_t log_entries_retained() const { return repair_ring_.size(); }
  std::size_t instance_records() const { return instances_.size(); }
  std::uint64_t snapshots_installed() const { return snapshots_installed_; }
  std::uint64_t snapshots_served() const { return snapshots_served_; }
  /// Gaps declared unrecoverable (snapshots disabled and every peer has
  /// evicted the instances). Nonzero means this replica said so loudly
  /// instead of rotating fetches forever.
  std::uint64_t unrecoverable_gaps() const { return unrecoverable_gaps_; }

  /// Fired when a batch executes locally, with the instance's requests.
  std::function<void(const std::vector<kv::Request>&)> on_execute;
  /// Fired after this replica installs a peer snapshot (its state
  /// fast-forwarded past the gap without executing the missed instances).
  std::function<void(const kv::Snapshot&)> on_snapshot_install;

 private:
  struct Instance {
    std::shared_ptr<const std::vector<kv::Request>> batch;
    std::vector<InstanceId> deps;
    /// Acceptors whose PreAcceptOk arrived (dedup: PreAccepts are
    /// retransmitted after a partition, so acks can repeat).
    std::unordered_set<NodeId> ok_from;
    bool committed = false;
    bool executed = false;
    bool own = false;  ///< this node is the command leader
  };

  void flush_batch();
  void handle_pre_accept(NodeId src, const PreAccept& pa);
  void handle_pre_accept_ok(NodeId src, const PreAcceptOk& ok);
  void handle_commit(const Commit& c);
  void handle_fetch(NodeId src, const Fetch& f);
  void handle_commit_full(const CommitFull& cf);
  void handle_snap_request(NodeId src);
  void handle_snapshot(const SnapshotMsg& s);
  void register_commit(const InstanceId& id);
  void retry_blocked();
  void arm_repair_timer();
  /// Returns true when the instance is (now or already) executed.
  bool try_execute(const InstanceId& id);
  void execute(const InstanceId& id);
  void advance_exec_contig(NodeId replica);
  /// Erases executed, batch-evicted records at the head of `replica`'s
  /// instance space (everything at or below the executed frontier that no
  /// longer serves repair) and advances pruned_below_.
  void prune_instances(NodeId replica);
  bool pruned(const InstanceId& id) const {
    const auto it = pruned_below_.find(id.replica);
    return it != pruned_below_.end() && id.seq <= it->second;
  }
  std::size_t fast_quorum() const;

  std::vector<NodeId> replicas_;
  Config cfg_;
  std::uint64_t next_seq_ = 1;
  std::vector<kv::Request> pending_;
  std::map<InstanceId, Instance> instances_;
  /// Interfering instances not yet committed, for dependency collection.
  std::vector<InstanceId> active_interfering_;
  /// Committed instances parked on uncommitted dependencies.
  std::vector<InstanceId> blocked_;

  // --- repair state -------------------------------------------------------
  /// Per command leader: highest seq with every instance <= it committed
  /// locally, and the highest seq known committed anywhere. contig < max
  /// means this replica has a gap to repair.
  std::unordered_map<NodeId, std::uint64_t> contig_;
  std::unordered_map<NodeId, std::uint64_t> max_committed_seen_;
  /// Per-replica executed frontier (all seqs <= it executed locally) and
  /// highest executed seq — equal iff this node's executed set is
  /// prefix-closed for that replica (the snapshot-donor eligibility test).
  std::unordered_map<NodeId, std::uint64_t> exec_contig_;
  std::unordered_map<NodeId, std::uint64_t> max_executed_;
  /// Records at or below this seq are pruned; stale retransmits for them
  /// are acked/ignored without resurrecting state.
  std::unordered_map<NodeId, std::uint64_t> pruned_below_;
  /// Bounded fetch rotation (the PR 10 bugfix): per-replica attempt count
  /// since the frontier last advanced, and the frontier it was counted at.
  /// One full rotation of targets without progress escalates to a
  /// SnapRequest (or an unrecoverable-gap declaration).
  std::unordered_map<NodeId, std::uint64_t> gap_attempts_;
  std::unordered_map<NodeId, std::uint64_t> gap_at_;
  std::unordered_map<NodeId, bool> gap_unrecoverable_;
  /// Own instances not yet committed, oldest first, with their proposal
  /// times — the repair timer retransmits PreAccepts lost to a partition.
  std::deque<std::pair<InstanceId, Time>> own_uncommitted_;
  /// Executed instances still holding their batch for peer repair (FIFO,
  /// bounded by cfg_.repair_window).
  std::deque<InstanceId> repair_ring_;
  bool repair_timer_armed_ = false;
  bool crashed_ = false;
  /// This replica's own latest committed seq (answer to SeqProbe).
  std::uint64_t own_committed_ = 0;
  std::uint64_t snapshots_installed_ = 0;
  std::uint64_t snapshots_served_ = 0;
  std::uint64_t unrecoverable_gaps_ = 0;

  kv::Store store_;
  kv::CommitDigest digest_;
  kv::SetDigest set_digest_;
  std::uint64_t executed_ = 0;
  std::uint64_t served_reads_ = 0;
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;
  bool batch_timer_armed_ = false;
};

}  // namespace canopus::epaxos

CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::PreAccept, kEpaxosPreAccept);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::PreAcceptOk, kEpaxosPreAcceptOk);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::Commit, kEpaxosCommit);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::Fetch, kEpaxosFetch);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::CommitFull, kEpaxosCommitFull);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::SeqProbe, kEpaxosSeqProbe);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::SeqInfo, kEpaxosSeqInfo);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::SnapRequest, kEpaxosSnapRequest);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::SnapshotMsg, kEpaxosSnapshot);
