// EPaxos baseline (Moraru, Andersen, Kaminsky — SOSP '13), as configured in
// the Canopus paper's evaluation (§8):
//
//  * zero command interference — every instance takes the fast path
//    (PreAccept to all, commit on a fast quorum of PreAcceptOKs);
//  * request batching with a configurable duration (5 ms default, 2 ms
//    variant in Figure 4);
//  * "thrifty" disabled — PreAccepts go to every replica, as the paper
//    found thrifty lowered throughput in their runs;
//  * reads travel through the protocol like writes ("EPaxos sends reads
//    over the network to other nodes", §8.1.1), which is why its
//    throughput is insensitive to the write ratio.
//
// Execution: at commit the command leader executes the batch and replies to
// its clients; other replicas execute on receiving the Commit notification
// (they already hold the commands from the PreAccept).
//
// This captures EPaxos' message complexity and latency profile, which is
// what the paper's comparison exercises; the full dependency-graph conflict
// machinery is exercised trivially at zero interference (deps always empty)
// but is implemented for nonzero-interference workloads too: interfering
// instances gather dependencies and execute in dependency order.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/store.h"
#include "kv/types.h"
#include "simnet/network.h"

namespace canopus::epaxos {

struct Config {
  Time batch_interval = 5 * kMillisecond;  ///< paper default; Fig 4 also 2ms
  /// Fraction [0,1] of writes that interfere (conflict) with concurrent
  /// instances; the paper evaluates at 0.
  double interference = 0.0;
  /// Protocol CPU per command at every replica (dependency/attribute checks
  /// on PreAccept, instance bookkeeping) — the per-command work EPaxos pays
  /// on reads AND writes at all nodes, unlike Canopus.
  Time cpu_per_command = 1'500;
};

/// Instance id: (replica, per-replica sequence number).
struct InstanceId {
  NodeId replica = kInvalidNode;
  std::uint64_t seq = 0;
  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
};

struct PreAccept {
  InstanceId id;
  /// Shared so the per-peer fan-out does not copy the batch N times.
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::vector<InstanceId> deps;
  std::size_t wire_bytes() const {
    return 64 + kv::kRequestWire * (batch ? batch->size() : 0) +
           16 * deps.size();
  }
};

struct PreAcceptOk {
  InstanceId id;
  std::vector<InstanceId> deps;  ///< union seen by the acceptor
  std::size_t wire_bytes() const { return 64 + 16 * deps.size(); }
};

struct Commit {
  InstanceId id;
  std::vector<InstanceId> deps;
  std::size_t wire_bytes() const { return 64 + 16 * deps.size(); }
};

class EPaxosNode : public simnet::Process {
 public:
  EPaxosNode(std::vector<NodeId> replicas, Config cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  /// Local submission path for tests.
  void submit(kv::Request r);

  std::uint64_t executed_requests() const { return executed_; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }

  /// Fired when a batch executes locally, with the instance's requests.
  std::function<void(const std::vector<kv::Request>&)> on_execute;

 private:
  struct Instance {
    std::shared_ptr<const std::vector<kv::Request>> batch;
    std::vector<InstanceId> deps;
    int oks = 0;
    bool committed = false;
    bool executed = false;
    bool own = false;  ///< this node is the command leader
  };

  void flush_batch();
  void handle_pre_accept(NodeId src, const PreAccept& pa);
  void handle_pre_accept_ok(const PreAcceptOk& ok);
  void handle_commit(const Commit& c);
  /// Returns true when the instance is (now or already) executed.
  bool try_execute(const InstanceId& id);
  void execute(const InstanceId& id);
  std::size_t fast_quorum() const;

  std::vector<NodeId> replicas_;
  Config cfg_;
  std::uint64_t next_seq_ = 1;
  std::vector<kv::Request> pending_;
  std::map<InstanceId, Instance> instances_;
  /// Interfering instances not yet committed, for dependency collection.
  std::vector<InstanceId> active_interfering_;
  /// Committed instances parked on uncommitted dependencies.
  std::vector<InstanceId> blocked_;
  kv::Store store_;
  kv::CommitDigest digest_;
  std::uint64_t executed_ = 0;
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;
  bool batch_timer_armed_ = false;
};

}  // namespace canopus::epaxos

CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::PreAccept, kEpaxosPreAccept);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::PreAcceptOk, kEpaxosPreAcceptOk);
CANOPUS_REGISTER_PAYLOAD(canopus::epaxos::Commit, kEpaxosCommit);
