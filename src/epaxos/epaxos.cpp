#include "epaxos/epaxos.h"

#include <algorithm>
#include <cassert>

namespace canopus::epaxos {

EPaxosNode::EPaxosNode(std::vector<NodeId> replicas, Config cfg)
    : replicas_(std::move(replicas)), cfg_(cfg) {}

void EPaxosNode::on_start() {}

std::size_t EPaxosNode::fast_quorum() const {
  // EPaxos fast-path quorum: F + floor((F+1)/2) for N = 2F+1.
  const std::size_t n = replicas_.size();
  const std::size_t f = (n - 1) / 2;
  return f + (f + 1) / 2;
}

void EPaxosNode::crash() {
  crashed_ = true;
  // The un-proposed batch and unsent replies are volatile; committed
  // instances model state recovered from the durable log.
  pending_.clear();
  reply_buffer_.clear();
}

void EPaxosNode::recover() {
  if (!crashed_) return;
  crashed_ = false;
  resync();
}

void EPaxosNode::resync() {
  if (crashed_) return;
  for (NodeId peer : replicas_) {
    if (peer != node_id()) send(peer, SeqProbe::kWire, SeqProbe{});
  }
  // Own instances that were in flight at crash time (PreAccepts delivered,
  // the acks lost while down) only commit if their retransmit loop runs —
  // the SeqProbe replies alone never re-arm it when no OTHER leader's
  // commits were missed.
  if (!own_uncommitted_.empty()) arm_repair_timer();
}

void EPaxosNode::submit(kv::Request r) {
  if (crashed_) return;
  r.origin = node_id();
  pending_.push_back(r);
  if (!batch_timer_armed_) {
    batch_timer_armed_ = true;
    after(cfg_.batch_interval, [this] {
      batch_timer_armed_ = false;
      if (!crashed_) flush_batch();
    });
  }
}

void EPaxosNode::on_message(const simnet::Message& m) {
  if (crashed_) return;
  if (const auto* batch = m.as<kv::ClientBatch>()) {
    for (const kv::Request& r : batch->reqs) submit(r);
  } else if (const auto* pa = m.as<PreAccept>()) {
    handle_pre_accept(m.src(), *pa);
  } else if (const auto* ok = m.as<PreAcceptOk>()) {
    handle_pre_accept_ok(m.src(), *ok);
  } else if (const auto* c = m.as<Commit>()) {
    handle_commit(*c);
  } else if (const auto* f = m.as<Fetch>()) {
    handle_fetch(m.src(), *f);
  } else if (const auto* cf = m.as<CommitFull>()) {
    handle_commit_full(*cf);
  } else if (m.as<SnapRequest>() != nullptr) {
    handle_snap_request(m.src());
  } else if (const auto* sn = m.as<SnapshotMsg>()) {
    handle_snapshot(*sn);
  } else if (m.as<SeqProbe>() != nullptr) {
    send(m.src(), SeqInfo::kWire, SeqInfo{own_committed_});
  } else if (const auto* si = m.as<SeqInfo>()) {
    auto& seen = max_committed_seen_[m.src()];
    seen = std::max(seen, si->committed_seq);
    if (contig_[m.src()] < seen) arm_repair_timer();
  }
}

void EPaxosNode::flush_batch() {
  if (pending_.empty()) return;

  const InstanceId id{node_id(), next_seq_++};
  net().busy(node_id(), static_cast<Time>(pending_.size()) *
                            cfg_.cpu_per_command);
  Instance& inst = instances_[id];
  inst.batch = std::make_shared<const std::vector<kv::Request>>(
      std::move(pending_));
  pending_.clear();
  inst.own = true;  // the leader's own vote is implicit

  // Interference model: with probability cfg_.interference the instance
  // conflicts with all currently active interfering instances and must
  // carry them as dependencies (the paper evaluates at 0 -> always empty).
  if (cfg_.interference > 0 && rng().uniform() < cfg_.interference) {
    inst.deps = active_interfering_;
    active_interfering_.push_back(id);
  }

  PreAccept pa{id, inst.batch, inst.deps};
  for (NodeId peer : replicas_) {
    if (peer != node_id()) send(peer, pa.wire_bytes(), pa);
  }
  if (replicas_.size() == 1) {
    inst.committed = true;
    register_commit(id);
    try_execute(id);
    return;
  }
  own_uncommitted_.emplace_back(id, sim().now());
  arm_repair_timer();  // retransmits the PreAccept if a partition eats it
}

void EPaxosNode::handle_pre_accept(NodeId src, const PreAccept& pa) {
  if (pruned(pa.id)) {
    // Stale retransmit for an instance this replica already executed and
    // pruned: ack without resurrecting a record.
    PreAcceptOk ok{pa.id, pa.deps};
    send(src, ok.wire_bytes(), ok);
    return;
  }
  Instance& inst = instances_[pa.id];
  if (!inst.committed) {  // a commit's attributes are authoritative
    inst.batch = pa.batch;
    inst.deps = pa.deps;
  }
  net().busy(node_id(),
             static_cast<Time>(pa.batch ? pa.batch->size() : 0) *
                 cfg_.cpu_per_command);
  // Zero-interference fast path: the acceptor sees no conflicting
  // instances, so it echoes the dependencies unchanged and the leader's
  // fast quorum check succeeds.
  PreAcceptOk ok{pa.id, pa.deps};
  send(src, ok.wire_bytes(), ok);
}

void EPaxosNode::handle_pre_accept_ok(NodeId src, const PreAcceptOk& ok) {
  auto it = instances_.find(ok.id);
  if (it == instances_.end() || it->second.committed) return;
  Instance& inst = it->second;
  if (!inst.ok_from.insert(src).second) return;  // retransmit duplicate
  if (inst.ok_from.size() + 1 >= fast_quorum()) {
    inst.committed = true;
    register_commit(ok.id);
    Commit c{ok.id, inst.deps};
    for (NodeId peer : replicas_) {
      if (peer != node_id()) send(peer, c.wire_bytes(), c);
    }
    try_execute(ok.id);
  }
}

void EPaxosNode::handle_commit(const Commit& c) {
  if (pruned(c.id)) return;  // stale retransmit; already executed here
  Instance& inst = instances_[c.id];
  inst.deps = c.deps;
  inst.committed = true;
  register_commit(c.id);
  // Committed but batch-less: the PreAccept was lost (crash/partition
  // window) and only the commit got through. The contiguous frontier
  // will not advance past it, so the repair plane fetches the batch back.
  if (!inst.batch) arm_repair_timer();
  try_execute(c.id);
  retry_blocked();
}

void EPaxosNode::handle_commit_full(const CommitFull& cf) {
  if (pruned(cf.id)) return;  // stale repair reply; already executed here
  Instance& inst = instances_[cf.id];
  if (inst.committed && (inst.executed || inst.batch)) return;
  if (!inst.batch) inst.batch = cf.batch;
  inst.deps = cf.deps;
  inst.committed = true;
  register_commit(cf.id);
  try_execute(cf.id);
  retry_blocked();
}

void EPaxosNode::handle_fetch(NodeId src, const Fetch& f) {
  // Serve the gap from whatever committed instances (with batches still
  // resident) this replica holds; the requester rotates targets if we
  // cannot cover the range.
  for (std::uint64_t s = f.from; s <= f.to; ++s) {
    auto it = instances_.find(InstanceId{f.replica, s});
    if (it == instances_.end() || !it->second.committed || !it->second.batch)
      continue;
    CommitFull cf{it->first, it->second.batch, it->second.deps};
    send(src, cf.wire_bytes(), cf);
  }
}

void EPaxosNode::handle_snap_request(NodeId src) {
  // Donor eligibility: this replica's executed set must be prefix-closed
  // for EVERY replica's instance space — otherwise the image would bake in
  // out-of-order executions the frontier vector cannot describe, and the
  // receiver could double-apply or lose commands. Ineligible donors stay
  // silent; the requester's rotation finds another (or this one becomes
  // eligible once its own gaps close).
  for (NodeId r : replicas_) {
    const auto ec = exec_contig_.find(r);
    const auto mx = max_executed_.find(r);
    const std::uint64_t e = ec == exec_contig_.end() ? 0 : ec->second;
    const std::uint64_t m = mx == max_executed_.end() ? 0 : mx->second;
    if (e != m) return;
  }
  SnapshotMsg s;
  s.snap.image =
      std::make_shared<const kv::StoreImage>(store_.export_image());
  s.snap.digest_hash = digest_.value();
  s.snap.digest_count = digest_.count();
  s.snap.set_sum = set_digest_.value();
  s.snap.set_count = set_digest_.count();
  s.executed_count = executed_;
  s.covered.reserve(replicas_.size());
  for (NodeId r : replicas_) {
    const auto ec = exec_contig_.find(r);
    s.covered.emplace_back(r, ec == exec_contig_.end() ? 0 : ec->second);
  }
  ++snapshots_served_;
  send(src, s.wire_bytes(), s);
}

void EPaxosNode::handle_snapshot(const SnapshotMsg& s) {
  std::unordered_map<NodeId, std::uint64_t> covered;
  for (const auto& [r, upto] : s.covered) covered[r] = upto;
  const auto covered_upto = [&](NodeId r) {
    const auto it = covered.find(r);
    return it == covered.end() ? std::uint64_t{0} : it->second;
  };
  // Stale (a slow donor answered after the gap closed): ignore.
  bool advances = false;
  for (const auto& [r, upto] : covered) {
    if (upto > contig_[r]) {
      advances = true;
      break;
    }
  }
  if (!advances) return;
  // Replay set: instances this replica executed BEYOND the image's
  // per-replica frontier (EPaxos executes out of order, so local state can
  // be ahead of any prefix-closed image). Their effects are in our state
  // but not the donor's image — they must be re-applied on top after the
  // restore. If any of them already evicted its batch we cannot replay:
  // reject this image and let the rotation find a donor whose frontier
  // passes it.
  std::vector<InstanceId> replay;
  for (const auto& [id, inst] : instances_) {
    if (inst.executed && id.seq > covered_upto(id.replica)) {
      if (!inst.batch) return;
      replay.push_back(id);
    }
  }
  // Install: adopt the donor's state machine and digest chains wholesale.
  if (s.snap.image) store_.restore(*s.snap.image);
  digest_.restore(s.snap.digest_hash, s.snap.digest_count);
  set_digest_.restore(s.snap.set_sum, s.snap.set_count);
  executed_ = s.executed_count;
  for (const auto& [r, upto] : covered) {
    auto raise = [upto](std::uint64_t& v) { v = std::max(v, upto); };
    raise(contig_[r]);
    raise(exec_contig_[r]);
    raise(max_executed_[r]);
    raise(max_committed_seen_[r]);
    raise(pruned_below_[r]);
    gap_attempts_[r] = 0;
    gap_unrecoverable_[r] = false;
    if (r == node_id()) {
      own_committed_ = std::max(own_committed_, upto);
      if (next_seq_ <= upto) next_seq_ = upto + 1;
      while (!own_uncommitted_.empty() &&
             own_uncommitted_.front().first.seq <= upto)
        own_uncommitted_.pop_front();
    }
    // Records the image covers will never execute here: drop them so no
    // stale retransmit resurrects one (pruned_below_ guards the handlers).
    auto it = instances_.lower_bound(InstanceId{r, 0});
    while (it != instances_.end() && it->first.replica == r &&
           it->first.seq <= upto)
      it = instances_.erase(it);
  }
  std::erase_if(blocked_, [&](const InstanceId& id) {
    return id.seq <= covered_upto(id.replica);
  });
  ++snapshots_installed_;
  if (on_snapshot_install) on_snapshot_install(s.snap);
  // Replay the kept-ahead executions in InstanceId order (the digests are
  // order-insensitive across non-interfering instances, so a deterministic
  // order suffices). on_execute fires again so an external audit log that
  // reset to the image stays consistent with the final state.
  std::sort(replay.begin(), replay.end());
  for (const InstanceId& id : replay) {
    auto it = instances_.find(id);
    if (it == instances_.end() || !it->second.batch) continue;
    for (const kv::Request& r : *it->second.batch) {
      if (r.is_write) {
        store_.apply(r);
        digest_.append(r);
        set_digest_.append(r);
      }
      ++executed_;
    }
    if (on_execute) on_execute(*it->second.batch);
  }
  for (NodeId r : replicas_) advance_exec_contig(r);
  retry_blocked();
}

void EPaxosNode::register_commit(const InstanceId& id) {
  if (id.replica == node_id()) {
    own_committed_ = std::max(own_committed_, id.seq);
    while (!own_uncommitted_.empty()) {
      auto it = instances_.find(own_uncommitted_.front().first);
      if (it != instances_.end() && !it->second.committed) break;
      own_uncommitted_.pop_front();
    }
  }
  auto& seen = max_committed_seen_[id.replica];
  seen = std::max(seen, id.seq);
  // Advance the contiguously-committed frontier for this command leader.
  // An instance counts only once it is executable (or executed): a commit
  // whose batch never arrived must keep the frontier behind it so the
  // repair fetch covers it.
  auto& contig = contig_[id.replica];
  while (true) {
    auto it = instances_.find(InstanceId{id.replica, contig + 1});
    if (it == instances_.end() || !it->second.committed ||
        (!it->second.executed && !it->second.batch))
      break;
    ++contig;
  }
  // A hole below a known commit is a missed instance: repair it.
  if (contig < seen && id.replica != node_id()) arm_repair_timer();
}

void EPaxosNode::arm_repair_timer() {
  if (repair_timer_armed_ || crashed_) return;
  repair_timer_armed_ = true;
  after(cfg_.repair_retry, [this] {
    repair_timer_armed_ = false;
    if (crashed_) return;
    bool work_left = false;
    // Missed instances of other leaders: fetch the gap. Ask the command
    // leader first; rotate to the other replicas on subsequent attempts in
    // case it is dead or has already evicted the batch. The rotation is
    // BOUNDED per replica: one full pass over the targets without frontier
    // progress — or a gap wider than the repair window, which no peer's
    // ring can cover — escalates to a state snapshot (or, with snapshots
    // off, a loud unrecoverable-gap declaration) instead of rotating
    // CommitFull fetches forever.
    for (const auto& [replica, seen] : max_committed_seen_) {
      if (replica == node_id()) continue;
      const std::uint64_t contig = contig_[replica];
      if (contig >= seen) {
        gap_attempts_[replica] = 0;
        gap_unrecoverable_[replica] = false;
        continue;
      }
      if (contig > gap_at_[replica]) {  // progress resets the budget
        gap_attempts_[replica] = 0;
        gap_unrecoverable_[replica] = false;
      }
      gap_at_[replica] = contig;
      std::vector<NodeId> targets{replica};
      for (NodeId peer : replicas_) {
        if (peer != node_id() && peer != replica) targets.push_back(peer);
      }
      const std::size_t attempt =
          static_cast<std::size_t>(gap_attempts_[replica]++);
      const bool too_wide = seen - contig > cfg_.repair_window;
      const bool rotated_dry = attempt >= targets.size();
      if (too_wide || rotated_dry) {
        if (cfg_.snapshots) {
          const NodeId donor = targets[attempt % targets.size()];
          send(donor, SnapRequest::kWire, SnapRequest{});
          work_left = true;
        } else if (!gap_unrecoverable_[replica]) {
          gap_unrecoverable_[replica] = true;
          ++unrecoverable_gaps_;
        }
        // An unrecoverable gap does not keep the timer alive by itself.
        continue;
      }
      work_left = true;
      const NodeId target = targets[attempt % targets.size()];
      Fetch f{replica, contig + 1, seen};
      send(target, Fetch::kWire, f);
    }
    // Own instances stuck pre-quorum for a full interval had their
    // PreAccepts (or the acks) eaten by a fault: retransmit to the
    // acceptors that have not answered.
    const Time stale = sim().now() - cfg_.repair_retry;
    for (const auto& [id, proposed_at] : own_uncommitted_) {
      auto it = instances_.find(id);
      if (it == instances_.end() || it->second.committed) continue;
      work_left = true;
      if (proposed_at > stale) continue;
      PreAccept pa{id, it->second.batch, it->second.deps};
      for (NodeId peer : replicas_) {
        if (peer != node_id() && !it->second.ok_from.contains(peer))
          send(peer, pa.wire_bytes(), pa);
      }
    }
    if (work_left) arm_repair_timer();
  });
}

void EPaxosNode::retry_blocked() {
  // A commit may unblock parked instances; retry until a fixed point.
  bool progress = true;
  while (progress && !blocked_.empty()) {
    progress = false;
    for (std::size_t i = 0; i < blocked_.size();) {
      if (try_execute(blocked_[i])) {
        blocked_[i] = blocked_.back();
        blocked_.pop_back();
        progress = true;
      } else {
        ++i;
      }
    }
  }
}

bool EPaxosNode::try_execute(const InstanceId& id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return true;  // pruned == long executed
  if (!it->second.committed) return false;
  if (it->second.executed) return true;
  if (!it->second.batch) {
    // Committed without its batch (lost PreAccept): park until the repair
    // plane fetches the batch back via CommitFull.
    if (std::find(blocked_.begin(), blocked_.end(), id) == blocked_.end())
      blocked_.push_back(id);
    return false;
  }
  for (const InstanceId& dep : it->second.deps) {
    auto dit = instances_.find(dep);
    if (dit != instances_.end() && !dit->second.committed) {
      if (std::find(blocked_.begin(), blocked_.end(), id) == blocked_.end())
        blocked_.push_back(id);
      return false;
    }
  }
  // Dependencies all committed: execute them first in InstanceId order
  // (our stand-in for EPaxos' SCC/seq execution order), then self.
  for (const InstanceId& dep : it->second.deps) {
    auto dit = instances_.find(dep);
    if (dit != instances_.end() && !dit->second.executed && dep < id)
      execute(dep);
  }
  execute(id);
  return true;
}

void EPaxosNode::execute(const InstanceId& id) {
  if (pruned(id)) return;  // covered by an installed snapshot
  Instance& inst = instances_[id];
  if (inst.executed || !inst.batch) return;
  inst.executed = true;
  auto& mx = max_executed_[id.replica];
  mx = std::max(mx, id.seq);
  advance_exec_contig(id.replica);

  for (const kv::Request& r : *inst.batch) {
    if (r.is_write) {
      store_.apply(r);
      digest_.append(r);
      set_digest_.append(r);
    }
    ++executed_;
    if (inst.own && r.origin == node_id() && r.id.client != kInvalidNode) {
      if (!r.is_write) ++served_reads_;
      kv::Completion done{r.id, r.is_write,
                          r.is_write ? 0 : store_.read(r.key), r.arrival,
                          r.key};
      reply_buffer_[r.id.client].done.push_back(done);
    }
  }
  active_interfering_.erase(
      std::remove(active_interfering_.begin(), active_interfering_.end(), id),
      active_interfering_.end());
  if (on_execute) on_execute(*inst.batch);
  // Executed batches stay resident in a bounded ring for peer repair, then
  // become dead weight and are dropped.
  repair_ring_.push_back(id);
  while (repair_ring_.size() > cfg_.repair_window) {
    const InstanceId victim = repair_ring_.front();
    repair_ring_.pop_front();
    auto evict = instances_.find(victim);
    if (evict != instances_.end()) evict->second.batch.reset();
    // Executed + evicted records below the executed frontier no longer
    // serve repair: erase them so the instance map stays bounded too.
    prune_instances(victim.replica);
  }

  for (auto& [client, batch] : reply_buffer_) {
    if (!batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

void EPaxosNode::advance_exec_contig(NodeId replica) {
  auto& ec = exec_contig_[replica];
  while (true) {
    auto it = instances_.find(InstanceId{replica, ec + 1});
    if (it == instances_.end() || !it->second.executed) break;
    ++ec;
  }
}

void EPaxosNode::prune_instances(NodeId replica) {
  auto& below = pruned_below_[replica];
  const auto ec = exec_contig_.find(replica);
  const std::uint64_t frontier = ec == exec_contig_.end() ? 0 : ec->second;
  while (below < frontier) {
    auto it = instances_.find(InstanceId{replica, below + 1});
    if (it == instances_.end()) {  // already gone (snapshot install)
      ++below;
      continue;
    }
    // Batch still resident means it is still in the repair ring: keep it.
    if (!it->second.executed || it->second.batch) break;
    instances_.erase(it);
    ++below;
  }
}

}  // namespace canopus::epaxos
