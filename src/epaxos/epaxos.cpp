#include "epaxos/epaxos.h"

#include <algorithm>
#include <cassert>

namespace canopus::epaxos {

EPaxosNode::EPaxosNode(std::vector<NodeId> replicas, Config cfg)
    : replicas_(std::move(replicas)), cfg_(cfg) {}

void EPaxosNode::on_start() {}

std::size_t EPaxosNode::fast_quorum() const {
  // EPaxos fast-path quorum: F + floor((F+1)/2) for N = 2F+1.
  const std::size_t n = replicas_.size();
  const std::size_t f = (n - 1) / 2;
  return f + (f + 1) / 2;
}

void EPaxosNode::submit(kv::Request r) {
  r.origin = node_id();
  pending_.push_back(r);
  if (!batch_timer_armed_) {
    batch_timer_armed_ = true;
    after(cfg_.batch_interval, [this] {
      batch_timer_armed_ = false;
      flush_batch();
    });
  }
}

void EPaxosNode::on_message(const simnet::Message& m) {
  if (const auto* batch = m.as<kv::ClientBatch>()) {
    for (const kv::Request& r : batch->reqs) submit(r);
  } else if (const auto* pa = m.as<PreAccept>()) {
    handle_pre_accept(m.src(), *pa);
  } else if (const auto* ok = m.as<PreAcceptOk>()) {
    handle_pre_accept_ok(*ok);
  } else if (const auto* c = m.as<Commit>()) {
    handle_commit(*c);
  }
}

void EPaxosNode::flush_batch() {
  if (pending_.empty()) return;

  const InstanceId id{node_id(), next_seq_++};
  net().busy(node_id(), static_cast<Time>(pending_.size()) *
                            cfg_.cpu_per_command);
  Instance& inst = instances_[id];
  inst.batch = std::make_shared<const std::vector<kv::Request>>(
      std::move(pending_));
  pending_.clear();
  inst.own = true;
  inst.oks = 1;  // self

  // Interference model: with probability cfg_.interference the instance
  // conflicts with all currently active interfering instances and must
  // carry them as dependencies (the paper evaluates at 0 -> always empty).
  if (cfg_.interference > 0 &&
      sim().rng().uniform() < cfg_.interference) {
    inst.deps = active_interfering_;
    active_interfering_.push_back(id);
  }

  PreAccept pa{id, inst.batch, inst.deps};
  for (NodeId peer : replicas_) {
    if (peer != node_id()) send(peer, pa.wire_bytes(), pa);
  }
  if (replicas_.size() == 1) {
    inst.committed = true;
    try_execute(id);
  }
}

void EPaxosNode::handle_pre_accept(NodeId src, const PreAccept& pa) {
  Instance& inst = instances_[pa.id];
  inst.batch = pa.batch;
  inst.deps = pa.deps;
  net().busy(node_id(),
             static_cast<Time>(pa.batch ? pa.batch->size() : 0) *
                 cfg_.cpu_per_command);
  // Zero-interference fast path: the acceptor sees no conflicting
  // instances, so it echoes the dependencies unchanged and the leader's
  // fast quorum check succeeds.
  PreAcceptOk ok{pa.id, pa.deps};
  send(src, ok.wire_bytes(), ok);
}

void EPaxosNode::handle_pre_accept_ok(const PreAcceptOk& ok) {
  auto it = instances_.find(ok.id);
  if (it == instances_.end() || it->second.committed) return;
  Instance& inst = it->second;
  ++inst.oks;
  if (static_cast<std::size_t>(inst.oks) >= fast_quorum()) {
    inst.committed = true;
    Commit c{ok.id, inst.deps};
    for (NodeId peer : replicas_) {
      if (peer != node_id()) send(peer, c.wire_bytes(), c);
    }
    try_execute(ok.id);
  }
}

void EPaxosNode::handle_commit(const Commit& c) {
  Instance& inst = instances_[c.id];
  inst.deps = c.deps;
  inst.committed = true;
  try_execute(c.id);
  // A commit may unblock parked instances; retry until a fixed point.
  bool progress = true;
  while (progress && !blocked_.empty()) {
    progress = false;
    for (std::size_t i = 0; i < blocked_.size();) {
      if (try_execute(blocked_[i])) {
        blocked_[i] = blocked_.back();
        blocked_.pop_back();
        progress = true;
      } else {
        ++i;
      }
    }
  }
}

bool EPaxosNode::try_execute(const InstanceId& id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return true;  // pruned == long executed
  if (!it->second.committed) return false;
  if (it->second.executed) return true;
  for (const InstanceId& dep : it->second.deps) {
    auto dit = instances_.find(dep);
    if (dit != instances_.end() && !dit->second.committed) {
      if (std::find(blocked_.begin(), blocked_.end(), id) == blocked_.end())
        blocked_.push_back(id);
      return false;
    }
  }
  // Dependencies all committed: execute them first in InstanceId order
  // (our stand-in for EPaxos' SCC/seq execution order), then self.
  for (const InstanceId& dep : it->second.deps) {
    auto dit = instances_.find(dep);
    if (dit != instances_.end() && !dit->second.executed && dep < id)
      execute(dep);
  }
  execute(id);
  return true;
}

void EPaxosNode::execute(const InstanceId& id) {
  Instance& inst = instances_[id];
  if (inst.executed || !inst.batch) return;
  inst.executed = true;

  for (const kv::Request& r : *inst.batch) {
    if (r.is_write) {
      store_.apply(r);
      digest_.append(r);
    }
    ++executed_;
    if (inst.own && r.origin == node_id() && r.id.client != kInvalidNode) {
      kv::Completion done{r.id, r.is_write,
                          r.is_write ? 0 : store_.read(r.key), r.arrival};
      reply_buffer_[r.id.client].done.push_back(done);
    }
  }
  active_interfering_.erase(
      std::remove(active_interfering_.begin(), active_interfering_.end(), id),
      active_interfering_.end());
  if (on_execute) on_execute(*inst.batch);
  inst.batch.reset();  // executed batches are dead weight

  for (auto& [client, batch] : reply_buffer_) {
    if (!batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

}  // namespace canopus::epaxos
