// Canopus wire messages (§4.2).
//
// A Proposal is both the round-1 broadcast ("here are my pending writes,
// my random proposal number, my membership observations") and the carrier
// of merged vnode state in later rounds. `round` is the round in which the
// proposal is *consumed*: round-1 proposals carry leaf state; the merged
// state of a height-r ancestor is consumed in round r+1.
//
// Read requests are deliberately absent: Canopus never disseminates reads
// (§5); only write requests ride in proposals.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "kv/store.h"
#include "kv/types.h"
#include "simnet/payload.h"

namespace canopus::proto {

struct MembershipUpdate {
  enum class Kind : std::uint8_t { kLeave, kJoin };
  Kind kind = Kind::kLeave;
  NodeId node = kInvalidNode;

  friend bool operator==(const MembershipUpdate&,
                         const MembershipUpdate&) = default;
};

struct Proposal {
  CycleId cycle = 0;
  RoundId round = 1;   ///< round in which this proposal is consumed
  VnodeId vnode = 0;   ///< vnode whose state this carries
  /// Large random number ordering proposals within a round; merged
  /// proposals carry the max of their inputs (§4.2).
  std::uint64_t number = 0;
  /// Deterministic tie-break: the unique id of the node/vnode that
  /// generated `number` ("ties are broken using the unique IDs").
  std::uint64_t tiebreak = 0;
  /// Ordered write requests. Shared so that re-broadcasting a fetched
  /// proposal inside a super-leaf does not copy thousands of requests.
  std::shared_ptr<const std::vector<kv::Request>> writes;
  std::vector<MembershipUpdate> membership;

  std::size_t write_count() const { return writes ? writes->size() : 0; }

  std::size_t wire_bytes() const {
    return 64 + kv::kRequestWire * write_count() + 8 * membership.size();
  }

  /// Ordering within a round: by (number, tiebreak); tiebreak collisions
  /// cannot happen across distinct proposals of one round.
  friend bool operator<(const Proposal& a, const Proposal& b) {
    return a.number != b.number ? a.number < b.number
                                : a.tiebreak < b.tiebreak;
  }
};

/// Representative -> remote emulator: "send me the state of `vnode` for
/// `cycle`" (§4.2). Also serves as the cross-super-leaf self-synchronization
/// prompt (§4.4).
struct ProposalRequest {
  CycleId cycle = 0;
  RoundId round = 1;  ///< round the requester will consume the state in
  VnodeId vnode = 0;

  static constexpr std::size_t kWire = 32;
};

/// Joining node -> a live super-leaf member (§3 assumption 6).
struct JoinRequest {
  NodeId joiner = kInvalidNode;
  static constexpr std::size_t kWire = 16;
};

/// Sponsor -> joiner: the full state transfer that re-admits an excluded
/// pnode. Sent when the kJoin membership update commits (the agreed point,
/// §4.6): the sponsor's committed KV state through `snapshot_cycle`, the
/// super-leaf's live membership (with each member's activation cycle, see
/// CanopusNode::active_from_), and the deployment-wide exclusion list so the
/// joiner's emulation table matches the snapshot point. The joiner commits
/// cycles in (snapshot_cycle, first_cycle) by fetching their merged root
/// states, and contributes its own round-1 proposals from `first_cycle` on.
struct JoinAck {
  CycleId snapshot_cycle = 0;  ///< snapshot covers commits through this cycle
  CycleId first_cycle = 0;     ///< joiner's round-1 participation starts here
  kv::Snapshot snap;
  /// Live super-leaf members (joiner included) -> activation cycle
  /// (0 = active since before the snapshot).
  std::vector<std::pair<NodeId, CycleId>> members;
  /// Pnodes currently excluded deployment-wide (emulation-table state).
  std::vector<NodeId> dead;

  std::size_t wire_bytes() const {
    return 64 + snap.wire_bytes() + 16 * members.size() + 8 * dead.size();
  }
};

}  // namespace canopus::proto

CANOPUS_REGISTER_PAYLOAD(canopus::proto::Proposal, kCanopusProposal);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::ProposalRequest,
                         kCanopusProposalRequest);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::JoinRequest, kCanopusJoinRequest);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::JoinAck, kCanopusJoinAck);
