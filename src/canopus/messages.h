// Canopus wire messages (§4.2).
//
// A Proposal is both the round-1 broadcast ("here are my pending writes,
// my random proposal number, my membership observations") and the carrier
// of merged vnode state in later rounds. `round` is the round in which the
// proposal is *consumed*: round-1 proposals carry leaf state; the merged
// state of a height-r ancestor is consumed in round r+1.
//
// Read requests are deliberately absent: Canopus never disseminates reads
// (§5); only write requests ride in proposals.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "kv/types.h"
#include "simnet/payload.h"

namespace canopus::proto {

struct MembershipUpdate {
  enum class Kind : std::uint8_t { kLeave, kJoin };
  Kind kind = Kind::kLeave;
  NodeId node = kInvalidNode;

  friend bool operator==(const MembershipUpdate&,
                         const MembershipUpdate&) = default;
};

struct Proposal {
  CycleId cycle = 0;
  RoundId round = 1;   ///< round in which this proposal is consumed
  VnodeId vnode = 0;   ///< vnode whose state this carries
  /// Large random number ordering proposals within a round; merged
  /// proposals carry the max of their inputs (§4.2).
  std::uint64_t number = 0;
  /// Deterministic tie-break: the unique id of the node/vnode that
  /// generated `number` ("ties are broken using the unique IDs").
  std::uint64_t tiebreak = 0;
  /// Ordered write requests. Shared so that re-broadcasting a fetched
  /// proposal inside a super-leaf does not copy thousands of requests.
  std::shared_ptr<const std::vector<kv::Request>> writes;
  std::vector<MembershipUpdate> membership;

  std::size_t write_count() const { return writes ? writes->size() : 0; }

  std::size_t wire_bytes() const {
    return 64 + kv::kRequestWire * write_count() + 8 * membership.size();
  }

  /// Ordering within a round: by (number, tiebreak); tiebreak collisions
  /// cannot happen across distinct proposals of one round.
  friend bool operator<(const Proposal& a, const Proposal& b) {
    return a.number != b.number ? a.number < b.number
                                : a.tiebreak < b.tiebreak;
  }
};

/// Representative -> remote emulator: "send me the state of `vnode` for
/// `cycle`" (§4.2). Also serves as the cross-super-leaf self-synchronization
/// prompt (§4.4).
struct ProposalRequest {
  CycleId cycle = 0;
  RoundId round = 1;  ///< round the requester will consume the state in
  VnodeId vnode = 0;

  static constexpr std::size_t kWire = 32;
};

/// Joining node -> a live super-leaf member (§3 assumption 6).
struct JoinRequest {
  NodeId joiner = kInvalidNode;
  static constexpr std::size_t kWire = 16;
};

/// Sponsor -> joiner: the cycle from which the joiner participates plus the
/// state snapshot (snapshot content is modelled by wire size only).
struct JoinAck {
  CycleId first_cycle = 0;
  std::size_t snapshot_bytes = 0;
  std::size_t wire_bytes() const { return 32 + snapshot_bytes; }
};

}  // namespace canopus::proto

CANOPUS_REGISTER_PAYLOAD(canopus::proto::Proposal, kCanopusProposal);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::ProposalRequest,
                         kCanopusProposalRequest);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::JoinRequest, kCanopusJoinRequest);
CANOPUS_REGISTER_PAYLOAD(canopus::proto::JoinAck, kCanopusJoinAck);
