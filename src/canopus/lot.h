// Leaf-Only Tree (LOT) overlay (paper §4.1) and the emulation table (§4.6).
//
// Only leaf nodes (pnodes) exist physically; every internal node (vnode) is
// virtual and is emulated by all of its descendant pnodes. Pnodes in the
// same rack form a super-leaf whose members share a common height-1 parent.
//
// The tree shape is fixed for the lifetime of a deployment (assumption A3:
// super-leaves are never added or removed; only members churn), so Lot is
// immutable. Mutable liveness state lives in EmulationTable.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace canopus::lot {

struct LotConfig {
  /// Pnode ids per super-leaf (rack). Must be non-empty and disjoint.
  std::vector<std::vector<NodeId>> super_leaves;
  /// Fan-out of internal levels above the super-leaf parents. 0 (default)
  /// places a single root directly above all super-leaf vnodes (height 2,
  /// the shape used throughout the paper's evaluation). Values >= 2 build
  /// taller trees by grouping consecutive vnodes.
  int arity = 0;
};

/// Immutable LOT shape. Vnode ids are dense indices; leaf vnodes come
/// first (one per pnode), then internal vnodes level by level, root last.
class Lot {
 public:
  static Lot build(const LotConfig& cfg);

  /// Tree height h = number of rounds per consensus cycle (§4.2). A single
  /// super-leaf yields height 1.
  int height() const { return height_; }

  VnodeId root() const { return root_; }

  std::size_t num_pnodes() const { return pnode_count_; }
  std::size_t num_vnodes() const { return parent_.size(); }

  /// Leaf vnode corresponding to a pnode (A(n, 0) = n).
  VnodeId leaf_of(NodeId pnode) const;

  /// The pnode of a leaf vnode; kInvalidNode for internal vnodes.
  NodeId pnode_of(VnodeId v) const { return pnode_[v]; }

  /// A(pnode, level): the ancestor vnode at the given height (level 0 is
  /// the leaf itself, level == height() is the root).
  VnodeId ancestor(NodeId pnode, int level) const;

  /// Height of a vnode (0 for leaves).
  int level(VnodeId v) const { return level_[v]; }

  VnodeId parent(VnodeId v) const { return parent_[v]; }
  const std::vector<VnodeId>& children(VnodeId v) const {
    return children_[v];
  }

  /// All pnodes in the subtree of v, in pnode order ("D(v)"); the static
  /// column of the emulation table.
  const std::vector<NodeId>& descendants(VnodeId v) const {
    return descendants_[v];
  }

  int super_leaf_of(NodeId pnode) const;
  std::size_t num_super_leaves() const { return super_leaves_.size(); }

  /// Dense slot of a pnode (super-leaf flattening order): the index shared
  /// by every per-pnode table, including EmulationTable's liveness bits.
  /// O(1) via a table built once in build(); throws on unknown pnodes.
  std::size_t pnode_slot(NodeId pnode) const;
  const std::vector<NodeId>& super_leaf_members(int sl) const {
    return super_leaves_[static_cast<std::size_t>(sl)];
  }

  /// The height-1 vnode shared by a super-leaf's members.
  VnodeId super_leaf_vnode(int sl) const {
    return sl_vnode_[static_cast<std::size_t>(sl)];
  }

  /// Dotted path name for debugging/diagrams, e.g. "1.1.2".
  std::string name(VnodeId v) const;

 private:
  int height_ = 0;
  VnodeId root_ = 0;
  std::size_t pnode_count_ = 0;
  std::vector<VnodeId> parent_;
  std::vector<int> level_;
  std::vector<std::vector<VnodeId>> children_;
  std::vector<std::vector<NodeId>> descendants_;
  std::vector<NodeId> pnode_;  // vnode -> pnode (leaves only)
  std::vector<std::vector<NodeId>> super_leaves_;
  std::vector<VnodeId> sl_vnode_;
  std::vector<VnodeId> leaf_vnode_by_pnode_;  // dense by pnode position
  std::vector<int> sl_by_pnode_;
  std::vector<std::size_t> slot_by_pnode_;  // pnode id -> slot, O(1) lookup
};

/// Mutable liveness view over a Lot: which pnodes currently emulate each
/// vnode (§4.6). Every node maintains its own copy; updates are applied at
/// agreed points (end of the consensus cycle that carried the membership
/// change), so all live nodes hold identical tables in each cycle.
class EmulationTable {
 public:
  explicit EmulationTable(const Lot& lot);

  /// Live descendant pnodes of v, in pnode order. Served from a per-vnode
  /// cached list that is invalidated only by add()/remove(), so the common
  /// no-failure case is a vector indexing with zero allocations — this
  /// sits on the per-message fetch path (canopus/node.cpp issue_fetch).
  const std::vector<NodeId>& emulators(VnodeId v) const;

  bool is_live(NodeId pnode) const;
  void remove(NodeId pnode);
  void add(NodeId pnode);

  /// Live members of a super-leaf, in pnode order. Cached like emulators().
  const std::vector<NodeId>& live_members(int sl) const;

  std::size_t live_count() const { return live_count_; }

 private:
  std::size_t slot(NodeId pnode) const { return lot_->pnode_slot(pnode); }
  void invalidate_caches();

  const Lot* lot_;
  std::vector<bool> live_;  // dense by pnode slot
  std::size_t live_count_ = 0;
  // Lazily rebuilt caches; a liveness change (rare) flips the valid bits.
  mutable std::vector<std::vector<NodeId>> emulators_cache_;   // by vnode
  mutable std::vector<bool> emulators_valid_;
  mutable std::vector<std::vector<NodeId>> members_cache_;     // by super-leaf
  mutable std::vector<bool> members_valid_;
};

}  // namespace canopus::lot
