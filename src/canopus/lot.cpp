#include "canopus/lot.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace canopus::lot {

namespace {
constexpr std::size_t kUnknownSlot = static_cast<std::size_t>(-1);

// pnode -> dense slot lookup shared by Lot and EmulationTable.
std::unordered_map<NodeId, std::size_t> build_slots(
    const std::vector<std::vector<NodeId>>& super_leaves) {
  std::unordered_map<NodeId, std::size_t> slots;
  std::size_t next = 0;
  for (const auto& sl : super_leaves)
    for (NodeId p : sl) {
      if (!slots.emplace(p, next).second)
        throw std::invalid_argument("pnode appears in two super-leaves");
      ++next;
    }
  return slots;
}
}  // namespace

Lot Lot::build(const LotConfig& cfg) {
  if (cfg.super_leaves.empty())
    throw std::invalid_argument("LOT needs at least one super-leaf");
  for (const auto& sl : cfg.super_leaves)
    if (sl.empty()) throw std::invalid_argument("empty super-leaf");
  if (cfg.arity == 1)
    throw std::invalid_argument("internal arity must be 0 or >= 2");

  Lot t;
  t.super_leaves_ = cfg.super_leaves;

  const auto slots = build_slots(cfg.super_leaves);
  t.pnode_count_ = slots.size();
  t.leaf_vnode_by_pnode_.resize(t.pnode_count_);
  t.sl_by_pnode_.resize(t.pnode_count_);

  // Dense pnode -> slot table: node ids are topology indices, so the table
  // is at most the deployment size. Built once here; every per-message
  // lookup (leaf_of, ancestor, EmulationTable::slot) is then O(1).
  NodeId max_pnode = 0;
  for (const auto& [p, s] : slots) max_pnode = std::max(max_pnode, p);
  t.slot_by_pnode_.assign(std::size_t{max_pnode} + 1, kUnknownSlot);
  for (const auto& [p, s] : slots) t.slot_by_pnode_[p] = s;

  // Leaves first: one vnode per pnode.
  for (std::size_t sl = 0; sl < cfg.super_leaves.size(); ++sl) {
    for (NodeId p : cfg.super_leaves[sl]) {
      const VnodeId v = t.parent_.size();
      t.parent_.push_back(0);  // fixed up below
      t.level_.push_back(0);
      t.children_.emplace_back();
      t.descendants_.push_back({p});
      t.pnode_.push_back(p);
      const std::size_t slot = slots.at(p);
      t.leaf_vnode_by_pnode_[slot] = v;
      t.sl_by_pnode_[slot] = static_cast<int>(sl);
    }
  }

  // Height-1 vnodes: super-leaf parents.
  std::vector<VnodeId> frontier;
  for (std::size_t sl = 0; sl < cfg.super_leaves.size(); ++sl) {
    const VnodeId v = t.parent_.size();
    t.parent_.push_back(0);
    t.level_.push_back(1);
    std::vector<VnodeId> kids;
    std::vector<NodeId> desc;
    for (NodeId p : cfg.super_leaves[sl]) {
      const VnodeId leaf = t.leaf_vnode_by_pnode_[slots.at(p)];
      kids.push_back(leaf);
      t.parent_[leaf] = v;
      desc.push_back(p);
    }
    t.children_.push_back(std::move(kids));
    t.descendants_.push_back(std::move(desc));
    t.pnode_.push_back(kInvalidNode);
    t.sl_vnode_.push_back(v);
    frontier.push_back(v);
  }

  // Internal levels: group `arity` vnodes per parent until one remains.
  int level = 1;
  while (frontier.size() > 1) {
    ++level;
    const std::size_t group =
        cfg.arity >= 2 ? static_cast<std::size_t>(cfg.arity)
                       : frontier.size();  // arity 0: single parent level
    std::vector<VnodeId> next;
    for (std::size_t i = 0; i < frontier.size(); i += group) {
      const VnodeId v = t.parent_.size();
      t.parent_.push_back(0);
      t.level_.push_back(level);
      std::vector<VnodeId> kids;
      std::vector<NodeId> desc;
      for (std::size_t j = i; j < std::min(i + group, frontier.size()); ++j) {
        kids.push_back(frontier[j]);
        t.parent_[frontier[j]] = v;
        const auto& d = t.descendants_[frontier[j]];
        desc.insert(desc.end(), d.begin(), d.end());
      }
      t.children_.push_back(std::move(kids));
      t.descendants_.push_back(std::move(desc));
      t.pnode_.push_back(kInvalidNode);
      next.push_back(v);
    }
    frontier = std::move(next);
  }

  t.root_ = frontier.front();
  t.parent_[t.root_] = t.root_;
  t.height_ = t.level_[t.root_];
  return t;
}

std::size_t Lot::pnode_slot(NodeId pnode) const {
  if (pnode >= slot_by_pnode_.size() || slot_by_pnode_[pnode] == kUnknownSlot)
    throw std::out_of_range("unknown pnode");
  return slot_by_pnode_[pnode];
}

VnodeId Lot::leaf_of(NodeId pnode) const {
  return leaf_vnode_by_pnode_[pnode_slot(pnode)];
}

VnodeId Lot::ancestor(NodeId pnode, int level) const {
  VnodeId v = leaf_of(pnode);
  for (int i = 0; i < level; ++i) v = parent_[v];
  return v;
}

int Lot::super_leaf_of(NodeId pnode) const {
  return sl_by_pnode_[pnode_slot(pnode)];
}

std::string Lot::name(VnodeId v) const {
  if (v == root_) return "1";
  // Collect path components root-ward, then emit them in reverse. (Also
  // avoids prepending to a growing string, which trips GCC 12's -Wrestrict
  // false positive in the std::string concat at -O3.)
  std::vector<std::ptrdiff_t> path;
  VnodeId cur = v;
  while (cur != root_) {
    const VnodeId p = parent_[cur];
    const auto& kids = children_[p];
    path.push_back(std::find(kids.begin(), kids.end(), cur) - kids.begin() +
                   1);
    cur = p;
  }
  std::string out = "1";
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    out += '.';
    out += std::to_string(*it);
  }
  return out;
}

EmulationTable::EmulationTable(const Lot& lot)
    : lot_(&lot),
      live_(lot.num_pnodes(), true),
      live_count_(lot.num_pnodes()),
      // Everyone starts live, so the caches are simply the static columns.
      emulators_valid_(lot.num_vnodes(), true),
      members_valid_(lot.num_super_leaves(), true) {
  emulators_cache_.reserve(lot.num_vnodes());
  for (VnodeId v = 0; v < lot.num_vnodes(); ++v)
    emulators_cache_.push_back(lot.descendants(v));
  members_cache_.reserve(lot.num_super_leaves());
  for (std::size_t sl = 0; sl < lot.num_super_leaves(); ++sl)
    members_cache_.push_back(lot.super_leaf_members(static_cast<int>(sl)));
}

bool EmulationTable::is_live(NodeId pnode) const { return live_[slot(pnode)]; }

void EmulationTable::invalidate_caches() {
  emulators_valid_.assign(emulators_valid_.size(), false);
  members_valid_.assign(members_valid_.size(), false);
}

void EmulationTable::remove(NodeId pnode) {
  const std::size_t s = slot(pnode);
  if (live_[s]) {
    live_[s] = false;
    --live_count_;
    invalidate_caches();
  }
}

void EmulationTable::add(NodeId pnode) {
  const std::size_t s = slot(pnode);
  if (!live_[s]) {
    live_[s] = true;
    ++live_count_;
    invalidate_caches();
  }
}

const std::vector<NodeId>& EmulationTable::emulators(VnodeId v) const {
  std::vector<NodeId>& out = emulators_cache_[v];
  if (!emulators_valid_[v]) {
    out.clear();
    for (NodeId p : lot_->descendants(v))
      if (live_[slot(p)]) out.push_back(p);
    emulators_valid_[v] = true;
  }
  return out;
}

const std::vector<NodeId>& EmulationTable::live_members(int sl) const {
  const auto i = static_cast<std::size_t>(sl);
  std::vector<NodeId>& out = members_cache_[i];
  if (!members_valid_[i]) {
    out.clear();
    for (NodeId p : lot_->super_leaf_members(sl))
      if (live_[slot(p)]) out.push_back(p);
    members_valid_[i] = true;
  }
  return out;
}

}  // namespace canopus::lot
