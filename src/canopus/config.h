// Tunables for a Canopus deployment.
#pragma once

#include <cstddef>
#include <map>
#include <memory>

#include "common/types.h"
#include "raft/raft.h"
#include "rbcast/switch_broadcast.h"

namespace canopus::core {

/// Shared per-deployment registry of virtual ToR sequencers (one per
/// super-leaf) for the hardware-assisted broadcast substrate. All nodes of
/// a deployment must share one registry — copying a single Config value
/// around (the normal pattern) is sufficient, since the shared_ptr is
/// shared by the copies.
struct SequencerRegistry {
  std::shared_ptr<rbcast::SequencerState> get(int super_leaf) {
    auto& s = switches_[super_leaf];
    if (!s) s = std::make_shared<rbcast::SequencerState>();
    return s;
  }

 private:
  std::map<int, std::shared_ptr<rbcast::SequencerState>> switches_;
};

/// Which §4.3 broadcast substrate a super-leaf runs on.
enum class BroadcastKind {
  kRaft,    ///< software: one Raft group per member (the prototype's mode)
  kSwitch,  ///< hardware-assisted atomic broadcast in the ToR switch
};

struct Config {
  /// Reliable-broadcast substrate within a super-leaf (§4.3).
  BroadcastKind broadcast = BroadcastKind::kRaft;
  rbcast::SwitchOptions switch_broadcast;
  std::shared_ptr<SequencerRegistry> sequencers =
      std::make_shared<SequencerRegistry>();

  /// Number of super-leaf representatives k (§4.5). Each representative
  /// fetches the vnode states assigned to it by the modulo rule.
  int representatives = 2;

  /// How many representatives redundantly fetch each vnode state (<= k).
  /// Figure 2's example shows 2 (nodes A and C both fetch vnode y); the
  /// paper's load-balancing recommendation (§4.5, different representatives
  /// fetch different vnodes) corresponds to 1, the default — failures are
  /// covered by the retry-another-emulator fallback either way.
  int redundant_fetch = 1;

  // --- protocol CPU costs (see EXPERIMENTS.md calibration) ---------------
  /// Per-write protocol work (merge/sort/commit bookkeeping) charged to the
  /// node CPU at merge and commit time. Together with the per-byte network
  /// CPU this puts the per-node cost of a globally ordered write at ~1 us,
  /// the value implied by the paper's Figure 4(a) saturation points.
  Time cpu_per_write = 150;
  /// Per-read service work charged when a read is answered (the KV service
  /// path: lookup, linearization bookkeeping, reply marshalling). Calibrated
  /// against the paper's 9-to-27-node scaling; see EXPERIMENTS.md.
  Time cpu_per_read = 5'000;

  /// Retry timeout for a proposal-request before trying another emulator.
  /// Must exceed the widest RTT in the deployment (Table 1 tops out at
  /// 322 ms SY-FF).
  Time fetch_timeout = 500 * kMillisecond;

  // --- pipelining (§7.1) ------------------------------------------------
  bool pipelining = false;
  /// Upper bound between consecutive cycle starts while work is in flight
  /// ("each node starts a new consensus cycle every 5 ms...").
  Time cycle_interval = 5 * kMillisecond;
  /// "...or after 1000 requests have accumulated, whichever happens first."
  std::size_t max_batch = 1'000;
  /// Bound on in-flight cycles (commit remains strictly cycle-ordered).
  /// Must exceed (widest RTT) / cycle_interval — 322 ms / 5 ms = 65 for the
  /// Table 1 WAN — or the window throttles the pipeline into stop-and-go.
  std::size_t max_outstanding_cycles = 256;

  // --- write leases (§7.2) ---------------------------------------------
  bool write_leases = false;
  /// How many cycles a key's write lease stays active after a write commits.
  CycleId lease_cycles = 4;

  /// Super-leaf broadcast-group tuning. The defaults suit simulation-scale
  /// intra-rack latencies.
  raft::Options raft;
};

}  // namespace canopus::core
