// CanopusNode: one pnode running the full Canopus protocol.
//
// Responsibilities (paper section in parentheses):
//  * consensus cycle / round state machine over the LOT (§4.2)
//  * super-leaf reliable broadcast via per-node Raft groups (§4.3)
//  * self-synchronization of cycle starts (§4.4)
//  * representative selection + modulo vnode assignment + redundant
//    fetching with emulator fallback (§4.5, §4.6)
//  * emulation-table maintenance via piggybacked membership updates (§4.6)
//  * linearizable reads by delaying them 1-2 cycles and splicing them into
//    the node's own request-set positions (§5)
//  * pipelining of consensus cycles with strictly ordered commits (§7.1)
//  * optional write leases for immediate reads of uncontended keys (§7.2)
//
// A CanopusNode stalls — by design — when its super-leaf loses a majority
// or when some vnode has no live emulators (§6 Liveness); it never returns
// a wrong result.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "canopus/config.h"
#include "canopus/lot.h"
#include "canopus/messages.h"
#include "kv/store.h"
#include "kv/types.h"
#include "rbcast/broadcast.h"
#include "rbcast/rbcast.h"
#include "simnet/network.h"

namespace canopus::core {

class CanopusNode : public simnet::Process {
 public:
  CanopusNode(std::shared_ptr<const lot::Lot> lot, Config cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  /// Local submission path for examples/tests (bypasses the client wire
  /// protocol; replies surface via the commit hook only).
  void submit(kv::Request r);

  /// Crash-stop this node (also silences its broadcast groups).
  void crash();

  /// Rejoin after a crash (the PR 10 state-transfer path). The node enters
  /// joining mode: it discards all volatile and committed state, asks a
  /// live super-leaf sibling to sponsor it, and — once the sponsor's kJoin
  /// membership update commits — installs the sponsor's snapshot, rebuilds
  /// its broadcast groups, commit-catches-up on the in-flight cycle window,
  /// and resumes contributing from an agreed activation cycle.
  void recover();
  bool crashed() const { return crashed_; }
  /// True between recover() and the snapshot install: the node is not yet
  /// a comparable member (its digest chain restarts at the install).
  bool joining() const { return joining_; }

  // --- observers --------------------------------------------------------
  CycleId last_started_cycle() const { return last_started_; }
  CycleId last_committed_cycle() const { return last_committed_; }
  std::uint64_t committed_writes() const { return digest_.count(); }
  std::uint64_t served_reads() const { return served_reads_; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }
  const lot::EmulationTable& emulation_table() const { return emu_; }
  const lot::Lot& lot() const { return *lot_; }
  bool is_representative() const;

  /// Rejoin observability: join snapshots installed (this node) / served
  /// (as sponsor), and the cycle-history footprint prune_history bounds.
  std::uint64_t snapshots_installed() const { return snapshots_installed_; }
  std::uint64_t snapshots_served() const { return snapshots_served_; }
  std::size_t retained_cycles() const { return cycles_.size(); }

  /// Current failure-detector view of the own super-leaf (§4.3).
  const std::vector<NodeId>& live_peers() const { return sl_live_; }

  /// Fired at commit time with the cycle's globally ordered writes
  /// (identical on every live node — the Agreement property).
  std::function<void(CycleId, const std::vector<kv::Request>&)> on_commit;

  /// Fired when a read is served, with the value returned to the client
  /// (linearizability checkers hang off this).
  std::function<void(const kv::Request&, std::uint64_t value)> on_read;

  /// Fired when a rejoin snapshot is installed (the audit plane reconciles
  /// the node's history from the snapshot rather than per-write replay).
  std::function<void(const kv::Snapshot&)> on_snapshot_install;

  /// Diagnostics hooks (tests, tracing). May be null.
  std::function<void(CycleId)> on_cycle_start;
  std::function<void(CycleId)> on_cycle_complete;
  std::function<void(CycleId, RoundId)> on_round_done;
  std::function<void(CycleId, RoundId, VnodeId)> on_proposal_added;

  /// Diagnostics counters (pipelining cadence analysis).
  struct Debug {
    std::uint64_t timer_fires = 0;
    std::uint64_t starts_timer = 0;
    std::uint64_t starts_batch_full = 0;
    std::uint64_t starts_idle = 0;
  };
  const Debug& debug() const { return debug_; }

 private:
  struct PendingRead {
    kv::Request req;
    std::size_t pos = 0;  ///< # own writes buffered before this read
  };

  struct FetchState {
    int attempt = 0;
    simnet::EventId timer = simnet::kInvalidEvent;
  };

  struct CycleState {
    bool started = false;
    bool complete = false;
    bool committed = false;
    RoundId rounds_done = 0;
    /// acc[r]: child-vnode states consumed by round r (keyed by vnode).
    std::vector<std::map<VnodeId, proto::Proposal>> acc;
    /// state[r]: merged state of the height-r ancestor; state[0] is the
    /// node's own round-1 (leaf) proposal.
    std::vector<std::optional<proto::Proposal>> state;
    /// Reads snapshotted into this cycle, spliced at commit (§5).
    std::vector<PendingRead> reads;
    std::size_t own_writes = 0;
    /// # writes globally ordered before this node's own request set —
    /// accumulated during merges, used to position reads.
    std::size_t own_prefix = 0;
    /// Outstanding representative fetches, keyed by vnode.
    std::map<VnodeId, FetchState> fetches;
    /// Remote proposal-requests we could not answer yet (§4.7 event 3).
    std::map<VnodeId, std::vector<NodeId>> parked_requests;
  };

  // --- message handlers ---------------------------------------------------
  void handle_client_batch(const kv::ClientBatch& batch);
  void handle_proposal_request(NodeId src, const proto::ProposalRequest& pr);
  void handle_fetched_proposal(const proto::Proposal& p);
  void handle_rb_deliver(NodeId origin, const simnet::Payload& payload);
  void handle_peer_failed(NodeId peer);

  // --- rejoin (state transfer) --------------------------------------------
  void make_broadcast();
  void enter_joining();
  void send_join_request();
  void handle_join_request(const proto::JoinRequest& jr);
  void handle_join_ack(const proto::JoinAck& ack);
  void send_join_ack(NodeId joiner, CycleId snapshot_cycle, CycleId act);
  CycleId active_from(NodeId member) const {
    const auto it = active_from_.find(member);
    return it == active_from_.end() ? 0 : it->second;
  }

  // --- cycle machinery ----------------------------------------------------
  CycleState& cycle(CycleId c);
  void maybe_start_next_cycle(bool timer_fired = false);
  void start_cycle(CycleId c);
  void add_proposal(CycleId c, const proto::Proposal& p);
  void try_complete_round(CycleId c, RoundId r);
  void complete_round(CycleId c, RoundId r);
  void begin_fetches(CycleId c, RoundId r);
  void issue_fetch(CycleId c, VnodeId v);
  void answer_parked(CycleId c, RoundId r);
  void try_commit();
  void commit_cycle(CycleId c);
  void prune_history();
  void drop_fetch_timers(CycleState& cs);
  void arm_pipeline_timer();

  // --- reads & leases (§5, §7.2) -------------------------------------------
  void enqueue_read(kv::Request r);
  void serve_read(const kv::Request& r);
  bool lease_active(std::uint64_t key) const;

  void flush_replies();
  std::vector<NodeId> current_reps() const;
  int rep_index() const;  ///< position among reps, or -1

  std::shared_ptr<const lot::Lot> lot_;
  Config cfg_;
  lot::EmulationTable emu_;
  std::unique_ptr<rbcast::Broadcast> rb_;

  /// Local, failure-detector-driven view of the own super-leaf's live
  /// members (exclusions are consistently ordered by the no-op-commit rule,
  /// see rbcast.cpp). The emulation table is updated only at cycle commits.
  std::vector<NodeId> sl_live_;

  std::vector<kv::Request> pending_writes_;
  std::vector<PendingRead> pending_reads_;
  std::vector<proto::MembershipUpdate> pending_membership_;

  std::map<CycleId, CycleState> cycles_;
  CycleId last_started_ = 0;
  CycleId last_committed_ = 0;
  /// Outside prompting seen for a not-yet-started cycle (§4.4).
  bool prompted_ = false;

  kv::Store store_;
  kv::CommitDigest digest_;
  std::uint64_t served_reads_ = 0;

  /// key -> last cycle in which its write lease is active (§7.2).
  std::unordered_map<std::uint64_t, CycleId> leases_;

  /// Per-client completions accumulated during a commit, flushed as one
  /// ReplyBatch per client.
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;

  // --- rejoin state -------------------------------------------------------
  /// True between recover() and the JoinAck install: the node only listens
  /// for the ack and retries JoinRequests on a rotation timer.
  bool joining_ = false;
  int join_attempt_ = 0;
  simnet::EventId join_timer_ = simnet::kInvalidEvent;
  /// First cycle this node contributes a round-1 proposal to (0 for
  /// original members; the JoinAck's first_cycle after a rejoin).
  CycleId own_active_from_ = 0;
  /// Per super-leaf member: first cycle whose round 1 requires that
  /// member's proposal. Set at the kJoin commit — an agreed point — so
  /// every node evaluates round-1 completeness identically even while the
  /// join was racing in-flight cycles.
  std::unordered_map<NodeId, CycleId> active_from_;
  /// Sponsor side: joiners whose kJoin update this node proposed; the ack
  /// (with the state snapshot) ships when the update commits.
  std::vector<NodeId> pending_joiners_;
  /// When each excluded pnode's kLeave committed locally — re-admission
  /// waits out a grace period so the exclusion's tail (group elections,
  /// log drains) settles first.
  std::unordered_map<NodeId, Time> excluded_at_;
  /// A stale kLeave for *this* node committed after its rejoin: re-enter
  /// joining once the commit loop unwinds (see try_commit).
  bool pending_rejoin_ = false;
  std::uint64_t snapshots_installed_ = 0;
  std::uint64_t snapshots_served_ = 0;

  simnet::EventId pipeline_timer_ = simnet::kInvalidEvent;
  bool crashed_ = false;
  /// Consecutive cycles this node started with nothing to propose; bounds
  /// idle pipeline churn (see maybe_start_next_cycle).
  std::size_t empty_streak_ = 0;
  Debug debug_;
};

}  // namespace canopus::core
