#include "canopus/node.h"

#include <algorithm>
#include <cassert>

#include "raft/messages.h"

namespace canopus::core {

namespace {
/// Deterministic spreading of fetch targets across emulators without
/// consuming simulator randomness (keeps traces stable under refactors).
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL ^ b * 0xbf58476d1ce4e5b9ULL ^
                    c * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

CanopusNode::CanopusNode(std::shared_ptr<const lot::Lot> lot, Config cfg)
    : lot_(std::move(lot)), cfg_(cfg), emu_(*lot_) {}

void CanopusNode::on_start() {
  const int sl = lot_->super_leaf_of(node_id());
  sl_live_ = lot_->super_leaf_members(sl);
  make_broadcast();
  rb_->start();
}

void CanopusNode::make_broadcast() {
  const int sl = lot_->super_leaf_of(node_id());
  if (cfg_.broadcast == BroadcastKind::kRaft) {
    rbcast::ReliableBroadcast::Callbacks cb;
    cb.send = [this](NodeId dst, const raft::WireMsg& m) {
      send(dst, m.wire_bytes(), m);
    };
    cb.deliver = [this](NodeId origin, const simnet::Payload& payload) {
      handle_rb_deliver(origin, payload);
    };
    cb.on_peer_failed = [this](NodeId failed) { handle_peer_failed(failed); };
    rb_ = std::make_unique<rbcast::ReliableBroadcast>(
        node_id(), sl_live_, sim(), std::move(cb), cfg_.raft);
  } else {
    rbcast::Broadcast::Callbacks cb;
    cb.deliver = [this](NodeId origin, const simnet::Payload& payload) {
      handle_rb_deliver(origin, payload);
    };
    cb.on_peer_failed = [this](NodeId failed) { handle_peer_failed(failed); };
    rb_ = std::make_unique<rbcast::SwitchBroadcast>(
        node_id(), sl_live_, cfg_.sequencers->get(sl), sim(), net(),
        std::move(cb), cfg_.switch_broadcast);
  }
}

void CanopusNode::crash() {
  crashed_ = true;
  joining_ = false;
  if (rb_) rb_->stop();
  if (pipeline_timer_ != simnet::kInvalidEvent) {
    sim().cancel(pipeline_timer_);
    pipeline_timer_ = simnet::kInvalidEvent;
  }
  if (join_timer_ != simnet::kInvalidEvent) {
    sim().cancel(join_timer_);
    join_timer_ = simnet::kInvalidEvent;
  }
}

void CanopusNode::recover() {
  if (!crashed_) return;
  crashed_ = false;
  enter_joining();
}

void CanopusNode::enter_joining() {
  joining_ = true;
  join_attempt_ = 0;
  // Everything dies with the node: volatile batches trivially, and the
  // committed state too — it is replaced wholesale by the sponsor's
  // snapshot, so the digest chain continues the sponsor's, not ours.
  pending_writes_.clear();
  pending_reads_.clear();
  pending_membership_.clear();
  pending_joiners_.clear();
  reply_buffer_.clear();
  leases_.clear();
  for (auto& [c, cs] : cycles_) drop_fetch_timers(cs);
  cycles_.clear();
  prompted_ = false;
  empty_streak_ = 0;
  if (pipeline_timer_ != simnet::kInvalidEvent) {
    sim().cancel(pipeline_timer_);
    pipeline_timer_ = simnet::kInvalidEvent;
  }
  send_join_request();
}

void CanopusNode::on_message(const simnet::Message& m) {
  if (crashed_) return;
  if (joining_) {
    // A joining node is not a member: it ignores all protocol traffic
    // (including its stale broadcast groups) until the sponsor's ack.
    if (const auto* ja = m.as<proto::JoinAck>()) handle_join_ack(*ja);
    return;
  }
  if (rb_->handle(m)) {
    // consumed by the broadcast substrate
  } else if (const auto* pr = m.as<proto::ProposalRequest>()) {
    handle_proposal_request(m.src(), *pr);
  } else if (const auto* p = m.as<proto::Proposal>()) {
    handle_fetched_proposal(*p);
  } else if (const auto* jr = m.as<proto::JoinRequest>()) {
    handle_join_request(*jr);
  } else if (const auto* batch = m.as<kv::ClientBatch>()) {
    handle_client_batch(*batch);
  }
}

// --------------------------------------------------------------------------
// Rejoin by state transfer (§4.6 membership + PR 10)
// --------------------------------------------------------------------------

void CanopusNode::send_join_request() {
  if (crashed_ || !joining_) return;
  // Rotate through the original super-leaf roster (§3 assumption 6: a
  // joiner knows its rack peers) until a live sibling sponsors us. If the
  // whole super-leaf is gone this retries forever: the node stalls, as
  // specified (§6) — but loudly in `joining()`, never as a zombie member.
  const auto& roster =
      lot_->super_leaf_members(lot_->super_leaf_of(node_id()));
  std::vector<NodeId> targets;
  for (NodeId m : roster) {
    if (m != node_id()) targets.push_back(m);
  }
  if (!targets.empty()) {
    const NodeId target =
        targets[static_cast<std::size_t>(join_attempt_) % targets.size()];
    ++join_attempt_;
    send(target, proto::JoinRequest::kWire, proto::JoinRequest{node_id()});
  }
  join_timer_ = after(cfg_.fetch_timeout, [this] {
    join_timer_ = simnet::kInvalidEvent;
    send_join_request();
  });
}

void CanopusNode::handle_join_request(const proto::JoinRequest& jr) {
  const NodeId j = jr.joiner;
  if (j == node_id() || j == kInvalidNode) return;
  if (lot_->super_leaf_of(j) != lot_->super_leaf_of(node_id())) return;
  if (std::find(sl_live_.begin(), sl_live_.end(), j) != sl_live_.end())
    return;  // still (or again) a member: exclusion not agreed, or rejoined
  if (emu_.is_live(j)) return;  // exclusion not yet committed: too early
  // Grace: re-admission must not race the tail of the exclusion (the
  // joiner's old group elections and log drains may still be in flight).
  const auto it = excluded_at_.find(j);
  if (it == excluded_at_.end() ||
      sim().now() - it->second < 3 * cfg_.raft.election_timeout_max)
    return;
  if (std::find(pending_joiners_.begin(), pending_joiners_.end(), j) !=
      pending_joiners_.end())
    return;  // join already proposed; the ack ships at its commit
  pending_joiners_.push_back(j);
  pending_membership_.push_back({proto::MembershipUpdate::Kind::kJoin, j});
  maybe_start_next_cycle();
}

void CanopusNode::send_join_ack(NodeId joiner, CycleId snapshot_cycle,
                                CycleId act) {
  proto::JoinAck ack;
  ack.snapshot_cycle = snapshot_cycle;
  ack.first_cycle = act;
  ack.snap.image =
      std::make_shared<const kv::StoreImage>(store_.export_image());
  ack.snap.digest_hash = digest_.value();
  ack.snap.digest_count = digest_.count();
  ack.members.reserve(sl_live_.size());
  for (NodeId m : sl_live_) ack.members.emplace_back(m, active_from(m));
  for (NodeId p : lot_->descendants(lot_->root())) {
    if (!emu_.is_live(p)) ack.dead.push_back(p);
  }
  ++snapshots_served_;
  send(joiner, ack.wire_bytes(), ack);
}

void CanopusNode::handle_join_ack(const proto::JoinAck& ack) {
  if (!joining_) return;
  if (join_timer_ != simnet::kInvalidEvent) {
    sim().cancel(join_timer_);
    join_timer_ = simnet::kInvalidEvent;
  }
  joining_ = false;
  // Install the sponsor's committed state (through snapshot_cycle); our
  // digest chain continues the sponsor's exactly.
  if (ack.snap.image) store_.restore(*ack.snap.image);
  digest_.restore(ack.snap.digest_hash, ack.snap.digest_count);
  ++snapshots_installed_;
  if (on_snapshot_install) on_snapshot_install(ack.snap);
  last_committed_ = ack.snapshot_cycle;
  last_started_ = ack.first_cycle - 1;  // own cycles resume at first_cycle
  own_active_from_ = ack.first_cycle;
  for (auto& [c, cs] : cycles_) drop_fetch_timers(cs);
  cycles_.clear();
  // Liveness view as of the snapshot point; changes agreed since then
  // replay through the catch-up commits below.
  emu_ = lot::EmulationTable(*lot_);
  for (NodeId d : ack.dead) emu_.remove(d);
  active_from_.clear();
  sl_live_.clear();
  for (const auto& [m, from] : ack.members) {
    sl_live_.push_back(m);
    if (from > 0) active_from_[m] = from;
  }
  // Fresh broadcast groups over the current membership. Our peers created
  // our group (and admitted us to theirs) at the kJoin commit; their group
  // leaders repair our empty follower logs by AppendEntries backoff or —
  // past their compaction base — an InstallSnapshot fast-forward. Replayed
  // tail entries for cycles the snapshot covers are dropped by the
  // stale-cycle guard in handle_rb_deliver.
  make_broadcast();
  rb_->start();
  // Commit catch-up: cycles between the snapshot and our activation are
  // fetched as fully merged root states and committed in order — we never
  // run their round machinery (our groups may lack broadcasts from members
  // whose groups dissolved before we rejoined).
  for (CycleId cc = last_committed_ + 1; cc < ack.first_cycle; ++cc)
    issue_fetch(cc, lot_->root());
}

// --------------------------------------------------------------------------
// Client requests and reads (§5, §7.2)
// --------------------------------------------------------------------------

void CanopusNode::submit(kv::Request r) {
  if (crashed_ || joining_) return;
  r.origin = node_id();
  if (r.is_write) {
    pending_writes_.push_back(r);
  } else {
    enqueue_read(r);
  }
  maybe_start_next_cycle();
  flush_replies();
}

void CanopusNode::handle_client_batch(const kv::ClientBatch& batch) {
  if (crashed_ || joining_) return;
  for (const kv::Request& req : batch.reqs) {
    kv::Request r = req;
    r.origin = node_id();
    if (r.is_write) {
      pending_writes_.push_back(r);
    } else {
      enqueue_read(r);
    }
  }
  maybe_start_next_cycle();
  flush_replies();  // lease-served reads answer immediately
}

void CanopusNode::enqueue_read(kv::Request r) {
  if (cfg_.write_leases && !lease_active(r.key)) {
    // §7.2: no write lease active for this key in any ongoing cycle —
    // read the committed state immediately.
    serve_read(r);
    return;
  }
  pending_reads_.push_back(PendingRead{r, pending_writes_.size()});
}

bool CanopusNode::lease_active(std::uint64_t key) const {
  const auto it = leases_.find(key);
  return it != leases_.end() && it->second >= last_committed_ + 1;
}

void CanopusNode::serve_read(const kv::Request& r) {
  ++served_reads_;
  net().busy(node_id(), cfg_.cpu_per_read);
  const std::uint64_t value = store_.read(r.key);
  if (on_read) on_read(r, value);
  kv::Completion done{r.id, false, value, r.arrival, r.key};
  reply_buffer_[r.id.client].done.push_back(done);
}

void CanopusNode::flush_replies() {
  for (auto& [client, batch] : reply_buffer_) {
    if (client != kInvalidNode && !batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified, so
      // wire_bytes() inline could read the moved-from (emptied) batch.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

// --------------------------------------------------------------------------
// Cycle lifecycle (§4.2, §4.4, §7.1)
// --------------------------------------------------------------------------

CanopusNode::CycleState& CanopusNode::cycle(CycleId c) {
  CycleState& cs = cycles_[c];
  if (cs.acc.empty()) {
    const auto h = static_cast<std::size_t>(lot_->height());
    cs.acc.resize(h + 1);
    cs.state.resize(h + 1);
  }
  return cs;
}

void CanopusNode::maybe_start_next_cycle(bool timer_fired) {
  if (crashed_ || joining_) return;
  // Pending membership updates count as local work: an idle system must
  // still start the cycle that carries an exclusion or a join.
  const bool local_work = !pending_writes_.empty() ||
                          !pending_reads_.empty() ||
                          !pending_membership_.empty();
  const bool idle = last_started_ == last_committed_;

  bool go;
  if (!cfg_.pipelining) {
    // One cycle at a time: start only when nothing is in flight, on outside
    // prompting or local work (§4.4).
    go = idle && (local_work || prompted_);
  } else {
    // §7.1/§4.4: cycle starts are paced by the inter-cycle timer and the
    // batch-size trigger, but outside prompting (a message for a cycle we
    // have not started) starts the next cycle immediately — that is the
    // self-synchronization that keeps every super-leaf's cycle numbers
    // aligned in wall-clock time. A node that briefly skipped ticks catches
    // up in a burst of (empty) cycles; max_outstanding_cycles bounds the
    // burst.
    if (last_started_ - last_committed_ >= cfg_.max_outstanding_cycles)
      return;
    const bool batch_full =
        pending_writes_.size() + pending_reads_.size() >= cfg_.max_batch;
    // The timer fires a cycle even with an empty batch while the pipeline
    // is active: "a periodical timer ... serves as an upper bound for the
    // offset between the start of two consensus cycles" (§7.1). Keeping
    // every super-leaf's cycle numbers aligned in wall-clock time is what
    // lets a cycle complete in ~1 RTT — a lagging super-leaf would stall
    // everyone's fetches. The consecutive-empty guard lets a fully idle
    // system quiesce instead of ticking forever.
    const bool keep_cadence =
        local_work || (!idle && empty_streak_ < cfg_.max_outstanding_cycles);
    go = prompted_ || batch_full || (timer_fired && keep_cadence) ||
         (idle && local_work);
    if (go) {
      if (timer_fired)
        ++debug_.starts_timer;
      else if (batch_full)
        ++debug_.starts_batch_full;
      else
        ++debug_.starts_idle;
    }
  }
  if (go) start_cycle(last_started_ + 1);
}

void CanopusNode::start_cycle(CycleId c) {
  assert(c == last_started_ + 1);
  CycleState& cs = cycle(c);
  cs.started = true;
  last_started_ = c;
  prompted_ = false;
  if (on_cycle_start) on_cycle_start(c);

  // Cap the batch (paper §7.1: "...or after 1000 requests have
  // accumulated"). Without the cap, a transient slowdown snowballs: the
  // next cycle drains a larger backlog, producing larger proposals, which
  // slow the cycle further. With it, overload degrades gracefully into
  // client-visible queueing delay.
  std::vector<kv::Request> batch;
  if (pending_writes_.size() <= cfg_.max_batch) {
    batch = std::move(pending_writes_);
    pending_writes_.clear();
    cs.reads = std::move(pending_reads_);
    pending_reads_.clear();
  } else {
    batch.assign(pending_writes_.begin(),
                 pending_writes_.begin() +
                     static_cast<std::ptrdiff_t>(cfg_.max_batch));
    pending_writes_.erase(pending_writes_.begin(),
                          pending_writes_.begin() +
                              static_cast<std::ptrdiff_t>(cfg_.max_batch));
    // Reads positioned within the drained prefix go now; later reads stay
    // behind, with positions rebased onto the remaining writes.
    std::vector<PendingRead> later;
    for (PendingRead& r : pending_reads_) {
      if (r.pos <= cfg_.max_batch) {
        cs.reads.push_back(r);
      } else {
        r.pos -= cfg_.max_batch;
        later.push_back(r);
      }
    }
    pending_reads_ = std::move(later);
  }
  cs.own_writes = batch.size();
  empty_streak_ =
      batch.empty() && cs.reads.empty() ? empty_streak_ + 1 : 0;

  proto::Proposal p;
  p.cycle = c;
  p.round = 1;
  p.vnode = lot_->leaf_of(node_id());
  p.number = rng()();
  p.tiebreak = node_id();
  p.writes =
      std::make_shared<const std::vector<kv::Request>>(std::move(batch));
  p.membership = std::move(pending_membership_);
  pending_membership_.clear();

  rb_->broadcast(p, p.wire_bytes());

  // Re-prompt if traffic for even-later cycles is already buffered, so the
  // next start is not lost (§7.1 starts cycles strictly in sequence).
  prompted_ = false;
  for (auto it = cycles_.upper_bound(last_started_); it != cycles_.end();
       ++it) {
    const CycleState& later = it->second;
    const bool has_traffic =
        !later.parked_requests.empty() ||
        std::ranges::any_of(later.acc,
                            [](const auto& m) { return !m.empty(); });
    if (has_traffic) {
      prompted_ = true;
      break;
    }
  }

  if (cfg_.pipelining) arm_pipeline_timer();
}

void CanopusNode::arm_pipeline_timer() {
  if (pipeline_timer_ != simnet::kInvalidEvent) sim().cancel(pipeline_timer_);
  pipeline_timer_ = after(cfg_.cycle_interval, [this] {
    pipeline_timer_ = simnet::kInvalidEvent;
    ++debug_.timer_fires;
    maybe_start_next_cycle(/*timer_fired=*/true);
    // Keep ticking while cycles are in flight so batched work is not
    // stranded waiting for a prompt.
    if (last_started_ != last_committed_) arm_pipeline_timer();
  });
}

// --------------------------------------------------------------------------
// Proposal flow (§4.2)
// --------------------------------------------------------------------------

void CanopusNode::handle_rb_deliver(NodeId /*origin*/,
                                    const simnet::Payload& payload) {
  if (crashed_) return;
  const auto* p = payload.as<proto::Proposal>();
  if (p == nullptr) return;
  // Stale delivery for a committed cycle: a straggler entry drained from a
  // dissolved group, or — after a rejoin — the retained log tail replayed
  // while our fresh follower groups caught up. Recreating CycleState for
  // it would leak (the cycle may already be pruned) and can never change
  // the commit.
  if (p->cycle <= last_committed_) return;
  if (p->cycle > last_started_) {
    prompted_ = true;
    // §7.1: always start cycles in sequence, never skip to p->cycle.
    maybe_start_next_cycle();
  }
  add_proposal(p->cycle, *p);
}

void CanopusNode::add_proposal(CycleId c, const proto::Proposal& p) {
  CycleState& cs = cycle(c);
  auto& round_acc = cs.acc[p.round];
  if (!round_acc.emplace(p.vnode, p).second) return;  // duplicate
  if (on_proposal_added) on_proposal_added(c, p.round, p.vnode);

  // A satisfied fetch no longer needs its retry timer.
  if (auto it = cs.fetches.find(p.vnode); it != cs.fetches.end()) {
    if (it->second.timer != simnet::kInvalidEvent)
      sim().cancel(it->second.timer);
    cs.fetches.erase(it);
  }
  try_complete_round(c, p.round);
}

void CanopusNode::try_complete_round(CycleId c, RoundId r) {
  // Cycles before our own activation are committed via root-state fetches
  // (rejoin catch-up), never via the round machinery: our rebuilt groups
  // may be missing broadcasts of members whose groups dissolved before we
  // rejoined, so a local merge could disagree with the survivors'.
  if (c < own_active_from_) return;
  CycleState& cs = cycle(c);
  if (cs.complete || cs.rounds_done != r - 1) return;
  const auto& got = cs.acc[r];

  if (r == 1) {
    if (!cs.started) return;
    // Need the round-1 proposal of every *currently live* super-leaf peer
    // that is already contributing (a rejoined member only counts from its
    // agreed activation cycle). Exclusions are ordered after the excluded
    // node's final committed broadcasts (see rbcast), so this set is
    // consistent across survivors.
    for (NodeId m : sl_live_) {
      if (active_from(m) > c) continue;
      if (!got.contains(lot_->leaf_of(m))) return;
    }
  } else {
    for (VnodeId child : lot_->children(lot_->ancestor(node_id(), r))) {
      if (!got.contains(child)) return;
    }
  }
  complete_round(c, r);
}

void CanopusNode::complete_round(CycleId c, RoundId r) {
  CycleState& cs = cycle(c);
  const auto h = static_cast<RoundId>(lot_->height());

  // Sort this round's inputs by (proposal number, tiebreak) — the paper's
  // randomized total order with deterministic tie-breaks.
  std::vector<const proto::Proposal*> inputs;
  inputs.reserve(cs.acc[r].size());
  for (const auto& [v, p] : cs.acc[r]) inputs.push_back(&p);
  std::sort(inputs.begin(), inputs.end(),
            [](const proto::Proposal* a, const proto::Proposal* b) {
              return *a < *b;
            });

  // Merge: concatenate request sets in sorted order; membership updates are
  // unioned; the merged proposal number is the round's max (§4.2).
  const VnodeId own_child =
      r == 1 ? lot_->leaf_of(node_id()) : lot_->ancestor(node_id(), r - 1);
  auto merged_writes = std::make_shared<std::vector<kv::Request>>();
  std::size_t total = 0;
  for (const auto* p : inputs) total += p->write_count();
  merged_writes->reserve(total);
  // Protocol CPU: merging/sorting this round's request lists.
  net().busy(node_id(),
             static_cast<Time>(total) * cfg_.cpu_per_write / 2);

  proto::Proposal merged;
  std::size_t prefix = 0;
  bool before_own = true;
  for (const auto* p : inputs) {
    if (p->vnode == own_child) before_own = false;
    if (before_own) prefix += p->write_count();
    if (p->writes)
      merged_writes->insert(merged_writes->end(), p->writes->begin(),
                            p->writes->end());
    merged.membership.insert(merged.membership.end(), p->membership.begin(),
                             p->membership.end());
  }
  // own_prefix accumulates, round by round, the number of writes globally
  // ordered before this node's own request set.
  cs.own_prefix += prefix;

  merged.cycle = c;
  merged.round = r + 1;
  merged.vnode = lot_->ancestor(node_id(), static_cast<int>(r));
  merged.number = inputs.back()->number;
  merged.tiebreak = inputs.back()->tiebreak;
  merged.writes = std::move(merged_writes);

  cs.state[r] = std::move(merged);
  cs.rounds_done = r;
  if (on_round_done) on_round_done(c, r);

  answer_parked(c, r);

  if (r == h) {
    cs.complete = true;
    if (on_cycle_complete) on_cycle_complete(c);
    try_commit();
    return;
  }
  // Feed our own subtree's state into the next round and fetch siblings.
  add_proposal(c, *cs.state[r]);
  begin_fetches(c, r + 1);
}

void CanopusNode::answer_parked(CycleId c, RoundId r) {
  CycleState& cs = cycle(c);
  const VnodeId v = lot_->ancestor(node_id(), static_cast<int>(r));
  auto it = cs.parked_requests.find(v);
  if (it == cs.parked_requests.end()) return;
  const proto::Proposal& p = *cs.state[r];
  for (NodeId dst : it->second) send(dst, p.wire_bytes(), p);
  cs.parked_requests.erase(it);
}

// --------------------------------------------------------------------------
// Representatives and fetching (§4.5, §4.6)
// --------------------------------------------------------------------------

std::vector<NodeId> CanopusNode::current_reps() const {
  const auto k = static_cast<std::size_t>(cfg_.representatives);
  std::vector<NodeId> reps(sl_live_.begin(),
                           sl_live_.begin() +
                               static_cast<std::ptrdiff_t>(
                                   std::min(k, sl_live_.size())));
  return reps;
}

int CanopusNode::rep_index() const {
  const auto reps = current_reps();
  const auto it = std::find(reps.begin(), reps.end(), node_id());
  return it == reps.end() ? -1 : static_cast<int>(it - reps.begin());
}

bool CanopusNode::is_representative() const { return rep_index() >= 0; }

void CanopusNode::begin_fetches(CycleId c, RoundId r) {
  CycleState& cs = cycle(c);
  if (cs.rounds_done != r - 1 || cs.complete) return;
  const int idx = rep_index();
  if (idx < 0) return;

  const auto reps = current_reps();
  const int k = static_cast<int>(reps.size());
  const int redundancy = std::min(cfg_.redundant_fetch, k);

  for (VnodeId v : lot_->children(lot_->ancestor(node_id(), r))) {
    if (cs.acc[r].contains(v)) continue;       // already have it
    if (cs.fetches.contains(v)) continue;      // already fetching
    // Modulo assignment with redundancy (§4.5): vnode v is fetched by
    // representatives (v + j) % k for j in [0, redundancy).
    bool mine = false;
    for (int j = 0; j < redundancy && !mine; ++j)
      mine = static_cast<int>((v + static_cast<VnodeId>(j)) %
                              static_cast<VnodeId>(k)) == idx;
    if (mine) issue_fetch(c, v);
  }
}

void CanopusNode::issue_fetch(CycleId c, VnodeId v) {
  CycleState& cs = cycle(c);
  FetchState& fs = cs.fetches[v];

  const auto& emulators = emu_.emulators(v);
  if (!emulators.empty()) {
    // Spread across emulators deterministically; retries walk the list.
    const std::size_t pick =
        (mix(node_id(), v, c) + static_cast<std::size_t>(fs.attempt)) %
        emulators.size();
    proto::ProposalRequest pr;
    pr.cycle = c;
    pr.round = static_cast<RoundId>(lot_->level(v)) + 1;
    pr.vnode = v;
    send(emulators[pick], proto::ProposalRequest::kWire, pr);
  }
  // Whether or not an emulator was available, retry until the state
  // arrives (add_proposal cancels the timer). If every descendant of v is
  // gone, this retries forever: the protocol stalls, as specified (§6).
  ++fs.attempt;
  fs.timer = after(cfg_.fetch_timeout, [this, c, v] {
    // The cycle may be gone by now: committed and pruned (a root-state
    // install completes the cycle without touching sibling fetches), or
    // dropped wholesale by enter_joining. Looking it up with cycle() would
    // RE-CREATE an empty, forever-uncommitted husk below last_committed_
    // that wedges prune_history and makes retained state grow without
    // bound — so probe the map, never materialize.
    if (crashed_ || joining_ || c <= last_committed_) return;
    auto mit = cycles_.find(c);
    if (mit == cycles_.end()) return;  // pruned: stale timer
    CycleState& s = mit->second;
    auto it = s.fetches.find(v);
    if (it == s.fetches.end() || s.complete) return;
    // Keep the FetchState (and its attempt counter) so the retry walks to
    // the next emulator instead of re-picking the same possibly-dead one.
    it->second.timer = simnet::kInvalidEvent;
    issue_fetch(c, v);
  });
}

void CanopusNode::handle_proposal_request(NodeId src,
                                          const proto::ProposalRequest& pr) {
  if (pr.cycle > last_started_) {
    prompted_ = true;
    maybe_start_next_cycle();  // §4.4: cross-super-leaf prompting
  }
  // Committed-and-pruned cycles can no longer be served (the requester is
  // stalled beyond recovery by fetching; a rejoining node requests only
  // cycles inside the retained window, see prune_history).
  if (pr.cycle <= last_committed_ && !cycles_.contains(pr.cycle)) return;
  CycleState& cs = cycle(pr.cycle);
  const auto r = static_cast<RoundId>(lot_->level(pr.vnode));
  if (cs.rounds_done >= r && cs.state[r].has_value()) {
    const proto::Proposal& p = *cs.state[r];
    assert(p.vnode == pr.vnode);
    send(src, p.wire_bytes(), p);
  } else {
    // §4.7 event 3: buffer the request, answer when the round completes.
    cs.parked_requests[pr.vnode].push_back(src);
  }
}

void CanopusNode::handle_fetched_proposal(const proto::Proposal& p) {
  // Rejoin catch-up: a fetched *root* state is the cycle's final merged
  // result — install it directly and commit, without running rounds or
  // re-broadcasting (peers would index acc[height+1] out of bounds, and
  // our rebuilt groups may be missing dissolved-group broadcasts anyway).
  const auto h = static_cast<RoundId>(lot_->height());
  if (p.round > h) {
    if (p.cycle <= last_committed_) return;
    CycleState& rcs = cycle(p.cycle);
    if (rcs.complete) return;
    if (auto it = rcs.fetches.find(p.vnode); it != rcs.fetches.end()) {
      if (it->second.timer != simnet::kInvalidEvent)
        sim().cancel(it->second.timer);
      rcs.fetches.erase(it);
    }
    rcs.state[h] = p;
    rcs.rounds_done = h;
    rcs.complete = true;
    try_commit();
    return;
  }
  // A unicast reply to one of our proposal-requests: share it with the
  // super-leaf via reliable broadcast (§4.2). Duplicate fetches by
  // redundant representatives dedupe at add_proposal time.
  CycleState& cs = cycle(p.cycle);
  if (cs.acc[p.round].contains(p.vnode)) return;
  if (auto it = cs.fetches.find(p.vnode); it != cs.fetches.end()) {
    if (it->second.timer != simnet::kInvalidEvent)
      sim().cancel(it->second.timer);
    cs.fetches.erase(it);
  }
  rb_->broadcast(p, p.wire_bytes());
}

// --------------------------------------------------------------------------
// Failure handling (§4.3, §4.6)
// --------------------------------------------------------------------------

void CanopusNode::handle_peer_failed(NodeId peer) {
  if (crashed_) return;
  if (peer == node_id()) {
    // Our own super-leaf suspected us (we fell behind long enough for our
    // broadcast group to elect a replacement leader). Crash-stop semantics
    // require fencing: a suspected node must not keep acting, or the
    // exclusion arguments of the agreement proof no longer hold.
    crash();
    return;
  }
  sl_live_.erase(std::remove(sl_live_.begin(), sl_live_.end(), peer),
                 sl_live_.end());
  rb_->remove_member(peer);
  // Piggyback the membership change on the next cycle's proposal (§4.6).
  pending_membership_.push_back(
      {proto::MembershipUpdate::Kind::kLeave, peer});
  // The exclusion may unblock round 1 of in-flight cycles, and may promote
  // this node to representative (re-evaluate fetch assignments).
  for (auto& [c, cs] : cycles_) {
    if (!cs.started || cs.complete || cs.committed) continue;
    try_complete_round(c, cs.rounds_done + 1);
    if (!cs.complete) begin_fetches(c, cs.rounds_done + 1);
  }
}

// --------------------------------------------------------------------------
// Commit (§5) and housekeeping
// --------------------------------------------------------------------------

void CanopusNode::try_commit() {
  // §7.1: commits happen strictly in cycle order, regardless of which
  // cycles completed first.
  while (true) {
    auto it = cycles_.find(last_committed_ + 1);
    if (it == cycles_.end() || !it->second.complete || it->second.committed)
      break;
    commit_cycle(last_committed_ + 1);
  }
  if (pending_rejoin_) {
    // A stale exclusion of this node committed after its rejoin: the
    // survivors have dropped us again, so our groups are dead. Go back
    // through the full join path rather than acting as a zombie member.
    pending_rejoin_ = false;
    rb_->stop();
    enter_joining();
    return;
  }
  maybe_start_next_cycle();
  flush_replies();
}

void CanopusNode::commit_cycle(CycleId c) {
  CycleState& cs = cycle(c);
  const auto h = static_cast<std::size_t>(lot_->height());
  const proto::Proposal& root = *cs.state[h];
  const std::vector<kv::Request>& writes = *root.writes;
  // Protocol CPU: applying this cycle's writes to the state machine.
  net().busy(node_id(),
             static_cast<Time>(writes.size()) * cfg_.cpu_per_write);

  // Reads are spliced at `own_prefix + pos`: after the pos-th own write of
  // this cycle, and before the next one — preserving each client's FIFO
  // order while inheriting the global write order (§5).
  auto next_read = cs.reads.begin();
  for (std::size_t i = 0; i <= writes.size(); ++i) {
    while (next_read != cs.reads.end() &&
           cs.own_prefix + next_read->pos == i) {
      serve_read(next_read->req);
      ++next_read;
    }
    if (i == writes.size()) break;
    const kv::Request& w = writes[i];
    store_.apply(w);
    digest_.append(w);
    if (w.origin == node_id()) {
      kv::Completion done{w.id, true, 0, w.arrival, w.key};
      reply_buffer_[w.id.client].done.push_back(done);
    }
  }

  // Membership updates agreed in this cycle take effect now, identically on
  // every live node (§4.6).
  std::vector<std::pair<NodeId, CycleId>> join_acks;
  for (const proto::MembershipUpdate& u : root.membership) {
    if (u.kind == proto::MembershipUpdate::Kind::kLeave) {
      emu_.remove(u.node);
      excluded_at_[u.node] = sim().now();
      if (u.node == node_id()) {
        // A stale exclusion of *this* node committed after its rejoin (the
        // kLeave was proposed before the kJoin but ordered after it). The
        // survivors drop us from their groups again; re-enter joining once
        // the commit loop unwinds (see try_commit).
        if (own_active_from_ > 0) pending_rejoin_ = true;
      } else if (rb_->is_member(u.node)) {
        rb_->remove_member(u.node);
        sl_live_.erase(
            std::remove(sl_live_.begin(), sl_live_.end(), u.node),
            sl_live_.end());
      }
      active_from_.erase(u.node);
      continue;
    }
    // kJoin: the agreed point. Every live node derives the same activation
    // cycle from the commit cycle, so round-1 completeness of the racing
    // in-flight window is evaluated identically everywhere: a peer can only
    // evaluate round 1 of cycle c' > act-1 after starting c', which (with
    // pipelining window K) requires last_committed_ >= c' - K > c, i.e.
    // after it, too, applied this kJoin.
    const CycleId act =
        c + (cfg_.pipelining ? cfg_.max_outstanding_cycles : 0) + 1;
    emu_.add(u.node);
    excluded_at_.erase(u.node);
    if (u.node != node_id() &&
        lot_->super_leaf_of(u.node) == lot_->super_leaf_of(node_id()) &&
        !rb_->is_member(u.node)) {
      active_from_[u.node] = act;
      rb_->add_member(u.node);
      // Keep sl_live_ in lot-roster order: current_reps() takes a prefix.
      const auto& order =
          lot_->super_leaf_members(lot_->super_leaf_of(node_id()));
      auto rank = [&](NodeId n) {
        return std::find(order.begin(), order.end(), n) - order.begin();
      };
      sl_live_.insert(
          std::upper_bound(sl_live_.begin(), sl_live_.end(), u.node,
                           [&](NodeId a, NodeId b) { return rank(a) < rank(b); }),
          u.node);
      const auto pj =
          std::find(pending_joiners_.begin(), pending_joiners_.end(), u.node);
      if (pj != pending_joiners_.end()) {
        pending_joiners_.erase(pj);
        join_acks.emplace_back(u.node, act);
      }
    }
  }

  // Sponsored joins agreed in this cycle: ship the state transfer now that
  // the membership loop has run, so the ack's liveness view reflects every
  // update of the cycle.
  for (const auto& [j, act] : join_acks) send_join_ack(j, c, act);

  // Write leases granted by this cycle (§7.2).
  if (cfg_.write_leases) {
    for (const kv::Request& w : writes)
      leases_[w.key] = c + cfg_.lease_cycles;
  }

  cs.committed = true;
  last_committed_ = c;
  if (on_commit) on_commit(c, writes);
  prune_history();
}

void CanopusNode::prune_history() {
  // Keep a window of committed cycles so that straggling super-leaves can
  // still fetch our vnode states; beyond the window they would be stalled
  // anyway (fetch_timeout * retries >> window * cycle time). Under
  // pipelining the window must also cover the rejoin catch-up span (the
  // pipelining depth): a joiner fetches the merged root state of every
  // cycle between its snapshot and its activation, and those fetches are
  // served from this history.
  const CycleId kKeep =
      cfg_.pipelining
          ? std::max<CycleId>(64, 2 * cfg_.max_outstanding_cycles)
          : 64;
  while (!cycles_.empty()) {
    auto it = cycles_.begin();
    if (it->first + kKeep >= last_committed_) break;
    // Commits are strictly in cycle order, so everything this far below
    // last_committed_ is retired — including any uncommitted husk a stale
    // fetch timer resurrected. Never block on the committed flag here: one
    // wedged entry would pin every later cycle in memory for the rest of
    // the run.
    drop_fetch_timers(it->second);
    cycles_.erase(it);
  }
}

void CanopusNode::drop_fetch_timers(CycleState& cs) {
  for (auto& [v, fs] : cs.fetches) {
    if (fs.timer != simnet::kInvalidEvent) {
      sim().cancel(fs.timer);
      fs.timer = simnet::kInvalidEvent;
    }
  }
}

}  // namespace canopus::core
