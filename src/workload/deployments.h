// Ready-made deployments: a consensus system + topology + open-loop clients
// + measurement, matching the paper's experimental setups (§8).
//
// The deployment pipeline is factored so every driver shares it:
//   build_cluster(tc)            — topology + server/client placement
//   make_service(tc, cluster, n) — the system behind workload::ConsensusService
//   attach_clients(...)          — open-loop Poisson client machines
// run_trial composes the three for the steady-state benches; the
// fault-scenario runner (workload/fault_scenario.h) composes the same three
// plus a simnet::FaultSchedule, which is what makes every scenario run
// identically against all four systems.
#pragma once

#include <bit>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simnet/network.h"
#include "simnet/topology.h"
#include "workload/client.h"
#include "workload/runner.h"
#include "workload/service.h"

namespace canopus::workload {

/// Which consensus system a deployment runs.
enum class System { kCanopus, kEPaxos, kZab, kRaft };

inline constexpr System kAllSystems[] = {System::kCanopus, System::kRaft,
                                         System::kZab, System::kEPaxos};

inline const char* system_name(System s) {
  switch (s) {
    case System::kCanopus: return "Canopus";
    case System::kEPaxos: return "EPaxos";
    case System::kZab: return "ZooKeeper";
    case System::kRaft: return "Raft";
  }
  return "?";
}

/// Which backend executes the trial: the discrete-event simulator
/// (deterministic, simulated clock) or runtime::ThreadedRuntime (one OS
/// thread per node, wall clock, lock-free SPSC mailboxes). Same protocol
/// code either way — see DESIGN.md §12.
enum class RuntimeKind { kSim, kThreads };

inline const char* runtime_name(RuntimeKind r) {
  return r == RuntimeKind::kSim ? "sim" : "threads";
}

struct TrialConfig {
  System system = System::kCanopus;

  // Topology: single-DC (racks of servers, paper §8.1) or multi-DC WAN
  // (paper §8.2). When `wan` is true, `groups` datacenters of `per_group`
  // servers each are connected by the Table 1 latency matrix.
  bool wan = false;
  int groups = 3;            ///< racks or datacenters
  int per_group = 3;         ///< servers per rack / per DC
  int client_machines = 5;   ///< client machines per rack / per DC

  // Workload (§8.1): 180 clients, 20% writes, 1M keys, 16-byte pairs.
  double write_ratio = 0.2;
  std::uint64_t num_keys = 1'000'000;
  /// Key popularity (key_sampler.h): the paper's uniform draw by default;
  /// kZipfian skews per YCSB with exponent `zipf_theta`.
  KeyDist key_dist = KeyDist::kUniform;
  double zipf_theta = 0.99;

  // Measurement window.
  Time warmup = 600 * kMillisecond;
  Time measure = 2 * kSecond;
  Time drain = 800 * kMillisecond;

  std::uint64_t seed = 1;

  /// Intra-trial parallelism: number of shard worker threads for the
  /// conservative PDES kernel (1 = classic serial run). Output is
  /// bit-identical either way — the lane-sequence discipline makes event
  /// order independent of the shard map (see DESIGN.md §10).
  unsigned sim_threads = 1;

  /// Execution backend (--runtime=sim|threads). kThreads runs the same
  /// deployment on real node threads at wall-clock speed; results are then
  /// hardware-dependent, not deterministic.
  RuntimeKind runtime = RuntimeKind::kSim;

  /// Per-node processing costs. The defaults are calibrated (see
  /// EXPERIMENTS.md) so a single node tops out at a few hundred thousand
  /// requests/second — the regime of the paper's testbed — making the CPU
  /// of broadcast-heavy protocols the bottleneck it was in §8:
  ///   2 us fixed per message + 2.5 ns per payload byte, each direction,
  ///   plus protocol-level per-request costs charged by each system (see
  ///   canopus/epaxos/zab Config).
  simnet::CpuModel cpu{2'000, 2'000, 2.5};

  // Per-system tuning.
  core::Config canopus;
  epaxos::Config epaxos;
  zab::Config zab;
  raft::KvConfig raft;
};

/// Builds the cluster (topology + server/client node ids) for a config.
inline simnet::Cluster build_cluster(const TrialConfig& tc) {
  if (tc.wan) {
    simnet::WanConfig wc;
    wc.servers_per_dc.assign(static_cast<std::size_t>(tc.groups),
                             tc.per_group);
    wc.clients_per_dc.assign(static_cast<std::size_t>(tc.groups),
                             tc.client_machines);
    wc.rtt_ms = simnet::table1_rtt_ms();
    return simnet::build_multi_dc(wc);
  }
  simnet::RackConfig rc;
  rc.racks = tc.groups;
  rc.servers_per_rack = tc.per_group;
  rc.clients_per_rack = tc.client_machines;
  return simnet::build_multi_rack(rc);
}

/// Canopus LOT for an arbitrary server set: one super-leaf per rack/DC,
/// super-leaves in rack order of first appearance. For the classic
/// whole-cluster deployment (servers laid out rack-major by build_cluster)
/// this reproduces the historical `groups x per_group` grouping exactly;
/// for a sharded group confined to one rack it yields a single super-leaf
/// (height-1 LOT — supported by lot::Lot::build).
inline lot::LotConfig make_lot_config(const std::vector<NodeId>& servers,
                                      const simnet::Topology& topo) {
  lot::LotConfig lc;
  std::unordered_map<int, std::size_t> slot;
  for (const NodeId n : servers) {
    const auto [it, fresh] =
        slot.try_emplace(topo.rack_of(n), lc.super_leaves.size());
    if (fresh) lc.super_leaves.emplace_back();
    lc.super_leaves[it->second].push_back(n);
  }
  return lc;
}

inline lot::LotConfig make_lot_config(const TrialConfig&,
                                      const simnet::Cluster& cluster) {
  return make_lot_config(cluster.servers, cluster.topo);
}

/// Deploys the configured system over `servers` — the whole cluster for the
/// classic single-group deployments, or one shard's server slice for
/// workload::ShardedService. The service owns the protocol instances; it
/// must outlive the simulation run.
inline std::unique_ptr<ConsensusService> make_group_service(
    const TrialConfig& tc, std::vector<NodeId> servers,
    const simnet::Topology& topo, runtime::Host& net) {
  switch (tc.system) {
    case System::kCanopus: {
      lot::LotConfig lc = make_lot_config(servers, topo);
      return std::make_unique<CanopusService>(net, std::move(servers), lc,
                                              tc.canopus);
    }
    case System::kEPaxos:
      return std::make_unique<EPaxosService>(net, std::move(servers),
                                             tc.epaxos);
    case System::kZab:
      return std::make_unique<ZabService>(net, std::move(servers), tc.zab);
    case System::kRaft:
      return std::make_unique<RaftService>(net, std::move(servers), tc.raft);
  }
  return nullptr;
}

inline std::unique_ptr<ConsensusService> make_service(
    const TrialConfig& tc, const simnet::Cluster& cluster,
    runtime::Host& net) {
  return make_group_service(tc, cluster.servers, cluster.topo, net);
}

/// Attaches one OpenLoopClient per client machine, spreading `offered_rate`
/// evenly and connecting each machine to every server in its own rack/DC
/// (the paper's client placement). Generation stops at `stop_at`.
inline std::vector<std::unique_ptr<OpenLoopClient>> attach_clients(
    const TrialConfig& tc, const simnet::Cluster& cluster,
    runtime::Host& net, std::shared_ptr<LatencyRecorder> recorder,
    double offered_rate, std::uint64_t trial_seed, Time stop_at) {
  const double per_machine_rate =
      offered_rate / static_cast<double>(cluster.clients.size());
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  clients.reserve(cluster.clients.size());
  Rng seeder(derive_seed(trial_seed, 0xc11e57ULL));
  for (std::size_t i = 0; i < cluster.clients.size(); ++i) {
    ClientConfig cc;
    // Paper: each client connects to a uniformly-selected node in the same
    // rack/DC. A machine aggregates many client sessions, spread evenly
    // over every same-group server.
    const int group = tc.wan ? cluster.topo.dc_of(cluster.clients[i])
                             : cluster.topo.rack_of(cluster.clients[i]);
    const std::size_t base =
        static_cast<std::size_t>(group) * static_cast<std::size_t>(tc.per_group);
    for (int s = 0; s < tc.per_group; ++s)
      cc.servers.push_back(
          cluster.servers[base + static_cast<std::size_t>(s)]);
    cc.rate_per_s = per_machine_rate;
    cc.write_ratio = tc.write_ratio;
    cc.num_keys = tc.num_keys;
    cc.key_dist = tc.key_dist;
    cc.zipf_theta = tc.zipf_theta;
    cc.stop_at = stop_at;
    clients.push_back(
        std::make_unique<OpenLoopClient>(cc, recorder, seeder()));
    net.attach(cluster.clients[i], *clients.back());
  }
  return clients;
}

/// Runs one trial on the threaded runtime (wall-clock; defined in
/// runtime/threaded_trial.cpp, linked via the canopus_runtime library).
Measurement run_threaded_trial(const TrialConfig& tc, double offered_rate);

/// Runs one trial at `offered_rate` total requests/second (spread evenly
/// over all client machines) and reports client-observed completions.
inline Measurement run_trial(const TrialConfig& tc, double offered_rate) {
  if (tc.runtime == RuntimeKind::kThreads)
    return run_threaded_trial(tc, offered_rate);
  // Per-trial derived seed: every offered rate gets its own RNG stream, so
  // a trial's result depends only on (config, rate) — never on which order
  // or thread the harness ran it in — and sweep points are statistically
  // independent rather than replaying one stream at different loads.
  const std::uint64_t trial_seed =
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate));
  simnet::Simulator sim(trial_seed);

  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);

  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, net);

  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, net, recorder, offered_rate,
                                trial_seed, tc.warmup + tc.measure);

  const Time deadline = tc.warmup + tc.measure + tc.drain;
  if (tc.sim_threads > 1)
    sim.run_parallel_until(deadline);
  else
    sim.run_until(deadline);
  return measure(*recorder, offered_rate);
}

/// Convenience: a TrialFn bound to a TrialConfig.
inline TrialFn make_trial(TrialConfig tc) {
  return [tc](double rate) { return run_trial(tc, rate); };
}

}  // namespace canopus::workload
