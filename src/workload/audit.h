// Invariant audit plane: a per-client / per-node operation-history recorder
// feeding a linearizability-flavoured checker that runs CONTINUOUSLY while
// faults are being injected — not just a digest comparison after the run.
//
// The auditor records two histories as the simulation executes:
//  * server-side: every committed write batch per node (via
//    ConsensusService::on_commit), kept as an append-only log plus a
//    cumulative hash chain, so "do two nodes agree on a commit prefix?" is
//    an O(1) compare at any point in time;
//  * client-side: every completion each OpenLoopClient observes (via
//    OpenLoopClient::on_reply), split into acknowledged writes and read
//    results tagged with the serving node.
//
// Invariants checked (the safety properties a storm must never violate):
//  1. Commit-order prefix agreement (ordered systems — Canopus, Raft, Zab):
//     at every probe tick and at the end of the run, the committed write
//     sequences of any two comparable live nodes must be prefixes of one
//     another. A node that lags (crash recovery, catch-up in progress) is
//     fine; a node that *reorders or forks* is a violation. EPaxos commits
//     a partial order, so prefix checks are disabled for it (ordered =
//     false) and the remaining invariants carry the audit.
//  2. No lost acknowledged writes: every write acked to a client must be in
//     the committed log of at least one comparable node at the end of the
//     run. An ack whose write exists on no surviving comparable replica
//     means durability was lied about.
//  3. Monotonic reads per client session: reads flow to a client from a
//     specific serving node; for a fixed (client, server, key) the returned
//     values must move forward through THAT server's committed write order
//     for the key (simnet delivery is FIFO per path, stores only apply
//     committed writes, so going backwards means the server served
//     uncommitted or rolled-back state). A read of a value the server never
//     committed ("phantom read") is likewise a violation.
//
// The auditor has two feeding modes: attach() wires a live
// ConsensusService + client set (the chaos runner uses this), while the
// note_*/check_*/finalize entry points take explicit histories and
// comparability masks so checker self-tests can prove that INJECTED
// violations — a lost write, an order flip, a stale read — are detected
// (tests/workload/audit_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "workload/client.h"
#include "workload/service.h"

namespace canopus::workload {

struct AuditViolation {
  enum class Kind {
    kPrefixDivergence,  ///< two comparable nodes committed forked orders
    kLostAckedWrite,    ///< acked write on no comparable node at run end
    kStaleRead,         ///< session read moved backwards in commit order
    kPhantomRead,       ///< read returned a value its server never committed
  };
  Kind kind;
  Time at = 0;  ///< simulation time the check detected it
  std::string detail;
};

inline const char* audit_violation_name(AuditViolation::Kind k) {
  switch (k) {
    case AuditViolation::Kind::kPrefixDivergence: return "prefix_divergence";
    case AuditViolation::Kind::kLostAckedWrite: return "lost_acked_write";
    case AuditViolation::Kind::kStaleRead: return "stale_read";
    case AuditViolation::Kind::kPhantomRead: return "phantom_read";
  }
  return "?";
}

struct AuditConfig {
  /// Prefix-agreement checks apply (every system except EPaxos, whose
  /// commit order is legitimately partial).
  bool ordered = true;
  /// Period of the continuous prefix probe while attached to a live run.
  Time check_interval = 50 * kMillisecond;
  /// Cap on violation *details* kept (the count keeps the true total).
  std::size_t max_recorded = 64;
};

class HistoryAuditor {
 public:
  HistoryAuditor(AuditConfig cfg, std::size_t num_nodes)
      : cfg_(cfg), nodes_(num_nodes) {}

  // --- history feed -----------------------------------------------------

  /// Appends a committed batch to node i's history (reads are skipped:
  /// histories track the write order). Batches must arrive in the node's
  /// local apply order — exactly what ConsensusService::on_commit fires.
  void note_commit(std::size_t i, const std::vector<kv::Request>& batch) {
    NodeHistory& h = nodes_[i];
    for (const kv::Request& r : batch) {
      if (!r.is_write) continue;
      h.log.push_back({wid(r.id), r.key, r.value});
      // The chain is the node's rolling kv::CommitDigest sampled after
      // every write: same fingerprint semantics as the end-of-run digest
      // audits, one snapshot per prefix length so prefix compare is O(1).
      h.digest.append(r);
      h.chain.push_back(h.digest.value());
    }
  }

  /// Node i installed a state snapshot covering `count` committed writes
  /// with cumulative commit fingerprint `fingerprint` (plus the KV image).
  /// The hole between the node's last recorded write and the snapshot point
  /// was adopted wholesale, never observed write by write, so:
  ///  * the hash chain is padded with *unknown* prefix digests up to
  ///    count-1 and pinned to `fingerprint` at count — prefix checks then
  ///    compare at the deepest mutually-KNOWN prefix instead of reading the
  ///    padding as a fork;
  ///  * the rolling digest restarts from the donor state, so post-install
  ///    commits chain exactly like the donor's;
  ///  * the image's (key, value) pairs join the node's committed-value set
  ///    as synthetic entries (id 0) so the phantom/stale read checks know
  ///    the node legitimately serves them. Synthetic entries are counted
  ///    apart and excluded from committed_writes().
  /// Installs never rewind: a snapshot at or below the recorded history is
  /// ignored (protocol-side guards only install when strictly behind).
  void note_snapshot_install(std::size_t i, std::uint64_t count,
                             std::uint64_t fingerprint,
                             const kv::StoreImage* image) {
    NodeHistory& h = nodes_[i];
    if (count <= h.chain.size()) return;
    h.known.resize(h.chain.size(), std::uint8_t{1});
    while (h.chain.size() + 1 < count) {
      h.chain.push_back(0);
      h.known.push_back(0);
    }
    h.chain.push_back(fingerprint);
    h.known.push_back(1);
    h.digest.restore(fingerprint, count);
    if (image) {
      for (const auto& [key, value] : *image) {
        h.log.push_back({0, key, value});
        ++h.synthetic;
      }
    }
  }

  /// Records a completion observed by client `client` from server index
  /// `server` at time `now`.
  ///
  /// Thread safety under the sharded kernel: replies fire on the observing
  /// client's shard, so different clients may call this concurrently — the
  /// mutex guards the shared append-only vectors. Every check that consumes
  /// them is order-independent across sessions (acked_ feeds a set-membership
  /// test; the read checks are per (client, server, key) session, and one
  /// client's replies always arrive on one shard in time order), so sharded
  /// and serial runs produce identical verdicts. note_commit needs no lock:
  /// nodes_[i] is appended only by node i's owning shard, and the prefix
  /// probes run at control barriers with every worker parked.
  void note_reply(std::size_t client, std::size_t server,
                  const kv::Completion& c, Time now) {
    std::lock_guard<std::mutex> lock(reply_mu_);
    if (c.is_write) {
      acked_.push_back({wid(c.id), now});
    } else {
      reads_.push_back({client, server, c.key, c.value, now});
    }
  }

  // --- live wiring ------------------------------------------------------

  /// Wires the auditor's server side into a live run: captures every
  /// commit via service.on_commit and — for ordered systems — schedules
  /// the continuous prefix probe every `check_interval` from `first_probe`
  /// until `until`. The caller feeds client completions itself via
  /// note_reply (or server_index for NodeId translation); the sharded
  /// runner (workload/sharded.h) uses this one-auditor-per-group, with
  /// RouterClient completions demultiplexed onto group auditors.
  void attach_service(ConsensusService& service, simnet::Simulator& sim,
                      Time first_probe, Time until) {
    service_ = &service;
    sim_ = &sim;
    probe_until_ = until;
    for (std::size_t i = 0; i < service.num_servers(); ++i)
      index_of_[service.server_node(i)] = i;
    service.on_commit = [this](std::size_t i, std::uint64_t,
                               const std::vector<kv::Request>& batch) {
      note_commit(i, batch);
    };
    service.on_snapshot_install = [this](std::size_t i,
                                         const kv::Snapshot& s) {
      note_snapshot_install(i, s.digest_count, s.digest_hash,
                            s.image.get());
    };
    if (cfg_.ordered)
      sim.at(first_probe, [this] { probe(); });
  }

  /// The attached service's server index for a NodeId (for feeding
  /// note_reply from a client's on_reply hook).
  std::size_t server_index(NodeId n) const { return index_of_.at(n); }
  /// Current simulation time of the attached run (note_reply timestamps).
  Time attached_now() const { return sim_->now(); }

  /// attach_service plus the classic client wiring: every
  /// OpenLoopClient::on_reply feeds note_reply (the chaos runner's shape).
  void attach(ConsensusService& service,
              std::vector<std::unique_ptr<OpenLoopClient>>& clients,
              simnet::Simulator& sim, Time first_probe, Time until) {
    attach_service(service, sim, first_probe, until);
    for (std::size_t ci = 0; ci < clients.size(); ++ci)
      clients[ci]->on_reply = [this, ci](NodeId server,
                                         const kv::Completion& c) {
        note_reply(ci, index_of_.at(server), c, sim_->now());
      };
  }

  // --- checks -----------------------------------------------------------

  /// Prefix-agreement check over the nodes selected by `mask` (the
  /// comparable live set). All pairs are compared — the checker cannot
  /// know WHICH node of a mismatching pair forked, so it reports the pair
  /// symmetrically and keeps auditing every other pair. A diverged pair is
  /// reported once, not once per probe. O(pairs) with an O(1) chain
  /// compare per pair; cluster sizes make this trivial.
  void check_prefixes(Time now, const std::vector<bool>& mask) {
    if (!cfg_.ordered) return;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!mask[i]) continue;
      for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
        if (!mask[j]) continue;
        if (diverged_pairs_.contains(i * nodes_.size() + j)) continue;
        const std::size_t n =
            std::min(nodes_[i].chain.size(), nodes_[j].chain.size());
        if (n == 0) continue;
        // Compare at the deepest prefix BOTH nodes know the digest of
        // (snapshot installs leave unknown padding, see
        // note_snapshot_install). Walk-back is bounded by the padded span.
        std::size_t k = n;
        while (k > 0 &&
               !(known_at(nodes_[i], k - 1) && known_at(nodes_[j], k - 1)))
          --k;
        if (k == 0) continue;
        if (nodes_[i].chain[k - 1] != nodes_[j].chain[k - 1]) {
          diverged_pairs_.insert(i * nodes_.size() + j);
          record(AuditViolation::Kind::kPrefixDivergence, now,
                 "nodes " + std::to_string(i) + " and " + std::to_string(j) +
                     " forked within their first " + std::to_string(k) +
                     " committed writes");
        }
      }
    }
  }

  /// End-of-run checks: final prefix agreement, lost acknowledged writes,
  /// and per-session monotonic reads. `mask` selects the comparable nodes
  /// whose histories count as surviving committed state.
  void finalize(Time now, const std::vector<bool>& mask) {
    check_prefixes(now, mask);

    // -- no lost acknowledged writes ------------------------------------
    std::unordered_set<std::uint64_t> durable;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!mask[i]) continue;
      for (const Committed& w : nodes_[i].log) durable.insert(w.id);
    }
    bool any_comparable = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) any_comparable |= mask[i];
    if (any_comparable) {
      for (const Acked& a : acked_) {
        if (!durable.contains(a.id)) {
          record(AuditViolation::Kind::kLostAckedWrite, now,
                 "write " + std::to_string(a.id) + " acked at t=" +
                     std::to_string(a.at) +
                     "ns is on no comparable node at run end");
        }
      }
    }

    // -- monotonic reads per (client, server, key) session ---------------
    // Rank each read's value in the SERVING node's own committed order for
    // that key (self-consistency — works for ordered and EPaxos alike; the
    // cross-node story is the prefix check above). Value 0 with no
    // committed write ranks as "initial state" (-1).
    //
    // A value committed to the same key more than once is ambiguous from
    // the client's side (replies carry values, not write ids), so each
    // (key, value) keeps its [first, last] rank range and the checks are
    // conservative: a read is stale only if even its LATEST occurrence
    // predates the session floor, and the floor only advances to the
    // EARLIEST occurrence — no false positives, full strength for unique
    // values (the in-repo workloads draw 64-bit random values, so ranges
    // are almost always a single rank).
    struct RankRange {
      long first, last;
    };
    std::vector<std::unordered_map<
        std::uint64_t, std::unordered_map<std::uint64_t, RankRange>>>
        rank(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      long r = 0;
      for (const Committed& w : nodes_[i].log) {
        auto [it, fresh] = rank[i][w.key].try_emplace(w.value, RankRange{r, r});
        if (!fresh) it->second.last = r;
        ++r;
      }
    }
    // Floors keyed exactly by (client, server) then key — collisions would
    // merge unrelated sessions whose ranks live in different spaces.
    std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, long>>
        session_floor;
    for (const Read& rd : reads_) {
      const auto key_it = rank[rd.server].find(rd.key);
      RankRange r{-1, -1};
      if (key_it != rank[rd.server].end()) {
        const auto val_it = key_it->second.find(rd.value);
        if (val_it != key_it->second.end()) {
          r = val_it->second;
        } else if (rd.value != 0) {
          record(AuditViolation::Kind::kPhantomRead, now,
                 session_str(rd) + " returned value node " +
                     std::to_string(rd.server) + " never committed");
          continue;
        }
      } else if (rd.value != 0) {
        record(AuditViolation::Kind::kPhantomRead, now,
               session_str(rd) + " returned a value for a key node " +
                   std::to_string(rd.server) + " never committed to");
        continue;
      }
      const std::uint64_t session = (std::uint64_t{static_cast<std::uint32_t>(
                                         rd.client)}
                                     << 32) |
                                    static_cast<std::uint32_t>(rd.server);
      auto [it, fresh] = session_floor[session].try_emplace(rd.key, r.first);
      if (!fresh) {
        if (r.last < it->second) {
          record(AuditViolation::Kind::kStaleRead, now,
                 session_str(rd) + " went backwards: rank " +
                     std::to_string(r.last) + " after rank " +
                     std::to_string(it->second));
        } else if (r.first > it->second) {
          it->second = r.first;
        }
      }
    }
  }

  /// attach()-mode finalize: derives the comparability mask from the
  /// service (up + repairable).
  void finalize(Time now) { finalize(now, comparable_mask()); }

  // --- results ----------------------------------------------------------

  std::uint64_t violation_count() const { return total_; }
  const std::vector<AuditViolation>& violations() const { return recorded_; }

  std::uint64_t acked_writes() const { return acked_.size(); }
  std::uint64_t observed_reads() const { return reads_.size(); }
  std::uint64_t committed_writes(std::size_t i) const {
    return nodes_[i].log.size() - nodes_[i].synthetic;
  }

 private:
  struct Committed {
    std::uint64_t id, key, value;
  };
  struct NodeHistory {
    std::vector<Committed> log;
    kv::CommitDigest digest;  ///< rolling digest (same as the node audits)
    std::vector<std::uint64_t> chain;  ///< digest snapshot per prefix length
    /// Parallel to `chain`, lazily materialized on the first snapshot
    /// install: 0 marks padded positions whose digest was never observed.
    /// Empty, or any index beyond its size, means "known".
    std::vector<std::uint8_t> known;
    /// Synthetic log entries appended from snapshot images (excluded from
    /// committed_writes()).
    std::uint64_t synthetic = 0;
  };

  static bool known_at(const NodeHistory& h, std::size_t idx) {
    return idx >= h.known.size() || h.known[idx] != 0;
  }
  struct Acked {
    std::uint64_t id;
    Time at;
  };
  struct Read {
    std::size_t client, server;
    std::uint64_t key, value;
    Time at;
  };

  static std::uint64_t wid(const RequestId& id) {
    return (std::uint64_t{id.client} << 40) ^ id.seq;
  }
  static std::string session_str(const Read& r) {
    return "read session (client " + std::to_string(r.client) + ", server " +
           std::to_string(r.server) + ", key " + std::to_string(r.key) + ")";
  }

  void record(AuditViolation::Kind kind, Time at, std::string detail) {
    ++total_;
    if (recorded_.size() < cfg_.max_recorded)
      recorded_.push_back({kind, at, std::move(detail)});
  }

  std::vector<bool> comparable_mask() const {
    std::vector<bool> mask(nodes_.size(), false);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      mask[i] = service_->comparable(i);
    return mask;
  }

  void probe() {
    check_prefixes(sim_->now(), comparable_mask());
    const Time next = sim_->now() + cfg_.check_interval;
    if (next <= probe_until_)
      sim_->at(next, [this] { probe(); });
  }

  AuditConfig cfg_;
  std::vector<NodeHistory> nodes_;
  std::unordered_set<std::size_t> diverged_pairs_;  ///< reported once, as
                                                    ///< i * num_nodes + j
  std::vector<Acked> acked_;
  std::vector<Read> reads_;
  std::mutex reply_mu_;
  std::vector<AuditViolation> recorded_;
  std::uint64_t total_ = 0;

  // attach()-mode wiring.
  const ConsensusService* service_ = nullptr;
  simnet::Simulator* sim_ = nullptr;
  Time probe_until_ = 0;
  std::unordered_map<NodeId, std::size_t> index_of_;
};

}  // namespace canopus::workload
