// ConsensusService: one driver-facing facade over a deployed consensus
// system.
//
// Every system in the repository (Canopus, Raft, Zab/ZooKeeper, EPaxos)
// deploys as N server processes attached to a simnet::Network. This layer
// gives the workload drivers — run_trial, the fault-scenario runner, the
// benches, the examples — ONE interface to submit requests, inject node
// faults, and audit safety, so a scenario is written once and runs
// identically against all four systems instead of once per `switch` arm
// (the pre-refactor deployments.h shape).
//
// Semantics the interface pins down:
//  * crash(i)  — crash-stop: the network drops all traffic to/from the
//    node AND the protocol instance silences its timers. Volatile state
//    (un-proposed batches, unsent replies) is lost; committed state models
//    a durable log.
//  * recover(i) — restart with durable state; the protocol's own repair
//    path (Raft log backoff or InstallSnapshot, Zab catch-up or snapshot
//    sync, EPaxos instance fetch or snapshot transfer, Canopus rejoin by
//    sponsor state transfer) brings the node back to the common prefix.
//  * commit_fingerprint(i) — the agreement check: equal fingerprints (and
//    counts) on two comparable nodes mean they committed the same writes.
//    Ordered systems hash the committed *sequence* (kv::CommitDigest);
//    EPaxos hashes the committed *set* (kv::SetDigest) because
//    non-interfering commands legitimately execute in different orders on
//    different replicas.
//  * comparable(i) — whether node i participates in the agreement check:
//    it is up, and either it never crashed or the system can repair a
//    recovered node.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "canopus/node.h"
#include "epaxos/epaxos.h"
#include "kv/store.h"
#include "kv/types.h"
#include "raft/raft_kv.h"
#include "simnet/network.h"
#include "zab/zab.h"

namespace canopus::workload {

class ConsensusService {
 public:
  virtual ~ConsensusService() = default;

  ConsensusService(const ConsensusService&) = delete;
  ConsensusService& operator=(const ConsensusService&) = delete;

  virtual const char* name() const = 0;

  std::size_t num_servers() const { return servers_.size(); }
  NodeId server_node(std::size_t i) const { return servers_[i]; }

  /// Local submission path (examples/tests); client traffic normally
  /// arrives as kv::ClientBatch through the network instead.
  virtual void submit(std::size_t i, kv::Request r) = 0;

  /// Crash-stop node i (network + protocol instance). The protocol-side
  /// crash runs via Host::post — inline on the simulated backend, inside
  /// the node thread's execution context on the threaded one.
  void crash(std::size_t i) {
    host_.crash(servers_[i]);
    up_[i] = false;
    ever_crashed_[i] = true;
    host_.post(servers_[i], [this, i] { node_crash(i); });
  }

  /// Restarts node i with its durable state; false if this system cannot
  /// re-admit a crashed node (the node stays dark). Fault schedules armed
  /// through arm_via_service (workload/fault_scenario.h) fail fast by
  /// default instead of silently hitting this false return — see
  /// RecoverArming.
  bool recover(std::size_t i) {
    if (!supports_recover()) return false;
    host_.recover(servers_[i]);
    up_[i] = true;
    host_.post(servers_[i], [this, i] { node_recover(i); });
    return true;
  }

  bool up(std::size_t i) const { return up_[i]; }
  bool ever_crashed(std::size_t i) const { return ever_crashed_[i]; }
  virtual bool supports_recover() const { return true; }

  /// Whether node i's fingerprint participates in the agreement check.
  /// Concrete services may narrow this further (a Canopus node mid-rejoin
  /// is not yet a member and its digest chain restarts at the install).
  virtual bool comparable(std::size_t i) const {
    return up_[i] && (supports_recover() || !ever_crashed_[i]);
  }

  // --- safety/progress observers ---------------------------------------
  virtual std::uint64_t committed_writes(std::size_t i) const = 0;
  virtual std::uint64_t commit_fingerprint(std::size_t i) const = 0;
  virtual std::uint64_t served_reads(std::size_t i) const = 0;
  /// Monotone per-node progress counter in protocol units (cycles, zxids,
  /// log indices, executed instances). Scenario checks use "did the max
  /// over live nodes advance", never absolute values across systems.
  virtual std::uint64_t progress(std::size_t i) const = 0;
  virtual const kv::Store& store(std::size_t i) const = 0;

  // --- compaction/state-transfer observers ------------------------------
  /// Snapshots node i installed (received from a donor) since start.
  virtual std::uint64_t snapshots_installed(std::size_t /*i*/) const {
    return 0;
  }
  /// Log records node i currently retains (the memory footprint the
  /// compaction bound caps): Raft log entries, Zab history batches, EPaxos
  /// instance-ring residents, Canopus cycle states.
  virtual std::uint64_t log_entries_retained(std::size_t /*i*/) const {
    return 0;
  }

  /// Fired at commit/execute time: (server index, protocol unit, batch).
  /// The batch is the protocol's committed request batch, in its local
  /// apply order.
  std::function<void(std::size_t, std::uint64_t,
                     const std::vector<kv::Request>&)>
      on_commit;

  /// Fired when a node installs a state snapshot (server index, snapshot).
  /// The audit plane uses this to reconcile the node's history: the
  /// installed prefix is adopted wholesale, not replayed write by write.
  std::function<void(std::size_t, const kv::Snapshot&)> on_snapshot_install;

 protected:
  ConsensusService(runtime::Host& host, std::vector<NodeId> servers)
      : host_(host),
        servers_(std::move(servers)),
        up_(servers_.size(), true),
        ever_crashed_(servers_.size(), false) {}

  virtual void node_crash(std::size_t i) = 0;
  virtual void node_recover(std::size_t /*i*/) {}

  runtime::Host& host_;
  std::vector<NodeId> servers_;
  std::vector<bool> up_;
  std::vector<bool> ever_crashed_;
};

/// Shared wiring of the one-Process-per-server services: owns the node
/// instances, attaches them, and forwards everything the four node types
/// expose with the same shape (submit / crash / store / digest /
/// served_reads). A concrete service supplies the node factory plus the
/// system-specific pieces: name, progress units, fingerprint semantics,
/// and recovery support.
template <class Node>
class NodeService : public ConsensusService {
 public:
  /// Routed through Host::post so the protocol instance is only ever
  /// touched from its own execution context: inline on the simulated
  /// backend (bit-identical to the direct call), enqueued onto the node's
  /// injection mailbox on the threaded one. The closure must stay within
  /// InlineFn's inline budget — no allocation per submission.
  void submit(std::size_t i, kv::Request r) override {
    auto fn = [n = nodes_[i].get(), r]() mutable { n->submit(std::move(r)); };
    static_assert(simnet::InlineFn::fits_inline<decltype(fn)>);
    host_.post(servers_[i], std::move(fn));
  }
  std::uint64_t committed_writes(std::size_t i) const override {
    return nodes_[i]->digest().count();
  }
  std::uint64_t commit_fingerprint(std::size_t i) const override {
    return nodes_[i]->digest().value();
  }
  std::uint64_t served_reads(std::size_t i) const override {
    return nodes_[i]->served_reads();
  }
  const kv::Store& store(std::size_t i) const override {
    return nodes_[i]->store();
  }
  std::uint64_t snapshots_installed(std::size_t i) const override {
    if constexpr (requires(const Node& n) { n.snapshots_installed(); })
      return nodes_[i]->snapshots_installed();
    else
      return 0;
  }
  std::uint64_t log_entries_retained(std::size_t i) const override {
    if constexpr (requires(const Node& n) { n.log_entries_retained(); })
      return nodes_[i]->log_entries_retained();
    else
      return 0;
  }

  Node& node(std::size_t i) { return *nodes_[i]; }

 protected:
  template <class MakeNode>  // MakeNode: size_t -> unique_ptr<Node>
  NodeService(runtime::Host& host, std::vector<NodeId> servers,
              const MakeNode& make)
      : ConsensusService(host, std::move(servers)) {
    nodes_.reserve(servers_.size());
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      nodes_.push_back(make(i));
      host_.attach(servers_[i], *nodes_.back());
    }
  }

  void node_crash(std::size_t i) override { nodes_[i]->crash(); }
  void node_recover(std::size_t i) override {
    if constexpr (requires(Node& n) { n.recover(); }) nodes_[i]->recover();
  }

  std::vector<std::unique_ptr<Node>> nodes_;
};

// --------------------------------------------------------------------------
// Canopus
// --------------------------------------------------------------------------

class CanopusService final : public NodeService<core::CanopusNode> {
 public:
  CanopusService(runtime::Host& net, std::vector<NodeId> servers,
                 const lot::LotConfig& lc, core::Config cfg)
      : CanopusService(net, std::move(servers),
                       std::make_shared<const lot::Lot>(lot::Lot::build(lc)),
                       std::move(cfg)) {}

  const char* name() const override { return "Canopus"; }

  /// A failed pnode is excluded via membership update (§4.6) and re-admitted
  /// by the rejoin path: a live super-leaf sibling sponsors its kJoin and
  /// transfers a full state snapshot (CanopusNode::recover).
  bool supports_recover() const override { return true; }

  /// A node between recover() and its snapshot install is not yet a member:
  /// its digest chain restarts at the install, so it only rejoins the
  /// agreement check once the transfer lands.
  bool comparable(std::size_t i) const override {
    return ConsensusService::comparable(i) && !nodes_[i]->joining();
  }

  std::uint64_t progress(std::size_t i) const override {
    return nodes_[i]->last_committed_cycle();
  }
  std::uint64_t snapshots_installed(std::size_t i) const override {
    return nodes_[i]->snapshots_installed();
  }
  std::uint64_t log_entries_retained(std::size_t i) const override {
    return nodes_[i]->retained_cycles();
  }

  const lot::Lot& lot() const { return *lot_; }

 private:
  CanopusService(runtime::Host& net, std::vector<NodeId> servers,
                 std::shared_ptr<const lot::Lot> lot, core::Config cfg)
      : NodeService(net, std::move(servers),
                    [&](std::size_t) {
                      return std::make_unique<core::CanopusNode>(lot, cfg);
                    }),
        lot_(std::move(lot)) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->on_commit = [this, i](CycleId c,
                                       const std::vector<kv::Request>& w) {
        if (on_commit) on_commit(i, c, w);
      };
      nodes_[i]->on_snapshot_install = [this, i](const kv::Snapshot& s) {
        if (on_snapshot_install) on_snapshot_install(i, s);
      };
    }
  }

  std::shared_ptr<const lot::Lot> lot_;
};

// --------------------------------------------------------------------------
// Raft (standalone deployment)
// --------------------------------------------------------------------------

class RaftService final : public NodeService<raft::RaftKvNode> {
 public:
  RaftService(runtime::Host& net, std::vector<NodeId> servers,
              raft::KvConfig cfg)
      : NodeService(net, std::move(servers), [&](std::size_t) {
          return std::make_unique<raft::RaftKvNode>(servers_, cfg);
        }) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->on_commit = [this, i](raft::LogIndex idx,
                                       const std::vector<kv::Request>& w) {
        if (on_commit) on_commit(i, idx, w);
      };
      nodes_[i]->on_snapshot_install = [this, i](const kv::Snapshot& s) {
        if (on_snapshot_install) on_snapshot_install(i, s);
      };
    }
  }

  const char* name() const override { return "Raft"; }
  std::uint64_t progress(std::size_t i) const override {
    return nodes_[i]->commit_index();
  }
};

// --------------------------------------------------------------------------
// Zab / ZooKeeper
// --------------------------------------------------------------------------

class ZabService final : public NodeService<zab::ZabNode> {
 public:
  ZabService(runtime::Host& net, std::vector<NodeId> servers,
             zab::Config cfg)
      : NodeService(net, std::move(servers), [&](std::size_t) {
          return std::make_unique<zab::ZabNode>(servers_, cfg);
        }) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->on_commit = [this, i](zab::Zxid z,
                                       const std::vector<kv::Request>& w) {
        if (on_commit) on_commit(i, z, w);
      };
      nodes_[i]->on_snapshot_install = [this, i](zab::Zxid,
                                                 const kv::Snapshot& s) {
        if (on_snapshot_install) on_snapshot_install(i, s);
      };
    }
  }

  const char* name() const override { return "ZooKeeper"; }
  std::uint64_t progress(std::size_t i) const override {
    return nodes_[i]->applied_upto();
  }
};

// --------------------------------------------------------------------------
// EPaxos
// --------------------------------------------------------------------------

class EPaxosService final : public NodeService<epaxos::EPaxosNode> {
 public:
  EPaxosService(runtime::Host& net, std::vector<NodeId> servers,
                epaxos::Config cfg)
      : NodeService(net, std::move(servers), [&](std::size_t) {
          return std::make_unique<epaxos::EPaxosNode>(servers_, cfg);
        }) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->on_execute =
          [this, i](const std::vector<kv::Request>& batch) {
            if (on_commit) on_commit(i, 0, batch);
          };
      nodes_[i]->on_snapshot_install = [this, i](const kv::Snapshot& s) {
        if (on_snapshot_install) on_snapshot_install(i, s);
      };
    }
  }

  const char* name() const override { return "EPaxos"; }

  /// Set digest, not sequence digest: see the class comment.
  std::uint64_t committed_writes(std::size_t i) const override {
    return nodes_[i]->set_digest().count();
  }
  std::uint64_t commit_fingerprint(std::size_t i) const override {
    return nodes_[i]->set_digest().value();
  }
  std::uint64_t progress(std::size_t i) const override {
    return nodes_[i]->executed_requests();
  }
};

}  // namespace canopus::workload
