// ShardedService: N independent consensus groups behind one hash-
// partitioned keyspace — the production shape of ROADMAP direction 1
// (ZooKeeper/etcd-style multi-group deployment; Canopus super-leaves map
// naturally onto shards).
//
// Composition with the simulator's own sharding (PR 6): the sharded
// deployment places one consensus group per rack (build_cluster with
// groups = rack count), and make_shard_map assigns one PDES event shard
// per rack — so consensus groups and simulation shards coincide, and a
// sharded trial parallelizes along exactly the boundary where the system
// itself is partitioned. All cross-group traffic is client traffic.
//
// Pieces:
//  * ShardedService — owns one ConsensusService per group (any of the four
//    systems via make_group_service), group g serving servers
//    [g*per_group, (g+1)*per_group) of the cluster, plus the fleet-index /
//    NodeId / key -> group translations every other layer shares.
//  * attach_router_clients — RouterClient machines (router_client.h):
//    hash-routed, redirect-on-crash, bounded-backoff clients hosting flat
//    per-session cursors (the million-client workload plane).
//  * run_sharded_trial — steady-state aggregate measurement plus the
//    per-group agreement audit (the sharded analogue of run_trial).
//  * run_sharded_chaos_trial — seeded storms targeting the whole fleet or
//    each group independently (ChaosScope), with one HistoryAuditor PER
//    GROUP: cross-group commit order is undefined by construction (groups
//    are independent state machines over disjoint keys), so prefix/lost-
//    write/read audits only make sense within a group.
//
// Determinism: every entry point is a pure function of (config, rate[,
// intensity, timing]) — trial seeds derive exactly like run_trial's, and
// all recorders/auditors accumulate order-independently — so sharded
// benches stay bit-identical across --threads and --sim-threads.
#pragma once

#include <bit>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simnet/chaos.h"
#include "workload/audit.h"
#include "workload/chaos.h"
#include "workload/deployments.h"
#include "workload/fault_scenario.h"
#include "workload/router_client.h"

namespace canopus::workload {

/// A sharded deployment: `base.groups` consensus groups of
/// `base.per_group` servers each, one group per rack/DC, `base.system`
/// everywhere. base.client_machines RouterClient machines per rack each
/// host `sessions_per_machine` client sessions.
struct ShardedConfig {
  TrialConfig base;
  std::uint32_t sessions_per_machine = 1'024;
  int max_attempts = 4;
  Time retry_backoff = 2 * kMillisecond;
};

class ShardedService {
 public:
  ShardedService(const TrialConfig& tc, const simnet::Cluster& cluster,
                 simnet::Network& net) {
    const std::size_t groups = static_cast<std::size_t>(tc.groups);
    const std::size_t per = static_cast<std::size_t>(tc.per_group);
    if (cluster.servers.size() != groups * per)
      throw std::invalid_argument(
          "ShardedService: cluster/server-count mismatch");
    group_servers_.resize(groups);
    groups_.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      group_servers_[g].assign(cluster.servers.begin() + g * per,
                               cluster.servers.begin() + (g + 1) * per);
      groups_.push_back(
          make_group_service(tc, group_servers_[g], cluster.topo, net));
      for (std::size_t s = 0; s < per; ++s)
        locate_[group_servers_[g][s]] = {g, s};
    }
  }

  std::size_t num_groups() const { return groups_.size(); }
  std::size_t servers_per_group() const { return group_servers_[0].size(); }
  std::size_t num_servers() const {
    return num_groups() * servers_per_group();
  }

  ConsensusService& group(std::size_t g) { return *groups_[g]; }
  const ConsensusService& group(std::size_t g) const { return *groups_[g]; }
  const std::vector<std::vector<NodeId>>& group_servers() const {
    return group_servers_;
  }

  /// (group, group-local server index) of a server NodeId.
  std::pair<std::size_t, std::size_t> locate(NodeId n) const {
    return locate_.at(n);
  }

  /// The consensus group owning `key` (the one partition function — see
  /// key_sampler.h).
  std::size_t group_of_key(std::uint64_t key) const {
    return shard_of_key(key, static_cast<std::uint32_t>(num_groups()));
  }

  // Fleet-indexed fault entry points (indices group-major, as laid out by
  // build_cluster — the FaultScenario vocabulary).
  void crash(std::size_t fleet_index) {
    groups_[fleet_index / servers_per_group()]->crash(fleet_index %
                                                      servers_per_group());
  }
  bool recover(std::size_t fleet_index) {
    return groups_[fleet_index / servers_per_group()]->recover(
        fleet_index % servers_per_group());
  }
  bool supports_recover() const { return groups_[0]->supports_recover(); }
  const char* name() const { return groups_[0]->name(); }

  // --- per-group agreement audit ----------------------------------------

  /// Whether every comparable node of group g reports the same commit
  /// fingerprint and count (the Agreement check, per group).
  bool group_agrees(std::size_t g) const {
    const ConsensusService& svc = *groups_[g];
    bool first = true;
    std::uint64_t fp = 0, count = 0;
    for (std::size_t i = 0; i < svc.num_servers(); ++i) {
      if (!svc.comparable(i)) continue;
      const std::uint64_t f = svc.commit_fingerprint(i);
      const std::uint64_t c = svc.committed_writes(i);
      if (first) {
        fp = f;
        count = c;
        first = false;
      } else if (f != fp || c != count) {
        return false;
      }
    }
    return true;
  }

  /// Committed writes of group g (max over its comparable nodes).
  std::uint64_t group_committed(std::size_t g) const {
    const ConsensusService& svc = *groups_[g];
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < svc.num_servers(); ++i)
      if (svc.comparable(i))
        count = std::max(count, svc.committed_writes(i));
    return count;
  }

  /// Commit fingerprint of group g's first comparable node (0 if none).
  std::uint64_t group_fingerprint(std::size_t g) const {
    const ConsensusService& svc = *groups_[g];
    for (std::size_t i = 0; i < svc.num_servers(); ++i)
      if (svc.comparable(i)) return svc.commit_fingerprint(i);
    return 0;
  }

  /// One order-sensitive fold over all group fingerprints — the sharded
  /// trial's identity digest (FNV-1a over the group fingerprint bytes).
  std::uint64_t fingerprint_fold() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t g = 0; g < num_groups(); ++g) {
      std::uint64_t v = group_fingerprint(g);
      for (int b = 0; b < 8; ++b) {
        h ^= v & 0xff;
        h *= 0x100000001b3ULL;
        v >>= 8;
      }
    }
    return h;
  }

 private:
  std::vector<std::unique_ptr<ConsensusService>> groups_;
  std::vector<std::vector<NodeId>> group_servers_;
  std::unordered_map<NodeId, std::pair<std::size_t, std::size_t>> locate_;
};

/// arm_via_service for a sharded fleet: node crash/recover events route to
/// the OWNING group's service; sever/heal act on the network alone. Same
/// RecoverArming contract (fail fast by default when the system cannot
/// re-admit nodes and the schedule arms recovers).
inline void arm_sharded(const simnet::FaultSchedule& sched,
                        simnet::Network& net, ShardedService& svc,
                        RecoverArming mode = RecoverArming::kStrict) {
  if (mode == RecoverArming::kStrict && !svc.supports_recover()) {
    std::size_t recovers = 0;
    for (const simnet::FaultEvent& ev : sched.events())
      if (ev.kind == simnet::FaultEvent::Kind::kRecover) ++recovers;
    if (recovers > 0)
      throw std::invalid_argument(
          std::string("arm_sharded: schedule arms ") +
          std::to_string(recovers) + " recover event(s) but " + svc.name() +
          " has supports_recover() == false — pass "
          "RecoverArming::kTolerateUnsupported if dark nodes are the "
          "intended measurement");
  }
  sched.arm(net, [fleet = &svc](simnet::Network& n,
                                const simnet::FaultEvent& ev) {
    switch (ev.kind) {
      case simnet::FaultEvent::Kind::kCrash: {
        const auto [g, local] = fleet->locate(ev.a);
        fleet->group(g).crash(local);
        break;
      }
      case simnet::FaultEvent::Kind::kRecover: {
        const auto [g, local] = fleet->locate(ev.a);
        fleet->group(g).recover(local);
        break;
      }
      default:
        simnet::FaultSchedule::apply(n, ev);
    }
  });
}

/// Attaches one RouterClient per client machine, spreading `offered_rate`
/// evenly. Session identity is per machine (RequestId.seq's upper bits,
/// see RouterClient::kSessionShift); RequestId.client stays the machine's
/// NodeId because every protocol routes its replies to it.
inline std::vector<std::unique_ptr<RouterClient>> attach_router_clients(
    const ShardedConfig& sc, const simnet::Cluster& cluster,
    const ShardedService& svc, simnet::Network& net,
    std::shared_ptr<LatencyRecorder> recorder, double offered_rate,
    std::uint64_t trial_seed, Time stop_at) {
  const double per_machine_rate =
      offered_rate / static_cast<double>(cluster.clients.size());
  Rng seeder(derive_seed(trial_seed, 0x40757e5ULL));
  std::vector<std::unique_ptr<RouterClient>> routers;
  routers.reserve(cluster.clients.size());
  for (std::size_t i = 0; i < cluster.clients.size(); ++i) {
    RouterConfig rc;
    rc.groups = svc.group_servers();
    rc.sessions = sc.sessions_per_machine;
    rc.rate_per_s = per_machine_rate;
    rc.write_ratio = sc.base.write_ratio;
    rc.num_keys = sc.base.num_keys;
    rc.key_dist = sc.base.key_dist;
    rc.zipf_theta = sc.base.zipf_theta;
    rc.stop_at = stop_at;
    rc.max_attempts = sc.max_attempts;
    rc.retry_backoff = sc.retry_backoff;
    routers.push_back(
        std::make_unique<RouterClient>(rc, recorder, seeder()));
    net.attach(cluster.clients[i], *routers.back());
  }
  return routers;
}

struct ShardedTrialResult {
  Measurement agg;  ///< aggregate over all groups and machines

  std::vector<std::uint64_t> group_commits;  ///< committed writes per group
  std::uint64_t committed_writes = 0;        ///< sum over groups
  bool groups_agree = true;  ///< within-group Agreement, every group
  std::uint64_t fingerprint = 0;  ///< ShardedService::fingerprint_fold

  std::uint64_t sessions = 0;
  std::uint64_t sent = 0;
  std::uint64_t redirects = 0;
  std::uint64_t retries = 0;
  std::uint64_t client_failed = 0;
};

/// Steady-state sharded trial at `offered_rate` aggregate requests/second.
/// The sharded analogue of run_trial: same seed derivation, same window
/// discipline, plus the per-group agreement audit.
inline ShardedTrialResult run_sharded_trial(const ShardedConfig& sc,
                                            double offered_rate) {
  const TrialConfig& tc = sc.base;
  const std::uint64_t trial_seed =
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate));
  simnet::Simulator sim(trial_seed);

  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  ShardedService svc(tc, cluster, net);

  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto routers = attach_router_clients(sc, cluster, svc, net, recorder,
                                       offered_rate, trial_seed,
                                       tc.warmup + tc.measure);

  const Time deadline = tc.warmup + tc.measure + tc.drain;
  if (tc.sim_threads > 1)
    sim.run_parallel_until(deadline);
  else
    sim.run_until(deadline);

  ShardedTrialResult res;
  res.agg = measure(*recorder, offered_rate);
  res.group_commits.resize(svc.num_groups());
  for (std::size_t g = 0; g < svc.num_groups(); ++g) {
    res.group_commits[g] = svc.group_committed(g);
    res.committed_writes += res.group_commits[g];
    res.groups_agree = res.groups_agree && svc.group_agrees(g);
  }
  res.fingerprint = svc.fingerprint_fold();
  for (const auto& r : routers) {
    res.sessions += r->sessions();
    res.sent += r->sent();
    res.redirects += r->redirects();
    res.retries += r->retries();
    res.client_failed += r->failed();
  }
  return res;
}

/// Storm targeting for a sharded fleet.
enum class ChaosScope {
  kFleet,     ///< one storm drawn over all servers (cross-group blast radius)
  kPerGroup,  ///< one independent storm per group, derived seeds, merged —
              ///< every group gets its own faults at the configured
              ///< intensity (the blast radius applies per group)
};

struct ShardedChaosResult {
  Measurement before, storm, after;
  std::uint64_t fault_events = 0;

  // Per-group audit verdicts — MUST all be zero for a correct system.
  std::uint64_t violations = 0;  ///< sum over groups
  std::vector<std::uint64_t> group_violations;
  std::vector<AuditViolation> violation_details;  ///< capped sample

  std::uint64_t acked_writes = 0;
  std::uint64_t observed_reads = 0;
  std::uint64_t committed_writes = 0;  ///< sum of per-group maxima
  std::uint64_t client_failed = 0;
  std::uint64_t redirects = 0;
  std::uint64_t retries = 0;

  bool recovered = false;
  Time recovery_ns = -1;
};

/// One seeded storm against a sharded deployment, with one HistoryAuditor
/// per group running continuously. Pure function of (config, intensity,
/// timing, rate, scope) — the sharded analogue of run_chaos_trial.
inline ShardedChaosResult run_sharded_chaos_trial(const ShardedConfig& sc,
                                                  const ChaosIntensity& ci,
                                                  const FaultTiming& ft,
                                                  double offered_rate,
                                                  ChaosScope scope) {
  const TrialConfig& tc = sc.base;
  const std::uint64_t trial_seed = derive_seed(
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate)),
      chaos_salt(ci.name));
  simnet::Simulator sim(trial_seed);

  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  ShardedService svc(tc, cluster, net);

  auto recorder = std::make_shared<ChaosRecorder>(ft);
  auto routers = attach_router_clients(sc, cluster, svc, net, recorder,
                                       offered_rate, trial_seed, ft.end_at);

  // One auditor per group: commits via the group service, completions
  // demultiplexed by serving server's owning group. Cross-group order is
  // undefined by construction, so that is the strongest sound audit.
  AuditConfig ac;
  ac.ordered = tc.system != System::kEPaxos;
  std::vector<std::unique_ptr<HistoryAuditor>> auditors;
  auditors.reserve(svc.num_groups());
  for (std::size_t g = 0; g < svc.num_groups(); ++g) {
    auditors.push_back(std::make_unique<HistoryAuditor>(
        ac, svc.group(g).num_servers()));
    auditors.back()->attach_service(svc.group(g), sim, ft.warmup,
                                    ft.end_at + ft.drain);
  }
  for (std::size_t mi = 0; mi < routers.size(); ++mi)
    routers[mi]->on_reply = [&svc, &auditors, &sim, mi](
                                NodeId server, const kv::Completion& c) {
      const auto [g, local] = svc.locate(server);
      auditors[g]->note_reply(mi, local, c, sim.now());
    };

  // The storm(s): fleet scope draws one schedule over all servers;
  // per-group scope derives an independent seed per group and merges.
  simnet::ChaosConfig cc;
  cc.start = ft.fault_at;
  cc.end = ft.heal_at;
  cc.events_per_s = ci.events_per_s;
  cc.max_down = ci.max_down;
  cc.max_severed = ci.max_severed;
  cc.min_heal = ci.min_heal;
  cc.mean_extra = ci.mean_extra;
  const std::uint64_t storm_seed = derive_seed(trial_seed, 0xc4a0c5ULL);
  simnet::FaultSchedule storm;
  if (scope == ChaosScope::kFleet) {
    simnet::ChaosScheduleGenerator gen(storm_seed);
    storm = gen.generate(cc, cluster.servers);
  } else {
    for (std::size_t g = 0; g < svc.num_groups(); ++g) {
      simnet::ChaosScheduleGenerator gen(derive_seed(storm_seed, g));
      storm.merge(gen.generate(cc, svc.group_servers()[g]));
    }
  }
  // Tolerate mode: like run_chaos_trial, Canopus nodes darkening over the
  // storm is the documented design trade under measurement.
  arm_sharded(storm, net, svc, RecoverArming::kTolerateUnsupported);

  if (tc.sim_threads > 1)
    sim.run_parallel_until(ft.end_at + ft.drain);
  else
    sim.run_until(ft.end_at + ft.drain);

  ShardedChaosResult res;
  res.fault_events = storm.events().size() / 2;
  res.before = measure(recorder->before(), offered_rate);
  res.storm = measure(recorder->during(), offered_rate);
  res.after = measure(recorder->after(), offered_rate);
  res.group_violations.resize(svc.num_groups());
  for (std::size_t g = 0; g < svc.num_groups(); ++g) {
    auditors[g]->finalize(sim.now());
    res.group_violations[g] = auditors[g]->violation_count();
    res.violations += res.group_violations[g];
    for (const AuditViolation& v : auditors[g]->violations())
      if (res.violation_details.size() < 64)
        res.violation_details.push_back(v);
    res.acked_writes += auditors[g]->acked_writes();
    res.observed_reads += auditors[g]->observed_reads();
    res.committed_writes += svc.group_committed(g);
  }
  for (const auto& r : routers) {
    res.client_failed += r->failed();
    res.redirects += r->redirects();
    res.retries += r->retries();
  }
  const Time first = recorder->first_post_storm_completion();
  res.recovered = first >= 0;
  res.recovery_ns = res.recovered ? first - ft.heal_at : -1;
  return res;
}

}  // namespace canopus::workload
