// RouterClient: the shard-aware client machine of a sharded deployment
// (workload/sharded.h).
//
// One RouterClient hosts many client *sessions* — up to the full
// million-client workload plane — with O(1) state per session: the only
// per-session storage is one 64-bit sequence cursor in a flat array. The
// arrival process stays the machine-level open-loop Poisson draw of
// OpenLoopClient (superposition: a Poisson stream split uniformly over S
// sessions gives S independent Poisson sessions), so scaling the session
// count changes request *attribution*, never the event count — a 10^6-
// session trial costs the same simulation work as a 1-session one.
//
// Routing: every request's key names its owning consensus group through
// shard_of_key (key_sampler.h) — the router's shard lookup is a pure
// function, there is no routing table to refresh. Within the owning group
// the router round-robins over the group's servers and REDIRECTS on crashed
// targets: a down server is skipped for the next live sibling (counted in
// redirects()). When the whole group is down the batch is retried with
// bounded exponential backoff (retry_backoff << attempt) and counted failed
// only after max_attempts dispatches — subsuming the old fail-at-submit
// client behavior with an honest retry story; retried requests keep their
// original arrival timestamps, so their latency includes the backoff the
// client actually waited.
//
// Determinism: the router draws only from its own per-machine RNG stream;
// redirect choices read Network::is_up, which changes only at fault events
// (control-lane barriers under the PDES kernel), so routed traffic is
// bit-identical across --threads and --sim-threads like every other client.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "kv/types.h"
#include "simnet/network.h"
#include "workload/key_sampler.h"
#include "workload/stats.h"

namespace canopus::workload {

struct RouterConfig {
  /// Server NodeIds per consensus group; group g owns the keys with
  /// shard_of_key(key, groups.size()) == g.
  std::vector<std::vector<NodeId>> groups;

  /// Client sessions hosted by this machine, at most 2^20. RequestId.client
  /// doubles as the reply routing address on every protocol's server side,
  /// so it must stay the machine's NodeId; session identity is packed into
  /// the sequence number instead — seq = session << 20 | counter — which
  /// keeps write ids ((client << 40) ^ seq, audit.h) unique fleet-wide as
  /// long as no single session issues 2^20 requests in one run.
  std::uint32_t sessions = 1;

  double rate_per_s = 1'000;  ///< machine-aggregate offered load
  double write_ratio = 0.2;
  std::uint64_t num_keys = 1'000'000;
  KeyDist key_dist = KeyDist::kUniform;
  double zipf_theta = 0.99;
  Time tick = 200 * kMicrosecond;
  Time stop_at = 0;

  /// Dispatch attempts per batch (1 initial + max_attempts-1 retries)
  /// before its requests are counted failed.
  int max_attempts = 4;
  /// Backoff before retry k is retry_backoff << (k-1).
  Time retry_backoff = 2 * kMillisecond;
};

class RouterClient : public simnet::Process {
 public:
  /// Session identity lives in RequestId.seq's upper bits (see
  /// RouterConfig::sessions): seq = session << kSessionShift | counter.
  static constexpr unsigned kSessionShift = 20;
  static constexpr std::uint32_t kMaxSessions = 1u << kSessionShift;

  RouterClient(RouterConfig cfg, std::shared_ptr<LatencyRecorder> rec,
               std::uint64_t seed)
      : cfg_(std::move(cfg)),
        rec_(std::move(rec)),
        rng_(seed),
        seq_(cfg_.sessions, 0),
        rr_(cfg_.groups.size(), 0) {
    if (cfg_.groups.empty())
      throw std::invalid_argument("RouterClient: no consensus groups");
    for (const auto& g : cfg_.groups)
      if (g.empty())
        throw std::invalid_argument("RouterClient: empty consensus group");
    if (cfg_.sessions == 0 || cfg_.sessions > kMaxSessions)
      throw std::invalid_argument(
          "RouterClient: sessions must be in [1, 2^20]");
    if (cfg_.key_dist == KeyDist::kZipfian)
      zipf_ = ZipfTable::get(cfg_.num_keys, cfg_.zipf_theta);
  }

  void on_start() override { tick(); }

  void on_message(const simnet::Message& m) override {
    const auto* rb = m.as<kv::ReplyBatch>();
    if (rb == nullptr) return;
    for (const kv::Completion& done : rb->done) {
      rec_->complete(sim().now(), done.arrival);
      if (on_reply) on_reply(m.src(), done);
    }
  }

  std::uint32_t sessions() const { return cfg_.sessions; }
  /// Requests actually handed to the network.
  std::uint64_t sent() const { return sent_; }
  /// Requests that exhausted every dispatch attempt (whole owning group
  /// down through max_attempts tries); reported via LatencyRecorder::fail.
  std::uint64_t failed() const { return failed_; }
  /// Down servers skipped for a live sibling at dispatch time.
  std::uint64_t redirects() const { return redirects_; }
  /// Batches deferred with backoff because their whole group was down.
  std::uint64_t retries() const { return retries_; }
  std::uint64_t generated() const { return sent_ + failed_; }

  /// Audit hook: every completion, with the server that served it.
  std::function<void(NodeId, const kv::Completion&)> on_reply;

 private:
  void tick() {
    if (cfg_.stop_at > 0 && sim().now() >= cfg_.stop_at) return;
    const double mean =
        cfg_.rate_per_s * static_cast<double>(cfg_.tick) / kSecond;
    const std::uint64_t n = poisson(mean);
    if (n > 0) {
      // One batch per owning group this tick. The per-tick vector is the
      // only allocation of the generation path and is independent of the
      // session count — the O(1)-per-client invariant the million-client
      // allocation test pins (tests/workload/million_client_test.cpp).
      std::vector<kv::ClientBatch> batches(cfg_.groups.size());
      const std::uint32_t num_groups =
          static_cast<std::uint32_t>(cfg_.groups.size());
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t session =
            static_cast<std::uint32_t>(rng_.below(cfg_.sessions));
        kv::Request r;
        r.id = {node_id(),
                (std::uint64_t{session} << kSessionShift) | seq_[session]++};
        r.is_write = rng_.uniform() < cfg_.write_ratio;
        r.key = zipf_ ? zipf_->draw(rng_) : rng_.below(cfg_.num_keys);
        r.value = rng_();
        r.arrival = sim().now() + static_cast<Time>(
                                      static_cast<double>(cfg_.tick) *
                                      (static_cast<double>(i) + 0.5) /
                                      static_cast<double>(n));
        batches[shard_of_key(r.key, num_groups)].reqs.push_back(r);
      }
      for (std::size_t g = 0; g < batches.size(); ++g) {
        if (batches[g].reqs.empty()) continue;
        dispatch(g, std::move(batches[g]), 1);
      }
    }
    after(cfg_.tick, [this] { tick(); });
  }

  /// Sends `batch` to a live server of group g, redirecting past crashed
  /// ones; schedules a backoff retry when the whole group is down.
  void dispatch(std::size_t g, kv::ClientBatch batch, int attempt) {
    const std::vector<NodeId>& servers = cfg_.groups[g];
    const std::uint64_t start = rr_[g];
    rr_[g] = (rr_[g] + 1) % servers.size();
    for (std::size_t k = 0; k < servers.size(); ++k) {
      const NodeId target = servers[(start + k) % servers.size()];
      if (!net().is_up(target)) continue;
      redirects_ += k;
      sent_ += batch.reqs.size();
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(target, bytes, std::move(batch));
      return;
    }
    if (attempt >= cfg_.max_attempts) {
      failed_ += batch.reqs.size();
      for (const kv::Request& r : batch.reqs) rec_->fail(r.arrival);
      return;
    }
    ++retries_;
    const Time backoff = cfg_.retry_backoff << (attempt - 1);
    after(backoff, [this, g, attempt, b = std::move(batch)]() mutable {
      dispatch(g, std::move(b), attempt + 1);
    });
  }

  std::uint64_t poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean < 32) {
      // Knuth's method.
      const double limit = std::exp(-mean);
      double p = 1.0;
      std::uint64_t k = 0;
      do {
        ++k;
        p *= rng_.uniform();
      } while (p > limit);
      return k - 1;
    }
    // Normal approximation for large means.
    const double u1 = std::max(rng_.uniform(), 1e-12);
    const double u2 = rng_.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = mean + std::sqrt(mean) * gauss;
    return v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

  RouterConfig cfg_;
  std::shared_ptr<LatencyRecorder> rec_;
  std::shared_ptr<const ZipfTable> zipf_;  ///< null for the uniform draw
  Rng rng_;
  std::vector<std::uint64_t> seq_;  ///< the flat per-session cursor array —
                                    ///< ALL per-session state (8 B each)
  std::vector<std::uint64_t> rr_;   ///< per-group round-robin offset
  std::uint64_t sent_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t redirects_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace canopus::workload
