// Experiment driver helpers implementing the paper's methodology (§8.1):
// "We determine the throughput of a system by increasing the request
//  inter-arrival rate until the throughput reaches a plateau ... our
//  experiments run until the request completion time is above 10 ms and we
//  use the last data point as the throughput result."
#pragma once

#include <functional>
#include <vector>

#include "workload/stats.h"

namespace canopus::workload {

struct Measurement {
  double offered = 0;      ///< offered load, requests/second (all clients)
  double throughput = 0;   ///< completed requests/second in the window
  Time median = 0;
  Time p99 = 0;
  double mean = 0;
  std::uint64_t completed = 0;
};

inline Measurement measure(const LatencyRecorder& rec, double offered) {
  Measurement m;
  m.offered = offered;
  m.throughput = rec.throughput();
  m.median = rec.histogram().median();
  m.p99 = rec.histogram().percentile(0.99);
  m.mean = rec.histogram().mean();
  m.completed = rec.completed();
  return m;
}

/// A trial runs one fresh simulation at the given total offered rate and
/// returns its measurement.
using TrialFn = std::function<Measurement(double offered_rate)>;

struct SearchResult {
  Measurement max;                    ///< highest-throughput healthy point
  std::vector<Measurement> sweep;     ///< every point visited
};

/// Geometric rate ramp per the paper: raise the rate until the median
/// completion time crosses `latency_cap` (10 ms in §8.1) or throughput
/// stops improving; report the best healthy point.
inline SearchResult find_max_throughput(const TrialFn& trial,
                                        double start_rate,
                                        double growth = 1.4,
                                        Time latency_cap = 10 * kMillisecond,
                                        int max_steps = 20) {
  SearchResult out;
  double rate = start_rate;
  for (int i = 0; i < max_steps; ++i) {
    Measurement m = trial(rate);
    out.sweep.push_back(m);
    const bool healthy = m.median <= latency_cap && m.completed > 0;
    if (healthy && m.throughput > out.max.throughput) out.max = m;
    if (!healthy) break;
    // Saturation: completions fall well behind offered load.
    if (m.throughput < 0.7 * m.offered) break;
    rate *= growth;
  }
  return out;
}

/// Fixed-rate sweep for latency-vs-throughput curves (Figures 5 and 6).
inline std::vector<Measurement> sweep_rates(const TrialFn& trial,
                                            const std::vector<double>& rates) {
  std::vector<Measurement> out;
  out.reserve(rates.size());
  for (double r : rates) out.push_back(trial(r));
  return out;
}

}  // namespace canopus::workload
