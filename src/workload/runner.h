// Experiment driver helpers implementing the paper's methodology (§8.1):
// "We determine the throughput of a system by increasing the request
//  inter-arrival rate until the throughput reaches a plateau ... our
//  experiments run until the request completion time is above 10 ms and we
//  use the last data point as the throughput result."
#pragma once

#include <functional>
#include <vector>

#include "workload/stats.h"

namespace canopus::workload {

struct Measurement {
  double offered = 0;      ///< offered load, requests/second (all clients)
  double throughput = 0;   ///< completed requests/second in the window
  Time median = 0;
  Time p99 = 0;
  double mean = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< client-side submission failures (crashed
                             ///< target server); see LatencyRecorder::fail
};

inline Measurement measure(const LatencyRecorder& rec, double offered) {
  Measurement m;
  m.offered = offered;
  m.throughput = rec.throughput();
  m.median = rec.histogram().median();
  m.p99 = rec.histogram().percentile(0.99);
  m.mean = rec.histogram().mean();
  m.completed = rec.completed();
  m.failed = rec.failed();
  return m;
}

/// A trial runs one fresh simulation at the given total offered rate and
/// returns its measurement.
using TrialFn = std::function<Measurement(double offered_rate)>;

// Shared defaults of the serial and parallel (trial_pool.h) searches — one
// definition so the two overloads cannot silently diverge.
inline constexpr double kDefaultGrowth = 1.4;
inline constexpr Time kDefaultLatencyCap = 10 * kMillisecond;
inline constexpr int kDefaultMaxSteps = 20;
inline constexpr int kDefaultPlateauSteps = 3;

struct SearchResult {
  Measurement max;                    ///< highest-throughput healthy point
  std::vector<Measurement> sweep;     ///< every point visited
};

namespace detail {

/// The stop rules of the paper's ramp, applied one measurement at a time so
/// the serial loop and the speculative parallel search share one definition
/// (and therefore produce bit-identical sweeps).
class SearchStepper {
 public:
  SearchStepper(Time latency_cap, int plateau_steps)
      : latency_cap_(latency_cap), plateau_steps_(plateau_steps) {}

  /// Folds in the next ramp point; returns true when the search must stop.
  bool step(const Measurement& m) {
    out.sweep.push_back(m);
    const bool healthy = m.median <= latency_cap_ && m.completed > 0;
    if (!healthy) return true;  // latency cap: the last point is kept in the
                                // sweep but never as the max
    if (m.throughput > out.max.throughput) {
      out.max = m;
      flat_ = 0;
    } else if (++flat_ >= plateau_steps_) {
      return true;  // plateau: K consecutive healthy steps without improvement
    }
    // Saturation: completions fall well behind offered load.
    return m.throughput < 0.7 * m.offered;
  }

  /// The exact rate schedule the serial loop visits (repeated
  /// multiplication, not pow(), so parallel evaluation sees identical bits).
  static std::vector<double> schedule(double start, double growth, int steps) {
    std::vector<double> rates;
    rates.reserve(static_cast<std::size_t>(steps > 0 ? steps : 0));
    double r = start;
    for (int i = 0; i < steps; ++i) {
      rates.push_back(r);
      r *= growth;
    }
    return rates;
  }

  SearchResult out;

 private:
  Time latency_cap_;
  int plateau_steps_;
  int flat_ = 0;
};

}  // namespace detail

/// Geometric rate ramp per the paper: raise the rate until the median
/// completion time crosses `latency_cap` (10 ms in §8.1) or the throughput
/// reaches a plateau — `plateau_steps` consecutive healthy steps without a
/// new best (§8.1 "until the throughput reaches a plateau"); report the
/// best healthy point.
inline SearchResult find_max_throughput(const TrialFn& trial,
                                        double start_rate,
                                        double growth = kDefaultGrowth,
                                        Time latency_cap = kDefaultLatencyCap,
                                        int max_steps = kDefaultMaxSteps,
                                        int plateau_steps = kDefaultPlateauSteps) {
  detail::SearchStepper stepper(latency_cap, plateau_steps);
  for (double rate :
       detail::SearchStepper::schedule(start_rate, growth, max_steps))
    if (stepper.step(trial(rate))) break;
  return std::move(stepper.out);
}

/// Fixed-rate sweep for latency-vs-throughput curves (Figures 5 and 6).
inline std::vector<Measurement> sweep_rates(const TrialFn& trial,
                                            const std::vector<double>& rates) {
  std::vector<Measurement> out;
  out.reserve(rates.size());
  for (double r : rates) out.push_back(trial(r));
  return out;
}

}  // namespace canopus::workload
