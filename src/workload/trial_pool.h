// Thread-pool trial runner for the experiment harness.
//
// A trial is one fresh, seeded Simulator run (workload::run_trial): a pure
// function of its config and offered rate with no shared mutable state, so
// independent trials can execute on worker threads concurrently. The pool
// assigns results by index, which makes every parallel driver below
// bit-identical to its serial counterpart — the paper-figure sweeps are
// reproducible regardless of --threads.
//
// find_max_throughput parallelizes *speculatively*: the geometric rate
// schedule is known up front, so each wave of `threads` ramp points runs
// concurrently and the serial stop rules (latency cap, plateau, saturation)
// are then applied in ramp order, discarding any speculated points past the
// stop. The sweep returned is exactly the serial sweep.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "workload/runner.h"

namespace canopus::workload {

/// Fixed-size pool of persistent workers executing indexed task batches.
/// The calling thread participates as a worker, so TrialPool(1) runs
/// everything on the caller with no synchronization surprises.
class TrialPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (min 1).
  explicit TrialPool(unsigned threads = 0)
      : threads_(threads != 0 ? threads : default_threads()) {
    for (unsigned i = 1; i < threads_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~TrialPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  static unsigned default_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc != 0 ? hc : 1;
  }

  unsigned threads() const { return threads_; }

  /// Runs fn(0) ... fn(n-1), each exactly once, spread over the workers and
  /// the calling thread; returns when all have finished. Not reentrant: fn
  /// must not call run_indexed on the same pool. If any invocation throws,
  /// the first exception is rethrown here after the batch drains.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_ == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      n_ = n;
      next_ = 0;
      pending_ = n;
      error_ = nullptr;
      ++batch_;
    }
    work_cv_.notify_all();
    drain();
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  /// Claims and runs batch indices until none remain. Runs on workers and
  /// on the caller inside run_indexed.
  void drain() {
    for (;;) {
      const std::function<void(std::size_t)>* fn;
      std::size_t i;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (next_ >= n_) return;
        i = next_++;
        fn = fn_;
      }
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stop_ || batch_ != seen; });
        if (stop_) return;
        seen = batch_;
      }
      drain();
    }
  }

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t next_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t batch_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// Parallel fixed-rate sweep: same results as the serial sweep_rates, in the
/// same order. `trial` must be safe to invoke concurrently (run_trial is:
/// each call builds an isolated Simulator from a per-trial derived seed).
inline std::vector<Measurement> sweep_rates(TrialPool& pool,
                                            const TrialFn& trial,
                                            const std::vector<double>& rates) {
  std::vector<Measurement> out(rates.size());
  pool.run_indexed(rates.size(),
                   [&](std::size_t i) { out[i] = trial(rates[i]); });
  return out;
}

/// Parallel (speculative) version of find_max_throughput: evaluates the
/// geometric ramp in waves of `pool.threads()` concurrent trials, then
/// applies the stop rules in ramp order. Bit-identical to the serial search
/// — speculated points past the stop are discarded, never reported.
inline SearchResult find_max_throughput(TrialPool& pool, const TrialFn& trial,
                                        double start_rate,
                                        double growth = kDefaultGrowth,
                                        Time latency_cap = kDefaultLatencyCap,
                                        int max_steps = kDefaultMaxSteps,
                                        int plateau_steps = kDefaultPlateauSteps) {
  detail::SearchStepper stepper(latency_cap, plateau_steps);
  const std::vector<double> rates =
      detail::SearchStepper::schedule(start_rate, growth, max_steps);
  const std::size_t wave = pool.threads() > 0 ? pool.threads() : 1;
  for (std::size_t base = 0; base < rates.size(); base += wave) {
    const std::size_t n = std::min(wave, rates.size() - base);
    std::vector<Measurement> ms(n);
    pool.run_indexed(
        n, [&](std::size_t j) { ms[j] = trial(rates[base + j]); });
    for (std::size_t j = 0; j < n; ++j)
      if (stepper.step(ms[j])) return std::move(stepper.out);
  }
  return std::move(stepper.out);
}

}  // namespace canopus::workload
