// Open-loop Poisson clients (paper §8.1 "clients send requests to nodes
// according to a Poisson process at a given inter-arrival rate").
//
// Arrivals are aggregated per sub-millisecond tick into one ClientBatch
// message so simulating millions of requests per second stays tractable;
// each request keeps its exact arrival timestamp for latency measurement.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>

#include "common/rng.h"
#include "kv/types.h"
#include "simnet/network.h"
#include "workload/key_sampler.h"
#include "workload/stats.h"

namespace canopus::workload {

struct ClientConfig {
  /// Servers this client machine's sessions connect to. The paper's
  /// clients each pick a uniform same-rack node; a machine aggregates many
  /// client sessions, so its load is spread round-robin over all of them.
  std::vector<NodeId> servers;
  double rate_per_s = 1'000;         ///< offered load (requests/second)
  double write_ratio = 0.2;          ///< paper default workload: 20% writes
  std::uint64_t num_keys = 1'000'000;  ///< key space size (§8.1: 1M keys)
  /// Key popularity: uniform (the paper's workload, the historical RNG
  /// stream) or Zipfian with exponent `zipf_theta` (key_sampler.h).
  KeyDist key_dist = KeyDist::kUniform;
  double zipf_theta = 0.99;          ///< YCSB's default skew
  Time tick = 200 * kMicrosecond;    ///< arrival aggregation granularity
  Time stop_at = 0;                  ///< stop generating at this time
};

class OpenLoopClient : public simnet::Process {
 public:
  OpenLoopClient(ClientConfig cfg, std::shared_ptr<LatencyRecorder> rec,
                 std::uint64_t seed)
      : cfg_(std::move(cfg)), rec_(std::move(rec)), rng_(seed) {
    // tick() round-robins batches over cfg_.servers; an empty server list
    // would divide by zero there, so fail loudly at construction instead.
    if (cfg_.servers.empty())
      throw std::invalid_argument(
          "OpenLoopClient: ClientConfig.servers must be non-empty");
    if (cfg_.key_dist == KeyDist::kZipfian)
      zipf_ = ZipfTable::get(cfg_.num_keys, cfg_.zipf_theta);
  }

  void on_start() override { tick(); }

  void on_message(const simnet::Message& m) override {
    const auto* rb = m.as<kv::ReplyBatch>();
    if (rb == nullptr) return;
    for (const kv::Completion& done : rb->done) {
      rec_->complete(sim().now(), done.arrival);
      if (on_reply) on_reply(m.src(), done);
    }
  }

  /// Requests actually handed to the network.
  std::uint64_t sent() const { return sent_; }
  /// Requests counted as failed at submission time because their target
  /// server was crashed (they are NOT sent — the network would only
  /// black-hole them — and are reported through LatencyRecorder::fail so
  /// availability numbers under faults stay honest).
  std::uint64_t failed() const { return failed_; }
  /// Every request this client generated (sent + failed-at-submit).
  std::uint64_t generated() const { return sent_ + failed_; }

  /// Optional audit hook: fired for every completion the client observes,
  /// with the server that sent the reply (workload/audit.h wires this).
  std::function<void(NodeId, const kv::Completion&)> on_reply;

 private:
  void tick() {
    if (cfg_.stop_at > 0 && sim().now() >= cfg_.stop_at) return;
    const double mean =
        cfg_.rate_per_s * static_cast<double>(cfg_.tick) / kSecond;
    const std::uint64_t n = poisson(mean);
    if (n > 0) {
      // One batch per target server; requests round-robin across servers
      // with a rotating offset so each server sees the full key/op mix.
      std::vector<kv::ClientBatch> batches(cfg_.servers.size());
      for (std::uint64_t i = 0; i < n; ++i) {
        kv::Request r;
        r.id = {node_id(), seq_++};
        r.is_write = rng_.uniform() < cfg_.write_ratio;
        // Both distributions consume one RNG draw; the uniform branch is
        // the historical stream (seeded goldens pin it byte-for-byte).
        r.key = zipf_ ? zipf_->draw(rng_) : rng_.below(cfg_.num_keys);
        r.value = rng_();
        // Arrival uniform within the tick; order within the batch is the
        // client's submission order, so timestamps must be sorted.
        r.arrival = sim().now() + static_cast<Time>(
                                      static_cast<double>(cfg_.tick) *
                                      (static_cast<double>(i) + 0.5) /
                                      static_cast<double>(n));
        batches[(rotate_ + i) % batches.size()].reqs.push_back(r);
      }
      rotate_ = (rotate_ + n) % batches.size();
      for (std::size_t s = 0; s < batches.size(); ++s) {
        if (batches[s].reqs.empty()) continue;
        if (!net().is_up(cfg_.servers[s])) {
          // The target is crashed: the network would silently drop the
          // batch. Count every request as failed instead of black-holing
          // it, so fault benches can tell "the system was slow" apart from
          // "the client's server was dead".
          failed_ += batches[s].reqs.size();
          for (const kv::Request& r : batches[s].reqs) rec_->fail(r.arrival);
          continue;
        }
        sent_ += batches[s].reqs.size();
        // Size before move: argument evaluation order is unspecified.
        const std::size_t bytes = batches[s].wire_bytes();
        send(cfg_.servers[s], bytes, std::move(batches[s]));
      }
    }
    after(cfg_.tick, [this] { tick(); });
  }

  std::uint64_t poisson(double mean) {
    if (mean <= 0) return 0;
    if (mean < 32) {
      // Knuth's method.
      const double limit = std::exp(-mean);
      double p = 1.0;
      std::uint64_t k = 0;
      do {
        ++k;
        p *= rng_.uniform();
      } while (p > limit);
      return k - 1;
    }
    // Normal approximation for large means.
    const double u1 = std::max(rng_.uniform(), 1e-12);
    const double u2 = rng_.uniform();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = mean + std::sqrt(mean) * gauss;
    return v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

  ClientConfig cfg_;
  std::shared_ptr<LatencyRecorder> rec_;
  std::shared_ptr<const ZipfTable> zipf_;  ///< null for the uniform draw
  Rng rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rotate_ = 0;
};

}  // namespace canopus::workload
