// Key-popularity samplers and the keyspace partition function for sharded
// deployments.
//
// Two key distributions drive the workload plane (ClientConfig::key_dist):
//  * kUniform — the paper's §8.1 workload: keys drawn uniformly from
//    [0, num_keys). This is the historical draw (Rng::below) and its RNG
//    consumption is left byte-identical so seeded goldens stay pinned.
//  * kZipfian — skewed popularity: key k is the k-th most popular, with
//    P(k) ∝ 1/(k+1)^theta. Sampling uses the bounded-Zipf inversion of
//    Gray et al. ("Quickly generating billion-record synthetic databases",
//    SIGMOD '94), the same scheme YCSB ships: one uniform draw plus O(1)
//    arithmetic per sample, after a one-time O(n) zeta-constant precompute.
//
// Determinism: a sample is a pure function of (table constants, one
// Rng::uniform() draw). The constants are a pure function of (n, theta) —
// summed in a fixed order — so runs are bit-identical across trial threads
// and PDES shard maps; like the simulator's exponential/normal draws they
// go through libm, which pins them per-platform (the documented caveat for
// cross-platform baseline comparison).
//
// shard_of_key is the ONE keyspace partition function of the sharded
// service (workload/sharded.h) and its router clients: a mixed hash of the
// key modulo the group count. The mix (splitmix64 finalizer) decorrelates
// group choice from Zipf rank order — raw `rank % groups` would stripe the
// hottest keys over groups in lockstep, hiding exactly the hot-group
// imbalance a skewed-popularity benchmark exists to show.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/rng.h"

namespace canopus::workload {

/// Which popularity distribution a client draws keys from.
enum class KeyDist { kUniform, kZipfian };

inline const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipfian: return "zipfian";
  }
  return "?";
}

/// Keyspace partition: the consensus group owning `key` in an
/// `num_groups`-way sharded deployment. Pure function — every router
/// client, test and bench agrees on ownership by construction.
inline std::uint32_t shard_of_key(std::uint64_t key,
                                  std::uint32_t num_groups) {
  std::uint64_t s = key;
  return static_cast<std::uint32_t>(splitmix64(s) % num_groups);
}

/// Precomputed constants for bounded-Zipf inversion over n keys with
/// exponent theta in (0, 1). Immutable after construction; one table is
/// shared (shared_ptr<const>) by every client of a trial — and, via get(),
/// by every trial with the same (n, theta) — so a million sessions carry
/// zero per-session sampler state.
class ZipfTable {
 public:
  ZipfTable(std::uint64_t n, double theta)
      : n_(n), theta_(theta), zetan_(zeta(n, theta)) {
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
    half_pow_theta_ = 1.0 + std::pow(0.5, theta);
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Draws a key rank in [0, n): rank 0 is the most popular key. Consumes
  /// exactly one Rng::uniform() draw.
  std::uint64_t draw(Rng& rng) const {
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < half_pow_theta_) return 1;
    const std::uint64_t k = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;  // FP edge: clamp into range
  }

  /// Exact probability of rank k under the distribution (test oracle for
  /// the chi-square check).
  double pmf(std::uint64_t k) const {
    return std::pow(static_cast<double>(k + 1), -theta_) / zetan_;
  }

  /// Process-wide table cache: zeta(n) is an O(n) sum (tens of ms at the
  /// paper's 1M-key space), far too hot to redo per client machine, and a
  /// pure function of (n, theta) — so sharing across trials and trial-pool
  /// threads cannot couple their results.
  static std::shared_ptr<const ZipfTable> get(std::uint64_t n, double theta) {
    static std::mutex mu;
    static std::map<std::pair<std::uint64_t, std::uint64_t>,
                    std::shared_ptr<const ZipfTable>>
        cache;
    const auto key = std::make_pair(
        n, std::bit_cast<std::uint64_t>(theta));
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = cache[key];
    if (!slot) slot = std::make_shared<const ZipfTable>(n, theta);
    return slot;
  }

 private:
  /// Generalized harmonic number H_{n,theta}, summed in fixed index order
  /// (determinism: FP addition is not associative).
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += std::pow(static_cast<double>(i), -theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace canopus::workload
