// Chaos trial runner: one seeded storm against one consensus system, with
// the invariant audit plane (workload/audit.h) running continuously.
//
// A chaos trial is the composition of the three deployment pieces every
// driver shares (build_cluster / make_service / attach_clients), a
// simnet::ChaosScheduleGenerator storm armed through the service (crash and
// recover silence/restart the protocol instance together with the network),
// and a HistoryAuditor wired into every commit and every client completion.
// The result is a pure function of (TrialConfig, ChaosIntensity,
// FaultTiming, offered rate) — independent of threads or run order — so
// bench_chaos sweeps (system x seed x intensity) on the TrialPool and stays
// bit-identical to a serial run, and a violating grid point replays from
// its coordinates alone.
//
// Phases reuse the FaultTiming vocabulary of the scenario runner:
// before = [warmup, fault_at), storm = [fault_at, heal_at),
// after = [heal_at, end_at), then `drain` for repair traffic to converge
// before the auditor's final checks.
#pragma once

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "simnet/chaos.h"
#include "workload/audit.h"
#include "workload/deployments.h"
#include "workload/fault_scenario.h"

namespace canopus::workload {

/// One point on the storm-intensity axis. The trailing weights select the
/// fault palette (simnet::ChaosConfig): the classic fail-stop kinds default
/// on, the gray kinds default off, so pre-gray intensity literals mean what
/// they always did.
struct ChaosIntensity {
  std::string name;
  double events_per_s = 10.0;  ///< mean fault injections per second
  int max_down = 1;            ///< blast radius: concurrent crashed nodes
  int max_severed = 2;         ///< blast radius: concurrent severed pairs
  Time min_heal = 120 * kMillisecond;
  Time mean_extra = 200 * kMillisecond;

  double crash_weight = 1.0;
  double sever_weight = 1.0;
  double cpu_weight = 0;      ///< gray: degraded-CPU nodes
  double flap_weight = 0;     ///< gray: flapping links
  double dup_weight = 0;      ///< gray: message duplication
  double reorder_weight = 0;  ///< gray: bounded delivery reordering
  double skew_weight = 0;     ///< gray: clock skew on timer arming
};

/// The standard intensity grid. The blast radius never exceeds a minority
/// of a 3-node group *at once*, but repeated crashes can darken more nodes
/// over a storm's lifetime for systems without a rejoin path (Canopus), so
/// high intensities are expected to cost availability — never safety.
inline std::vector<ChaosIntensity> standard_intensities() {
  return {
      {"low", 4.0, 1, 1, 150 * kMillisecond, 250 * kMillisecond},
      {"medium", 10.0, 2, 2, 120 * kMillisecond, 200 * kMillisecond},
      {"high", 25.0, 2, 4, 100 * kMillisecond, 150 * kMillisecond},
  };
}

/// The gray-failure axis: one pure storm per gray kind (crash/sever off,
/// exactly one gray weight on), so a violation or a digest drift points at
/// a single fault primitive. Rates are moderate — gray faults overlap
/// (flap + skew on one node is legal), the per-kind caps bound each kind.
inline std::vector<ChaosIntensity> gray_intensities() {
  std::vector<ChaosIntensity> out;
  const char* names[] = {"gray-cpu", "gray-flap", "gray-dup", "gray-reorder",
                         "gray-skew"};
  for (int k = 0; k < 5; ++k) {
    ChaosIntensity ci;
    ci.name = names[k];
    ci.events_per_s = 8.0;
    ci.min_heal = 150 * kMillisecond;
    ci.mean_extra = 200 * kMillisecond;
    ci.crash_weight = 0;
    ci.sever_weight = 0;
    (k == 0   ? ci.cpu_weight
     : k == 1 ? ci.flap_weight
     : k == 2 ? ci.dup_weight
     : k == 3 ? ci.reorder_weight
              : ci.skew_weight) = 1.0;
    out.push_back(std::move(ci));
  }
  // The composite: the whole palette at once, classic kinds included.
  ChaosIntensity mix;
  mix.name = "gray-mix";
  mix.events_per_s = 12.0;
  mix.min_heal = 120 * kMillisecond;
  mix.mean_extra = 180 * kMillisecond;
  mix.cpu_weight = mix.flap_weight = mix.dup_weight = mix.reorder_weight =
      mix.skew_weight = 1.0;
  out.push_back(std::move(mix));
  return out;
}

/// Chaos-plane tuning on top of fault_tuned. Storms produce long random
/// downtimes (not one scripted outage); a member that falls outside Zab's
/// history ring or EPaxos' repair ring is repaired by snapshot transfer, so
/// the windows stay at production-scale defaults instead of the historical
/// inflation (16'384-deep rings) that hid the missing state-transfer path
/// by making retained memory grow with downtime.
inline TrialConfig chaos_tuned(TrialConfig tc) { return fault_tuned(tc); }

/// PhasedRecorder that additionally pins the first completion of a request
/// that ARRIVED after the storm ended — the client-observed recovery probe.
class ChaosRecorder final : public PhasedRecorder {
 public:
  explicit ChaosRecorder(const FaultTiming& ft)
      : PhasedRecorder(ft), storm_end_(ft.heal_at) {}

  /// Completion time of the first post-storm arrival; -1 if none completed.
  Time first_post_storm_completion() const { return first_after_; }

 protected:
  void on_complete(Time now, Time arrival) override {
    PhasedRecorder::on_complete(now, arrival);
    // Min over qualifying completions (not first-seen): shard workers may
    // deliver same-phase completions in any order, and min() is the unique
    // order-independent formulation that matches the serial answer.
    if (arrival >= storm_end_ && (first_after_ < 0 || now < first_after_))
      first_after_ = now;
  }

 private:
  Time storm_end_;
  Time first_after_ = -1;
};

struct ChaosResult {
  std::string system;
  std::string intensity;
  std::uint64_t seed = 0;          ///< tc.seed (the sweep coordinate)
  std::uint64_t fault_events = 0;  ///< storm size (schedule entries / 2)

  Measurement before, storm, after;

  // Audit verdict — MUST be zero for a correct system.
  std::uint64_t violations = 0;
  std::vector<AuditViolation> violation_details;  ///< capped sample

  // Audit-plane observability.
  std::uint64_t acked_writes = 0;
  std::uint64_t observed_reads = 0;
  std::uint64_t committed_writes = 0;  ///< max over comparable nodes
  std::uint64_t commit_spread = 0;     ///< max - min over comparable nodes;
                                       ///< prefix lag, not a violation
                                       ///< (gates only via the auditor)
  std::uint64_t fingerprint = 0;  ///< commit fingerprint of the first
                                  ///< comparable node (golden pinning)
  std::size_t comparable_nodes = 0;
  std::uint64_t client_failed = 0;  ///< requests failed at submission
                                    ///< (crashed target server)

  /// Client-observed recovery: time from storm end to the first completion
  /// of a post-storm arrival. recovered == false when the system never
  /// served another request (e.g. Canopus after losing a super-leaf
  /// majority across the storm — a documented stall, not a violation).
  bool recovered = false;
  Time recovery_ns = -1;

  /// Compaction/state-transfer observability (see ScenarioResult).
  std::uint64_t snapshots_installed = 0;
  std::uint64_t max_log_retained = 0;
  bool retention_ok = true;
};

/// Portable 64-bit FNV-1a (std::hash<std::string> is stdlib-specific; seed
/// derivation must be identical on every platform for committed baselines).
inline std::uint64_t chaos_salt(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The trial's root seed: a pure function of the sweep coordinates, shared
/// by run_chaos_trial and the out-of-band storm reconstruction below so a
/// minimizer probe replays the exact storm of a red grid point.
inline std::uint64_t chaos_trial_seed(const TrialConfig& tc,
                                      const ChaosIntensity& ci,
                                      double offered_rate) {
  return derive_seed(
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate)),
      chaos_salt(ci.name));
}

/// Maps an intensity point onto the generator config for one storm window.
inline simnet::ChaosConfig chaos_config_for(const ChaosIntensity& ci,
                                            const FaultTiming& ft) {
  simnet::ChaosConfig cc;
  cc.start = ft.fault_at;
  cc.end = ft.heal_at;
  cc.events_per_s = ci.events_per_s;
  cc.max_down = ci.max_down;
  cc.max_severed = ci.max_severed;
  cc.min_heal = ci.min_heal;
  cc.mean_extra = ci.mean_extra;
  cc.crash_weight = ci.crash_weight;
  cc.sever_weight = ci.sever_weight;
  cc.cpu_weight = ci.cpu_weight;
  cc.flap_weight = ci.flap_weight;
  cc.dup_weight = ci.dup_weight;
  cc.reorder_weight = ci.reorder_weight;
  cc.skew_weight = ci.skew_weight;
  return cc;
}

/// Reconstructs the exact storm a grid point would draw, without running
/// the trial — the starting point for StormMinimizer.
inline simnet::FaultSchedule chaos_storm(const TrialConfig& tc,
                                         const ChaosIntensity& ci,
                                         const FaultTiming& ft,
                                         double offered_rate) {
  const simnet::Cluster cluster = build_cluster(tc);
  simnet::ChaosScheduleGenerator gen(
      derive_seed(chaos_trial_seed(tc, ci, offered_rate), 0xc4a0c5ULL));
  return gen.generate(chaos_config_for(ci, ft), cluster.servers);
}

/// Runs one chaos trial. When `storm_override` is non-null the trial arms
/// that schedule verbatim instead of drawing one — everything else (seeds,
/// clients, audit plane) is identical, which is what lets the minimizer
/// probe candidate sub-storms against the same workload.
inline ChaosResult run_chaos_trial(
    const TrialConfig& tc, const ChaosIntensity& ci, const FaultTiming& ft,
    double offered_rate,
    const simnet::FaultSchedule* storm_override = nullptr) {
  const std::uint64_t trial_seed = chaos_trial_seed(tc, ci, offered_rate);
  simnet::Simulator sim(trial_seed);

  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, net);

  auto recorder = std::make_shared<ChaosRecorder>(ft);
  auto clients = attach_clients(tc, cluster, net, recorder, offered_rate,
                                trial_seed, ft.end_at);

  // The audit plane listens from the very first commit and probes prefix
  // agreement continuously through storm and drain.
  AuditConfig ac;
  ac.ordered = tc.system != System::kEPaxos;
  HistoryAuditor auditor(ac, service->num_servers());
  auditor.attach(*service, clients, sim, ft.warmup, ft.end_at + ft.drain);

  // The storm: drawn from its own derived seed, armed through the service.
  simnet::FaultSchedule drawn;
  if (storm_override == nullptr) {
    simnet::ChaosScheduleGenerator gen(derive_seed(trial_seed, 0xc4a0c5ULL));
    drawn = gen.generate(chaos_config_for(ci, ft), cluster.servers);
  }
  const simnet::FaultSchedule& storm =
      storm_override != nullptr ? *storm_override : drawn;
  // Tolerate mode: every system now has a repair path (snapshot transfer /
  // sponsored rejoin), but hand-rolled configs may disable one — a storm
  // against such a config measures the degraded outcome rather than
  // refusing to run.
  arm_via_service(storm, net, *service,
                  RecoverArming::kTolerateUnsupported);

  if (tc.sim_threads > 1)
    sim.run_parallel_until(ft.end_at + ft.drain);
  else
    sim.run_until(ft.end_at + ft.drain);
  auditor.finalize(sim.now());

  ChaosResult res;
  res.system = service->name();
  res.intensity = ci.name;
  res.seed = tc.seed;
  res.fault_events = storm.events().size() / 2;
  res.before = measure(recorder->before(), offered_rate);
  res.storm = measure(recorder->during(), offered_rate);
  res.after = measure(recorder->after(), offered_rate);
  res.violations = auditor.violation_count();
  res.violation_details = auditor.violations();
  res.acked_writes = auditor.acked_writes();
  res.observed_reads = auditor.observed_reads();
  std::uint64_t min_committed = 0;
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    if (!service->comparable(i)) continue;
    const std::uint64_t committed = auditor.committed_writes(i);
    if (res.comparable_nodes == 0) {
      res.fingerprint = service->commit_fingerprint(i);
      min_committed = committed;
    }
    ++res.comparable_nodes;
    res.committed_writes = std::max(res.committed_writes, committed);
    min_committed = std::min(min_committed, committed);
  }
  if (res.comparable_nodes > 0)
    res.commit_spread = res.committed_writes - min_committed;
  for (const auto& c : clients) res.client_failed += c->failed();
  const Time first = recorder->first_post_storm_completion();
  res.recovered = first >= 0;
  res.recovery_ns = res.recovered ? first - ft.heal_at : -1;
  const std::uint64_t bound = retained_log_bound(tc);
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    res.snapshots_installed += service->snapshots_installed(i);
    if (service->up(i))
      res.max_log_retained =
          std::max(res.max_log_retained, service->log_entries_retained(i));
  }
  res.retention_ok = res.max_log_retained <= bound;
  return res;
}

}  // namespace canopus::workload
