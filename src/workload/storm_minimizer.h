// StormMinimizer: ddmin delta debugging over chaos storms (DESIGN.md §13).
//
// A red chaos grid point hands the operator a storm of dozens of
// fault/repair pairs, almost all of which are noise. The minimizer shrinks
// it to a locally-minimal sub-storm that still trips an oracle (normally
// "run_chaos_trial with this schedule override reports violations"), in
// two passes:
//
//  1. Event-subset removal — classic ddmin (Zeller & Hildebrandt) over
//     *units*, where a unit is a fault together with its matching repair
//     (removing a crash but keeping its recover would probe schedules the
//     generator can never emit). Try n subsets, then their complements;
//     on success recurse into the smaller schedule, otherwise double the
//     granularity. The result is 1-minimal at unit granularity: removing
//     any single remaining unit makes the violation vanish.
//  2. Duration shrinking — for each surviving unit, repeatedly halve the
//     repair's distance from its fault (floored at `min_duration`) while
//     the oracle still fires. Runs after removal on purpose: shorter
//     faults are weaker, so shrinking first would mask removable units.
//
// Probes are full deterministic trials, so the whole reduction is itself
// deterministic: same storm + same oracle => same minimal schedule. The
// minimal storm serializes as a replayable JSON artifact
// (canopus-storm-v1) that bench_chaos --minimize emits and
// tools/validate_bench_json.py checks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "simnet/fault_schedule.h"

namespace canopus::workload {

struct MinimizeOptions {
  /// Probe budget across both passes; each probe is one oracle call (one
  /// full trial for the real oracle). ddmin on a k-unit storm needs
  /// O(k log k) probes when most units are noise, worst-case O(k^2).
  std::size_t max_probes = 400;
  bool shrink_durations = true;
  /// Floor on fault duration during shrinking (also the shrink
  /// granularity: a pass stops once the fault->repair gap reaches it).
  Time min_duration = kMillisecond;
};

struct MinimizeResult {
  /// False when the oracle rejected the *full* storm — nothing to
  /// minimize (the caller's grid point was green, or the oracle is
  /// mis-wired). `minimal` then holds the untouched input.
  bool reproduced = false;
  simnet::FaultSchedule minimal;
  std::size_t original_events = 0;
  std::size_t minimal_events = 0;
  std::size_t probes = 0;           ///< oracle calls actually spent
  std::size_t duration_shrinks = 0; ///< accepted repair-time halvings
};

class StormMinimizer {
 public:
  /// Returns true when the candidate schedule still reproduces the
  /// failure. Must be deterministic and must not retain the reference.
  using Oracle = std::function<bool(const simnet::FaultSchedule&)>;

  explicit StormMinimizer(Oracle oracle, MinimizeOptions opt = {})
      : oracle_(std::move(oracle)), opt_(opt) {}

  MinimizeResult minimize(const simnet::FaultSchedule& storm) {
    probes_ = 0;
    MinimizeResult res;
    res.original_events = storm.events().size();

    // `events` keeps the original (time-sorted) order; units hold indices
    // into it and rebuilds filter + re-sort, so candidate schedules are
    // exactly "the storm with some fault/repair pairs deleted".
    std::vector<simnet::FaultEvent> events = storm.events();
    std::vector<Unit> units = make_units(events);

    if (!probe(storm)) {
      res.minimal = storm;
      res.minimal_events = events.size();
      res.probes = probes_;
      return res;
    }
    res.reproduced = true;

    std::vector<std::size_t> kept = ddmin(events, units);
    if (opt_.shrink_durations)
      res.duration_shrinks = shrink(events, units, kept);

    const std::vector<simnet::FaultEvent> final_events =
        rebuild(events, units, kept);
    for (const simnet::FaultEvent& ev : final_events) res.minimal.add(ev);
    res.minimal_events = final_events.size();
    res.probes = probes_;
    return res;
  }

 private:
  /// One removable unit: the event indices of a fault and its matching
  /// repair. Unpaired events (a storm truncated by hand) become singleton
  /// units, so the minimizer still accepts them.
  struct Unit {
    std::vector<std::size_t> indices;
  };

  static bool is_start(simnet::FaultEvent::Kind k) {
    using K = simnet::FaultEvent::Kind;
    return k == K::kCrash || k == K::kSever || k == K::kCpuSlow ||
           k == K::kFlapStart || k == K::kDupStart || k == K::kReorderStart ||
           k == K::kSkewSet;
  }

  /// Pairing key: fault family + victim. A repair closes the OLDEST open
  /// start with its key (generator storms never nest same-key pairs, so
  /// this is exact for them).
  static std::uint64_t unit_key(const simnet::FaultEvent& ev) {
    using K = simnet::FaultEvent::Kind;
    int family = 0;
    bool pair = false;
    switch (ev.kind) {
      case K::kCrash: case K::kRecover: family = 0; break;
      case K::kSever: case K::kHeal: family = 1; pair = true; break;
      case K::kCpuSlow: case K::kCpuNormal: family = 2; break;
      case K::kFlapStart: case K::kFlapStop: family = 3; pair = true; break;
      case K::kDupStart: case K::kDupStop: family = 4; pair = true; break;
      case K::kReorderStart: case K::kReorderStop:
        family = 5; pair = true; break;
      case K::kSkewSet: case K::kSkewClear: family = 6; break;
    }
    const std::uint64_t b = pair ? ev.b : kInvalidNode;
    return (static_cast<std::uint64_t>(family) << 56) ^
           (static_cast<std::uint64_t>(ev.a) << 24) ^ b;
  }

  static std::vector<Unit> make_units(
      const std::vector<simnet::FaultEvent>& events) {
    std::vector<Unit> units;
    std::vector<std::pair<std::uint64_t, std::size_t>> open;  // key -> unit
    for (std::size_t i = 0; i < events.size(); ++i) {
      const std::uint64_t key = unit_key(events[i]);
      if (is_start(events[i].kind)) {
        units.push_back({{i}});
        open.emplace_back(key, units.size() - 1);
      } else {
        auto it = std::find_if(open.begin(), open.end(),
                               [key](const auto& o) { return o.first == key; });
        if (it != open.end()) {
          units[it->second].indices.push_back(i);
          open.erase(it);
        } else {
          units.push_back({{i}});
        }
      }
    }
    return units;
  }

  static std::vector<std::size_t> all_of(std::size_t n) {
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
    return v;
  }

  /// Filters the original event list down to the kept units and re-sorts
  /// by time (stable, so the generator's repairs-first tie order
  /// survives). Re-sorting matters once shrink() moves repair times.
  static std::vector<simnet::FaultEvent> rebuild(
      const std::vector<simnet::FaultEvent>& events,
      const std::vector<Unit>& units, const std::vector<std::size_t>& kept) {
    std::vector<char> keep(events.size(), 0);
    for (std::size_t u : kept)
      for (std::size_t i : units[u].indices) keep[i] = 1;
    std::vector<simnet::FaultEvent> out;
    for (std::size_t i = 0; i < events.size(); ++i)
      if (keep[i]) out.push_back(events[i]);
    std::stable_sort(out.begin(), out.end(),
                     [](const simnet::FaultEvent& x,
                        const simnet::FaultEvent& y) { return x.at < y.at; });
    return out;
  }

  bool probe(const simnet::FaultSchedule& candidate) {
    ++probes_;
    return oracle_(candidate);
  }

  bool probe_units(const std::vector<simnet::FaultEvent>& events,
                   const std::vector<Unit>& units,
                   const std::vector<std::size_t>& kept) {
    simnet::FaultSchedule candidate;
    for (const simnet::FaultEvent& ev : rebuild(events, units, kept))
      candidate.add(ev);
    return probe(candidate);
  }

  /// Classic ddmin over unit ids. Returns the kept (1-minimal) subset.
  std::vector<std::size_t> ddmin(const std::vector<simnet::FaultEvent>& events,
                                 const std::vector<Unit>& units) {
    std::vector<std::size_t> cur = all_of(units.size());
    std::size_t n = 2;
    while (cur.size() >= 2 && probes_ < opt_.max_probes) {
      const std::size_t len = cur.size();
      bool reduced = false;
      // Subsets: does one n-th of the storm already violate?
      for (std::size_t i = 0; i < n && !reduced; ++i) {
        if (probes_ >= opt_.max_probes) break;
        std::vector<std::size_t> sub(cur.begin() + (i * len) / n,
                                     cur.begin() + ((i + 1) * len) / n);
        if (sub.empty() || sub.size() == len) continue;
        if (probe_units(events, units, sub)) {
          cur = std::move(sub);
          n = 2;
          reduced = true;
        }
      }
      // Complements: can one n-th be removed? (At n == 2 a complement IS
      // the other subset, already probed above.)
      if (!reduced && n > 2) {
        for (std::size_t i = 0; i < n && !reduced; ++i) {
          if (probes_ >= opt_.max_probes) break;
          std::vector<std::size_t> rest(cur.begin(), cur.begin() + (i * len) / n);
          rest.insert(rest.end(), cur.begin() + ((i + 1) * len) / n, cur.end());
          if (rest.empty() || rest.size() == len) continue;
          if (probe_units(events, units, rest)) {
            cur = std::move(rest);
            n = n > 3 ? n - 1 : 2;
            reduced = true;
          }
        }
      }
      if (!reduced) {
        if (n >= cur.size()) break;  // 1-minimal at unit granularity
        n = std::min(n * 2, cur.size());
      }
    }
    return cur;
  }

  /// Halves each surviving fault's duration toward `min_duration` while
  /// the oracle still fires. Mutates repair times in `events` in place (the
  /// kept set is fixed by now). Returns accepted halvings.
  std::size_t shrink(std::vector<simnet::FaultEvent>& events,
                     const std::vector<Unit>& units,
                     const std::vector<std::size_t>& kept) {
    std::size_t accepted = 0;
    for (std::size_t u : kept) {
      if (units[u].indices.size() != 2) continue;
      std::size_t si = units[u].indices[0], ri = units[u].indices[1];
      if (!is_start(events[si].kind)) std::swap(si, ri);
      while (probes_ < opt_.max_probes) {
        const Time gap = events[ri].at - events[si].at;
        if (gap <= opt_.min_duration) break;
        const Time cand = events[si].at + std::max(opt_.min_duration, gap / 2);
        if (cand >= events[ri].at) break;
        const Time saved = events[ri].at;
        events[ri].at = cand;
        if (probe_units(events, units, kept)) {
          ++accepted;
        } else {
          events[ri].at = saved;
          break;
        }
      }
    }
    return accepted;
  }

  Oracle oracle_;
  MinimizeOptions opt_;
  std::size_t probes_ = 0;
};

/// Metadata stamped into the canopus-storm-v1 artifact: the grid
/// coordinates that replay the minimal storm, plus reduction stats.
struct StormJsonMeta {
  std::string system;
  std::string intensity;
  std::uint64_t seed = 0;
  double offered_rate = 0;
  bool reproduced = false;
  std::size_t original_events = 0;
  std::size_t probes = 0;
  std::size_t duration_shrinks = 0;
};

/// Inverts simnet::fault_kind_name. False when `name` is no fault kind.
inline bool fault_kind_parse(const std::string& name,
                             simnet::FaultEvent::Kind* out) {
  using K = simnet::FaultEvent::Kind;
  for (int k = static_cast<int>(K::kCrash); k <= static_cast<int>(K::kSkewClear);
       ++k) {
    if (name == simnet::fault_kind_name(static_cast<K>(k))) {
      *out = static_cast<K>(k);
      return true;
    }
  }
  return false;
}

/// A canopus-storm-v1 artifact read back from disk: the schedule plus the
/// grid coordinates needed to replay it.
struct LoadedStorm {
  std::string system;
  std::string intensity;
  std::uint64_t seed = 0;
  double offered_rate = 0;
  simnet::FaultSchedule storm;
};

/// Parses a canopus-storm-v1 document (the exact shape storm_to_json
/// emits; whitespace-tolerant). Returns false on schema mismatch or any
/// malformed field — a truncated artifact must fail loudly, not replay a
/// partial storm. Hand-rolled against the fixed schema: flat meta fields
/// plus one array of flat event objects, so no general JSON machinery is
/// needed (and none is available in-tree).
inline bool storm_from_json(const std::string& text, LoadedStorm* out) {
  // --- scanning helpers over the raw document ---------------------------
  const auto find_key = [&](const std::string& key, std::size_t from,
                            std::size_t* val_begin) {
    const std::string needle = "\"" + key + "\"";
    std::size_t p = text.find(needle, from);
    if (p == std::string::npos) return false;
    p = text.find(':', p + needle.size());
    if (p == std::string::npos) return false;
    ++p;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\n' ||
                               text[p] == '\t' || text[p] == '\r'))
      ++p;
    *val_begin = p;
    return true;
  };
  const auto read_string = [&](std::size_t p, std::string* s) {
    if (p >= text.size() || text[p] != '"') return false;
    s->clear();
    for (++p; p < text.size(); ++p) {
      if (text[p] == '\\' && p + 1 < text.size()) {
        s->push_back(text[++p]);
      } else if (text[p] == '"') {
        return true;
      } else {
        s->push_back(text[p]);
      }
    }
    return false;  // unterminated
  };
  const auto read_number = [&](std::size_t p, double* v) {
    char* end = nullptr;
    *v = std::strtod(text.c_str() + p, &end);
    return end != text.c_str() + p;
  };

  std::size_t p = 0;
  std::string schema;
  if (!find_key("schema", 0, &p) || !read_string(p, &schema) ||
      schema != "canopus-storm-v1")
    return false;
  if (!find_key("system", 0, &p) || !read_string(p, &out->system))
    return false;
  if (!find_key("intensity", 0, &p) || !read_string(p, &out->intensity))
    return false;
  double num = 0;
  if (!find_key("seed", 0, &p) || !read_number(p, &num)) return false;
  out->seed = static_cast<std::uint64_t>(num);
  if (!find_key("offered_rate", 0, &p) || !read_number(p, &num)) return false;
  out->offered_rate = num;

  std::size_t arr = 0;
  if (!find_key("events", 0, &arr) || text[arr] != '[') return false;
  const std::size_t arr_end = text.find(']', arr);
  if (arr_end == std::string::npos) return false;

  std::size_t cur = arr + 1;
  while (true) {
    const std::size_t obj = text.find('{', cur);
    if (obj == std::string::npos || obj > arr_end) break;
    const std::size_t obj_end = text.find('}', obj);
    if (obj_end == std::string::npos || obj_end > arr_end) return false;

    simnet::FaultEvent ev;
    std::string kind;
    double at = 0, a = 0, b = 0, x = 0, d = 0;
    std::size_t q = 0;
    if (!find_key("at_ns", obj, &q) || q > obj_end || !read_number(q, &at))
      return false;
    if (!find_key("kind", obj, &q) || q > obj_end || !read_string(q, &kind) ||
        !fault_kind_parse(kind, &ev.kind))
      return false;
    if (!find_key("a", obj, &q) || q > obj_end || !read_number(q, &a))
      return false;
    if (!find_key("b", obj, &q) || q > obj_end || !read_number(q, &b))
      return false;
    if (!find_key("x", obj, &q) || q > obj_end || !read_number(q, &x))
      return false;
    if (!find_key("d_ns", obj, &q) || q > obj_end || !read_number(q, &d))
      return false;
    ev.at = static_cast<Time>(at);
    ev.a = static_cast<NodeId>(a);
    ev.b = b < 0 ? kInvalidNode : static_cast<NodeId>(b);
    ev.x = x;
    ev.d = static_cast<Time>(d);
    out->storm.add(ev);
    cur = obj_end + 1;
  }
  return true;
}

/// Serializes a (minimal) storm as a replayable canopus-storm-v1 JSON
/// document. Doubles print with %.17g so a schedule re-parsed from the
/// artifact is bit-identical to the one that tripped the oracle.
inline void storm_to_json(std::FILE* f, const simnet::FaultSchedule& storm,
                          const StormJsonMeta& meta) {
  auto str = [f](const std::string& s) {
    std::fputc('"', f);
    for (const char c : s) {
      if (c == '"' || c == '\\') std::fputc('\\', f);
      std::fputc(c, f);
    }
    std::fputc('"', f);
  };
  std::fputs("{\"schema\":\"canopus-storm-v1\",\"system\":", f);
  str(meta.system);
  std::fputs(",\"intensity\":", f);
  str(meta.intensity);
  std::fprintf(f,
               ",\"seed\":%llu,\"offered_rate\":%.17g,\"reproduced\":%s,"
               "\"original_events\":%zu,\"minimal_events\":%zu,"
               "\"probes\":%zu,\"duration_shrinks\":%zu,\"events\":[",
               static_cast<unsigned long long>(meta.seed), meta.offered_rate,
               meta.reproduced ? "true" : "false", meta.original_events,
               storm.events().size(), meta.probes, meta.duration_shrinks);
  for (std::size_t i = 0; i < storm.events().size(); ++i) {
    const simnet::FaultEvent& ev = storm.events()[i];
    std::fprintf(f,
                 "%s{\"at_ns\":%lld,\"kind\":\"%s\",\"a\":%lld,\"b\":%lld,"
                 "\"x\":%.17g,\"d_ns\":%lld}",
                 i == 0 ? "" : ",", static_cast<long long>(ev.at),
                 simnet::fault_kind_name(ev.kind),
                 static_cast<long long>(ev.a),
                 ev.b == kInvalidNode ? -1LL : static_cast<long long>(ev.b),
                 ev.x, static_cast<long long>(ev.d));
  }
  std::fputs("]}\n", f);
}

}  // namespace canopus::workload
