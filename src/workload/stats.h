// Latency recording with percentile queries.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace canopus::workload {

/// Log-bucketed latency histogram (HDR-style): power-of-two major buckets
/// with 32 linear sub-buckets each — <= ~3% relative error, O(1) record.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kMajor * kSub, 0) {}

  void record(Time latency_ns) {
    if (latency_ns < 0) latency_ns = 0;
    buckets_[index(static_cast<std::uint64_t>(latency_ns))] += 1;
    ++count_;
    total_ += static_cast<std::uint64_t>(latency_ns);
  }

  std::uint64_t count() const { return count_; }

  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) /
                             static_cast<double>(count_);
  }

  /// Returns a representative latency (ns) for quantile `p`; out-of-range
  /// (or NaN) inputs clamp to [0, 1] rather than indexing past the
  /// distribution or underflowing the `count_ - 1` rank arithmetic.
  Time percentile(double p) const {
    if (count_ == 0) return 0;
    if (!(p > 0.0)) p = 0.0;  // also catches NaN
    if (p > 1.0) p = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) return static_cast<Time>(value_of(i));
    }
    return static_cast<Time>(value_of(buckets_.size() - 1));
  }

  Time median() const { return percentile(0.5); }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    total_ += other.total_;
  }

  void reset() {
    buckets_.assign(buckets_.size(), 0);
    count_ = 0;
    total_ = 0;
  }

 private:
  static constexpr std::size_t kMajor = 48;  // up to ~2^47 ns
  static constexpr std::size_t kSub = 32;

  static std::size_t index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const auto major = static_cast<std::size_t>(msb) - 4;  // log2(kSub)-1
    const std::size_t sub =
        static_cast<std::size_t>(v >> (msb - 5)) & (kSub - 1);
    const std::size_t idx = major * kSub + sub;
    return idx < kMajor * kSub ? idx : kMajor * kSub - 1;
  }

  static std::uint64_t value_of(std::size_t idx) {
    const std::size_t major = idx / kSub, sub = idx % kSub;
    if (major == 0) return sub;
    const int shift = static_cast<int>(major) - 1;
    return (kSub + sub) << shift;
  }

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
};

/// Shared sink for client-side completions within a measurement window.
///
/// The public complete()/fail() entry points serialize on a mutex and then
/// invoke the protected on_complete()/on_fail() hooks — fault-scenario and
/// chaos runs override the hooks to split completions into per-phase
/// windows (workload/fault_scenario.h, workload/chaos.h). The mutex exists
/// for the sharded simulation kernel: clients in different shards report
/// concurrently, and everything the hooks accumulate (histogram buckets,
/// counters, per-phase minima) is order-independent, so the aggregate is
/// bit-identical to a serial run no matter how the lock interleaves.
class LatencyRecorder {
 public:
  virtual ~LatencyRecorder() = default;

  void set_window(Time begin, Time end) {
    begin_ = begin;
    end_ = end;
  }
  Time window_begin() const { return begin_; }
  Time window_end() const { return end_; }
  double window_seconds() const {
    return static_cast<double>(end_ - begin_) / kSecond;
  }

  /// Records a completion observed at `now` for a request that arrived at
  /// `arrival`; only arrivals inside the window count (steady state).
  void complete(Time now, Time arrival) {
    std::lock_guard<std::mutex> lock(mu_);
    on_complete(now, arrival);
  }

  /// Records a request that FAILED at submission — the client knows it will
  /// never complete (today: its target server is crashed, so the request
  /// would be black-holed). Windowed by arrival like complete(), so fault
  /// benches report honest per-phase failure counts instead of silently
  /// folding client-visible failures into "never completed".
  void fail(Time arrival) {
    std::lock_guard<std::mutex> lock(mu_);
    on_fail(arrival);
  }

  const LatencyHistogram& histogram() const { return hist_; }
  std::uint64_t completed() const { return hist_.count(); }
  std::uint64_t failed() const { return failed_; }

  /// Completed requests per second over the window.
  double throughput() const {
    const double s = window_seconds();
    return s > 0 ? static_cast<double>(hist_.count()) / s : 0;
  }

 protected:
  /// Hooks run under the recorder mutex. Overrides must only perform
  /// order-independent accumulation (sums, counts, minima) so sharded and
  /// serial runs agree bit-for-bit.
  virtual void on_complete(Time now, Time arrival) {
    if (arrival < begin_ || arrival >= end_) return;
    hist_.record(now - arrival);
  }

  virtual void on_fail(Time arrival) {
    if (arrival < begin_ || arrival >= end_) return;
    ++failed_;
  }

 private:
  Time begin_ = 0;
  Time end_ = 0;
  LatencyHistogram hist_;
  std::uint64_t failed_ = 0;
  std::mutex mu_;
};

}  // namespace canopus::workload
