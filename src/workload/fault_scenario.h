// FaultScenario: a named fault script that runs identically against any
// workload::ConsensusService, plus the runner that measures availability
// before / during / after the faults and audits safety at the end.
//
// A scenario speaks in *server indices* (0 .. groups*per_group-1, group-
// major, as laid out by build_cluster); the runner maps indices onto
// NodeIds and arms a simnet::FaultSchedule whose crash/recover events are
// routed through the service (so the protocol instance is silenced or
// restarted together with the network), while sever/heal act on the
// network alone.
//
// The standard library covers the liveness cases the paper discusses (§6)
// and the classics every consensus deployment meets:
//   single_node_crash      one non-leader server crashes, later recovers
//   leader_crash           server 0 (Zab/Raft leader) crashes, later recovers
//   superleaf_majority_loss a majority of group 0 crashes — Canopus stalls
//                          by design; quorum systems ride through
//   partition_asym         one-way partition group 0 -> rest, then heal
//   rolling_crashes        one server per group crashes and recovers in
//                          sequence
//
// Safety audit (the Agreement property under faults): at the end of the
// run, every *comparable* node (see ConsensusService::comparable) must
// report the same commit fingerprint and count. A system may stall under a
// fault — Canopus is expected to on majority loss — but must never diverge.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/fault_schedule.h"
#include "workload/deployments.h"

namespace canopus::workload {

// --------------------------------------------------------------------------
// Scenario definitions
// --------------------------------------------------------------------------

/// Phase boundaries of a fault trial, in absolute simulation time:
/// before = [warmup, fault_at), during = [fault_at, heal_at),
/// after = [heal_at, end_at); clients stop at end_at and the run drains
/// until end_at + drain (repair traffic completes in the drain).
struct FaultTiming {
  Time warmup = 300 * kMillisecond;
  Time fault_at = 800 * kMillisecond;
  Time heal_at = 1'600 * kMillisecond;
  Time end_at = 2'400 * kMillisecond;
  Time drain = 600 * kMillisecond;
};

struct FaultScenario {
  enum class Op { kCrash, kRecover, kSever, kHeal };
  struct Step {
    Time at = 0;
    Op op = Op::kCrash;
    int a = -1;  ///< server index (crash/recover) or source (sever/heal)
    int b = -1;  ///< destination server index (sever/heal)
  };

  std::string name;
  std::string description;
  std::vector<Step> steps;
  /// The scenario removes a super-leaf majority: Canopus is *expected* to
  /// stall (and must not diverge); quorum systems are expected to proceed.
  bool majority_loss = false;
};

/// The standard scenario suite for a `groups x per_group` deployment.
/// Requires per_group >= 3 (rolling/single crashes must leave every
/// super-leaf a majority) and groups >= 2.
inline std::vector<FaultScenario> standard_scenarios(int groups,
                                                     int per_group,
                                                     const FaultTiming& ft) {
  assert(groups >= 2 && per_group >= 3);
  std::vector<FaultScenario> out;

  {
    FaultScenario s;
    s.name = "single_node_crash";
    s.description = "one non-leader server crashes, recovers later";
    const int victim = per_group;  // first server of group 1
    s.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, victim, -1});
    s.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, victim, -1});
    out.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "leader_crash";
    s.description = "server 0 (Zab/Raft leader) crashes, recovers later";
    s.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, 0, -1});
    s.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, 0, -1});
    out.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "superleaf_majority_loss";
    s.description = "a majority of group 0 crashes (Canopus stalls, Sec 6)";
    s.majority_loss = true;
    const int majority = per_group / 2 + 1;
    for (int v = 0; v < majority; ++v) {
      s.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, v, -1});
      s.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, v, -1});
    }
    out.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "partition_asym";
    s.description = "one-way partition: group 0 cannot reach other groups";
    for (int a = 0; a < per_group; ++a) {
      for (int b = per_group; b < groups * per_group; ++b) {
        s.steps.push_back({ft.fault_at, FaultScenario::Op::kSever, a, b});
        s.steps.push_back({ft.heal_at, FaultScenario::Op::kHeal, a, b});
      }
    }
    out.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "rolling_crashes";
    s.description = "one server per group crashes and recovers in sequence";
    const int waves = groups < 3 ? groups : 3;
    const Time stagger = (ft.heal_at - ft.fault_at) / waves;
    for (int g = 0; g < waves; ++g) {
      const int victim = g * per_group + 1;  // never server 0 (leader_crash
                                             // covers the leader)
      const Time down = ft.fault_at + g * stagger;
      s.steps.push_back({down, FaultScenario::Op::kCrash, victim, -1});
      s.steps.push_back(
          {down + stagger, FaultScenario::Op::kRecover, victim, -1});
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Single-DC fault-plane tuning: repair/retry intervals sized for rack RTTs
/// so post-heal recovery completes within a scenario's after-phase (the
/// defaults are sized for WAN RTTs; see each Config's comments). Repair
/// windows stay at their production-scale defaults: a node that misses more
/// than the retained history is repaired by snapshot/state transfer, so the
/// old trick of inflating the windows until nothing ever fell out of them
/// (and memory grew with downtime) is gone.
inline TrialConfig fault_tuned(TrialConfig tc) {
  tc.canopus.fetch_timeout = 100 * kMillisecond;
  tc.epaxos.repair_retry = 25 * kMillisecond;
  tc.zab.sync_retry = 25 * kMillisecond;
  return tc;
}

/// The compaction bound: the most log records any node of the configured
/// system may retain, regardless of how long a peer stayed dark. Runners
/// assert ConsensusService::log_entries_retained against this at the end of
/// every trial — with snapshots repairing anything beyond the retained
/// window, a breach means compaction silently stopped working.
inline std::uint64_t retained_log_bound(const TrialConfig& tc) {
  switch (tc.system) {
    case System::kRaft:
      // Retained = last_index - compaction base; compaction fires past the
      // threshold and keeps `compaction_keep`, so steady state sits near
      // threshold + keep with slack for entries committed between checks.
      return 2 * (tc.raft.raft.compaction_threshold +
                  tc.raft.raft.compaction_keep);
    case System::kZab:
      return tc.zab.history_depth;  // the leader's catch-up ring, exact
    case System::kEPaxos:
      return tc.epaxos.repair_window;  // the repair ring, exact
    case System::kCanopus: {
      // prune_history keeps 64 committed cycles (2x the pipelining window
      // when pipelined, for rejoin catch-up) plus what is in flight.
      const std::uint64_t window = tc.canopus.pipelining
                                       ? tc.canopus.max_outstanding_cycles
                                       : 1;
      const std::uint64_t keep =
          tc.canopus.pipelining
              ? std::max<std::uint64_t>(
                    64, 2 * tc.canopus.max_outstanding_cycles)
              : 64;
      return keep + window + 2;
    }
  }
  return 0;
}

// --------------------------------------------------------------------------
// Phase-splitting recorder
// --------------------------------------------------------------------------

/// Splits completions into per-phase recorders by request *arrival* time,
/// so each phase's throughput counts exactly the requests offered in it.
class PhasedRecorder : public LatencyRecorder {
 public:
  explicit PhasedRecorder(const FaultTiming& ft) {
    before_.set_window(ft.warmup, ft.fault_at);
    during_.set_window(ft.fault_at, ft.heal_at);
    after_.set_window(ft.heal_at, ft.end_at);
  }

  const LatencyRecorder& before() const { return before_; }
  const LatencyRecorder& during() const { return during_; }
  const LatencyRecorder& after() const { return after_; }

 protected:
  // The phase recorders' own locks are uncontended here (all calls arrive
  // under the outer recorder's mutex), and windowing by arrival keeps the
  // split order-independent.
  void on_complete(Time now, Time arrival) override {
    before_.complete(now, arrival);
    during_.complete(now, arrival);
    after_.complete(now, arrival);
  }

  void on_fail(Time arrival) override {
    before_.fail(arrival);
    during_.fail(arrival);
    after_.fail(arrival);
  }

 private:
  LatencyRecorder before_, during_, after_;
};

// --------------------------------------------------------------------------
// Runner
// --------------------------------------------------------------------------

/// What arming a `recover` event against a system whose
/// supports_recover() is false (Canopus, service.h) should do. The silent
/// historical behavior — ConsensusService::recover returns false and the
/// node simply stays dark — is a correct *outcome* for runners that
/// document it, but a trap for schedule authors: a hand-written scenario
/// that expects the node back gets an unexplained availability hole.
enum class RecoverArming {
  /// Fail fast at arming time: throw std::invalid_argument naming the
  /// system and the number of doomed recover events. The default — a
  /// schedule that cannot take effect as written is a bug at the call
  /// site, not a measurement.
  kStrict,
  /// Accept the schedule; recover events against the unsupporting system
  /// no-op and the node stays dark. The scenario/chaos runners pass this
  /// explicitly: "Canopus loses crashed nodes for good" is the documented
  /// §4.6 design trade their benches exist to measure.
  kTolerateUnsupported,
};

/// Arms a FaultSchedule on the network, routing node crash/recover through
/// the service (so the protocol instance is silenced/restarted together
/// with the network) while sever/heal act on the network alone. Shared by
/// the scenario runner and the chaos runner (workload/chaos.h). The service
/// must outlive the armed events; the node-index map is owned by the hook.
///
/// Throws std::invalid_argument when `mode` is kStrict, the schedule
/// contains recover events, and the service cannot re-admit nodes (see
/// RecoverArming).
inline void arm_via_service(
    const simnet::FaultSchedule& sched, simnet::Network& net,
    ConsensusService& service,
    RecoverArming mode = RecoverArming::kStrict) {
  if (mode == RecoverArming::kStrict && !service.supports_recover()) {
    std::size_t recovers = 0;
    for (const simnet::FaultEvent& ev : sched.events())
      if (ev.kind == simnet::FaultEvent::Kind::kRecover) ++recovers;
    if (recovers > 0)
      throw std::invalid_argument(
          std::string("arm_via_service: schedule arms ") +
          std::to_string(recovers) + " recover event(s) but " +
          service.name() +
          " has supports_recover() == false — the node(s) would silently "
          "stay dark; pass RecoverArming::kTolerateUnsupported if that "
          "degraded outcome is the measurement");
  }
  auto index_of = std::make_shared<std::unordered_map<NodeId, std::size_t>>();
  for (std::size_t i = 0; i < service.num_servers(); ++i)
    (*index_of)[service.server_node(i)] = i;
  sched.arm(net, [svc = &service, index_of](simnet::Network& n,
                                            const simnet::FaultEvent& ev) {
    switch (ev.kind) {
      case simnet::FaultEvent::Kind::kCrash:
        svc->crash(index_of->at(ev.a));
        break;
      case simnet::FaultEvent::Kind::kRecover:
        svc->recover(index_of->at(ev.a));
        break;
      default:
        simnet::FaultSchedule::apply(n, ev);
    }
  });
}

/// Lowers a scenario's server-index steps onto concrete NodeIds. `servers`
/// is the fleet-wide server list the indices address (the runner passes
/// cluster.servers; sharded tests pass the same list with group-scoped
/// scenarios mapped through scope_to_group first).
inline simnet::FaultSchedule make_schedule(const FaultScenario& scenario,
                                           const std::vector<NodeId>& servers) {
  simnet::FaultSchedule sched;
  const auto node_of = [&servers](int idx) {
    return servers[static_cast<std::size_t>(idx)];
  };
  for (const FaultScenario::Step& st : scenario.steps) {
    switch (st.op) {
      case FaultScenario::Op::kCrash:
        sched.crash_at(st.at, node_of(st.a));
        break;
      case FaultScenario::Op::kRecover:
        sched.recover_at(st.at, node_of(st.a));
        break;
      case FaultScenario::Op::kSever:
        sched.sever_at(st.at, node_of(st.a), node_of(st.b));
        break;
      case FaultScenario::Op::kHeal:
        sched.heal_at(st.at, node_of(st.a), node_of(st.b));
        break;
    }
  }
  return sched;
}

/// Re-scopes a scenario authored in group-LOCAL server indices (0 ..
/// per_group-1) onto group `group` of a sharded fleet: every index is
/// offset by group * per_group. This is how the fault plane targets one
/// consensus group of a ShardedService instead of the whole fleet.
inline FaultScenario scope_to_group(FaultScenario s, int group,
                                    int per_group) {
  for (FaultScenario::Step& st : s.steps) {
    if (st.a >= 0) st.a += group * per_group;
    if (st.b >= 0) st.b += group * per_group;
  }
  s.name += "@group" + std::to_string(group);
  return s;
}

/// The scenario the snapshot/state-transfer layer exists for: ONE server
/// stays dark long enough for the survivors to commit more writes than any
/// retained history covers (Zab's history ring, EPaxos' repair ring, Raft's
/// compacted log, Canopus' pruned cycles), then recovers. Before snapshots
/// this was the silent catch-up stall: the returning node fetched history
/// that no longer existed and retried forever while the windows were
/// inflated trial-by-trial to paper over it. Now the node must come back by
/// state transfer — snapshots_installed > 0, retention_ok, and convergence
/// are the assertions.
inline FaultScenario long_downtime_scenario(int per_group,
                                            const FaultTiming& ft) {
  FaultScenario s;
  s.name = "long_downtime";
  s.description =
      "one server dark past every retained-history window, rejoins by "
      "snapshot/state transfer";
  const int victim = per_group;  // first server of group 1
  s.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, victim, -1});
  s.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, victim, -1});
  return s;
}

/// Timing for long_downtime: the fault window spans enough commits at
/// scenario rates to overflow every production-scale history window, and
/// the after-phase covers the slowest repair path (Canopus re-admission
/// waits out a 3x-election-timeout grace after the exclusion before a
/// sibling sponsors the rejoin).
inline FaultTiming long_downtime_timing() {
  FaultTiming ft;
  ft.warmup = 200 * kMillisecond;
  ft.fault_at = 500 * kMillisecond;
  ft.heal_at = 2'500 * kMillisecond;  // ~2 s dark
  ft.end_at = 4'500 * kMillisecond;
  ft.drain = 800 * kMillisecond;
  return ft;
}

/// Geo-failover: every server of datacenter `dc` crashes at fault_at and
/// recovers at heal_at — the bench_failures --wan scenario. Killing DC 0
/// takes the Zab/Raft leader with it, so the during-phase availability and
/// the failover time measure leader re-election under a whole-DC outage;
/// for Canopus a dead DC is a dead super-leaf: a documented stall
/// (majority_loss semantics) until the DC's pnodes rejoin — and a whole-DC
/// outage leaves no live sibling to sponsor the first joiner, so the DC
/// can only come back once the deployment's membership machinery re-admits
/// it (the during-phase stall is the measurement).
inline FaultScenario dc_outage_scenario(int dc, int per_group,
                                        const FaultTiming& ft) {
  FaultScenario s;
  s.name = "dc" + std::to_string(dc) + "_outage";
  s.description = "all servers of datacenter " + std::to_string(dc) +
                  " crash, later recover (geo-failover)";
  s.majority_loss = true;  // a whole super-leaf is gone: Canopus must stall
  for (int v = dc * per_group; v < (dc + 1) * per_group; ++v) {
    s.steps.push_back({ft.fault_at, FaultScenario::Op::kCrash, v, -1});
    s.steps.push_back({ft.heal_at, FaultScenario::Op::kRecover, v, -1});
  }
  return s;
}

struct ScenarioResult {
  std::string system;
  std::string scenario;

  /// Client-observed availability per phase (same offered rate throughout).
  Measurement before, during, after;

  // Safety audit over comparable nodes at the end of the run. Fingerprints
  // are rolling hashes, so two nodes frozen at different commit counts are
  // not directly comparable — a system stalled mid-broadcast (Canopus
  // after a whole-DC outage on the WAN topology) legitimately freezes its
  // survivors a cycle apart. Agreement is therefore asserted per count
  // class — equal counts must mean equal fingerprints, the split-brain
  // signature — and the count spread is reported separately so callers can
  // gate spread == 0 wherever convergence is expected (every scenario that
  // heals and drains).
  bool digests_agree = true;
  std::size_t comparable_nodes = 0;
  std::uint64_t committed_writes = 0;  ///< max over comparable nodes
  std::uint64_t commit_spread = 0;     ///< max - min count over comparable
  std::uint64_t fingerprint = 0;       ///< at the deepest count class

  /// Client-observed failover time: completion time of the first WRITE
  /// that arrived at or after fault_at, minus fault_at; -1 when no
  /// post-fault write ever completed (e.g. Canopus after losing a whole
  /// super-leaf). Writes, not reads: reads are served from a node's local
  /// store and keep completing on surviving nodes through a leader outage,
  /// so they would hide exactly the re-election gap this measures.
  Time failover_ns = -1;
  bool failed_over() const { return failover_ns >= 0; }

  // Progress probes (max over live nodes, protocol units). "Stalled" is
  // judged over the SECOND half of the fault window: commits in flight at
  // the fault instant legitimately land for a propagation delay afterwards
  // (~100 ms of pipelined cycles on the WAN topology), and that drain-out
  // is not progress.
  std::uint64_t progress_at_fault = 0;
  std::uint64_t progress_at_mid = 0;  ///< at (fault_at + heal_at) / 2
  std::uint64_t progress_at_heal = 0;
  std::uint64_t progress_at_end = 0;

  // Compaction/state-transfer observability: snapshots installed across the
  // fleet, the largest per-node retained log at run end, and whether it
  // stayed within retained_log_bound (it must — a breach means compaction
  // silently stopped and memory is growing with downtime again).
  std::uint64_t snapshots_installed = 0;
  std::uint64_t max_log_retained = 0;
  bool retention_ok = true;
  bool stalled_during() const { return progress_at_heal <= progress_at_mid; }
  bool progressed_after() const { return progress_at_end > progress_at_heal; }

  /// The SAFETY verdict: comparable nodes with equal commit counts
  /// committed identical writes. Liveness is reported separately
  /// (stalled_during / progressed_after / the per-phase availability)
  /// because the expected liveness outcome is scenario- and
  /// system-specific — Canopus is SUPPOSED to stall on majority loss — so
  /// callers assert it, and commit_spread, against their own expectations.
  bool safe() const { return digests_agree; }
};

/// Runs `scenario` against the system configured in `tc` at a fixed offered
/// rate. Deterministic: the result is a pure function of (tc, scenario,
/// timing, rate), independent of threads or run order — trials build fresh
/// simulators from per-trial derived seeds exactly like run_trial.
inline ScenarioResult run_fault_scenario(const TrialConfig& tc,
                                         const FaultScenario& scenario,
                                         const FaultTiming& ft,
                                         double offered_rate) {
  const std::uint64_t trial_seed = derive_seed(
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate)),
      std::hash<std::string>{}(scenario.name));
  simnet::Simulator sim(trial_seed);

  simnet::Cluster cluster = build_cluster(tc);
  if (tc.sim_threads > 1)
    sim.configure_shards(cluster.topo,
                         simnet::make_shard_map(cluster.topo, tc.sim_threads));
  simnet::Network net(sim, cluster.topo, tc.cpu);
  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, net);

  auto recorder = std::make_shared<PhasedRecorder>(ft);
  auto clients = attach_clients(tc, cluster, net, recorder, offered_rate,
                                trial_seed, ft.end_at);

  ScenarioResult res;
  res.system = service->name();
  res.scenario = scenario.name;

  // Failover pin: min completion time over post-fault-arrival writes.
  // min() is order-independent, and the mutex covers concurrent client
  // shards under the PDES kernel — serial and sharded runs agree.
  std::mutex failover_mu;
  Time first_write_after = -1;
  for (auto& c : clients)
    c->on_reply = [&](NodeId, const kv::Completion& done) {
      if (!done.is_write || done.arrival < ft.fault_at) return;
      const Time now = sim.now();
      std::lock_guard<std::mutex> lock(failover_mu);
      if (first_write_after < 0 || now < first_write_after)
        first_write_after = now;
    };

  // Progress probes: max over currently-up nodes. Scheduled before the
  // fault schedule is armed so a probe at the same timestamp observes the
  // pre-fault state (the event queue is FIFO for ties).
  const auto max_progress = [&service] {
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < service->num_servers(); ++i) {
      if (service->up(i)) p = std::max(p, service->progress(i));
    }
    return p;
  };
  sim.at(ft.fault_at, [&] { res.progress_at_fault = max_progress(); });
  sim.at(ft.fault_at + (ft.heal_at - ft.fault_at) / 2,
         [&] { res.progress_at_mid = max_progress(); });
  sim.at(ft.heal_at, [&] { res.progress_at_heal = max_progress(); });

  // Map server indices -> NodeIds and arm the schedule, routing node
  // faults through the service. Every system now has a repair path (Raft/
  // Zab/EPaxos snapshot transfer, Canopus sponsored rejoin), so strict
  // arming would accept these schedules too; tolerate mode is kept so
  // hand-rolled TrialConfigs that disable a repair path still run.
  const simnet::FaultSchedule sched =
      make_schedule(scenario, cluster.servers);
  arm_via_service(sched, net, *service,
                  RecoverArming::kTolerateUnsupported);

  if (tc.sim_threads > 1)
    sim.run_parallel_until(ft.end_at + ft.drain);
  else
    sim.run_until(ft.end_at + ft.drain);

  // --- availability ------------------------------------------------------
  res.before = measure(recorder->before(), offered_rate);
  res.during = measure(recorder->during(), offered_rate);
  res.after = measure(recorder->after(), offered_rate);
  res.progress_at_end = max_progress();
  res.failover_ns =
      first_write_after >= 0 ? first_write_after - ft.fault_at : -1;

  // --- safety audit (per count class; see ScenarioResult) -----------------
  std::map<std::uint64_t, std::uint64_t> fp_by_count;
  std::uint64_t min_count = 0, max_count = 0;
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    if (!service->comparable(i)) continue;
    ++res.comparable_nodes;
    const std::uint64_t f = service->commit_fingerprint(i);
    const std::uint64_t c = service->committed_writes(i);
    const auto [it, inserted] = fp_by_count.emplace(c, f);
    if (!inserted && it->second != f) res.digests_agree = false;
    if (res.comparable_nodes == 1) {
      min_count = max_count = c;
    } else {
      min_count = std::min(min_count, c);
      max_count = std::max(max_count, c);
    }
  }
  res.committed_writes = max_count;
  res.commit_spread = max_count - min_count;
  if (!fp_by_count.empty()) res.fingerprint = fp_by_count.rbegin()->second;

  // --- compaction audit ---------------------------------------------------
  const std::uint64_t bound = retained_log_bound(tc);
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    res.snapshots_installed += service->snapshots_installed(i);
    if (!service->up(i)) continue;
    res.max_log_retained =
        std::max(res.max_log_retained, service->log_entries_retained(i));
  }
  res.retention_ok = res.max_log_retained <= bound;
  return res;
}

/// Runs the whole suite for one system; the caller typically iterates
/// kAllSystems over this.
inline std::vector<ScenarioResult> run_scenario_suite(
    const TrialConfig& tc, const std::vector<FaultScenario>& scenarios,
    const FaultTiming& ft, double offered_rate) {
  std::vector<ScenarioResult> out;
  out.reserve(scenarios.size());
  for (const FaultScenario& sc : scenarios)
    out.push_back(run_fault_scenario(tc, sc, ft, offered_rate));
  return out;
}

}  // namespace canopus::workload
