// Raft wire messages. All four RPCs are modelled as asynchronous messages
// (request and response are separate Messages on the simulated network).
#pragma once

#include <vector>

#include "raft/log.h"

namespace canopus::raft {

enum class MsgType {
  kRequestVote,
  kVoteReply,
  kAppendEntries,  // doubles as heartbeat when entries is empty
  kAppendReply,
  /// Leader -> follower state transfer (Raft §7): sent when the follower's
  /// next index has been compacted away. Carries the snapshot payload plus
  /// the last included index/term in prev_log_index/prev_log_term.
  kInstallSnapshot,
  /// Not part of Raft proper: sent by the reliable-broadcast layer when it
  /// receives traffic for a group it has already dissolved (§4.3 "all the
  /// nodes leave that group"). Tells stragglers to finish applying their
  /// local log for the group and dissolve it too.
  kGroupDissolved,
};

struct WireMsg {
  GroupId group = 0;
  MsgType type = MsgType::kAppendEntries;
  Term term = 0;

  // RequestVote
  LogIndex last_log_index = 0;
  Term last_log_term = 0;

  // VoteReply
  bool vote_granted = false;

  // AppendEntries
  LogIndex prev_log_index = 0;
  Term prev_log_term = 0;
  LogIndex leader_commit = 0;
  std::vector<LogEntry> entries;

  // AppendReply
  bool success = false;
  LogIndex match_index = 0;

  // InstallSnapshot: opaque state-machine snapshot (the owner's registered
  // payload type; may be empty when the state machine is external, e.g. the
  // reliable-broadcast groups whose deliveries are covered by a
  // Canopus-level snapshot). prev_log_index/prev_log_term double as the
  // last included index/term.
  simnet::Payload snapshot;
  std::size_t snapshot_bytes = 0;

  /// Wire size estimate: fixed header + payload bytes of carried entries
  /// (or the carried snapshot).
  std::size_t wire_bytes() const {
    std::size_t b = 64 + snapshot_bytes;
    for (const LogEntry& e : entries) b += 16 + e.bytes;
    return b;
  }
};

}  // namespace canopus::raft

CANOPUS_REGISTER_PAYLOAD(canopus::raft::WireMsg, kRaftWire);
