// Raft wire messages. All four RPCs are modelled as asynchronous messages
// (request and response are separate Messages on the simulated network).
#pragma once

#include <vector>

#include "raft/log.h"

namespace canopus::raft {

enum class MsgType {
  kRequestVote,
  kVoteReply,
  kAppendEntries,  // doubles as heartbeat when entries is empty
  kAppendReply,
  /// Not part of Raft proper: sent by the reliable-broadcast layer when it
  /// receives traffic for a group it has already dissolved (§4.3 "all the
  /// nodes leave that group"). Tells stragglers to finish applying their
  /// local log for the group and dissolve it too.
  kGroupDissolved,
};

struct WireMsg {
  GroupId group = 0;
  MsgType type = MsgType::kAppendEntries;
  Term term = 0;

  // RequestVote
  LogIndex last_log_index = 0;
  Term last_log_term = 0;

  // VoteReply
  bool vote_granted = false;

  // AppendEntries
  LogIndex prev_log_index = 0;
  Term prev_log_term = 0;
  LogIndex leader_commit = 0;
  std::vector<LogEntry> entries;

  // AppendReply
  bool success = false;
  LogIndex match_index = 0;

  /// Wire size estimate: fixed header + payload bytes of carried entries.
  std::size_t wire_bytes() const {
    std::size_t b = 64;
    for (const LogEntry& e : entries) b += 16 + e.bytes;
    return b;
  }
};

}  // namespace canopus::raft

CANOPUS_REGISTER_PAYLOAD(canopus::raft::WireMsg, kRaftWire);
