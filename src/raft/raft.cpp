#include "raft/raft.h"

#include <algorithm>
#include <cassert>

namespace canopus::raft {

RaftNode::RaftNode(GroupId group, NodeId self, std::vector<NodeId> members,
                   simnet::ClockHandle sim, Callbacks cb, Options opt)
    : group_(group),
      self_(self),
      members_(std::move(members)),
      sim_(sim),
      cb_(std::move(cb)),
      opt_(opt),
      rng_(derive_seed(derive_seed(sim.seed(), 0x4a47ULL),
                       (std::uint64_t{group} << 32) ^ self)) {
  assert(std::find(members_.begin(), members_.end(), self_) != members_.end());
  next_index_.assign(members_.size(), 1);
  match_index_.assign(members_.size(), 0);
  sent_up_to_.assign(members_.size(), 0);
  last_progress_.assign(members_.size(), 0);
  last_repair_.assign(members_.size(), 0);
}

RaftNode::~RaftNode() { stop_timers(); }

void RaftNode::start(bool bootstrap_as_leader) {
  stopped_ = false;
  if (bootstrap_as_leader) {
    term_ = 1;
    become_leader(/*append_noop=*/false);
  } else {
    become_follower(term_);
  }
}

void RaftNode::stop() {
  stopped_ = true;
  stop_timers();
}

void RaftNode::stop_timers() {
  if (election_timer_ != simnet::kInvalidEvent) {
    sim_.cancel(election_timer_);
    election_timer_ = simnet::kInvalidEvent;
  }
  if (heartbeat_timer_ != simnet::kInvalidEvent) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_ = simnet::kInvalidEvent;
  }
}

Time RaftNode::time_since_leader_contact() const {
  return sim_.now() - last_leader_contact_;
}

void RaftNode::reset_election_timer() {
  if (election_timer_ != simnet::kInvalidEvent) sim_.cancel(election_timer_);
  const Time span = opt_.election_timeout_max - opt_.election_timeout_min;
  const Time timeout =
      opt_.election_timeout_min +
      (span > 0 ? static_cast<Time>(rng_.below(
                      static_cast<std::uint64_t>(span)))
                : 0);
  election_timer_ = sim_.after(timeout, [this] { become_candidate(); });
}

void RaftNode::become_follower(Term term) {
  if (term > term_) {
    term_ = term;
    voted_for_ = kInvalidNode;
  }
  role_ = Role::kFollower;
  if (heartbeat_timer_ != simnet::kInvalidEvent) {
    sim_.cancel(heartbeat_timer_);
    heartbeat_timer_ = simnet::kInvalidEvent;
  }
  reset_election_timer();
}

void RaftNode::become_candidate() {
  if (stopped_) return;
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = self_;
  votes_.clear();
  votes_.insert(self_);
  reset_election_timer();

  if (votes_.size() >= quorum()) {  // single-member group
    become_leader(/*append_noop=*/true);
    return;
  }
  WireMsg m;
  m.group = group_;
  m.type = MsgType::kRequestVote;
  m.term = term_;
  m.last_log_index = log_.last_index();
  m.last_log_term = log_.last_term();
  for (NodeId peer : members_) {
    if (peer != self_) cb_.send(peer, m);
  }
}

void RaftNode::become_leader(bool append_noop) {
  role_ = Role::kLeader;
  leader_ = self_;
  if (election_timer_ != simnet::kInvalidEvent) {
    sim_.cancel(election_timer_);
    election_timer_ = simnet::kInvalidEvent;
  }
  if (append_noop) {
    // Raft §5.4.2: entries from prior terms are only committed indirectly,
    // by committing an entry of the current term on top of them.
    log_.append(LogEntry{term_, {}, 0, /*is_noop=*/true, self_});
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    next_index_[i] = log_.last_index() + 1;
    match_index_[i] = members_[i] == self_ ? log_.last_index() : 0;
    sent_up_to_[i] = 0;  // nothing sent yet in this term
  }
  advance_commit();  // single-member group: the no-op commits immediately
  if (cb_.on_leader_change) cb_.on_leader_change(self_, term_);
  broadcast_heartbeats();
}

void RaftNode::broadcast_heartbeats() {
  if (stopped_ || role_ != Role::kLeader) return;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const NodeId peer = members_[i];
    if (peer == self_) continue;
    if (match_index_[i] < log_.last_index() &&
        sim_.now() - std::max(last_progress_[i], last_repair_[i]) >=
            opt_.repair_timeout) {
      // The peer made no replication progress for a while: repair with a
      // full retransmit. Merely-slow peers keep advancing match_index and
      // are never retransmitted to — that would only deepen their backlog.
      last_repair_[i] = sim_.now();
      send_append(peer);
    } else {
      notify_commit(peer);  // pure liveness + commit index
    }
  }
  heartbeat_timer_ =
      sim_.after(opt_.heartbeat_interval, [this] { broadcast_heartbeats(); });
}

void RaftNode::send_append(NodeId peer) {
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), peer) - members_.begin());
  if (next_index_[pos] <= log_.base_index()) {
    // The entries this peer needs were compacted away: state transfer.
    send_install_snapshot(peer);
    return;
  }
  WireMsg m;
  m.group = group_;
  m.type = MsgType::kAppendEntries;
  m.term = term_;
  m.prev_log_index = next_index_[pos] - 1;
  m.prev_log_term = log_.term_at(m.prev_log_index);
  m.leader_commit = commit_;
  for (LogIndex i = next_index_[pos]; i <= log_.last_index(); ++i)
    m.entries.push_back(log_.at(i));
  sent_up_to_[pos] = log_.last_index();
  cb_.send(peer, m);
}

void RaftNode::send_new_entries(NodeId peer) {
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), peer) - members_.begin());
  const LogIndex start =
      std::max(next_index_[pos], sent_up_to_[pos] + 1);
  if (start > log_.last_index()) return;  // nothing new on the wire
  if (start <= log_.base_index()) {
    send_install_snapshot(peer);
    return;
  }
  WireMsg m;
  m.group = group_;
  m.type = MsgType::kAppendEntries;
  m.term = term_;
  m.prev_log_index = start - 1;
  m.prev_log_term = log_.term_at(m.prev_log_index);
  m.leader_commit = commit_;
  for (LogIndex i = start; i <= log_.last_index(); ++i)
    m.entries.push_back(log_.at(i));
  sent_up_to_[pos] = log_.last_index();
  cb_.send(peer, m);
}

void RaftNode::notify_commit(NodeId peer) {
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), peer) - members_.begin());
  WireMsg m;
  m.group = group_;
  m.type = MsgType::kAppendEntries;
  m.term = term_;
  // Anchor at the committed prefix the peer plausibly holds (entries
  // already put on the wire this term, or acked): a follower only advances
  // its commit up to the prefix an AppendEntries VERIFIED, so anchoring at
  // match_index alone would delay commit notification of just-sent entries
  // by a full ack round-trip. If the peer's log disagrees at the anchor
  // (it missed the entries), the consistency check fails and the ordinary
  // nack/repair path takes over; if it agrees, the Log Matching property
  // makes committing up to the anchor safe. No payload travels.
  m.prev_log_index = std::min(
      commit_, std::max(match_index_[pos], sent_up_to_[pos]));
  // Never anchor inside the compacted prefix — the term there is unknown.
  // A peer that genuinely lags behind the base fails the consistency check
  // and is repaired (ultimately by InstallSnapshot) via the nack path.
  m.prev_log_index = std::max(m.prev_log_index, log_.base_index());
  m.prev_log_term = log_.term_at(m.prev_log_index);
  m.leader_commit = commit_;
  cb_.send(peer, m);
}

std::optional<LogIndex> RaftNode::propose(simnet::Payload payload,
                                          std::size_t bytes) {
  if (stopped_ || role_ != Role::kLeader) return std::nullopt;
  log_.append(LogEntry{term_, std::move(payload), bytes});
  const LogIndex idx = log_.last_index();
  const auto self_pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), self_) - members_.begin());
  match_index_[self_pos] = idx;
  next_index_[self_pos] = idx + 1;
  for (NodeId peer : members_) {
    if (peer != self_) send_new_entries(peer);
  }
  advance_commit();  // single-member groups commit immediately
  return idx;
}

void RaftNode::on_message(NodeId src, const WireMsg& m) {
  if (stopped_) return;
  if (m.term > term_) become_follower(m.term);
  switch (m.type) {
    case MsgType::kRequestVote:
      handle_request_vote(src, m);
      break;
    case MsgType::kVoteReply:
      handle_vote_reply(src, m);
      break;
    case MsgType::kAppendEntries:
      handle_append_entries(src, m);
      break;
    case MsgType::kAppendReply:
      handle_append_reply(src, m);
      break;
    case MsgType::kInstallSnapshot:
      handle_install_snapshot(src, m);
      break;
    case MsgType::kGroupDissolved:
      break;  // handled by the layer above (rbcast)
  }
}

void RaftNode::handle_request_vote(NodeId src, const WireMsg& m) {
  WireMsg reply;
  reply.group = group_;
  reply.type = MsgType::kVoteReply;
  reply.term = term_;
  reply.vote_granted = false;

  const bool log_ok =
      m.last_log_term > log_.last_term() ||
      (m.last_log_term == log_.last_term() &&
       m.last_log_index >= log_.last_index());
  if (m.term >= term_ && log_ok &&
      (voted_for_ == kInvalidNode || voted_for_ == src)) {
    voted_for_ = src;
    reply.vote_granted = true;
    reset_election_timer();
  }
  cb_.send(src, reply);
}

void RaftNode::handle_vote_reply(NodeId src, const WireMsg& m) {
  if (role_ != Role::kCandidate || m.term != term_ || !m.vote_granted) return;
  votes_.insert(src);
  if (votes_.size() >= quorum()) become_leader(/*append_noop=*/true);
}

void RaftNode::handle_append_entries(NodeId src, const WireMsg& m) {
  WireMsg reply;
  reply.group = group_;
  reply.type = MsgType::kAppendReply;
  reply.term = term_;
  reply.success = false;

  if (m.term < term_) {
    cb_.send(src, reply);
    return;
  }
  // Valid leader for this term.
  if (role_ != Role::kFollower) become_follower(m.term);
  if (leader_ != src) {
    leader_ = src;
    if (cb_.on_leader_change) cb_.on_leader_change(src, term_);
  }
  last_leader_contact_ = sim_.now();
  reset_election_timer();

  // Consistency check. An anchor inside our compacted prefix is consistent
  // by construction: everything at or below the base was committed and
  // covered by the installed snapshot (Log Matching makes re-checking it
  // unnecessary — and impossible, the terms are gone).
  if (m.prev_log_index > log_.last_index() ||
      (m.prev_log_index >= log_.base_index() &&
       log_.term_at(m.prev_log_index) != m.prev_log_term)) {
    // Hint the leader with our last index so backoff jumps straight to the
    // end of our log instead of spiralling one entry per round trip — the
    // difference between O(1) and O(log-length) round trips when a fresh
    // member (empty log) joins a long-lived group.
    reply.match_index = log_.last_index();
    cb_.send(src, reply);
    return;
  }

  // Append/repair: drop conflicting suffix, append new entries. Entries at
  // or below the compaction base are already covered by installed state.
  LogIndex idx = m.prev_log_index;
  for (const LogEntry& e : m.entries) {
    ++idx;
    if (idx <= log_.base_index()) continue;
    if (idx <= log_.last_index()) {
      if (log_.term_at(idx) == e.term) continue;  // already have it
      log_.truncate_after(idx - 1);
    }
    log_.append(e);
  }

  // Commit advance is bounded by the prefix this message VERIFIED
  // (prev_log_index + new entries), not by our last_index(): anything
  // beyond it can be a stale uncommitted tail from a deposed leader that
  // this check never compared against the current leader's log. Applying
  // it would diverge the state machine (Raft §5.3: commitIndex =
  // min(leaderCommit, index of last new entry)). The one-way-partition
  // fault scenario catches exactly this.
  const LogIndex verified = m.prev_log_index + m.entries.size();
  if (m.leader_commit > commit_) {
    commit_ = std::max(commit_, std::min(m.leader_commit, verified));
    apply_committed();
  }

  reply.success = true;
  reply.match_index = m.prev_log_index + m.entries.size();
  cb_.send(src, reply);
}

void RaftNode::handle_append_reply(NodeId src, const WireMsg& m) {
  if (role_ != Role::kLeader || m.term != term_) return;
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), src) - members_.begin());
  if (pos >= members_.size()) return;
  if (m.success) {
    if (m.match_index > match_index_[pos]) {
      match_index_[pos] = m.match_index;
      last_progress_[pos] = sim_.now();
    }
    next_index_[pos] = std::max(next_index_[pos], match_index_[pos] + 1);
    advance_commit();
  } else {
    // Back off and retry the consistency check one entry earlier — or jump
    // straight past the follower's last index when its nack hints at one
    // (a follower can never match beyond its own log).
    LogIndex next = next_index_[pos] > 1 ? next_index_[pos] - 1 : 1;
    next = std::max<LogIndex>(1, std::min(next, m.match_index + 1));
    next_index_[pos] = next;
    sent_up_to_[pos] = next - 1;
    send_append(src);  // redirects to InstallSnapshot below the base
  }
}

void RaftNode::send_install_snapshot(NodeId peer) {
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), peer) - members_.begin());
  WireMsg m;
  m.group = group_;
  m.type = MsgType::kInstallSnapshot;
  m.term = term_;
  m.prev_log_index = snap_index_;
  m.prev_log_term = snap_term_;
  m.leader_commit = commit_;
  m.snapshot = snap_payload_;
  m.snapshot_bytes = snap_bytes_;
  next_index_[pos] = snap_index_ + 1;
  sent_up_to_[pos] = snap_index_;
  ++snapshots_sent_;
  cb_.send(peer, m);
}

void RaftNode::handle_install_snapshot(NodeId src, const WireMsg& m) {
  WireMsg reply;
  reply.group = group_;
  reply.type = MsgType::kAppendReply;
  reply.term = term_;
  reply.success = false;

  if (m.term < term_) {
    cb_.send(src, reply);
    return;
  }
  if (role_ != Role::kFollower) become_follower(m.term);
  if (leader_ != src) {
    leader_ = src;
    if (cb_.on_leader_change) cb_.on_leader_change(src, term_);
  }
  last_leader_contact_ = sim_.now();
  reset_election_timer();

  const LogIndex s = m.prev_log_index;
  if (s <= commit_) {
    // Duplicate/stale install: we already hold (and applied) this prefix.
    reply.success = true;
    reply.match_index = commit_;
    cb_.send(src, reply);
    return;
  }
  // Adopt the snapshot: it covers everything up to s, including any
  // uncommitted local tail (which a quorum never acked — safe to drop).
  log_.reset_to_snapshot(s, m.prev_log_term);
  commit_ = s;
  applied_ = s;
  snap_index_ = s;
  snap_term_ = m.prev_log_term;
  snap_payload_ = m.snapshot;
  snap_bytes_ = m.snapshot_bytes;
  ++snapshots_installed_;
  if (cb_.install_snapshot) cb_.install_snapshot(s, m.snapshot);

  reply.success = true;
  reply.match_index = s;
  cb_.send(src, reply);
}

void RaftNode::maybe_compact() {
  if (opt_.compaction_threshold == 0) return;      // compaction disabled
  if (applied_ <= log_.base_index()) return;
  if (applied_ - log_.base_index() <= opt_.compaction_threshold) return;
  const LogIndex target = applied_ > opt_.compaction_keep
                              ? applied_ - opt_.compaction_keep
                              : 0;
  if (target <= log_.base_index()) return;
  // Capture at the apply frontier (the state the snapshot actually
  // represents), then discard the prefix while keeping compaction_keep
  // trailing entries so slightly-lagging followers avoid a state transfer.
  snap_index_ = applied_;
  snap_term_ = log_.term_at(applied_);
  snap_bytes_ = 0;
  snap_payload_ =
      cb_.make_snapshot ? cb_.make_snapshot(snap_bytes_) : simnet::Payload{};
  log_.compact_to(target);
}

void RaftNode::remove_member(NodeId peer) {
  const auto it = std::find(members_.begin(), members_.end(), peer);
  if (it == members_.end()) return;
  const auto pos = static_cast<std::size_t>(it - members_.begin());
  members_.erase(it);
  next_index_.erase(next_index_.begin() + static_cast<std::ptrdiff_t>(pos));
  match_index_.erase(match_index_.begin() + static_cast<std::ptrdiff_t>(pos));
  sent_up_to_.erase(sent_up_to_.begin() + static_cast<std::ptrdiff_t>(pos));
  last_progress_.erase(last_progress_.begin() +
                       static_cast<std::ptrdiff_t>(pos));
  last_repair_.erase(last_repair_.begin() + static_cast<std::ptrdiff_t>(pos));
  votes_.erase(peer);
  if (peer == self_) {
    stop();
    return;
  }
  // The quorum shrank: entries may now be committed.
  if (role_ == Role::kLeader) advance_commit();
}

void RaftNode::add_member(NodeId peer) {
  if (std::find(members_.begin(), members_.end(), peer) != members_.end())
    return;
  members_.push_back(peer);
  next_index_.push_back(log_.last_index() + 1);
  match_index_.push_back(0);
  sent_up_to_.push_back(0);
  last_progress_.push_back(sim_.now());
  last_repair_.push_back(0);
}

void RaftNode::force_commit_all() {
  if (log_.last_index() > commit_) {
    commit_ = log_.last_index();
    apply_committed();
  }
}

void RaftNode::advance_commit() {
  // Find the highest N replicated on a quorum with log term == current term.
  for (LogIndex n = log_.last_index(); n > commit_; --n) {
    if (log_.term_at(n) != term_) break;
    std::size_t count = 0;
    for (LogIndex mi : match_index_) {
      if (mi >= n) ++count;
    }
    if (count >= quorum()) {
      commit_ = n;
      apply_committed();
      // Propagate the new commit index immediately instead of waiting for
      // the next heartbeat — followers deliver with one extra half-RTT
      // rather than up to a full heartbeat interval. Entries already on
      // the wire are NOT retransmitted (see sent_up_to_).
      if (role_ == Role::kLeader) {
        for (NodeId peer : members_) {
          if (peer != self_) notify_commit(peer);
        }
      }
      break;
    }
  }
}

void RaftNode::apply_committed() {
  // on_commit may re-enter (propose -> advance_commit -> apply_committed);
  // compaction must wait for the outermost frame, or it would erase the
  // entry an outer frame's callback still references.
  ++apply_depth_;
  while (applied_ < commit_) {
    ++applied_;
    const LogEntry& e = log_.at(applied_);
    if (e.is_noop) {
      if (cb_.on_noop_commit) cb_.on_noop_commit(e.leader, e.term);
    } else if (cb_.on_commit) {
      cb_.on_commit(applied_, e);
    }
  }
  if (--apply_depth_ == 0) maybe_compact();
}

}  // namespace canopus::raft
