// Raft replicated log types.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "simnet/payload.h"

namespace canopus::raft {

using Term = std::uint64_t;
using LogIndex = std::uint64_t;  // 1-based; 0 means "before the log"
using GroupId = std::uint64_t;

/// A single replicated log entry. The payload rides the typed message bus
/// (simnet::Payload) so that any layer (reliable broadcast, a KV service, a
/// test) can replicate its own registered record type; replicating an entry
/// to N followers shares one payload allocation. `bytes` is the payload's
/// wire size for the network model.
struct LogEntry {
  Term term = 0;
  simnet::Payload payload;
  std::size_t bytes = 0;
  /// Leader-election no-op (the standard fix that lets a new leader commit
  /// entries from prior terms, Raft §5.4.2). Never surfaced via on_commit.
  bool is_noop = false;
  /// For no-ops: the leader that appended it. Layers above use the commit
  /// of a no-op as a *consistent* leadership-change point: it is totally
  /// ordered (in the log) with every entry the previous leader managed to
  /// commit, on every member.
  NodeId leader = kInvalidNode;
};

/// The log itself: entries plus helpers for the AppendEntries consistency
/// check. Compaction (Raft §7 / Ongaro's InstallSnapshot design) discards a
/// committed-and-applied prefix, leaving a *base*: `base_index_` is the
/// index of the last discarded entry and `base_term_` its term, so the
/// consistency check still works at the compaction boundary. A fresh log
/// has base 0 — index 1 is then entries_[0], as before.
class Log {
 public:
  LogIndex base_index() const { return base_index_; }
  Term base_term() const { return base_term_; }

  LogIndex last_index() const { return base_index_ + entries_.size(); }
  Term last_term() const {
    return entries_.empty() ? base_term_ : entries_.back().term;
  }
  Term term_at(LogIndex i) const {
    if (i == base_index_) return base_term_;
    if (i <= base_index_ || i > last_index()) return 0;
    return entries_[i - base_index_ - 1].term;
  }
  /// Precondition: base_index() < i <= last_index().
  const LogEntry& at(LogIndex i) const {
    return entries_[i - base_index_ - 1];
  }

  void append(LogEntry e) { entries_.push_back(std::move(e)); }

  /// Truncates the log so that last_index() == i. Never truncates into the
  /// compacted prefix (i >= base_index() required).
  void truncate_after(LogIndex i) { entries_.resize(i - base_index_); }

  /// Discards entries up to and including `i` (which must be applied).
  /// No-op if `i` is at or below the current base.
  void compact_to(LogIndex i) {
    if (i <= base_index_ || i > last_index()) return;
    const Term t = term_at(i);
    entries_.erase(entries_.begin(),
                   entries_.begin() +
                       static_cast<std::ptrdiff_t>(i - base_index_));
    base_index_ = i;
    base_term_ = t;
  }

  /// Replaces the whole log with a snapshot boundary: everything up to
  /// `index` (term `term`) is covered by installed state; the log is empty
  /// beyond it.
  void reset_to_snapshot(LogIndex index, Term term) {
    entries_.clear();
    base_index_ = index;
    base_term_ = term;
  }

  bool empty() const { return entries_.empty(); }
  /// Number of *retained* entries (the memory footprint compaction bounds).
  std::size_t size() const { return entries_.size(); }

 private:
  LogIndex base_index_ = 0;
  Term base_term_ = 0;
  std::vector<LogEntry> entries_;
};

}  // namespace canopus::raft
