// Raft replicated log types.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "simnet/payload.h"

namespace canopus::raft {

using Term = std::uint64_t;
using LogIndex = std::uint64_t;  // 1-based; 0 means "before the log"
using GroupId = std::uint64_t;

/// A single replicated log entry. The payload rides the typed message bus
/// (simnet::Payload) so that any layer (reliable broadcast, a KV service, a
/// test) can replicate its own registered record type; replicating an entry
/// to N followers shares one payload allocation. `bytes` is the payload's
/// wire size for the network model.
struct LogEntry {
  Term term = 0;
  simnet::Payload payload;
  std::size_t bytes = 0;
  /// Leader-election no-op (the standard fix that lets a new leader commit
  /// entries from prior terms, Raft §5.4.2). Never surfaced via on_commit.
  bool is_noop = false;
  /// For no-ops: the leader that appended it. Layers above use the commit
  /// of a no-op as a *consistent* leadership-change point: it is totally
  /// ordered (in the log) with every entry the previous leader managed to
  /// commit, on every member.
  NodeId leader = kInvalidNode;
};

/// The log itself: entries plus helpers for the AppendEntries consistency
/// check. Index 1 is entries_[0].
class Log {
 public:
  LogIndex last_index() const { return entries_.size(); }
  Term last_term() const {
    return entries_.empty() ? 0 : entries_.back().term;
  }
  Term term_at(LogIndex i) const {
    return i == 0 || i > entries_.size() ? 0 : entries_[i - 1].term;
  }
  const LogEntry& at(LogIndex i) const { return entries_[i - 1]; }

  void append(LogEntry e) { entries_.push_back(std::move(e)); }

  /// Truncates the log so that last_index() == i.
  void truncate_after(LogIndex i) { entries_.resize(i); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace canopus::raft
