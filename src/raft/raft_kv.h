// Standalone Raft KV deployment: Raft as a first-class consensus system,
// not just Canopus' broadcast substrate.
//
// One RaftKvNode per server hosts one member of a single cluster-wide Raft
// group (members[0] bootstraps as leader — no initial election). The write
// path is the classic replicated-state-machine arrangement:
//
//  * any node accepts client writes, batches them, and — if it is the
//    leader — proposes the batch to the group; a non-leader forwards its
//    batch to its current leader hint;
//  * every member applies committed batches in log order; the member that
//    received a request from a client replies to that client when it
//    applies the commit locally.
//
// Reads are served from local committed state (ZooKeeper-style sequential
// consistency; linearizable leader-lease reads are an open item). Unlike
// the Zab baseline, the group runs full crash-stop Raft: a crashed leader
// is replaced by election and a recovered or partitioned member's log is
// repaired by the ordinary AppendEntries backoff — this is the system the
// failure scenarios use as the "self-healing leader" reference point.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/store.h"
#include "kv/types.h"
#include "raft/raft.h"
#include "simnet/network.h"

namespace canopus::raft {

struct KvConfig {
  /// Batching window for writes at every node (leader and forwarders).
  Time batch_interval = 1 * kMillisecond;
  /// Leader-side protocol CPU per write (log append, pipeline bookkeeping).
  /// Cheaper than the ZooKeeper request pipeline — this is bare Raft, not a
  /// full coordination service — but still a centralized per-write cost.
  Time leader_cpu_per_write = 5'000;
  /// Per-write apply cost at every member; per-read cost at the server.
  Time cpu_per_write = 1'000;
  Time cpu_per_read = 1'000;
  /// Election/heartbeat tuning for the cluster-wide group.
  Options raft;
};

/// Replicated log-entry payload: one batch of writes, shared across the
/// per-follower fan-out.
struct KvBatch {
  std::shared_ptr<const std::vector<kv::Request>> reqs;
  std::size_t wire_bytes() const {
    return 32 + kv::kRequestWire * (reqs ? reqs->size() : 0);
  }
};

/// Member -> leader write forwarding frame.
struct KvForward {
  std::vector<kv::Request> reqs;
  std::size_t wire_bytes() const {
    return 24 + kv::kRequestWire * reqs.size();
  }
};

/// Compaction snapshot payload (rides inside raft::WireMsg InstallSnapshot):
/// the KV image plus digest state, so a far-behind follower fast-forwards to
/// the leader's applied frontier and its audit chain continues exactly.
struct KvSnapshot {
  kv::Snapshot snap;
  std::size_t wire_bytes() const { return snap.wire_bytes(); }
};

class RaftKvNode : public simnet::Process {
 public:
  /// `members` lists every server; members[0] bootstraps as leader.
  RaftKvNode(std::vector<NodeId> members, KvConfig cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  /// Local submission path for examples/tests.
  void submit(kv::Request r);

  /// Crash-stop: silences the Raft member and all local timers.
  void crash();
  /// Restart after a crash with the durable state (log, term) intact; the
  /// node rejoins as a follower and is repaired by the leader.
  void recover();
  bool crashed() const { return crashed_; }

  // --- observers --------------------------------------------------------
  bool is_leader() const { return raft_ && raft_->is_leader(); }
  NodeId leader_hint() const {
    return raft_ ? raft_->leader_hint() : kInvalidNode;
  }
  LogIndex commit_index() const { return raft_ ? raft_->commit_index() : 0; }
  std::uint64_t committed_writes() const { return digest_.count(); }
  std::uint64_t served_reads() const { return served_reads_; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }
  std::uint64_t snapshots_installed() const {
    return raft_ ? raft_->snapshots_installed() : 0;
  }
  std::size_t log_entries_retained() const {
    return raft_ ? raft_->log_entries_retained() : 0;
  }

  /// Fired at apply time with each committed batch (log order, identical on
  /// every live member).
  std::function<void(LogIndex, const std::vector<kv::Request>&)> on_commit;
  /// Fired when this member installs a leader snapshot (it skipped the
  /// compacted entries and adopted the image + digest state wholesale).
  std::function<void(const kv::Snapshot&)> on_snapshot_install;

 private:
  void enqueue(kv::Request r);
  void serve_read(const kv::Request& r);
  void arm_flush_timer();
  void flush_batch();
  void apply(LogIndex idx, const std::vector<kv::Request>& batch);
  void flush_replies();

  std::vector<NodeId> members_;
  KvConfig cfg_;
  std::unique_ptr<RaftNode> raft_;

  std::vector<kv::Request> pending_;
  bool flush_timer_armed_ = false;
  bool crashed_ = false;

  kv::Store store_;
  kv::CommitDigest digest_;
  std::uint64_t served_reads_ = 0;
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;
};

}  // namespace canopus::raft

CANOPUS_REGISTER_PAYLOAD(canopus::raft::KvBatch, kRaftKvBatch);
CANOPUS_REGISTER_PAYLOAD(canopus::raft::KvForward, kRaftKvForward);
CANOPUS_REGISTER_PAYLOAD(canopus::raft::KvSnapshot, kRaftKvSnapshot);
