// RaftNode: one member of one Raft group.
//
// This is a full crash-stop Raft (Ongaro & Ousterhout, USENIX ATC '14):
// randomized election timeouts, term-checked voting with the up-to-date-log
// rule, AppendEntries with the consistency check and follower log repair,
// quorum commit advancement, and heartbeats.
//
// It is deliberately NOT a simnet::Process: a single physical node hosts
// many protocol components (Canopus runs one Raft group per super-leaf
// member, §4.3), so the owning Process routes WireMsgs to the right group
// and supplies a send callback. This also keeps RaftNode reusable outside
// the simulator behind any transport.
//
// Canopus-specific usage notes (§4.3, §4.5):
//  * For reliable broadcast, every super-leaf member creates a group where
//    it is the bootstrap leader and its peers are followers; broadcasting is
//    proposing to one's own group.
//  * The heartbeat/election machinery doubles as the paper's failure
//    detector inside a super-leaf.
#pragma once

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "raft/messages.h"
#include "simnet/payload.h"
#include "simnet/network.h"

namespace canopus::raft {

enum class Role { kFollower, kCandidate, kLeader };

struct Options {
  Time heartbeat_interval = 15 * kMillisecond;
  Time election_timeout_min = 150 * kMillisecond;
  Time election_timeout_max = 300 * kMillisecond;
  /// Minimum quiet time (no replication progress and no recent retransmit)
  /// before a heartbeat escalates to a full log retransmit for a lagging
  /// peer. Protects briefly-backlogged peers from a retransmit spiral
  /// while still repairing genuinely lossy/recovered followers.
  Time repair_timeout = 75 * kMillisecond;
  /// Log compaction (Raft §7): once more than `compaction_threshold`
  /// applied entries are retained, the node snapshots its state machine
  /// (via Callbacks::make_snapshot) and discards the applied prefix,
  /// keeping `compaction_keep` trailing entries so slightly-lagging
  /// followers are still repaired by ordinary AppendEntries instead of a
  /// state transfer. 0 disables compaction (unbounded log, the
  /// pre-snapshot behaviour). Compaction itself is local — no messages,
  /// no CPU charge — so enabling it never perturbs a healthy trace.
  std::size_t compaction_threshold = 1024;
  std::size_t compaction_keep = 256;
};

class RaftNode {
 public:
  struct Callbacks {
    /// Transport: deliver `msg` to peer `dst` (the owner computes wire bytes
    /// via msg.wire_bytes() and sends it through its network).
    std::function<void(NodeId dst, const WireMsg& msg)> send;
    /// Applied exactly once per committed entry, in log order, on every
    /// live member.
    std::function<void(LogIndex, const LogEntry&)> on_commit;
    /// Leadership changes (elections, discovered leaders). May be null.
    std::function<void(NodeId leader, Term term)> on_leader_change;
    /// Fired when an election no-op commits, identifying the leader that
    /// appended it. Unlike on_leader_change this is log-ordered: every
    /// member observes it at the same position relative to committed
    /// entries, which makes it usable as an agreed failure-detection point
    /// (Canopus §4.3/§4.6 exclusion semantics). May be null.
    std::function<void(NodeId leader, Term term)> on_noop_commit;
    /// Compaction: captures the owner's state machine at the apply
    /// frontier. Called when the log crosses compaction_threshold; the
    /// returned payload is cached and shipped in InstallSnapshot to
    /// followers that fell behind the compaction base. May be null (an
    /// empty snapshot is installed — the owner's state lives elsewhere).
    std::function<simnet::Payload(std::size_t& bytes)> make_snapshot;
    /// Install: replaces the owner's state machine with `snapshot` (all
    /// entries <= the snapshot index were covered by it and will never be
    /// surfaced via on_commit on this member). May be null.
    std::function<void(LogIndex index, const simnet::Payload& snapshot)>
        install_snapshot;
  };

  RaftNode(GroupId group, NodeId self, std::vector<NodeId> members,
           simnet::ClockHandle sim, Callbacks cb, Options opt = {});
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Starts the node. If `bootstrap_as_leader`, the node assumes leadership
  /// of term 1 immediately (used for the per-node broadcast groups where
  /// the initial leader is fixed by construction, §4.3).
  void start(bool bootstrap_as_leader = false);

  /// Stops all timers (models a crash; a stopped node ignores messages).
  void stop();
  bool stopped() const { return stopped_; }

  /// Proposes a payload for replication. Returns the assigned log index if
  /// this node is the leader, std::nullopt otherwise. Replication shares
  /// the payload allocation across all followers.
  std::optional<LogIndex> propose(simnet::Payload payload, std::size_t bytes);

  /// Feeds an incoming wire message (already routed to this group).
  void on_message(NodeId src, const WireMsg& m);

  /// Single-server membership change: removes `peer` from the group.
  /// The caller is responsible for invoking this at an agreed point on all
  /// live members (Canopus applies membership updates at the end of the
  /// consensus cycle that carried them, §4.6). Quorum size shrinks
  /// accordingly; removing self stops the node.
  void remove_member(NodeId peer);

  /// Single-server membership change: adds `peer` to the group. The new
  /// follower's log is repaired by the ordinary AppendEntries backoff.
  void add_member(NodeId peer);

  /// Applies every entry in the local log. Only safe when an external
  /// signal guarantees the whole log is committed — the reliable-broadcast
  /// layer uses this on dissolution gossip, where the dissolver's no-op
  /// commit implies this node's log (which acked it) is complete.
  void force_commit_all();

  // --- observers -------------------------------------------------------
  Role role() const { return role_; }
  bool is_leader() const { return role_ == Role::kLeader; }
  NodeId leader_hint() const { return leader_; }
  Term term() const { return term_; }
  LogIndex commit_index() const { return commit_; }
  LogIndex last_index() const { return log_.last_index(); }
  GroupId group() const { return group_; }
  NodeId self() const { return self_; }
  const std::vector<NodeId>& members() const { return members_; }

  /// Time since the last message from the current leader (failure-detector
  /// input for the layers above).
  Time time_since_leader_contact() const;

  /// Compaction observability: retained log entries and installs received.
  std::size_t log_entries_retained() const { return log_.size(); }
  LogIndex compaction_base() const { return log_.base_index(); }
  std::uint64_t snapshots_installed() const { return snapshots_installed_; }
  std::uint64_t snapshots_sent() const { return snapshots_sent_; }

 private:
  void become_follower(Term term);
  void become_candidate();
  void become_leader(bool append_noop);
  void reset_election_timer();
  void stop_timers();
  void broadcast_heartbeats();
  /// Full repair send: (re)transmits everything from next_index. Used on
  /// nack, on heartbeat for lagging peers, and on leader election.
  void send_append(NodeId peer);
  /// Steady-state send: only entries not yet put on the wire for this peer.
  void send_new_entries(NodeId peer);
  /// Cheap commit-index notification (no entries, prev = match index).
  void notify_commit(NodeId peer);
  void advance_commit();
  void apply_committed();
  std::size_t quorum() const { return members_.size() / 2 + 1; }

  void handle_request_vote(NodeId src, const WireMsg& m);
  void handle_vote_reply(NodeId src, const WireMsg& m);
  void handle_append_entries(NodeId src, const WireMsg& m);
  void handle_append_reply(NodeId src, const WireMsg& m);
  void handle_install_snapshot(NodeId src, const WireMsg& m);
  void send_install_snapshot(NodeId peer);
  void maybe_compact();

  GroupId group_;
  NodeId self_;
  std::vector<NodeId> members_;
  simnet::ClockHandle sim_;
  Callbacks cb_;
  Options opt_;
  /// Election-jitter stream, seeded from (trial seed, group, self) only:
  /// under sharded execution a shared simulator-wide stream would make the
  /// jitter depend on the event interleaving; this one depends only on the
  /// node's own draw history.
  Rng rng_;

  Role role_ = Role::kFollower;
  Term term_ = 0;
  NodeId voted_for_ = kInvalidNode;
  NodeId leader_ = kInvalidNode;
  Log log_;
  LogIndex commit_ = 0;
  LogIndex applied_ = 0;
  Time last_leader_contact_ = 0;

  // Compaction state: the cached snapshot at the capture frontier (shipped
  // verbatim to every follower that needs it — one capture, N sends). The
  // snapshot is taken at the apply frontier, so snap_index_ >= the log base
  // always holds and installs fast-forward past every compacted entry.
  LogIndex snap_index_ = 0;
  Term snap_term_ = 0;
  simnet::Payload snap_payload_;
  std::size_t snap_bytes_ = 0;
  std::uint64_t snapshots_installed_ = 0;
  std::uint64_t snapshots_sent_ = 0;
  int apply_depth_ = 0;  // reentrancy guard: compact only at the outer frame

  // Candidate state.
  std::unordered_set<NodeId> votes_;

  // Leader state.
  std::vector<LogIndex> next_index_;   // indexed by member position
  std::vector<LogIndex> match_index_;  // indexed by member position
  /// Highest index already put on the wire per peer. Prevents the resend
  /// amplification spiral: without it, every propose/commit retransmits
  /// all unacked (possibly huge) entries, melting a briefly-backlogged
  /// peer's CPU further.
  std::vector<LogIndex> sent_up_to_;   // indexed by member position
  std::vector<Time> last_progress_;    // last match-index advance per peer
  std::vector<Time> last_repair_;      // last full retransmit per peer

  simnet::EventId election_timer_ = simnet::kInvalidEvent;
  simnet::EventId heartbeat_timer_ = simnet::kInvalidEvent;
  bool stopped_ = true;
};

}  // namespace canopus::raft
