#include "raft/raft_kv.h"

#include <cassert>

namespace canopus::raft {

RaftKvNode::RaftKvNode(std::vector<NodeId> members, KvConfig cfg)
    : members_(std::move(members)), cfg_(cfg) {
  assert(!members_.empty());
}

void RaftKvNode::on_start() {
  RaftNode::Callbacks cb;
  cb.send = [this](NodeId dst, const WireMsg& m) {
    send(dst, m.wire_bytes(), m);
  };
  cb.on_commit = [this](LogIndex idx, const LogEntry& e) {
    if (const auto* b = e.payload.as<KvBatch>(); b != nullptr && b->reqs)
      apply(idx, *b->reqs);
  };
  cb.make_snapshot = [this](std::size_t& bytes) {
    KvSnapshot s;
    s.snap.image = std::make_shared<const kv::StoreImage>(
        store_.export_image());
    s.snap.digest_hash = digest_.value();
    s.snap.digest_count = digest_.count();
    bytes = s.wire_bytes();
    return simnet::Payload(std::move(s));
  };
  cb.install_snapshot = [this](LogIndex, const simnet::Payload& p) {
    const auto* s = p.as<KvSnapshot>();
    if (s == nullptr) return;
    if (s->snap.image) store_.restore(*s->snap.image);
    digest_.restore(s->snap.digest_hash, s->snap.digest_count);
    if (on_snapshot_install) on_snapshot_install(s->snap);
  };
  raft_ = std::make_unique<RaftNode>(/*group=*/0, node_id(), members_, sim(),
                                     std::move(cb), cfg_.raft);
  raft_->start(/*bootstrap_as_leader=*/node_id() == members_[0]);
}

void RaftKvNode::crash() {
  crashed_ = true;
  if (raft_) raft_->stop();
  pending_.clear();        // volatile: unproposed batches die with the node
  reply_buffer_.clear();
}

void RaftKvNode::recover() {
  if (!crashed_) return;
  crashed_ = false;
  // Durable state (log, term, vote) survives; the node rejoins as a
  // follower and the leader's AppendEntries backoff repairs its log.
  if (raft_) raft_->start(/*bootstrap_as_leader=*/false);
}

void RaftKvNode::submit(kv::Request r) {
  if (crashed_) return;
  r.origin = node_id();
  enqueue(std::move(r));
}

void RaftKvNode::on_message(const simnet::Message& m) {
  if (crashed_) return;
  if (const auto* w = m.as<WireMsg>()) {
    if (raft_) raft_->on_message(m.src(), *w);
  } else if (const auto* batch = m.as<kv::ClientBatch>()) {
    for (const kv::Request& req : batch->reqs) {
      kv::Request r = req;
      r.origin = node_id();
      enqueue(std::move(r));
    }
    flush_replies();  // reads answered inline
  } else if (const auto* fwd = m.as<KvForward>()) {
    // Forwarded writes keep their original origin: the *origin* node
    // replies to the client at apply time.
    if (raft_ && raft_->is_leader()) {
      pending_.insert(pending_.end(), fwd->reqs.begin(), fwd->reqs.end());
      arm_flush_timer();
    } else if (raft_ && raft_->leader_hint() != kInvalidNode &&
               raft_->leader_hint() != node_id()) {
      // Stale forward (leadership moved): pass it along.
      send(raft_->leader_hint(), fwd->wire_bytes(), *fwd);
    } else {
      // No known leader: adopt the requests locally and retry via the
      // ordinary flush path once a leader emerges.
      pending_.insert(pending_.end(), fwd->reqs.begin(), fwd->reqs.end());
      arm_flush_timer();
    }
  }
}

void RaftKvNode::enqueue(kv::Request r) {
  if (!r.is_write) {
    serve_read(r);
    return;
  }
  pending_.push_back(std::move(r));
  arm_flush_timer();
}

void RaftKvNode::serve_read(const kv::Request& r) {
  ++served_reads_;
  net().busy(node_id(), cfg_.cpu_per_read);
  kv::Completion done{r.id, false, store_.read(r.key), r.arrival, r.key};
  reply_buffer_[r.id.client].done.push_back(done);
}

void RaftKvNode::arm_flush_timer() {
  if (flush_timer_armed_) return;
  flush_timer_armed_ = true;
  after(cfg_.batch_interval, [this] {
    flush_timer_armed_ = false;
    if (!crashed_) flush_batch();
  });
}

void RaftKvNode::flush_batch() {
  if (pending_.empty() || raft_ == nullptr) return;
  if (raft_->is_leader()) {
    net().busy(node_id(), static_cast<Time>(pending_.size()) *
                              cfg_.leader_cpu_per_write);
    KvBatch b;
    b.reqs = std::make_shared<const std::vector<kv::Request>>(
        std::move(pending_));
    pending_.clear();
    const std::size_t bytes = b.wire_bytes();
    raft_->propose(simnet::Payload(std::move(b)), bytes);
    return;
  }
  const NodeId leader = raft_->leader_hint();
  if (leader == kInvalidNode || leader == node_id()) {
    // Mid-election: hold the batch and retry after another interval.
    arm_flush_timer();
    return;
  }
  KvForward f{std::move(pending_)};
  pending_.clear();
  send(leader, f.wire_bytes(), f);
}

void RaftKvNode::apply(LogIndex idx, const std::vector<kv::Request>& batch) {
  net().busy(node_id(),
             static_cast<Time>(batch.size()) * cfg_.cpu_per_write);
  for (const kv::Request& r : batch) {
    store_.apply(r);
    digest_.append(r);
    if (r.origin == node_id() && r.id.client != kInvalidNode) {
      kv::Completion done{r.id, true, 0, r.arrival, r.key};
      reply_buffer_[r.id.client].done.push_back(done);
    }
  }
  if (on_commit) on_commit(idx, batch);
  flush_replies();
}

void RaftKvNode::flush_replies() {
  for (auto& [client, batch] : reply_buffer_) {
    if (client != kInvalidNode && !batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

}  // namespace canopus::raft
