#include "runtime/threaded_trial.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "runtime/threaded.h"

namespace canopus::workload {

namespace {

void sleep_ns(Time ns) {
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

Measurement run_threaded_trial(const TrialConfig& tc, double offered_rate) {
  // Same per-(config, rate) seed derivation as the simulated run_trial, so
  // client arrival streams are seeded identically on both backends.
  const std::uint64_t trial_seed =
      derive_seed(tc.seed, std::bit_cast<std::uint64_t>(offered_rate));

  simnet::Cluster cluster = build_cluster(tc);
  runtime::ThreadedRuntime rt(cluster.topo.num_nodes(), trial_seed);

  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, rt);

  auto recorder = std::make_shared<LatencyRecorder>();
  recorder->set_window(tc.warmup, tc.warmup + tc.measure);
  auto clients = attach_clients(tc, cluster, rt, recorder, offered_rate,
                                trial_seed, tc.warmup + tc.measure);

  rt.start();
  // warmup/measure/drain are wall-clock here; the driver just waits them
  // out while the node threads run.
  const Time deadline = tc.warmup + tc.measure + tc.drain;
  while (rt.now() < deadline) sleep_ns(std::min<Time>(deadline - rt.now(), kMillisecond));
  rt.stop();
  return measure(*recorder, offered_rate);
}

std::vector<kv::Request> make_script(const TrialConfig& tc, std::size_t k) {
  Rng rng(derive_seed(tc.seed, 0x5c819 /* "script" */));
  std::vector<kv::Request> script;
  script.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    kv::Request r;
    r.id = {kInvalidNode, i + 1};  // local submission: no client replies
    r.is_write = true;
    r.key = rng.below(1024);  // small keyspace: EPaxos sees real conflicts
    r.value = rng();
    script.push_back(r);
  }
  return script;
}

ScriptResult run_script_sim(const TrialConfig& tc, std::size_t k,
                            Time sim_deadline) {
  simnet::Simulator sim(tc.seed);
  simnet::Cluster cluster = build_cluster(tc);
  simnet::Network net(sim, cluster.topo, tc.cpu);
  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, net);

  const std::vector<kv::Request> script = make_script(tc, k);
  ConsensusService* svc = service.get();
  const std::vector<kv::Request>* sp = &script;
  // Submit after the nodes' on_start events (t=0) have run.
  sim.at(kMillisecond, [svc, sp] {
    for (const kv::Request& r : *sp) svc->submit(0, r);
  });

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim_deadline);
  ScriptResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.messages = net.stats().messages;
  out.completed = true;
  for (std::size_t i = 0; i < service->num_servers(); ++i) {
    out.fingerprint.push_back(service->commit_fingerprint(i));
    out.committed.push_back(service->committed_writes(i));
    if (out.committed.back() < k) out.completed = false;
  }
  return out;
}

ScriptResult run_script_threads(const TrialConfig& tc, std::size_t k,
                                Time wall_deadline, Time submit_gap) {
  simnet::Cluster cluster = build_cluster(tc);
  runtime::ThreadedRuntime rt(cluster.topo.num_nodes(), tc.seed);
  std::unique_ptr<ConsensusService> service = make_service(tc, cluster, rt);

  const std::size_t n = service->num_servers();
  std::vector<std::atomic<std::uint64_t>> committed(n);

  // Commit-latency capture at server 0: submit stamps Request::arrival
  // (measurement-only — never folded into the digests), the commit hook
  // reads the wall clock again. Cold path; a mutex is fine.
  std::mutex lat_mu;
  std::vector<Time> latencies;
  latencies.reserve(k);

  service->on_commit = [&](std::size_t i, std::uint64_t,
                           const std::vector<kv::Request>& batch) {
    committed[i].fetch_add(batch.size(), std::memory_order_relaxed);
    if (i == 0) {
      const Time now = rt.now();
      std::lock_guard<std::mutex> lock(lat_mu);
      for (const kv::Request& r : batch)
        if (r.arrival > 0) latencies.push_back(now - r.arrival);
    }
  };

  const std::vector<kv::Request> script = make_script(tc, k);
  const auto t0 = std::chrono::steady_clock::now();
  rt.start();
  for (kv::Request r : script) {
    r.arrival = rt.now();
    service->submit(0, r);
    if (submit_gap > 0) sleep_ns(submit_gap);
  }

  // Wait for every server to commit the whole script (or the deadline).
  const auto all_done = [&] {
    for (std::size_t i = 0; i < n; ++i)
      if (committed[i].load(std::memory_order_relaxed) < k) return false;
    return true;
  };
  while (!all_done() && rt.now() < wall_deadline) sleep_ns(200'000);
  rt.stop();  // join = happens-before: protocol state is safe to read now

  ScriptResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.messages = rt.total_stats().delivered;
  out.completed = true;
  for (std::size_t i = 0; i < n; ++i) {
    out.fingerprint.push_back(service->commit_fingerprint(i));
    out.committed.push_back(service->committed_writes(i));
    if (out.committed.back() < k) out.completed = false;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    out.commit_p50 = latencies[latencies.size() / 2];
    out.commit_p99 = latencies[latencies.size() * 99 / 100];
  }
  return out;
}

}  // namespace canopus::workload
