// The Runtime seam: the narrow surface a consensus Process and its driver
// need from "the world", factored so the same protocol code runs on either
// backend (DESIGN.md §12).
//
// Two facets, two audiences:
//
//  * runtime::Runtime — what a *node* needs from inside its execution
//    context: the clock, one-shot timers, message send, CPU charging,
//    liveness queries. The simulated backend satisfies this with
//    Simulator+Network (Process::sim()/net() dispatch inline, no virtual
//    call on the hot path); runtime::ThreadedRuntime implements it with
//    wall clocks, per-thread timer wheels and lock-free SPSC mailboxes.
//
//  * runtime::Host — what a *driver* (deployments, fault scenarios,
//    benches) needs from outside: attach processes, crash/recover nodes,
//    sever links, and post closures into a node's execution context.
//    simnet::Network implements it for the simulated backend (post runs
//    inline — the caller IS the execution context between sim.run() calls);
//    ThreadedRuntime enqueues posts onto the node's injection mailbox.
//
// The seam is deliberately tiny: protocols only ever use now/cancel (clock),
// busy/is_up/send (network) and after (timers) — verified by the
// cross-runtime digest-equivalence test, which drives identical command
// scripts through both backends and diffs commit fingerprints.
#pragma once

#include "common/types.h"
#include "simnet/event_queue.h"  // EventId, InlineFn
#include "simnet/message.h"

namespace canopus::simnet {
class Process;
}  // namespace canopus::simnet

namespace canopus::runtime {

class ThreadedRuntime;

/// Node-facing facet. Every call must be made from a node execution
/// context (a message/timer handler, or a closure delivered via
/// Host::post); the threaded backend asserts this.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time in ns. Simulated time for the simulator backend,
  /// wall-clock ns since runtime construction for the threaded one.
  virtual Time now() const = 0;

  /// Arms a one-shot timer `delay` ns from now on the calling node.
  virtual simnet::EventId arm(Time delay, simnet::InlineFn fn) = 0;

  /// Cancels a timer armed by the calling node. Ignores kInvalidEvent and
  /// already-fired ids (generation-checked), like Simulator::cancel.
  virtual void cancel(simnet::EventId id) = 0;

  /// Sends a message from m.src() (the calling node) to m.dst().
  virtual void send(simnet::Message m) = 0;

  /// Charges protocol-level compute to a node's serial CPU. The simulated
  /// backend advances that node's cpu_free_; the threaded backend is a
  /// no-op — real threads burn real cycles.
  virtual void busy(NodeId n, Time cost) = 0;

  virtual bool is_up(NodeId n) const = 0;

  /// The backend's base seed; consensus engines derive their per-node RNG
  /// streams from it exactly as they do from Simulator::seed().
  virtual std::uint64_t seed() const = 0;
};

/// Driver-facing facet. All calls are made from outside node execution
/// contexts (the main/driver thread).
class Host {
 public:
  virtual ~Host() = default;

  /// Registers the process handling messages addressed to `id`, wires its
  /// clock/net handles and seeds its per-node RNG. Must precede start/run.
  virtual void attach(NodeId id, simnet::Process& proc) = 0;

  // Fault plane: crash-stop / restart a node, sever / heal a directed pair.
  virtual void crash(NodeId n) = 0;
  virtual void recover(NodeId n) = 0;
  virtual bool is_up(NodeId n) const = 0;
  virtual void sever(NodeId a, NodeId b) = 0;
  virtual void heal(NodeId a, NodeId b) = 0;

  /// Gray fault plane: skews node n's timer arming — a nominal delay
  /// becomes round(delay / rate) + offset, clamped to >= 0. rate > 1 is a
  /// fast clock (timers fire early), rate < 1 a slow one; rate 1 with
  /// offset 0 clears the skew. The simulated backend transforms
  /// Simulator::after, the threaded backend the wheel arming — the same
  /// protocol code drifts identically on both (DESIGN.md §13).
  virtual void set_clock_skew(NodeId n, double rate, Time offset) = 0;

  /// Runs `fn` inside node n's execution context: inline for the simulated
  /// backend (the driver thread between run() slices is the context),
  /// enqueued onto the node's injection mailbox for the threaded backend.
  /// This is how ConsensusService::submit and crash/recover reach protocol
  /// state without data races under real threads.
  virtual void post(NodeId n, simnet::InlineFn fn) = 0;
};

}  // namespace canopus::runtime
