#include "runtime/threaded.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace canopus::runtime {

namespace {

/// Which node's execution context this thread is, if any. send/arm/cancel
/// route through it: a message's source ring and a timer's wheel are both
/// "the calling node's", exactly as the simulator's exec context works.
struct ExecCtx {
  ThreadedRuntime* rt = nullptr;
  NodeId node = kInvalidNode;
};
thread_local ExecCtx t_ctx;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

/// Everything one node thread owns, padded to its own cache line so
/// neighbouring nodes' counters never false-share.
struct alignas(64) ThreadedRuntime::NodeCell {
  explicit NodeCell(const ThreadedConfig& cfg)
      : posts(cfg.post_slots), wheel(0, cfg.timer_cells) {
    overflow.reserve(4 * cfg.ring_slots);
  }

  simnet::Process* proc = nullptr;
  std::thread thr;
  /// in[src]: the mailbox peer `src` pushes into; allocated at start() for
  /// attached senders only.
  std::vector<std::unique_ptr<simnet::SpscRing<simnet::Message>>> in;
  simnet::SpscRing<simnet::InlineFn> posts;  ///< driver injection lane
  TimerWheel wheel;
  /// Inbound messages stashed while this node waits out a full outbound
  /// ring (breaks producer cycles; see header). FIFO via head cursor.
  std::vector<simnet::Message> overflow;
  std::size_t overflow_head = 0;
  std::size_t rr = 0;  ///< round-robin cursor over inbound rings
  std::atomic<bool> up{true};
  /// Gray fault plane: clock-skew transform applied at arm() (see
  /// Host::set_clock_skew). Driver writes, node thread reads.
  std::atomic<double> skew_rate{1.0};
  std::atomic<Time> skew_offset{0};

  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> timers{0};
  std::atomic<std::uint64_t> posts_run{0};
  std::atomic<std::uint64_t> stalls{0};
};

ThreadedRuntime::ThreadedRuntime(std::size_t num_nodes, std::uint64_t seed,
                                 ThreadedConfig cfg)
    : seed_(seed),
      cfg_(cfg),
      sev_(num_nodes * num_nodes),
      epoch_(std::chrono::steady_clock::now()) {
  cells_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    cells_.push_back(std::make_unique<NodeCell>(cfg_));
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

void ThreadedRuntime::attach(NodeId id, simnet::Process& proc) {
  assert(!started_ && "attach all processes before start()");
  assert(id < cells_.size());
  NodeCell& c = *cells_[id];
  assert(c.proc == nullptr && "node already attached");
  c.proc = &proc;
  proc.rt_ = this;
  proc.id_ = id;
  // Same stream derivation as Network::attach: a function of the trial
  // seed and the node id only.
  proc.rng_ = Rng(derive_seed(derive_seed(seed_, 0x90de5eedULL), id));
}

void ThreadedRuntime::start() {
  assert(!started_);
  started_ = true;
  // Mailboxes exist only for (attached sender, attached receiver) pairs;
  // allocated up front so node threads never allocate rings.
  for (auto& cell : cells_) {
    if (cell->proc == nullptr) continue;
    cell->in.resize(cells_.size());
    for (std::size_t s = 0; s < cells_.size(); ++s)
      if (cells_[s]->proc != nullptr)
        cell->in[s] =
            std::make_unique<simnet::SpscRing<simnet::Message>>(cfg_.ring_slots);
  }
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i]->proc != nullptr)
      cells_[i]->thr = std::thread(
          [this, i] { node_main(static_cast<NodeId>(i)); });
}

void ThreadedRuntime::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  quit_.store(true, std::memory_order_release);
  for (auto& cell : cells_)
    if (cell->thr.joinable()) cell->thr.join();
}

void ThreadedRuntime::crash(NodeId n) {
  cells_[n]->up.store(false, std::memory_order_release);
}

void ThreadedRuntime::recover(NodeId n) {
  cells_[n]->up.store(true, std::memory_order_release);
}

bool ThreadedRuntime::is_up(NodeId n) const {
  return n < cells_.size() && cells_[n]->up.load(std::memory_order_acquire);
}

void ThreadedRuntime::sever(NodeId a, NodeId b) {
  auto& flag = sev_[a * cells_.size() + b];
  if (flag.exchange(1, std::memory_order_release) == 0)
    severed_count_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadedRuntime::heal(NodeId a, NodeId b) {
  auto& flag = sev_[a * cells_.size() + b];
  if (flag.exchange(0, std::memory_order_release) == 1)
    severed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void ThreadedRuntime::set_clock_skew(NodeId n, double rate, Time offset) {
  assert(n < cells_.size() && rate > 0);
  cells_[n]->skew_rate.store(rate, std::memory_order_relaxed);
  cells_[n]->skew_offset.store(offset, std::memory_order_relaxed);
}

void ThreadedRuntime::post(NodeId n, simnet::InlineFn fn) {
  assert(n < cells_.size() && cells_[n]->proc != nullptr);
  NodeCell& c = *cells_[n];
  // Single driver thread is the producer; a full ring means the node is
  // momentarily behind — wait, it drains posts every loop iteration.
  while (!c.posts.try_push(std::move(fn))) {
    if (quit_.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
}

Time ThreadedRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

simnet::EventId ThreadedRuntime::arm(Time delay, simnet::InlineFn fn) {
  assert(t_ctx.rt == this && "arm() outside a node execution context");
  NodeCell& me = *cells_[t_ctx.node];
  if (delay < 0) delay = 0;
  // Same clock-skew transform as Simulator::after — the gray fault plane's
  // drifted timers behave identically on both backends.
  const double r = me.skew_rate.load(std::memory_order_relaxed);
  if (r != 1.0)
    delay = static_cast<Time>(std::llround(static_cast<double>(delay) / r));
  delay += me.skew_offset.load(std::memory_order_relaxed);
  if (delay < 0) delay = 0;
  return me.wheel.arm(now() + delay, std::move(fn));
}

void ThreadedRuntime::cancel(simnet::EventId id) {
  if (id == simnet::kInvalidEvent) return;
  if (t_ctx.rt != this) {
    // Teardown: protocol destructors cancel leftover timers from the
    // driver thread after stop() joined every node — the wheels are dead,
    // so there is nothing to cancel.
    assert(stopped_ && "cancel() outside a node execution context");
    return;
  }
  cells_[t_ctx.node]->wheel.cancel(id);
}

void ThreadedRuntime::send(simnet::Message m) {
  assert(t_ctx.rt == this && "send() outside a node execution context");
  const NodeId src = m.src();
  const NodeId dst = m.dst();
  NodeCell& me = *cells_[src];
  if (!me.up.load(std::memory_order_relaxed)) return;  // crashed sender
  if (dst >= cells_.size() || cells_[dst]->proc == nullptr ||
      severed(src, dst) ||
      !cells_[dst]->up.load(std::memory_order_relaxed)) {
    me.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  simnet::SpscRing<simnet::Message>& ring = *cells_[dst]->in[src];
  if (ring.full()) {
    // Backpressure: wait for the receiver, but keep our own inbound moving
    // (into the overflow stash — no handler re-entrancy) so a cycle of
    // full rings cannot deadlock.
    me.stalls.fetch_add(1, std::memory_order_relaxed);
    while (ring.full()) {
      if (quit_.load(std::memory_order_acquire)) return;
      if (drain_inbound(me, /*to_overflow=*/true) == 0) cpu_relax();
    }
  }
  ring.push(std::move(m));
  me.sent.fetch_add(1, std::memory_order_relaxed);
}

void ThreadedRuntime::deliver(NodeCell& me, simnet::Message&& m) {
  if (!me.up.load(std::memory_order_relaxed)) {
    me.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  me.delivered.fetch_add(1, std::memory_order_relaxed);
  me.proc->on_message(m);
}

std::size_t ThreadedRuntime::drain_inbound(NodeCell& me, bool to_overflow) {
  // Fairness: take at most a small batch per ring per pass, resuming at a
  // rotating cursor so one chatty peer cannot starve the rest.
  constexpr std::size_t kBatch = 32;
  const std::size_t n = me.in.size();
  std::size_t done = 0;
  simnet::Message m;
  for (std::size_t k = 0; k < n; ++k) {
    auto& ring = me.in[(me.rr + k) % n];
    if (!ring) continue;
    for (std::size_t b = 0; b < kBatch && ring->try_pop(m); ++b) {
      ++done;
      if (to_overflow)
        me.overflow.push_back(std::move(m));
      else
        deliver(me, std::move(m));
    }
  }
  me.rr = (me.rr + 1) % std::max<std::size_t>(n, 1);
  return done;
}

std::size_t ThreadedRuntime::run_overflow(NodeCell& me) {
  std::size_t done = 0;
  // Index loop: deliver() may re-enter drain_inbound(to_overflow=true) via
  // a blocked send and grow the vector under us.
  while (me.overflow_head < me.overflow.size()) {
    simnet::Message m = std::move(me.overflow[me.overflow_head++]);
    deliver(me, std::move(m));
    ++done;
  }
  if (me.overflow_head == me.overflow.size() && me.overflow_head != 0) {
    me.overflow.clear();  // keeps capacity: no further allocation
    me.overflow_head = 0;
  }
  return done;
}

std::size_t ThreadedRuntime::run_posts(NodeCell& me) {
  std::size_t done = 0;
  simnet::InlineFn fn;
  // Injected closures run even on a crashed node: they are the driver's
  // control plane (crash/recover handlers themselves arrive this way).
  while (me.posts.try_pop(fn)) {
    fn();
    ++done;
  }
  me.posts_run.fetch_add(done, std::memory_order_relaxed);
  return done;
}

void ThreadedRuntime::node_main(NodeId id) {
  t_ctx = {this, id};
  NodeCell& me = *cells_[id];
  me.proc->on_start();
  int idle = 0;
  while (!quit_.load(std::memory_order_acquire)) {
    std::size_t work = 0;
    work += run_posts(me);
    work += run_overflow(me);
    work += drain_inbound(me, /*to_overflow=*/false);
    const std::size_t fired = me.wheel.advance(now());
    me.timers.fetch_add(fired, std::memory_order_relaxed);
    work += fired;
    if (work != 0) {
      idle = 0;
    } else if (++idle <= cfg_.spin_rounds) {
      cpu_relax();
    } else if (idle <= cfg_.spin_rounds + cfg_.yield_rounds) {
      std::this_thread::yield();
    } else {
      // Park, but never past the next timer deadline.
      Time ns = cfg_.idle_sleep;
      const Time next = me.wheel.next_deadline();
      if (next >= 0) ns = std::clamp<Time>(next - now(), 0, ns);
      if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
  }
  t_ctx = {};
}

ThreadedRuntime::Stats ThreadedRuntime::stats(NodeId n) const {
  const NodeCell& c = *cells_[n];
  Stats s;
  s.sent = c.sent.load(std::memory_order_relaxed);
  s.delivered = c.delivered.load(std::memory_order_relaxed);
  s.dropped = c.dropped.load(std::memory_order_relaxed);
  s.timers = c.timers.load(std::memory_order_relaxed);
  s.posts = c.posts_run.load(std::memory_order_relaxed);
  s.stalls = c.stalls.load(std::memory_order_relaxed);
  return s;
}

ThreadedRuntime::Stats ThreadedRuntime::total_stats() const {
  Stats t;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Stats s = stats(static_cast<NodeId>(i));
    t.sent += s.sent;
    t.delivered += s.delivered;
    t.dropped += s.dropped;
    t.timers += s.timers;
    t.posts += s.posts;
    t.stalls += s.stalls;
  }
  return t;
}

}  // namespace canopus::runtime
