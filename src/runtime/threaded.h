// ThreadedRuntime: the wall-clock backend of the Runtime seam
// (DESIGN.md §12).
//
// One OS thread per attached node. Each node owns a pre-allocated mailbox
// pool: one bounded lock-free SPSC ring per *sender* (so every directed
// peer pair has a dedicated ring — N^2 fan-in built from SPSC parts, no
// CAS anywhere), plus one injection ring the driver thread feeds through
// Host::post (submit, crash, recover closures). The node's drain loop
// round-robins its inbound rings, runs injected closures, and advances a
// per-thread hierarchical TimerWheel; `now()` is wall-clock ns since
// runtime construction, so the protocols' timeouts (ms-scale) behave as on
// a real deployment.
//
// Hot-path allocation discipline matches the simulator (PR 4): ring slots,
// timer-wheel cells and the overflow stash are preallocated; Messages move
// through rings by value (Payload copies are refcount bumps); closures
// travel as InlineFn. bench_runtime's operator-new hook proves zero
// steady-state allocations per message.
//
// Backpressure without deadlock: a sender blocked on a full outbound ring
// keeps draining its *own* inbound rings into a preallocated overflow
// stash (messages only, no handler re-entrancy) while it waits — the same
// move the PDES kernel makes in its hand-off wait loop — so a cycle of
// mutually-full rings always drains.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "runtime/timer_wheel.h"
#include "simnet/network.h"  // Process (friend access to rt_/id_/rng_)
#include "simnet/spsc.h"

namespace canopus::runtime {

struct ThreadedConfig {
  std::size_t ring_slots = 256;   ///< per directed-pair mailbox (pow2)
  std::size_t post_slots = 1024;  ///< driver->node injection ring (pow2)
  std::size_t timer_cells = 256;  ///< preallocated wheel cells per node
  int spin_rounds = 64;           ///< empty polls before yielding
  int yield_rounds = 256;         ///< yields before parking in a sleep
  Time idle_sleep = 50'000;       ///< park time (ns) when fully idle
};

class ThreadedRuntime final : public Runtime, public Host {
 public:
  ThreadedRuntime(std::size_t num_nodes, std::uint64_t seed,
                  ThreadedConfig cfg = {});
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  // --- Host (driver thread) -------------------------------------------
  void attach(NodeId id, simnet::Process& proc) override;
  void crash(NodeId n) override;
  void recover(NodeId n) override;
  void sever(NodeId a, NodeId b) override;
  void heal(NodeId a, NodeId b) override;
  /// Per-node clock skew applied at wheel arming (atomic rate/offset; the
  /// node thread reads them with relaxed loads on every arm()).
  void set_clock_skew(NodeId n, double rate, Time offset) override;
  void post(NodeId n, simnet::InlineFn fn) override;
  bool is_up(NodeId n) const override;  // final overrider for both facets

  /// Spawns one thread per attached node and runs their on_start hooks.
  void start();
  /// Stops and joins every node thread. Idempotent. After it returns the
  /// driver may safely read protocol state (join = happens-before).
  void stop();
  bool running() const { return started_ && !stopped_; }

  // --- Runtime (node threads) -----------------------------------------
  Time now() const override;
  simnet::EventId arm(Time delay, simnet::InlineFn fn) override;
  void cancel(simnet::EventId id) override;
  void send(simnet::Message m) override;
  /// Real threads burn real cycles; modeled CPU charges are a no-op.
  void busy(NodeId, Time) override {}
  std::uint64_t seed() const override { return seed_; }

  // --- observability ---------------------------------------------------
  struct Stats {
    std::uint64_t sent = 0;       ///< messages pushed into peer mailboxes
    std::uint64_t delivered = 0;  ///< messages handed to on_message
    std::uint64_t dropped = 0;    ///< to crashed/severed/unattached nodes
    std::uint64_t timers = 0;     ///< timer-wheel closures fired
    std::uint64_t posts = 0;      ///< injected closures run
    std::uint64_t stalls = 0;     ///< full-ring backpressure waits
  };
  /// Safe to call live (relaxed counters; exact after stop()).
  Stats stats(NodeId n) const;
  Stats total_stats() const;

  std::size_t num_nodes() const { return cells_.size(); }

 private:
  struct NodeCell;

  void node_main(NodeId id);
  std::size_t drain_inbound(NodeCell& me, bool to_overflow);
  std::size_t run_overflow(NodeCell& me);
  std::size_t run_posts(NodeCell& me);
  void deliver(NodeCell& me, simnet::Message&& m);
  bool severed(NodeId a, NodeId b) const {
    return severed_count_.load(std::memory_order_relaxed) != 0 &&
           sev_[a * cells_.size() + b].load(std::memory_order_relaxed) != 0;
  }

  const std::uint64_t seed_;
  const ThreadedConfig cfg_;
  std::vector<std::unique_ptr<NodeCell>> cells_;
  std::vector<std::atomic<std::uint8_t>> sev_;  ///< directed-pair severs
  std::atomic<int> severed_count_{0};
  std::atomic<bool> go_{false};
  std::atomic<bool> quit_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace canopus::runtime
