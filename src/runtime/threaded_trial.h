// Drivers that run workload deployments on the threaded runtime, plus the
// scripted-command harness used to cross-validate the two backends.
//
// The scripted harness is the PR's correctness anchor (DESIGN.md §12): a
// fixed, seed-derived write script is driven into server 0 of a fresh
// deployment on each backend, and the per-server commit fingerprints must
// come out identical — kv::CommitDigest (ordered hash chain) for
// Canopus/Raft/Zab, kv::SetDigest (order-free) for EPaxos. The digests
// fold only (client, seq, key, value), never timestamps, so wall-clock
// batching differences between backends cannot leak in; with a single
// submitting server, every ordered system commits in submission order on
// both backends.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/deployments.h"

namespace canopus::workload {

/// Outcome of one scripted run on one backend.
struct ScriptResult {
  std::vector<std::uint64_t> fingerprint;  ///< per server
  std::vector<std::uint64_t> committed;    ///< per server committed writes
  bool completed = false;  ///< every server committed the whole script
  double wall_seconds = 0;
  std::uint64_t messages = 0;  ///< backend messages delivered
  Time commit_p50 = -1;  ///< submit->commit latency at server 0 (threads)
  Time commit_p99 = -1;
};

/// The deterministic command script: `k` writes, keys/values drawn from a
/// seed-derived stream, client id kInvalidNode (local submission — the
/// protocols suppress client replies for it).
std::vector<kv::Request> make_script(const TrialConfig& tc, std::size_t k);

/// Drives the script through the simulated backend (submissions at t=1ms,
/// then runs until `sim_deadline` simulated ns).
ScriptResult run_script_sim(const TrialConfig& tc, std::size_t k,
                            Time sim_deadline = 20 * kSecond);

/// Drives the script through runtime::ThreadedRuntime. `submit_gap` > 0
/// paces submissions (for latency measurement); 0 blasts them. Waits until
/// every server committed the script or `wall_deadline` wall-clock ns.
ScriptResult run_script_threads(const TrialConfig& tc, std::size_t k,
                                Time wall_deadline = 30 * kSecond,
                                Time submit_gap = 0);

}  // namespace canopus::workload
