// Hierarchical timer wheel for the threaded runtime (DESIGN.md §12).
//
// One wheel per node thread, owner-threaded (no synchronization): the node
// arms timers from its own handlers, and its drain loop advances the wheel
// between mailbox polls. Replaces the simulator's global EventQueue on the
// threaded backend, where there is no total event order to maintain — each
// node only needs "fire my closures at roughly the right wall-clock time".
//
// Layout: kLevels levels of kSlots slots. Level 0 slots are one tick
// (2^kTickBits ns ≈ 8.2 us — finer than thread wakeup jitter, far coarser
// than the ~100 ns arm cost) and each higher level is kSlots times coarser;
// five levels cover ~2.5 hours, beyond which a timer parks in the top
// level and re-cascades. Cells are preallocated and free-listed, so
// steady-state arm/fire/cancel performs zero heap allocations (the cell
// array grows — allocating — only if more timers are simultaneously armed
// than ever before). Cancellation is O(1): cells are doubly linked, and
// EventIds carry a generation like the EventQueue's ((gen << 24) | idx+1)
// so a stale cancel of a fired-and-recycled cell is ignored.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "simnet/event_queue.h"  // EventId, kInvalidEvent, InlineFn

namespace canopus::runtime {

class TimerWheel {
 public:
  static constexpr int kTickBits = 13;  ///< 8192 ns per level-0 tick
  static constexpr int kSlotBits = 6;   ///< 64 slots per level
  static constexpr int kLevels = 5;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;

  explicit TimerWheel(Time start = 0, std::size_t reserve_cells = 256)
      : cur_tick_(to_tick(start)) {
    for (List& l : slots_) l = {};
    cells_.reserve(reserve_cells);
    grow(reserve_cells);
  }

  /// Arms `fn` to fire once `now` reaches `when` (absolute ns). Due-or-past
  /// deadlines fire on the next advance() call.
  simnet::EventId arm(Time when, simnet::InlineFn fn) {
    const std::uint32_t idx = alloc_cell();
    Cell& c = cells_[idx];
    c.when = when;
    c.fn = std::move(fn);
    link(idx, slot_for(when));
    ++armed_;
    return (static_cast<simnet::EventId>(c.gen) << 24) | (idx + 1);
  }

  /// Cancels an armed timer; ignores kInvalidEvent, already-fired and
  /// already-cancelled ids (generation check), like EventQueue::cancel.
  void cancel(simnet::EventId id) {
    if (id == simnet::kInvalidEvent) return;
    const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffff) - 1;
    if (idx >= cells_.size()) return;
    Cell& c = cells_[idx];
    if (c.gen != static_cast<std::uint32_t>(id >> 24) || c.slot == kNoSlot)
      return;
    unlink(idx);
    free_cell(idx);
    --armed_;
  }

  /// Advances the wheel to `now`, firing every timer whose deadline has
  /// passed (in tick order; ties within a tick fire in arm order). Returns
  /// the number fired. Closures may re-arm or cancel freely.
  std::size_t advance(Time now) {
    std::size_t fired = 0;
    const std::uint64_t target = to_tick(now);
    while (cur_tick_ < target) {
      ++cur_tick_;
      // A level cascades when the wheel's position within it wraps to 0.
      for (int level = 1; level < kLevels; ++level) {
        if ((cur_tick_ & ((1ull << (kSlotBits * level)) - 1)) != 0) break;
        cascade(level);
      }
      fired += fire_list(static_cast<std::uint32_t>(cur_tick_ & (kSlots - 1)));
    }
    return fired;
  }

  std::size_t armed() const { return armed_; }

  /// Earliest pending deadline, or -1 with none armed. O(armed); used by
  /// idle loops deciding how long to park, not on the per-fire path.
  Time next_deadline() const {
    Time best = -1;
    for (const Cell& c : cells_)
      if (c.slot != kNoSlot && (best < 0 || c.when < best)) best = c.when;
    return best;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kMaxCells = 0xffffff;  ///< 24-bit id space

  struct Cell {
    Time when = 0;
    simnet::InlineFn fn;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t slot = kNoSlot;  ///< kNoSlot when free / in flight
    std::uint32_t gen = 0;
  };
  struct List {
    std::uint32_t head = kNil;
  };

  static std::uint64_t to_tick(Time t) {
    return static_cast<std::uint64_t>(t) >> kTickBits;
  }

  std::uint32_t slot_for(Time when) const {
    // Ceiling tick: the timer fires on the first tick boundary at or after
    // `when`, so it is never early in absolute ns (late by < one tick).
    const std::uint64_t tick =
        (static_cast<std::uint64_t>(when) + (1ull << kTickBits) - 1) >>
        kTickBits;
    // Never place into the past: a due timer goes to the next tick's slot.
    const std::uint64_t delta = tick > cur_tick_ ? tick - cur_tick_ : 1;
    for (int level = 0; level < kLevels; ++level) {
      if (delta < (1ull << (kSlotBits * (level + 1)))) {
        const std::uint64_t pos =
            (cur_tick_ + delta) >> (kSlotBits * level) & (kSlots - 1);
        return static_cast<std::uint32_t>(level * kSlots + pos);
      }
    }
    // Beyond the horizon: park at the furthest top-level slot; it will
    // cascade (and re-insert closer) each time the top level turns over.
    const std::uint64_t pos =
        (cur_tick_ >> (kSlotBits * (kLevels - 1))) + kSlots - 1 & (kSlots - 1);
    return static_cast<std::uint32_t>((kLevels - 1) * kSlots + pos);
  }

  void link(std::uint32_t idx, std::uint32_t slot) {
    Cell& c = cells_[idx];
    c.slot = slot;
    c.prev = kNil;
    c.next = slots_[slot].head;
    if (c.next != kNil) cells_[c.next].prev = idx;
    slots_[slot].head = idx;
  }

  void unlink(std::uint32_t idx) {
    Cell& c = cells_[idx];
    if (c.prev != kNil)
      cells_[c.prev].next = c.next;
    else
      slots_[c.slot].head = c.next;
    if (c.next != kNil) cells_[c.next].prev = c.prev;
    c.slot = kNoSlot;
  }

  std::uint32_t alloc_cell() {
    if (free_ == kNil) grow(cells_.empty() ? 64 : cells_.size());
    const std::uint32_t idx = free_;
    free_ = cells_[idx].next;
    cells_[idx].next = kNil;
    return idx;
  }

  void free_cell(std::uint32_t idx) {
    Cell& c = cells_[idx];
    c.fn = simnet::InlineFn();
    c.gen++;
    c.slot = kNoSlot;
    c.next = free_;
    free_ = idx;
  }

  void grow(std::size_t by) {
    const std::size_t base = cells_.size();
    assert(base + by <= kMaxCells && "timer wheel cell space exhausted");
    cells_.resize(base + by);
    for (std::size_t i = base; i < cells_.size(); ++i) {
      cells_[i].next = free_;
      free_ = static_cast<std::uint32_t>(i);
    }
  }

  /// Re-distributes every cell in the current slot of `level` down the
  /// hierarchy (closer deadlines land in finer levels).
  void cascade(int level) {
    const std::uint64_t pos =
        cur_tick_ >> (kSlotBits * level) & (kSlots - 1);
    const std::uint32_t slot = static_cast<std::uint32_t>(level * kSlots + pos);
    std::uint32_t idx = slots_[slot].head;
    slots_[slot].head = kNil;
    while (idx != kNil) {
      const std::uint32_t next = cells_[idx].next;
      cells_[idx].slot = kNoSlot;
      link(idx, slot_for(cells_[idx].when));
      idx = next;
    }
  }

  /// Fires every cell in level-0 slot `pos` (all are due: the slot is one
  /// tick wide and the wheel just reached it). Arm order is preserved:
  /// link() prepends, so the list is walked onto a scratch stack first.
  std::size_t fire_list(std::uint32_t pos) {
    std::uint32_t idx = slots_[pos].head;
    if (idx == kNil) return 0;
    slots_[pos].head = kNil;
    scratch_.clear();
    for (; idx != kNil; idx = cells_[idx].next) scratch_.push_back(idx);
    std::size_t fired = 0;
    for (std::size_t i = scratch_.size(); i-- > 0;) {
      Cell& c = cells_[scratch_[i]];
      c.slot = kNoSlot;
      simnet::InlineFn fn = std::move(c.fn);
      free_cell(scratch_[i]);
      --armed_;
      ++fired;
      fn();  // may arm/cancel; the cell is already recycled
    }
    return fired;
  }

  std::uint64_t cur_tick_;
  std::size_t armed_ = 0;
  std::uint32_t free_ = kNil;
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> scratch_;  ///< fire-order buffer, reused
  List slots_[kLevels * kSlots];
};

}  // namespace canopus::runtime
