// Zab / ZooKeeper baseline: centralized atomic broadcast (Junqueira et al.,
// DSN '11), configured the way the Canopus paper runs it (§8.1.2):
//
//  * one leader;
//  * a fixed set of followers (the paper uses 5) that vote on proposals;
//  * every remaining node is an observer: it does not vote, but receives
//    committed transactions asynchronously and serves reads locally.
//
// Write path: any node forwards client writes to the leader; the leader
// batches them, proposes to followers, commits on a majority of votes
// (leader + followers), then broadcasts the commit to followers and INFORMs
// observers. The node that received a client's request replies to that
// client after applying the commit locally.
//
// Read path: served immediately from local committed state (ZooKeeper's
// consistency model), by any node.
//
// The centralized coordinator is the bottleneck this baseline exists to
// show: every write traverses the leader, and the leader's egress grows
// with the number of followers + observers.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kv/store.h"
#include "kv/types.h"
#include "simnet/network.h"

namespace canopus::zab {

struct Config {
  /// Number of voting followers (the paper uses 5; the rest observe).
  int followers = 5;
  /// Leader-side batching window for proposals.
  Time batch_interval = 1 * kMillisecond;
  /// Leader-side protocol CPU per write: the full ZooKeeper request
  /// pipeline (session checks, znode processing, txn serialization) runs
  /// on the single coordinator — the centralized bottleneck of §8.1.2.
  Time leader_cpu_per_write = 20'000;
  /// Per-write apply cost at every member; per-read service cost at the
  /// serving node.
  Time cpu_per_write = 1'000;
  Time cpu_per_read = 1'000;
  /// Fault-plane tuning: how often the leader retransmits unacked proposals
  /// and a lagging member retries its catch-up request.
  Time sync_retry = 50 * kMillisecond;
  /// Committed batches the leader retains for member catch-up; the bound
  /// on every node's retained log. A member that falls further behind than
  /// this window is repaired by a full state snapshot (ZooKeeper's fuzzy
  /// snapshot, modeled at a commit boundary) when `snapshots` is on; with
  /// snapshots off the leader replies SyncTooOld and the member fails
  /// loudly instead of silently stalling.
  std::size_t history_depth = 512;
  bool snapshots = true;
};

using Zxid = std::uint64_t;

struct Forward {  // member -> leader
  std::vector<kv::Request> reqs;
  std::size_t wire_bytes() const {
    return 24 + kv::kRequestWire * reqs.size();
  }
};

struct Propose {  // leader -> followers
  Zxid zxid = 0;
  /// Shared so the per-follower fan-out does not copy the batch.
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::size_t wire_bytes() const {
    return 32 + kv::kRequestWire * (batch ? batch->size() : 0);
  }
};

struct Ack {  // follower -> leader
  Zxid zxid = 0;
  static constexpr std::size_t kWire = 24;
};

struct CommitMsg {  // leader -> followers (they already hold the batch)
  Zxid zxid = 0;
  static constexpr std::size_t kWire = 24;
};

struct Inform {  // leader -> observers (carries the data)
  Zxid zxid = 0;
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::size_t wire_bytes() const {
    return 32 + kv::kRequestWire * (batch ? batch->size() : 0);
  }
};

struct SyncReq {  // lagging member -> leader: resend commits from `from` on
  Zxid from = 0;
  static constexpr std::size_t kWire = 24;
};

struct Snapshot {  // leader -> member whose gap predates retained history
  /// The snapshot covers every commit up to and including `upto`.
  Zxid upto = 0;
  kv::Snapshot snap;
  std::size_t wire_bytes() const { return 32 + snap.wire_bytes(); }
};

struct SyncTooOld {  // leader -> member: requested zxid was compacted away
  /// Oldest zxid the leader can still serve (snapshots disabled — the
  /// member cannot be repaired and must surface the failure, not stall).
  Zxid retained_from = 0;
  static constexpr std::size_t kWire = 24;
};

class ZabNode : public simnet::Process {
 public:
  enum class Role { kLeader, kFollower, kObserver };

  /// `members` lists all nodes; members[0] is the leader, the next
  /// cfg.followers are followers, the rest observers.
  ZabNode(std::vector<NodeId> members, Config cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  void submit(kv::Request r);

  /// Crash-stop: the node drops all traffic and timers until recover().
  /// Committed state, the uncommitted proposal buffer and (on the leader)
  /// the in-flight table survive — the durable-log crash-recovery model.
  void crash();
  /// Restart after a crash; a non-leader immediately requests catch-up.
  void recover();
  bool crashed() const { return crashed_; }
  /// Asks the leader to resend committed batches this node is missing.
  void resync();

  Role role() const;
  std::uint64_t committed_writes() const { return digest_.count(); }
  std::uint64_t served_reads() const { return served_reads_; }
  /// Highest zxid applied locally (commits apply strictly in zxid order).
  Zxid applied_upto() const { return next_apply_ - 1; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }
  /// Committed batches currently retained for catch-up (the leader's ring;
  /// 0 elsewhere) — the memory footprint history_depth bounds.
  std::size_t log_entries_retained() const { return history_.size(); }
  std::uint64_t snapshots_installed() const { return snapshots_installed_; }
  std::uint64_t snapshots_served() const { return snapshots_served_; }
  /// True when catch-up hit compacted history with snapshots disabled: the
  /// member can never recover and says so instead of retrying forever.
  bool catch_up_failed() const { return catch_up_failed_; }

  std::function<void(Zxid, const std::vector<kv::Request>&)> on_commit;
  /// Fired after this member installs a leader snapshot (its history
  /// fast-forwarded to `upto` without applying the individual commits).
  std::function<void(Zxid, const kv::Snapshot&)> on_snapshot_install;

 private:
  struct InFlight {
    std::shared_ptr<const std::vector<kv::Request>> batch;
    /// Followers whose Ack arrived (the leader's own vote is implicit).
    std::unordered_set<NodeId> acked;
    bool committed = false;
  };

  void flush_batch();                       // leader only
  void apply(Zxid zxid, const std::vector<kv::Request>& batch);
  void advance_apply();
  void handle_forward(const Forward& f);    // leader only
  void handle_propose(NodeId src, const Propose& p);
  void handle_ack(NodeId src, const Ack& a);  // leader only
  void handle_commit(const CommitMsg& c);
  void handle_inform(const Inform& inf);
  void handle_sync_req(NodeId src, const SyncReq& sr);  // leader only
  void handle_snapshot(const Snapshot& s);
  void handle_sync_too_old(const SyncTooOld& t);
  void record_history(Zxid zxid,
                      std::shared_ptr<const std::vector<kv::Request>> batch);
  void arm_retransmit_timer();              // leader only
  void arm_sync_timer();                    // lagging member
  void flush_replies();
  std::size_t quorum() const {
    return (static_cast<std::size_t>(cfg_.followers) + 1) / 2 + 1;
  }

  std::vector<NodeId> members_;
  Config cfg_;
  NodeId leader_ = kInvalidNode;

  // Leader state.
  std::vector<kv::Request> pending_;
  Zxid next_zxid_ = 1;
  std::unordered_map<Zxid, InFlight> in_flight_;
  bool batch_timer_armed_ = false;
  bool retransmit_timer_armed_ = false;
  /// Committed-batch ring for catch-up: history_[i] holds zxid
  /// history_base_ + i; bounded by cfg_.history_depth.
  std::deque<std::shared_ptr<const std::vector<kv::Request>>> history_;
  Zxid history_base_ = 1;

  // Follower/observer state: proposals held until their commit arrives;
  // commits are applied strictly in zxid order.
  std::unordered_map<Zxid, std::shared_ptr<const std::vector<kv::Request>>>
      uncommitted_;
  std::unordered_map<Zxid, std::shared_ptr<const std::vector<kv::Request>>>
      ready_;
  Zxid next_apply_ = 1;
  /// Highest zxid known committed cluster-wide (from CommitMsg/Inform).
  /// next_apply_ <= max_committed_seen_ means this member has a gap and
  /// needs catch-up.
  Zxid max_committed_seen_ = 0;
  bool sync_timer_armed_ = false;
  bool crashed_ = false;

  // Snapshot state: the leader caches the exported image per applied
  // frontier (one export serves every lagging member at that frontier);
  // members count installs and remember an unrecoverable catch-up.
  Zxid snap_cache_upto_ = 0;
  kv::Snapshot snap_cache_;
  std::uint64_t snapshots_installed_ = 0;
  std::uint64_t snapshots_served_ = 0;
  bool catch_up_failed_ = false;

  kv::Store store_;
  kv::CommitDigest digest_;
  std::uint64_t served_reads_ = 0;
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;
};

}  // namespace canopus::zab

CANOPUS_REGISTER_PAYLOAD(canopus::zab::Forward, kZabForward);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Propose, kZabPropose);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Ack, kZabAck);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::CommitMsg, kZabCommit);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Inform, kZabInform);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::SyncReq, kZabSyncReq);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Snapshot, kZabSnapshot);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::SyncTooOld, kZabSyncTooOld);
