// Zab / ZooKeeper baseline: centralized atomic broadcast (Junqueira et al.,
// DSN '11), configured the way the Canopus paper runs it (§8.1.2):
//
//  * one leader;
//  * a fixed set of followers (the paper uses 5) that vote on proposals;
//  * every remaining node is an observer: it does not vote, but receives
//    committed transactions asynchronously and serves reads locally.
//
// Write path: any node forwards client writes to the leader; the leader
// batches them, proposes to followers, commits on a majority of votes
// (leader + followers), then broadcasts the commit to followers and INFORMs
// observers. The node that received a client's request replies to that
// client after applying the commit locally.
//
// Read path: served immediately from local committed state (ZooKeeper's
// consistency model), by any node.
//
// The centralized coordinator is the bottleneck this baseline exists to
// show: every write traverses the leader, and the leader's egress grows
// with the number of followers + observers.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/store.h"
#include "kv/types.h"
#include "simnet/network.h"

namespace canopus::zab {

struct Config {
  /// Number of voting followers (the paper uses 5; the rest observe).
  int followers = 5;
  /// Leader-side batching window for proposals.
  Time batch_interval = 1 * kMillisecond;
  /// Leader-side protocol CPU per write: the full ZooKeeper request
  /// pipeline (session checks, znode processing, txn serialization) runs
  /// on the single coordinator — the centralized bottleneck of §8.1.2.
  Time leader_cpu_per_write = 20'000;
  /// Per-write apply cost at every member; per-read service cost at the
  /// serving node.
  Time cpu_per_write = 1'000;
  Time cpu_per_read = 1'000;
};

using Zxid = std::uint64_t;

struct Forward {  // member -> leader
  std::vector<kv::Request> reqs;
  std::size_t wire_bytes() const {
    return 24 + kv::kRequestWire * reqs.size();
  }
};

struct Propose {  // leader -> followers
  Zxid zxid = 0;
  /// Shared so the per-follower fan-out does not copy the batch.
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::size_t wire_bytes() const {
    return 32 + kv::kRequestWire * (batch ? batch->size() : 0);
  }
};

struct Ack {  // follower -> leader
  Zxid zxid = 0;
  static constexpr std::size_t kWire = 24;
};

struct CommitMsg {  // leader -> followers (they already hold the batch)
  Zxid zxid = 0;
  static constexpr std::size_t kWire = 24;
};

struct Inform {  // leader -> observers (carries the data)
  Zxid zxid = 0;
  std::shared_ptr<const std::vector<kv::Request>> batch;
  std::size_t wire_bytes() const {
    return 32 + kv::kRequestWire * (batch ? batch->size() : 0);
  }
};

class ZabNode : public simnet::Process {
 public:
  enum class Role { kLeader, kFollower, kObserver };

  /// `members` lists all nodes; members[0] is the leader, the next
  /// cfg.followers are followers, the rest observers.
  ZabNode(std::vector<NodeId> members, Config cfg);

  void on_start() override;
  void on_message(const simnet::Message& m) override;

  void submit(kv::Request r);

  Role role() const;
  std::uint64_t committed_writes() const { return digest_.count(); }
  std::uint64_t served_reads() const { return served_reads_; }
  const kv::Store& store() const { return store_; }
  const kv::CommitDigest& digest() const { return digest_; }

  std::function<void(Zxid, const std::vector<kv::Request>&)> on_commit;

 private:
  struct InFlight {
    std::shared_ptr<const std::vector<kv::Request>> batch;
    int acks = 1;  // leader's own vote
    bool committed = false;
  };

  void flush_batch();                       // leader only
  void apply(Zxid zxid, const std::vector<kv::Request>& batch);
  void handle_forward(const Forward& f);    // leader only
  void handle_propose(NodeId src, const Propose& p);
  void handle_ack(const Ack& a);            // leader only
  void handle_commit(const CommitMsg& c);
  void flush_replies();
  std::size_t quorum() const {
    return (static_cast<std::size_t>(cfg_.followers) + 1) / 2 + 1;
  }

  std::vector<NodeId> members_;
  Config cfg_;
  NodeId leader_ = kInvalidNode;

  // Leader state.
  std::vector<kv::Request> pending_;
  Zxid next_zxid_ = 1;
  std::unordered_map<Zxid, InFlight> in_flight_;
  bool batch_timer_armed_ = false;

  // Follower/observer state: proposals held until their commit arrives;
  // commits are applied strictly in zxid order.
  std::unordered_map<Zxid, std::shared_ptr<const std::vector<kv::Request>>>
      uncommitted_;
  std::unordered_map<Zxid, std::shared_ptr<const std::vector<kv::Request>>>
      ready_;
  Zxid next_apply_ = 1;

  kv::Store store_;
  kv::CommitDigest digest_;
  std::uint64_t served_reads_ = 0;
  std::unordered_map<NodeId, kv::ReplyBatch> reply_buffer_;
};

}  // namespace canopus::zab

CANOPUS_REGISTER_PAYLOAD(canopus::zab::Forward, kZabForward);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Propose, kZabPropose);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Ack, kZabAck);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::CommitMsg, kZabCommit);
CANOPUS_REGISTER_PAYLOAD(canopus::zab::Inform, kZabInform);
