#include "zab/zab.h"

#include <algorithm>
#include <cassert>

namespace canopus::zab {

ZabNode::ZabNode(std::vector<NodeId> members, Config cfg)
    : members_(std::move(members)), cfg_(cfg) {
  assert(!members_.empty());
  leader_ = members_[0];
  // Ensembles smaller than followers+1 simply have fewer voters.
  cfg_.followers =
      std::min(cfg_.followers, static_cast<int>(members_.size()) - 1);
}

void ZabNode::on_start() {}

ZabNode::Role ZabNode::role() const {
  if (node_id() == leader_) return Role::kLeader;
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), node_id()) -
      members_.begin());
  return pos <= static_cast<std::size_t>(cfg_.followers) ? Role::kFollower
                                                         : Role::kObserver;
}

void ZabNode::crash() {
  crashed_ = true;
  // Volatile request buffers die with the process; the committed store,
  // the uncommitted/ready tables and the leader's in-flight table model
  // state recovered from the durable log.
  if (role() == Role::kLeader) pending_.clear();
  reply_buffer_.clear();
}

void ZabNode::recover() {
  if (!crashed_) return;
  crashed_ = false;
  if (role() == Role::kLeader) {
    // Resume the commit pipeline: unacked proposals go out again.
    if (!in_flight_.empty()) arm_retransmit_timer();
  } else {
    resync();
  }
}

void ZabNode::resync() {
  if (crashed_ || role() == Role::kLeader) return;
  SyncReq sr{next_apply_};
  send(leader_, SyncReq::kWire, sr);
  arm_sync_timer();
}

void ZabNode::submit(kv::Request r) {
  if (crashed_) return;
  r.origin = node_id();
  if (!r.is_write) {
    // Reads are served locally from committed state (ZooKeeper semantics).
    ++served_reads_;
    net().busy(node_id(), cfg_.cpu_per_read);
    kv::Completion done{r.id, false, store_.read(r.key), r.arrival, r.key};
    reply_buffer_[r.id.client].done.push_back(done);
    flush_replies();
    return;
  }
  if (role() == Role::kLeader) {
    pending_.push_back(r);
    if (!batch_timer_armed_) {
      batch_timer_armed_ = true;
      after(cfg_.batch_interval, [this] {
        batch_timer_armed_ = false;
        if (!crashed_) flush_batch();
      });
    }
  } else {
    Forward f{{r}};
    send(leader_, f.wire_bytes(), f);
  }
}

void ZabNode::on_message(const simnet::Message& m) {
  if (crashed_) return;
  if (const auto* batch = m.as<kv::ClientBatch>()) {
    // Forward writes in one message; serve reads immediately.
    Forward fwd;
    for (const kv::Request& req : batch->reqs) {
      kv::Request r = req;
      r.origin = node_id();
      if (!r.is_write) {
        ++served_reads_;
        net().busy(node_id(), cfg_.cpu_per_read);
        kv::Completion done{r.id, false, store_.read(r.key), r.arrival, r.key};
        reply_buffer_[r.id.client].done.push_back(done);
      } else if (role() == Role::kLeader) {
        pending_.push_back(r);
        if (!batch_timer_armed_) {
          batch_timer_armed_ = true;
          after(cfg_.batch_interval, [this] {
            batch_timer_armed_ = false;
            if (!crashed_) flush_batch();
          });
        }
      } else {
        fwd.reqs.push_back(r);
      }
    }
    if (!fwd.reqs.empty()) send(leader_, fwd.wire_bytes(), fwd);
    flush_replies();
  } else if (const auto* f = m.as<Forward>()) {
    handle_forward(*f);
  } else if (const auto* p = m.as<Propose>()) {
    handle_propose(m.src(), *p);
  } else if (const auto* a = m.as<Ack>()) {
    handle_ack(m.src(), *a);
  } else if (const auto* c = m.as<CommitMsg>()) {
    handle_commit(*c);
  } else if (const auto* inf = m.as<Inform>()) {
    handle_inform(*inf);
  } else if (const auto* sr = m.as<SyncReq>()) {
    handle_sync_req(m.src(), *sr);
  } else if (const auto* snap = m.as<Snapshot>()) {
    handle_snapshot(*snap);
  } else if (const auto* old = m.as<SyncTooOld>()) {
    handle_sync_too_old(*old);
  }
}

void ZabNode::handle_forward(const Forward& f) {
  assert(role() == Role::kLeader);
  pending_.insert(pending_.end(), f.reqs.begin(), f.reqs.end());
  if (!batch_timer_armed_) {
    batch_timer_armed_ = true;
    after(cfg_.batch_interval, [this] {
      batch_timer_armed_ = false;
      if (!crashed_) flush_batch();
    });
  }
}

void ZabNode::flush_batch() {
  if (pending_.empty()) return;
  // The coordinator's per-write pipeline cost — the centralized bottleneck.
  net().busy(node_id(), static_cast<Time>(pending_.size()) *
                            cfg_.leader_cpu_per_write);
  const Zxid z = next_zxid_++;
  InFlight& fl = in_flight_[z];
  fl.batch = std::make_shared<const std::vector<kv::Request>>(
      std::move(pending_));
  pending_.clear();

  Propose p{z, fl.batch};
  for (int i = 1; i <= cfg_.followers &&
                  i < static_cast<int>(members_.size());
       ++i) {
    send(members_[static_cast<std::size_t>(i)], p.wire_bytes(), p);
  }
  arm_retransmit_timer();
  if (quorum() <= 1) {  // degenerate single-node ensemble
    fl.committed = true;
    ready_[z] = fl.batch;
    in_flight_.erase(z);
    advance_apply();
  }
}

void ZabNode::arm_retransmit_timer() {
  if (retransmit_timer_armed_ || in_flight_.empty()) return;
  retransmit_timer_armed_ = true;
  after(cfg_.sync_retry, [this] {
    retransmit_timer_armed_ = false;
    if (crashed_ || in_flight_.empty()) return;
    // A proposal still unacked after a full retry interval was lost to a
    // crash or partition: resend it to every follower that has not acked.
    for (const auto& [zxid, fl] : in_flight_) {
      Propose p{zxid, fl.batch};
      for (int i = 1; i <= cfg_.followers &&
                      i < static_cast<int>(members_.size());
           ++i) {
        const NodeId peer = members_[static_cast<std::size_t>(i)];
        if (!fl.acked.contains(peer)) send(peer, p.wire_bytes(), p);
      }
    }
    arm_retransmit_timer();
  });
}

void ZabNode::handle_propose(NodeId src, const Propose& p) {
  // A retransmitted Propose can race a catch-up Inform and arrive after
  // its zxid was applied; holding it again would leak the entry forever
  // (no further Commit will come). The ack is still sent — idempotent at
  // the leader.
  if (p.zxid >= next_apply_) uncommitted_[p.zxid] = p.batch;
  Ack a{p.zxid};
  send(src, Ack::kWire, a);
}

void ZabNode::handle_ack(NodeId src, const Ack& a) {
  auto it = in_flight_.find(a.zxid);
  if (it == in_flight_.end() || it->second.committed) return;
  InFlight& fl = it->second;
  if (!fl.acked.insert(src).second) return;  // duplicate ack (retransmit)
  if (fl.acked.size() + 1 < quorum()) return;
  fl.committed = true;

  // Commit to followers (they hold the batch); Inform observers with data.
  CommitMsg c{a.zxid};
  Inform inf{a.zxid, fl.batch};
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (i <= static_cast<std::size_t>(cfg_.followers))
      send(members_[i], CommitMsg::kWire, c);
    else
      send(members_[i], inf.wire_bytes(), inf);
  }
  // Quorums can complete out of zxid order under retransmission; the
  // leader applies through the same strictly-ordered path as everyone
  // else so all digests see one order.
  ready_[a.zxid] = fl.batch;
  in_flight_.erase(it);
  advance_apply();
}

void ZabNode::record_history(
    [[maybe_unused]] Zxid zxid,
    std::shared_ptr<const std::vector<kv::Request>> batch) {
  // Commits happen in zxid order at the leader, so the ring stays dense.
  assert(zxid == history_base_ + history_.size());
  history_.push_back(std::move(batch));
  while (history_.size() > cfg_.history_depth) {
    history_.pop_front();
    ++history_base_;
  }
}

void ZabNode::handle_sync_req(NodeId src, const SyncReq& sr) {
  if (role() != Role::kLeader) return;
  if (sr.from < history_base_) {
    // The requested zxid predates retained history. Never black-hole the
    // requester (the pre-snapshot bug: it would re-request forever):
    // either ship a full state snapshot at the leader's applied frontier —
    // which covers the whole retained window too, so no Informs are
    // needed — or tell the member explicitly that it cannot be repaired.
    if (cfg_.snapshots) {
      const Zxid upto = applied_upto();
      if (snap_cache_upto_ != upto || snap_cache_.image == nullptr) {
        snap_cache_upto_ = upto;
        snap_cache_.image =
            std::make_shared<const kv::StoreImage>(store_.export_image());
        snap_cache_.digest_hash = digest_.value();
        snap_cache_.digest_count = digest_.count();
      }
      Snapshot s{upto, snap_cache_};
      ++snapshots_served_;
      send(src, s.wire_bytes(), s);
    } else {
      SyncTooOld t{history_base_};
      send(src, SyncTooOld::kWire, t);
    }
    return;
  }
  // Resend every committed batch the requester is missing, oldest first.
  const Zxid first = std::max(sr.from, history_base_);
  const Zxid last = history_base_ + history_.size();  // one past the end
  for (Zxid z = first; z < last; ++z) {
    Inform inf{z, history_[static_cast<std::size_t>(z - history_base_)]};
    send(src, inf.wire_bytes(), inf);
  }
}

void ZabNode::handle_snapshot(const Snapshot& s) {
  if (s.upto < next_apply_) return;  // stale: we advanced past it meanwhile
  store_.restore(s.snap.image ? *s.snap.image : kv::StoreImage{});
  digest_.restore(s.snap.digest_hash, s.snap.digest_count);
  next_apply_ = s.upto + 1;
  max_committed_seen_ = std::max(max_committed_seen_, s.upto);
  std::erase_if(uncommitted_,
                [&](const auto& kv) { return kv.first <= s.upto; });
  std::erase_if(ready_, [&](const auto& kv) { return kv.first <= s.upto; });
  ++snapshots_installed_;
  if (on_snapshot_install) on_snapshot_install(s.upto, s.snap);
  // Later commits may already be parked in ready_.
  advance_apply();
}

void ZabNode::handle_sync_too_old(const SyncTooOld&) {
  // Snapshots are disabled and our gap predates the leader's history: this
  // member can never catch up. Record the failure and stop the sync-retry
  // loop — loud and observable (catch_up_failed()), never a silent stall.
  catch_up_failed_ = true;
}

void ZabNode::handle_commit(const CommitMsg& c) {
  max_committed_seen_ = std::max(max_committed_seen_, c.zxid);
  auto it = uncommitted_.find(c.zxid);
  if (it != uncommitted_.end()) {
    ready_[c.zxid] = std::move(it->second);
    uncommitted_.erase(it);
  }
  advance_apply();
}

void ZabNode::handle_inform(const Inform& inf) {
  max_committed_seen_ = std::max(max_committed_seen_, inf.zxid);
  if (inf.zxid >= next_apply_) {
    ready_[inf.zxid] = inf.batch;
    uncommitted_.erase(inf.zxid);  // catch-up may overtake a held proposal
  }
  advance_apply();
}

void ZabNode::advance_apply() {
  const bool leader = role() == Role::kLeader;
  while (ready_.contains(next_apply_)) {
    if (leader) record_history(next_apply_, ready_[next_apply_]);
    apply(next_apply_, *ready_[next_apply_]);
    ready_.erase(next_apply_);
    ++next_apply_;
  }
  // A committed zxid we cannot apply yet means a lost proposal or a missed
  // commit: ask the leader for the gap (throttled by the sync timer).
  if (next_apply_ <= max_committed_seen_) arm_sync_timer();
}

void ZabNode::arm_sync_timer() {
  if (sync_timer_armed_ || role() == Role::kLeader || catch_up_failed_)
    return;
  sync_timer_armed_ = true;
  after(cfg_.sync_retry, [this] {
    sync_timer_armed_ = false;
    if (crashed_ || catch_up_failed_) return;
    if (next_apply_ <= max_committed_seen_) {
      SyncReq sr{next_apply_};
      send(leader_, SyncReq::kWire, sr);
      arm_sync_timer();
    }
  });
}

void ZabNode::apply(Zxid zxid, const std::vector<kv::Request>& batch) {
  net().busy(node_id(),
             static_cast<Time>(batch.size()) * cfg_.cpu_per_write);
  for (const kv::Request& r : batch) {
    store_.apply(r);
    digest_.append(r);
    if (r.origin == node_id() && r.id.client != kInvalidNode) {
      kv::Completion done{r.id, true, 0, r.arrival, r.key};
      reply_buffer_[r.id.client].done.push_back(done);
    }
  }
  max_committed_seen_ = std::max(max_committed_seen_, zxid);
  if (on_commit) on_commit(zxid, batch);
  flush_replies();
}

void ZabNode::flush_replies() {
  for (auto& [client, batch] : reply_buffer_) {
    if (client != kInvalidNode && !batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

}  // namespace canopus::zab
