#include "zab/zab.h"

#include <algorithm>
#include <cassert>

namespace canopus::zab {

ZabNode::ZabNode(std::vector<NodeId> members, Config cfg)
    : members_(std::move(members)), cfg_(cfg) {
  assert(!members_.empty());
  leader_ = members_[0];
  // Ensembles smaller than followers+1 simply have fewer voters.
  cfg_.followers =
      std::min(cfg_.followers, static_cast<int>(members_.size()) - 1);
}

void ZabNode::on_start() {}

ZabNode::Role ZabNode::role() const {
  if (node_id() == leader_) return Role::kLeader;
  const auto pos = static_cast<std::size_t>(
      std::find(members_.begin(), members_.end(), node_id()) -
      members_.begin());
  return pos <= static_cast<std::size_t>(cfg_.followers) ? Role::kFollower
                                                         : Role::kObserver;
}

void ZabNode::submit(kv::Request r) {
  r.origin = node_id();
  if (!r.is_write) {
    // Reads are served locally from committed state (ZooKeeper semantics).
    ++served_reads_;
    net().busy(node_id(), cfg_.cpu_per_read);
    kv::Completion done{r.id, false, store_.read(r.key), r.arrival};
    reply_buffer_[r.id.client].done.push_back(done);
    flush_replies();
    return;
  }
  if (role() == Role::kLeader) {
    pending_.push_back(r);
    if (!batch_timer_armed_) {
      batch_timer_armed_ = true;
      after(cfg_.batch_interval, [this] {
        batch_timer_armed_ = false;
        flush_batch();
      });
    }
  } else {
    Forward f{{r}};
    send(leader_, f.wire_bytes(), f);
  }
}

void ZabNode::on_message(const simnet::Message& m) {
  if (const auto* batch = m.as<kv::ClientBatch>()) {
    // Forward writes in one message; serve reads immediately.
    Forward fwd;
    for (const kv::Request& req : batch->reqs) {
      kv::Request r = req;
      r.origin = node_id();
      if (!r.is_write) {
        ++served_reads_;
        net().busy(node_id(), cfg_.cpu_per_read);
        kv::Completion done{r.id, false, store_.read(r.key), r.arrival};
        reply_buffer_[r.id.client].done.push_back(done);
      } else if (role() == Role::kLeader) {
        pending_.push_back(r);
        if (!batch_timer_armed_) {
          batch_timer_armed_ = true;
          after(cfg_.batch_interval, [this] {
            batch_timer_armed_ = false;
            flush_batch();
          });
        }
      } else {
        fwd.reqs.push_back(r);
      }
    }
    if (!fwd.reqs.empty()) send(leader_, fwd.wire_bytes(), fwd);
    flush_replies();
  } else if (const auto* f = m.as<Forward>()) {
    handle_forward(*f);
  } else if (const auto* p = m.as<Propose>()) {
    handle_propose(m.src(), *p);
  } else if (const auto* a = m.as<Ack>()) {
    handle_ack(*a);
  } else if (const auto* c = m.as<CommitMsg>()) {
    handle_commit(*c);
  } else if (const auto* inf = m.as<Inform>()) {
    // Observers: commit arrives with the data, in zxid order.
    ready_[inf->zxid] = inf->batch;
    while (ready_.contains(next_apply_)) {
      apply(next_apply_, *ready_[next_apply_]);
      ready_.erase(next_apply_);
      ++next_apply_;
    }
  }
}

void ZabNode::handle_forward(const Forward& f) {
  assert(role() == Role::kLeader);
  pending_.insert(pending_.end(), f.reqs.begin(), f.reqs.end());
  if (!batch_timer_armed_) {
    batch_timer_armed_ = true;
    after(cfg_.batch_interval, [this] {
      batch_timer_armed_ = false;
      flush_batch();
    });
  }
}

void ZabNode::flush_batch() {
  if (pending_.empty()) return;
  // The coordinator's per-write pipeline cost — the centralized bottleneck.
  net().busy(node_id(), static_cast<Time>(pending_.size()) *
                            cfg_.leader_cpu_per_write);
  const Zxid z = next_zxid_++;
  InFlight& fl = in_flight_[z];
  fl.batch = std::make_shared<const std::vector<kv::Request>>(
      std::move(pending_));
  pending_.clear();

  Propose p{z, fl.batch};
  for (int i = 1; i <= cfg_.followers &&
                  i < static_cast<int>(members_.size());
       ++i) {
    send(members_[static_cast<std::size_t>(i)], p.wire_bytes(), p);
  }
  if (quorum() <= 1) {  // degenerate single-node ensemble
    fl.committed = true;
    apply(z, *fl.batch);
    in_flight_.erase(z);
  }
}

void ZabNode::handle_propose(NodeId src, const Propose& p) {
  uncommitted_[p.zxid] = p.batch;
  Ack a{p.zxid};
  send(src, Ack::kWire, a);
}

void ZabNode::handle_ack(const Ack& a) {
  auto it = in_flight_.find(a.zxid);
  if (it == in_flight_.end() || it->second.committed) return;
  InFlight& fl = it->second;
  ++fl.acks;
  if (static_cast<std::size_t>(fl.acks) < quorum()) return;
  fl.committed = true;

  // Commit to followers (they hold the batch); Inform observers with data.
  CommitMsg c{a.zxid};
  Inform inf{a.zxid, fl.batch};
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (i <= static_cast<std::size_t>(cfg_.followers))
      send(members_[i], CommitMsg::kWire, c);
    else
      send(members_[i], inf.wire_bytes(), inf);
  }
  apply(a.zxid, *fl.batch);
  in_flight_.erase(it);
}

void ZabNode::handle_commit(const CommitMsg& c) {
  auto it = uncommitted_.find(c.zxid);
  if (it == uncommitted_.end()) return;
  ready_[c.zxid] = std::move(it->second);
  uncommitted_.erase(it);
  while (ready_.contains(next_apply_)) {
    apply(next_apply_, *ready_[next_apply_]);
    ready_.erase(next_apply_);
    ++next_apply_;
  }
}

void ZabNode::apply(Zxid zxid, const std::vector<kv::Request>& batch) {
  net().busy(node_id(),
             static_cast<Time>(batch.size()) * cfg_.cpu_per_write);
  for (const kv::Request& r : batch) {
    store_.apply(r);
    digest_.append(r);
    if (r.origin == node_id() && r.id.client != kInvalidNode) {
      kv::Completion done{r.id, true, 0, r.arrival};
      reply_buffer_[r.id.client].done.push_back(done);
    }
  }
  if (on_commit) on_commit(zxid, batch);
  flush_replies();
}

void ZabNode::flush_replies() {
  for (auto& [client, batch] : reply_buffer_) {
    if (client != kInvalidNode && !batch.done.empty()) {
      // Size before move: argument evaluation order is unspecified.
      const std::size_t bytes = batch.wire_bytes();
      send(client, bytes, std::move(batch));
    }
  }
  reply_buffer_.clear();
}

}  // namespace canopus::zab
