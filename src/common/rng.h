// Deterministic pseudo-random number generation.
//
// The simulator and every protocol draw randomness only through this type so
// that a run is a pure function of its seed. xoshiro256** is small, fast and
// has no global state (unlike std::mt19937 it is cheap to copy per node).
#pragma once

#include <cstdint>
#include <limits>

namespace canopus {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent seed from a base seed and a salt (e.g. a trial
/// index or the bit pattern of an offered rate): experiment harnesses use
/// this so every trial gets its own RNG stream regardless of the order —
/// or the thread — trials run in.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  std::uint64_t out = splitmix64(s);
  return out ^ splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free enough for simulation purposes.
    return (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derive an independent stream (e.g. one per node) from this one.
  constexpr Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace canopus
