// Core identifier and time types shared by every module.
//
// All simulation time is in integer nanoseconds (`Time`). Using a single
// integral clock keeps the discrete-event core exact and deterministic:
// two runs with the same seed produce bit-identical traces.
#pragma once

#include <cstdint>

namespace canopus {

/// Simulated time in nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// "Never": far beyond any simulated horizon, with headroom so that
/// kTimeInf + any real latency cannot overflow Time (the PDES clock
/// exchange adds lookaheads to published clocks).
inline constexpr Time kTimeInf = Time{1} << 60;

/// Identifies a physical node (a LOT pnode, a Raft peer, a Zab server...).
/// Node ids are dense indices assigned by the topology builder.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Identifies a client session. Clients are not nodes; they attach to a node.
using ClientId = std::uint32_t;

/// Monotonically increasing consensus cycle number (§4.2).
using CycleId = std::uint64_t;

/// Round number within a consensus cycle: 1..h for a height-h LOT.
using RoundId = std::uint32_t;

/// A LOT virtual-node id. Vnodes are labelled by their position in the
/// tree ("1", "1.1", "1.1.2", ...); we encode the path as an integer, see
/// canopus/lot.h. Leaf vnode ids coincide with pnode ids offset into the
/// same space.
using VnodeId = std::uint64_t;

/// Globally unique request id: (client, per-client sequence number).
/// The default client is invalid so that locally-submitted test requests
/// never masquerade as belonging to node 0.
struct RequestId {
  ClientId client = kInvalidNode;
  std::uint64_t seq = 0;

  friend bool operator==(const RequestId&, const RequestId&) = default;
  friend auto operator<=>(const RequestId&, const RequestId&) = default;
};

}  // namespace canopus

template <>
struct std::hash<canopus::RequestId> {
  std::size_t operator()(const canopus::RequestId& r) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{r.client} << 40) ^ r.seq);
  }
};
