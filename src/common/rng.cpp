#include "common/rng.h"

#include <cmath>

namespace canopus {

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace canopus
