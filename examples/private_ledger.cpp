// Private-blockchain-style ledger (§2.5): Canopus as the consensus layer of
// a permissioned distributed ledger. Each participant appends transaction
// records; consensus assigns every record a global ledger index, identical
// at every participant — "agreement on the entries of a replicated
// transaction log or ledger" (§1).
//
//   ./build/examples/private_ledger
//
// The ledger layer below is ~40 lines on top of the public API: it hashes
// each committed cycle into a block and chains the blocks.
#include <cstdio>
#include <memory>
#include <vector>

#include "canopus/node.h"
#include "simnet/network.h"
#include "simnet/topology.h"

using namespace canopus;

namespace {

/// A block chain built from committed Canopus cycles: one block per
/// non-empty cycle, chained by a running hash.
class Ledger {
 public:
  void absorb(CycleId cycle, const std::vector<kv::Request>& txns) {
    if (txns.empty()) return;
    std::uint64_t h = prev_hash_;
    auto mix = [&h](std::uint64_t x) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(cycle);
    for (const kv::Request& t : txns) {
      mix(t.id.client);
      mix(t.id.seq);
      mix(t.key);
      mix(t.value);
      ++txn_count_;
    }
    prev_hash_ = h;
    ++height_;
  }

  std::uint64_t tip() const { return prev_hash_; }
  std::uint64_t height() const { return height_; }
  std::uint64_t txn_count() const { return txn_count_; }

 private:
  std::uint64_t prev_hash_ = 0x6c656467657221ULL;  // genesis
  std::uint64_t height_ = 0;
  std::uint64_t txn_count_ = 0;
};

}  // namespace

int main() {
  // Consortium of 4 organizations (super-leaves), 3 validators each.
  simnet::Simulator sim(99);
  simnet::RackConfig rack;
  rack.racks = 4;
  rack.servers_per_rack = 3;
  rack.clients_per_rack = 0;
  simnet::Cluster cluster = simnet::build_multi_rack(rack);
  simnet::Network net(sim, cluster.topo);

  lot::LotConfig lc;
  for (int r = 0; r < 4; ++r) {
    lc.super_leaves.emplace_back();
    for (int s = 0; s < 3; ++s)
      lc.super_leaves.back().push_back(
          cluster.servers[static_cast<std::size_t>(3 * r + s)]);
  }
  auto lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));

  std::vector<std::unique_ptr<core::CanopusNode>> validators;
  std::vector<Ledger> ledgers(12);
  for (std::size_t i = 0; i < cluster.servers.size(); ++i) {
    validators.push_back(
        std::make_unique<core::CanopusNode>(lot, core::Config{}));
    net.attach(cluster.servers[i], *validators.back());
    validators[i]->on_commit = [&ledgers, i](CycleId c,
                                             const std::vector<kv::Request>& w) {
      ledgers[i].absorb(c, w);
    };
  }

  // Every organization concurrently appends transactions ("smart contract"
  // invocations reduced to key/value records).
  Rng rng(5);
  for (int batch = 0; batch < 20; ++batch) {
    for (std::size_t v = 0; v < validators.size(); ++v) {
      const Time t = kMillisecond + batch * 2 * kMillisecond;
      sim.at(t, [&, v, batch] {
        kv::Request txn;
        txn.is_write = true;
        txn.key = rng.below(1'000);
        txn.value = rng();
        txn.id = {kInvalidNode, static_cast<std::uint64_t>(batch)};
        txn.arrival = sim.now();
        validators[v]->submit(txn);
      });
    }
  }
  sim.run_until(5 * kSecond);

  std::printf("permissioned ledger over Canopus: 4 orgs x 3 validators\n\n");
  std::printf("  validator 0 ledger: height %llu, %llu txns, tip %016llx\n",
              static_cast<unsigned long long>(ledgers[0].height()),
              static_cast<unsigned long long>(ledgers[0].txn_count()),
              static_cast<unsigned long long>(ledgers[0].tip()));
  bool identical = true;
  for (const Ledger& l : ledgers)
    identical = identical && l.tip() == ledgers[0].tip() &&
                l.height() == ledgers[0].height();
  std::printf("  all 12 validators have the identical chain: %s\n",
              identical ? "YES" : "NO");
  std::printf("  total transactions sealed: %llu (expected 240)\n",
              static_cast<unsigned long long>(ledgers[0].txn_count()));
  return identical && ledgers[0].txn_count() == 240 ? 0 : 1;
}
