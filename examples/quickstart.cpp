// Quickstart: a 9-node Canopus group (3 super-leaves x 3 nodes) reaching
// consensus on a handful of key-value writes, with linearizable reads.
//
//   cmake --build build && ./build/examples/quickstart
//
// Walkthrough:
//   1. build a single-datacenter topology (racks behind an oversubscribed
//      aggregation switch);
//   2. arrange the servers into a Leaf-Only Tree (one super-leaf per rack);
//   3. attach a CanopusNode to every server;
//   4. submit writes at different nodes and a read, run the simulation;
//   5. observe that every node committed the SAME order (equal digests)
//      and holds the same KV state.
#include <cstdio>
#include <memory>
#include <vector>

#include "canopus/node.h"
#include "simnet/network.h"
#include "simnet/topology.h"

using namespace canopus;

int main() {
  // 1. Topology: 3 racks x 3 servers, 10 Gb NICs, 2x10 Gb uplinks.
  simnet::Simulator sim(/*seed=*/2024);
  simnet::RackConfig rack;
  rack.racks = 3;
  rack.servers_per_rack = 3;
  rack.clients_per_rack = 0;
  simnet::Cluster cluster = simnet::build_multi_rack(rack);
  simnet::Network net(sim, cluster.topo);

  // 2. LOT: one super-leaf per rack; height 2 (two rounds per cycle).
  lot::LotConfig lc;
  for (int r = 0; r < 3; ++r) {
    lc.super_leaves.emplace_back();
    for (int s = 0; s < 3; ++s)
      lc.super_leaves.back().push_back(
          cluster.servers[static_cast<std::size_t>(3 * r + s)]);
  }
  auto lot = std::make_shared<const lot::Lot>(lot::Lot::build(lc));
  std::printf("LOT height: %d, %zu pnodes, root vnode \"%s\"\n",
              lot->height(), lot->num_pnodes(), lot->name(lot->root()).c_str());

  // 3. One CanopusNode per server.
  std::vector<std::unique_ptr<core::CanopusNode>> nodes;
  for (NodeId s : cluster.servers) {
    nodes.push_back(std::make_unique<core::CanopusNode>(lot, core::Config{}));
    net.attach(s, *nodes.back());
  }

  // Print the global order as node 4 commits it.
  nodes[4]->on_commit = [&](CycleId cycle,
                            const std::vector<kv::Request>& writes) {
    std::printf("cycle %llu committed %zu writes:",
                static_cast<unsigned long long>(cycle), writes.size());
    for (const auto& w : writes)
      std::printf("  [key %llu := %llu]",
                  static_cast<unsigned long long>(w.key),
                  static_cast<unsigned long long>(w.value));
    std::printf("\n");
  };

  // 4. Concurrent writes at three different nodes + one read.
  auto write = [&](Time t, std::size_t node, std::uint64_t key,
                   std::uint64_t value) {
    sim.at(t, [&, node, key, value] {
      kv::Request r;
      r.is_write = true;
      r.key = key;
      r.value = value;
      r.arrival = sim.now();
      nodes[node]->submit(r);
    });
  };
  write(1 * kMillisecond, 0, /*key=*/1, /*value=*/100);
  write(1 * kMillisecond, 4, /*key=*/2, /*value=*/200);
  write(1 * kMillisecond, 8, /*key=*/1, /*value=*/111);
  sim.at(2 * kMillisecond, [&] {
    kv::Request r;
    r.is_write = false;
    r.key = 1;
    r.arrival = sim.now();
    nodes[2]->submit(r);  // linearized read, delayed 1-2 cycles
  });

  sim.run_until(2 * kSecond);

  // 5. Agreement: identical digests and state everywhere.
  bool agree = true;
  for (const auto& n : nodes)
    agree = agree && n->digest() == nodes[0]->digest();
  std::printf("\nall 9 nodes committed the same order: %s\n",
              agree ? "YES" : "NO");
  std::printf("key 1 = %llu, key 2 = %llu (on node 7)\n",
              static_cast<unsigned long long>(nodes[7]->store().read(1)),
              static_cast<unsigned long long>(nodes[7]->store().read(2)));
  std::printf("reads served by node 2: %llu\n",
              static_cast<unsigned long long>(nodes[2]->served_reads()));
  return agree ? 0 : 1;
}
