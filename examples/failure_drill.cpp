// Failure drill: every consensus system in the repository runs the same
// fault-scenario suite through workload::ConsensusService — crashes,
// leader loss, super-leaf majority loss, a one-way partition, rolling
// crashes — and the drill reports availability before/during/after each
// fault plus the safety audit (live nodes must agree on the committed
// writes; Canopus is expected to STALL, not diverge, when a super-leaf
// loses its majority, paper §6).
//
//   ./build/example_failure_drill
//
// Exits nonzero if any system violates safety in any scenario.
#include <cstdio>
#include <string>
#include <vector>

#include "workload/fault_scenario.h"

using namespace canopus;
using namespace canopus::workload;

int main() {
  const int groups = 2, per_group = 3;
  FaultTiming ft;  // 0.3s warmup, fault at 0.8s, heal at 1.6s, end at 2.4s

  TrialConfig base;
  base.groups = groups;
  base.per_group = per_group;
  base.client_machines = 1;
  base = fault_tuned(base);

  const auto scenarios = standard_scenarios(groups, per_group, ft);
  const double rate = 6'000;  // well within every system's capacity

  std::printf("failure drill: %d super-leaves x %d nodes, %.0f req/s, "
              "fault at %.1fs, heal at %.1fs\n",
              groups, per_group, rate,
              static_cast<double>(ft.fault_at) / kSecond,
              static_cast<double>(ft.heal_at) / kSecond);

  bool all_safe = true;
  for (const FaultScenario& sc : scenarios) {
    std::printf("\n=== %-24s  %s\n", sc.name.c_str(), sc.description.c_str());
    std::printf("    %-10s %28s %9s %7s %7s  %s\n", "system",
                "throughput before/during/after", "committed", "stall?",
                "resume?", "agree?");
    for (System sys : kAllSystems) {
      TrialConfig tc = base;
      tc.system = sys;
      const ScenarioResult r = run_fault_scenario(tc, sc, ft, rate);
      const double b = r.before.throughput / rate;
      const double d = r.during.throughput / rate;
      const double a = r.after.throughput / rate;
      std::printf("    %-10s        %5.0f%% / %5.0f%% / %5.0f%% %9llu %7s %7s  %s\n",
                  r.system.c_str(), 100 * b, 100 * d, 100 * a,
                  static_cast<unsigned long long>(r.committed_writes),
                  r.stalled_during() ? "yes" : "no",
                  r.progressed_after() ? "yes" : "no",
                  r.digests_agree ? "YES" : "NO  <-- SAFETY VIOLATION");
      if (!r.safe()) all_safe = false;
      // The paper's §6 liveness story, checked end to end: majority loss
      // stalls Canopus (and only stalls it — digests above must agree).
      if (sc.majority_loss && sys == System::kCanopus && !r.stalled_during()) {
        std::printf("    ^ expected Canopus to stall on majority loss!\n");
        all_safe = false;
      }
    }
  }

  std::printf("\n%s\n",
              all_safe
                  ? "all systems safe under every scenario: live nodes "
                    "agree; Canopus stalls-not-corrupts on majority loss."
                  : "SAFETY VIOLATION detected (see above).");
  return all_safe ? 0 : 1;
}
